package vclock

import (
	"testing"
	"time"
)

func TestFixedClock(t *testing.T) {
	f := &Fixed{}
	if f.Now() != 0 {
		t.Error("fixed clock not zero")
	}
	f.Advance(time.Second)
	f.Advance(500 * time.Millisecond)
	if f.Now() != 1500*time.Millisecond {
		t.Errorf("now = %v", f.Now())
	}
}

func TestRealClockMonotone(t *testing.T) {
	r := NewReal()
	a := r.Now()
	b := r.Now()
	if b < a {
		t.Error("real clock went backwards")
	}
	if a > time.Second {
		t.Errorf("fresh clock already at %v", a)
	}
}

func TestClockInterface(t *testing.T) {
	var _ Clock = &Fixed{}
	var _ Clock = NewReal()
}
