// Package vclock abstracts "time since the world started" so the same
// DNS and CDN code runs against the wall clock in real deployments and
// against simnet's virtual clock in experiments.
package vclock

import "time"

// Clock reports elapsed time since an arbitrary fixed origin. Both
// *simnet.Clock and Real satisfy it.
type Clock interface {
	Now() time.Duration
}

// Real is a wall clock measuring time since its creation.
type Real struct {
	start time.Time
}

// NewReal returns a wall clock anchored at the current instant.
func NewReal() *Real { return &Real{start: time.Now()} }

// Now implements Clock.
func (r *Real) Now() time.Duration { return time.Since(r.start) }

// Fixed is a manually-advanced clock for tests.
type Fixed struct {
	Time time.Duration
}

// Now implements Clock.
func (f *Fixed) Now() time.Duration { return f.Time }

// Advance moves the clock forward by d.
func (f *Fixed) Advance(d time.Duration) { f.Time += d }
