// Package resolver implements a recursive DNS resolver: the L-DNS of
// the paper's Figure 1. Starting from a set of root servers it follows
// referrals down the delegation tree, chases CNAME chains (the CDN
// cascade), caches delegations so later queries skip the upper levels,
// and exposes itself as a dnsserver plugin so it can sit behind the
// response cache in a server chain.
package resolver

import (
	"context"
	"errors"
	"fmt"
	"net/netip"
	"sync"
	"time"

	"github.com/meccdn/meccdn/internal/dnsclient"
	"github.com/meccdn/meccdn/internal/dnsserver"
	"github.com/meccdn/meccdn/internal/dnswire"
	"github.com/meccdn/meccdn/internal/vclock"
)

// Errors returned by Resolve.
var (
	ErrMaxReferrals = errors.New("resolver: referral limit exceeded")
	ErrMaxCNAME     = errors.New("resolver: CNAME chain too long")
	ErrNoServers    = errors.New("resolver: no servers to query")
	ErrLame         = errors.New("resolver: lame delegation")
)

const (
	defaultMaxReferrals = 16
	defaultMaxCNAME     = 8
	defaultNSTTL        = time.Hour
)

// Resolver performs iterative resolution.
type Resolver struct {
	// Roots are the root name servers (priming is assumed done).
	Roots []netip.AddrPort
	// Client performs the upstream exchanges; required.
	Client *dnsclient.Client
	// Clock drives delegation-cache expiry; required.
	Clock vclock.Clock
	// MaxReferrals bounds the referral walk; 0 means 16.
	MaxReferrals int
	// MaxCNAME bounds alias chains; 0 means 8.
	MaxCNAME int
	// ForwardECS forwards the client's EDNS Client Subnet option on
	// upstream content queries (RFC 7871 forwarding-recursive
	// behavior). Off by default, the resolver behaves like the many
	// recursives that strip ECS — the conflation of client and
	// resolver location the paper critiques — which is also the
	// control arm of the edge-selection experiment.
	ForwardECS bool

	mu     sync.Mutex
	nsSets map[string]*nsSet
}

// nsSet is a cached delegation: the servers authoritative for a zone.
type nsSet struct {
	zone    string
	addrs   []netip.AddrPort
	expires time.Duration
}

// New returns a resolver rooted at roots.
func New(client *dnsclient.Client, clock vclock.Clock, roots ...netip.AddrPort) *Resolver {
	return &Resolver{
		Roots:  roots,
		Client: client,
		Clock:  clock,
		nsSets: make(map[string]*nsSet),
	}
}

// Name implements dnsserver.Plugin.
func (r *Resolver) Name() string { return "resolve" }

// ServeDNS implements dnsserver.Plugin: terminal recursive resolution.
func (r *Resolver) ServeDNS(ctx context.Context, w dnsserver.ResponseWriter, req *dnsserver.Request, _ dnsserver.Handler) (dnswire.Rcode, error) {
	var ecs *dnswire.ECSOption
	if r.ForwardECS {
		if e, ok := req.Msg.ECS(); ok {
			ecs = e
		}
	}
	resp, err := r.resolve(ctx, req.Name(), req.Type(), ecs)
	if err != nil {
		return dnswire.RcodeServerFailure, err
	}
	resp.ID = req.Msg.ID
	resp.RecursionAvailable = true
	if err := w.WriteMsg(resp); err != nil {
		return dnswire.RcodeServerFailure, err
	}
	return resp.Rcode, nil
}

// Resolve answers (qname, qtype) by iterative resolution, following
// out-of-zone CNAMEs. The returned message aggregates the full alias
// chain in its answer section, the way a recursive resolver responds.
func (r *Resolver) Resolve(ctx context.Context, qname string, qtype dnswire.Type) (*dnswire.Message, error) {
	return r.resolve(ctx, qname, qtype, nil)
}

// resolve is Resolve with an optional client-subnet disclosure that is
// forwarded on every content query of the walk (referrals and CNAME
// hops included — the whole chase is on the client's behalf), but
// never on infrastructure NS lookups.
func (r *Resolver) resolve(ctx context.Context, qname string, qtype dnswire.Type, ecs *dnswire.ECSOption) (*dnswire.Message, error) {
	qname = dnswire.CanonicalName(qname)
	original := dnswire.Question{Name: qname, Type: qtype, Class: dnswire.ClassINET}
	var chain []dnswire.RR
	maxCNAME := r.MaxCNAME
	if maxCNAME <= 0 {
		maxCNAME = defaultMaxCNAME
	}
	for hop := 0; ; hop++ {
		resp, err := r.resolveOne(ctx, qname, qtype, 0, ecs)
		if err != nil {
			return nil, err
		}
		// Find a terminal answer or the next alias link.
		target := ""
		for _, rr := range resp.Answers {
			if cn, ok := rr.(*dnswire.CNAME); ok && dnswire.CanonicalName(cn.Hdr.Name) == qname && qtype != dnswire.TypeCNAME {
				target = dnswire.CanonicalName(cn.Target)
			}
		}
		hasFinal := false
		for _, rr := range resp.Answers {
			if rr.Header().Type == qtype {
				hasFinal = true
				break
			}
		}
		if target == "" || hasFinal {
			resp.Answers = append(chain, resp.Answers...)
			// After a cross-zone CNAME chase the last upstream reply
			// names the alias target; the client asked for the
			// original owner.
			resp.Questions = []dnswire.Question{original}
			return resp, nil
		}
		chain = append(chain, resp.Answers...)
		if hop+1 >= maxCNAME {
			return nil, fmt.Errorf("%w: from %s", ErrMaxCNAME, qname)
		}
		qname = target
	}
}

// resolveOne walks referrals for a single owner name (no cross-zone
// CNAME chasing; Resolve handles that).
func (r *Resolver) resolveOne(ctx context.Context, qname string, qtype dnswire.Type, depth int, ecs *dnswire.ECSOption) (*dnswire.Message, error) {
	if depth > 4 {
		return nil, fmt.Errorf("%w: glue recursion for %s", ErrMaxReferrals, qname)
	}
	servers := r.bestServers(qname)
	if len(servers) == 0 {
		return nil, ErrNoServers
	}
	maxReferrals := r.MaxReferrals
	if maxReferrals <= 0 {
		maxReferrals = defaultMaxReferrals
	}
	for step := 0; step < maxReferrals; step++ {
		resp, err := r.queryAny(ctx, servers, qname, qtype, ecs)
		if err != nil {
			return nil, err
		}
		switch {
		case resp.Rcode == dnswire.RcodeNameError,
			resp.Rcode != dnswire.RcodeSuccess,
			len(resp.Answers) > 0,
			resp.Authoritative:
			// Terminal: answer, negative answer, or an authoritative
			// NODATA.
			return resp, nil
		}
		// Referral: NS records in authority.
		next, zone := r.followReferral(ctx, resp, depth)
		if len(next) == 0 {
			return nil, fmt.Errorf("%w: for %s (empty referral for %q)", ErrLame, qname, zone)
		}
		servers = next
	}
	return nil, fmt.Errorf("%w: resolving %s", ErrMaxReferrals, qname)
}

// followReferral extracts the child NS set and its glue from a
// referral response, caches the delegation, and returns the server
// addresses to try next.
func (r *Resolver) followReferral(ctx context.Context, resp *dnswire.Message, depth int) ([]netip.AddrPort, string) {
	var zone string
	nsNames := make([]string, 0, 4)
	for _, rr := range resp.Authorities {
		if ns, ok := rr.(*dnswire.NS); ok {
			zone = dnswire.CanonicalName(ns.Hdr.Name)
			nsNames = append(nsNames, dnswire.CanonicalName(ns.NS))
		}
	}
	if zone == "" {
		return nil, ""
	}
	glue := make(map[string][]netip.Addr)
	for _, rr := range resp.Additionals {
		switch a := rr.(type) {
		case *dnswire.A:
			owner := dnswire.CanonicalName(a.Hdr.Name)
			glue[owner] = append(glue[owner], a.Addr)
		case *dnswire.AAAA:
			owner := dnswire.CanonicalName(a.Hdr.Name)
			glue[owner] = append(glue[owner], a.Addr)
		}
	}
	var addrs []netip.AddrPort
	for _, name := range nsNames {
		for _, a := range glue[name] {
			addrs = append(addrs, netip.AddrPortFrom(a, 53))
		}
	}
	// Glueless delegation: resolve the NS names themselves. These are
	// infrastructure lookups on the resolver's own behalf, so no
	// client subnet rides along (RFC 7871 §7.1.2).
	if len(addrs) == 0 {
		for _, name := range nsNames {
			m, err := r.resolveOne(ctx, name, dnswire.TypeA, depth+1, nil)
			if err != nil {
				continue
			}
			for _, rr := range m.Answers {
				if a, ok := rr.(*dnswire.A); ok {
					addrs = append(addrs, netip.AddrPortFrom(a.Addr, 53))
				}
			}
		}
	}
	if len(addrs) > 0 {
		r.cacheDelegation(zone, addrs)
	}
	return addrs, zone
}

// queryAny tries the servers in order until one responds, forwarding
// the client-subnet disclosure when one rides along.
func (r *Resolver) queryAny(ctx context.Context, servers []netip.AddrPort, qname string, qtype dnswire.Type, ecs *dnswire.ECSOption) (*dnswire.Message, error) {
	var lastErr error
	for _, s := range servers {
		q := new(dnswire.Message)
		q.SetQuestion(qname, qtype)
		q.RecursionDesired = false
		if ecs != nil {
			// A fresh scope-0 copy: queries MUST carry scope 0
			// (RFC 7871 §6), whatever the inbound option said.
			fwd := *ecs
			fwd.ScopePrefix = 0
			opt := q.SetEDNS(dnswire.DefaultEDNSSize)
			opt.Options = append(opt.Options, &fwd)
		}
		resp, err := r.Client.Do(ctx, s, q)
		if err == nil {
			return resp, nil
		}
		lastErr = err
	}
	return nil, fmt.Errorf("querying %d servers for %s: %w", len(servers), qname, lastErr)
}

// bestServers returns the cached NS set for the longest matching
// enclosing zone, falling back to the roots.
func (r *Resolver) bestServers(qname string) []netip.AddrPort {
	r.mu.Lock()
	defer r.mu.Unlock()
	now := r.Clock.Now()
	for zone := qname; ; zone = dnswire.Parent(zone) {
		if set, ok := r.nsSets[zone]; ok {
			if now < set.expires {
				return set.addrs
			}
			delete(r.nsSets, zone)
		}
		if zone == "." {
			break
		}
	}
	return r.Roots
}

func (r *Resolver) cacheDelegation(zone string, addrs []netip.AddrPort) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.nsSets == nil {
		r.nsSets = make(map[string]*nsSet)
	}
	r.nsSets[zone] = &nsSet{zone: zone, addrs: addrs, expires: r.Clock.Now() + defaultNSTTL}
}

// FlushDelegations clears the infrastructure cache.
func (r *Resolver) FlushDelegations() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.nsSets = make(map[string]*nsSet)
}

// CachedZones lists zones with live cached delegations (for tests and
// introspection).
func (r *Resolver) CachedZones() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	now := r.Clock.Now()
	var zones []string
	for z, set := range r.nsSets {
		if now < set.expires {
			zones = append(zones, z)
		}
	}
	return zones
}
