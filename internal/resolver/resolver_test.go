package resolver

import (
	"context"
	"errors"
	"math/rand"
	"net/netip"
	"testing"
	"time"

	"github.com/meccdn/meccdn/internal/dnsclient"
	"github.com/meccdn/meccdn/internal/dnsserver"
	"github.com/meccdn/meccdn/internal/dnswire"
	"github.com/meccdn/meccdn/internal/simnet"
)

// hierarchy is a three-level DNS tree (root → TLDs → authoritative)
// running on simnet, mirroring Figure 1's multi-layer hierarchy.
type hierarchy struct {
	net        *simnet.Network
	rootAddr   netip.AddrPort
	rootHits   *dnsserver.Metrics
	tldHits    *dnsserver.Metrics
	authHits   *dnsserver.Metrics
	resolver   *Resolver
	resolverEP *simnet.Endpoint
}

func buildHierarchy(t *testing.T, seed int64) *hierarchy {
	t.Helper()
	n := simnet.New(seed)
	for _, name := range []string{"ldns", "root", "tld-test", "tld-example", "auth-mycdn", "auth-other"} {
		n.AddNode(name)
	}
	for _, peer := range []string{"root", "tld-test", "tld-example", "auth-mycdn", "auth-other"} {
		n.AddLink("ldns", peer, simnet.Constant(10*time.Millisecond), 0)
	}

	addr := func(node string) netip.Addr { return n.Node(node).Addr }
	port := func(node string) netip.AddrPort { return netip.AddrPortFrom(addr(node), 53) }

	// Root zone delegates test. and example.
	root := dnsserver.NewZone(".")
	mustAdd := func(z *dnsserver.Zone, rr dnswire.RR) {
		t.Helper()
		if err := z.Add(rr); err != nil {
			t.Fatal(err)
		}
	}
	nsRR := func(owner, target string) *dnswire.NS {
		return &dnswire.NS{
			Hdr: dnswire.RRHeader{Name: owner, Type: dnswire.TypeNS, Class: dnswire.ClassINET, TTL: 3600},
			NS:  target,
		}
	}
	mustAdd(root, nsRR("test.", "ns.tld-test."))
	if err := root.AddA("ns.tld-test.", 3600, addr("tld-test")); err != nil {
		t.Fatal(err)
	}
	mustAdd(root, nsRR("example.", "ns.tld-example."))
	if err := root.AddA("ns.tld-example.", 3600, addr("tld-example")); err != nil {
		t.Fatal(err)
	}

	// test. TLD delegates mycdn.ciab.test.
	tldTest := dnsserver.NewZone("test.")
	mustAdd(tldTest, nsRR("mycdn.ciab.test.", "ns.mycdn.ciab.test."))
	if err := tldTest.AddA("ns.mycdn.ciab.test.", 3600, addr("auth-mycdn")); err != nil {
		t.Fatal(err)
	}

	// example. TLD delegates other.example.
	tldExample := dnsserver.NewZone("example.")
	mustAdd(tldExample, nsRR("other.example.", "ns.other.example."))
	if err := tldExample.AddA("ns.other.example.", 3600, addr("auth-other")); err != nil {
		t.Fatal(err)
	}

	// Authoritative zones. The CDN zone aliases a name into the other
	// provider's domain — a cross-zone CNAME cascade.
	authMycdn := dnsserver.NewZone("mycdn.ciab.test.")
	if err := authMycdn.AddA("edge.mycdn.ciab.test.", 60, netip.MustParseAddr("198.51.100.10")); err != nil {
		t.Fatal(err)
	}
	if err := authMycdn.AddCNAME("video.mycdn.ciab.test.", 300, "edge.mycdn.ciab.test."); err != nil {
		t.Fatal(err)
	}
	if err := authMycdn.AddCNAME("img.mycdn.ciab.test.", 300, "pop1.other.example."); err != nil {
		t.Fatal(err)
	}

	authOther := dnsserver.NewZone("other.example.")
	if err := authOther.AddA("pop1.other.example.", 60, netip.MustParseAddr("203.0.113.80")); err != nil {
		t.Fatal(err)
	}

	h := &hierarchy{
		net:      n,
		rootAddr: port("root"),
		rootHits: dnsserver.NewMetrics(),
		tldHits:  dnsserver.NewMetrics(),
		authHits: dnsserver.NewMetrics(),
	}
	dnsserver.Attach(n.Node("root"), dnsserver.Chain(h.rootHits, dnsserver.NewZonePlugin(root)), simnet.Constant(time.Millisecond))
	dnsserver.Attach(n.Node("tld-test"), dnsserver.Chain(h.tldHits, dnsserver.NewZonePlugin(tldTest)), simnet.Constant(time.Millisecond))
	dnsserver.Attach(n.Node("tld-example"), dnsserver.Chain(dnsserver.NewZonePlugin(tldExample)), simnet.Constant(time.Millisecond))
	dnsserver.Attach(n.Node("auth-mycdn"), dnsserver.Chain(h.authHits, dnsserver.NewZonePlugin(authMycdn)), simnet.Constant(time.Millisecond))
	dnsserver.Attach(n.Node("auth-other"), dnsserver.Chain(dnsserver.NewZonePlugin(authOther)), simnet.Constant(time.Millisecond))

	h.resolverEP = n.Node("ldns").Endpoint()
	client := &dnsclient.Client{Transport: &dnsclient.SimTransport{Endpoint: h.resolverEP}}
	client.SetRand(rand.New(rand.NewSource(seed)))
	h.resolver = New(client, n.Clock, h.rootAddr)
	return h
}

func TestIterativeResolution(t *testing.T) {
	h := buildHierarchy(t, 1)
	resp, err := h.resolver.Resolve(context.Background(), "video.mycdn.ciab.test.", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Rcode != dnswire.RcodeSuccess {
		t.Fatalf("rcode = %v", resp.Rcode)
	}
	var gotA bool
	for _, rr := range resp.Answers {
		if a, ok := rr.(*dnswire.A); ok && a.Addr.String() == "198.51.100.10" {
			gotA = true
		}
	}
	if !gotA {
		t.Errorf("answers = %v", resp.Answers)
	}
	if h.rootHits.Total() != 1 || h.tldHits.Total() != 1 || h.authHits.Total() != 1 {
		t.Errorf("hits root=%d tld=%d auth=%d, want 1 each",
			h.rootHits.Total(), h.tldHits.Total(), h.authHits.Total())
	}
}

func TestDelegationCachingSkipsUpperLevels(t *testing.T) {
	h := buildHierarchy(t, 2)
	if _, err := h.resolver.Resolve(context.Background(), "video.mycdn.ciab.test.", dnswire.TypeA); err != nil {
		t.Fatal(err)
	}
	if _, err := h.resolver.Resolve(context.Background(), "edge.mycdn.ciab.test.", dnswire.TypeA); err != nil {
		t.Fatal(err)
	}
	if h.rootHits.Total() != 1 {
		t.Errorf("root queried %d times; delegation cache not used", h.rootHits.Total())
	}
	if h.authHits.Total() != 2 {
		t.Errorf("auth hits = %d", h.authHits.Total())
	}
	zones := h.resolver.CachedZones()
	if len(zones) == 0 {
		t.Error("no cached delegations")
	}
	h.resolver.FlushDelegations()
	if len(h.resolver.CachedZones()) != 0 {
		t.Error("FlushDelegations left entries")
	}
}

func TestCrossZoneCNAMEChase(t *testing.T) {
	h := buildHierarchy(t, 3)
	resp, err := h.resolver.Resolve(context.Background(), "img.mycdn.ciab.test.", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	var sawCNAME, sawA bool
	for _, rr := range resp.Answers {
		switch rec := rr.(type) {
		case *dnswire.CNAME:
			if rec.Target == "pop1.other.example." {
				sawCNAME = true
			}
		case *dnswire.A:
			if rec.Addr.String() == "203.0.113.80" {
				sawA = true
			}
		}
	}
	if !sawCNAME || !sawA {
		t.Errorf("chain missing pieces: cname=%v a=%v answers=%v", sawCNAME, sawA, resp.Answers)
	}
}

func TestNXDomainPropagates(t *testing.T) {
	h := buildHierarchy(t, 4)
	resp, err := h.resolver.Resolve(context.Background(), "ghost.mycdn.ciab.test.", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Rcode != dnswire.RcodeNameError {
		t.Errorf("rcode = %v", resp.Rcode)
	}
}

func TestNoDataPropagates(t *testing.T) {
	h := buildHierarchy(t, 5)
	resp, err := h.resolver.Resolve(context.Background(), "edge.mycdn.ciab.test.", dnswire.TypeAAAA)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Rcode != dnswire.RcodeSuccess || len(resp.Answers) != 0 {
		t.Errorf("rcode=%v answers=%v", resp.Rcode, resp.Answers)
	}
}

func TestResolverNoServers(t *testing.T) {
	r := New(&dnsclient.Client{}, &fixedClock{})
	_, err := r.Resolve(context.Background(), "x.test.", dnswire.TypeA)
	if !errors.Is(err, ErrNoServers) {
		t.Errorf("err = %v", err)
	}
}

type fixedClock struct{ t time.Duration }

func (f *fixedClock) Now() time.Duration { return f.t }

func TestCNAMELoopAcrossZones(t *testing.T) {
	n := simnet.New(6)
	n.AddNode("ldns")
	n.AddNode("auth")
	n.AddLink("ldns", "auth", simnet.Constant(time.Millisecond), 0)
	z := dnsserver.NewZone("loop.test.")
	// Self-referential alias that Resolve must keep re-resolving:
	// a → b, and b is a zone cut... simplest loop: a → b, b → a via
	// out-of-zone semantics is impossible within one zone lookup, so
	// split across two zones on the same server.
	z2 := dnsserver.NewZone("pool.test.")
	if err := z.AddCNAME("a.loop.test.", 60, "b.pool.test."); err != nil {
		t.Fatal(err)
	}
	if err := z2.AddCNAME("b.pool.test.", 60, "a.loop.test."); err != nil {
		t.Fatal(err)
	}
	dnsserver.Attach(n.Node("auth"), dnsserver.Chain(dnsserver.NewZonePlugin(z, z2)), nil)
	client := &dnsclient.Client{Transport: &dnsclient.SimTransport{Endpoint: n.Node("ldns").Endpoint()}}
	client.SetRand(rand.New(rand.NewSource(6)))
	r := New(client, n.Clock, netip.AddrPortFrom(n.Node("auth").Addr, 53))
	_, err := r.Resolve(context.Background(), "a.loop.test.", dnswire.TypeA)
	if !errors.Is(err, ErrMaxCNAME) {
		t.Errorf("err = %v, want ErrMaxCNAME", err)
	}
}

func TestResolverAsPlugin(t *testing.T) {
	h := buildHierarchy(t, 7)
	handler := dnsserver.Chain(h.resolver)
	q := new(dnswire.Message)
	q.SetQuestion("video.mycdn.ciab.test.", dnswire.TypeA)
	resp := dnsserver.Resolve(context.Background(), handler, &dnsserver.Request{Msg: q, Transport: "test"})
	if resp.Rcode != dnswire.RcodeSuccess || len(resp.Answers) == 0 {
		t.Fatalf("rcode=%v answers=%d", resp.Rcode, len(resp.Answers))
	}
	if !resp.RecursionAvailable {
		t.Error("RA not set by recursive resolver")
	}
}

func TestDelegationExpiry(t *testing.T) {
	h := buildHierarchy(t, 8)
	ctx := context.Background()
	if _, err := h.resolver.Resolve(ctx, "video.mycdn.ciab.test.", dnswire.TypeA); err != nil {
		t.Fatal(err)
	}
	// Advance virtual time beyond the delegation TTL: the resolver
	// must walk from the root again.
	h.net.Clock.RunUntil(h.net.Now() + 2*time.Hour)
	if _, err := h.resolver.Resolve(ctx, "video.mycdn.ciab.test.", dnswire.TypeA); err != nil {
		t.Fatal(err)
	}
	if h.rootHits.Total() != 2 {
		t.Errorf("root hits = %d, want 2 after expiry", h.rootHits.Total())
	}
}

func TestGluelessDelegation(t *testing.T) {
	n := simnet.New(9)
	for _, name := range []string{"ldns", "root", "auth", "nshost"} {
		n.AddNode(name)
	}
	for _, peer := range []string{"root", "auth", "nshost"} {
		n.AddLink("ldns", peer, simnet.Constant(time.Millisecond), 0)
	}
	// Root delegates corp.test. to ns.hosting.test. WITHOUT glue, but
	// can itself answer A for ns.hosting.test. (it owns hosting.test).
	root := dnsserver.NewZone(".")
	if err := root.Add(&dnswire.NS{
		Hdr: dnswire.RRHeader{Name: "corp.test.", Type: dnswire.TypeNS, Class: dnswire.ClassINET, TTL: 300},
		NS:  "ns.hosting.test.",
	}); err != nil {
		t.Fatal(err)
	}
	// The glue A is at a name the delegation logic will not pick up as
	// glue (different branch), so the resolver must look it up.
	hosting := dnsserver.NewZone("hosting.test.")
	if err := hosting.AddA("ns.hosting.test.", 300, n.Node("auth").Addr); err != nil {
		t.Fatal(err)
	}
	corp := dnsserver.NewZone("corp.test.")
	if err := corp.AddA("www.corp.test.", 60, netip.MustParseAddr("192.0.2.123")); err != nil {
		t.Fatal(err)
	}
	dnsserver.Attach(n.Node("root"), dnsserver.Chain(dnsserver.NewZonePlugin(root, hosting)), nil)
	dnsserver.Attach(n.Node("auth"), dnsserver.Chain(dnsserver.NewZonePlugin(corp)), nil)

	client := &dnsclient.Client{Transport: &dnsclient.SimTransport{Endpoint: n.Node("ldns").Endpoint()}}
	client.SetRand(rand.New(rand.NewSource(9)))
	r := New(client, n.Clock, netip.AddrPortFrom(n.Node("root").Addr, 53))
	resp, err := r.Resolve(context.Background(), "www.corp.test.", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Answers) != 1 || resp.Answers[0].(*dnswire.A).Addr.String() != "192.0.2.123" {
		t.Errorf("answers = %v", resp.Answers)
	}
}
