package resolver

import (
	"context"
	"errors"
	"math/rand"
	"net/netip"
	"testing"
	"time"

	"github.com/meccdn/meccdn/internal/dnsclient"
	"github.com/meccdn/meccdn/internal/dnsserver"
	"github.com/meccdn/meccdn/internal/dnswire"
	"github.com/meccdn/meccdn/internal/simnet"
)

// lameFixture builds a root that delegates to name servers that do
// not exist (no glue, unresolvable NS names): a lame delegation.
func lameFixture(t *testing.T) (*Resolver, *simnet.Network) {
	t.Helper()
	n := simnet.New(80)
	n.AddNode("ldns")
	n.AddNode("root")
	n.AddLink("ldns", "root", simnet.Constant(time.Millisecond), 0)
	root := dnsserver.NewZone(".")
	if err := root.Add(&dnswire.NS{
		Hdr: dnswire.RRHeader{Name: "lame.test.", Type: dnswire.TypeNS, Class: dnswire.ClassINET, TTL: 300},
		NS:  "ns.ghost.invalid.",
	}); err != nil {
		t.Fatal(err)
	}
	dnsserver.Attach(n.Node("root"), dnsserver.Chain(dnsserver.NewZonePlugin(root)), nil)
	client := &dnsclient.Client{Transport: &dnsclient.SimTransport{Endpoint: n.Node("ldns").Endpoint(), Timeout: 20 * time.Millisecond}}
	client.SetRand(rand.New(rand.NewSource(80)))
	return New(client, n.Clock, netip.AddrPortFrom(n.Node("root").Addr, 53)), n
}

func TestLameDelegationSurfacesError(t *testing.T) {
	r, _ := lameFixture(t)
	_, err := r.Resolve(context.Background(), "www.lame.test.", dnswire.TypeA)
	if !errors.Is(err, ErrLame) {
		t.Errorf("err = %v, want ErrLame", err)
	}
}

func TestResolverAsPluginReportsServfail(t *testing.T) {
	r, _ := lameFixture(t)
	q := new(dnswire.Message)
	q.SetQuestion("www.lame.test.", dnswire.TypeA)
	resp := dnsserver.Resolve(context.Background(), dnsserver.Chain(r), &dnsserver.Request{Msg: q})
	if resp.Rcode != dnswire.RcodeServerFailure {
		t.Errorf("rcode = %v", resp.Rcode)
	}
}

func TestUnreachableRootTimesOutCleanly(t *testing.T) {
	n := simnet.New(81)
	n.AddNode("ldns")
	n.AddNode("root")
	n.AddLink("ldns", "root", simnet.Constant(time.Millisecond), 1.0) // black hole
	client := &dnsclient.Client{Transport: &dnsclient.SimTransport{Endpoint: n.Node("ldns").Endpoint(), Timeout: 10 * time.Millisecond}}
	client.SetRand(rand.New(rand.NewSource(81)))
	r := New(client, n.Clock, netip.AddrPortFrom(n.Node("root").Addr, 53))
	if _, err := r.Resolve(context.Background(), "x.test.", dnswire.TypeA); err == nil {
		t.Error("resolution through a black hole succeeded")
	}
}
