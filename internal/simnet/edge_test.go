package simnet

import (
	"errors"
	"net/netip"
	"testing"
	"time"
)

func TestRemoveLinkPartitionsTraffic(t *testing.T) {
	n := New(70)
	n.AddNode("a")
	n.AddNode("b")
	n.AddLink("a", "b", Constant(time.Millisecond), 0)
	n.Node("b").SetHandler(echoHandler(0))
	ep := n.Node("a").Endpoint()
	if _, _, err := ep.Exchange(n.Node("b").Addr, []byte("x"), time.Second); err != nil {
		t.Fatal(err)
	}
	n.RemoveLink("a", "b")
	if n.HasLink("a", "b") || n.HasLink("b", "a") {
		t.Fatal("links survive removal")
	}
	if _, _, err := ep.Exchange(n.Node("b").Addr, []byte("x"), 10*time.Millisecond); err == nil {
		t.Fatal("exchange succeeded across removed link")
	}
	// Re-adding restores connectivity (handoff pattern).
	n.AddLink("a", "b", Constant(time.Millisecond), 0)
	if _, _, err := ep.Exchange(n.Node("b").Addr, []byte("x"), time.Second); err != nil {
		t.Fatalf("exchange after re-add: %v", err)
	}
}

func TestRemoveLinkInvalidatesRouteCache(t *testing.T) {
	n := New(71)
	for _, name := range []string{"a", "mid1", "mid2", "b"} {
		n.AddNode(name)
	}
	n.AddLink("a", "mid1", Constant(time.Millisecond), 0)
	n.AddLink("mid1", "b", Constant(time.Millisecond), 0)
	n.AddLink("a", "mid2", Constant(5*time.Millisecond), 0)
	n.AddLink("mid2", "b", Constant(5*time.Millisecond), 0)
	path, err := n.Path("a", "b")
	if err != nil {
		t.Fatal(err)
	}
	via := path[1]
	// Remove whichever middle hop was chosen; routing must recompute.
	n.RemoveLink("a", via)
	path2, err := n.Path("a", "b")
	if err != nil {
		t.Fatal(err)
	}
	if path2[1] == via {
		t.Errorf("route cache not invalidated: still via %s", via)
	}
}

func TestClockPendingAndRunWhileEmptyQueue(t *testing.T) {
	var c Clock
	if c.Pending() != 0 {
		t.Error("fresh clock has pending events")
	}
	ran := false
	c.RunWhile(func() bool { ran = true; return true }) // drains immediately
	if !ran {
		t.Error("RunWhile never evaluated its condition")
	}
	timer := c.Schedule(time.Second, func() {})
	if c.Pending() != 1 {
		t.Errorf("pending = %d", c.Pending())
	}
	timer.Cancel()
	c.RunUntil(2 * time.Second) // must skip the cancelled head
	if c.Now() != 2*time.Second {
		t.Errorf("now = %v", c.Now())
	}
}

func TestExchangeToSelfIsInstant(t *testing.T) {
	n := New(72)
	n.AddNode("solo")
	n.Node("solo").SetHandler(echoHandler(3 * time.Millisecond))
	resp, rtt, err := n.Node("solo").Endpoint().Exchange(n.Node("solo").Addr, []byte("loop"), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if string(resp) != "loop" {
		t.Errorf("resp = %q", resp)
	}
	// Only the processing delay: zero hops.
	if rtt != 3*time.Millisecond {
		t.Errorf("rtt = %v", rtt)
	}
}

func TestSendFromUnknownAddress(t *testing.T) {
	n := New(73)
	n.AddNode("a")
	err := n.Send(Datagram{Dst: n.Node("a").Addr})
	if err == nil {
		t.Error("send from zero address succeeded")
	}
}

func TestRaceSingleDestination(t *testing.T) {
	n := raceFixture(t)
	ep := n.Node("client").Endpoint()
	idx, resp, _, err := ep.Race([]netip.Addr{n.Node("fast").Addr}, []byte("solo"), time.Second)
	if err != nil || idx != 0 || string(resp) != "fast:solo" {
		t.Errorf("idx=%d resp=%q err=%v", idx, resp, err)
	}
}

func TestMixtureZeroComponents(t *testing.T) {
	var m Mixture
	if err := m.Validate(); err == nil {
		t.Error("empty mixture validated")
	}
}

func TestTimeoutErrorWrapping(t *testing.T) {
	n := New(74)
	n.AddNode("a")
	n.AddNode("b")
	n.AddLink("a", "b", Constant(time.Millisecond), 1)
	_, _, err := n.Node("a").Endpoint().Exchange(n.Node("b").Addr, []byte("x"), 5*time.Millisecond)
	if !errors.Is(err, ErrTimeout) {
		t.Errorf("err = %v", err)
	}
}
