package simnet

import (
	"errors"
	"testing"
	"time"
)

// lineTopology builds ue—enb—pgw—dns with constant link delays.
func lineTopology(t *testing.T, seed int64) *Network {
	t.Helper()
	n := New(seed)
	n.AddNode("ue")
	n.AddNode("enb")
	n.AddNode("pgw")
	n.AddNode("dns")
	n.AddLink("ue", "enb", Constant(10*time.Millisecond), 0)
	n.AddLink("enb", "pgw", Constant(2*time.Millisecond), 0)
	n.AddLink("pgw", "dns", Constant(3*time.Millisecond), 0)
	return n
}

func echoHandler(proc time.Duration) HandlerFunc {
	return func(ctx *Ctx, dg Datagram) {
		ctx.Reply(dg.Payload, proc)
	}
}

func TestExchangeRTT(t *testing.T) {
	n := lineTopology(t, 1)
	n.Node("dns").SetHandler(echoHandler(time.Millisecond))
	resp, rtt, err := n.Node("ue").Endpoint().Exchange(n.Node("dns").Addr, []byte("ping"), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if string(resp) != "ping" {
		t.Errorf("payload = %q", resp)
	}
	// 15ms each way + 1ms processing.
	if want := 31 * time.Millisecond; rtt != want {
		t.Errorf("rtt = %v, want %v", rtt, want)
	}
}

func TestExchangeTimeoutOnSilentServer(t *testing.T) {
	n := lineTopology(t, 2)
	// dns node has no handler: queries vanish.
	_, rtt, err := n.Node("ue").Endpoint().Exchange(n.Node("dns").Addr, []byte("x"), 50*time.Millisecond)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want timeout", err)
	}
	if rtt < 50*time.Millisecond {
		t.Errorf("timeout returned early: %v", rtt)
	}
}

func TestExchangeLossCausesTimeout(t *testing.T) {
	n := New(3)
	n.AddNode("a")
	n.AddNode("b")
	n.AddLink("a", "b", Constant(time.Millisecond), 1.0) // always lost
	n.Node("b").SetHandler(echoHandler(0))
	_, _, err := n.Node("a").Endpoint().Exchange(n.Node("b").Addr, []byte("x"), 10*time.Millisecond)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want timeout", err)
	}
}

func TestPartialLossEventuallySucceeds(t *testing.T) {
	n := New(4)
	n.AddNode("a")
	n.AddNode("b")
	n.AddLink("a", "b", Constant(time.Millisecond), 0.5)
	n.Node("b").SetHandler(echoHandler(0))
	ep := n.Node("a").Endpoint()
	ok, timedOut := 0, 0
	for i := 0; i < 200; i++ {
		_, _, err := ep.Exchange(n.Node("b").Addr, []byte("x"), 5*time.Millisecond)
		if err == nil {
			ok++
		} else {
			timedOut++
		}
	}
	// Success needs both directions to survive: expect ≈25%.
	if ok < 20 || ok > 90 {
		t.Errorf("successes = %d/200, want ≈50", ok)
	}
	if ok+timedOut != 200 {
		t.Error("accounting mismatch")
	}
}

func TestRoutingMultiHopPath(t *testing.T) {
	n := lineTopology(t, 5)
	path, err := n.Path("ue", "dns")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"ue", "enb", "pgw", "dns"}
	if len(path) != len(want) {
		t.Fatalf("path = %v", path)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("path = %v, want %v", path, want)
		}
	}
}

func TestRoutingNoRoute(t *testing.T) {
	n := New(6)
	n.AddNode("island1")
	n.AddNode("island2")
	if _, err := n.Path("island1", "island2"); err == nil {
		t.Error("expected no-route error")
	}
	err := n.Send(Datagram{Src: n.Node("island1").Addr, Dst: n.Node("island2").Addr})
	if err == nil {
		t.Error("Send across partition succeeded")
	}
}

func TestRoutingPicksShortestPath(t *testing.T) {
	n := New(7)
	for _, name := range []string{"a", "b", "c", "d"} {
		n.AddNode(name)
	}
	// a—b—c—d long way, a—d direct.
	n.AddLink("a", "b", Constant(time.Millisecond), 0)
	n.AddLink("b", "c", Constant(time.Millisecond), 0)
	n.AddLink("c", "d", Constant(time.Millisecond), 0)
	n.AddLink("a", "d", Constant(50*time.Millisecond), 0)
	path, err := n.Path("a", "d")
	if err != nil {
		t.Fatal(err)
	}
	if len(path) != 2 {
		t.Errorf("path = %v, want direct hop", path)
	}
}

func TestTapSeesForwardAndDeliver(t *testing.T) {
	n := lineTopology(t, 8)
	n.Node("dns").SetHandler(echoHandler(0))
	var pgwEvents []HopEvent
	n.Node("pgw").Tap(func(ev HopEvent) { pgwEvents = append(pgwEvents, ev) })
	var dnsEvents []HopEvent
	n.Node("dns").Tap(func(ev HopEvent) { dnsEvents = append(dnsEvents, ev) })

	_, _, err := n.Node("ue").Endpoint().Exchange(n.Node("dns").Addr, []byte("q"), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	// P-GW forwards the query and the reply.
	if len(pgwEvents) != 2 {
		t.Fatalf("pgw saw %d events, want 2", len(pgwEvents))
	}
	for _, ev := range pgwEvents {
		if ev.Kind != HopForward {
			t.Errorf("pgw event kind = %v", ev.Kind)
		}
	}
	// Query reaches P-GW after the 10ms air leg + 2ms backhaul.
	if pgwEvents[0].Elapsed != 12*time.Millisecond {
		t.Errorf("query at pgw after %v, want 12ms", pgwEvents[0].Elapsed)
	}
	if len(dnsEvents) != 1 || dnsEvents[0].Kind != HopDeliver {
		t.Errorf("dns events = %+v", dnsEvents)
	}
}

func TestTapSeesDrop(t *testing.T) {
	n := New(9)
	n.AddNode("a")
	n.AddNode("b")
	n.AddLink("a", "b", Constant(time.Millisecond), 1.0)
	var drops int
	n.Node("b").Tap(func(ev HopEvent) {
		if ev.Kind == HopDrop {
			drops++
		}
	})
	_, _, err := n.Node("a").Endpoint().Exchange(n.Node("b").Addr, []byte("x"), 5*time.Millisecond)
	if !errors.Is(err, ErrTimeout) {
		t.Fatal(err)
	}
	if drops != 1 {
		t.Errorf("drops = %d", drops)
	}
}

func TestNestedExchangeThroughHandler(t *testing.T) {
	// Recursive resolution pattern: ue → ldns → upstream, where the
	// ldns handler performs its own synchronous exchange inline.
	n := New(10)
	n.AddNode("ue")
	n.AddNode("ldns")
	n.AddNode("upstream")
	n.AddLink("ue", "ldns", Constant(5*time.Millisecond), 0)
	n.AddLink("ldns", "upstream", Constant(20*time.Millisecond), 0)

	n.Node("upstream").SetHandler(echoHandler(2 * time.Millisecond))
	n.Node("ldns").SetHandler(HandlerFunc(func(ctx *Ctx, dg Datagram) {
		up := ctx.Node().Endpoint()
		resp, _, err := up.Exchange(n.Node("upstream").Addr, dg.Payload, time.Second)
		if err != nil {
			return
		}
		ctx.Reply(append(resp, '!'), time.Millisecond)
	}))

	resp, rtt, err := n.Node("ue").Endpoint().Exchange(n.Node("ldns").Addr, []byte("q"), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if string(resp) != "q!" {
		t.Errorf("resp = %q", resp)
	}
	// 5+20+2+20+1+5 = 53ms.
	if want := 53 * time.Millisecond; rtt != want {
		t.Errorf("rtt = %v, want %v", rtt, want)
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func(seed int64) []time.Duration {
		n := New(seed)
		n.AddNode("a")
		n.AddNode("b")
		n.AddLink("a", "b", Normal{Mean: 10 * time.Millisecond, Stddev: 2 * time.Millisecond}, 0.05)
		n.Node("b").SetHandler(echoHandler(time.Millisecond))
		ep := n.Node("a").Endpoint()
		var rtts []time.Duration
		for i := 0; i < 100; i++ {
			_, rtt, err := ep.Exchange(n.Node("b").Addr, []byte("x"), 100*time.Millisecond)
			if err != nil {
				rtt = -1
			}
			rtts = append(rtts, rtt)
		}
		return rtts
	}
	a, b := run(99), run(99)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverged at query %d: %v vs %v", i, a[i], b[i])
		}
	}
	c := run(100)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical runs")
	}
}

func TestDuplicateNodePanics(t *testing.T) {
	n := New(11)
	n.AddNode("x")
	defer func() {
		if recover() == nil {
			t.Error("duplicate node did not panic")
		}
	}()
	n.AddNode("x")
}

func TestLinkToUnknownNodePanics(t *testing.T) {
	n := New(12)
	n.AddNode("x")
	defer func() {
		if recover() == nil {
			t.Error("link to unknown node did not panic")
		}
	}()
	n.AddLink("x", "ghost", Constant(0), 0)
}

func TestSendAsyncAndUnsolicitedDelivery(t *testing.T) {
	n := New(13)
	n.AddNode("a")
	n.AddNode("b")
	n.AddLink("a", "b", Constant(time.Millisecond), 0)
	var got []byte
	n.Node("b").SetHandler(HandlerFunc(func(ctx *Ctx, dg Datagram) { got = dg.Payload }))
	if err := n.Node("a").Endpoint().SendAsync(n.Node("b").Addr, []byte("hi")); err != nil {
		t.Fatal(err)
	}
	n.Clock.Run()
	if string(got) != "hi" {
		t.Errorf("got %q", got)
	}
}

func TestNodesSorted(t *testing.T) {
	n := New(14)
	n.AddNode("zeta")
	n.AddNode("alpha")
	n.AddNode("mid")
	names := n.Nodes()
	if names[0] != "alpha" || names[2] != "zeta" {
		t.Errorf("Nodes() = %v", names)
	}
	if n.NodeByAddr(n.Node("mid").Addr) != n.Node("mid") {
		t.Error("NodeByAddr mismatch")
	}
}

func TestSelfPath(t *testing.T) {
	n := New(15)
	n.AddNode("solo")
	p, err := n.Path("solo", "solo")
	if err != nil || len(p) != 1 {
		t.Errorf("self path = %v, %v", p, err)
	}
}
