package simnet

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestClockOrdering(t *testing.T) {
	var c Clock
	var fired []int
	c.Schedule(30*time.Millisecond, func() { fired = append(fired, 3) })
	c.Schedule(10*time.Millisecond, func() { fired = append(fired, 1) })
	c.Schedule(20*time.Millisecond, func() { fired = append(fired, 2) })
	c.Run()
	if len(fired) != 3 || fired[0] != 1 || fired[1] != 2 || fired[2] != 3 {
		t.Errorf("fired = %v", fired)
	}
	if c.Now() != 30*time.Millisecond {
		t.Errorf("Now = %v", c.Now())
	}
}

func TestClockFIFOAtSameInstant(t *testing.T) {
	var c Clock
	var fired []int
	for i := 0; i < 10; i++ {
		i := i
		c.Schedule(time.Millisecond, func() { fired = append(fired, i) })
	}
	c.Run()
	for i, v := range fired {
		if v != i {
			t.Fatalf("same-instant events fired out of order: %v", fired)
		}
	}
}

func TestClockCancel(t *testing.T) {
	var c Clock
	fired := false
	timer := c.Schedule(time.Second, func() { fired = true })
	timer.Cancel()
	timer.Cancel() // double cancel is fine
	c.Run()
	if fired {
		t.Error("cancelled event fired")
	}
	var nilTimer *Timer
	nilTimer.Cancel() // must not panic
}

func TestClockNegativeDelay(t *testing.T) {
	var c Clock
	fired := false
	c.Schedule(-time.Second, func() { fired = true })
	c.Run()
	if !fired || c.Now() != 0 {
		t.Errorf("fired=%v now=%v", fired, c.Now())
	}
}

func TestClockRunUntil(t *testing.T) {
	var c Clock
	var fired []time.Duration
	for _, d := range []time.Duration{5, 10, 15, 20} {
		d := d * time.Millisecond
		c.Schedule(d, func() { fired = append(fired, d) })
	}
	c.RunUntil(12 * time.Millisecond)
	if len(fired) != 2 {
		t.Errorf("fired %d events, want 2", len(fired))
	}
	if c.Now() != 12*time.Millisecond {
		t.Errorf("Now = %v, want 12ms", c.Now())
	}
	c.Run()
	if len(fired) != 4 {
		t.Errorf("after Run fired %d, want 4", len(fired))
	}
}

func TestClockScheduleAtPast(t *testing.T) {
	var c Clock
	c.Schedule(10*time.Millisecond, func() {
		fired := false
		c.ScheduleAt(time.Millisecond, func() { fired = true })
		c.RunWhile(func() bool { return !fired })
		if c.Now() != 10*time.Millisecond {
			t.Errorf("past event advanced time backwards: %v", c.Now())
		}
	})
	c.Run()
}

func TestClockNestedScheduling(t *testing.T) {
	var c Clock
	depth := 0
	var rec func()
	rec = func() {
		depth++
		if depth < 50 {
			c.Schedule(time.Millisecond, rec)
		}
	}
	c.Schedule(0, rec)
	c.Run()
	if depth != 50 {
		t.Errorf("depth = %d", depth)
	}
	if c.Now() != 49*time.Millisecond {
		t.Errorf("Now = %v", c.Now())
	}
}

func TestClockReentrantPump(t *testing.T) {
	// A handler-style event pumps the loop waiting for a later event,
	// mimicking a nested synchronous Exchange.
	var c Clock
	innerDone := false
	outerSawInner := false
	c.Schedule(time.Millisecond, func() {
		c.Schedule(5*time.Millisecond, func() { innerDone = true })
		c.RunWhile(func() bool { return !innerDone })
		outerSawInner = innerDone
	})
	c.Run()
	if !outerSawInner {
		t.Error("nested pump did not observe inner completion")
	}
}

func TestClockPropertyEventTimesMonotonic(t *testing.T) {
	f := func(delays []uint16) bool {
		var c Clock
		var times []time.Duration
		for _, d := range delays {
			c.Schedule(time.Duration(d)*time.Microsecond, func() {
				times = append(times, c.Now())
			})
		}
		c.Run()
		return sort.SliceIsSorted(times, func(i, j int) bool { return times[i] < times[j] })
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSamplers(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if d := (Constant(5 * time.Millisecond)).Sample(rng); d != 5*time.Millisecond {
		t.Errorf("Constant = %v", d)
	}
	u := Uniform{Min: 2 * time.Millisecond, Max: 4 * time.Millisecond}
	for i := 0; i < 1000; i++ {
		if d := u.Sample(rng); d < u.Min || d > u.Max {
			t.Fatalf("Uniform out of range: %v", d)
		}
	}
	nrm := Normal{Mean: 10 * time.Millisecond, Stddev: 3 * time.Millisecond}
	for i := 0; i < 1000; i++ {
		if d := nrm.Sample(rng); d < 0 || d > nrm.Mean+4*nrm.Stddev {
			t.Fatalf("Normal out of clamp range: %v", d)
		}
	}
	ln := LogNormal{Median: 20 * time.Millisecond, Sigma: 0.5, Max: 500 * time.Millisecond}
	for i := 0; i < 1000; i++ {
		if d := ln.Sample(rng); d <= 0 || d > ln.Max {
			t.Fatalf("LogNormal out of range: %v", d)
		}
	}
	sh := Shifted{Base: 7 * time.Millisecond, Jitter: Uniform{Max: time.Millisecond}}
	for i := 0; i < 100; i++ {
		if d := sh.Sample(rng); d < 7*time.Millisecond || d > 8*time.Millisecond {
			t.Fatalf("Shifted out of range: %v", d)
		}
	}
	if d := (Shifted{Base: 3 * time.Millisecond}).Sample(rng); d != 3*time.Millisecond {
		t.Errorf("Shifted nil jitter = %v", d)
	}
}

func TestMixtureSampler(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := Mixture{Components: []Component{
		{Weight: 0.9, Sampler: Constant(time.Millisecond)},
		{Weight: 0.1, Sampler: Constant(100 * time.Millisecond)},
	}}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	fast, slow := 0, 0
	for i := 0; i < 10000; i++ {
		switch m.Sample(rng) {
		case time.Millisecond:
			fast++
		case 100 * time.Millisecond:
			slow++
		default:
			t.Fatal("unexpected sample value")
		}
	}
	ratio := float64(slow) / float64(fast+slow)
	if ratio < 0.07 || ratio > 0.13 {
		t.Errorf("slow-mode ratio = %.3f, want ≈0.10", ratio)
	}
	bad := Mixture{Components: []Component{{Weight: 0, Sampler: Constant(0)}}}
	if err := bad.Validate(); err == nil {
		t.Error("zero-weight mixture validated")
	}
	if d := bad.Sample(rng); d != 0 {
		t.Errorf("degenerate mixture sample = %v", d)
	}
}

func TestMixtureDeterminism(t *testing.T) {
	m := Mixture{Components: []Component{
		{Weight: 1, Sampler: Uniform{Max: time.Second}},
		{Weight: 1, Sampler: LogNormal{Median: time.Millisecond, Sigma: 1}},
	}}
	sample := func(seed int64) []time.Duration {
		rng := rand.New(rand.NewSource(seed))
		out := make([]time.Duration, 100)
		for i := range out {
			out[i] = m.Sample(rng)
		}
		return out
	}
	a, b := sample(42), sample(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different samples")
		}
	}
}
