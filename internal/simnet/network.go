package simnet

import (
	"fmt"
	"math/rand"
	"net/netip"
	"sort"
	"time"
)

// Datagram is an unreliable message in flight between two nodes,
// carrying an opaque payload (in this repository: a packed DNS
// message or a small CDN control payload).
type Datagram struct {
	Src, Dst netip.Addr
	Payload  []byte
	// ExchangeID correlates a reply with the Exchange that sent the
	// request. Zero for unsolicited sends.
	ExchangeID uint64
	// Reply marks response datagrams.
	Reply bool
	// OrigSrc is the originating client when the datagram has been
	// relayed by a source-preserving proxy (kube-proxy DNAT). Zero
	// means Src is the client.
	OrigSrc netip.Addr
}

// Client returns the effective client address: OrigSrc when a proxy
// preserved it, Src otherwise.
func (dg Datagram) Client() netip.Addr {
	if dg.OrigSrc.IsValid() {
		return dg.OrigSrc
	}
	return dg.Src
}

// Handler processes datagrams delivered to a node.
type Handler interface {
	HandleDatagram(ctx *Ctx, dg Datagram)
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(ctx *Ctx, dg Datagram)

// HandleDatagram implements Handler.
func (f HandlerFunc) HandleDatagram(ctx *Ctx, dg Datagram) { f(ctx, dg) }

// HopEvent is what an observation tap sees when a datagram transits,
// arrives at, or is dropped on the way to a node.
type HopEvent struct {
	Time    time.Duration
	Node    string
	Kind    HopKind
	Dg      Datagram
	Elapsed time.Duration // time since the datagram was sent
}

// HopKind classifies a HopEvent.
type HopKind int

// Hop event kinds.
const (
	HopForward HopKind = iota // datagram transits this node
	HopDeliver                // datagram delivered to this node's handler
	HopDrop                   // datagram lost on the link into this node
)

// String returns a short mnemonic.
func (k HopKind) String() string {
	switch k {
	case HopForward:
		return "forward"
	case HopDeliver:
		return "deliver"
	case HopDrop:
		return "drop"
	}
	return fmt.Sprintf("hopkind(%d)", int(k))
}

// TapFunc observes hop events at a node, like a packet capture.
type TapFunc func(ev HopEvent)

// Node is a named participant in the network.
type Node struct {
	Name    string
	Addr    netip.Addr
	handler Handler
	taps    []TapFunc
	net     *Network
}

// SetHandler installs the node's datagram handler.
func (n *Node) SetHandler(h Handler) { n.handler = h }

// Network returns the network the node belongs to.
func (n *Node) Network() *Network { return n.net }

// Tap registers an observation tap at this node; it sees every
// datagram that is delivered to, forwarded through, or dropped at the
// node.
func (n *Node) Tap(f TapFunc) { n.taps = append(n.taps, f) }

func (n *Node) observe(ev HopEvent) {
	for _, f := range n.taps {
		f(ev)
	}
}

// Link is a unidirectional edge with a delay distribution and a loss
// probability. AddLink installs both directions with the same model.
type Link struct {
	From, To string
	Delay    Sampler
	LossProb float64
}

// Network is a graph of nodes and links sharing one virtual clock and
// one deterministic RNG.
type Network struct {
	Clock *Clock
	rng   *rand.Rand

	nodes  map[string]*Node
	byAddr map[netip.Addr]*Node
	links  map[[2]string]*Link
	routes map[[2]string][]string // cached BFS paths, node names inclusive

	nextExchange uint64
	nextAddr     uint32
	pending      map[uint64]*pendingExchange
}

// New returns an empty network using the given RNG seed.
func New(seed int64) *Network {
	return &Network{
		Clock:  new(Clock),
		rng:    rand.New(rand.NewSource(seed)),
		nodes:  make(map[string]*Node),
		byAddr: make(map[netip.Addr]*Node),
		links:  make(map[[2]string]*Link),
		routes: make(map[[2]string][]string),
		// Addresses are allocated from TEST-NET-3 unless the caller
		// assigns explicit ones.
		nextAddr: 0xCB007100, // 203.0.113.0
	}
}

// Rand exposes the simulation RNG so higher layers draw from the same
// deterministic stream.
func (n *Network) Rand() *rand.Rand { return n.rng }

// Now returns the current virtual time.
func (n *Network) Now() time.Duration { return n.Clock.Now() }

// AddNode creates a node with an auto-assigned address.
func (n *Network) AddNode(name string) *Node {
	n.nextAddr++
	a := n.nextAddr
	return n.AddNodeAddr(name, netip.AddrFrom4([4]byte{byte(a >> 24), byte(a >> 16), byte(a >> 8), byte(a)}))
}

// AddNodeAddr creates a node with an explicit address. It panics on a
// duplicate name or address: topologies are built once at startup and
// a duplicate is a programming error.
func (n *Network) AddNodeAddr(name string, addr netip.Addr) *Node {
	if _, ok := n.nodes[name]; ok {
		panic(fmt.Sprintf("simnet: duplicate node %q", name))
	}
	if _, ok := n.byAddr[addr]; ok {
		panic(fmt.Sprintf("simnet: duplicate address %v", addr))
	}
	node := &Node{Name: name, Addr: addr, net: n}
	n.nodes[name] = node
	n.byAddr[addr] = node
	return node
}

// Node returns the named node, or nil.
func (n *Network) Node(name string) *Node { return n.nodes[name] }

// NodeByAddr returns the node bound to addr, or nil.
func (n *Network) NodeByAddr(addr netip.Addr) *Node { return n.byAddr[addr] }

// Nodes returns all node names in sorted order.
func (n *Network) Nodes() []string {
	names := make([]string, 0, len(n.nodes))
	for name := range n.nodes {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// AddLink joins two nodes bidirectionally with the same delay model
// and loss probability in each direction.
func (n *Network) AddLink(a, b string, delay Sampler, lossProb float64) {
	n.addDirectedLink(a, b, delay, lossProb)
	n.addDirectedLink(b, a, delay, lossProb)
}

// AddDirectedLink joins a→b only.
func (n *Network) AddDirectedLink(from, to string, delay Sampler, lossProb float64) {
	n.addDirectedLink(from, to, delay, lossProb)
}

// RemoveLink deletes both directions of the a↔b link, if present.
// Datagrams already in flight are unaffected; handoff happens between
// packets, like a break-before-make cellular handover.
func (n *Network) RemoveLink(a, b string) {
	delete(n.links, [2]string{a, b})
	delete(n.links, [2]string{b, a})
	n.routes = make(map[[2]string][]string)
}

// HasLink reports whether a directed a→b link exists.
func (n *Network) HasLink(a, b string) bool {
	_, ok := n.links[[2]string{a, b}]
	return ok
}

func (n *Network) addDirectedLink(from, to string, delay Sampler, lossProb float64) {
	if n.nodes[from] == nil || n.nodes[to] == nil {
		panic(fmt.Sprintf("simnet: link %s→%s references unknown node", from, to))
	}
	n.links[[2]string{from, to}] = &Link{From: from, To: to, Delay: delay, LossProb: lossProb}
	n.routes = make(map[[2]string][]string) // topology changed: drop cache
}

// Path returns the node names along the shortest (fewest-hops) route
// from src to dst, inclusive of both endpoints.
func (n *Network) Path(src, dst string) ([]string, error) {
	if src == dst {
		return []string{src}, nil
	}
	key := [2]string{src, dst}
	if p, ok := n.routes[key]; ok {
		if p == nil {
			return nil, fmt.Errorf("simnet: no route from %s to %s", src, dst)
		}
		return p, nil
	}
	// BFS over directed links. Neighbor order is sorted for
	// determinism.
	prev := map[string]string{src: src}
	queue := []string{src}
	for len(queue) > 0 && prev[dst] == "" {
		cur := queue[0]
		queue = queue[1:]
		var nbrs []string
		for k := range n.links {
			if k[0] == cur {
				nbrs = append(nbrs, k[1])
			}
		}
		sort.Strings(nbrs)
		for _, nb := range nbrs {
			if _, seen := prev[nb]; !seen {
				prev[nb] = cur
				queue = append(queue, nb)
			}
		}
	}
	if _, ok := prev[dst]; !ok {
		n.routes[key] = nil
		return nil, fmt.Errorf("simnet: no route from %s to %s", src, dst)
	}
	var rev []string
	for at := dst; ; at = prev[at] {
		rev = append(rev, at)
		if at == src {
			break
		}
	}
	path := make([]string, len(rev))
	for i, name := range rev {
		path[len(rev)-1-i] = name
	}
	n.routes[key] = path
	return path, nil
}

// Send injects a datagram at its source node. It traverses the routed
// path hop by hop in virtual time, invoking taps along the way, and is
// dropped if any link loses it. Delivery invokes the destination
// node's handler.
func (n *Network) Send(dg Datagram) error {
	src := n.byAddr[dg.Src]
	dst := n.byAddr[dg.Dst]
	if src == nil {
		return fmt.Errorf("simnet: send from unknown address %v", dg.Src)
	}
	if dst == nil {
		return fmt.Errorf("simnet: send to unknown address %v", dg.Dst)
	}
	path, err := n.Path(src.Name, dst.Name)
	if err != nil {
		return err
	}
	if src == dst {
		// Loopback: deliver to the node's own handler immediately.
		n.Clock.Schedule(0, func() {
			dst.observe(HopEvent{Time: n.Clock.Now(), Node: dst.Name, Kind: HopDeliver, Dg: dg})
			if n.deliverReply(dg) {
				return
			}
			if dst.handler != nil {
				dst.handler.HandleDatagram(&Ctx{net: n, node: dst, req: dg}, dg)
			}
		})
		return nil
	}
	sentAt := n.Clock.Now()
	elapsed := time.Duration(0)
	for i := 1; i < len(path); i++ {
		link := n.links[[2]string{path[i-1], path[i]}]
		elapsed += link.Delay.Sample(n.rng)
		hop := n.nodes[path[i]]
		if link.LossProb > 0 && n.rng.Float64() < link.LossProb {
			at := elapsed
			n.Clock.ScheduleAt(sentAt+at, func() {
				hop.observe(HopEvent{Time: n.Clock.Now(), Node: hop.Name, Kind: HopDrop, Dg: dg, Elapsed: at})
			})
			return nil // lost in transit; sender sees silence
		}
		at := elapsed
		final := i == len(path)-1
		n.Clock.ScheduleAt(sentAt+at, func() {
			kind := HopForward
			if final {
				kind = HopDeliver
			}
			hop.observe(HopEvent{Time: n.Clock.Now(), Node: hop.Name, Kind: kind, Dg: dg, Elapsed: at})
			if !final {
				return
			}
			if n.deliverReply(dg) {
				return
			}
			if hop.handler != nil {
				hop.handler.HandleDatagram(&Ctx{net: n, node: hop, req: dg}, dg)
			}
		})
	}
	return nil
}
