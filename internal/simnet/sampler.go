package simnet

import (
	"fmt"
	"math"
	"math/rand"
	"time"
)

// Sampler produces latency samples. Implementations must be pure
// functions of the supplied RNG so simulations stay deterministic.
type Sampler interface {
	Sample(rng *rand.Rand) time.Duration
}

// Constant is a fixed-delay sampler.
type Constant time.Duration

// Sample implements Sampler.
func (c Constant) Sample(*rand.Rand) time.Duration { return time.Duration(c) }

// String renders the delay.
func (c Constant) String() string { return time.Duration(c).String() }

// Uniform samples uniformly from [Min, Max].
type Uniform struct {
	Min, Max time.Duration
}

// Sample implements Sampler.
func (u Uniform) Sample(rng *rand.Rand) time.Duration {
	if u.Max <= u.Min {
		return u.Min
	}
	return u.Min + time.Duration(rng.Int63n(int64(u.Max-u.Min)+1))
}

// Normal samples from a truncated normal distribution (negative draws
// clamp to zero, draws beyond Mean+4σ clamp to that bound so a single
// unlucky sample cannot distort a whole experiment).
type Normal struct {
	Mean   time.Duration
	Stddev time.Duration
}

// Sample implements Sampler.
func (n Normal) Sample(rng *rand.Rand) time.Duration {
	d := time.Duration(rng.NormFloat64()*float64(n.Stddev)) + n.Mean
	if d < 0 {
		return 0
	}
	if hi := n.Mean + 4*n.Stddev; d > hi {
		return hi
	}
	return d
}

// LogNormal samples from a log-normal distribution parameterized by
// the *resulting* median and a dimensionless sigma, which is the shape
// observed for wide-area and cellular DNS latency (long right tail).
type LogNormal struct {
	Median time.Duration
	Sigma  float64
	// Max, if non-zero, caps samples (a crude model of client
	// timeouts bounding observed latency).
	Max time.Duration
}

// Sample implements Sampler.
func (l LogNormal) Sample(rng *rand.Rand) time.Duration {
	d := time.Duration(float64(l.Median) * math.Exp(rng.NormFloat64()*l.Sigma))
	if l.Max > 0 && d > l.Max {
		return l.Max
	}
	return d
}

// Shifted adds a constant offset to another sampler: propagation delay
// plus a variable component.
type Shifted struct {
	Base   time.Duration
	Jitter Sampler
}

// Sample implements Sampler.
func (s Shifted) Sample(rng *rand.Rand) time.Duration {
	d := s.Base
	if s.Jitter != nil {
		d += s.Jitter.Sample(rng)
	}
	return d
}

// Mixture samples from one of several component samplers with the
// given weights; it models multi-modal latency such as a resolver that
// usually answers from cache but occasionally recurses.
type Mixture struct {
	Components []Component
}

// Component is one mode of a Mixture.
type Component struct {
	Weight  float64
	Sampler Sampler
}

// Sample implements Sampler.
func (m Mixture) Sample(rng *rand.Rand) time.Duration {
	var total float64
	for _, c := range m.Components {
		total += c.Weight
	}
	if total <= 0 || len(m.Components) == 0 {
		return 0
	}
	x := rng.Float64() * total
	for _, c := range m.Components {
		if x -= c.Weight; x <= 0 {
			return c.Sampler.Sample(rng)
		}
	}
	return m.Components[len(m.Components)-1].Sampler.Sample(rng)
}

// Validate checks that the mixture has at least one positive weight.
func (m Mixture) Validate() error {
	for _, c := range m.Components {
		if c.Weight > 0 {
			return nil
		}
	}
	return fmt.Errorf("simnet: mixture has no positive-weight component")
}
