// Package simnet is a deterministic discrete-event network simulator.
//
// It provides a virtual clock with an event queue, nodes joined by
// links with configurable delay, jitter, and loss, multi-hop routing
// with per-hop observation taps (the simulated analogue of running
// tcpdump at the P-GW), and a synchronous datagram Exchange facade so
// request/response protocols such as DNS can be written in ordinary
// sequential style while still executing entirely in virtual time.
//
// All randomness flows from a single seeded source, so a simulation
// with the same seed replays identically. Time never advances unless
// an event fires; a full experiment of thousands of queries runs in
// microseconds of wall-clock time.
package simnet

import (
	"container/heap"
	"time"
)

// Clock is a virtual clock driving a discrete-event simulation.
// The zero value is ready to use and starts at time zero.
type Clock struct {
	now     time.Duration
	queue   eventHeap
	nextSeq uint64
}

// event is a scheduled callback.
type event struct {
	at        time.Duration
	seq       uint64 // FIFO tie-break for equal times
	fn        func()
	cancelled bool
	index     int
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index, h[j].index = i, j
}
func (h *eventHeap) Push(x any) {
	e := x.(*event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Timer is a handle to a scheduled event.
type Timer struct {
	e *event
}

// Cancel prevents the event from firing. Cancelling an already-fired
// or already-cancelled timer is a no-op.
func (t *Timer) Cancel() {
	if t != nil && t.e != nil {
		t.e.cancelled = true
	}
}

// Now returns the current virtual time.
func (c *Clock) Now() time.Duration { return c.now }

// Schedule arranges for fn to run after d of virtual time. A negative
// d is treated as zero. Events at the same instant fire in the order
// they were scheduled.
func (c *Clock) Schedule(d time.Duration, fn func()) *Timer {
	if d < 0 {
		d = 0
	}
	return c.ScheduleAt(c.now+d, fn)
}

// ScheduleAt arranges for fn to run at absolute virtual time t.
// A t in the past fires at the current instant.
func (c *Clock) ScheduleAt(t time.Duration, fn func()) *Timer {
	if t < c.now {
		t = c.now
	}
	e := &event{at: t, seq: c.nextSeq, fn: fn}
	c.nextSeq++
	heap.Push(&c.queue, e)
	return &Timer{e: e}
}

// step fires the earliest pending event and reports whether one fired.
func (c *Clock) step() bool {
	for c.queue.Len() > 0 {
		e := heap.Pop(&c.queue).(*event)
		if e.cancelled {
			continue
		}
		c.now = e.at
		e.fn()
		return true
	}
	return false
}

// Run fires events until the queue is empty.
func (c *Clock) Run() {
	for c.step() {
	}
}

// RunUntil fires events with times ≤ t, then advances the clock to t.
func (c *Clock) RunUntil(t time.Duration) {
	for c.queue.Len() > 0 {
		if next := c.peekTime(); next > t {
			break
		}
		c.step()
	}
	if c.now < t {
		c.now = t
	}
}

// RunWhile fires events until cond returns false or the queue drains.
// It is the reentrant pump underlying synchronous Exchange: handlers
// running inside an event may themselves call RunWhile.
func (c *Clock) RunWhile(cond func() bool) {
	for cond() && c.step() {
	}
}

// Pending returns the number of events waiting to fire, including
// cancelled ones that have not yet been discarded.
func (c *Clock) Pending() int { return c.queue.Len() }

func (c *Clock) peekTime() time.Duration {
	// Skip over cancelled heads without firing anything.
	for c.queue.Len() > 0 && c.queue[0].cancelled {
		heap.Pop(&c.queue)
	}
	if c.queue.Len() == 0 {
		return c.now
	}
	return c.queue[0].at
}
