package simnet

import (
	"bytes"
	"errors"
	"net/netip"
	"testing"
	"time"
)

// raceFixture: one client, a fast and a slow responder.
func raceFixture(t *testing.T) *Network {
	t.Helper()
	n := New(40)
	n.AddNode("client")
	n.AddNode("fast")
	n.AddNode("slow")
	n.AddLink("client", "fast", Constant(2*time.Millisecond), 0)
	n.AddLink("client", "slow", Constant(20*time.Millisecond), 0)
	n.Node("fast").SetHandler(HandlerFunc(func(ctx *Ctx, dg Datagram) {
		ctx.Reply([]byte("fast:"+string(dg.Payload)), 0)
	}))
	n.Node("slow").SetHandler(HandlerFunc(func(ctx *Ctx, dg Datagram) {
		ctx.Reply([]byte("slow:"+string(dg.Payload)), 0)
	}))
	return n
}

func TestRaceFirstAnswerWins(t *testing.T) {
	n := raceFixture(t)
	ep := n.Node("client").Endpoint()
	idx, resp, rtt, err := ep.Race(
		[]netip.Addr{n.Node("fast").Addr, n.Node("slow").Addr}, []byte("q"), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if idx != 0 || !bytes.Equal(resp, []byte("fast:q")) {
		t.Errorf("winner = %d %q", idx, resp)
	}
	if rtt != 4*time.Millisecond {
		t.Errorf("rtt = %v, want 4ms", rtt)
	}
}

func TestRaceFuncRejectsFastLoser(t *testing.T) {
	n := raceFixture(t)
	ep := n.Node("client").Endpoint()
	accept := func(i int, resp []byte) bool { return i == 1 } // only slow acceptable
	idx, resp, rtt, err := ep.RaceFunc(
		[]netip.Addr{n.Node("fast").Addr, n.Node("slow").Addr}, []byte("q"), time.Second, accept)
	if err != nil {
		t.Fatal(err)
	}
	if idx != 1 || !bytes.Equal(resp, []byte("slow:q")) {
		t.Errorf("winner = %d %q", idx, resp)
	}
	if rtt != 40*time.Millisecond {
		t.Errorf("rtt = %v, want 40ms", rtt)
	}
}

func TestRaceAllRejectedTimesOut(t *testing.T) {
	n := raceFixture(t)
	ep := n.Node("client").Endpoint()
	accept := func(int, []byte) bool { return false }
	_, _, _, err := ep.RaceFunc(
		[]netip.Addr{n.Node("fast").Addr, n.Node("slow").Addr}, []byte("q"), 100*time.Millisecond, accept)
	if !errors.Is(err, ErrTimeout) {
		t.Errorf("err = %v", err)
	}
}

func TestRaceNoDestinations(t *testing.T) {
	n := raceFixture(t)
	_, _, _, err := n.Node("client").Endpoint().Race(nil, []byte("q"), time.Second)
	if !errors.Is(err, ErrNoDestinations) {
		t.Errorf("err = %v", err)
	}
}

func TestDatagramClient(t *testing.T) {
	n := raceFixture(t)
	a := n.Node("fast").Addr
	b := n.Node("slow").Addr
	dg := Datagram{Src: a}
	if dg.Client() != a {
		t.Error("Client without OrigSrc")
	}
	dg.OrigSrc = b
	if dg.Client() != b {
		t.Error("Client with OrigSrc")
	}
}
