package simnet

import (
	"errors"
	"fmt"
	"net/netip"
	"time"
)

// Errors returned by Exchange and Race.
var (
	ErrTimeout        = errors.New("simnet: exchange timed out")
	ErrNoDestinations = errors.New("simnet: race needs at least one destination")
)

// Ctx is passed to a node's handler for one delivered datagram.
type Ctx struct {
	net  *Network
	node *Node
	req  Datagram
}

// Now returns the current virtual time.
func (c *Ctx) Now() time.Duration { return c.net.Now() }

// Node returns the handling node.
func (c *Ctx) Node() *Node { return c.node }

// Network returns the underlying network.
func (c *Ctx) Network() *Network { return c.net }

// Reply sends payload back to the requester after procDelay of
// virtual processing time, correlated to the originating Exchange.
func (c *Ctx) Reply(payload []byte, procDelay time.Duration) {
	dg := Datagram{
		Src:        c.node.Addr,
		Dst:        c.req.Src,
		Payload:    payload,
		ExchangeID: c.req.ExchangeID,
		Reply:      true,
	}
	c.net.Clock.Schedule(procDelay, func() {
		// Replies to unknown addresses are silently dropped, like UDP.
		_ = c.net.Send(dg)
	})
}

// Endpoint issues synchronous exchanges from a node. The calling code
// blocks in virtual time only: the event loop is pumped until the
// reply arrives or the timeout fires. Handlers may use their node's
// Endpoint to perform nested upstream exchanges.
type Endpoint struct {
	node *Node
}

// Endpoint returns a synchronous exchange facade bound to the node.
func (n *Node) Endpoint() *Endpoint { return &Endpoint{node: n} }

// pendingExchange tracks one outstanding Exchange.
type pendingExchange struct {
	done    bool
	timeout bool
	resp    Datagram
	rtt     time.Duration
}

// deliverReply completes a pending exchange if the datagram matches
// one; it reports whether the datagram was consumed.
func (n *Network) deliverReply(dg Datagram) bool {
	if !dg.Reply || dg.ExchangeID == 0 {
		return false
	}
	p, ok := n.pending[dg.ExchangeID]
	if !ok || p.done {
		return false
	}
	p.done = true
	p.resp = dg
	return true
}

// Exchange sends payload to dst and waits (in virtual time) for the
// correlated reply. It returns the reply payload and the measured
// round-trip time. Loss anywhere on the path surfaces as ErrTimeout.
func (e *Endpoint) Exchange(dst netip.Addr, payload []byte, timeout time.Duration) ([]byte, time.Duration, error) {
	return e.ExchangeFrom(dst, payload, timeout, netip.Addr{})
}

// ExchangeFrom is Exchange for source-preserving proxies: origSrc is
// recorded as the datagram's originating client so the destination
// sees who the proxy is relaying for.
func (e *Endpoint) ExchangeFrom(dst netip.Addr, payload []byte, timeout time.Duration, origSrc netip.Addr) ([]byte, time.Duration, error) {
	n := e.node.net
	if n.pending == nil {
		n.pending = make(map[uint64]*pendingExchange)
	}
	n.nextExchange++
	id := n.nextExchange
	p := &pendingExchange{}
	n.pending[id] = p
	defer delete(n.pending, id)

	start := n.Now()
	dg := Datagram{Src: e.node.Addr, Dst: dst, Payload: payload, ExchangeID: id, OrigSrc: origSrc}
	if err := n.Send(dg); err != nil {
		return nil, 0, fmt.Errorf("exchange to %v: %w", dst, err)
	}
	timer := n.Clock.Schedule(timeout, func() { p.timeout = true })
	n.Clock.RunWhile(func() bool { return !p.done && !p.timeout })
	timer.Cancel()
	if p.timeout && !p.done {
		// Advance the caller past the timeout instant even when the
		// pump stopped early (e.g. queue drained).
		if n.Now() < start+timeout {
			n.Clock.RunUntil(start + timeout)
		}
		return nil, n.Now() - start, ErrTimeout
	}
	p.rtt = n.Now() - start
	return p.resp.Payload, p.rtt, nil
}

// Race sends payload to every destination simultaneously and waits
// for the first reply, the paper's client-side multicast: "have DNS
// requests be multicast to both MEC DNS and the network's L-DNS".
// It returns the index of the winning destination, its reply, and the
// time to first answer. Slower replies are discarded on arrival.
func (e *Endpoint) Race(dsts []netip.Addr, payload []byte, timeout time.Duration) (int, []byte, time.Duration, error) {
	return e.RaceFunc(dsts, payload, timeout, nil)
}

// RaceFunc is Race with an acceptance predicate: replies for which
// accept returns false are discarded and the race continues — the way
// a multicasting stub ignores a fast REFUSED from a resolver that
// does not serve the name while the useful answer is still in flight.
// A nil accept takes any reply.
func (e *Endpoint) RaceFunc(dsts []netip.Addr, payload []byte, timeout time.Duration, accept func(i int, resp []byte) bool) (int, []byte, time.Duration, error) {
	n := e.node.net
	if n.pending == nil {
		n.pending = make(map[uint64]*pendingExchange)
	}
	if len(dsts) == 0 {
		return -1, nil, 0, ErrNoDestinations
	}
	start := n.Now()
	ids := make([]uint64, len(dsts))
	pends := make([]*pendingExchange, len(dsts))
	for i, dst := range dsts {
		n.nextExchange++
		ids[i] = n.nextExchange
		pends[i] = &pendingExchange{}
		n.pending[ids[i]] = pends[i]
		// Unroutable destinations simply never answer, like UDP.
		_ = n.Send(Datagram{Src: e.node.Addr, Dst: dst, Payload: payload, ExchangeID: ids[i]})
	}
	defer func() {
		for _, id := range ids {
			delete(n.pending, id)
		}
	}()
	timedOut := false
	timer := n.Clock.Schedule(timeout, func() { timedOut = true })
	rejected := make([]bool, len(pends))
	anyDone := func() int {
		for i, p := range pends {
			if p.done && !rejected[i] {
				if accept != nil && !accept(i, p.resp.Payload) {
					rejected[i] = true
					continue
				}
				return i
			}
		}
		return -1
	}
	winner := -1
	n.Clock.RunWhile(func() bool {
		winner = anyDone()
		return winner < 0 && !timedOut
	})
	timer.Cancel()
	if winner < 0 {
		winner = anyDone()
	}
	if winner >= 0 {
		return winner, pends[winner].resp.Payload, n.Now() - start, nil
	}
	if n.Now() < start+timeout {
		n.Clock.RunUntil(start + timeout)
	}
	return -1, nil, n.Now() - start, ErrTimeout
}

// SendAsync fires a datagram without waiting for any reply.
func (e *Endpoint) SendAsync(dst netip.Addr, payload []byte) error {
	return e.node.net.Send(Datagram{Src: e.node.Addr, Dst: dst, Payload: payload})
}

// Addr returns the endpoint's bound address.
func (e *Endpoint) Addr() netip.Addr { return e.node.Addr }

// Network returns the network the endpoint belongs to.
func (e *Endpoint) Network() *Network { return e.node.net }
