package workload

import (
	"math/rand"
	"testing"
)

func TestZipfCatalogSkew(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	z, err := NewZipfCatalog(rng, 1.2, 1000)
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[int]int)
	const n = 50_000
	for i := 0; i < n; i++ {
		idx := z.Next()
		if idx < 0 || idx >= 1000 {
			t.Fatalf("index %d out of range", idx)
		}
		counts[idx]++
	}
	// Rank 0 must dominate; the top 10 objects should cover a large
	// fraction of requests.
	if counts[0] < counts[500] {
		t.Error("rank-0 not more popular than rank-500")
	}
	top10 := 0
	for i := 0; i < 10; i++ {
		top10 += counts[i]
	}
	if share := float64(top10) / n; share < 0.5 {
		t.Errorf("top-10 share = %.2f, want heavy head", share)
	}
}

func TestZipfValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	if _, err := NewZipfCatalog(rng, 1.2, 0); err == nil {
		t.Error("empty catalog accepted")
	}
	if _, err := NewZipfCatalog(rng, 0.9, 10); err == nil {
		t.Error("skew ≤ 1 accepted")
	}
	if _, err := NewZipfCatalog(rng, 1.0, 10); err == nil {
		t.Error("skew = 1 accepted")
	}
}

func TestNameAndStream(t *testing.T) {
	if Name("obj", 7) != "obj-0007" {
		t.Errorf("Name = %s", Name("obj", 7))
	}
	rng := rand.New(rand.NewSource(3))
	z, err := NewZipfCatalog(rng, 1.3, 50)
	if err != nil {
		t.Fatal(err)
	}
	stream := z.Stream("vid", 100)
	if len(stream) != 100 {
		t.Fatalf("stream length = %d", len(stream))
	}
	for _, name := range stream {
		if len(name) != len("vid-0000") {
			t.Fatalf("bad name %q", name)
		}
	}
}

func TestMixture(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m := NewMixture(rng, 0.7)
	mec := 0
	const n = 10_000
	for i := 0; i < n; i++ {
		if m.IsMEC() {
			mec++
		}
	}
	share := float64(mec) / n
	if share < 0.67 || share > 0.73 {
		t.Errorf("MEC share = %.3f, want ≈0.70", share)
	}
}

func TestZipfDeterminism(t *testing.T) {
	draw := func(seed int64) []int {
		rng := rand.New(rand.NewSource(seed))
		z, _ := NewZipfCatalog(rng, 1.2, 100)
		out := make([]int, 50)
		for i := range out {
			out[i] = z.Next()
		}
		return out
	}
	a, b := draw(9), draw(9)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed diverged")
		}
	}
}
