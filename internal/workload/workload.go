// Package workload generates synthetic request streams: Zipf-skewed
// content popularity (the standard CDN access model) and per-access
// client populations, used by the cache-disaggregation and load-shed
// experiments.
package workload

import (
	"fmt"
	"math/rand"
)

// ZipfCatalog draws content indices from a Zipf distribution over a
// catalog of n objects: rank-1 content is requested most.
type ZipfCatalog struct {
	zipf *rand.Zipf
	n    int
}

// NewZipfCatalog creates a generator over n objects with skew s
// (s > 1; CDN traces typically fit s ≈ 1.1–1.3).
func NewZipfCatalog(rng *rand.Rand, s float64, n int) (*ZipfCatalog, error) {
	if n <= 0 {
		return nil, fmt.Errorf("workload: catalog size %d", n)
	}
	if s <= 1 {
		return nil, fmt.Errorf("workload: zipf skew must exceed 1, got %v", s)
	}
	z := rand.NewZipf(rng, s, 1, uint64(n-1))
	if z == nil {
		return nil, fmt.Errorf("workload: bad zipf parameters s=%v n=%d", s, n)
	}
	return &ZipfCatalog{zipf: z, n: n}, nil
}

// Next returns the next content index in [0, n).
func (z *ZipfCatalog) Next() int { return int(z.zipf.Uint64()) }

// Name renders index i as a content name with the given prefix,
// matching cdn.Catalog.PublishN naming.
func Name(prefix string, i int) string { return fmt.Sprintf("%s-%04d", prefix, i) }

// Stream produces count Zipf-popular content names.
func (z *ZipfCatalog) Stream(prefix string, count int) []string {
	out := make([]string, count)
	for i := range out {
		out[i] = Name(prefix, z.Next())
	}
	return out
}

// Mixture describes a query mix: a fraction of queries go to MEC
// content, the rest to arbitrary internet names — the §3 best-effort
// discussion's workload.
type Mixture struct {
	rng *rand.Rand
	// MECFraction is the probability a query targets MEC content.
	MECFraction float64
}

// NewMixture returns a mixture using rng.
func NewMixture(rng *rand.Rand, mecFraction float64) *Mixture {
	return &Mixture{rng: rng, MECFraction: mecFraction}
}

// IsMEC reports whether the next query targets MEC-hosted content.
func (m *Mixture) IsMEC() bool { return m.rng.Float64() < m.MECFraction }
