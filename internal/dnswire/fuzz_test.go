//go:build go1.18

package dnswire

import (
	"bytes"
	"testing"
)

// Seed corpus: packed forms of representative messages, so the fuzzer
// starts from structurally valid inputs.
func fuzzSeeds(f *testing.F) {
	f.Helper()
	m := new(Message)
	m.SetQuestion("video.demo1.mycdn.ciab.test.", TypeA)
	if wire, err := m.Pack(); err == nil {
		f.Add(wire)
	}
	resp := new(Message)
	resp.SetQuestion("edge.mycdn.ciab.test.", TypeA)
	resp.Response = true
	resp.Answers = []RR{
		&CNAME{Hdr: RRHeader{Name: "edge.mycdn.ciab.test.", Type: TypeCNAME, Class: ClassINET, TTL: 30}, Target: "pop.other.example."},
	}
	resp.SetEDNS(1232)
	if wire, err := resp.Pack(); err == nil {
		f.Add(wire)
	}
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0})
	f.Add(bytes.Repeat([]byte{0xC0}, 64)) // pointer storm
}

// FuzzMessageUnpack: Unpack must never panic, and anything it accepts
// must re-pack and re-unpack to an equivalent wire form (canonical
// fixed point).
func FuzzMessageUnpack(f *testing.F) {
	fuzzSeeds(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		var m Message
		if err := m.Unpack(data); err != nil {
			return
		}
		repacked, err := m.Pack()
		if err != nil {
			// Some accepted messages cannot repack (e.g. extended
			// rcode reconstructed without OPT after section drops);
			// that is allowed, only panics are not.
			return
		}
		var m2 Message
		if err := m2.Unpack(repacked); err != nil {
			t.Fatalf("repacked message does not unpack: %v", err)
		}
		again, err := m2.Pack()
		if err != nil {
			t.Fatalf("second pack failed: %v", err)
		}
		if !bytes.Equal(repacked, again) {
			t.Fatalf("pack not a fixed point:\n% x\n% x", repacked, again)
		}
	})
}

// FuzzTTLPatch: the in-place wire patch path (TTLOffsets + AgeTTLs +
// PatchID) must produce bytes identical to the reference path that
// decodes the message, ages each RR TTL, and re-packs. This is the
// invariant the wire-level response cache rests on.
func FuzzTTLPatch(f *testing.F) {
	fuzzSeeds(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		var m Message
		if err := m.Unpack(data); err != nil {
			return
		}
		wire, err := m.Pack()
		if err != nil {
			return
		}
		offsets, err := TTLOffsets(wire)
		if err != nil {
			// Pack output must always be walkable; anything Pack
			// emits that TTLOffsets rejects is a bug in one of them.
			t.Fatalf("TTLOffsets rejects packed message: %v\n% x", err, wire)
		}
		for _, age := range []uint32{0, 1, 30, 1 << 20} {
			patched := append([]byte(nil), wire...)
			AgeTTLs(patched, offsets, age)
			PatchID(patched, m.ID^0x5aa5)

			var ref Message
			if err := ref.Unpack(wire); err != nil {
				t.Fatalf("canonical wire does not unpack: %v", err)
			}
			ref.ID = m.ID ^ 0x5aa5
			for _, section := range [][]RR{ref.Answers, ref.Authorities, ref.Additionals} {
				for _, rr := range section {
					if rr.Header().Type == TypeOPT {
						continue
					}
					if rr.Header().TTL > age {
						rr.Header().TTL -= age
					} else {
						rr.Header().TTL = 0
					}
				}
			}
			refWire, err := ref.Pack()
			if err != nil {
				t.Fatalf("reference repack failed: %v", err)
			}
			if !bytes.Equal(patched, refWire) {
				t.Fatalf("age %d: in-place patch != decode-age-repack:\n% x\n% x", age, patched, refWire)
			}
		}
	})
}

// FuzzNameUnpack: name decompression must never panic or over-read.
func FuzzNameUnpack(f *testing.F) {
	f.Add([]byte{3, 'c', 'o', 'm', 0}, 0)
	f.Add([]byte{0xC0, 0x00}, 0)
	f.Add([]byte{1, '*', 0xC0, 0x00}, 2)
	f.Fuzz(func(t *testing.T, data []byte, off int) {
		if off < 0 {
			off = -off
		}
		if len(data) > 0 {
			off %= len(data)
		} else {
			off = 0
		}
		name, end, err := unpackName(data, off)
		if err != nil {
			return
		}
		if end < 0 || end > len(data) {
			t.Fatalf("end %d out of bounds (len %d)", end, len(data))
		}
		// Decoded names must re-encode.
		if _, err := packName(nil, name, nil); err != nil {
			t.Fatalf("decoded name %q does not re-pack: %v", name, err)
		}
	})
}
