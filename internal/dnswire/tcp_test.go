package dnswire

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

func TestTCPFramingRoundTrip(t *testing.T) {
	m := new(Message)
	m.SetQuestion("tcp.test.", TypeA)
	wire, err := m.Pack()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteTCP(&buf, wire); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTCP(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, wire) {
		t.Error("TCP round trip mismatch")
	}
}

func TestTCPMultipleMessages(t *testing.T) {
	var buf bytes.Buffer
	var wires [][]byte
	for i := 0; i < 5; i++ {
		m := new(Message)
		m.ID = uint16(i)
		m.SetQuestion("multi.test.", TypeA)
		m.ID = uint16(i)
		w, err := m.Pack()
		if err != nil {
			t.Fatal(err)
		}
		wires = append(wires, w)
		if err := WriteTCP(&buf, w); err != nil {
			t.Fatal(err)
		}
	}
	for i, want := range wires {
		got, err := ReadTCP(&buf)
		if err != nil {
			t.Fatalf("message %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("message %d mismatch", i)
		}
	}
	if _, err := ReadTCP(&buf); err != io.EOF {
		t.Errorf("after stream end: %v, want EOF", err)
	}
}

func TestReadTCPTruncatedBody(t *testing.T) {
	r := strings.NewReader("\x00\x10short")
	if _, err := ReadTCP(r); err == nil {
		t.Error("truncated body accepted")
	}
}

func TestWriteTCPOversized(t *testing.T) {
	big := make([]byte, MaxMessageSize+1)
	if err := WriteTCP(io.Discard, big); err == nil {
		t.Error("oversized message accepted")
	}
}
