package dnswire

import (
	"encoding/binary"
	"fmt"
	"sync"
)

// This file holds the wire-level fast-path helpers: a pool of
// MaxMessageSize packet buffers shared by the socket read loops,
// response packing, and the client transport, plus in-place patch
// helpers that let a cached packed response be re-served without the
// decode → clone → re-encode round trip. A cached hit then costs one
// buffer copy, a 2-byte ID patch, two flag-bit patches, and a fixed
// set of 4-byte TTL rewrites at offsets recorded once at insert time.

// bufPool recycles MaxMessageSize packet buffers. Entries are stored
// as *[]byte; the headers themselves circulate through boxPool so a
// steady-state Get/Put cycle allocates nothing at all — taking the
// address of a local []byte in PutBuffer would otherwise heap-box a
// fresh 24-byte header on every recycle, one allocation per packet.
var bufPool = sync.Pool{
	New: func() any {
		b := make([]byte, MaxMessageSize)
		return &b
	},
}

// boxPool recycles the *[]byte headers bufPool entries travel in.
// A header leaves boxPool emptied (nil slice) whenever its buffer is
// checked out, so a pooled box never pins a buffer the caller owns.
var boxPool = sync.Pool{}

// GetBuffer returns a packet buffer of length MaxMessageSize from the
// shared pool. Return it with PutBuffer when the packet has been
// fully consumed; the contents are not zeroed between uses.
func GetBuffer() []byte {
	p := bufPool.Get().(*[]byte)
	b := *p
	*p = nil
	boxPool.Put(p)
	poolTrackGet(b)
	return b
}

// PutBuffer recycles a buffer obtained from GetBuffer (or any slice
// with at least MaxMessageSize capacity; smaller slices are dropped,
// so callers may hand back foreign buffers safely). The caller must
// not touch b afterwards. Returning the same buffer twice corrupts a
// later response; build with -tags pooldebug to make that panic at
// the second Put instead.
func PutBuffer(b []byte) {
	if cap(b) < MaxMessageSize {
		return
	}
	b = b[:MaxMessageSize]
	poolTrackPut(b)
	var p *[]byte
	if v := boxPool.Get(); v != nil {
		p = v.(*[]byte)
	} else {
		p = new([]byte)
	}
	*p = b
	bufPool.Put(p)
}

// skipName advances past one wire-format name without decoding it.
// A compression pointer terminates the name in place (pointers are
// two bytes and always end the label sequence).
func skipName(msg []byte, off int) (int, error) {
	for {
		if off >= len(msg) {
			return 0, ErrBufferTooSmall
		}
		c := msg[off]
		switch {
		case c == 0:
			return off + 1, nil
		case c&0xC0 == 0xC0:
			if off+2 > len(msg) {
				return 0, ErrBadPointer
			}
			return off + 2, nil
		case c&0xC0 != 0:
			return 0, fmt.Errorf("dnswire: reserved label type 0x%02x", c&0xC0)
		default:
			off += 1 + int(c)
		}
	}
}

// TTLOffsets walks a packed message and returns the byte offsets of
// every resource-record TTL field outside OPT pseudo-records (whose
// TTL carries the extended rcode, not a lifetime). Recording the
// offsets once at cache-insert time lets AgeTTLs rewrite the packed
// form in place on every subsequent hit.
func TTLOffsets(wire []byte) ([]int, error) {
	if len(wire) < 12 {
		return nil, ErrShortMessage
	}
	qd := int(binary.BigEndian.Uint16(wire[4:]))
	rrs := int(binary.BigEndian.Uint16(wire[6:])) +
		int(binary.BigEndian.Uint16(wire[8:])) +
		int(binary.BigEndian.Uint16(wire[10:]))
	off := 12
	var err error
	for i := 0; i < qd; i++ {
		if off, err = skipName(wire, off); err != nil {
			return nil, err
		}
		off += 4 // type + class
		if off > len(wire) {
			return nil, ErrBufferTooSmall
		}
	}
	var offsets []int
	for i := 0; i < rrs; i++ {
		if off, err = skipName(wire, off); err != nil {
			return nil, err
		}
		if off+10 > len(wire) {
			return nil, ErrBufferTooSmall
		}
		if Type(binary.BigEndian.Uint16(wire[off:])) != TypeOPT {
			offsets = append(offsets, off+4)
		}
		off += 10 + int(binary.BigEndian.Uint16(wire[off+8:]))
		if off > len(wire) {
			return nil, ErrBufferTooSmall
		}
	}
	return offsets, nil
}

// AgeTTLs subtracts age seconds from each TTL field at the given
// offsets (recorded by TTLOffsets), clamping at zero — the in-place
// equivalent of the decode-path TTL aging loop.
func AgeTTLs(wire []byte, offsets []int, age uint32) {
	if age == 0 {
		return
	}
	for _, off := range offsets {
		if off+4 > len(wire) {
			continue
		}
		ttl := binary.BigEndian.Uint32(wire[off:])
		if ttl > age {
			ttl -= age
		} else {
			ttl = 0
		}
		binary.BigEndian.PutUint32(wire[off:], ttl)
	}
}

// ClampTTLs caps each TTL field at the given offsets (recorded by
// TTLOffsets) to at most max seconds — the in-place patch behind
// RFC 8767 serve-stale, where an expired cached answer goes out with
// its TTLs clamped to a short stale lifetime instead of the original
// (now meaningless) values. TTLs already at or below max are left
// alone, so short-lived records never gain lifetime from going stale.
func ClampTTLs(wire []byte, offsets []int, max uint32) {
	for _, off := range offsets {
		if off+4 > len(wire) {
			continue
		}
		if binary.BigEndian.Uint32(wire[off:]) > max {
			binary.BigEndian.PutUint32(wire[off:], max)
		}
	}
}

// PatchID overwrites the transaction ID of a packed message.
func PatchID(wire []byte, id uint16) {
	if len(wire) >= 2 {
		binary.BigEndian.PutUint16(wire, id)
	}
}

// PatchReplyBits rewrites the request-mirrored flag bits of a packed
// response: RD (copied from the query per RFC 1035 §4.1.1) and CD
// (echoed per RFC 4035 §3.2.2). QR, AA, RA, rcode and the rest are
// properties of the stored answer and are left untouched.
func PatchReplyBits(wire []byte, rd, cd bool) {
	if len(wire) < 4 {
		return
	}
	const (
		rdBit = byte(flagRD >> 8) // high flag byte
		cdBit = byte(flagCD)      // low flag byte
	)
	wire[2] &^= rdBit
	if rd {
		wire[2] |= rdBit
	}
	wire[3] &^= cdBit
	if cd {
		wire[3] |= cdBit
	}
}

// WireRcode extracts the 4-bit header rcode of a packed message
// (extended rcode bits from an OPT record are not folded in).
func WireRcode(wire []byte) Rcode {
	if len(wire) < 4 {
		return RcodeServerFailure
	}
	return Rcode(wire[3] & 0xF)
}
