package dnswire

import (
	"net/netip"
	"reflect"
	"strings"
	"testing"
)

// TestRRStringAndClone exercises presentation output and deep copying
// for every record type in one table.
func TestRRStringAndClone(t *testing.T) {
	cases := []struct {
		rr   RR
		want []string // substrings of String()
	}{
		{
			&A{Hdr: RRHeader{Name: "a.test.", Type: TypeA, Class: ClassINET, TTL: 60}, Addr: netip.MustParseAddr("192.0.2.1")},
			[]string{"a.test.", "60", "IN", "A", "192.0.2.1"},
		},
		{
			&AAAA{Hdr: RRHeader{Name: "b.test.", Type: TypeAAAA, Class: ClassINET, TTL: 61}, Addr: netip.MustParseAddr("2001:db8::1")},
			[]string{"AAAA", "2001:db8::1"},
		},
		{
			&CNAME{Hdr: RRHeader{Name: "c.test.", Type: TypeCNAME, Class: ClassINET, TTL: 62}, Target: "t.test."},
			[]string{"CNAME", "t.test."},
		},
		{
			&NS{Hdr: RRHeader{Name: "d.test.", Type: TypeNS, Class: ClassINET, TTL: 63}, NS: "ns.test."},
			[]string{"NS", "ns.test."},
		},
		{
			&PTR{Hdr: RRHeader{Name: "e.test.", Type: TypePTR, Class: ClassINET, TTL: 64}, PTR: "p.test."},
			[]string{"PTR", "p.test."},
		},
		{
			&SOA{Hdr: RRHeader{Name: "f.test.", Type: TypeSOA, Class: ClassINET, TTL: 65},
				NS: "ns.test.", Mbox: "admin.test.", Serial: 42, Refresh: 1, Retry: 2, Expire: 3, MinTTL: 4},
			[]string{"SOA", "ns.test.", "admin.test.", "42"},
		},
		{
			&MX{Hdr: RRHeader{Name: "g.test.", Type: TypeMX, Class: ClassINET, TTL: 66}, Preference: 10, MX: "mail.test."},
			[]string{"MX", "10", "mail.test."},
		},
		{
			&TXT{Hdr: RRHeader{Name: "h.test.", Type: TypeTXT, Class: ClassINET, TTL: 67}, Txt: []string{"hello world"}},
			[]string{"TXT", `"hello world"`},
		},
		{
			&SRV{Hdr: RRHeader{Name: "i.test.", Type: TypeSRV, Class: ClassINET, TTL: 68},
				Priority: 1, Weight: 2, Port: 53, Target: "srv.test."},
			[]string{"SRV", "53", "srv.test."},
		},
		{
			&Generic{Hdr: RRHeader{Name: "j.test.", Type: Type(999), Class: ClassINET, TTL: 69}, Data: []byte{0xAB, 0xCD}},
			[]string{"TYPE999", "abcd"},
		},
	}
	for _, tc := range cases {
		s := tc.rr.String()
		for _, want := range tc.want {
			if !strings.Contains(s, want) {
				t.Errorf("%T.String() = %q, missing %q", tc.rr, s, want)
			}
		}
		clone := tc.rr.Clone()
		if !reflect.DeepEqual(clone, tc.rr) {
			t.Errorf("%T.Clone() differs from original", tc.rr)
		}
		// Mutating the clone's header must not affect the original.
		clone.Header().TTL = 9999
		if tc.rr.Header().TTL == 9999 {
			t.Errorf("%T.Clone() shares header", tc.rr)
		}
	}
}

func TestOPTString(t *testing.T) {
	opt := NewOPT(1232)
	opt.Options = append(opt.Options,
		NewECSOption(netip.MustParsePrefix("203.0.113.0/24")),
		&GenericOption{OptCode: 10, Data: []byte{1}})
	s := opt.String()
	for _, want := range []string{"udp 1232", "CLIENT-SUBNET 203.0.113.0/24", "option(10)"} {
		if !strings.Contains(s, want) {
			t.Errorf("OPT.String() = %q, missing %q", s, want)
		}
	}
}

func TestQuestionString(t *testing.T) {
	q := Question{Name: "x.test.", Type: TypeA, Class: ClassINET}
	if got := q.String(); !strings.Contains(got, "x.test.") || !strings.Contains(got, "A") {
		t.Errorf("Question.String() = %q", got)
	}
}

func TestConstantString(t *testing.T) {
	// Exercises remaining stringers on the numeric types.
	for typ, want := range map[Type]string{
		TypeNS: "NS", TypeSOA: "SOA", TypePTR: "PTR", TypeMX: "MX",
		TypeTXT: "TXT", TypeSRV: "SRV", TypeAAAA: "AAAA", TypeANY: "ANY", TypeNone: "NONE",
	} {
		if typ.String() != want {
			t.Errorf("Type(%d).String() = %q, want %q", typ, typ.String(), want)
		}
	}
	for rc, want := range map[Rcode]string{
		RcodeFormatError: "FORMERR", RcodeNotImplemented: "NOTIMP", RcodeBadVers: "BADVERS",
	} {
		if rc.String() != want {
			t.Errorf("Rcode(%d) = %q, want %q", rc, rc.String(), want)
		}
	}
	for oc, want := range map[Opcode]string{
		OpcodeIQuery: "IQUERY", OpcodeStatus: "STATUS", OpcodeNotify: "NOTIFY", OpcodeUpdate: "UPDATE",
	} {
		if oc.String() != want {
			t.Errorf("Opcode(%d) = %q, want %q", oc, oc.String(), want)
		}
	}
}
