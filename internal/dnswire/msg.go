package dnswire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"strings"
)

// Errors returned by message packing and unpacking.
var (
	ErrShortMessage    = errors.New("dnswire: message shorter than header")
	ErrTrailingGarbage = errors.New("dnswire: trailing bytes after message")
	ErrTooManyRecords  = errors.New("dnswire: section count exceeds limit")
)

// maxSectionRecords bounds each section during unpacking so a hostile
// header cannot force huge allocations.
const maxSectionRecords = 4096

// Question is a single entry of the question section.
type Question struct {
	Name  string
	Type  Type
	Class Class
}

// String renders the question dig-style.
func (q Question) String() string {
	return fmt.Sprintf("%s\t%s\t%s", q.Name, q.Class, q.Type)
}

// Message is a complete DNS message.
type Message struct {
	ID                 uint16
	Response           bool
	Opcode             Opcode
	Authoritative      bool
	Truncated          bool
	RecursionDesired   bool
	RecursionAvailable bool
	AuthenticatedData  bool
	CheckingDisabled   bool
	Rcode              Rcode

	Questions   []Question
	Answers     []RR
	Authorities []RR
	Additionals []RR
}

// SetQuestion resets m to a recursion-desired query for (name, t) and
// returns m for chaining.
func (m *Message) SetQuestion(name string, t Type) *Message {
	*m = Message{
		ID:               m.ID,
		RecursionDesired: true,
		Questions:        []Question{{Name: CanonicalName(name), Type: t, Class: ClassINET}},
	}
	return m
}

// SetReply resets m to a success response mirroring req's ID, opcode,
// question, and RD flag, and returns m for chaining.
func (m *Message) SetReply(req *Message) *Message {
	*m = Message{
		ID:               req.ID,
		Response:         true,
		Opcode:           req.Opcode,
		RecursionDesired: req.RecursionDesired,
	}
	if len(req.Questions) > 0 {
		m.Questions = []Question{req.Questions[0]}
	}
	return m
}

// SetRcode is SetReply followed by setting the response code.
func (m *Message) SetRcode(req *Message, rcode Rcode) *Message {
	m.SetReply(req)
	m.Rcode = rcode
	return m
}

// Question returns the first question, or a zero Question if none.
func (m *Message) Question() Question {
	if len(m.Questions) == 0 {
		return Question{}
	}
	return m.Questions[0]
}

// OPT returns the OPT pseudo-record from the additional section.
func (m *Message) OPT() (*OPT, bool) {
	for _, rr := range m.Additionals {
		if opt, ok := rr.(*OPT); ok {
			return opt, true
		}
	}
	return nil, false
}

// SetEDNS attaches (or replaces) an OPT record advertising udpSize,
// returning the record so options can be added.
func (m *Message) SetEDNS(udpSize uint16) *OPT {
	if opt, ok := m.OPT(); ok {
		opt.SetUDPSize(udpSize)
		return opt
	}
	opt := NewOPT(udpSize)
	m.Additionals = append(m.Additionals, opt)
	return opt
}

// ECS returns the client-subnet option if the message carries one.
func (m *Message) ECS() (*ECSOption, bool) {
	if opt, ok := m.OPT(); ok {
		return opt.ECS()
	}
	return nil, false
}

// Clone returns a deep copy of the message.
func (m *Message) Clone() *Message {
	c := *m
	c.Questions = append([]Question(nil), m.Questions...)
	cloneRRs := func(in []RR) []RR {
		if in == nil {
			return nil
		}
		out := make([]RR, len(in))
		for i, rr := range in {
			out[i] = rr.Clone()
		}
		return out
	}
	c.Answers = cloneRRs(m.Answers)
	c.Authorities = cloneRRs(m.Authorities)
	c.Additionals = cloneRRs(m.Additionals)
	return &c
}

// flag bit positions within the 16-bit flags word.
const (
	flagQR = 1 << 15
	flagAA = 1 << 10
	flagTC = 1 << 9
	flagRD = 1 << 8
	flagRA = 1 << 7
	flagAD = 1 << 5
	flagCD = 1 << 4
)

// Pack serializes m into wire format with name compression.
func (m *Message) Pack() ([]byte, error) {
	return m.AppendPack(make([]byte, 0, 128))
}

// AppendPack serializes m, appending to b (which must be empty or
// freshly positioned at a message boundary: compression offsets are
// relative to the start of b's unused capacity region only when b is
// empty, so callers reusing buffers should pass b[:0]).
func (m *Message) AppendPack(b []byte) ([]byte, error) {
	if len(b) != 0 {
		return nil, fmt.Errorf("dnswire: AppendPack requires an empty buffer, got %d bytes", len(b))
	}
	var flags uint16
	if m.Response {
		flags |= flagQR
	}
	flags |= uint16(m.Opcode&0xF) << 11
	if m.Authoritative {
		flags |= flagAA
	}
	if m.Truncated {
		flags |= flagTC
	}
	if m.RecursionDesired {
		flags |= flagRD
	}
	if m.RecursionAvailable {
		flags |= flagRA
	}
	if m.AuthenticatedData {
		flags |= flagAD
	}
	if m.CheckingDisabled {
		flags |= flagCD
	}
	flags |= uint16(m.Rcode & 0xF)

	if m.Rcode > 0xF {
		opt, ok := m.OPT()
		if !ok {
			return nil, fmt.Errorf("dnswire: rcode %s requires an OPT record", m.Rcode)
		}
		opt.setExtendedRcode(m.Rcode)
	}

	b = binary.BigEndian.AppendUint16(b, m.ID)
	b = binary.BigEndian.AppendUint16(b, flags)
	b = binary.BigEndian.AppendUint16(b, uint16(len(m.Questions)))
	b = binary.BigEndian.AppendUint16(b, uint16(len(m.Answers)))
	b = binary.BigEndian.AppendUint16(b, uint16(len(m.Authorities)))
	b = binary.BigEndian.AppendUint16(b, uint16(len(m.Additionals)))

	c := newCompressor()
	var err error
	for _, q := range m.Questions {
		if b, err = packName(b, q.Name, c); err != nil {
			return nil, fmt.Errorf("packing question %q: %w", q.Name, err)
		}
		b = binary.BigEndian.AppendUint16(b, uint16(q.Type))
		b = binary.BigEndian.AppendUint16(b, uint16(q.Class))
	}
	for _, section := range [][]RR{m.Answers, m.Authorities, m.Additionals} {
		for _, rr := range section {
			if b, err = packRR(b, rr, c); err != nil {
				return nil, err
			}
		}
	}
	if len(b) > MaxMessageSize {
		return nil, fmt.Errorf("dnswire: packed message is %d bytes, max %d", len(b), MaxMessageSize)
	}
	return b, nil
}

// Unpack parses wire-format data into m, replacing its contents.
func (m *Message) Unpack(data []byte) error {
	if len(data) < 12 {
		return ErrShortMessage
	}
	if len(data) > MaxMessageSize {
		return fmt.Errorf("dnswire: message is %d bytes, max %d", len(data), MaxMessageSize)
	}
	flags := binary.BigEndian.Uint16(data[2:])
	*m = Message{
		ID:                 binary.BigEndian.Uint16(data),
		Response:           flags&flagQR != 0,
		Opcode:             Opcode(flags >> 11 & 0xF),
		Authoritative:      flags&flagAA != 0,
		Truncated:          flags&flagTC != 0,
		RecursionDesired:   flags&flagRD != 0,
		RecursionAvailable: flags&flagRA != 0,
		AuthenticatedData:  flags&flagAD != 0,
		CheckingDisabled:   flags&flagCD != 0,
		Rcode:              Rcode(flags & 0xF),
	}
	qd := int(binary.BigEndian.Uint16(data[4:]))
	an := int(binary.BigEndian.Uint16(data[6:]))
	ns := int(binary.BigEndian.Uint16(data[8:]))
	ar := int(binary.BigEndian.Uint16(data[10:]))
	if qd > maxSectionRecords || an > maxSectionRecords || ns > maxSectionRecords || ar > maxSectionRecords {
		return ErrTooManyRecords
	}
	off := 12
	var err error
	for i := 0; i < qd; i++ {
		var q Question
		if q.Name, off, err = unpackName(data, off); err != nil {
			return fmt.Errorf("unpacking question %d: %w", i, err)
		}
		if off+4 > len(data) {
			return ErrBufferTooSmall
		}
		q.Type = Type(binary.BigEndian.Uint16(data[off:]))
		q.Class = Class(binary.BigEndian.Uint16(data[off+2:]))
		off += 4
		m.Questions = append(m.Questions, q)
	}
	unpackSection := func(n int, name string) ([]RR, error) {
		var rrs []RR
		for i := 0; i < n; i++ {
			var rr RR
			rr, off, err = unpackRR(data, off)
			if err != nil {
				return nil, fmt.Errorf("unpacking %s record %d: %w", name, i, err)
			}
			rrs = append(rrs, rr)
		}
		return rrs, nil
	}
	if m.Answers, err = unpackSection(an, "answer"); err != nil {
		return err
	}
	if m.Authorities, err = unpackSection(ns, "authority"); err != nil {
		return err
	}
	if m.Additionals, err = unpackSection(ar, "additional"); err != nil {
		return err
	}
	if off != len(data) {
		return ErrTrailingGarbage
	}
	if opt, ok := m.OPT(); ok {
		m.Rcode |= Rcode(opt.ExtendedRcode()) << 4
	}
	return nil
}

// TruncateTo shrinks the answer/authority/additional sections (keeping
// any OPT record) until the packed size fits within size bytes, setting
// the TC bit if anything was dropped. It reports whether truncation
// occurred.
func (m *Message) TruncateTo(size int) bool {
	packedLen := func() int {
		b, err := m.Pack()
		if err != nil {
			return MaxMessageSize + 1
		}
		return len(b)
	}
	if packedLen() <= size {
		return false
	}
	m.Truncated = true
	// Drop non-OPT additionals first, then authorities, then answers.
	var keep []RR
	for _, rr := range m.Additionals {
		if rr.Header().Type == TypeOPT {
			keep = append(keep, rr)
		}
	}
	m.Additionals = keep
	for packedLen() > size && len(m.Authorities) > 0 {
		m.Authorities = m.Authorities[:len(m.Authorities)-1]
	}
	for packedLen() > size && len(m.Answers) > 0 {
		m.Answers = m.Answers[:len(m.Answers)-1]
	}
	return true
}

// String renders the message in a dig-like multi-section format.
func (m *Message) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, ";; opcode: %s, status: %s, id: %d\n", m.Opcode, m.Rcode, m.ID)
	fmt.Fprintf(&b, ";; flags:")
	for _, f := range []struct {
		on   bool
		name string
	}{
		{m.Response, "qr"}, {m.Authoritative, "aa"}, {m.Truncated, "tc"},
		{m.RecursionDesired, "rd"}, {m.RecursionAvailable, "ra"},
		{m.AuthenticatedData, "ad"}, {m.CheckingDisabled, "cd"},
	} {
		if f.on {
			b.WriteString(" " + f.name)
		}
	}
	fmt.Fprintf(&b, "; QUERY: %d, ANSWER: %d, AUTHORITY: %d, ADDITIONAL: %d\n",
		len(m.Questions), len(m.Answers), len(m.Authorities), len(m.Additionals))
	if len(m.Questions) > 0 {
		b.WriteString("\n;; QUESTION SECTION:\n")
		for _, q := range m.Questions {
			fmt.Fprintf(&b, ";%s\n", q)
		}
	}
	sections := []struct {
		name string
		rrs  []RR
	}{{"ANSWER", m.Answers}, {"AUTHORITY", m.Authorities}, {"ADDITIONAL", m.Additionals}}
	for _, s := range sections {
		if len(s.rrs) == 0 {
			continue
		}
		fmt.Fprintf(&b, "\n;; %s SECTION:\n", s.name)
		for _, rr := range s.rrs {
			b.WriteString(rr.String() + "\n")
		}
	}
	return b.String()
}
