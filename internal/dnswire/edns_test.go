package dnswire

import (
	"net/netip"
	"reflect"
	"testing"
	"testing/quick"
)

func TestECSOptionRoundTrip(t *testing.T) {
	tests := []netip.Prefix{
		netip.MustParsePrefix("203.0.113.0/24"),
		netip.MustParsePrefix("10.45.0.0/16"),
		netip.MustParsePrefix("192.0.2.128/25"),
		netip.MustParsePrefix("0.0.0.0/0"),
		netip.MustParsePrefix("2001:db8::/56"),
		netip.MustParsePrefix("2001:db8:1234::/48"),
	}
	for _, prefix := range tests {
		m := new(Message)
		m.SetQuestion("ecs.test.", TypeA)
		opt := m.SetEDNS(DefaultEDNSSize)
		opt.Options = append(opt.Options, NewECSOption(prefix))

		wire, err := m.Pack()
		if err != nil {
			t.Fatalf("Pack with ECS %v: %v", prefix, err)
		}
		var got Message
		if err := got.Unpack(wire); err != nil {
			t.Fatalf("Unpack with ECS %v: %v", prefix, err)
		}
		ecs, ok := got.ECS()
		if !ok {
			t.Fatalf("ECS option lost for %v", prefix)
		}
		if ecs.Prefix() != prefix.Masked() {
			t.Errorf("ECS prefix = %v, want %v", ecs.Prefix(), prefix.Masked())
		}
	}
}

func TestECSScopePrefixRoundTrip(t *testing.T) {
	o := &ECSOption{Family: 1, SourcePrefix: 24, ScopePrefix: 22,
		Address: netip.MustParseAddr("198.51.100.0")}
	b, err := o.packOption(nil)
	if err != nil {
		t.Fatal(err)
	}
	var got ECSOption
	if err := got.unpackOption(b); err != nil {
		t.Fatal(err)
	}
	if got.ScopePrefix != 22 || got.SourcePrefix != 24 {
		t.Errorf("scope/source = %d/%d", got.ScopePrefix, got.SourcePrefix)
	}
}

func TestECSAddressTruncation(t *testing.T) {
	// /20 must encode exactly 3 address octets with low bits zeroed.
	o := NewECSOption(netip.MustParsePrefix("203.0.255.0/20"))
	b, err := o.packOption(nil)
	if err != nil {
		t.Fatal(err)
	}
	// 2 family + 1 source + 1 scope + 3 address.
	if len(b) != 7 {
		t.Fatalf("encoded length = %d, want 7 (% x)", len(b), b)
	}
	if b[6]&0x0F != 0 {
		t.Errorf("low bits not zeroed: %08b", b[6])
	}
}

func TestECSFamilyMismatchRejected(t *testing.T) {
	o := &ECSOption{Family: 1, SourcePrefix: 24, Address: netip.MustParseAddr("2001:db8::1")}
	if _, err := o.packOption(nil); err == nil {
		t.Error("family-1 ECS with IPv6 address packed without error")
	}
}

func TestECSUnpackWrongLength(t *testing.T) {
	// Family 1, /24, but 4 address octets instead of 3.
	data := []byte{0, 1, 24, 0, 1, 2, 3, 4}
	var o ECSOption
	if err := o.unpackOption(data); err == nil {
		t.Error("over-long ECS address accepted")
	}
	if err := o.unpackOption([]byte{0, 1}); err == nil {
		t.Error("short ECS accepted")
	}
}

func TestOPTAccessors(t *testing.T) {
	opt := NewOPT(4096)
	if opt.UDPSize() != 4096 {
		t.Errorf("UDPSize = %d", opt.UDPSize())
	}
	opt.SetUDPSize(1232)
	if opt.UDPSize() != 1232 {
		t.Errorf("after SetUDPSize = %d", opt.UDPSize())
	}
	if opt.Version() != 0 {
		t.Errorf("Version = %d", opt.Version())
	}
	if opt.Header().Name != "." {
		t.Errorf("OPT owner = %q", opt.Header().Name)
	}
}

func TestGenericOptionRoundTrip(t *testing.T) {
	m := new(Message)
	m.SetQuestion("cookie.test.", TypeA)
	opt := m.SetEDNS(1232)
	opt.Options = append(opt.Options, &GenericOption{
		OptCode: OptionCodeCookie,
		Data:    []byte{0xde, 0xad, 0xbe, 0xef, 1, 2, 3, 4},
	})
	wire, err := m.Pack()
	if err != nil {
		t.Fatal(err)
	}
	var got Message
	if err := got.Unpack(wire); err != nil {
		t.Fatal(err)
	}
	gopt, ok := got.OPT()
	if !ok || len(gopt.Options) != 1 {
		t.Fatalf("OPT options lost: %+v", gopt)
	}
	if !reflect.DeepEqual(gopt.Options[0], opt.Options[0]) {
		t.Errorf("cookie round trip: %+v", gopt.Options[0])
	}
}

func TestSetEDNSIdempotent(t *testing.T) {
	m := new(Message)
	m.SetQuestion("x.test.", TypeA)
	m.SetEDNS(512)
	m.SetEDNS(4096)
	count := 0
	for _, rr := range m.Additionals {
		if rr.Header().Type == TypeOPT {
			count++
		}
	}
	if count != 1 {
		t.Errorf("SetEDNS created %d OPT records", count)
	}
	opt, _ := m.OPT()
	if opt.UDPSize() != 4096 {
		t.Errorf("UDPSize = %d", opt.UDPSize())
	}
}

func TestOPTCloneIsDeep(t *testing.T) {
	opt := NewOPT(1232)
	opt.Options = append(opt.Options,
		NewECSOption(netip.MustParsePrefix("10.0.0.0/8")),
		&GenericOption{OptCode: 99, Data: []byte{1}})
	c := opt.Clone().(*OPT)
	c.Options[0].(*ECSOption).SourcePrefix = 32
	c.Options[1].(*GenericOption).Data[0] = 9
	if opt.Options[0].(*ECSOption).SourcePrefix != 8 {
		t.Error("OPT.Clone shares ECS option")
	}
	if opt.Options[1].(*GenericOption).Data[0] != 1 {
		t.Error("OPT.Clone shares generic option data")
	}
}

func TestECSOptionUnpackNeverPanics(t *testing.T) {
	f := func(data []byte) bool {
		var o ECSOption
		_ = o.unpackOption(data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Stray address bits inside the final disclosed octet must not
// survive decoding (RFC 7871 §6: they MUST be zero on the wire, so a
// sender that set them anyway must not have them reach routing code).
func TestECSUnpackMasksStrayBits(t *testing.T) {
	// Family 1, /20, 3 address octets with the low nibble of the last
	// octet (beyond the 20 disclosed bits) set.
	data := []byte{0, 1, 20, 0, 203, 0, 0xFF}
	var o ECSOption
	if err := o.unpackOption(data); err != nil {
		t.Fatal(err)
	}
	if want := netip.MustParseAddr("203.0.240.0"); o.Address != want {
		t.Errorf("address = %v, want %v", o.Address, want)
	}

	// Family 2, /61, 8 octets with bits 61-63 set.
	data6 := []byte{0, 2, 61, 0, 0x20, 0x01, 0x0d, 0xb8, 0, 0, 0, 0x07}
	var o6 ECSOption
	if err := o6.unpackOption(data6); err != nil {
		t.Fatal(err)
	}
	if want := netip.MustParseAddr("2001:db8::"); o6.Address != want {
		t.Errorf("v6 address = %v, want %v", o6.Address, want)
	}
}

func TestECSNormalizeQuery(t *testing.T) {
	o := &ECSOption{Family: 1, SourcePrefix: 24, ScopePrefix: 17,
		Address: netip.MustParseAddr("198.51.100.77")}
	o.NormalizeQuery()
	if o.ScopePrefix != 0 {
		t.Errorf("scope = %d, want 0", o.ScopePrefix)
	}
	if want := netip.MustParseAddr("198.51.100.0"); o.Address != want {
		t.Errorf("address = %v, want %v", o.Address, want)
	}
	if o.SourcePrefix != 24 {
		t.Errorf("source = %d changed", o.SourcePrefix)
	}

	// Zero-length disclosure keeps nothing.
	z := &ECSOption{Family: 1, SourcePrefix: 0, ScopePrefix: 3,
		Address: netip.MustParseAddr("198.51.100.77")}
	z.NormalizeQuery()
	if want := netip.MustParseAddr("0.0.0.0"); z.Address != want || z.ScopePrefix != 0 {
		t.Errorf("normalized /0 = %v/%d", z.Address, z.ScopePrefix)
	}

	// An invalid (zero) address must not panic.
	inv := &ECSOption{Family: 1, SourcePrefix: 8, ScopePrefix: 1}
	inv.NormalizeQuery()
	if inv.ScopePrefix != 0 {
		t.Errorf("invalid-address scope = %d", inv.ScopePrefix)
	}
}
