package dnswire

import (
	"bytes"
	"net/netip"
	"testing"
)

// testResponse builds a response with answers in every section, an
// OPT record, and compressed names — the shape the wire cache stores.
func testResponse(t testing.TB) *Message {
	t.Helper()
	m := new(Message)
	m.SetQuestion("video.demo1.mycdn.ciab.test.", TypeA)
	m.Response = true
	m.RecursionDesired = true
	m.Answers = []RR{
		&CNAME{Hdr: RRHeader{Name: "video.demo1.mycdn.ciab.test.", Type: TypeCNAME, Class: ClassINET, TTL: 300}, Target: "edge.site.mycdn.ciab.test."},
		&A{Hdr: RRHeader{Name: "edge.site.mycdn.ciab.test.", Type: TypeA, Class: ClassINET, TTL: 60}, Addr: netip.MustParseAddr("192.0.2.7")},
	}
	m.Authorities = []RR{
		&NS{Hdr: RRHeader{Name: "mycdn.ciab.test.", Type: TypeNS, Class: ClassINET, TTL: 3600}, NS: "ns1.mycdn.ciab.test."},
	}
	m.SetEDNS(1232)
	return m
}

func TestTTLOffsets(t *testing.T) {
	m := testResponse(t)
	wire, err := m.Pack()
	if err != nil {
		t.Fatal(err)
	}
	offs, err := TTLOffsets(wire)
	if err != nil {
		t.Fatal(err)
	}
	// Three non-OPT records; the OPT TTL (extended rcode) is excluded.
	if len(offs) != 3 {
		t.Fatalf("got %d TTL offsets, want 3: %v", len(offs), offs)
	}
	want := []uint32{300, 60, 3600}
	for i, off := range offs {
		ttl := uint32(wire[off])<<24 | uint32(wire[off+1])<<16 | uint32(wire[off+2])<<8 | uint32(wire[off+3])
		if ttl != want[i] {
			t.Errorf("offset %d reads TTL %d, want %d", off, ttl, want[i])
		}
	}
}

func TestAgeTTLsMatchesDecodePath(t *testing.T) {
	m := testResponse(t)
	wire, err := m.Pack()
	if err != nil {
		t.Fatal(err)
	}
	offs, err := TTLOffsets(wire)
	if err != nil {
		t.Fatal(err)
	}
	for _, age := range []uint32{0, 1, 59, 60, 61, 299, 1 << 30} {
		patched := append([]byte(nil), wire...)
		AgeTTLs(patched, offs, age)

		// Reference: decode, age, re-encode.
		var ref Message
		if err := ref.Unpack(wire); err != nil {
			t.Fatal(err)
		}
		for _, section := range [][]RR{ref.Answers, ref.Authorities, ref.Additionals} {
			for _, rr := range section {
				if rr.Header().Type == TypeOPT {
					continue
				}
				if rr.Header().TTL > age {
					rr.Header().TTL -= age
				} else {
					rr.Header().TTL = 0
				}
			}
		}
		refWire, err := ref.Pack()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(patched, refWire) {
			t.Errorf("age %d: patched wire differs from decode-age-repack:\n% x\n% x", age, patched, refWire)
		}
	}
}

func TestPatchID(t *testing.T) {
	m := testResponse(t)
	m.ID = 0x1234
	wire, err := m.Pack()
	if err != nil {
		t.Fatal(err)
	}
	PatchID(wire, 0xBEEF)
	var got Message
	if err := got.Unpack(wire); err != nil {
		t.Fatal(err)
	}
	if got.ID != 0xBEEF {
		t.Fatalf("patched ID = %#x, want 0xBEEF", got.ID)
	}
}

func TestPatchReplyBits(t *testing.T) {
	for _, tc := range []struct{ rd, cd bool }{{false, false}, {true, false}, {false, true}, {true, true}} {
		m := testResponse(t)
		m.RecursionDesired = !tc.rd // stored with the opposite bits
		m.CheckingDisabled = !tc.cd
		wire, err := m.Pack()
		if err != nil {
			t.Fatal(err)
		}
		PatchReplyBits(wire, tc.rd, tc.cd)
		var got Message
		if err := got.Unpack(wire); err != nil {
			t.Fatal(err)
		}
		if got.RecursionDesired != tc.rd || got.CheckingDisabled != tc.cd {
			t.Errorf("rd/cd = %v/%v, want %v/%v", got.RecursionDesired, got.CheckingDisabled, tc.rd, tc.cd)
		}
		if !got.Response || got.Rcode != m.Rcode || !got.AuthenticatedData == m.AuthenticatedData && m.AuthenticatedData {
			t.Errorf("unrelated flags disturbed: %v", &got)
		}
	}
}

func TestWireRcode(t *testing.T) {
	m := new(Message)
	m.SetQuestion("x.test.", TypeA)
	m.Response = true
	m.Rcode = RcodeNameError
	wire, err := m.Pack()
	if err != nil {
		t.Fatal(err)
	}
	if rc := WireRcode(wire); rc != RcodeNameError {
		t.Fatalf("WireRcode = %v, want NXDOMAIN", rc)
	}
	if rc := WireRcode(nil); rc != RcodeServerFailure {
		t.Fatalf("WireRcode(nil) = %v, want SERVFAIL", rc)
	}
}

func TestTTLOffsetsMalformed(t *testing.T) {
	m := testResponse(t)
	wire, err := m.Pack()
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range [][]byte{
		nil,
		wire[:8],
		wire[:len(wire)-3], // truncated mid-record
	} {
		if _, err := TTLOffsets(bad); err == nil {
			t.Errorf("TTLOffsets(%d bytes) accepted malformed input", len(bad))
		}
	}
}

func TestBufferPool(t *testing.T) {
	b := GetBuffer()
	if len(b) != MaxMessageSize {
		t.Fatalf("pooled buffer length = %d, want %d", len(b), MaxMessageSize)
	}
	PutBuffer(b[:17]) // short views of pooled buffers are restored to full size
	PutBuffer(make([]byte, 16))
	c := GetBuffer()
	if len(c) != MaxMessageSize {
		t.Fatalf("recycled buffer length = %d, want %d", len(c), MaxMessageSize)
	}
	PutBuffer(c)
}

func TestClampTTLs(t *testing.T) {
	m := testResponse(t) // TTLs 300 (CNAME), 60 (A), 3600 (NS), plus OPT
	wire, err := m.Pack()
	if err != nil {
		t.Fatal(err)
	}
	offs, err := TTLOffsets(wire)
	if err != nil {
		t.Fatal(err)
	}
	ClampTTLs(wire, offs, 100)
	var got Message
	if err := got.Unpack(wire); err != nil {
		t.Fatal(err)
	}
	// TTLs above the clamp come down to it; those at or below keep
	// their value — the stale clamp never grants lifetime or zeroes.
	if ttl := got.Answers[0].Header().TTL; ttl != 100 {
		t.Errorf("CNAME TTL = %d, want clamped to 100", ttl)
	}
	if ttl := got.Answers[1].Header().TTL; ttl != 60 {
		t.Errorf("A TTL = %d, want untouched 60", ttl)
	}
	if ttl := got.Authorities[0].Header().TTL; ttl != 100 {
		t.Errorf("NS TTL = %d, want clamped to 100", ttl)
	}
	// The OPT TTL carries flags, not a lifetime; its offset was never
	// recorded, so the EDNS payload survives clamping.
	opt, ok := got.OPT()
	if !ok || opt.UDPSize() != 1232 {
		t.Errorf("OPT record disturbed by clamp: ok=%v", ok)
	}
}
