package dnswire

import (
	"net/netip"
	"reflect"
	"testing"
	"unsafe"
)

// packQuery builds the wire form of a simple query for tests.
func packQuery(t *testing.T, build func(*Message)) []byte {
	t.Helper()
	m := new(Message)
	m.SetQuestion("cdn.edge.example.org.", TypeA)
	m.ID = 0x1234
	if build != nil {
		build(m)
	}
	wire, err := m.Pack()
	if err != nil {
		t.Fatalf("packing query: %v", err)
	}
	return wire
}

// TestUnpackQueryMatchesUnpack is the differential contract: for any
// input, UnpackQuery must produce exactly the Message Unpack does —
// same fields on success, an error whenever Unpack errors.
func TestUnpackQueryMatchesUnpack(t *testing.T) {
	inputs := map[string][]byte{
		"plain A query": packQuery(t, nil),
		"EDNS query": packQuery(t, func(m *Message) {
			m.SetEDNS(1232)
		}),
		"root qname": packQuery(t, func(m *Message) {
			m.SetQuestion(".", TypeNS)
		}),
		"CD+non-RD flags": packQuery(t, func(m *Message) {
			m.RecursionDesired = false
			m.CheckingDisabled = true
		}),
		"response with answers": func() []byte {
			m := new(Message)
			m.SetQuestion("a.example.org.", TypeA)
			m.Response = true
			m.Answers = []RR{&A{Hdr: RRHeader{Name: "a.example.org.", Class: ClassINET, TTL: 60}, Addr: netip.AddrFrom4([4]byte{192, 0, 2, 1})}}
			wire, err := m.Pack()
			if err != nil {
				t.Fatal(err)
			}
			return wire
		}(),
		"short header":     {0x12, 0x34, 0x01},
		"empty":            {},
		"truncated qname":  append(packQuery(t, nil)[:14], 0x3F),
		"trailing garbage": append(packQuery(t, nil), 0xAA),
	}
	for name, wire := range inputs {
		t.Run(name, func(t *testing.T) {
			var want, got Message
			wantErr := want.Unpack(wire)
			gotErr := got.UnpackQuery(wire, NewNameIntern(0))
			if (wantErr == nil) != (gotErr == nil) {
				t.Fatalf("Unpack err = %v, UnpackQuery err = %v", wantErr, gotErr)
			}
			if wantErr != nil {
				return
			}
			// Normalize empty-vs-nil sections: reuse keeps zero-length
			// slices where Unpack leaves nil.
			norm := func(m *Message) {
				if len(m.Questions) == 0 {
					m.Questions = nil
				}
				if len(m.Answers) == 0 {
					m.Answers = nil
				}
				if len(m.Authorities) == 0 {
					m.Authorities = nil
				}
				if len(m.Additionals) == 0 {
					m.Additionals = nil
				}
			}
			norm(&want)
			norm(&got)
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("UnpackQuery mismatch:\n got %+v\nwant %+v", got, want)
			}
		})
	}
}

// TestUnpackQueryCompressedQnameFallsBack covers the rare legal shape
// the fast path punts on: a question name using a compression pointer.
func TestUnpackQueryCompressedQnameFallsBack(t *testing.T) {
	// Hand-build: header with qd=1, a qname that is a pointer to
	// itself's suffix... simplest legal form: name at 12 is a pointer
	// to a name stored right after the fixed header is impossible in a
	// query, so point at a label we embed after the question instead.
	// Easier: pointer must point backwards; offset 12 is the first
	// name, so embed the target inside the header is not possible.
	// Use a two-entry trick: qd=1 with name = label + pointer to 12 is
	// a loop and must error in BOTH paths.
	wire := []byte{
		0x12, 0x34, 0x01, 0x00, 0x00, 0x01, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
		0xC0, 12, // pointer to itself: loop
		0x00, 0x01, 0x00, 0x01,
	}
	var a, b Message
	aErr := a.Unpack(wire)
	bErr := b.UnpackQuery(wire, nil)
	if (aErr == nil) != (bErr == nil) {
		t.Fatalf("Unpack err = %v, UnpackQuery err = %v; paths disagree", aErr, bErr)
	}
}

func TestUnpackQueryReusesStorage(t *testing.T) {
	wireA := packQuery(t, nil)
	wireB := packQuery(t, func(m *Message) {
		m.SetQuestion("other.example.org.", TypeAAAA)
		m.ID = 0x9999
	})
	var m Message
	tbl := NewNameIntern(0)
	if err := m.UnpackQuery(wireA, tbl); err != nil {
		t.Fatal(err)
	}
	first := &m.Questions[0]
	if err := m.UnpackQuery(wireB, tbl); err != nil {
		t.Fatal(err)
	}
	if &m.Questions[0] != first {
		t.Error("Questions slice was reallocated across calls")
	}
	if m.Questions[0].Name != "other.example.org." || m.Questions[0].Type != TypeAAAA || m.ID != 0x9999 {
		t.Errorf("second parse leaked first parse's state: %+v", m.Questions[0])
	}
}

func TestUnpackQueryInternsNames(t *testing.T) {
	wire := packQuery(t, nil)
	tbl := NewNameIntern(0)
	var m Message
	if err := m.UnpackQuery(wire, tbl); err != nil {
		t.Fatal(err)
	}
	n1 := m.Questions[0].Name
	if err := m.UnpackQuery(wire, tbl); err != nil {
		t.Fatal(err)
	}
	n2 := m.Questions[0].Name
	if unsafePointerOf(n1) != unsafePointerOf(n2) {
		t.Error("repeat parse did not return the interned string")
	}
}

func TestNameInternBounded(t *testing.T) {
	tbl := NewNameIntern(4)
	for i := 0; i < 10; i++ {
		tbl.put([]byte{byte(i)}, "x.")
	}
	if len(tbl.names) > 4 {
		t.Fatalf("intern table grew to %d entries, bound is 4", len(tbl.names))
	}
}

func TestUnpackQueryNoAllocOnRepeat(t *testing.T) {
	wire := packQuery(t, nil)
	tbl := NewNameIntern(0)
	var m Message
	if err := m.UnpackQuery(wire, tbl); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		if err := m.UnpackQuery(wire, tbl); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("UnpackQuery allocates %.1f per repeat parse, want 0", allocs)
	}
}

// unsafePointerOf identifies a string's backing data, so tests can
// check two strings are the same interned instance.
func unsafePointerOf(s string) *byte { return unsafe.StringData(s) }
