package dnswire

import (
	"encoding/binary"
	"fmt"
	"io"
)

// WriteTCP writes one DNS message to w using the two-byte big-endian
// length prefix mandated by RFC 1035 §4.2.2.
func WriteTCP(w io.Writer, msg []byte) error {
	if len(msg) > MaxMessageSize {
		return fmt.Errorf("dnswire: TCP message is %d bytes, max %d", len(msg), MaxMessageSize)
	}
	var prefix [2]byte
	binary.BigEndian.PutUint16(prefix[:], uint16(len(msg)))
	if _, err := w.Write(prefix[:]); err != nil {
		return fmt.Errorf("writing TCP length prefix: %w", err)
	}
	if _, err := w.Write(msg); err != nil {
		return fmt.Errorf("writing TCP message body: %w", err)
	}
	return nil
}

// ReadTCP reads one length-prefixed DNS message from r into a pooled
// buffer. Callers should hand the returned slice to PutBuffer once the
// message has been consumed (Unpack copies everything out, so the
// buffer is recyclable immediately after); forgetting to is safe, just
// slower.
func ReadTCP(r io.Reader) ([]byte, error) {
	var prefix [2]byte
	if _, err := io.ReadFull(r, prefix[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint16(prefix[:])
	buf := GetBuffer()
	msg := buf[:n]
	if _, err := io.ReadFull(r, msg); err != nil {
		PutBuffer(buf)
		return nil, fmt.Errorf("reading %d-byte TCP message body: %w", n, err)
	}
	return msg, nil
}
