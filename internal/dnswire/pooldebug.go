//go:build pooldebug

package dnswire

import (
	"fmt"
	"sync"
	"unsafe"
)

// The pooldebug build tag arms an ownership checker around the packet
// buffer pool. Batch ingress recycles buffers through fixed slot
// arrays, and the failure mode of a slot-bookkeeping bug is silent: a
// double PutBuffer puts the same backing array into the pool twice,
// two workers then "own" it at once, and one query's response is
// overwritten by another's. Under this tag every Get/Put is recorded
// per backing array, a second Put panics at the offending call site,
// and the head of every returned buffer is poisoned so a use-after-put
// serves garbage that fails loudly in tests instead of a stale,
// plausible response.
//
// The checker takes a global lock per Get/Put; it is for tests only.

const poisonLen = 512 // covers any non-EDNS DNS response head

var poolDebug struct {
	mu sync.Mutex
	// out maps each buffer's backing array to whether it is currently
	// checked out of the pool.
	out map[*byte]bool
}

func poolTrackGet(b []byte) {
	k := unsafe.SliceData(b)
	poolDebug.mu.Lock()
	defer poolDebug.mu.Unlock()
	if poolDebug.out == nil {
		poolDebug.out = make(map[*byte]bool)
	}
	if poolDebug.out[k] {
		panic(fmt.Sprintf("dnswire: pool handed out buffer %p twice (double PutBuffer earlier?)", k))
	}
	poolDebug.out[k] = true
}

func poolTrackPut(b []byte) {
	k := unsafe.SliceData(b)
	poolDebug.mu.Lock()
	defer poolDebug.mu.Unlock()
	if poolDebug.out == nil {
		poolDebug.out = make(map[*byte]bool)
	}
	if out, seen := poolDebug.out[k]; seen && !out {
		panic(fmt.Sprintf("dnswire: double PutBuffer of %p", k))
	}
	poolDebug.out[k] = false
	for i := 0; i < poisonLen && i < len(b); i++ {
		b[i] = 0xDE
	}
}

// PoolOutstanding returns how many pooled buffers are currently
// checked out (Gets without a matching Put). Pool-balance regression
// tests snapshot it before and after driving a server: any positive
// delta once the server has quiesced is a leaked buffer.
func PoolOutstanding() int {
	poolDebug.mu.Lock()
	defer poolDebug.mu.Unlock()
	n := 0
	for _, out := range poolDebug.out {
		if out {
			n++
		}
	}
	return n
}
