// Package dnswire implements the DNS wire format of RFC 1035 together
// with the EDNS(0) extension mechanism (RFC 6891) and the EDNS Client
// Subnet option (RFC 7871).
//
// The package is self-contained (standard library only) and provides
// everything the rest of the repository needs to act as a real DNS
// client or server: message packing and unpacking with name
// compression, the resource-record types used by CDN request routing
// (A, AAAA, CNAME, NS, SOA, PTR, MX, TXT, SRV, OPT), and TCP length
// framing helpers.
//
// Messages are plain Go values. A zero Message is a valid (empty)
// query; SetQuestion and SetReply cover the two common construction
// patterns:
//
//	q := new(dnswire.Message)
//	q.SetQuestion("video.demo1.mycdn.ciab.test.", dnswire.TypeA)
//	wire, err := q.Pack()
package dnswire

import (
	"fmt"
	"strings"
)

// Type is a DNS resource record type (RFC 1035 §3.2.2 and successors).
type Type uint16

// Resource record types understood by this package. Unknown types are
// carried opaquely via the Generic record.
const (
	TypeNone  Type = 0
	TypeA     Type = 1
	TypeNS    Type = 2
	TypeCNAME Type = 5
	TypeSOA   Type = 6
	TypePTR   Type = 12
	TypeMX    Type = 15
	TypeTXT   Type = 16
	TypeAAAA  Type = 28
	TypeSRV   Type = 33
	TypeOPT   Type = 41
	TypeIXFR  Type = 251
	TypeAXFR  Type = 252
	TypeANY   Type = 255
)

var typeNames = map[Type]string{
	TypeNone:  "NONE",
	TypeA:     "A",
	TypeNS:    "NS",
	TypeCNAME: "CNAME",
	TypeSOA:   "SOA",
	TypePTR:   "PTR",
	TypeMX:    "MX",
	TypeTXT:   "TXT",
	TypeAAAA:  "AAAA",
	TypeSRV:   "SRV",
	TypeOPT:   "OPT",
	TypeIXFR:  "IXFR",
	TypeAXFR:  "AXFR",
	TypeANY:   "ANY",
}

// String returns the conventional mnemonic for t, or "TYPE<n>" for
// types this package does not know by name (RFC 3597 presentation).
func (t Type) String() string {
	if s, ok := typeNames[t]; ok {
		return s
	}
	return fmt.Sprintf("TYPE%d", uint16(t))
}

// Class is a DNS class. Only IN is used in practice; ANY appears in
// queries and NONE in dynamic update.
type Class uint16

// DNS classes.
const (
	ClassINET Class = 1
	ClassNONE Class = 254
	ClassANY  Class = 255
)

// String returns the conventional mnemonic for c.
func (c Class) String() string {
	switch c {
	case ClassINET:
		return "IN"
	case ClassNONE:
		return "NONE"
	case ClassANY:
		return "ANY"
	}
	return fmt.Sprintf("CLASS%d", uint16(c))
}

// Opcode is the kind of query carried in a message header.
type Opcode uint8

// Opcodes (RFC 1035 §4.1.1, RFC 2136).
const (
	OpcodeQuery  Opcode = 0
	OpcodeIQuery Opcode = 1
	OpcodeStatus Opcode = 2
	OpcodeNotify Opcode = 4
	OpcodeUpdate Opcode = 5
)

// String returns the conventional mnemonic for o.
func (o Opcode) String() string {
	switch o {
	case OpcodeQuery:
		return "QUERY"
	case OpcodeIQuery:
		return "IQUERY"
	case OpcodeStatus:
		return "STATUS"
	case OpcodeNotify:
		return "NOTIFY"
	case OpcodeUpdate:
		return "UPDATE"
	}
	return fmt.Sprintf("OPCODE%d", uint8(o))
}

// Rcode is a response code. Values above 15 require EDNS(0) extended
// rcodes and are assembled from the OPT TTL field during unpacking.
type Rcode uint16

// Response codes (RFC 1035 §4.1.1, RFC 6891 §6.1.3).
const (
	RcodeSuccess        Rcode = 0 // NOERROR
	RcodeFormatError    Rcode = 1 // FORMERR
	RcodeServerFailure  Rcode = 2 // SERVFAIL
	RcodeNameError      Rcode = 3 // NXDOMAIN
	RcodeNotImplemented Rcode = 4 // NOTIMP
	RcodeRefused        Rcode = 5 // REFUSED
	RcodeBadVers        Rcode = 16
)

var rcodeNames = map[Rcode]string{
	RcodeSuccess:        "NOERROR",
	RcodeFormatError:    "FORMERR",
	RcodeServerFailure:  "SERVFAIL",
	RcodeNameError:      "NXDOMAIN",
	RcodeNotImplemented: "NOTIMP",
	RcodeRefused:        "REFUSED",
	RcodeBadVers:        "BADVERS",
}

// String returns the conventional mnemonic for r.
func (r Rcode) String() string {
	if s, ok := rcodeNames[r]; ok {
		return s
	}
	return fmt.Sprintf("RCODE%d", uint16(r))
}

// MaxUDPSize is the conventional maximum DNS payload carried over UDP
// without EDNS(0).
const MaxUDPSize = 512

// DefaultEDNSSize is the EDNS(0) UDP payload size this package
// advertises by default.
const DefaultEDNSSize = 1232

// MaxMessageSize is the largest message Pack will produce and Unpack
// will accept; it matches the TCP two-byte length prefix limit.
const MaxMessageSize = 65535

// CanonicalName lower-cases a domain name and ensures it is fully
// qualified (has a trailing dot). It is the form used for map keys
// throughout this repository.
func CanonicalName(name string) string {
	name = strings.ToLower(name)
	if name == "" {
		return "."
	}
	if !strings.HasSuffix(name, ".") {
		name += "."
	}
	return name
}

// IsSubdomain reports whether child is equal to or beneath parent.
// Both arguments are canonicalized first, so "Video.CDN.test" is a
// subdomain of "cdn.test.".
func IsSubdomain(parent, child string) bool {
	p, c := CanonicalName(parent), CanonicalName(child)
	if p == "." {
		return true
	}
	if c == p {
		return true
	}
	return strings.HasSuffix(c, "."+p)
}

// CountLabels returns the number of labels in name; the root name has
// zero labels.
func CountLabels(name string) int {
	name = CanonicalName(name)
	if name == "." {
		return 0
	}
	return strings.Count(name, ".")
}

// Parent returns the name with its leftmost label removed. The parent
// of a single-label name (and of the root) is the root ".".
func Parent(name string) string {
	name = CanonicalName(name)
	if name == "." {
		return "."
	}
	i := strings.Index(name, ".")
	if i < 0 || i+1 >= len(name) {
		return "."
	}
	return name[i+1:]
}
