package dnswire

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

func TestPackUnpackNameRoundTrip(t *testing.T) {
	names := []string{
		".",
		"com.",
		"example.com.",
		"a0.muscache.com.",
		"q-cf.bstatic.com.",
		"static.tacdn.com.",
		"cdn0.agoda.net.",
		"a.cdn.intentmedia.net.",
		"video.demo1.mycdn.ciab.test.",
		"_sip._tcp.example.org.",
		strings.Repeat("a", 63) + ".example.",
	}
	for _, name := range names {
		b, err := packName(nil, name, nil)
		if err != nil {
			t.Fatalf("packName(%q): %v", name, err)
		}
		got, off, err := unpackName(b, 0)
		if err != nil {
			t.Fatalf("unpackName(%q): %v", name, err)
		}
		if got != name {
			t.Errorf("round trip of %q: got %q", name, got)
		}
		if off != len(b) {
			t.Errorf("unpackName(%q): consumed %d of %d bytes", name, off, len(b))
		}
	}
}

func TestPackNameWithoutTrailingDot(t *testing.T) {
	b, err := packName(nil, "example.com", nil)
	if err != nil {
		t.Fatalf("packName: %v", err)
	}
	got, _, err := unpackName(b, 0)
	if err != nil {
		t.Fatalf("unpackName: %v", err)
	}
	if got != "example.com." {
		t.Errorf("got %q, want example.com.", got)
	}
}

func TestPackNameEscapes(t *testing.T) {
	// A label containing a literal dot must round-trip escaped.
	name := `foo\.bar.example.`
	b, err := packName(nil, name, nil)
	if err != nil {
		t.Fatalf("packName: %v", err)
	}
	// The first label must be 7 raw octets: f o o . b a r
	if b[0] != 7 || string(b[1:8]) != "foo.bar" {
		t.Fatalf("first label wire = %q (len %d)", b[1:8], b[0])
	}
	got, _, err := unpackName(b, 0)
	if err != nil {
		t.Fatalf("unpackName: %v", err)
	}
	if got != name {
		t.Errorf("round trip: got %q want %q", got, name)
	}
}

func TestPackNameDecimalEscape(t *testing.T) {
	name := `\000\255.example.`
	b, err := packName(nil, name, nil)
	if err != nil {
		t.Fatalf("packName: %v", err)
	}
	if b[0] != 2 || b[1] != 0 || b[2] != 255 {
		t.Fatalf("wire label = % x", b[:3])
	}
	got, _, err := unpackName(b, 0)
	if err != nil {
		t.Fatalf("unpackName: %v", err)
	}
	if got != name {
		t.Errorf("round trip: got %q want %q", got, name)
	}
}

func TestPackNameErrors(t *testing.T) {
	tests := []struct {
		name string
		want error
	}{
		{strings.Repeat("a", 64) + ".com.", ErrLabelTooLong},
		{strings.Repeat(strings.Repeat("a", 63)+".", 5), ErrNameTooLong},
		{"..", ErrEmptyLabel},
		{"a..b.", ErrEmptyLabel},
	}
	for _, tt := range tests {
		if _, err := packName(nil, tt.name, nil); !errors.Is(err, tt.want) {
			t.Errorf("packName(%q) error = %v, want %v", tt.name, err, tt.want)
		}
	}
}

func TestUnpackNamePointerLoop(t *testing.T) {
	// A name that points at itself.
	msg := []byte{0xC0, 0x00}
	if _, _, err := unpackName(msg, 0); err == nil {
		t.Fatal("expected error for self-referencing pointer")
	}
}

func TestUnpackNameForwardPointerRejected(t *testing.T) {
	// Pointer to a later offset must be rejected.
	msg := []byte{0xC0, 0x04, 0x00, 0x00, 0x01, 'a', 0x00}
	if _, _, err := unpackName(msg, 0); !errors.Is(err, ErrBadPointer) {
		t.Fatalf("error = %v, want ErrBadPointer", err)
	}
}

func TestUnpackNameTruncated(t *testing.T) {
	cases := [][]byte{
		{},
		{5, 'a', 'b'},
		{0xC0},
		{3, 'c', 'o', 'm'}, // missing terminator
	}
	for _, msg := range cases {
		if _, _, err := unpackName(msg, 0); err == nil {
			t.Errorf("unpackName(% x): expected error", msg)
		}
	}
}

func TestCompressionProducesPointer(t *testing.T) {
	c := newCompressor()
	b, err := packName(nil, "www.example.com.", c)
	if err != nil {
		t.Fatal(err)
	}
	first := len(b)
	b, err = packName(b, "ftp.example.com.", c)
	if err != nil {
		t.Fatal(err)
	}
	second := len(b) - first
	// "ftp" label (4) + pointer (2) = 6 bytes; uncompressed would be 17.
	if second != 6 {
		t.Errorf("compressed encoding is %d bytes, want 6", second)
	}
	got, _, err := unpackName(b, first)
	if err != nil {
		t.Fatal(err)
	}
	if got != "ftp.example.com." {
		t.Errorf("decompressed to %q", got)
	}
}

func TestCompressionIsCaseInsensitive(t *testing.T) {
	c := newCompressor()
	b, _ := packName(nil, "EXAMPLE.com.", c)
	before := len(b)
	b, _ = packName(b, "www.example.COM.", c)
	if len(b)-before >= before {
		t.Errorf("no compression across case variants: %d bytes added", len(b)-before)
	}
}

func TestNameRoundTripProperty(t *testing.T) {
	f := func(labels [][]byte) bool {
		// Build a legal name from arbitrary label bytes.
		total := 1
		var parts []string
		for _, l := range labels {
			if len(l) == 0 {
				continue
			}
			if len(l) > 63 {
				l = l[:63]
			}
			if total+len(l)+1 > 255 {
				break
			}
			total += len(l) + 1
			parts = append(parts, escapeLabel(string(l)))
		}
		name := "."
		if len(parts) > 0 {
			name = strings.Join(parts, ".") + "."
		}
		b, err := packName(nil, name, nil)
		if err != nil {
			t.Logf("packName(%q): %v", name, err)
			return false
		}
		got, off, err := unpackName(b, 0)
		if err != nil {
			t.Logf("unpackName(%q): %v", name, err)
			return false
		}
		return got == name && off == len(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestUnpackNameNeverPanics(t *testing.T) {
	f := func(msg []byte, off uint8) bool {
		start := 0
		if len(msg) > 0 {
			start = int(off) % len(msg)
		}
		_, _, _ = unpackName(msg, start) // must not panic
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestCanonicalName(t *testing.T) {
	tests := []struct{ in, want string }{
		{"", "."},
		{".", "."},
		{"Example.COM", "example.com."},
		{"example.com.", "example.com."},
		{"A0.Muscache.Com", "a0.muscache.com."},
	}
	for _, tt := range tests {
		if got := CanonicalName(tt.in); got != tt.want {
			t.Errorf("CanonicalName(%q) = %q, want %q", tt.in, got, tt.want)
		}
	}
}

func TestIsSubdomain(t *testing.T) {
	tests := []struct {
		parent, child string
		want          bool
	}{
		{"com.", "example.com.", true},
		{"example.com.", "example.com.", true},
		{"example.com.", "www.example.com.", true},
		{"example.com.", "notexample.com.", false},
		{"example.com.", "com.", false},
		{".", "anything.at.all.", true},
		{"mycdn.ciab.test.", "video.demo1.mycdn.ciab.test.", true},
		{"Mycdn.CIAB.test", "VIDEO.demo1.mycdn.ciab.test.", true},
	}
	for _, tt := range tests {
		if got := IsSubdomain(tt.parent, tt.child); got != tt.want {
			t.Errorf("IsSubdomain(%q, %q) = %v, want %v", tt.parent, tt.child, got, tt.want)
		}
	}
}

func TestCountLabelsAndParent(t *testing.T) {
	if n := CountLabels("."); n != 0 {
		t.Errorf("CountLabels(.) = %d", n)
	}
	if n := CountLabels("a.b.c."); n != 3 {
		t.Errorf("CountLabels(a.b.c.) = %d", n)
	}
	if p := Parent("www.example.com."); p != "example.com." {
		t.Errorf("Parent = %q", p)
	}
	if p := Parent("com."); p != "." {
		t.Errorf("Parent(com.) = %q", p)
	}
	if p := Parent("."); p != "." {
		t.Errorf("Parent(.) = %q", p)
	}
}

func TestEscapeLabelPrintable(t *testing.T) {
	if got := escapeLabel("abc-123"); got != "abc-123" {
		t.Errorf("escapeLabel plain = %q", got)
	}
	if got := escapeLabel("a.b"); got != `a\.b` {
		t.Errorf("escapeLabel dot = %q", got)
	}
	if got := escapeLabel("a\x00b"); got != `a\000b` {
		t.Errorf("escapeLabel nul = %q", got)
	}
}

func TestPackNameBufferIsAppended(t *testing.T) {
	prefix := []byte{1, 2, 3}
	b, err := packName(prefix, "x.", nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(b, prefix) {
		t.Error("packName did not preserve existing buffer contents")
	}
}
