//go:build pooldebug

package dnswire

import "testing"

// TestDoublePutBufferPanics pins the pooldebug contract: returning the
// same buffer twice must panic at the second Put, not silently hand
// two future callers the same backing array.
func TestDoublePutBufferPanics(t *testing.T) {
	b := GetBuffer()
	PutBuffer(b)
	defer func() {
		if recover() == nil {
			t.Error("second PutBuffer of the same buffer did not panic")
		}
		// The panic left the buffer marked as returned; a fresh
		// Get/Put cycle must still work.
		PutBuffer(GetBuffer())
	}()
	PutBuffer(b)
}

// TestPutBufferPoisonsHead verifies a use-after-put reads poison, not
// a stale-but-plausible response image.
func TestPutBufferPoisonsHead(t *testing.T) {
	b := GetBuffer()
	for i := 0; i < poisonLen; i++ {
		b[i] = 0xAA
	}
	PutBuffer(b)
	for i := 0; i < poisonLen; i++ {
		if b[i] != 0xDE {
			t.Fatalf("byte %d = %#x after PutBuffer, want poison 0xDE", i, b[i])
		}
	}
}

// TestPoolOutstandingTracksCheckouts verifies the leak counter moves
// with Get/Put so serve-path balance tests can trust it.
func TestPoolOutstandingTracksCheckouts(t *testing.T) {
	base := PoolOutstanding()
	a, b := GetBuffer(), GetBuffer()
	if got := PoolOutstanding(); got != base+2 {
		t.Errorf("outstanding = %d after two Gets, want %d", got, base+2)
	}
	PutBuffer(a)
	PutBuffer(b)
	if got := PoolOutstanding(); got != base {
		t.Errorf("outstanding = %d after matching Puts, want %d", got, base)
	}
}
