package dnswire

import (
	"errors"
	"fmt"
	"strings"
)

// Errors returned by name packing and unpacking.
var (
	ErrNameTooLong    = errors.New("dnswire: domain name exceeds 255 octets")
	ErrLabelTooLong   = errors.New("dnswire: label exceeds 63 octets")
	ErrEmptyLabel     = errors.New("dnswire: empty label in domain name")
	ErrBadPointer     = errors.New("dnswire: bad compression pointer")
	ErrPointerLoop    = errors.New("dnswire: compression pointer loop")
	ErrBufferTooSmall = errors.New("dnswire: buffer too small")
	ErrBadRdata       = errors.New("dnswire: malformed rdata")
)

const (
	maxNameWire    = 255 // total encoded length including length octets
	maxLabel       = 63
	maxPointerHops = 64 // far above any legitimate chain
)

// splitLabels converts a presentation-format name into its labels,
// honouring \. and \\ escapes and decimal \DDD escapes.
func splitLabels(name string) ([]string, error) {
	if name == "." || name == "" {
		return nil, nil
	}
	name = strings.TrimSuffix(name, ".")
	var labels []string
	var cur strings.Builder
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c == '\\':
			if i+1 >= len(name) {
				return nil, fmt.Errorf("dnswire: dangling escape in %q", name)
			}
			next := name[i+1]
			if next >= '0' && next <= '9' {
				if i+3 >= len(name) {
					return nil, fmt.Errorf("dnswire: truncated \\DDD escape in %q", name)
				}
				v := 0
				for j := 1; j <= 3; j++ {
					d := name[i+j]
					if d < '0' || d > '9' {
						return nil, fmt.Errorf("dnswire: bad \\DDD escape in %q", name)
					}
					v = v*10 + int(d-'0')
				}
				if v > 255 {
					return nil, fmt.Errorf("dnswire: \\DDD escape out of range in %q", name)
				}
				cur.WriteByte(byte(v))
				i += 3
			} else {
				cur.WriteByte(next)
				i++
			}
		case c == '.':
			if cur.Len() == 0 {
				return nil, ErrEmptyLabel
			}
			labels = append(labels, cur.String())
			cur.Reset()
		default:
			cur.WriteByte(c)
		}
	}
	if cur.Len() == 0 {
		return nil, ErrEmptyLabel
	}
	labels = append(labels, cur.String())
	return labels, nil
}

// escapeLabel renders a raw label in presentation format.
func escapeLabel(label string) string {
	var b strings.Builder
	for i := 0; i < len(label); i++ {
		c := label[i]
		switch {
		case c == '.' || c == '\\':
			b.WriteByte('\\')
			b.WriteByte(c)
		case c < '!' || c > '~':
			fmt.Fprintf(&b, "\\%03d", c)
		default:
			b.WriteByte(c)
		}
	}
	return b.String()
}

// compressor tracks name→offset mappings while packing a message.
// Offsets beyond the 14-bit pointer range are never recorded.
type compressor struct {
	offsets map[string]int
}

func newCompressor() *compressor {
	return &compressor{offsets: make(map[string]int)}
}

// packName appends the wire encoding of name to b, using and updating
// the compressor c. A nil compressor disables compression entirely
// (required inside SRV rdata and anywhere a digest is computed).
func packName(b []byte, name string, c *compressor) ([]byte, error) {
	labels, err := splitLabels(name)
	if err != nil {
		return nil, err
	}
	wireLen := 1 // terminating zero octet
	for _, l := range labels {
		if len(l) > maxLabel {
			return nil, ErrLabelTooLong
		}
		wireLen += 1 + len(l)
	}
	if wireLen > maxNameWire {
		return nil, ErrNameTooLong
	}
	for i := range labels {
		suffix := strings.ToLower(strings.Join(labels[i:], "."))
		if c != nil {
			if off, ok := c.offsets[suffix]; ok {
				b = append(b, 0xC0|byte(off>>8), byte(off))
				return b, nil
			}
			if len(b) < 0x4000 {
				c.offsets[suffix] = len(b)
			}
		}
		l := labels[i]
		b = append(b, byte(len(l)))
		b = append(b, l...)
	}
	return append(b, 0), nil
}

// unpackName decodes a possibly-compressed name starting at off.
// It returns the presentation-format name and the offset of the first
// byte after the name as laid out at off (pointers are followed for
// content but do not advance the caller's cursor past their two bytes).
func unpackName(msg []byte, off int) (string, int, error) {
	if off < 0 || off >= len(msg) {
		return "", 0, ErrBufferTooSmall
	}
	var sb strings.Builder
	ptrCount := 0
	newOff := -1 // offset to resume at, set on first pointer
	budget := maxNameWire
	for {
		if off >= len(msg) {
			return "", 0, ErrBufferTooSmall
		}
		c := msg[off]
		switch {
		case c == 0:
			off++
			if newOff < 0 {
				newOff = off
			}
			name := sb.String()
			if name == "" {
				name = "."
			}
			return name, newOff, nil
		case c&0xC0 == 0xC0:
			if off+1 >= len(msg) {
				return "", 0, ErrBadPointer
			}
			ptr := int(c&0x3F)<<8 | int(msg[off+1])
			if newOff < 0 {
				newOff = off + 2
			}
			if ptrCount++; ptrCount > maxPointerHops {
				return "", 0, ErrPointerLoop
			}
			if ptr >= off {
				// Forward pointers enable loops; RFC-compliant
				// encoders only point backwards.
				return "", 0, ErrBadPointer
			}
			off = ptr
		case c&0xC0 != 0:
			return "", 0, fmt.Errorf("dnswire: reserved label type 0x%02x", c&0xC0)
		default:
			n := int(c)
			if off+1+n > len(msg) {
				return "", 0, ErrBufferTooSmall
			}
			if budget -= n + 1; budget <= 0 {
				return "", 0, ErrNameTooLong
			}
			sb.WriteString(escapeLabel(string(msg[off+1 : off+1+n])))
			sb.WriteByte('.')
			off += 1 + n
		}
	}
}
