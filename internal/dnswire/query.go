package dnswire

import (
	"encoding/binary"
)

// This file holds the server-ingress unpack path. Unpack is general:
// it re-derives every section slice and builds each question name
// through the label escaper, which is correct for arbitrary messages
// but costs ~10 allocations for the one-question query that is every
// real client packet. UnpackQuery keeps the same wire semantics while
// reusing the caller's Message storage and interning question names,
// so parsing a repeat of a hot query allocates nothing.

// NameIntern is a bounded wire-name → presentation-name table used by
// UnpackQuery to avoid re-decoding (and re-allocating) the qname of
// every packet. Keys are the raw wire bytes of the name as they appear
// in the question section, so a lookup is one map probe with no
// conversion; values are the canonical presentation-format strings
// unpackName would have produced.
//
// A NameIntern is not safe for concurrent use: give each worker its
// own. The table is cleared wholesale when it reaches its bound, so a
// hostile stream of unique names costs a rebuild, never unbounded
// memory. Interned strings are ordinary heap strings and safe to
// retain anywhere (cache keys, telemetry spans, query-log records).
type NameIntern struct {
	names map[string]string
	max   int
}

// NewNameIntern returns an intern table bounded to max names;
// max <= 0 means 4096.
func NewNameIntern(max int) *NameIntern {
	if max <= 0 {
		max = 4096
	}
	return &NameIntern{names: make(map[string]string, 64), max: max}
}

func (t *NameIntern) put(wire []byte, name string) {
	if len(t.names) >= t.max {
		clear(t.names)
	}
	t.names[string(wire)] = name
}

// UnpackQuery parses wire-format data into m like Unpack, replacing
// m's contents but reusing its section storage, with question names
// interned through tbl (which may be nil). It is intended for the
// server read loops, where m is a per-worker scratch message: a
// message parsed this way must not be retained past the request,
// because the next packet overwrites it. The name strings themselves
// are permanent and safe to retain.
//
// The reuse fast path covers the shape of every real client query —
// one question, empty answer/authority sections, at most one
// additional record (EDNS OPT). Anything else falls back to Unpack,
// so the two paths accept and reject identical inputs.
func (m *Message) UnpackQuery(data []byte, tbl *NameIntern) error {
	if len(data) < 12 {
		return ErrShortMessage
	}
	if len(data) > MaxMessageSize {
		return m.Unpack(data) // same oversize error as the general path
	}
	qd := int(binary.BigEndian.Uint16(data[4:]))
	an := int(binary.BigEndian.Uint16(data[6:]))
	ns := int(binary.BigEndian.Uint16(data[8:]))
	ar := int(binary.BigEndian.Uint16(data[10:]))
	if qd != 1 || an != 0 || ns != 0 || ar > 1 {
		return m.Unpack(data)
	}

	// Scan the qname's wire extent first: interning keys on the raw
	// bytes, and a compressed or malformed name punts to Unpack so
	// error behaviour stays identical.
	off := 12
	for {
		if off >= len(data) {
			return ErrBufferTooSmall
		}
		c := data[off]
		if c == 0 {
			off++
			break
		}
		if c&0xC0 != 0 {
			// Compression pointers (or reserved label types) in a
			// question are legal but vanishingly rare; take the
			// general path rather than chase pointers here.
			return m.Unpack(data)
		}
		off += 1 + int(c)
		if off-12 > maxNameWire {
			return ErrNameTooLong
		}
	}
	wireName := data[12:off]
	if off+4 > len(data) {
		return ErrBufferTooSmall
	}

	var name string
	if tbl != nil {
		name = tbl.names[string(wireName)] // no alloc: map probe by converted key
	}
	if name == "" {
		var err error
		if name, _, err = unpackName(data, 12); err != nil {
			return err
		}
		if tbl != nil {
			tbl.put(wireName, name)
		}
	}

	flags := binary.BigEndian.Uint16(data[2:])
	m.ID = binary.BigEndian.Uint16(data)
	m.Response = flags&flagQR != 0
	m.Opcode = Opcode(flags >> 11 & 0xF)
	m.Authoritative = flags&flagAA != 0
	m.Truncated = flags&flagTC != 0
	m.RecursionDesired = flags&flagRD != 0
	m.RecursionAvailable = flags&flagRA != 0
	m.AuthenticatedData = flags&flagAD != 0
	m.CheckingDisabled = flags&flagCD != 0
	m.Rcode = Rcode(flags & 0xF)
	m.Questions = append(m.Questions[:0], Question{
		Name:  name,
		Type:  Type(binary.BigEndian.Uint16(data[off:])),
		Class: Class(binary.BigEndian.Uint16(data[off+2:])),
	})
	m.Answers = m.Answers[:0]
	m.Authorities = m.Authorities[:0]
	m.Additionals = m.Additionals[:0]
	off += 4

	if ar == 1 {
		rr, end, err := unpackRR(data, off)
		if err != nil {
			return err
		}
		off = end
		m.Additionals = append(m.Additionals, rr)
	}
	if off != len(data) {
		return ErrTrailingGarbage
	}
	if opt, ok := m.OPT(); ok {
		m.Rcode |= Rcode(opt.ExtendedRcode()) << 4
	}
	return nil
}
