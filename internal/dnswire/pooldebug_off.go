//go:build !pooldebug

package dnswire

// In the default build the pool ownership hooks compile to nothing;
// GetBuffer/PutBuffer stay a pure sync.Pool cycle. Build (or test)
// with -tags pooldebug to turn on the ownership checker in
// pooldebug.go.

func poolTrackGet([]byte) {}
func poolTrackPut([]byte) {}
