package dnswire

import (
	"encoding/binary"
	"fmt"
	"net/netip"
)

// EDNS(0) option codes.
const (
	OptionCodeECS     uint16 = 8  // Client Subnet, RFC 7871
	OptionCodeCookie  uint16 = 10 // DNS Cookies, RFC 7873
	OptionCodePadding uint16 = 12 // Padding, RFC 7830
)

// EDNSOption is a single option inside an OPT pseudo-record.
type EDNSOption interface {
	// Code returns the option's IANA code point.
	Code() uint16
	packOption(b []byte) ([]byte, error)
	unpackOption(data []byte) error
}

// OPT is the EDNS(0) pseudo-record (RFC 6891). The header fields are
// overloaded: Name must be the root, Class carries the requestor's UDP
// payload size, and TTL carries the extended rcode, version, and DO
// bit. Use the accessor methods instead of poking the header.
type OPT struct {
	Hdr     RRHeader
	Options []EDNSOption
}

// NewOPT returns an OPT record advertising the given UDP payload size.
func NewOPT(udpSize uint16) *OPT {
	return &OPT{Hdr: RRHeader{
		Name:  ".",
		Type:  TypeOPT,
		Class: Class(udpSize),
	}}
}

// Header implements RR.
func (r *OPT) Header() *RRHeader { return &r.Hdr }

// String implements RR.
func (r *OPT) String() string {
	s := fmt.Sprintf(";; OPT: version %d, udp %d, ext-rcode %d",
		r.Version(), r.UDPSize(), r.ExtendedRcode())
	for _, o := range r.Options {
		if ecs, ok := o.(*ECSOption); ok {
			s += " " + ecs.String()
		} else {
			s += fmt.Sprintf(" option(%d)", o.Code())
		}
	}
	return s
}

// Clone implements RR.
func (r *OPT) Clone() RR {
	c := *r
	c.Options = make([]EDNSOption, len(r.Options))
	for i, o := range r.Options {
		switch o := o.(type) {
		case *ECSOption:
			oc := *o
			c.Options[i] = &oc
		case *GenericOption:
			oc := *o
			oc.Data = append([]byte(nil), o.Data...)
			c.Options[i] = &oc
		default:
			c.Options[i] = o
		}
	}
	return &c
}

// UDPSize returns the advertised UDP payload size.
func (r *OPT) UDPSize() uint16 { return uint16(r.Hdr.Class) }

// SetUDPSize sets the advertised UDP payload size.
func (r *OPT) SetUDPSize(n uint16) { r.Hdr.Class = Class(n) }

// Version returns the EDNS version (always 0 in practice).
func (r *OPT) Version() uint8 { return uint8(r.Hdr.TTL >> 16) }

// ExtendedRcode returns the upper 8 bits of the extended rcode.
func (r *OPT) ExtendedRcode() uint8 { return uint8(r.Hdr.TTL >> 24) }

// setExtendedRcode stores the upper bits of rcode in the TTL field.
func (r *OPT) setExtendedRcode(rcode Rcode) {
	r.Hdr.TTL = r.Hdr.TTL&0x00FFFFFF | uint32(rcode>>4)<<24
}

// ECS returns the client-subnet option if present.
func (r *OPT) ECS() (*ECSOption, bool) {
	for _, o := range r.Options {
		if ecs, ok := o.(*ECSOption); ok {
			return ecs, true
		}
	}
	return nil, false
}

func (r *OPT) packData(b []byte, _ *compressor) ([]byte, error) {
	for _, o := range r.Options {
		b = binary.BigEndian.AppendUint16(b, o.Code())
		lenAt := len(b)
		b = append(b, 0, 0)
		var err error
		b, err = o.packOption(b)
		if err != nil {
			return nil, err
		}
		binary.BigEndian.PutUint16(b[lenAt:], uint16(len(b)-lenAt-2))
	}
	return b, nil
}

func (r *OPT) unpackData(msg []byte, off, rdlen int) error {
	end := off + rdlen
	r.Options = nil
	for off < end {
		if off+4 > end {
			return ErrBadRdata
		}
		code := binary.BigEndian.Uint16(msg[off:])
		olen := int(binary.BigEndian.Uint16(msg[off+2:]))
		off += 4
		if off+olen > end {
			return ErrBadRdata
		}
		var o EDNSOption
		switch code {
		case OptionCodeECS:
			o = new(ECSOption)
		default:
			o = &GenericOption{OptCode: code}
		}
		if err := o.unpackOption(msg[off : off+olen]); err != nil {
			return err
		}
		r.Options = append(r.Options, o)
		off += olen
	}
	return nil
}

// ECSOption is the EDNS Client Subnet option (RFC 7871). In a query,
// SourcePrefix gives the number of leading address bits the client is
// willing to disclose and ScopePrefix must be zero; in a response,
// ScopePrefix is the prefix length the answer is tailored to.
type ECSOption struct {
	Family       uint16 // 1 = IPv4, 2 = IPv6
	SourcePrefix uint8
	ScopePrefix  uint8
	Address      netip.Addr
}

// NewECSOption builds a query-side ECS option for the given prefix.
func NewECSOption(prefix netip.Prefix) *ECSOption {
	fam := uint16(1)
	if prefix.Addr().Is6() && !prefix.Addr().Is4In6() {
		fam = 2
	}
	return &ECSOption{
		Family:       fam,
		SourcePrefix: uint8(prefix.Bits()),
		Address:      prefix.Masked().Addr(),
	}
}

// Code implements EDNSOption.
func (o *ECSOption) Code() uint16 { return OptionCodeECS }

// Prefix returns the option's subnet as a netip.Prefix.
func (o *ECSOption) Prefix() netip.Prefix {
	return netip.PrefixFrom(o.Address, int(o.SourcePrefix))
}

// NormalizeQuery enforces the RFC 7871 §6 query-side invariants on the
// option in place: ScopePrefix MUST be zero in queries, and address
// bits beyond SourcePrefix MUST be zero. Servers call this on ingress
// so a sloppy or hostile client cannot leak stray host bits into
// routing decisions or fragment caches keyed on the masked subnet.
func (o *ECSOption) NormalizeQuery() {
	o.ScopePrefix = 0
	o.maskAddress()
}

// maskAddress zeroes address bits beyond SourcePrefix.
func (o *ECSOption) maskAddress() {
	if !o.Address.IsValid() {
		return
	}
	bits := int(o.SourcePrefix)
	if bits >= o.Address.BitLen() {
		return
	}
	if p, err := o.Address.Prefix(bits); err == nil {
		o.Address = p.Addr()
	}
}

// String renders the option dig-style.
func (o *ECSOption) String() string {
	return fmt.Sprintf("CLIENT-SUBNET %s/%d/%d", o.Address, o.SourcePrefix, o.ScopePrefix)
}

func (o *ECSOption) packOption(b []byte) ([]byte, error) {
	b = binary.BigEndian.AppendUint16(b, o.Family)
	b = append(b, o.SourcePrefix, o.ScopePrefix)
	var addr []byte
	switch o.Family {
	case 1:
		if !o.Address.Is4() && !o.Address.Is4In6() {
			return nil, fmt.Errorf("%w: ECS family 1 with non-IPv4 address", ErrBadRdata)
		}
		a4 := o.Address.As4()
		addr = a4[:]
	case 2:
		a16 := o.Address.As16()
		addr = a16[:]
	default:
		return nil, fmt.Errorf("%w: ECS family %d", ErrBadRdata, o.Family)
	}
	// RFC 7871 §6: address truncated to the minimum octets covering
	// SourcePrefix bits, trailing bits zeroed.
	n := (int(o.SourcePrefix) + 7) / 8
	if n > len(addr) {
		return nil, fmt.Errorf("%w: ECS prefix %d too long for family %d", ErrBadRdata, o.SourcePrefix, o.Family)
	}
	trunc := append([]byte(nil), addr[:n]...)
	if rem := int(o.SourcePrefix) % 8; rem != 0 && n > 0 {
		trunc[n-1] &= byte(0xFF << (8 - rem))
	}
	return append(b, trunc...), nil
}

func (o *ECSOption) unpackOption(data []byte) error {
	if len(data) < 4 {
		return ErrBadRdata
	}
	o.Family = binary.BigEndian.Uint16(data)
	o.SourcePrefix = data[2]
	o.ScopePrefix = data[3]
	addrBytes := data[4:]
	n := (int(o.SourcePrefix) + 7) / 8
	if len(addrBytes) != n {
		return fmt.Errorf("%w: ECS address has %d octets, want %d", ErrBadRdata, len(addrBytes), n)
	}
	switch o.Family {
	case 1:
		if n > 4 {
			return ErrBadRdata
		}
		var a4 [4]byte
		copy(a4[:], addrBytes)
		o.Address = netip.AddrFrom4(a4)
	case 2:
		if n > 16 {
			return ErrBadRdata
		}
		var a16 [16]byte
		copy(a16[:], addrBytes)
		o.Address = netip.AddrFrom16(a16)
	default:
		return fmt.Errorf("%w: ECS family %d", ErrBadRdata, o.Family)
	}
	// RFC 7871 §6 requires bits beyond SourcePrefix be zero on the
	// wire; a sender that set them anyway must not have them surface
	// in the decoded address, so mask here rather than trust.
	o.maskAddress()
	return nil
}

// GenericOption preserves an unrecognized EDNS option byte for byte.
type GenericOption struct {
	OptCode uint16
	Data    []byte
}

// Code implements EDNSOption.
func (o *GenericOption) Code() uint16 { return o.OptCode }

func (o *GenericOption) packOption(b []byte) ([]byte, error) {
	return append(b, o.Data...), nil
}

func (o *GenericOption) unpackOption(data []byte) error {
	o.Data = append([]byte(nil), data...)
	return nil
}
