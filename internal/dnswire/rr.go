package dnswire

import (
	"encoding/binary"
	"fmt"
	"net/netip"
	"strings"
)

// RRHeader is the owner name, type, class, and TTL shared by every
// resource record.
type RRHeader struct {
	Name  string
	Type  Type
	Class Class
	TTL   uint32
}

// RR is a single DNS resource record. Concrete implementations carry
// the typed rdata; unknown types round-trip through Generic.
type RR interface {
	// Header returns the record's shared header fields.
	Header() *RRHeader
	// String renders the record in zone-file presentation format.
	String() string
	// Clone returns a deep copy of the record.
	Clone() RR

	packData(b []byte, c *compressor) ([]byte, error)
	unpackData(msg []byte, off, rdlen int) error
}

func headerString(h *RRHeader) string {
	return fmt.Sprintf("%s\t%d\t%s\t%s", h.Name, h.TTL, h.Class, h.Type)
}

// packRR appends the full wire form of rr (header + rdata) to b.
func packRR(b []byte, rr RR, c *compressor) ([]byte, error) {
	h := rr.Header()
	var err error
	b, err = packName(b, h.Name, c)
	if err != nil {
		return nil, fmt.Errorf("packing owner of %s record %q: %w", h.Type, h.Name, err)
	}
	b = binary.BigEndian.AppendUint16(b, uint16(h.Type))
	b = binary.BigEndian.AppendUint16(b, uint16(h.Class))
	b = binary.BigEndian.AppendUint32(b, h.TTL)
	lenAt := len(b)
	b = append(b, 0, 0) // rdlength placeholder
	b, err = rr.packData(b, c)
	if err != nil {
		return nil, fmt.Errorf("packing rdata of %s record %q: %w", h.Type, h.Name, err)
	}
	rdlen := len(b) - lenAt - 2
	if rdlen > 0xFFFF {
		return nil, ErrBadRdata
	}
	binary.BigEndian.PutUint16(b[lenAt:], uint16(rdlen))
	return b, nil
}

// unpackRR decodes one resource record starting at off and returns it
// together with the offset just past the record.
func unpackRR(msg []byte, off int) (RR, int, error) {
	name, off, err := unpackName(msg, off)
	if err != nil {
		return nil, 0, err
	}
	if off+10 > len(msg) {
		return nil, 0, ErrBufferTooSmall
	}
	h := RRHeader{
		Name:  name,
		Type:  Type(binary.BigEndian.Uint16(msg[off:])),
		Class: Class(binary.BigEndian.Uint16(msg[off+2:])),
		TTL:   binary.BigEndian.Uint32(msg[off+4:]),
	}
	rdlen := int(binary.BigEndian.Uint16(msg[off+8:]))
	off += 10
	if off+rdlen > len(msg) {
		return nil, 0, ErrBufferTooSmall
	}
	rr := newRR(h.Type)
	*rr.Header() = h
	if err := rr.unpackData(msg, off, rdlen); err != nil {
		return nil, 0, fmt.Errorf("unpacking %s record %q: %w", h.Type, h.Name, err)
	}
	return rr, off + rdlen, nil
}

// newRR returns a zero record of the concrete type for t.
func newRR(t Type) RR {
	switch t {
	case TypeA:
		return new(A)
	case TypeAAAA:
		return new(AAAA)
	case TypeCNAME:
		return new(CNAME)
	case TypeNS:
		return new(NS)
	case TypeSOA:
		return new(SOA)
	case TypePTR:
		return new(PTR)
	case TypeMX:
		return new(MX)
	case TypeTXT:
		return new(TXT)
	case TypeSRV:
		return new(SRV)
	case TypeOPT:
		return new(OPT)
	}
	return new(Generic)
}

// A is an IPv4 address record.
type A struct {
	Hdr  RRHeader
	Addr netip.Addr // must be a valid IPv4 address
}

// Header implements RR.
func (r *A) Header() *RRHeader { return &r.Hdr }

// String implements RR.
func (r *A) String() string { return headerString(&r.Hdr) + "\t" + r.Addr.String() }

// Clone implements RR.
func (r *A) Clone() RR { c := *r; return &c }

func (r *A) packData(b []byte, _ *compressor) ([]byte, error) {
	if !r.Addr.Is4() && !r.Addr.Is4In6() {
		return nil, fmt.Errorf("%w: A record address %v is not IPv4", ErrBadRdata, r.Addr)
	}
	a4 := r.Addr.As4()
	return append(b, a4[:]...), nil
}

func (r *A) unpackData(msg []byte, off, rdlen int) error {
	if rdlen != 4 {
		return fmt.Errorf("%w: A rdata length %d", ErrBadRdata, rdlen)
	}
	r.Addr = netip.AddrFrom4([4]byte(msg[off : off+4]))
	return nil
}

// AAAA is an IPv6 address record.
type AAAA struct {
	Hdr  RRHeader
	Addr netip.Addr // must be a valid IPv6 address
}

// Header implements RR.
func (r *AAAA) Header() *RRHeader { return &r.Hdr }

// String implements RR.
func (r *AAAA) String() string { return headerString(&r.Hdr) + "\t" + r.Addr.String() }

// Clone implements RR.
func (r *AAAA) Clone() RR { c := *r; return &c }

func (r *AAAA) packData(b []byte, _ *compressor) ([]byte, error) {
	if !r.Addr.Is6() || r.Addr.Is4In6() {
		return nil, fmt.Errorf("%w: AAAA record address %v is not IPv6", ErrBadRdata, r.Addr)
	}
	a16 := r.Addr.As16()
	return append(b, a16[:]...), nil
}

func (r *AAAA) unpackData(msg []byte, off, rdlen int) error {
	if rdlen != 16 {
		return fmt.Errorf("%w: AAAA rdata length %d", ErrBadRdata, rdlen)
	}
	r.Addr = netip.AddrFrom16([16]byte(msg[off : off+16]))
	return nil
}

// CNAME is a canonical-name (alias) record; the backbone of CDN
// cascades.
type CNAME struct {
	Hdr    RRHeader
	Target string
}

// Header implements RR.
func (r *CNAME) Header() *RRHeader { return &r.Hdr }

// String implements RR.
func (r *CNAME) String() string { return headerString(&r.Hdr) + "\t" + r.Target }

// Clone implements RR.
func (r *CNAME) Clone() RR { c := *r; return &c }

func (r *CNAME) packData(b []byte, c *compressor) ([]byte, error) {
	return packName(b, r.Target, c)
}

func (r *CNAME) unpackData(msg []byte, off, rdlen int) error {
	target, end, err := unpackName(msg, off)
	if err != nil {
		return err
	}
	if end != off+rdlen {
		return ErrBadRdata
	}
	r.Target = target
	return nil
}

// NS is a name-server delegation record.
type NS struct {
	Hdr RRHeader
	NS  string
}

// Header implements RR.
func (r *NS) Header() *RRHeader { return &r.Hdr }

// String implements RR.
func (r *NS) String() string { return headerString(&r.Hdr) + "\t" + r.NS }

// Clone implements RR.
func (r *NS) Clone() RR { c := *r; return &c }

func (r *NS) packData(b []byte, c *compressor) ([]byte, error) {
	return packName(b, r.NS, c)
}

func (r *NS) unpackData(msg []byte, off, rdlen int) error {
	ns, end, err := unpackName(msg, off)
	if err != nil {
		return err
	}
	if end != off+rdlen {
		return ErrBadRdata
	}
	r.NS = ns
	return nil
}

// PTR is a pointer record (reverse lookups).
type PTR struct {
	Hdr RRHeader
	PTR string
}

// Header implements RR.
func (r *PTR) Header() *RRHeader { return &r.Hdr }

// String implements RR.
func (r *PTR) String() string { return headerString(&r.Hdr) + "\t" + r.PTR }

// Clone implements RR.
func (r *PTR) Clone() RR { c := *r; return &c }

func (r *PTR) packData(b []byte, c *compressor) ([]byte, error) {
	return packName(b, r.PTR, c)
}

func (r *PTR) unpackData(msg []byte, off, rdlen int) error {
	p, end, err := unpackName(msg, off)
	if err != nil {
		return err
	}
	if end != off+rdlen {
		return ErrBadRdata
	}
	r.PTR = p
	return nil
}

// SOA is a start-of-authority record.
type SOA struct {
	Hdr     RRHeader
	NS      string
	Mbox    string
	Serial  uint32
	Refresh uint32
	Retry   uint32
	Expire  uint32
	MinTTL  uint32 // negative-caching TTL (RFC 2308)
}

// Header implements RR.
func (r *SOA) Header() *RRHeader { return &r.Hdr }

// String implements RR.
func (r *SOA) String() string {
	return fmt.Sprintf("%s\t%s %s %d %d %d %d %d", headerString(&r.Hdr),
		r.NS, r.Mbox, r.Serial, r.Refresh, r.Retry, r.Expire, r.MinTTL)
}

// Clone implements RR.
func (r *SOA) Clone() RR { c := *r; return &c }

func (r *SOA) packData(b []byte, c *compressor) ([]byte, error) {
	var err error
	if b, err = packName(b, r.NS, c); err != nil {
		return nil, err
	}
	if b, err = packName(b, r.Mbox, c); err != nil {
		return nil, err
	}
	b = binary.BigEndian.AppendUint32(b, r.Serial)
	b = binary.BigEndian.AppendUint32(b, r.Refresh)
	b = binary.BigEndian.AppendUint32(b, r.Retry)
	b = binary.BigEndian.AppendUint32(b, r.Expire)
	b = binary.BigEndian.AppendUint32(b, r.MinTTL)
	return b, nil
}

func (r *SOA) unpackData(msg []byte, off, rdlen int) error {
	end := off + rdlen
	var err error
	if r.NS, off, err = unpackName(msg, off); err != nil {
		return err
	}
	if r.Mbox, off, err = unpackName(msg, off); err != nil {
		return err
	}
	if off+20 != end {
		return ErrBadRdata
	}
	r.Serial = binary.BigEndian.Uint32(msg[off:])
	r.Refresh = binary.BigEndian.Uint32(msg[off+4:])
	r.Retry = binary.BigEndian.Uint32(msg[off+8:])
	r.Expire = binary.BigEndian.Uint32(msg[off+12:])
	r.MinTTL = binary.BigEndian.Uint32(msg[off+16:])
	return nil
}

// MX is a mail-exchanger record.
type MX struct {
	Hdr        RRHeader
	Preference uint16
	MX         string
}

// Header implements RR.
func (r *MX) Header() *RRHeader { return &r.Hdr }

// String implements RR.
func (r *MX) String() string {
	return fmt.Sprintf("%s\t%d %s", headerString(&r.Hdr), r.Preference, r.MX)
}

// Clone implements RR.
func (r *MX) Clone() RR { c := *r; return &c }

func (r *MX) packData(b []byte, c *compressor) ([]byte, error) {
	b = binary.BigEndian.AppendUint16(b, r.Preference)
	return packName(b, r.MX, c)
}

func (r *MX) unpackData(msg []byte, off, rdlen int) error {
	if rdlen < 3 {
		return ErrBadRdata
	}
	r.Preference = binary.BigEndian.Uint16(msg[off:])
	mx, end, err := unpackName(msg, off+2)
	if err != nil {
		return err
	}
	if end != off+rdlen {
		return ErrBadRdata
	}
	r.MX = mx
	return nil
}

// TXT is a text record; each string is at most 255 octets on the wire.
type TXT struct {
	Hdr RRHeader
	Txt []string
}

// Header implements RR.
func (r *TXT) Header() *RRHeader { return &r.Hdr }

// String implements RR.
func (r *TXT) String() string {
	parts := make([]string, len(r.Txt))
	for i, s := range r.Txt {
		parts[i] = fmt.Sprintf("%q", s)
	}
	return headerString(&r.Hdr) + "\t" + strings.Join(parts, " ")
}

// Clone implements RR.
func (r *TXT) Clone() RR {
	c := *r
	c.Txt = append([]string(nil), r.Txt...)
	return &c
}

func (r *TXT) packData(b []byte, _ *compressor) ([]byte, error) {
	if len(r.Txt) == 0 {
		return append(b, 0), nil // a TXT record needs at least one string
	}
	for _, s := range r.Txt {
		if len(s) > 255 {
			return nil, fmt.Errorf("%w: TXT string exceeds 255 octets", ErrBadRdata)
		}
		b = append(b, byte(len(s)))
		b = append(b, s...)
	}
	return b, nil
}

func (r *TXT) unpackData(msg []byte, off, rdlen int) error {
	end := off + rdlen
	r.Txt = nil
	for off < end {
		n := int(msg[off])
		off++
		if off+n > end {
			return ErrBadRdata
		}
		r.Txt = append(r.Txt, string(msg[off:off+n]))
		off += n
	}
	return nil
}

// SRV is a service-location record (RFC 2782). The target name is
// never compressed, per the RFC.
type SRV struct {
	Hdr      RRHeader
	Priority uint16
	Weight   uint16
	Port     uint16
	Target   string
}

// Header implements RR.
func (r *SRV) Header() *RRHeader { return &r.Hdr }

// String implements RR.
func (r *SRV) String() string {
	return fmt.Sprintf("%s\t%d %d %d %s", headerString(&r.Hdr),
		r.Priority, r.Weight, r.Port, r.Target)
}

// Clone implements RR.
func (r *SRV) Clone() RR { c := *r; return &c }

func (r *SRV) packData(b []byte, _ *compressor) ([]byte, error) {
	b = binary.BigEndian.AppendUint16(b, r.Priority)
	b = binary.BigEndian.AppendUint16(b, r.Weight)
	b = binary.BigEndian.AppendUint16(b, r.Port)
	return packName(b, r.Target, nil)
}

func (r *SRV) unpackData(msg []byte, off, rdlen int) error {
	if rdlen < 7 {
		return ErrBadRdata
	}
	r.Priority = binary.BigEndian.Uint16(msg[off:])
	r.Weight = binary.BigEndian.Uint16(msg[off+2:])
	r.Port = binary.BigEndian.Uint16(msg[off+4:])
	target, end, err := unpackName(msg, off+6)
	if err != nil {
		return err
	}
	if end != off+rdlen {
		return ErrBadRdata
	}
	r.Target = target
	return nil
}

// Generic carries the rdata of any record type this package does not
// model, preserving it byte for byte (RFC 3597).
type Generic struct {
	Hdr  RRHeader
	Data []byte
}

// Header implements RR.
func (r *Generic) Header() *RRHeader { return &r.Hdr }

// String implements RR.
func (r *Generic) String() string {
	return fmt.Sprintf("%s\t\\# %d %x", headerString(&r.Hdr), len(r.Data), r.Data)
}

// Clone implements RR.
func (r *Generic) Clone() RR {
	c := *r
	c.Data = append([]byte(nil), r.Data...)
	return &c
}

func (r *Generic) packData(b []byte, _ *compressor) ([]byte, error) {
	return append(b, r.Data...), nil
}

func (r *Generic) unpackData(msg []byte, off, rdlen int) error {
	r.Data = append([]byte(nil), msg[off:off+rdlen]...)
	return nil
}
