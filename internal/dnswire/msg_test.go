package dnswire

import (
	"bytes"
	"errors"
	"net/netip"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func mustAddr(t *testing.T, s string) netip.Addr {
	t.Helper()
	a, err := netip.ParseAddr(s)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func sampleMessage(t *testing.T) *Message {
	m := new(Message)
	m.ID = 0xBEEF
	m.SetQuestion("video.demo1.mycdn.ciab.test.", TypeA)
	m.ID = 0xBEEF
	m.Response = true
	m.Authoritative = true
	m.RecursionAvailable = true
	m.Answers = []RR{
		&CNAME{
			Hdr:    RRHeader{Name: "video.demo1.mycdn.ciab.test.", Type: TypeCNAME, Class: ClassINET, TTL: 300},
			Target: "edge.mycdn.ciab.test.",
		},
		&A{
			Hdr:  RRHeader{Name: "edge.mycdn.ciab.test.", Type: TypeA, Class: ClassINET, TTL: 60},
			Addr: mustAddr(t, "10.96.0.10"),
		},
	}
	m.Authorities = []RR{
		&NS{
			Hdr: RRHeader{Name: "mycdn.ciab.test.", Type: TypeNS, Class: ClassINET, TTL: 3600},
			NS:  "cdns.mycdn.ciab.test.",
		},
	}
	m.Additionals = []RR{
		&AAAA{
			Hdr:  RRHeader{Name: "cdns.mycdn.ciab.test.", Type: TypeAAAA, Class: ClassINET, TTL: 3600},
			Addr: mustAddr(t, "fd00::10"),
		},
	}
	return m
}

func TestMessageRoundTrip(t *testing.T) {
	m := sampleMessage(t)
	wire, err := m.Pack()
	if err != nil {
		t.Fatalf("Pack: %v", err)
	}
	var got Message
	if err := got.Unpack(wire); err != nil {
		t.Fatalf("Unpack: %v", err)
	}
	if !reflect.DeepEqual(&got, m) {
		t.Errorf("round trip mismatch:\ngot  %+v\nwant %+v", &got, m)
	}
}

func TestMessageCompressionShrinksWire(t *testing.T) {
	m := sampleMessage(t)
	wire, err := m.Pack()
	if err != nil {
		t.Fatal(err)
	}
	// Rough uncompressed size: sum of all names fully expanded.
	uncompressed := 12
	addName := func(n string) { uncompressed += len(n) + 1 }
	addName(m.Questions[0].Name)
	uncompressed += 4
	for _, rr := range append(append(append([]RR{}, m.Answers...), m.Authorities...), m.Additionals...) {
		addName(rr.Header().Name)
		uncompressed += 10 + 20 // header + generous rdata estimate
	}
	if len(wire) >= uncompressed {
		t.Errorf("compressed message %d bytes, uncompressed estimate %d", len(wire), uncompressed)
	}
}

func TestSetQuestionAndReply(t *testing.T) {
	q := new(Message)
	q.ID = 42
	q.SetQuestion("a0.muscache.com", TypeA)
	if q.ID != 42 {
		t.Error("SetQuestion must preserve ID")
	}
	if !q.RecursionDesired {
		t.Error("SetQuestion must set RD")
	}
	if q.Question().Name != "a0.muscache.com." {
		t.Errorf("question name = %q", q.Question().Name)
	}
	r := new(Message)
	r.SetReply(q)
	if r.ID != 42 || !r.Response || !r.RecursionDesired {
		t.Errorf("SetReply header = %+v", r)
	}
	if r.Question() != q.Question() {
		t.Error("SetReply must copy the question")
	}
	e := new(Message)
	e.SetRcode(q, RcodeNameError)
	if e.Rcode != RcodeNameError {
		t.Errorf("SetRcode = %v", e.Rcode)
	}
}

func TestUnpackErrors(t *testing.T) {
	var m Message
	if err := m.Unpack([]byte{1, 2, 3}); !errors.Is(err, ErrShortMessage) {
		t.Errorf("short message error = %v", err)
	}
	good, err := sampleMessage(t).Pack()
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Unpack(append(good, 0x00)); !errors.Is(err, ErrTrailingGarbage) {
		t.Errorf("trailing garbage error = %v", err)
	}
	// Header claiming absurd record counts must fail fast, not OOM.
	evil := make([]byte, 12)
	evil[4], evil[5] = 0xFF, 0xFF
	if err := m.Unpack(evil); !errors.Is(err, ErrTooManyRecords) {
		t.Errorf("huge count error = %v", err)
	}
}

func TestUnpackNeverPanicsProperty(t *testing.T) {
	f := func(data []byte) bool {
		var m Message
		_ = m.Unpack(data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

func TestPackUnpackRoundTripProperty(t *testing.T) {
	// Construct semi-random but well-formed messages and verify the
	// pack→unpack→pack fixed point on the wire bytes.
	f := func(id uint16, ttl uint32, nA, nC uint8, v4 [4]byte) bool {
		m := new(Message)
		m.ID = id
		m.SetQuestion("stress.example.org.", TypeA)
		m.ID = id
		m.Response = true
		for i := 0; i < int(nA%8); i++ {
			m.Answers = append(m.Answers, &A{
				Hdr:  RRHeader{Name: "stress.example.org.", Type: TypeA, Class: ClassINET, TTL: ttl},
				Addr: netip.AddrFrom4(v4),
			})
		}
		for i := 0; i < int(nC%4); i++ {
			m.Answers = append(m.Answers, &CNAME{
				Hdr:    RRHeader{Name: "stress.example.org.", Type: TypeCNAME, Class: ClassINET, TTL: ttl},
				Target: "target.example.org.",
			})
		}
		w1, err := m.Pack()
		if err != nil {
			return false
		}
		var u Message
		if err := u.Unpack(w1); err != nil {
			return false
		}
		w2, err := u.Pack()
		if err != nil {
			return false
		}
		return bytes.Equal(w1, w2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestAllRRTypesRoundTrip(t *testing.T) {
	rrs := []RR{
		&A{Hdr: RRHeader{Name: "a.test.", Type: TypeA, Class: ClassINET, TTL: 1}, Addr: mustAddr(t, "192.0.2.1")},
		&AAAA{Hdr: RRHeader{Name: "aaaa.test.", Type: TypeAAAA, Class: ClassINET, TTL: 2}, Addr: mustAddr(t, "2001:db8::1")},
		&CNAME{Hdr: RRHeader{Name: "c.test.", Type: TypeCNAME, Class: ClassINET, TTL: 3}, Target: "t.test."},
		&NS{Hdr: RRHeader{Name: "ns.test.", Type: TypeNS, Class: ClassINET, TTL: 4}, NS: "ns1.test."},
		&SOA{
			Hdr: RRHeader{Name: "soa.test.", Type: TypeSOA, Class: ClassINET, TTL: 5},
			NS:  "ns1.test.", Mbox: "admin.test.",
			Serial: 2020110401, Refresh: 7200, Retry: 3600, Expire: 1209600, MinTTL: 300,
		},
		&PTR{Hdr: RRHeader{Name: "1.2.0.192.in-addr.arpa.", Type: TypePTR, Class: ClassINET, TTL: 6}, PTR: "a.test."},
		&MX{Hdr: RRHeader{Name: "mx.test.", Type: TypeMX, Class: ClassINET, TTL: 7}, Preference: 10, MX: "mail.test."},
		&TXT{Hdr: RRHeader{Name: "txt.test.", Type: TypeTXT, Class: ClassINET, TTL: 8}, Txt: []string{"hello", "world"}},
		&SRV{Hdr: RRHeader{Name: "_dns._udp.test.", Type: TypeSRV, Class: ClassINET, TTL: 9}, Priority: 1, Weight: 2, Port: 53, Target: "srv.test."},
		&Generic{Hdr: RRHeader{Name: "gen.test.", Type: Type(4242), Class: ClassINET, TTL: 10}, Data: []byte{1, 2, 3, 4}},
	}
	for _, want := range rrs {
		m := new(Message)
		m.SetQuestion(want.Header().Name, want.Header().Type)
		m.Response = true
		m.Answers = []RR{want}
		wire, err := m.Pack()
		if err != nil {
			t.Fatalf("%T Pack: %v", want, err)
		}
		var got Message
		if err := got.Unpack(wire); err != nil {
			t.Fatalf("%T Unpack: %v", want, err)
		}
		if len(got.Answers) != 1 || !reflect.DeepEqual(got.Answers[0], want) {
			t.Errorf("%T round trip:\ngot  %#v\nwant %#v", want, got.Answers[0], want)
		}
	}
}

func TestRRClone(t *testing.T) {
	orig := &TXT{Hdr: RRHeader{Name: "t.test.", Type: TypeTXT, Class: ClassINET, TTL: 10}, Txt: []string{"a"}}
	c := orig.Clone().(*TXT)
	c.Txt[0] = "mutated"
	c.Hdr.TTL = 99
	if orig.Txt[0] != "a" || orig.Hdr.TTL != 10 {
		t.Error("Clone shares state with original")
	}
}

func TestMessageClone(t *testing.T) {
	m := sampleMessage(t)
	c := m.Clone()
	c.Answers[1].(*A).Addr = netip.MustParseAddr("203.0.113.9")
	if m.Answers[1].(*A).Addr.String() != "10.96.0.10" {
		t.Error("Message.Clone shares answer records")
	}
}

func TestTruncateTo(t *testing.T) {
	m := new(Message)
	m.SetQuestion("big.test.", TypeA)
	m.Response = true
	for i := 0; i < 100; i++ {
		m.Answers = append(m.Answers, &A{
			Hdr:  RRHeader{Name: "big.test.", Type: TypeA, Class: ClassINET, TTL: 60},
			Addr: netip.AddrFrom4([4]byte{10, 0, byte(i >> 8), byte(i)}),
		})
	}
	m.SetEDNS(1232)
	if !m.TruncateTo(MaxUDPSize) {
		t.Fatal("TruncateTo reported no truncation")
	}
	if !m.Truncated {
		t.Error("TC bit not set")
	}
	wire, err := m.Pack()
	if err != nil {
		t.Fatal(err)
	}
	if len(wire) > MaxUDPSize {
		t.Errorf("truncated message is %d bytes", len(wire))
	}
	if _, ok := m.OPT(); !ok {
		t.Error("OPT record dropped during truncation")
	}
}

func TestTruncateToNoOpWhenSmall(t *testing.T) {
	m := new(Message)
	m.SetQuestion("small.test.", TypeA)
	if m.TruncateTo(MaxUDPSize) {
		t.Error("TruncateTo truncated a small message")
	}
	if m.Truncated {
		t.Error("TC bit set on small message")
	}
}

func TestExtendedRcode(t *testing.T) {
	m := new(Message)
	m.SetQuestion("x.test.", TypeA)
	m.Response = true
	m.Rcode = RcodeBadVers // 16: needs extended rcode
	m.SetEDNS(1232)
	wire, err := m.Pack()
	if err != nil {
		t.Fatalf("Pack with extended rcode: %v", err)
	}
	var got Message
	if err := got.Unpack(wire); err != nil {
		t.Fatal(err)
	}
	if got.Rcode != RcodeBadVers {
		t.Errorf("extended rcode round trip = %v, want BADVERS", got.Rcode)
	}
}

func TestExtendedRcodeWithoutOPTFails(t *testing.T) {
	m := new(Message)
	m.SetQuestion("x.test.", TypeA)
	m.Rcode = RcodeBadVers
	if _, err := m.Pack(); err == nil {
		t.Error("Pack succeeded with extended rcode but no OPT")
	}
}

func TestStringRendering(t *testing.T) {
	s := sampleMessage(t).String()
	for _, want := range []string{"NOERROR", "QUESTION SECTION", "ANSWER SECTION", "edge.mycdn.ciab.test.", "10.96.0.10"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q:\n%s", want, s)
		}
	}
}

func TestTypeClassRcodeStrings(t *testing.T) {
	if TypeA.String() != "A" || TypeOPT.String() != "OPT" {
		t.Error("Type.String known types")
	}
	if Type(9999).String() != "TYPE9999" {
		t.Errorf("Type.String unknown = %q", Type(9999).String())
	}
	if ClassINET.String() != "IN" || Class(77).String() != "CLASS77" {
		t.Error("Class.String")
	}
	if RcodeNameError.String() != "NXDOMAIN" || Rcode(200).String() != "RCODE200" {
		t.Error("Rcode.String")
	}
	if OpcodeQuery.String() != "QUERY" || Opcode(7).String() != "OPCODE7" {
		t.Error("Opcode.String")
	}
}

func TestAppendPackRequiresEmptyBuffer(t *testing.T) {
	m := new(Message)
	m.SetQuestion("x.test.", TypeA)
	if _, err := m.AppendPack([]byte{1}); err == nil {
		t.Error("AppendPack accepted a non-empty buffer")
	}
	buf := make([]byte, 0, 512)
	out, err := m.AppendPack(buf)
	if err != nil {
		t.Fatal(err)
	}
	if cap(out) != cap(buf) {
		t.Log("note: buffer grew; acceptable but unexpected for a small query")
	}
}
