package lpm

import (
	"encoding/binary"
	"net/netip"
	"testing"
)

// FuzzLPMLookup differentially tests the interval table against the
// naive linear-scan reference: the fuzzer's bytes are decoded into a
// route set plus probe addresses, both implementations are loaded with
// the same routes, and every probe — the fuzz-chosen addresses plus
// each route's own start and end boundary — must agree.
func FuzzLPMLookup(f *testing.F) {
	f.Add([]byte{0x00, 10, 0, 0, 0, 16, 1, 0x00, 10, 1, 0, 0, 24, 2})
	f.Add([]byte{0x01, 0x20, 0x01, 0x0d, 0xb8, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 32, 3})
	f.Add([]byte{0x00, 0, 0, 0, 0, 0, 9}) // 0.0.0.0/0
	f.Fuzz(func(t *testing.T, data []byte) {
		b := NewBuilder()
		ref := &Reference{}
		var prefixes []netip.Prefix
		// Decode records: tag byte selects family; v4 records are
		// addr(4)+bits(1)+pop(1), v6 records addr(16)+bits(1)+pop(1).
		// Cap the route count so a large input can't stall the fuzzer.
		for len(data) > 0 && len(prefixes) < 64 {
			tag := data[0]
			data = data[1:]
			var addr netip.Addr
			var maxBits int
			if tag&1 == 0 {
				if len(data) < 6 {
					break
				}
				var a [4]byte
				copy(a[:], data)
				addr, maxBits = netip.AddrFrom4(a), 32
				data = data[4:]
			} else {
				if len(data) < 18 {
					break
				}
				var a [16]byte
				copy(a[:], data)
				addr, maxBits = netip.AddrFrom16(a), 128
				data = data[16:]
			}
			bits := int(data[0]) % (maxBits + 1)
			pop := PoP(data[1])
			data = data[2:]
			p, err := addr.Prefix(bits)
			if err != nil {
				continue
			}
			if err := b.Add(p, pop); err != nil {
				t.Fatalf("Builder.Add(%v): %v", p, err)
			}
			if err := ref.Add(p, pop); err != nil {
				t.Fatalf("Reference.Add(%v): %v", p, err)
			}
			prefixes = append(prefixes, p)
		}
		tab := b.Build()

		check := func(addr netip.Addr) {
			gp, gb, gok := tab.Lookup(addr)
			wp, wb, wok := ref.Lookup(addr)
			if gp != wp || gb != wb || gok != wok {
				t.Fatalf("Lookup(%s) = (%d,%d,%v), reference (%d,%d,%v)",
					addr, gp, gb, gok, wp, wb, wok)
			}
		}
		// Probe every route's first and last covered address — the
		// interval boundaries, where an off-by-one would live.
		for _, p := range prefixes {
			check(p.Masked().Addr())
			check(lastAddr(p))
		}
		// And any leftover fuzz bytes as raw probe addresses.
		for len(data) >= 4 {
			if len(data) >= 16 {
				var a [16]byte
				copy(a[:], data)
				check(netip.AddrFrom16(a))
			}
			var a [4]byte
			copy(a[:], data)
			check(netip.AddrFrom4(a))
			data = data[4:]
		}
	})
}

// lastAddr returns the highest address covered by p.
func lastAddr(p netip.Prefix) netip.Addr {
	addr := p.Masked().Addr()
	if addr.Is4() {
		a4 := addr.As4()
		v := binary.BigEndian.Uint32(a4[:])
		if p.Bits() < 32 {
			v |= ^uint32(0) >> p.Bits()
		}
		binary.BigEndian.PutUint32(a4[:], v)
		return netip.AddrFrom4(a4)
	}
	a16 := addr.As16()
	for i := p.Bits(); i < 128; i++ {
		a16[i/8] |= 1 << (7 - i%8)
	}
	return netip.AddrFrom16(a16)
}
