package lpm

import (
	"fmt"
	"net/netip"
)

// Reference is the naive linear-scan longest-prefix-match used to
// differentially test Table: same Add normalization, same tie-break
// (the last-added of two identical prefixes wins), O(n) per lookup.
type Reference struct {
	routes []refRoute
}

type refRoute struct {
	prefix netip.Prefix
	pop    PoP
}

// Add registers prefix → pop, with the same 4-in-6 normalization as
// Builder.Add.
func (r *Reference) Add(prefix netip.Prefix, pop PoP) error {
	if !prefix.IsValid() {
		return fmt.Errorf("lpm: invalid prefix %v", prefix)
	}
	prefix = prefix.Masked()
	addr := prefix.Addr()
	bits := prefix.Bits()
	if addr.Is4In6() && bits >= 96 {
		var err error
		if prefix, err = addr.Unmap().Prefix(bits - 96); err != nil {
			return err
		}
	}
	r.routes = append(r.routes, refRoute{prefix: prefix, pop: pop})
	return nil
}

// Lookup scans every route and returns the longest match. Iteration is
// in insertion order with >= comparison, so of two identical prefixes
// the later-added wins — matching Table's duplicate rule.
func (r *Reference) Lookup(addr netip.Addr) (PoP, int, bool) {
	if !addr.IsValid() {
		return 0, 0, false
	}
	addr = addr.Unmap()
	best := -1
	var pop PoP
	for _, rt := range r.routes {
		if rt.prefix.Contains(addr) && rt.prefix.Bits() >= best {
			best = rt.prefix.Bits()
			pop = rt.pop
		}
	}
	if best < 0 {
		return 0, 0, false
	}
	return pop, best, true
}
