package lpm

import (
	"math/rand"
	"net/netip"
	"strings"
	"testing"
)

func mustAdd(t *testing.T, b *Builder, prefix string, pop PoP) {
	t.Helper()
	if err := b.Add(netip.MustParsePrefix(prefix), pop); err != nil {
		t.Fatalf("Add(%s): %v", prefix, err)
	}
}

func checkLookup(t *testing.T, tab *Table, addr string, wantPop PoP, wantBits int, wantOK bool) {
	t.Helper()
	pop, bits, ok := tab.Lookup(netip.MustParseAddr(addr))
	if ok != wantOK || (ok && (pop != wantPop || bits != wantBits)) {
		t.Errorf("Lookup(%s) = (%d, %d, %v), want (%d, %d, %v)",
			addr, pop, bits, ok, wantPop, wantBits, wantOK)
	}
}

func TestLookupBasic(t *testing.T) {
	b := NewBuilder()
	mustAdd(t, b, "10.0.0.0/8", 1)
	mustAdd(t, b, "10.1.0.0/16", 2)
	mustAdd(t, b, "10.1.7.0/24", 3)
	mustAdd(t, b, "192.0.2.0/24", 4)
	tab := b.Build()

	checkLookup(t, tab, "10.0.0.1", 1, 8, true)
	checkLookup(t, tab, "10.1.0.1", 2, 16, true)
	checkLookup(t, tab, "10.1.7.200", 3, 24, true)
	checkLookup(t, tab, "10.1.8.0", 2, 16, true) // just past the /24
	checkLookup(t, tab, "10.2.0.0", 1, 8, true)  // just past the /16
	checkLookup(t, tab, "11.0.0.0", 0, 0, false) // just past the /8
	checkLookup(t, tab, "9.255.255.255", 0, 0, false)
	checkLookup(t, tab, "192.0.2.0", 4, 24, true)
	checkLookup(t, tab, "192.0.2.255", 4, 24, true)
	checkLookup(t, tab, "192.0.3.0", 0, 0, false)
}

func TestLookupBoundaries(t *testing.T) {
	b := NewBuilder()
	mustAdd(t, b, "0.0.0.0/8", 1)
	mustAdd(t, b, "255.0.0.0/8", 2)
	mustAdd(t, b, "255.255.255.255/32", 3)
	tab := b.Build()
	checkLookup(t, tab, "0.0.0.0", 1, 8, true)
	checkLookup(t, tab, "0.255.255.255", 1, 8, true)
	checkLookup(t, tab, "1.0.0.0", 0, 0, false)
	checkLookup(t, tab, "255.0.0.0", 2, 8, true)
	checkLookup(t, tab, "255.255.255.254", 2, 8, true)
	checkLookup(t, tab, "255.255.255.255", 3, 32, true)
}

// TestHostRoutes pins /32 and /128 host routes: 128 does not fit in
// an int8, so a too-narrow bits column turns every v6 host route into
// a gap span (found by FuzzLPMLookup, testdata/a741ec62e5b666ce).
func TestHostRoutes(t *testing.T) {
	b := NewBuilder()
	mustAdd(t, b, "10.1.2.3/32", 7)
	mustAdd(t, b, "3030:3030:3030:3030:3030:3030:3030:3030/128", 48)
	mustAdd(t, b, "2001:db8::/32", 9)
	mustAdd(t, b, "2001:db8::1/128", 10)
	tab := b.Build()
	checkLookup(t, tab, "10.1.2.3", 7, 32, true)
	checkLookup(t, tab, "10.1.2.2", 0, 0, false)
	checkLookup(t, tab, "10.1.2.4", 0, 0, false)
	checkLookup(t, tab, "3030:3030:3030:3030:3030:3030:3030:3030", 48, 128, true)
	checkLookup(t, tab, "3030:3030:3030:3030:3030:3030:3030:3031", 0, 0, false)
	checkLookup(t, tab, "2001:db8::1", 10, 128, true)
	checkLookup(t, tab, "2001:db8::2", 9, 32, true)
}

func TestLookupDefaultRoute(t *testing.T) {
	b := NewBuilder()
	mustAdd(t, b, "0.0.0.0/0", 9)
	mustAdd(t, b, "10.0.0.0/8", 1)
	tab := b.Build()
	checkLookup(t, tab, "9.1.2.3", 9, 0, true)
	checkLookup(t, tab, "10.1.2.3", 1, 8, true)
	checkLookup(t, tab, "255.255.255.255", 9, 0, true)
}

func TestLookupV6(t *testing.T) {
	b := NewBuilder()
	mustAdd(t, b, "2001:db8::/32", 1)
	mustAdd(t, b, "2001:db8:7::/48", 2)
	mustAdd(t, b, "::/0", 9)
	tab := b.Build()
	checkLookup(t, tab, "2001:db8::1", 1, 32, true)
	checkLookup(t, tab, "2001:db8:7::1", 2, 48, true)
	checkLookup(t, tab, "2001:db8:8::", 1, 32, true)
	checkLookup(t, tab, "2001:db9::", 9, 0, true)
	checkLookup(t, tab, "ffff:ffff:ffff:ffff:ffff:ffff:ffff:ffff", 9, 0, true)
	checkLookup(t, tab, "::", 9, 0, true)
}

// A v6-mapped v4 prefix must land in the IPv4 table and answer both
// plain v4 and 4-in-6 lookups; a 4-in-6 lookup must hit v4 routes.
func TestFourInSixNormalization(t *testing.T) {
	b := NewBuilder()
	mustAdd(t, b, "::ffff:10.1.0.0/112", 5) // == 10.1.0.0/16
	mustAdd(t, b, "192.0.2.0/24", 6)
	tab := b.Build()
	if tab.RowsV4() != 2 || tab.RowsV6() != 0 {
		t.Fatalf("rows v4=%d v6=%d, want 2/0", tab.RowsV4(), tab.RowsV6())
	}
	checkLookup(t, tab, "10.1.2.3", 5, 16, true)
	checkLookup(t, tab, "::ffff:10.1.2.3", 5, 16, true)
	checkLookup(t, tab, "::ffff:192.0.2.9", 6, 24, true)
}

func TestDuplicatePrefixLastWins(t *testing.T) {
	b := NewBuilder()
	mustAdd(t, b, "10.0.0.0/8", 1)
	mustAdd(t, b, "10.0.0.0/8", 7)
	tab := b.Build()
	checkLookup(t, tab, "10.9.9.9", 7, 8, true)
}

func TestEmptyTable(t *testing.T) {
	tab := NewBuilder().Build()
	checkLookup(t, tab, "10.0.0.1", 0, 0, false)
	checkLookup(t, tab, "2001:db8::1", 0, 0, false)
	if tab.Rows() != 0 || tab.Spans() != 0 {
		t.Errorf("empty table: rows=%d spans=%d", tab.Rows(), tab.Spans())
	}
	var invalid netip.Addr
	if _, _, ok := tab.Lookup(invalid); ok {
		t.Error("invalid addr matched")
	}
}

func TestAddInvalidPrefix(t *testing.T) {
	var p netip.Prefix
	if err := NewBuilder().Add(p, 0); err == nil {
		t.Error("invalid prefix accepted")
	}
	var ref Reference
	if err := ref.Add(p, 0); err == nil {
		t.Error("reference accepted invalid prefix")
	}
}

// randomTables builds a Table and Reference from the same random route
// set, for differential comparison.
func randomTables(rng *rand.Rand, n int) (*Table, *Reference) {
	b := NewBuilder()
	ref := &Reference{}
	for i := 0; i < n; i++ {
		var p netip.Prefix
		if rng.Intn(4) == 0 { // quarter v6
			var a [16]byte
			rng.Read(a[:])
			a[0] = 0x20 // keep out of the 4-in-6 space
			p, _ = netip.AddrFrom16(a).Prefix(rng.Intn(129))
		} else {
			var a [4]byte
			rng.Read(a[:])
			p, _ = netip.AddrFrom4(a).Prefix(rng.Intn(33))
		}
		pop := PoP(rng.Intn(64))
		b.Add(p, pop)
		ref.Add(p, pop)
	}
	return b.Build(), ref
}

func TestDifferentialRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tab, ref := randomTables(rng, 500)
	for i := 0; i < 5000; i++ {
		var addr netip.Addr
		if i%4 == 0 {
			var a [16]byte
			rng.Read(a[:])
			a[0] = 0x20
			addr = netip.AddrFrom16(a)
		} else {
			var a [4]byte
			rng.Read(a[:])
			addr = netip.AddrFrom4(a)
		}
		gp, gb, gok := tab.Lookup(addr)
		wp, wb, wok := ref.Lookup(addr)
		if gp != wp || gb != wb || gok != wok {
			t.Fatalf("Lookup(%s) = (%d,%d,%v), reference (%d,%d,%v)",
				addr, gp, gb, gok, wp, wb, wok)
		}
	}
}

func TestParseRoutes(t *testing.T) {
	const text = `
# subnet            PoP
10.1.0.0/16         1
10.1.7.0/24         2     # more specific override
2001:db8::/32       3

`
	tab, err := ParseRoutes(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if tab.Rows() != 3 {
		t.Fatalf("rows = %d, want 3", tab.Rows())
	}
	checkLookup(t, tab, "10.1.7.9", 2, 24, true)
	checkLookup(t, tab, "10.1.8.9", 1, 16, true)
	checkLookup(t, tab, "2001:db8::42", 3, 32, true)
}

func TestParseRoutesErrors(t *testing.T) {
	for _, bad := range []string{
		"10.0.0.0/8",            // missing pop
		"10.0.0.0/8 1 extra",    // too many fields
		"not-a-prefix 1",        // bad prefix
		"10.0.0.0/8 notanum",    // bad pop
		"10.0.0.0/8 4294967296", // pop overflows uint32
	} {
		if _, err := ParseRoutes(strings.NewReader(bad)); err == nil {
			t.Errorf("ParseRoutes(%q) accepted", bad)
		}
	}
}

func TestLookupAllocsAndTableScale(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	tab, _ := randomTables(rng, 2000)
	addr := netip.MustParseAddr("10.1.2.3")
	if n := testing.AllocsPerRun(100, func() { tab.Lookup(addr) }); n != 0 {
		t.Errorf("Lookup allocates %v per op", n)
	}
	addr6 := netip.MustParseAddr("2001:db8::1")
	if n := testing.AllocsPerRun(100, func() { tab.Lookup(addr6) }); n != 0 {
		t.Errorf("v6 Lookup allocates %v per op", n)
	}
}
