// Package lpm is a longest-prefix-match table mapping IP prefixes to
// PoP identifiers — the C-DNS routing data plane. A Table is built
// once from up to millions of IPv4/IPv6 rows and then answers
// Lookup(addr) in well under a microsecond with zero allocations.
//
// Layout: binary search over sorted disjoint intervals. The builder
// flattens the (possibly nested) input prefixes into a sorted list of
// non-overlapping address spans, each carrying the PoP and prefix
// length of the most specific route covering it; a lookup is then a
// single branch-light binary search for the greatest span start <= the
// address. Compared to a level-compressed radix trie this trades
// incremental update (we rebuild and atomically swap instead — see
// DESIGN.md "Subnet routing") for a layout that is immutable,
// pointer-free, and sequential in memory: ~10 bytes per IPv4 span in
// three parallel slices, so the search touches at most ~log2(2n) cache
// lines and the whole structure is trivially shareable across
// goroutines without locks.
package lpm

import (
	"fmt"
	"net/netip"
	"sort"
)

// PoP identifies a point of presence (an edge cache site) in the
// routing table. The zero value is a valid PoP ID; absence of a route
// is signalled by Lookup's ok result, not by a sentinel PoP.
type PoP uint32

// u128 is an unsigned 128-bit integer, the key space of IPv6 spans.
type u128 struct{ hi, lo uint64 }

func u128Less(a, b u128) bool {
	return a.hi < b.hi || (a.hi == b.hi && a.lo < b.lo)
}

// inc returns a+1 and whether it did not wrap.
func (a u128) inc() (u128, bool) {
	a.lo++
	if a.lo == 0 {
		a.hi++
		if a.hi == 0 {
			return a, false
		}
	}
	return a, true
}

// row is one input route before flattening.
type row struct {
	start, end u128 // inclusive address range of the prefix
	pop        PoP
	bits       int16
	seq        int // insertion order; later rows win exact duplicates
}

// Builder accumulates routes for a Table. Not safe for concurrent use;
// Build may be called once the rows are in.
type Builder struct {
	v4, v6 []row
	seq    int
}

// NewBuilder returns an empty Builder.
func NewBuilder() *Builder { return &Builder{} }

// Add registers prefix → pop. 4-in-6 prefixes (::ffff:a.b.c.d/n with
// n >= 96) are normalized into the IPv4 table. A prefix added twice
// keeps the last PoP.
func (b *Builder) Add(prefix netip.Prefix, pop PoP) error {
	if !prefix.IsValid() {
		return fmt.Errorf("lpm: invalid prefix %v", prefix)
	}
	prefix = prefix.Masked()
	addr := prefix.Addr()
	pbits := prefix.Bits()
	if addr.Is4In6() && pbits >= 96 {
		addr = addr.Unmap()
		pbits -= 96
	}
	b.seq++
	if addr.Is4() {
		a4 := addr.As4()
		start := uint64(a4[0])<<24 | uint64(a4[1])<<16 | uint64(a4[2])<<8 | uint64(a4[3])
		var host uint64
		if pbits < 32 {
			host = (1 << (32 - pbits)) - 1
		}
		b.v4 = append(b.v4, row{
			start: u128{lo: start},
			end:   u128{lo: start | host},
			pop:   pop,
			bits:  int16(pbits),
			seq:   b.seq,
		})
		return nil
	}
	a16 := addr.As16()
	var start u128
	for i := 0; i < 8; i++ {
		start.hi = start.hi<<8 | uint64(a16[i])
		start.lo = start.lo<<8 | uint64(a16[i+8])
	}
	end := start
	if pbits <= 64 {
		if pbits < 64 {
			end.hi |= ^uint64(0) >> pbits
		}
		end.lo = ^uint64(0)
	} else if pbits < 128 {
		end.lo |= ^uint64(0) >> (pbits - 64)
	}
	b.v6 = append(b.v6, row{start: start, end: end, pop: pop, bits: int16(pbits), seq: b.seq})
	return nil
}

// Len returns the number of routes added so far.
func (b *Builder) Len() int { return len(b.v4) + len(b.v6) }

// Table is the immutable lookup structure. Safe for concurrent reads;
// replace wholesale (e.g. through an atomic.Pointer) to update.
type Table struct {
	// Parallel slices of disjoint spans per family, sorted by start.
	// bits < 0 marks a gap span with no covering route. A sentinel gap
	// at address zero guarantees the binary search always lands on a
	// span, so lookups need no bounds branch.
	v4start []uint32
	v4pop   []PoP
	v4bits  []int16

	v6start []u128
	v6pop   []PoP
	v6bits  []int16

	rows4, rows6 int
}

// Build flattens the accumulated routes into a Table. The Builder may
// be reused afterwards (further Adds affect only later Builds).
func (b *Builder) Build() *Table {
	t := &Table{rows4: len(b.v4), rows6: len(b.v6)}
	max4 := u128{lo: 0xFFFFFFFF}
	max6 := u128{hi: ^uint64(0), lo: ^uint64(0)}
	for _, sp := range flatten(b.v4, max4) {
		t.v4start = append(t.v4start, uint32(sp.start.lo))
		t.v4pop = append(t.v4pop, sp.pop)
		t.v4bits = append(t.v4bits, sp.bits)
	}
	for _, sp := range flatten(b.v6, max6) {
		t.v6start = append(t.v6start, sp.start)
		t.v6pop = append(t.v6pop, sp.pop)
		t.v6bits = append(t.v6bits, sp.bits)
	}
	return t
}

// span is one flattened output interval: it begins at start and runs
// to the next span's start (or the end of the address space).
type span struct {
	start u128
	pop   PoP
	bits  int16 // -1: no route covers this span
}

// flatten turns possibly-nested rows into disjoint spans via a single
// sweep with a parent stack. Rows are sorted so that a parent prefix
// precedes its children (start ascending, then end descending); the
// stack holds the chain of enclosing routes, and each row boundary
// emits a span carrying the innermost route in force. max is the last
// address of the family's space: a route ending there has no successor
// span (incrementing past it would escape the family's key range).
func flatten(rows []row, max u128) []span {
	if len(rows) == 0 {
		return nil
	}
	sorted := make([]row, len(rows))
	copy(sorted, rows)
	sort.Slice(sorted, func(i, j int) bool {
		a, c := sorted[i], sorted[j]
		if a.start != c.start {
			return u128Less(a.start, c.start)
		}
		if a.end != c.end {
			return u128Less(c.end, a.end) // wider (parent) first
		}
		return a.seq < c.seq // duplicates: keep insertion order, last wins below
	})
	// Collapse exact-duplicate prefixes to the last-added row.
	dd := sorted[:0]
	for i, r := range sorted {
		if i+1 < len(sorted) && sorted[i+1].start == r.start && sorted[i+1].end == r.end {
			continue
		}
		dd = append(dd, r)
	}
	sorted = dd

	out := make([]span, 0, 2*len(sorted)+1)
	// emit starts a new span at `at`; it merges spans with equal
	// routing outcome and drops zero-length predecessors.
	emit := func(at u128, pop PoP, b int16) {
		if n := len(out); n > 0 {
			last := &out[n-1]
			if last.start == at {
				last.pop, last.bits = pop, b
				if n > 1 && out[n-2].pop == pop && out[n-2].bits == b {
					out = out[:n-1]
				}
				return
			}
			if last.pop == pop && last.bits == b {
				return
			}
		}
		out = append(out, span{start: at, pop: pop, bits: b})
	}
	emit(u128{}, 0, -1) // sentinel: address space starts unrouted

	var stack []row
	// pop closes the innermost route: control past its end returns to
	// its parent, or to no-route when the stack empties. A route ending
	// at the family's last address has no successor span.
	pop := func() {
		top := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if top.end == max {
			return
		}
		after, _ := top.end.inc()
		if len(stack) > 0 {
			p := stack[len(stack)-1]
			emit(after, p.pop, p.bits)
		} else {
			emit(after, 0, -1)
		}
	}
	for _, r := range sorted {
		for len(stack) > 0 && u128Less(stack[len(stack)-1].end, r.start) {
			pop()
		}
		emit(r.start, r.pop, r.bits)
		stack = append(stack, r)
	}
	for len(stack) > 0 {
		pop()
	}
	return out
}

// Lookup returns the PoP of the most specific route covering addr, the
// matched route's prefix length, and whether any route matched.
// Zero-allocation and safe for concurrent use. 4-in-6 addresses are
// looked up in the IPv4 table.
func (t *Table) Lookup(addr netip.Addr) (PoP, int, bool) {
	if !addr.IsValid() {
		return 0, 0, false
	}
	if addr.Is4() || addr.Is4In6() {
		if len(t.v4start) == 0 {
			return 0, 0, false
		}
		a4 := addr.As4()
		key := uint32(a4[0])<<24 | uint32(a4[1])<<16 | uint32(a4[2])<<8 | uint32(a4[3])
		// Find the greatest i with v4start[i] <= key. The sentinel span
		// at 0 guarantees i >= 0.
		lo, hi := 0, len(t.v4start)
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if t.v4start[mid] <= key {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		i := lo - 1
		if b := t.v4bits[i]; b >= 0 {
			return t.v4pop[i], int(b), true
		}
		return 0, 0, false
	}
	if len(t.v6start) == 0 {
		return 0, 0, false
	}
	a16 := addr.As16()
	var key u128
	for i := 0; i < 8; i++ {
		key.hi = key.hi<<8 | uint64(a16[i])
		key.lo = key.lo<<8 | uint64(a16[i+8])
	}
	lo, hi := 0, len(t.v6start)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		s := t.v6start[mid]
		if s.hi < key.hi || (s.hi == key.hi && s.lo <= key.lo) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	i := lo - 1
	if b := t.v6bits[i]; b >= 0 {
		return t.v6pop[i], int(b), true
	}
	return 0, 0, false
}

// Rows returns the number of routes the table was built from.
func (t *Table) Rows() int { return t.rows4 + t.rows6 }

// RowsV4 returns the number of IPv4 routes loaded.
func (t *Table) RowsV4() int { return t.rows4 }

// RowsV6 returns the number of IPv6 routes loaded.
func (t *Table) RowsV6() int { return t.rows6 }

// Spans returns the number of flattened intervals the table stores —
// the working-set size a lookup binary-searches over.
func (t *Table) Spans() int { return len(t.v4start) + len(t.v6start) }

// String summarizes the table for debugging.
func (t *Table) String() string {
	return fmt.Sprintf("lpm.Table{rows=%d (v4=%d v6=%d) spans=%d}",
		t.Rows(), t.rows4, t.rows6, t.Spans())
}
