package lpm

import (
	"bufio"
	"fmt"
	"io"
	"net/netip"
	"strconv"
	"strings"
)

// ParseRoutes reads a routing table in the dnsd -routes text format:
// one "prefix popID" pair per line, whitespace-separated, with blank
// lines and #-comments (whole-line or trailing) ignored:
//
//	# subnet            PoP
//	10.1.0.0/16         1
//	10.1.7.0/24         2     # more specific override
//	2001:db8::/32       3
//
// It returns the built Table. Errors carry the 1-based line number.
func ParseRoutes(r io.Reader) (*Table, error) {
	b := NewBuilder()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		if i := strings.IndexByte(text, '#'); i >= 0 {
			text = text[:i]
		}
		fields := strings.Fields(text)
		if len(fields) == 0 {
			continue
		}
		if len(fields) != 2 {
			return nil, fmt.Errorf("lpm: line %d: want \"prefix popID\", got %d fields", line, len(fields))
		}
		prefix, err := netip.ParsePrefix(fields[0])
		if err != nil {
			return nil, fmt.Errorf("lpm: line %d: %w", line, err)
		}
		pop, err := strconv.ParseUint(fields[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("lpm: line %d: bad PoP id %q: %w", line, fields[1], err)
		}
		if err := b.Add(prefix, PoP(pop)); err != nil {
			return nil, fmt.Errorf("lpm: line %d: %w", line, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("lpm: reading routes: %w", err)
	}
	return b.Build(), nil
}
