// Package stats provides the summary statistics the paper's figures
// use: means, percentiles, the 8th–92nd percentile trimming of
// Figure 2's bars, and min/max whiskers.
package stats

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Sample is a collection of latency observations.
type Sample struct {
	values []time.Duration
	sorted bool
}

// New returns an empty sample.
func New() *Sample { return &Sample{} }

// FromDurations returns a sample holding a copy of ds, so callers can
// snapshot concurrently updated observation buffers (e.g. the DNS
// server's ServeDNS duration ring) into an independent Sample.
func FromDurations(ds []time.Duration) *Sample {
	return &Sample{values: append([]time.Duration(nil), ds...)}
}

// Add appends an observation.
func (s *Sample) Add(d time.Duration) {
	s.values = append(s.values, d)
	s.sorted = false
}

// Len returns the number of observations.
func (s *Sample) Len() int { return len(s.values) }

// Values returns a copy of the observations. Insertion order is not
// guaranteed once percentile methods have been called (they sort in
// place). The copy is independent of the sample: callers may keep it
// across later Add calls, and Add never mutates a returned slice.
func (s *Sample) Values() []time.Duration {
	return append([]time.Duration(nil), s.values...)
}

func (s *Sample) sort() {
	if !s.sorted {
		sort.Slice(s.values, func(i, j int) bool { return s.values[i] < s.values[j] })
		s.sorted = true
	}
}

// Mean returns the arithmetic mean, or 0 for an empty sample.
func (s *Sample) Mean() time.Duration {
	if len(s.values) == 0 {
		return 0
	}
	var total time.Duration
	for _, v := range s.values {
		total += v
	}
	return total / time.Duration(len(s.values))
}

// Min returns the smallest observation, or 0 for an empty sample.
func (s *Sample) Min() time.Duration {
	if len(s.values) == 0 {
		return 0
	}
	s.sort()
	return s.values[0]
}

// Max returns the largest observation, or 0 for an empty sample.
func (s *Sample) Max() time.Duration {
	if len(s.values) == 0 {
		return 0
	}
	s.sort()
	return s.values[len(s.values)-1]
}

// Percentile returns the p-th percentile (0–100) by nearest-rank with
// linear interpolation between adjacent observations. An empty sample
// or a NaN p yields 0; p outside [0, 100] clamps to the extremes.
func (s *Sample) Percentile(p float64) time.Duration {
	if len(s.values) == 0 || math.IsNaN(p) {
		return 0
	}
	s.sort()
	if p <= 0 {
		return s.values[0]
	}
	if p >= 100 {
		return s.values[len(s.values)-1]
	}
	rank := p / 100 * float64(len(s.values)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s.values[lo]
	}
	frac := rank - float64(lo)
	return s.values[lo] + time.Duration(frac*float64(s.values[hi]-s.values[lo]))
}

// Stddev returns the population standard deviation.
func (s *Sample) Stddev() time.Duration {
	if len(s.values) < 2 {
		return 0
	}
	mean := float64(s.Mean())
	var sum float64
	for _, v := range s.values {
		d := float64(v) - mean
		sum += d * d
	}
	return time.Duration(math.Sqrt(sum / float64(len(s.values))))
}

// TrimmedMean returns the mean of observations between the lo-th and
// hi-th percentiles inclusive — Figure 2 averages the 8th to 92nd
// percentile of at least 12 runs.
func (s *Sample) TrimmedMean(lo, hi float64) time.Duration {
	if len(s.values) == 0 {
		return 0
	}
	s.sort()
	loV, hiV := s.Percentile(lo), s.Percentile(hi)
	var total time.Duration
	n := 0
	for _, v := range s.values {
		if v >= loV && v <= hiV {
			total += v
			n++
		}
	}
	if n == 0 {
		return s.Mean()
	}
	return total / time.Duration(n)
}

// Bar summarizes a sample the way the paper's bar charts do.
type Bar struct {
	// Mean is the 8th–92nd percentile trimmed mean (the bar height).
	Mean time.Duration
	// Min and Max are the whiskers.
	Min, Max time.Duration
	// N is the number of observations.
	N int
}

// PaperBar computes the Figure 2 methodology bar: trimmed mean with
// min/max whiskers.
func (s *Sample) PaperBar() Bar {
	return Bar{
		Mean: s.TrimmedMean(8, 92),
		Min:  s.Min(),
		Max:  s.Max(),
		N:    s.Len(),
	}
}

// String renders the bar in milliseconds.
func (b Bar) String() string {
	return fmt.Sprintf("%7.2fms  [min %7.2fms, max %7.2fms]  n=%d",
		ms(b.Mean), ms(b.Min), ms(b.Max), b.N)
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// Ms converts a duration to float milliseconds for reporting.
func Ms(d time.Duration) float64 { return ms(d) }

// Distribution counts categorical outcomes (Figure 3's response
// distribution across cache-server CIDR pools).
type Distribution struct {
	counts map[string]int
	total  int
}

// NewDistribution returns an empty distribution.
func NewDistribution() *Distribution {
	return &Distribution{counts: make(map[string]int)}
}

// Add records one outcome.
func (d *Distribution) Add(category string) {
	d.counts[category]++
	d.total++
}

// Total returns the number of recorded outcomes.
func (d *Distribution) Total() int { return d.total }

// Share returns the fraction of outcomes in category.
func (d *Distribution) Share(category string) float64 {
	if d.total == 0 {
		return 0
	}
	return float64(d.counts[category]) / float64(d.total)
}

// Categories returns all categories, sorted by descending share then
// name.
func (d *Distribution) Categories() []string {
	cats := make([]string, 0, len(d.counts))
	for c := range d.counts {
		cats = append(cats, c)
	}
	sort.Slice(cats, func(i, j int) bool {
		if d.counts[cats[i]] != d.counts[cats[j]] {
			return d.counts[cats[i]] > d.counts[cats[j]]
		}
		return cats[i] < cats[j]
	})
	return cats
}
