package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func sampleOf(values ...time.Duration) *Sample {
	s := New()
	for _, v := range values {
		s.Add(v)
	}
	return s
}

func TestBasicStats(t *testing.T) {
	s := sampleOf(10*time.Millisecond, 20*time.Millisecond, 30*time.Millisecond)
	if s.Len() != 3 {
		t.Errorf("len = %d", s.Len())
	}
	if s.Mean() != 20*time.Millisecond {
		t.Errorf("mean = %v", s.Mean())
	}
	if s.Min() != 10*time.Millisecond || s.Max() != 30*time.Millisecond {
		t.Errorf("min/max = %v/%v", s.Min(), s.Max())
	}
}

func TestEmptySample(t *testing.T) {
	s := New()
	if s.Mean() != 0 || s.Min() != 0 || s.Max() != 0 || s.Percentile(50) != 0 ||
		s.Stddev() != 0 || s.TrimmedMean(8, 92) != 0 {
		t.Error("empty sample should be all zeros")
	}
	bar := s.PaperBar()
	if bar.N != 0 {
		t.Errorf("bar = %+v", bar)
	}
}

func TestPercentiles(t *testing.T) {
	s := New()
	for i := 1; i <= 100; i++ {
		s.Add(time.Duration(i) * time.Millisecond)
	}
	if got := s.Percentile(0); got != time.Millisecond {
		t.Errorf("p0 = %v", got)
	}
	if got := s.Percentile(100); got != 100*time.Millisecond {
		t.Errorf("p100 = %v", got)
	}
	p50 := s.Percentile(50)
	if p50 < 50*time.Millisecond || p50 > 51*time.Millisecond {
		t.Errorf("p50 = %v", p50)
	}
	if s.Percentile(8) >= s.Percentile(92) {
		t.Error("p8 >= p92")
	}
}

func TestTrimmedMeanDropsTails(t *testing.T) {
	s := New()
	for i := 0; i < 20; i++ {
		s.Add(10 * time.Millisecond)
	}
	s.Add(10 * time.Second) // wild outlier
	trimmed := s.TrimmedMean(8, 92)
	if trimmed != 10*time.Millisecond {
		t.Errorf("trimmed mean = %v, want 10ms", trimmed)
	}
	if s.Mean() <= trimmed {
		t.Error("untrimmed mean should exceed trimmed")
	}
	bar := s.PaperBar()
	if bar.Max != 10*time.Second || bar.Mean != 10*time.Millisecond {
		t.Errorf("bar = %+v", bar)
	}
}

func TestStddev(t *testing.T) {
	s := sampleOf(10*time.Millisecond, 10*time.Millisecond)
	if s.Stddev() != 0 {
		t.Errorf("constant stddev = %v", s.Stddev())
	}
	s = sampleOf(0, 20*time.Millisecond)
	if got := s.Stddev(); got != 10*time.Millisecond {
		t.Errorf("stddev = %v", got)
	}
}

func TestPercentileMonotoneProperty(t *testing.T) {
	f := func(raw []uint32, aSeed int64) bool {
		if len(raw) == 0 {
			return true
		}
		s := New()
		for _, v := range raw {
			s.Add(time.Duration(v))
		}
		rng := rand.New(rand.NewSource(aSeed))
		p1, p2 := rng.Float64()*100, rng.Float64()*100
		if p1 > p2 {
			p1, p2 = p2, p1
		}
		return s.Percentile(p1) <= s.Percentile(p2) &&
			s.Percentile(0) == s.Min() && s.Percentile(100) == s.Max() &&
			s.Min() <= s.TrimmedMean(8, 92) && s.TrimmedMean(8, 92) <= s.Max()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestBarString(t *testing.T) {
	bar := sampleOf(5*time.Millisecond, 15*time.Millisecond).PaperBar()
	if got := bar.String(); got == "" {
		t.Error("empty bar string")
	}
	if Ms(1500*time.Microsecond) != 1.5 {
		t.Error("Ms conversion")
	}
}

func TestDistribution(t *testing.T) {
	d := NewDistribution()
	if d.Total() != 0 || d.Share("x") != 0 {
		t.Error("empty distribution")
	}
	for i := 0; i < 7; i++ {
		d.Add("akamai")
	}
	for i := 0; i < 3; i++ {
		d.Add("fastly")
	}
	if d.Total() != 10 {
		t.Errorf("total = %d", d.Total())
	}
	if d.Share("akamai") != 0.7 || d.Share("fastly") != 0.3 {
		t.Errorf("shares = %v/%v", d.Share("akamai"), d.Share("fastly"))
	}
	cats := d.Categories()
	if len(cats) != 2 || cats[0] != "akamai" {
		t.Errorf("categories = %v", cats)
	}
}

func TestValuesCopy(t *testing.T) {
	s := sampleOf(time.Millisecond)
	v := s.Values()
	v[0] = time.Hour
	if s.Min() != time.Millisecond {
		t.Error("Values leaked internal slice")
	}
}

func TestPercentileNaNAndEmptyGuards(t *testing.T) {
	empty := New()
	for _, p := range []float64{math.NaN(), math.Inf(-1), -5, 0, 50, 100, 200, math.Inf(1)} {
		if got := empty.Percentile(p); got != 0 {
			t.Errorf("empty.Percentile(%v) = %v, want 0", p, got)
		}
	}
	s := sampleOf(time.Millisecond, 2*time.Millisecond, 3*time.Millisecond)
	if got := s.Percentile(math.NaN()); got != 0 {
		t.Errorf("Percentile(NaN) = %v, want 0", got)
	}
	if got := s.Percentile(math.Inf(-1)); got != time.Millisecond {
		t.Errorf("Percentile(-Inf) = %v, want clamp to min", got)
	}
	if got := s.Percentile(math.Inf(1)); got != 3*time.Millisecond {
		t.Errorf("Percentile(+Inf) = %v, want clamp to max", got)
	}
	if got := s.TrimmedMean(math.NaN(), math.NaN()); got != 2*time.Millisecond {
		t.Errorf("TrimmedMean(NaN, NaN) = %v, want fallback mean", got)
	}
}

func TestAddAfterValuesIsIndependent(t *testing.T) {
	s := sampleOf(3*time.Millisecond, time.Millisecond, 2*time.Millisecond)
	v := s.Values()
	// Growing and re-sorting the sample must not disturb the copy.
	s.Add(10 * time.Millisecond)
	s.Add(500 * time.Microsecond)
	_ = s.Percentile(50)
	want := []time.Duration{3 * time.Millisecond, time.Millisecond, 2 * time.Millisecond}
	for i, d := range want {
		if v[i] != d {
			t.Fatalf("Values copy mutated at %d: got %v, want %v", i, v[i], d)
		}
	}
	if s.Len() != 5 {
		t.Fatalf("Len = %d, want 5", s.Len())
	}
	if s.Min() != 500*time.Microsecond || s.Max() != 10*time.Millisecond {
		t.Fatalf("min/max = %v/%v", s.Min(), s.Max())
	}
}
