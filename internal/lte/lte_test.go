package lte

import (
	"testing"
	"time"

	"github.com/meccdn/meccdn/internal/simnet"
)

func echo(proc time.Duration) simnet.HandlerFunc {
	return func(ctx *simnet.Ctx, dg simnet.Datagram) { ctx.Reply(dg.Payload, proc) }
}

func TestTestbedTopology(t *testing.T) {
	tb := New(Config{Seed: 1})
	path, err := tb.Net.Path(NodeUE, NodePGW)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"ue", "enb0", "sgw", "pgw"}
	if len(path) != len(want) {
		t.Fatalf("path = %v", path)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("path = %v, want %v", path, want)
		}
	}
}

func TestMECIsCloserThanLANThanWAN(t *testing.T) {
	tb := New(Config{Seed: 2})
	tb.AddMEC("mec-dns")
	tb.AddLAN("lan-dns")
	tb.AddWAN("wan-dns", 1)
	for _, name := range []string{"mec-dns", "lan-dns", "wan-dns"} {
		tb.Net.Node(name).SetHandler(echo(0))
	}
	ep := tb.Net.Node(NodeUE).Endpoint()
	rtt := func(dst string) time.Duration {
		var total time.Duration
		const n = 30
		for i := 0; i < n; i++ {
			_, d, err := ep.Exchange(tb.Net.Node(dst).Addr, []byte("x"), time.Second)
			if err != nil {
				i-- // rare loss: retry
				continue
			}
			total += d
		}
		return total / n
	}
	mec, lan, wan := rtt("mec-dns"), rtt("lan-dns"), rtt("wan-dns")
	if !(mec < lan && lan < wan) {
		t.Errorf("ordering violated: mec=%v lan=%v wan=%v", mec, lan, wan)
	}
	// The paper's wireless hop is ~10ms one way: the MEC RTT must be
	// dominated by it (≈20ms ± jitter).
	if mec < 15*time.Millisecond || mec > 30*time.Millisecond {
		t.Errorf("MEC RTT = %v, want ≈20ms", mec)
	}
}

func Test5GShrinksWirelessHop(t *testing.T) {
	rtt5g := measureMECRTT(t, Config{Seed: 3, Air: NR5G()})
	rtt4g := measureMECRTT(t, Config{Seed: 3, Air: LTE4G()})
	if rtt5g*3 > rtt4g {
		t.Errorf("5G RTT %v not drastically below 4G %v", rtt5g, rtt4g)
	}
}

func measureMECRTT(t *testing.T, cfg Config) time.Duration {
	t.Helper()
	tb := New(cfg)
	tb.AddMEC("mec")
	tb.Net.Node("mec").SetHandler(echo(0))
	ep := tb.Net.Node(NodeUE).Endpoint()
	var total time.Duration
	const n = 20
	for i := 0; i < n; i++ {
		_, d, err := ep.Exchange(tb.Net.Node("mec").Addr, []byte("x"), time.Second)
		if err != nil {
			i--
			continue
		}
		total += d
	}
	return total / n
}

func TestMultipleBaseStationsAndReattach(t *testing.T) {
	tb := New(Config{Seed: 4, BaseStations: 2})
	if tb.AttachedENB() != 0 {
		t.Fatalf("initial attach = %d", tb.AttachedENB())
	}
	if !tb.Net.HasLink(NodeUE, ENB(0)) || tb.Net.HasLink(NodeUE, ENB(1)) {
		t.Fatal("initial links wrong")
	}
	tb.AttachUE(1)
	if tb.Net.HasLink(NodeUE, ENB(0)) || !tb.Net.HasLink(NodeUE, ENB(1)) {
		t.Fatal("re-attach did not move the bearer")
	}
	if tb.AttachedENB() != 1 {
		t.Errorf("attached = %d", tb.AttachedENB())
	}
}

func TestWANDelayScale(t *testing.T) {
	tb := New(Config{Seed: 5, WANDelay: simnet.Constant(20 * time.Millisecond)})
	tb.AddWAN("near", 1)
	tb.AddWAN("far", 5)
	tb.Net.Node("near").SetHandler(echo(0))
	tb.Net.Node("far").SetHandler(echo(0))
	ep := tb.Net.Node(NodeUE).Endpoint()
	var nearRTT, farRTT time.Duration
	for i := 0; i < 10; i++ {
		if _, d, err := ep.Exchange(tb.Net.Node("near").Addr, []byte("x"), time.Second); err == nil {
			nearRTT += d
		}
		if _, d, err := ep.Exchange(tb.Net.Node("far").Addr, []byte("x"), time.Second); err == nil {
			farRTT += d
		}
	}
	if farRTT < nearRTT*3 {
		t.Errorf("scaled WAN not slower: near=%v far=%v", nearRTT, farRTT)
	}
}

func TestUplinkGrantDelay(t *testing.T) {
	air := LTE4G()
	air.Loss = 0
	air.Delay = simnet.Constant(10 * time.Millisecond)
	air.GrantDelay = 5 * time.Millisecond
	air.IdleThreshold = 40 * time.Millisecond
	tb := New(Config{Seed: 6, Air: air, BackhaulDelay: simnet.Constant(0)})
	tb.AddMEC("svc")
	tb.Net.Node("svc").SetHandler(echo(0))
	ep := tb.Net.Node(NodeUE).Endpoint()
	dst := tb.Net.Node("svc").Addr

	rtt := func() time.Duration {
		_, d, err := ep.Exchange(dst, []byte("x"), time.Second)
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	// First packet after boot pays the grant.
	first := rtt()
	// Back-to-back packet does not.
	second := rtt()
	if first-second != 5*time.Millisecond {
		t.Errorf("grant delta = %v, want 5ms (first %v, second %v)", first-second, first, second)
	}
	// After going idle the grant is paid again.
	tb.Net.Clock.RunUntil(tb.Net.Now() + 500*time.Millisecond)
	third := rtt()
	if third != first {
		t.Errorf("post-idle rtt = %v, want %v", third, first)
	}
}

func TestAirProfileNames(t *testing.T) {
	if LTE4G().Name != "4g-lte" || NR5G().Name != "5g-nr" {
		t.Error("profile names")
	}
	if ENB(3) != "enb3" {
		t.Errorf("ENB(3) = %s", ENB(3))
	}
}
