// Package lte builds the paper's private 4G-LTE testbed topology on
// the simnet simulator: a UE behind an srsLTE-style air interface, an
// eNB, a distributed EPC (S-GW, P-GW), MEC servers collocated at the
// edge, and LAN/WAN attachment points behind the P-GW for the
// non-edge DNS deployments of Figure 5.
//
// The air-interface profiles replace the USRP B200mini radios: the
// paper reports the LTE wireless hop at approximately 10 ms one way,
// dominating the MEC L-DNS bar of Figure 5, and projects 5G to shrink
// it drastically; both are captured as delay distributions.
package lte

import (
	"fmt"
	"math/rand"
	"time"

	"github.com/meccdn/meccdn/internal/simnet"
)

// AirProfile models one radio-access generation's air interface.
type AirProfile struct {
	// Name labels the profile in output ("4g-lte", "5g-nr").
	Name string
	// Delay is the one-way air-interface latency distribution.
	Delay simnet.Sampler
	// Loss is the probability a datagram is lost on the air hop.
	Loss float64
	// GrantDelay, when non-zero, models LTE uplink scheduling: after
	// IdleThreshold without uplink traffic the UE must go through the
	// scheduling-request cycle before transmitting, adding GrantDelay
	// to the first packet. Part of the "delay incurred in the
	// wireless network itself [and] the RAN software stack" of §2
	// Observation 1.
	GrantDelay time.Duration
	// IdleThreshold is the inactivity window after which a grant is
	// needed again; zero with GrantDelay set means 40ms.
	IdleThreshold time.Duration
}

// GrantAware wraps an uplink delay sampler with the scheduling-request
// cycle: the first transmission after an idle period pays GrantDelay.
type GrantAware struct {
	// Clock supplies virtual time; required.
	Clock *simnet.Clock
	// Inner is the underlying air delay.
	Inner simnet.Sampler
	// GrantDelay is the extra first-packet cost.
	GrantDelay time.Duration
	// IdleThreshold is the inactivity window; zero means 40ms.
	IdleThreshold time.Duration

	lastSend time.Duration
	started  bool
}

// Sample implements simnet.Sampler.
func (g *GrantAware) Sample(rng *rand.Rand) time.Duration {
	d := g.Inner.Sample(rng)
	idle := g.IdleThreshold
	if idle <= 0 {
		idle = 40 * time.Millisecond
	}
	now := g.Clock.Now()
	if !g.started || now-g.lastSend > idle {
		d += g.GrantDelay
	}
	g.started = true
	g.lastSend = now
	return d
}

// LTE4G is calibrated to the paper's testbed: ~10 ms one-way with
// scheduling jitter (srsLTE over USRP B200mini).
func LTE4G() AirProfile {
	return AirProfile{
		Name:  "4g-lte",
		Delay: simnet.Shifted{Base: 9 * time.Millisecond, Jitter: simnet.Normal{Mean: 1 * time.Millisecond, Stddev: 500 * time.Microsecond}},
		Loss:  0.001,
	}
}

// NR5G is the paper's 5G projection: the wireless hop drops to
// low single-digit milliseconds.
func NR5G() AirProfile {
	return AirProfile{
		Name:  "5g-nr",
		Delay: simnet.Shifted{Base: 1200 * time.Microsecond, Jitter: simnet.Normal{Mean: 300 * time.Microsecond, Stddev: 150 * time.Microsecond}},
		Loss:  0.0005,
	}
}

// Config parameterizes a testbed build.
type Config struct {
	// Seed drives every random draw in the simulation.
	Seed int64
	// Air is the radio profile; zero value means 4G LTE.
	Air AirProfile
	// BaseStations is the number of eNBs; 0 means 1. All share the
	// one EPC, like the paper's single-core distributed deployment.
	BaseStations int
	// BackhaulDelay is the per-hop eNB→S-GW→P-GW latency; zero means
	// 500µs (containerized functions on a collocated cluster).
	BackhaulDelay simnet.Sampler
	// MECDelay is the P-GW→MEC-service latency (k8s pod network);
	// zero means 150µs.
	MECDelay simnet.Sampler
	// LANDelay is the P-GW→LAN latency (same building, outside the
	// cluster); zero means 1.5ms.
	LANDelay simnet.Sampler
	// WANDelay is the P-GW→WAN latency (upstream ISP + internet);
	// zero means ~20ms with a heavy tail.
	WANDelay simnet.Sampler
}

// Node names used by the testbed. Base stations are "enb0", "enb1"…
const (
	NodeUE  = "ue"
	NodeSGW = "sgw"
	NodePGW = "pgw"
)

// ENB returns the i-th base-station node name.
func ENB(i int) string { return fmt.Sprintf("enb%d", i) }

// Testbed is a built LTE/MEC topology.
type Testbed struct {
	// Net is the underlying simulator.
	Net *simnet.Network
	// Cfg echoes the build configuration with defaults applied.
	Cfg Config

	attachedENB int
}

// New builds the testbed: ue—enb0—sgw—pgw plus any extra eNBs, with
// the UE attached to enb0.
func New(cfg Config) *Testbed {
	if cfg.Air.Name == "" {
		cfg.Air = LTE4G()
	}
	if cfg.BaseStations <= 0 {
		cfg.BaseStations = 1
	}
	if cfg.BackhaulDelay == nil {
		cfg.BackhaulDelay = simnet.Constant(500 * time.Microsecond)
	}
	if cfg.MECDelay == nil {
		cfg.MECDelay = simnet.Constant(150 * time.Microsecond)
	}
	if cfg.LANDelay == nil {
		cfg.LANDelay = simnet.Shifted{Base: 1200 * time.Microsecond, Jitter: simnet.Uniform{Max: 600 * time.Microsecond}}
	}
	if cfg.WANDelay == nil {
		cfg.WANDelay = simnet.LogNormal{Median: 18 * time.Millisecond, Sigma: 0.35, Max: 250 * time.Millisecond}
	}
	n := simnet.New(cfg.Seed)
	n.AddNode(NodeUE)
	n.AddNode(NodeSGW)
	n.AddNode(NodePGW)
	n.AddLink(NodeSGW, NodePGW, cfg.BackhaulDelay, 0)
	tb := &Testbed{Net: n, Cfg: cfg}
	for i := 0; i < cfg.BaseStations; i++ {
		n.AddNode(ENB(i))
		n.AddLink(ENB(i), NodeSGW, cfg.BackhaulDelay, 0)
	}
	tb.AttachUE(0)
	return tb
}

// AttachUE connects the UE's radio bearer to base station i,
// detaching it from any previous one. When the air profile models
// uplink grants, the UE→eNB direction carries the grant-aware delay
// while the downlink stays grant-free, like real LTE scheduling.
func (tb *Testbed) AttachUE(i int) {
	if tb.Net.HasLink(NodeUE, ENB(tb.attachedENB)) {
		tb.Net.RemoveLink(NodeUE, ENB(tb.attachedENB))
	}
	up := tb.Cfg.Air.Delay
	if tb.Cfg.Air.GrantDelay > 0 {
		up = &GrantAware{
			Clock:         tb.Net.Clock,
			Inner:         tb.Cfg.Air.Delay,
			GrantDelay:    tb.Cfg.Air.GrantDelay,
			IdleThreshold: tb.Cfg.Air.IdleThreshold,
		}
	}
	tb.Net.AddDirectedLink(NodeUE, ENB(i), up, tb.Cfg.Air.Loss)
	tb.Net.AddDirectedLink(ENB(i), NodeUE, tb.Cfg.Air.Delay, tb.Cfg.Air.Loss)
	tb.attachedENB = i
}

// AttachedENB returns the index of the UE's current base station.
func (tb *Testbed) AttachedENB() int { return tb.attachedENB }

// AddMEC creates a MEC service node collocated with the edge cluster,
// reachable from the P-GW over the pod network (local breakout).
func (tb *Testbed) AddMEC(name string) *simnet.Node {
	node := tb.Net.AddNode(name)
	tb.Net.AddLink(NodePGW, name, tb.Cfg.MECDelay, 0)
	return node
}

// AddLAN creates a node on the same LAN as the edge site but outside
// the MEC cluster (the paper's "LAN C-DNS" and "LAN L-DNS" cases).
func (tb *Testbed) AddLAN(name string) *simnet.Node {
	node := tb.Net.AddNode(name)
	tb.Net.AddLink(NodePGW, name, tb.Cfg.LANDelay, 0)
	return node
}

// AddWAN creates a node across the wide-area internet (cloud DNS,
// far-tier CDN), optionally scaling the WAN delay (Cloudflare's
// observed path in the paper is far slower than Google's).
func (tb *Testbed) AddWAN(name string, delayScale float64) *simnet.Node {
	node := tb.Net.AddNode(name)
	delay := tb.Cfg.WANDelay
	if delayScale > 0 && delayScale != 1 {
		delay = scaledSampler{base: delay, scale: delayScale}
	}
	tb.Net.AddLink(NodePGW, name, delay, 0)
	return node
}

// scaledSampler multiplies another sampler's draws.
type scaledSampler struct {
	base  simnet.Sampler
	scale float64
}

// Sample implements simnet.Sampler.
func (s scaledSampler) Sample(rng *rand.Rand) time.Duration {
	return time.Duration(float64(s.base.Sample(rng)) * s.scale)
}
