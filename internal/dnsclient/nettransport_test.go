package dnsclient_test

// Real-socket transport tests live in an external test package so the
// client package can be exercised against the server package without
// an import cycle.

import (
	"context"
	"net/netip"
	"testing"
	"time"

	"github.com/meccdn/meccdn/internal/dnsclient"
	"github.com/meccdn/meccdn/internal/dnsserver"
	"github.com/meccdn/meccdn/internal/dnswire"
)

func startRealServer(t *testing.T) netip.AddrPort {
	t.Helper()
	zone := dnsserver.NewZone("real.test.")
	if err := zone.AddA("www.real.test.", 60, netip.MustParseAddr("192.0.2.31")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 80; i++ {
		if err := zone.AddA("big.real.test.", 60,
			netip.AddrFrom4([4]byte{10, 9, byte(i >> 8), byte(i)})); err != nil {
			t.Fatal(err)
		}
	}
	srv := &dnsserver.Server{Addr: "127.0.0.1:0", Handler: dnsserver.Chain(dnsserver.NewZonePlugin(zone))}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv.LocalAddr()
}

func TestNetTransportUDP(t *testing.T) {
	addr := startRealServer(t)
	c := &dnsclient.Client{Transport: &dnsclient.NetTransport{}, Timeout: 2 * time.Second}
	resp, err := c.Query(context.Background(), addr, "www.real.test.", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Answers) != 1 {
		t.Errorf("answers = %d", len(resp.Answers))
	}
}

func TestNetTransportTCPFallback(t *testing.T) {
	addr := startRealServer(t)
	c := &dnsclient.Client{Transport: &dnsclient.NetTransport{}, Timeout: 2 * time.Second}
	// 80 A records exceed 512 bytes: UDP truncates, TCP recovers.
	resp, err := c.Query(context.Background(), addr, "big.real.test.", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Truncated || len(resp.Answers) != 80 {
		t.Errorf("tc=%v answers=%d", resp.Truncated, len(resp.Answers))
	}
}

func TestNetTransportTimeout(t *testing.T) {
	// 192.0.2.0/24 is TEST-NET: nothing answers. Use a very short
	// deadline so the test is quick either way.
	c := &dnsclient.Client{Transport: &dnsclient.NetTransport{}, Timeout: 50 * time.Millisecond}
	_, err := c.Query(context.Background(),
		netip.MustParseAddrPort("127.0.0.1:1"), "x.test.", dnswire.TypeA)
	if err == nil {
		t.Fatal("query to closed port succeeded")
	}
}

func TestNetTransportContextCancel(t *testing.T) {
	addr := startRealServer(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	c := &dnsclient.Client{Transport: &dnsclient.NetTransport{}, Timeout: 2 * time.Second}
	if _, err := c.Query(ctx, addr, "www.real.test.", dnswire.TypeA); err == nil {
		t.Fatal("cancelled query succeeded")
	}
}
