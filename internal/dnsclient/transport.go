package dnsclient

import (
	"context"
	"fmt"
	"net"
	"net/netip"
	"time"

	"github.com/meccdn/meccdn/internal/dnswire"
	"github.com/meccdn/meccdn/internal/simnet"
)

// NetTransport exchanges DNS messages over real UDP and TCP sockets.
// The zero value is ready to use.
type NetTransport struct {
	// Dialer, if non-nil, overrides the default dialer (useful for
	// binding to a source address).
	Dialer *net.Dialer
}

// Exchange implements Transport.
func (t *NetTransport) Exchange(ctx context.Context, server netip.AddrPort, query []byte, tcp bool) ([]byte, error) {
	d := t.Dialer
	if d == nil {
		d = &net.Dialer{}
	}
	network := "udp"
	if tcp {
		network = "tcp"
	}
	conn, err := d.DialContext(ctx, network, server.String())
	if err != nil {
		return nil, fmt.Errorf("dialing %s %v: %w", network, server, err)
	}
	defer conn.Close()
	if deadline, ok := ctx.Deadline(); ok {
		if err := conn.SetDeadline(deadline); err != nil {
			return nil, err
		}
	}
	if tcp {
		if err := dnswire.WriteTCP(conn, query); err != nil {
			return nil, err
		}
		return dnswire.ReadTCP(conn)
	}
	if _, err := conn.Write(query); err != nil {
		return nil, fmt.Errorf("udp write to %v: %w", server, err)
	}
	// Read into a pooled buffer; the client recycles it after the
	// response has been unpacked (Unpack copies everything out).
	buf := dnswire.GetBuffer()
	n, err := conn.Read(buf)
	if err != nil {
		dnswire.PutBuffer(buf)
		return nil, fmt.Errorf("udp read from %v: %w", server, err)
	}
	return buf[:n], nil
}

// SimTransport exchanges DNS messages inside a simnet virtual network.
// Each exchange advances virtual time by the routed path delay plus
// the server's processing time; real time barely advances at all.
type SimTransport struct {
	// Endpoint is the simnet node this client sends from.
	Endpoint *simnet.Endpoint
	// Timeout is the virtual-time wait before an exchange is declared
	// lost. Zero means 2s, comfortably above any simulated RTT.
	Timeout time.Duration
}

// Exchange implements Transport. The tcp flag and context deadline are
// ignored: virtual datagrams are not size-limited and timeouts are
// virtual-time by construction.
func (t *SimTransport) Exchange(_ context.Context, server netip.AddrPort, query []byte, _ bool) ([]byte, error) {
	timeout := t.Timeout
	if timeout <= 0 {
		timeout = 2 * time.Second
	}
	resp, _, err := t.Endpoint.Exchange(server.Addr(), query, timeout)
	if err != nil {
		return nil, err
	}
	return resp, nil
}
