package dnsclient

import (
	"context"
	"errors"
	"math/rand"
	"net/netip"
	"testing"
	"time"

	"github.com/meccdn/meccdn/internal/dnswire"
	"github.com/meccdn/meccdn/internal/simnet"
)

// fakeTransport scripts transport behaviour for unit tests.
type fakeTransport struct {
	fn    func(query []byte, tcp bool) ([]byte, error)
	calls int
	tcp   int
}

func (f *fakeTransport) Exchange(_ context.Context, _ netip.AddrPort, query []byte, tcp bool) ([]byte, error) {
	f.calls++
	if tcp {
		f.tcp++
	}
	return f.fn(query, tcp)
}

func answerFor(t *testing.T, raw []byte, mutate func(*dnswire.Message)) []byte {
	t.Helper()
	var q dnswire.Message
	if err := q.Unpack(raw); err != nil {
		t.Fatalf("server could not unpack query: %v", err)
	}
	var resp dnswire.Message
	resp.SetReply(&q)
	resp.Answers = []dnswire.RR{&dnswire.A{
		Hdr:  dnswire.RRHeader{Name: q.Question().Name, Type: dnswire.TypeA, Class: dnswire.ClassINET, TTL: 30},
		Addr: netip.MustParseAddr("192.0.2.53"),
	}}
	if mutate != nil {
		mutate(&resp)
	}
	wire, err := resp.Pack()
	if err != nil {
		t.Fatal(err)
	}
	return wire
}

var testServer = netip.MustParseAddrPort("192.0.2.1:53")

func TestClientQuerySuccess(t *testing.T) {
	ft := &fakeTransport{fn: func(q []byte, tcp bool) ([]byte, error) {
		return answerFor(t, q, nil), nil
	}}
	c := &Client{Transport: ft}
	c.SetRand(rand.New(rand.NewSource(1)))
	resp, err := c.Query(context.Background(), testServer, "cdn0.agoda.net", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Answers) != 1 {
		t.Fatalf("answers = %d", len(resp.Answers))
	}
	if got := resp.Answers[0].(*dnswire.A).Addr.String(); got != "192.0.2.53" {
		t.Errorf("answer = %s", got)
	}
}

func TestClientAddsEDNS(t *testing.T) {
	var sawSize uint16
	ft := &fakeTransport{fn: func(q []byte, tcp bool) ([]byte, error) {
		var msg dnswire.Message
		if err := msg.Unpack(q); err != nil {
			t.Fatal(err)
		}
		if opt, ok := msg.OPT(); ok {
			sawSize = opt.UDPSize()
		}
		return answerFor(t, q, nil), nil
	}}
	c := &Client{Transport: ft, UDPSize: 1232}
	c.SetRand(rand.New(rand.NewSource(2)))
	if _, err := c.Query(context.Background(), testServer, "x.test", dnswire.TypeA); err != nil {
		t.Fatal(err)
	}
	if sawSize != 1232 {
		t.Errorf("server saw EDNS size %d", sawSize)
	}
}

func TestClientRejectsIDMismatch(t *testing.T) {
	ft := &fakeTransport{fn: func(q []byte, tcp bool) ([]byte, error) {
		return answerFor(t, q, func(m *dnswire.Message) { m.ID ^= 0xFFFF }), nil
	}}
	c := &Client{Transport: ft}
	c.SetRand(rand.New(rand.NewSource(3)))
	_, err := c.Query(context.Background(), testServer, "x.test", dnswire.TypeA)
	if !errors.Is(err, ErrAllAttemptsFail) {
		t.Fatalf("err = %v", err)
	}
}

func TestClientRejectsQuestionMismatch(t *testing.T) {
	ft := &fakeTransport{fn: func(q []byte, tcp bool) ([]byte, error) {
		return answerFor(t, q, func(m *dnswire.Message) {
			m.Questions[0].Name = "evil.test."
		}), nil
	}}
	c := &Client{Transport: ft}
	c.SetRand(rand.New(rand.NewSource(4)))
	if _, err := c.Query(context.Background(), testServer, "x.test", dnswire.TypeA); err == nil {
		t.Fatal("question mismatch accepted")
	}
}

func TestClientTCPFallbackOnTruncation(t *testing.T) {
	ft := &fakeTransport{}
	ft.fn = func(q []byte, tcp bool) ([]byte, error) {
		if !tcp {
			return answerFor(t, q, func(m *dnswire.Message) { m.Truncated = true }), nil
		}
		return answerFor(t, q, nil), nil
	}
	c := &Client{Transport: ft}
	c.SetRand(rand.New(rand.NewSource(5)))
	resp, err := c.Query(context.Background(), testServer, "big.test", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Truncated {
		t.Error("final response still truncated")
	}
	if ft.tcp != 1 {
		t.Errorf("tcp attempts = %d, want 1", ft.tcp)
	}
}

func TestClientTruncationWithoutFallback(t *testing.T) {
	ft := &fakeTransport{fn: func(q []byte, tcp bool) ([]byte, error) {
		return answerFor(t, q, func(m *dnswire.Message) { m.Truncated = true }), nil
	}}
	c := &Client{Transport: ft, DisableTCPFallback: true}
	c.SetRand(rand.New(rand.NewSource(6)))
	resp, err := c.Query(context.Background(), testServer, "big.test", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Truncated {
		t.Error("expected truncated response to be returned as-is")
	}
	if ft.tcp != 0 {
		t.Error("TCP used despite DisableTCPFallback")
	}
}

func TestClientRetries(t *testing.T) {
	attempt := 0
	ft := &fakeTransport{}
	ft.fn = func(q []byte, tcp bool) ([]byte, error) {
		attempt++
		if attempt < 3 {
			return nil, errors.New("synthetic loss")
		}
		return answerFor(t, q, nil), nil
	}
	c := &Client{Transport: ft, Retries: 2, Timeout: 100 * time.Millisecond}
	c.SetRand(rand.New(rand.NewSource(7)))
	if _, err := c.Query(context.Background(), testServer, "retry.test", dnswire.TypeA); err != nil {
		t.Fatal(err)
	}
	if attempt != 3 {
		t.Errorf("attempts = %d", attempt)
	}
}

func TestClientExhaustsRetries(t *testing.T) {
	ft := &fakeTransport{fn: func(q []byte, tcp bool) ([]byte, error) {
		return nil, errors.New("synthetic loss")
	}}
	c := &Client{Transport: ft, Retries: 2, Timeout: 10 * time.Millisecond}
	c.SetRand(rand.New(rand.NewSource(8)))
	_, err := c.Query(context.Background(), testServer, "dead.test", dnswire.TypeA)
	if !errors.Is(err, ErrAllAttemptsFail) {
		t.Fatalf("err = %v", err)
	}
	if ft.calls != 3 {
		t.Errorf("calls = %d, want 3", ft.calls)
	}
}

func TestClientNoTransport(t *testing.T) {
	c := &Client{}
	if _, err := c.Query(context.Background(), testServer, "x.test", dnswire.TypeA); err == nil {
		t.Fatal("expected error with no transport")
	}
}

func TestSimTransportEndToEnd(t *testing.T) {
	n := simnet.New(20)
	n.AddNode("client")
	n.AddNode("server")
	n.AddLink("client", "server", simnet.Constant(7*time.Millisecond), 0)

	n.Node("server").SetHandler(simnet.HandlerFunc(func(ctx *simnet.Ctx, dg simnet.Datagram) {
		ctx.Reply(answerFor(t, dg.Payload, nil), time.Millisecond)
	}))

	c := &Client{Transport: &SimTransport{Endpoint: n.Node("client").Endpoint()}}
	c.SetRand(rand.New(rand.NewSource(9)))
	start := n.Now()
	resp, err := c.Query(context.Background(),
		netip.AddrPortFrom(n.Node("server").Addr, 53), "sim.test", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Answers) != 1 {
		t.Fatalf("answers = %d", len(resp.Answers))
	}
	if rtt := n.Now() - start; rtt != 15*time.Millisecond {
		t.Errorf("virtual rtt = %v, want 15ms", rtt)
	}
}

func TestSimTransportTimeout(t *testing.T) {
	n := simnet.New(21)
	n.AddNode("client")
	n.AddNode("server")
	n.AddLink("client", "server", simnet.Constant(time.Millisecond), 1.0)
	c := &Client{
		Transport: &SimTransport{Endpoint: n.Node("client").Endpoint(), Timeout: 20 * time.Millisecond},
	}
	c.SetRand(rand.New(rand.NewSource(10)))
	_, err := c.Query(context.Background(),
		netip.AddrPortFrom(n.Node("server").Addr, 53), "lost.test", dnswire.TypeA)
	if !errors.Is(err, ErrAllAttemptsFail) {
		t.Fatalf("err = %v", err)
	}
}
