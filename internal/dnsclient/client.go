// Package dnsclient implements a DNS stub-resolver client: query
// construction, UDP exchange with retransmission, truncation-triggered
// TCP fallback, and response sanity checking.
//
// The client is transport-agnostic. NetTransport speaks real UDP and
// TCP sockets; SimTransport runs the same exchanges inside a simnet
// virtual network, which is how every experiment in this repository
// executes.
package dnsclient

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net/netip"
	"strconv"
	"sync"
	"time"

	"github.com/meccdn/meccdn/internal/dnswire"
	"github.com/meccdn/meccdn/internal/telemetry"
)

// Errors returned by Client.Do.
var (
	ErrIDMismatch       = errors.New("dnsclient: response ID does not match query")
	ErrQuestionMismatch = errors.New("dnsclient: response question does not match query")
	ErrAllAttemptsFail  = errors.New("dnsclient: all attempts failed")
)

// Transport moves one packed DNS message to a server and returns the
// packed response. Implementations decide what the tcp flag means;
// for NetTransport it selects the socket type, for SimTransport it is
// ignored (the virtual network has no 512-byte limit).
type Transport interface {
	Exchange(ctx context.Context, server netip.AddrPort, query []byte, tcp bool) ([]byte, error)
}

// Client performs DNS exchanges with retries and TCP fallback.
// The zero value is not usable; populate Transport first.
type Client struct {
	Transport Transport
	// Timeout bounds each individual attempt. Zero means 5s.
	Timeout time.Duration
	// Retries is the number of additional UDP attempts after the
	// first one fails or times out.
	Retries int
	// UDPSize, when non-zero, attaches an EDNS(0) OPT advertising
	// this payload size to queries that lack one.
	UDPSize uint16
	// DisableTCPFallback leaves truncated responses as-is instead of
	// retrying over TCP.
	DisableTCPFallback bool

	mu  sync.Mutex
	rng *rand.Rand
}

// SetRand installs a deterministic RNG for query ID generation; tests
// and simulations use this so runs replay exactly.
func (c *Client) SetRand(rng *rand.Rand) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.rng = rng
}

func (c *Client) newID() uint16 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.rng == nil {
		c.rng = rand.New(rand.NewSource(time.Now().UnixNano()))
	}
	return uint16(c.rng.Intn(1 << 16))
}

// Query is a convenience wrapper building a recursion-desired question
// for (name, t) and calling Do.
func (c *Client) Query(ctx context.Context, server netip.AddrPort, name string, t dnswire.Type) (*dnswire.Message, error) {
	q := new(dnswire.Message)
	q.SetQuestion(name, t)
	return c.Do(ctx, server, q)
}

// Do sends q to server and returns the validated response. Do never
// mutates the caller's message: it operates on its own copy, so the
// same query value can be reused (or raced by hedged exchanges)
// safely. The copy's ID is assigned by the client, and EDNS is
// attached per UDPSize. Truncated UDP responses are retried over TCP
// unless DisableTCPFallback is set.
func (c *Client) Do(ctx context.Context, server netip.AddrPort, q *dnswire.Message) (*dnswire.Message, error) {
	if c.Transport == nil {
		return nil, errors.New("dnsclient: no transport configured")
	}
	q = q.Clone()
	q.ID = c.newID()
	if c.UDPSize > 0 {
		if _, ok := q.OPT(); !ok {
			q.SetEDNS(c.UDPSize)
		}
	}
	// Over real sockets the packed query can live in a pooled buffer:
	// its bytes are consumed by the socket write, so the buffer is free
	// once Do returns. Virtual transports (simnet) may keep datagrams
	// queued past the exchange, so they get a private allocation.
	var wire []byte
	if _, pooled := c.Transport.(*NetTransport); pooled {
		buf := dnswire.GetBuffer()
		defer dnswire.PutBuffer(buf)
		w, err := q.AppendPack(buf[:0])
		if err != nil {
			return nil, fmt.Errorf("packing query for %q: %w", q.Question().Name, err)
		}
		wire = w
	} else {
		w, err := q.Pack()
		if err != nil {
			return nil, fmt.Errorf("packing query for %q: %w", q.Question().Name, err)
		}
		wire = w
	}
	timeout := c.Timeout
	if timeout <= 0 {
		timeout = 5 * time.Second
	}

	var lastErr error
	for attempt := 0; attempt <= c.Retries; attempt++ {
		// Each attempt is one timed "upstream" hop on the query's
		// span, so a live server's hop breakdown shows exactly how
		// long was spent waiting on which resolver.
		endHop := telemetry.StartHop(ctx, "upstream")
		attemptCtx, cancel := context.WithTimeout(ctx, timeout)
		resp, err := c.exchangeOnce(attemptCtx, server, wire, q, false)
		cancel()
		if err == nil {
			endHop(server.String())
			return resp, nil
		}
		endHop(server.String() + " err attempt=" + strconv.Itoa(attempt))
		lastErr = err
		if ctx.Err() != nil {
			break
		}
	}
	return nil, fmt.Errorf("%w: query %s %s to %v: %v",
		ErrAllAttemptsFail, q.Question().Name, q.Question().Type, server, lastErr)
}

// Transfer performs a zone transfer (AXFR) over the stream transport
// and returns the zone's records in transfer order (SOA first and
// last). The server may refuse (ACL, unknown zone); that surfaces as
// a response with RcodeRefused and no records.
func (c *Client) Transfer(ctx context.Context, server netip.AddrPort, zone string) ([]dnswire.RR, error) {
	if c.Transport == nil {
		return nil, errors.New("dnsclient: no transport configured")
	}
	q := new(dnswire.Message)
	q.SetQuestion(zone, dnswire.TypeAXFR)
	q.RecursionDesired = false
	q.ID = c.newID()
	wire, err := q.Pack()
	if err != nil {
		return nil, err
	}
	timeout := c.Timeout
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	attemptCtx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	resp, err := c.exchangeOnce(attemptCtx, server, wire, q, true)
	if err != nil {
		return nil, fmt.Errorf("transferring %s from %v: %w", zone, server, err)
	}
	if resp.Rcode != dnswire.RcodeSuccess {
		return nil, fmt.Errorf("transferring %s from %v: %s", zone, server, resp.Rcode)
	}
	return resp.Answers, nil
}

// TransferFrom performs an incremental zone transfer (IXFR, RFC 1995)
// over the stream transport: the query carries the caller's current
// SOA serial in the authority section, and the server answers with
// either the revision deltas since that serial, a lone SOA (caller is
// already current), or a full AXFR-style record set when its delta
// journal no longer reaches that far back. The raw answer records are
// returned for dnsserver.ApplyTransfer to classify and apply.
func (c *Client) TransferFrom(ctx context.Context, server netip.AddrPort, zone string, serial uint32) ([]dnswire.RR, error) {
	if c.Transport == nil {
		return nil, errors.New("dnsclient: no transport configured")
	}
	q := new(dnswire.Message)
	q.SetQuestion(zone, dnswire.TypeIXFR)
	q.RecursionDesired = false
	q.ID = c.newID()
	// RFC 1995 §3: the client's current SOA rides in the authority
	// section; only the serial field is meaningful to the server.
	q.Authorities = []dnswire.RR{&dnswire.SOA{
		Hdr:    dnswire.RRHeader{Name: dnswire.CanonicalName(zone), Type: dnswire.TypeSOA, Class: dnswire.ClassINET},
		Serial: serial,
	}}
	wire, err := q.Pack()
	if err != nil {
		return nil, err
	}
	timeout := c.Timeout
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	attemptCtx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	resp, err := c.exchangeOnce(attemptCtx, server, wire, q, true)
	if err != nil {
		return nil, fmt.Errorf("incremental transfer of %s from %v: %w", zone, server, err)
	}
	if resp.Rcode != dnswire.RcodeSuccess {
		return nil, fmt.Errorf("incremental transfer of %s from %v: %s", zone, server, resp.Rcode)
	}
	return resp.Answers, nil
}

func (c *Client) exchangeOnce(ctx context.Context, server netip.AddrPort, wire []byte, q *dnswire.Message, tcp bool) (*dnswire.Message, error) {
	raw, err := c.Transport.Exchange(ctx, server, wire, tcp)
	if err != nil {
		return nil, err
	}
	resp := new(dnswire.Message)
	err = resp.Unpack(raw)
	// Unpack copies all it needs, so the transport's buffer can go
	// back to the pool now. Transports returning foreign (non-pooled)
	// slices are unaffected: PutBuffer drops anything undersized.
	dnswire.PutBuffer(raw)
	if err != nil {
		return nil, fmt.Errorf("unpacking response: %w", err)
	}
	if err := validate(q, resp); err != nil {
		return nil, err
	}
	if resp.Truncated && !tcp && !c.DisableTCPFallback {
		return c.exchangeOnce(ctx, server, wire, q, true)
	}
	return resp, nil
}

// validate applies the anti-spoofing sanity checks of RFC 5452 §9 that
// a stub can perform: matching ID and question.
func validate(q, resp *dnswire.Message) error {
	if resp.ID != q.ID {
		return ErrIDMismatch
	}
	if !resp.Response {
		return errors.New("dnsclient: response flag not set")
	}
	if len(q.Questions) > 0 {
		if len(resp.Questions) == 0 {
			return ErrQuestionMismatch
		}
		qq, rq := q.Questions[0], resp.Questions[0]
		if dnswire.CanonicalName(qq.Name) != dnswire.CanonicalName(rq.Name) ||
			qq.Type != rq.Type || qq.Class != rq.Class {
			return ErrQuestionMismatch
		}
	}
	return nil
}
