package telemetry

import (
	"encoding/json"
	"fmt"
	"strings"
	"testing"
	"time"

	"github.com/meccdn/meccdn/internal/vclock"
)

func rec(i int) Record {
	return Record{Name: fmt.Sprintf("q%d.example.", i), Type: "A", Rcode: "NOERROR", Path: PathEdge}
}

func TestQueryLogRingWrap(t *testing.T) {
	l := NewQueryLog(3)
	for i := 0; i < 5; i++ {
		l.Add(rec(i))
	}
	if l.Len() != 3 {
		t.Fatalf("len = %d, want 3", l.Len())
	}
	added, dropped := l.Stats()
	if added != 5 || dropped != 2 {
		t.Errorf("stats = %d added / %d dropped, want 5/2", added, dropped)
	}
	out := l.Drain()
	if len(out) != 3 {
		t.Fatalf("drained %d", len(out))
	}
	// Oldest-first after overwriting q0 and q1.
	for i, want := range []string{"q2.example.", "q3.example.", "q4.example."} {
		if out[i].Name != want {
			t.Errorf("out[%d] = %q, want %q", i, out[i].Name, want)
		}
	}
	if l.Len() != 0 {
		t.Error("drain did not empty the log")
	}
	// The ring must keep working after a post-wrap drain.
	l.Add(rec(9))
	if got := l.Drain(); len(got) != 1 || got[0].Name != "q9.example." {
		t.Errorf("post-drain add = %+v", got)
	}
}

func TestQueryLogNoWrapDrain(t *testing.T) {
	l := NewQueryLog(8)
	l.Add(rec(0))
	l.Add(rec(1))
	out := l.Drain()
	if len(out) != 2 || out[0].Name != "q0.example." || out[1].Name != "q1.example." {
		t.Errorf("out = %+v", out)
	}
}

func TestWriteJSONL(t *testing.T) {
	l := NewQueryLog(4)
	l.Add(Record{Name: "a.example.", Type: "A", Rcode: "NOERROR", Path: PathCacheHit, DurUS: 42,
		Hops: []HopRecord{{Layer: "cache", Note: "hit", DurUS: 40}}})
	var b strings.Builder
	if err := l.WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 1 {
		t.Fatalf("lines = %d", len(lines))
	}
	var got Record
	if err := json.Unmarshal([]byte(lines[0]), &got); err != nil {
		t.Fatal(err)
	}
	if got.Name != "a.example." || got.Path != PathCacheHit || len(got.Hops) != 1 || got.Hops[0].Note != "hit" {
		t.Errorf("round-trip = %+v", got)
	}
}

func TestRecordFromSpan(t *testing.T) {
	clk := &vclock.Fixed{}
	sp := NewSpan(clk, "v.cdn.example.", "A")
	end := sp.StartHop("cache")
	clk.Advance(250 * time.Microsecond)
	end("hit")
	sp.End(PathCacheHit)

	now := time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC)
	r := RecordFromSpan(sp, "NOERROR", PathCacheHit, now)
	if r.Name != "v.cdn.example." || r.Type != "A" || r.Rcode != "NOERROR" || r.Path != PathCacheHit {
		t.Errorf("record = %+v", r)
	}
	if r.DurUS != 250 {
		t.Errorf("dur_us = %d", r.DurUS)
	}
	if len(r.Hops) != 1 || r.Hops[0].Layer != "cache" || r.Hops[0].DurUS != 250 {
		t.Errorf("hops = %+v", r.Hops)
	}
	if !r.Time.Equal(now) {
		t.Errorf("time = %v", r.Time)
	}
}
