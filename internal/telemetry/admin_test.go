package telemetry

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func getBody(t *testing.T, ts *httptest.Server, path string) (int, string, http.Header) {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body), resp.Header
}

func TestAdminEndpoints(t *testing.T) {
	reg := NewRegistry()
	c := NewCounter("adm_total", "h")
	c.Add(7)
	reg.MustRegister(c)
	log := NewQueryLog(4)
	log.Add(Record{Name: "q.example.", Type: "A", Rcode: "NOERROR", Path: PathEdge})

	healthy := true
	a := &Admin{Registry: reg, Log: log, Healthy: func() bool { return healthy },
		Health: func() any {
			return map[string]any{"fallback_active": true}
		},
		Routes: func() any {
			return map[string]any{"rows": 3}
		}}
	ts := httptest.NewServer(a.Handler())
	defer ts.Close()

	code, body, hdr := getBody(t, ts, "/metrics")
	if code != http.StatusOK || !strings.Contains(body, "adm_total 7") {
		t.Errorf("/metrics = %d %q", code, body)
	}
	if ct := hdr.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("/metrics content-type = %q", ct)
	}

	code, body, _ = getBody(t, ts, "/healthz")
	if code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Errorf("/healthz = %d %q", code, body)
	}
	healthy = false
	code, body, _ = getBody(t, ts, "/healthz")
	if code != http.StatusServiceUnavailable || !strings.Contains(body, "draining") {
		t.Errorf("/healthz draining = %d %q", code, body)
	}

	code, body, hdr = getBody(t, ts, "/querylog")
	if code != http.StatusOK || !strings.Contains(body, "q.example.") {
		t.Errorf("/querylog = %d %q", code, body)
	}
	if ct := hdr.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("/querylog content-type = %q", ct)
	}
	// Draining endpoint: a second fetch is empty.
	if _, body, _ = getBody(t, ts, "/querylog"); strings.TrimSpace(body) != "" {
		t.Errorf("second /querylog not empty: %q", body)
	}

	code, body, hdr = getBody(t, ts, "/health")
	if code != http.StatusOK || !strings.Contains(body, `"fallback_active": true`) {
		t.Errorf("/health = %d %q", code, body)
	}
	if ct := hdr.Get("Content-Type"); ct != "application/json" {
		t.Errorf("/health content-type = %q", ct)
	}

	code, body, _ = getBody(t, ts, "/routes")
	if code != http.StatusOK || !strings.Contains(body, `"rows": 3`) {
		t.Errorf("/routes = %d %q", code, body)
	}

	code, body, _ = getBody(t, ts, "/debug/pprof/")
	if code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/ = %d", code)
	}
}

func TestAdminNilLogAndRegistry(t *testing.T) {
	a := &Admin{}
	ts := httptest.NewServer(a.Handler())
	defer ts.Close()
	if code, _, _ := getBody(t, ts, "/querylog"); code != http.StatusNotFound {
		t.Errorf("/querylog with nil log = %d, want 404", code)
	}
	if code, _, _ := getBody(t, ts, "/health"); code != http.StatusNotFound {
		t.Errorf("/health with nil snapshot fn = %d, want 404", code)
	}
	if code, _, _ := getBody(t, ts, "/routes"); code != http.StatusNotFound {
		t.Errorf("/routes with nil fn = %d, want 404", code)
	}
	if code, body, _ := getBody(t, ts, "/metrics"); code != http.StatusOK || body != "" {
		t.Errorf("/metrics with nil registry = %d %q", code, body)
	}
}

func TestAdminStartServesAndCloses(t *testing.T) {
	a := &Admin{Addr: "127.0.0.1:0", Registry: NewRegistry()}
	if err := a.Start(); err != nil {
		t.Fatal(err)
	}
	addr := a.LocalAddr()
	if addr == nil {
		t.Fatal("no local addr after Start")
	}
	resp, err := http.Get("http://" + addr.String() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz = %d", resp.StatusCode)
	}
	if err := a.Start(); err == nil {
		t.Error("second Start accepted")
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if a.LocalAddr() != nil {
		t.Error("addr survives Close")
	}
}
