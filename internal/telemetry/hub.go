package telemetry

import (
	"net/netip"
	"sync/atomic"
	"time"

	"github.com/meccdn/meccdn/internal/vclock"
)

// Resolution-path labels, the runtime counterpart of the paper's
// Fig 5 categories: answered from the L-DNS message cache, contained
// at the edge (authoritative zone or collocated C-DNS), escaped to an
// upstream resolver behind the core, or not answered at all.
const (
	PathCacheHit = "cache-hit"
	PathEdge     = "edge"
	PathUpstream = "upstream"
	PathRefused  = "refused"
	PathError    = "error"
)

// Hub ties the per-query instruments together for one server: it
// starts and finishes spans, feeds the serve-duration histogram and
// resolution-path counter, and head-samples finished spans into the
// query log. A nil *Hub is valid and disables all of it.
type Hub struct {
	// Clock times spans and hops. Nil means a wall clock created by
	// NewHub.
	Clock vclock.Clock
	// Registry holds this hub's metric families (and any component
	// collectors the process registers alongside them).
	Registry *Registry
	// Log receives head-sampled query records; nil disables logging.
	Log *QueryLog
	// SampleEvery keeps 1 in N queries for the log (decided at query
	// start — head sampling — so a kept query logs all of its hops).
	// Values <= 1 keep every query.
	SampleEvery int

	// ServeDuration observes every query's span total.
	ServeDuration *Histogram
	// Path counts finished queries by resolution path.
	Path *CounterVec

	n atomic.Uint64
}

// NewHub builds a hub with a fresh registry, a 1024-entry query log,
// and the standard serve-duration and resolution-path families
// registered. clock nil means wall clock.
func NewHub(clock vclock.Clock) *Hub {
	if clock == nil {
		clock = vclock.NewReal()
	}
	h := &Hub{
		Clock:    clock,
		Registry: NewRegistry(),
		Log:      NewQueryLog(0),
		ServeDuration: NewHistogram("meccdn_dns_serve_duration_seconds",
			"Client-observed DNS serve time from packet in to response written."),
		Path: NewCounterVec("meccdn_dns_resolution_path_total",
			"Finished queries by resolution path (cache-hit, edge, upstream, refused, error).", "path"),
	}
	h.Registry.MustRegister(h.ServeDuration, h.Path)
	return h
}

// sampleNext reports whether the next started query should be logged.
func (h *Hub) sampleNext() bool {
	if h.Log == nil {
		return false
	}
	if h.SampleEvery <= 1 {
		return true
	}
	return h.n.Add(1)%uint64(h.SampleEvery) == 1
}

// Begin opens a span for one query and returns it; attach it to the
// request context with ContextWith. Nil-hub safe (returns nil).
func (h *Hub) Begin(name, qtype, transport, client string) *Span {
	if h == nil {
		return nil
	}
	sp := NewSpan(h.Clock, name, qtype)
	sp.transport = transport
	sp.client = client
	sp.sampled = h.sampleNext()
	return sp
}

// BeginAddr is Begin for callers that have the client address as a
// netip.AddrPort: the address is stored as-is and rendered to a string
// only if the query is sampled into the log, so the per-query serve
// path skips the String() allocation entirely.
func (h *Hub) BeginAddr(name, qtype, transport string, client netip.AddrPort) *Span {
	if h == nil {
		return nil
	}
	sp := NewSpan(h.Clock, name, qtype)
	sp.transport = transport
	sp.clientAddr = client
	sp.sampled = h.sampleNext()
	return sp
}

// Finish ends the span with the response rcode, classifies its
// resolution path, feeds the histogram and path counter, and — when
// the span was head-sampled — appends a record to the query log.
// Nil-hub and nil-span safe.
func (h *Hub) Finish(sp *Span, rcode string) {
	if h == nil || sp == nil {
		return
	}
	path := ClassifyPath(sp.Hops(), rcode)
	sp.End(path)
	if h.ServeDuration != nil {
		h.ServeDuration.Observe(sp.Total())
	}
	if h.Path != nil {
		h.Path.Inc1(path)
	}
	if h.Log != nil && sp.Sampled() {
		h.Log.Add(RecordFromSpan(sp, rcode, path, time.Now()))
	}
}

// ClassifyPath maps a span's hops and final rcode onto the Fig 5
// resolution-path categories.
func ClassifyPath(hops []Hop, rcode string) string {
	upstream := false
	for _, hop := range hops {
		switch hop.Layer {
		case "cache":
			if hop.Note == "hit" {
				return PathCacheHit
			}
		case "coalesce":
			// A coalesced waiter shared another query's upstream
			// exchange; classify like its leader.
			upstream = true
		case "upstream":
			upstream = true
		}
	}
	switch {
	case upstream:
		return PathUpstream
	case rcode == "REFUSED":
		return PathRefused
	case rcode == "SERVFAIL":
		return PathError
	default:
		return PathEdge
	}
}
