// Package telemetry is the runtime observability substrate of the
// MEC-CDN stack: a lock-cheap metrics registry with Prometheus text
// exposition, per-query spans propagated through context.Context that
// decompose one resolution into its hops (the live counterpart of the
// paper's Fig 5 wireless-vs-resolver breakdown), and a bounded,
// head-sampled structured query log in the spirit of dnstap.
//
// Everything here is stdlib-only. Hot-path instruments (Counter,
// Gauge, Histogram) are single atomic operations; exposition and log
// draining take locks only on the slow, operator-facing path.
package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Collector is one metric family that can describe itself and render
// its current samples in Prometheus text format. All instruments in
// this package implement it; register the ones a process should
// expose on a Registry.
type Collector interface {
	// MetricName returns the family name, e.g. "meccdn_dns_cache_hits_total".
	MetricName() string
	metricHelp() string
	metricType() string
	writeSamples(b *strings.Builder)
}

// Registry is a named set of metric families. The zero value is not
// usable; call NewRegistry.
type Registry struct {
	mu     sync.RWMutex
	byName map[string]Collector
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]Collector)}
}

// Register adds collectors, rejecting duplicate family names so two
// components cannot silently alias each other's series.
func (r *Registry) Register(cs ...Collector) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, c := range cs {
		name := c.MetricName()
		if _, dup := r.byName[name]; dup {
			return fmt.Errorf("telemetry: duplicate metric %q", name)
		}
		r.byName[name] = c
	}
	return nil
}

// MustRegister is Register that panics on duplicates — misconfigured
// telemetry is a programming error, not a runtime condition.
func (r *Registry) MustRegister(cs ...Collector) {
	if err := r.Register(cs...); err != nil {
		panic(err)
	}
}

// WritePrometheus renders every registered family in Prometheus text
// exposition format (version 0.0.4), sorted by family name so output
// is stable for golden tests and diffable for operators.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.RLock()
	names := make([]string, 0, len(r.byName))
	for n := range r.byName {
		names = append(names, n)
	}
	collectors := make([]Collector, 0, len(names))
	sort.Strings(names)
	for _, n := range names {
		collectors = append(collectors, r.byName[n])
	}
	r.mu.RUnlock()

	var b strings.Builder
	for _, c := range collectors {
		fmt.Fprintf(&b, "# HELP %s %s\n", c.MetricName(), escapeHelp(c.metricHelp()))
		fmt.Fprintf(&b, "# TYPE %s %s\n", c.MetricName(), c.metricType())
		c.writeSamples(&b)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	name, help string
	v          atomic.Uint64
}

// NewCounter returns a counter family with a single unlabelled series.
func NewCounter(name, help string) *Counter {
	return &Counter{name: name, help: help}
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add increments by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// MetricName implements Collector.
func (c *Counter) MetricName() string { return c.name }

func (c *Counter) metricHelp() string { return c.help }
func (c *Counter) metricType() string { return "counter" }
func (c *Counter) writeSamples(b *strings.Builder) {
	b.WriteString(c.name)
	b.WriteByte(' ')
	b.WriteString(strconv.FormatUint(c.v.Load(), 10))
	b.WriteByte('\n')
}

// Gauge is an atomic instantaneous value.
type Gauge struct {
	name, help string
	v          atomic.Int64
}

// NewGauge returns a gauge family with a single unlabelled series.
func NewGauge(name, help string) *Gauge {
	return &Gauge{name: name, help: help}
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add increments by n (negative to decrement).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// MetricName implements Collector.
func (g *Gauge) MetricName() string { return g.name }

func (g *Gauge) metricHelp() string { return g.help }
func (g *Gauge) metricType() string { return "gauge" }
func (g *Gauge) writeSamples(b *strings.Builder) {
	b.WriteString(g.name)
	b.WriteByte(' ')
	b.WriteString(strconv.FormatInt(g.v.Load(), 10))
	b.WriteByte('\n')
}

// FuncMetric adapts a snapshot function into a collector, for values
// that live in existing structures (cache entry counts, route table
// sizes) and are only materialized at exposition time.
type FuncMetric struct {
	name, help, typ string
	fn              func() float64
}

// NewGaugeFunc returns a gauge family whose value is fn at scrape time.
func NewGaugeFunc(name, help string, fn func() float64) *FuncMetric {
	return &FuncMetric{name: name, help: help, typ: "gauge", fn: fn}
}

// NewCounterFunc returns a counter family whose value is fn at scrape
// time; fn must be monotonic.
func NewCounterFunc(name, help string, fn func() float64) *FuncMetric {
	return &FuncMetric{name: name, help: help, typ: "counter", fn: fn}
}

// MetricName implements Collector.
func (f *FuncMetric) MetricName() string { return f.name }

func (f *FuncMetric) metricHelp() string { return f.help }
func (f *FuncMetric) metricType() string { return f.typ }
func (f *FuncMetric) writeSamples(b *strings.Builder) {
	b.WriteString(f.name)
	b.WriteByte(' ')
	b.WriteString(formatFloat(f.fn()))
	b.WriteByte('\n')
}

// CounterVec is a counter family partitioned by label values, e.g.
// queries by qtype or responses by rcode. Children are created on
// first use and live forever (label cardinality here is protocol
// enums, not user input).
type CounterVec struct {
	name, help string
	labels     []string
	mu         sync.RWMutex
	children   map[string]*vecChild
}

type vecChild struct {
	values []string
	v      atomic.Uint64
}

// NewCounterVec returns a labelled counter family.
func NewCounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{
		name:     name,
		help:     help,
		labels:   labels,
		children: make(map[string]*vecChild),
	}
}

func vecKey(values []string) string { return strings.Join(values, "\x1f") }

func (v *CounterVec) child(values []string) *vecChild {
	if len(values) != len(v.labels) {
		panic(fmt.Sprintf("telemetry: %s wants %d label values, got %d", v.name, len(v.labels), len(values)))
	}
	key := vecKey(values)
	v.mu.RLock()
	ch := v.children[key]
	v.mu.RUnlock()
	if ch != nil {
		return ch
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if ch = v.children[key]; ch == nil {
		ch = &vecChild{values: append([]string(nil), values...)}
		v.children[key] = ch
	}
	return ch
}

// Inc adds one to the series for the given label values.
func (v *CounterVec) Inc(values ...string) { v.child(values).v.Add(1) }

// Add increments the series for the given label values by n.
func (v *CounterVec) Add(n uint64, values ...string) { v.child(values).v.Add(n) }

// Inc1 is Inc for single-label families. The variadic Inc builds a
// []string per call; on the per-packet path (queries by qtype,
// responses by rcode) that is one heap allocation per packet, so the
// serve loop uses this form, which looks the child up by the bare
// value and allocates only on first use of a new series.
func (v *CounterVec) Inc1(value string) { v.child1(value).v.Add(1) }

// child1 is child for single-label families: the map key of a
// one-element label set is the bare value (strings.Join of one
// element), so the common lookup needs no slice and no join.
func (v *CounterVec) child1(value string) *vecChild {
	v.mu.RLock()
	ch := v.children[value]
	v.mu.RUnlock()
	if ch != nil {
		return ch
	}
	return v.child([]string{value})
}

// Value returns the count for the given label values (0 if the series
// was never incremented).
func (v *CounterVec) Value(values ...string) uint64 {
	v.mu.RLock()
	defer v.mu.RUnlock()
	if ch := v.children[vecKey(values)]; ch != nil {
		return ch.v.Load()
	}
	return 0
}

// Sum returns the total across all series.
func (v *CounterVec) Sum() uint64 {
	v.mu.RLock()
	defer v.mu.RUnlock()
	var total uint64
	for _, ch := range v.children {
		total += ch.v.Load()
	}
	return total
}

// Snapshot returns the current series as a map keyed by the joined
// label values (single-label vecs key by the bare value).
func (v *CounterVec) Snapshot() map[string]uint64 {
	v.mu.RLock()
	defer v.mu.RUnlock()
	out := make(map[string]uint64, len(v.children))
	for _, ch := range v.children {
		out[strings.Join(ch.values, ",")] = ch.v.Load()
	}
	return out
}

// MetricName implements Collector.
func (v *CounterVec) MetricName() string { return v.name }

func (v *CounterVec) metricHelp() string { return v.help }
func (v *CounterVec) metricType() string { return "counter" }
func (v *CounterVec) writeSamples(b *strings.Builder) {
	v.mu.RLock()
	keys := make([]string, 0, len(v.children))
	for k := range v.children {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		ch := v.children[k]
		b.WriteString(v.name)
		b.WriteByte('{')
		for i, lbl := range v.labels {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(lbl)
			b.WriteString(`="`)
			b.WriteString(escapeLabel(ch.values[i]))
			b.WriteByte('"')
		}
		b.WriteString("} ")
		b.WriteString(strconv.FormatUint(ch.v.Load(), 10))
		b.WriteByte('\n')
	}
	v.mu.RUnlock()
}

// GaugeVec is a gauge family partitioned by label values, e.g.
// health targets by state. Children are created on first use and live
// forever, like CounterVec.
type GaugeVec struct {
	name, help string
	labels     []string
	mu         sync.RWMutex
	children   map[string]*gaugeChild
}

type gaugeChild struct {
	values []string
	v      atomic.Int64
}

// NewGaugeVec returns a labelled gauge family.
func NewGaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{
		name:     name,
		help:     help,
		labels:   labels,
		children: make(map[string]*gaugeChild),
	}
}

func (v *GaugeVec) child(values []string) *gaugeChild {
	if len(values) != len(v.labels) {
		panic(fmt.Sprintf("telemetry: %s wants %d label values, got %d", v.name, len(v.labels), len(values)))
	}
	key := vecKey(values)
	v.mu.RLock()
	ch := v.children[key]
	v.mu.RUnlock()
	if ch != nil {
		return ch
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if ch = v.children[key]; ch == nil {
		ch = &gaugeChild{values: append([]string(nil), values...)}
		v.children[key] = ch
	}
	return ch
}

// Set stores n in the series for the given label values.
func (v *GaugeVec) Set(n int64, values ...string) { v.child(values).v.Store(n) }

// Add increments the series for the given label values by n (negative
// to decrement).
func (v *GaugeVec) Add(n int64, values ...string) { v.child(values).v.Add(n) }

// Value returns the gauge for the given label values (0 if the series
// was never touched).
func (v *GaugeVec) Value(values ...string) int64 {
	v.mu.RLock()
	defer v.mu.RUnlock()
	if ch := v.children[vecKey(values)]; ch != nil {
		return ch.v.Load()
	}
	return 0
}

// Snapshot returns the current series as a map keyed by the joined
// label values (single-label vecs key by the bare value).
func (v *GaugeVec) Snapshot() map[string]int64 {
	v.mu.RLock()
	defer v.mu.RUnlock()
	out := make(map[string]int64, len(v.children))
	for _, ch := range v.children {
		out[strings.Join(ch.values, ",")] = ch.v.Load()
	}
	return out
}

// MetricName implements Collector.
func (v *GaugeVec) MetricName() string { return v.name }

func (v *GaugeVec) metricHelp() string { return v.help }
func (v *GaugeVec) metricType() string { return "gauge" }
func (v *GaugeVec) writeSamples(b *strings.Builder) {
	v.mu.RLock()
	keys := make([]string, 0, len(v.children))
	for k := range v.children {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		ch := v.children[k]
		b.WriteString(v.name)
		b.WriteByte('{')
		for i, lbl := range v.labels {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(lbl)
			b.WriteString(`="`)
			b.WriteString(escapeLabel(ch.values[i]))
			b.WriteByte('"')
		}
		b.WriteString("} ")
		b.WriteString(strconv.FormatInt(ch.v.Load(), 10))
		b.WriteByte('\n')
	}
	v.mu.RUnlock()
}

// DefBuckets are the default latency histogram bounds: 100µs to 5s,
// spanning an edge cache hit (~sub-millisecond) through a WAN
// recursive resolution (~hundreds of ms) to a timed-out upstream.
var DefBuckets = []time.Duration{
	100 * time.Microsecond, 250 * time.Microsecond, 500 * time.Microsecond,
	time.Millisecond, 2500 * time.Microsecond, 5 * time.Millisecond,
	10 * time.Millisecond, 25 * time.Millisecond, 50 * time.Millisecond,
	100 * time.Millisecond, 250 * time.Millisecond, 500 * time.Millisecond,
	time.Second, 2500 * time.Millisecond, 5 * time.Second,
}

// Histogram is a fixed-bucket latency histogram. Observations are two
// atomic adds; there is no lock and no allocation on the hot path.
// Exposition follows the Prometheus convention: cumulative buckets
// with le bounds in seconds, plus _sum and _count series.
type Histogram struct {
	name, help string
	bounds     []time.Duration
	counts     []atomic.Uint64 // len(bounds)+1; last is +Inf
	sum        atomic.Int64    // nanoseconds
}

// NewHistogram returns a histogram with the given ascending upper
// bounds; nil bounds means DefBuckets.
func NewHistogram(name, help string, bounds ...time.Duration) *Histogram {
	if len(bounds) == 0 {
		bounds = DefBuckets
	}
	return &Histogram{
		name:   name,
		help:   help,
		bounds: bounds,
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	i := 0
	for i < len(h.bounds) && d > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sum.Add(int64(d))
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	var total uint64
	for i := range h.counts {
		total += h.counts[i].Load()
	}
	return total
}

// Sum returns the total observed duration.
func (h *Histogram) Sum() time.Duration { return time.Duration(h.sum.Load()) }

// MetricName implements Collector.
func (h *Histogram) MetricName() string { return h.name }

func (h *Histogram) metricHelp() string { return h.help }
func (h *Histogram) metricType() string { return "histogram" }
func (h *Histogram) writeSamples(b *strings.Builder) {
	var cum uint64
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(b, "%s_bucket{le=\"%s\"} %d\n", h.name, formatFloat(bound.Seconds()), cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	fmt.Fprintf(b, "%s_bucket{le=\"+Inf\"} %d\n", h.name, cum)
	fmt.Fprintf(b, "%s_sum %s\n", h.name, formatFloat(h.Sum().Seconds()))
	fmt.Fprintf(b, "%s_count %d\n", h.name, cum)
}

func formatFloat(f float64) string { return strconv.FormatFloat(f, 'g', -1, 64) }
