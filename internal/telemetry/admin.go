package telemetry

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"
)

// Admin serves the operator plane over HTTP on its own listener,
// separate from the DNS sockets:
//
//	/metrics        Prometheus text exposition of Registry
//	/healthz        readiness probe (503 while draining)
//	/health         health-registry snapshot as JSON (404 if unwired)
//	/routes         subnet→PoP routing-table summary as JSON (404 if unwired)
//	/mesh           federated-mesh peer view as JSON (404 if unwired)
//	/reload         POST: online config/zone reload (404 if unwired)
//	/querylog       drains the sampled query log as JSON lines
//	/debug/pprof/   the standard Go profiling handlers
type Admin struct {
	// Addr is the listen address, e.g. "127.0.0.1:8053" or ":0".
	Addr string
	// Registry backs /metrics; nil serves an empty exposition.
	Registry *Registry
	// Log backs /querylog; nil returns 404.
	Log *QueryLog
	// Healthy gates /healthz; nil means always ready. Wire it to the
	// DNS server's drain state so load balancers stop sending traffic
	// during graceful shutdown.
	Healthy func() bool
	// Health backs /health with a JSON-serializable snapshot; nil
	// returns 404. Wire it to a health.Registry's Snapshot so
	// operators can read target states and the watermark switch.
	Health func() any
	// Routes backs /routes with a JSON-serializable summary of the
	// subnet→PoP routing table; nil returns 404.
	Routes func() any
	// Mesh backs /mesh with a JSON-serializable snapshot of the
	// federated-mesh peer view (generations, digest sizes, eligibility);
	// nil returns 404.
	Mesh func() any
	// Reload backs POST /reload: re-parse configuration files and swap
	// the serving snapshots in place (the SIGHUP path over HTTP); nil
	// returns 404. GET is rejected — reloading mutates state.
	Reload func() error

	mu  sync.Mutex
	ln  net.Listener
	srv *http.Server
}

// Handler returns the admin mux; exported so tests and embedders can
// serve it without a socket.
func (a *Admin) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if a.Registry != nil {
			_ = a.Registry.WritePrometheus(w)
		}
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		if a.Healthy != nil && !a.Healthy() {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/health", func(w http.ResponseWriter, r *http.Request) {
		if a.Health == nil {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(a.Health())
	})
	mux.HandleFunc("/routes", func(w http.ResponseWriter, r *http.Request) {
		if a.Routes == nil {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(a.Routes())
	})
	mux.HandleFunc("/mesh", func(w http.ResponseWriter, r *http.Request) {
		if a.Mesh == nil {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(a.Mesh())
	})
	mux.HandleFunc("/reload", func(w http.ResponseWriter, r *http.Request) {
		if a.Reload == nil {
			http.NotFound(w, r)
			return
		}
		if r.Method != http.MethodPost {
			http.Error(w, "POST required", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		if err := a.Reload(); err != nil {
			w.WriteHeader(http.StatusInternalServerError)
			_ = json.NewEncoder(w).Encode(map[string]string{"status": "error", "error": err.Error()})
			return
		}
		_ = json.NewEncoder(w).Encode(map[string]string{"status": "ok"})
	})
	mux.HandleFunc("/querylog", func(w http.ResponseWriter, r *http.Request) {
		if a.Log == nil {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		_ = a.Log.WriteJSONL(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Start binds the listener and serves in a background goroutine.
func (a *Admin) Start() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.ln != nil {
		return errors.New("telemetry: admin already started")
	}
	ln, err := net.Listen("tcp", a.Addr)
	if err != nil {
		return fmt.Errorf("telemetry: admin listen %q: %w", a.Addr, err)
	}
	a.ln = ln
	a.srv = &http.Server{Handler: a.Handler(), ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = a.srv.Serve(ln) }()
	return nil
}

// LocalAddr returns the bound address; valid after Start.
func (a *Admin) LocalAddr() net.Addr {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.ln == nil {
		return nil
	}
	return a.ln.Addr()
}

// Close stops the admin server.
func (a *Admin) Close() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.srv == nil {
		return nil
	}
	err := a.srv.Close()
	a.srv, a.ln = nil, nil
	return err
}
