package telemetry

import (
	"strconv"
	"strings"
	"sync/atomic"
)

// Sharded instruments spread one logical counter across per-worker
// cache-line-padded cells. A plain Counter is a single atomic word;
// when every packet of every worker increments it, the cores spend
// their time bouncing that cache line instead of serving queries. A
// sharded instrument gives each worker its own cell (padded so two
// cells never share a line) and only sums them on the slow,
// operator-facing scrape path.
//
// The per-cell pad is 128 bytes, two typical cache lines, to defeat
// the adjacent-line prefetcher pairing lines on x86.

const cellPad = 128

// CounterCell is one worker's slice of a ShardedCounter. Only its
// owning worker should write it; any goroutine may read it.
type CounterCell struct {
	v atomic.Uint64
	_ [cellPad - 8]byte
}

// Inc adds one.
func (c *CounterCell) Inc() { c.v.Add(1) }

// Add increments by n.
func (c *CounterCell) Add(n uint64) { c.v.Add(n) }

// Value returns this cell's count.
func (c *CounterCell) Value() uint64 { return c.v.Load() }

// ShardedCounter is a monotonic counter family whose increments land
// on per-worker cells and whose exposed value is their sum.
type ShardedCounter struct {
	name, help string
	cells      []CounterCell
}

// NewShardedCounter returns a sharded counter with one cell per
// shard; shards < 1 is treated as 1.
func NewShardedCounter(name, help string, shards int) *ShardedCounter {
	if shards < 1 {
		shards = 1
	}
	return &ShardedCounter{name: name, help: help, cells: make([]CounterCell, shards)}
}

// Shard returns cell i (modulo the shard count), for the owning
// worker to cache and increment without indexing per packet.
func (c *ShardedCounter) Shard(i int) *CounterCell {
	return &c.cells[i%len(c.cells)]
}

// Shards returns the number of cells.
func (c *ShardedCounter) Shards() int { return len(c.cells) }

// Value returns the sum across all cells. Each cell is read with one
// atomic load, so the sum is a consistent-enough snapshot for metrics
// (exact once the writers have quiesced).
func (c *ShardedCounter) Value() uint64 {
	var total uint64
	for i := range c.cells {
		total += c.cells[i].v.Load()
	}
	return total
}

// MetricName implements Collector.
func (c *ShardedCounter) MetricName() string { return c.name }

func (c *ShardedCounter) metricHelp() string { return c.help }
func (c *ShardedCounter) metricType() string { return "counter" }
func (c *ShardedCounter) writeSamples(b *strings.Builder) {
	b.WriteString(c.name)
	b.WriteByte(' ')
	b.WriteString(strconv.FormatUint(c.Value(), 10))
	b.WriteByte('\n')
}

// GaugeCell is one worker's slice of a ShardedGauge.
type GaugeCell struct {
	v atomic.Int64
	_ [cellPad - 8]byte
}

// Set stores v.
func (g *GaugeCell) Set(v int64) { g.v.Store(v) }

// Add increments by n (negative to decrement).
func (g *GaugeCell) Add(n int64) { g.v.Add(n) }

// Value returns this cell's value.
func (g *GaugeCell) Value() int64 { return g.v.Load() }

// ShardedGauge is an instantaneous value summed across per-worker
// cells — e.g. "workers busy" as each worker's own 0/1 flag.
type ShardedGauge struct {
	name, help string
	cells      []GaugeCell
}

// NewShardedGauge returns a sharded gauge with one cell per shard;
// shards < 1 is treated as 1.
func NewShardedGauge(name, help string, shards int) *ShardedGauge {
	if shards < 1 {
		shards = 1
	}
	return &ShardedGauge{name: name, help: help, cells: make([]GaugeCell, shards)}
}

// Shard returns cell i (modulo the shard count).
func (g *ShardedGauge) Shard(i int) *GaugeCell {
	return &g.cells[i%len(g.cells)]
}

// Shards returns the number of cells.
func (g *ShardedGauge) Shards() int { return len(g.cells) }

// Value returns the sum across all cells.
func (g *ShardedGauge) Value() int64 {
	var total int64
	for i := range g.cells {
		total += g.cells[i].v.Load()
	}
	return total
}

// MetricName implements Collector.
func (g *ShardedGauge) MetricName() string { return g.name }

func (g *ShardedGauge) metricHelp() string { return g.help }
func (g *ShardedGauge) metricType() string { return "gauge" }
func (g *ShardedGauge) writeSamples(b *strings.Builder) {
	b.WriteString(g.name)
	b.WriteByte(' ')
	b.WriteString(strconv.FormatInt(g.Value(), 10))
	b.WriteByte('\n')
}
