package telemetry

import (
	"context"
	"sync"
	"testing"
	"time"

	"github.com/meccdn/meccdn/internal/vclock"
)

func ms(n int) time.Duration { return time.Duration(n) * time.Millisecond }

// TestBreakdownNested drives a deterministic virtual-clock span shaped
// like a forwarded resolution — a forward hop containing two upstream
// exchanges — and checks exclusive-time attribution plus the invariant
// that breakdown entries sum exactly to Total.
func TestBreakdownNested(t *testing.T) {
	clk := &vclock.Fixed{}
	sp := NewSpan(clk, "q.example.", "A")

	clk.Advance(ms(1))
	endForward := sp.StartHop("forward")

	clk.Advance(ms(1)) // t=2
	endUp1 := sp.StartHop("upstream")
	clk.Advance(ms(3)) // t=5
	endUp1("10.0.0.1:53")

	clk.Advance(ms(1)) // t=6
	endUp2 := sp.StartHop("upstream")
	clk.Advance(ms(2)) // t=8
	endUp2("10.0.0.2:53")

	clk.Advance(ms(1)) // t=9
	endForward("10.0.0.2:53")

	clk.Advance(ms(1)) // t=10
	sp.End("upstream")

	if sp.Total() != ms(10) {
		t.Fatalf("total = %v, want 10ms", sp.Total())
	}
	got := map[string]time.Duration{}
	var sum time.Duration
	for _, e := range sp.Breakdown() {
		got[e.Layer] = e.Dur
		sum += e.Dur
	}
	if sum != sp.Total() {
		t.Errorf("breakdown sums to %v, want Total %v", sum, sp.Total())
	}
	// forward: 8ms interval minus 5ms of contained upstream exchanges.
	if got["forward"] != ms(3) {
		t.Errorf("forward self-time = %v, want 3ms", got["forward"])
	}
	if got["upstream"] != ms(5) {
		t.Errorf("upstream self-time = %v, want 5ms", got["upstream"])
	}
	// 1ms before the forward hop + 1ms after it.
	if got["other"] != ms(2) {
		t.Errorf("other = %v, want 2ms", got["other"])
	}
}

// TestBreakdownIdenticalIntervals: two hops with the same [start, end]
// must not both be charged as top-level (double counting) — one nests
// inside the other.
func TestBreakdownIdenticalIntervals(t *testing.T) {
	clk := &vclock.Fixed{}
	sp := NewSpan(clk, "q.example.", "A")
	end1 := sp.StartHop("cache")
	end2 := sp.StartHop("coalesce")
	clk.Advance(ms(4))
	end1("miss")
	end2("shared")
	clk.Advance(ms(1))
	sp.End("upstream")

	var sum time.Duration
	for _, e := range sp.Breakdown() {
		sum += e.Dur
	}
	if sum != sp.Total() {
		t.Errorf("identical intervals double-counted: sum %v, total %v", sum, sp.Total())
	}
}

func TestSpanEndIdempotent(t *testing.T) {
	clk := &vclock.Fixed{}
	sp := NewSpan(clk, "q.", "A")
	clk.Advance(ms(2))
	sp.End("edge")
	clk.Advance(ms(7))
	sp.End("error")
	if sp.Total() != ms(2) {
		t.Errorf("total moved after second End: %v", sp.Total())
	}
	if sp.Outcome() != "edge" {
		t.Errorf("outcome overwritten: %q", sp.Outcome())
	}
}

// TestNilSpanSafe: every method must be a no-op on a nil span, and the
// context helpers must tolerate a context with no span — the plugin
// chain runs un-instrumented (simnet, tests) with exactly that.
func TestNilSpanSafe(t *testing.T) {
	var sp *Span
	sp.StartHop("cache")("hit")
	sp.Annotate("x", "y")
	sp.End("done")
	if sp.Total() != 0 || sp.Hops() != nil || sp.Outcome() != "" || sp.Sampled() {
		t.Error("nil span leaked state")
	}
	if sp.Breakdown() != nil {
		t.Error("nil span breakdown not nil")
	}

	ctx := context.Background()
	StartHop(ctx, "cache")("hit")
	Annotate(ctx, "x", "y")
	if FromContext(ctx) != nil {
		t.Error("empty context carried a span")
	}
}

func TestContextRoundTrip(t *testing.T) {
	sp := NewSpan(&vclock.Fixed{}, "q.", "A")
	ctx := ContextWith(context.Background(), sp)
	if FromContext(ctx) != sp {
		t.Error("span lost in context")
	}
	end := StartHop(ctx, "zone")
	end("example.org.")
	if hops := sp.Hops(); len(hops) != 1 || hops[0].Layer != "zone" || hops[0].Note != "example.org." {
		t.Errorf("hops = %+v", sp.Hops())
	}
}

// TestSpanConcurrentHops mirrors hedged forwarding: multiple goroutines
// appending hops to one span; run with -race.
func TestSpanConcurrentHops(t *testing.T) {
	sp := NewSpan(nil, "q.", "A")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				sp.StartHop("upstream")("addr")
				sp.Annotate("note", "x")
				_ = sp.Breakdown()
			}
		}()
	}
	wg.Wait()
	sp.End("upstream")
	if len(sp.Hops()) != 8*100*2 {
		t.Errorf("hops = %d, want %d", len(sp.Hops()), 8*100*2)
	}
}
