package telemetry

import (
	"context"
	"net/netip"
	"sort"
	"sync"
	"time"

	"github.com/meccdn/meccdn/internal/vclock"
)

// Span is one query's hop-by-hop timing record, the runtime analogue
// of the paper's Fig 5 decomposition: it tells you whether a
// resolution was answered from the L-DNS cache, contained at the edge
// (zone / C-DNS chain), or escaped to an upstream resolver — and how
// long each layer took.
//
// A span is created at the socket layer when a query arrives,
// propagated through the plugin chain via context.Context, annotated
// by each layer it crosses, and ended when the response is written.
// All methods are nil-safe so instrumentation points need no guards:
// a query served without telemetry carries a nil span and every
// annotation is a no-op.
type Span struct {
	clock vclock.Clock

	// Immutable query identity, set at creation. client holds the
	// rendered address when the span was begun with Begin; spans begun
	// with BeginAddr store clientAddr instead and render it only when a
	// sampled query reaches the log, keeping the unsampled fast path
	// free of the String() allocation.
	name, qtype, transport, client string
	clientAddr                     netip.AddrPort
	sampled                        bool

	start time.Duration

	mu      sync.Mutex
	hops    []Hop
	outcome string
	end     time.Duration
	ended   bool

	// hopsBuf is the initial backing array for hops. Real resolutions
	// cross a handful of layers, so recording hops usually never
	// allocates beyond the span itself.
	hopsBuf [8]Hop
}

// Client renders the span's client address.
func (s *Span) Client() string {
	if s == nil {
		return ""
	}
	if s.client != "" || !s.clientAddr.IsValid() {
		return s.client
	}
	return s.clientAddr.String()
}

// Hop is one timed crossing of an instrumented layer. Start is an
// offset from the span's start; zero-duration hops are point
// annotations (e.g. a stub-domain match).
type Hop struct {
	// Layer names the instrumented component: "cache", "coalesce",
	// "zone", "stub", "forward", "upstream", "cdn-router", ...
	Layer string
	// Note qualifies the crossing: "hit", "miss", an upstream address,
	// a selected cache server.
	Note  string
	Start time.Duration
	Dur   time.Duration
}

type spanKey struct{}

// NewSpan starts a span for one query using clock (nil means a wall
// clock anchored now).
func NewSpan(clock vclock.Clock, name, qtype string) *Span {
	if clock == nil {
		clock = vclock.NewReal()
	}
	return &Span{clock: clock, name: name, qtype: qtype, start: clock.Now()}
}

// ContextWith returns ctx carrying sp.
func ContextWith(ctx context.Context, sp *Span) context.Context {
	return context.WithValue(ctx, spanKey{}, sp)
}

// FromContext returns the span carried by ctx, or nil.
func FromContext(ctx context.Context) *Span {
	sp, _ := ctx.Value(spanKey{}).(*Span)
	return sp
}

// StartHop opens a timed hop on the span and returns the function
// that closes it with a note. Safe on a nil span (returns a no-op).
func (s *Span) StartHop(layer string) func(note string) {
	if s == nil {
		return func(string) {}
	}
	begin := s.clock.Now()
	return func(note string) {
		end := s.clock.Now()
		s.mu.Lock()
		if s.hops == nil {
			s.hops = s.hopsBuf[:0]
		}
		s.hops = append(s.hops, Hop{
			Layer: layer,
			Note:  note,
			Start: begin - s.start,
			Dur:   end - begin,
		})
		s.mu.Unlock()
	}
}

// Annotate records a zero-duration point hop. Safe on a nil span.
func (s *Span) Annotate(layer, note string) {
	if s == nil {
		return
	}
	now := s.clock.Now()
	s.mu.Lock()
	if s.hops == nil {
		s.hops = s.hopsBuf[:0]
	}
	s.hops = append(s.hops, Hop{Layer: layer, Note: note, Start: now - s.start})
	s.mu.Unlock()
}

// End closes the span with an outcome; only the first End takes
// effect. Safe on a nil span.
func (s *Span) End(outcome string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if !s.ended {
		s.ended = true
		s.end = s.clock.Now()
		s.outcome = outcome
	}
	s.mu.Unlock()
}

// Total returns the span duration: end−start once ended, elapsed so
// far otherwise. Zero on a nil span.
func (s *Span) Total() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ended {
		return s.end - s.start
	}
	return s.clock.Now() - s.start
}

// Hops returns a copy of the recorded hops in completion order.
func (s *Span) Hops() []Hop {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Hop(nil), s.hops...)
}

// Outcome returns the outcome passed to End.
func (s *Span) Outcome() string {
	if s == nil {
		return ""
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.outcome
}

// Name returns the query name the span was started for.
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Type returns the query type label.
func (s *Span) Type() string {
	if s == nil {
		return ""
	}
	return s.qtype
}

// Sampled reports whether this span was head-sampled into the query
// log by the Hub that created it.
func (s *Span) Sampled() bool { return s != nil && s.sampled }

// BreakdownEntry is one layer's exclusive (self) time within a span.
type BreakdownEntry struct {
	Layer string
	Dur   time.Duration
}

// Breakdown attributes the span's total duration across layers by
// exclusive time: each hop is charged its own duration minus the
// durations of hops nested inside it (a forward hop contains its
// upstream exchanges; the difference is forwarding overhead). Time
// covered by no hop is returned under the layer "other", so the
// entries always sum exactly to Total — the invariant the
// observability tests pin down.
func (s *Span) Breakdown() []BreakdownEntry {
	if s == nil {
		return nil
	}
	total := s.Total()
	hops := s.Hops()
	sort.Slice(hops, func(i, j int) bool {
		if hops[i].Start != hops[j].Start {
			return hops[i].Start < hops[j].Start
		}
		return hops[i].Dur > hops[j].Dur
	})

	// For each hop, find its direct parent: the smallest interval that
	// fully contains it. Hop counts are single digits, so O(n²) is fine.
	self := make(map[string]time.Duration)
	var topCovered time.Duration
	for i, h := range hops {
		parent := -1
		for j, p := range hops {
			if j == i {
				continue
			}
			if p.Start <= h.Start && p.Start+p.Dur >= h.Start+h.Dur &&
				!(p.Start == h.Start && p.Dur == h.Dur && j > i) {
				if parent == -1 || p.Dur < hops[parent].Dur {
					parent = j
				}
			}
		}
		if parent == -1 {
			topCovered += h.Dur
		} else {
			self[hops[parent].Layer] -= h.Dur
		}
		self[h.Layer] += h.Dur
	}

	layers := make([]string, 0, len(self))
	for l := range self {
		layers = append(layers, l)
	}
	sort.Strings(layers)
	out := make([]BreakdownEntry, 0, len(layers)+1)
	for _, l := range layers {
		out = append(out, BreakdownEntry{Layer: l, Dur: self[l]})
	}
	if rest := total - topCovered; rest != 0 {
		out = append(out, BreakdownEntry{Layer: "other", Dur: rest})
	}
	return out
}

// StartHop opens a timed hop on the span carried by ctx; a no-op
// closer is returned when ctx carries none.
func StartHop(ctx context.Context, layer string) func(note string) {
	return FromContext(ctx).StartHop(layer)
}

// Annotate records a point hop on the span carried by ctx, if any.
func Annotate(ctx context.Context, layer, note string) {
	FromContext(ctx).Annotate(layer, note)
}
