package telemetry

import (
	"testing"
	"time"

	"github.com/meccdn/meccdn/internal/vclock"
)

func TestClassifyPath(t *testing.T) {
	cases := []struct {
		name  string
		hops  []Hop
		rcode string
		want  string
	}{
		{"cache hit", []Hop{{Layer: "cache", Note: "hit"}}, "NOERROR", PathCacheHit},
		{"zone answer", []Hop{{Layer: "cache", Note: "miss"}, {Layer: "zone", Note: "x."}}, "NOERROR", PathEdge},
		{"cdn answer", []Hop{{Layer: "cache", Note: "miss"}, {Layer: "cdn-router", Note: "edge-0"}}, "NOERROR", PathEdge},
		{"forwarded", []Hop{{Layer: "cache", Note: "miss"}, {Layer: "forward"}, {Layer: "upstream", Note: "a"}}, "NOERROR", PathUpstream},
		{"coalesced", []Hop{{Layer: "cache", Note: "miss"}, {Layer: "coalesce", Note: "shared"}}, "NOERROR", PathUpstream},
		{"refused", nil, "REFUSED", PathRefused},
		{"servfail", []Hop{{Layer: "cache", Note: "miss"}}, "SERVFAIL", PathError},
	}
	for _, c := range cases {
		if got := ClassifyPath(c.hops, c.rcode); got != c.want {
			t.Errorf("%s: ClassifyPath = %q, want %q", c.name, got, c.want)
		}
	}
}

func TestHubFinishFeedsInstrumentsAndLog(t *testing.T) {
	clk := &vclock.Fixed{}
	h := NewHub(clk)
	h.SampleEvery = 1

	sp := h.Begin("q.example.", "A", "udp", "127.0.0.1:9999")
	end := sp.StartHop("cache")
	clk.Advance(time.Millisecond)
	end("hit")
	h.Finish(sp, "NOERROR")

	if h.ServeDuration.Count() != 1 || h.ServeDuration.Sum() != time.Millisecond {
		t.Errorf("histogram = %d obs / %v", h.ServeDuration.Count(), h.ServeDuration.Sum())
	}
	if h.Path.Value(PathCacheHit) != 1 {
		t.Errorf("path counts = %v", h.Path.Snapshot())
	}
	recs := h.Log.Drain()
	if len(recs) != 1 || recs[0].Path != PathCacheHit || recs[0].Client != "127.0.0.1:9999" || recs[0].Transport != "udp" {
		t.Errorf("log = %+v", recs)
	}
	if sp.Outcome() != PathCacheHit {
		t.Errorf("outcome = %q", sp.Outcome())
	}
}

func TestHubHeadSampling(t *testing.T) {
	h := NewHub(&vclock.Fixed{})
	h.SampleEvery = 4
	sampled := 0
	for i := 0; i < 40; i++ {
		sp := h.Begin("q.", "A", "udp", "c")
		if sp.Sampled() {
			sampled++
		}
		h.Finish(sp, "NOERROR")
	}
	if sampled != 10 {
		t.Errorf("sampled %d of 40 with SampleEvery=4, want 10", sampled)
	}
	if got := h.Log.Len(); got != 10 {
		t.Errorf("log kept %d records, want 10", got)
	}
	if h.Path.Sum() != 40 {
		t.Errorf("path counter saw %d, want all 40", h.Path.Sum())
	}
}

func TestNilHubSafe(t *testing.T) {
	var h *Hub
	sp := h.Begin("q.", "A", "udp", "c")
	if sp != nil {
		t.Error("nil hub returned a span")
	}
	h.Finish(sp, "NOERROR") // must not panic
}
