package telemetry

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// HopRecord is one span hop rendered for the query log.
type HopRecord struct {
	Layer   string `json:"layer"`
	Note    string `json:"note,omitempty"`
	StartUS int64  `json:"start_us"`
	DurUS   int64  `json:"dur_us"`
}

// Record is one sampled query in the structured log: a dnstap-style
// line carrying the query identity, its outcome, and the hop
// decomposition of where its latency went.
type Record struct {
	Time      time.Time   `json:"time"`
	Name      string      `json:"name"`
	Type      string      `json:"type"`
	Client    string      `json:"client,omitempty"`
	Transport string      `json:"transport,omitempty"`
	Rcode     string      `json:"rcode"`
	Path      string      `json:"path"`
	DurUS     int64       `json:"dur_us"`
	Hops      []HopRecord `json:"hops,omitempty"`
}

// QueryLog is a bounded ring of sampled query records. Writers never
// block and never allocate beyond the record itself: once the ring is
// full, the oldest record is overwritten and counted as dropped.
// Draining (the admin /querylog endpoint) empties the ring.
type QueryLog struct {
	mu      sync.Mutex
	ring    []Record
	next    int
	full    bool
	added   uint64
	dropped uint64
}

// NewQueryLog returns a log retaining up to capacity records
// (capacity <= 0 means 1024).
func NewQueryLog(capacity int) *QueryLog {
	if capacity <= 0 {
		capacity = 1024
	}
	return &QueryLog{ring: make([]Record, 0, capacity)}
}

// Add appends one record, overwriting the oldest when full.
func (l *QueryLog) Add(rec Record) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.added++
	if len(l.ring) < cap(l.ring) {
		l.ring = append(l.ring, rec)
		return
	}
	l.full = true
	l.dropped++
	l.ring[l.next] = rec
	l.next = (l.next + 1) % cap(l.ring)
}

// Len returns the number of retained records.
func (l *QueryLog) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.ring)
}

// Stats returns how many records were ever added and how many were
// overwritten before being drained.
func (l *QueryLog) Stats() (added, dropped uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.added, l.dropped
}

// Drain returns the retained records oldest-first and empties the log.
func (l *QueryLog) Drain() []Record {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Record, 0, len(l.ring))
	if l.full {
		out = append(out, l.ring[l.next:]...)
		out = append(out, l.ring[:l.next]...)
	} else {
		out = append(out, l.ring...)
	}
	l.ring = l.ring[:0]
	l.next = 0
	l.full = false
	return out
}

// WriteJSONL drains the log and writes one JSON object per line.
func (l *QueryLog) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, rec := range l.Drain() {
		if err := enc.Encode(rec); err != nil {
			return err
		}
	}
	return nil
}

// RecordFromSpan renders an ended span (plus its response rcode and
// classified path) into a log record stamped with the wall time now.
func RecordFromSpan(sp *Span, rcode, path string, now time.Time) Record {
	rec := Record{
		Time:      now,
		Name:      sp.Name(),
		Type:      sp.Type(),
		Client:    sp.Client(),
		Transport: sp.transport,
		Rcode:     rcode,
		Path:      path,
		DurUS:     sp.Total().Microseconds(),
	}
	for _, h := range sp.Hops() {
		rec.Hops = append(rec.Hops, HopRecord{
			Layer:   h.Layer,
			Note:    h.Note,
			StartUS: h.Start.Microseconds(),
			DurUS:   h.Dur.Microseconds(),
		})
	}
	return rec
}
