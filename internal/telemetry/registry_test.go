package telemetry

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// TestPrometheusExpositionGolden pins the exact text exposition: HELP
// and TYPE lines, sorted families, labelled series, and the cumulative
// histogram with le bounds in seconds.
func TestPrometheusExpositionGolden(t *testing.T) {
	reg := NewRegistry()

	c := NewCounter("test_requests_total", "Requests handled.")
	c.Add(3)

	g := NewGauge("test_inflight", "In-flight requests.")
	g.Set(2)

	f := NewGaugeFunc("test_entries", "Entries right now.", func() float64 { return 7 })

	v := NewCounterVec("test_responses_total", "Responses by rcode.", "rcode")
	v.Inc("NOERROR")
	v.Inc("NOERROR")
	v.Inc("SERVFAIL")

	h := NewHistogram("test_latency_seconds", "Latency.", 10*time.Millisecond, 100*time.Millisecond)
	h.Observe(5 * time.Millisecond)
	h.Observe(50 * time.Millisecond)
	h.Observe(time.Second)

	reg.MustRegister(c, g, f, v, h)

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP test_entries Entries right now.
# TYPE test_entries gauge
test_entries 7
# HELP test_inflight In-flight requests.
# TYPE test_inflight gauge
test_inflight 2
# HELP test_latency_seconds Latency.
# TYPE test_latency_seconds histogram
test_latency_seconds_bucket{le="0.01"} 1
test_latency_seconds_bucket{le="0.1"} 2
test_latency_seconds_bucket{le="+Inf"} 3
test_latency_seconds_sum 1.055
test_latency_seconds_count 3
# HELP test_requests_total Requests handled.
# TYPE test_requests_total counter
test_requests_total 3
# HELP test_responses_total Responses by rcode.
# TYPE test_responses_total counter
test_responses_total{rcode="NOERROR"} 2
test_responses_total{rcode="SERVFAIL"} 1
`
	if got := b.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestRegistryRejectsDuplicates(t *testing.T) {
	reg := NewRegistry()
	if err := reg.Register(NewCounter("dup_total", "a")); err != nil {
		t.Fatal(err)
	}
	if err := reg.Register(NewCounter("dup_total", "b")); err == nil {
		t.Error("duplicate family name accepted")
	}
}

func TestEscaping(t *testing.T) {
	reg := NewRegistry()
	v := NewCounterVec("esc_total", "line one\nline two", "who")
	v.Inc(`quo"te\slash`)
	reg.MustRegister(v)
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, `line one\nline two`) {
		t.Errorf("help not escaped: %q", out)
	}
	if !strings.Contains(out, `who="quo\"te\\slash"`) {
		t.Errorf("label not escaped: %q", out)
	}
}

func TestCounterVecValueSumSnapshot(t *testing.T) {
	v := NewCounterVec("vec_total", "h", "a")
	v.Add(5, "x")
	v.Inc("y")
	if v.Value("x") != 5 || v.Value("y") != 1 || v.Value("z") != 0 {
		t.Errorf("values = %d/%d/%d", v.Value("x"), v.Value("y"), v.Value("z"))
	}
	if v.Sum() != 6 {
		t.Errorf("sum = %d", v.Sum())
	}
	snap := v.Snapshot()
	if snap["x"] != 5 || snap["y"] != 1 || len(snap) != 2 {
		t.Errorf("snapshot = %v", snap)
	}
}

func TestGaugeVecSetAddSnapshot(t *testing.T) {
	v := NewGaugeVec("gvec", "h", "state")
	v.Set(3, "healthy")
	v.Add(2, "healthy")
	v.Add(1, "down")
	v.Add(-1, "down")
	if v.Value("healthy") != 5 || v.Value("down") != 0 || v.Value("never") != 0 {
		t.Errorf("values = %d/%d/%d", v.Value("healthy"), v.Value("down"), v.Value("never"))
	}
	snap := v.Snapshot()
	if snap["healthy"] != 5 || snap["down"] != 0 || len(snap) != 2 {
		t.Errorf("snapshot = %v", snap)
	}
	reg := NewRegistry()
	reg.MustRegister(v)
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE gvec gauge",
		`gvec{state="healthy"} 5`,
		`gvec{state="down"} 0`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestHistogramBucketing(t *testing.T) {
	h := NewHistogram("hb_seconds", "h") // DefBuckets
	h.Observe(50 * time.Microsecond)     // first bucket
	h.Observe(10 * time.Second)          // +Inf
	if h.Count() != 2 {
		t.Errorf("count = %d", h.Count())
	}
	if h.Sum() != 10*time.Second+50*time.Microsecond {
		t.Errorf("sum = %v", h.Sum())
	}
}

// TestRegistryConcurrent hammers every instrument type from parallel
// goroutines while the exposition path scrapes; run with -race.
func TestRegistryConcurrent(t *testing.T) {
	reg := NewRegistry()
	c := NewCounter("conc_total", "h")
	g := NewGauge("conc_gauge", "h")
	v := NewCounterVec("conc_vec_total", "h", "l")
	h := NewHistogram("conc_seconds", "h")
	reg.MustRegister(c, g, v, h)

	const workers, iters = 8, 500
	var wg sync.WaitGroup
	labels := []string{"a", "b", "c"}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				c.Inc()
				g.Add(1)
				v.Inc(labels[i%len(labels)])
				h.Observe(time.Duration(i) * time.Microsecond)
				if i%100 == 0 {
					var b strings.Builder
					_ = reg.WritePrometheus(&b)
				}
			}
		}(w)
	}
	wg.Wait()

	if c.Value() != workers*iters {
		t.Errorf("counter = %d, want %d", c.Value(), workers*iters)
	}
	if v.Sum() != workers*iters {
		t.Errorf("vec sum = %d, want %d", v.Sum(), workers*iters)
	}
	if h.Count() != workers*iters {
		t.Errorf("histogram count = %d, want %d", h.Count(), workers*iters)
	}
}
