package telemetry

import (
	"strings"
	"sync"
	"testing"
	"unsafe"
)

func TestShardedCounterExactSum(t *testing.T) {
	const workers, perWorker = 8, 10000
	c := NewShardedCounter("test_sharded_total", "help", workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			cell := c.Shard(id)
			for j := 0; j < perWorker; j++ {
				cell.Inc()
			}
		}(i)
	}
	wg.Wait()
	if got, want := c.Value(), uint64(workers*perWorker); got != want {
		t.Fatalf("Value() = %d, want %d", got, want)
	}
}

func TestShardedCounterShardModulo(t *testing.T) {
	c := NewShardedCounter("test_mod_total", "help", 4)
	if c.Shard(0) != c.Shard(4) {
		t.Fatal("Shard(0) and Shard(4) should be the same cell")
	}
	if c.Shard(1) == c.Shard(2) {
		t.Fatal("distinct shards should not alias")
	}
	c.Shard(2).Add(3)
	if got := c.Value(); got != 3 {
		t.Fatalf("Value() = %d, want 3", got)
	}
}

func TestShardedGaugeSum(t *testing.T) {
	g := NewShardedGauge("test_busy", "help", 3)
	g.Shard(0).Set(1)
	g.Shard(1).Set(1)
	g.Shard(2).Add(1)
	g.Shard(2).Add(-1)
	if got := g.Value(); got != 2 {
		t.Fatalf("Value() = %d, want 2", got)
	}
}

func TestShardedCellsArePadded(t *testing.T) {
	// Each cell must occupy at least a cache line (we pad to two) so
	// two workers' cells never false-share.
	if sz := unsafe.Sizeof(CounterCell{}); sz < 64 || sz%64 != 0 {
		t.Fatalf("CounterCell is %d bytes; want a multiple of 64, at least 64", sz)
	}
	if sz := unsafe.Sizeof(GaugeCell{}); sz < 64 || sz%64 != 0 {
		t.Fatalf("GaugeCell is %d bytes; want a multiple of 64, at least 64", sz)
	}
	c := NewShardedCounter("test_pad_total", "help", 2)
	d := uintptr(unsafe.Pointer(c.Shard(1))) - uintptr(unsafe.Pointer(c.Shard(0)))
	if d < 64 {
		t.Fatalf("adjacent cells are %d bytes apart; want >= 64", d)
	}
}

func TestShardedExposition(t *testing.T) {
	reg := NewRegistry()
	c := NewShardedCounter("test_exp_total", "a sharded counter", 4)
	g := NewShardedGauge("test_exp_busy", "a sharded gauge", 4)
	reg.MustRegister(c, g)
	c.Shard(0).Inc()
	c.Shard(3).Add(2)
	g.Shard(1).Set(5)
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE test_exp_total counter", "test_exp_total 3",
		"# TYPE test_exp_busy gauge", "test_exp_busy 5",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestCounterVecInc1(t *testing.T) {
	v := NewCounterVec("test_vec_total", "help", "qtype")
	v.Inc1("A")
	v.Inc1("A")
	v.Inc("AAAA") // variadic and fast path must share children
	v.Inc1("AAAA")
	if got := v.Value("A"); got != 2 {
		t.Fatalf(`Value("A") = %d, want 2`, got)
	}
	if got := v.Value("AAAA"); got != 2 {
		t.Fatalf(`Value("AAAA") = %d, want 2`, got)
	}
	if got := v.Sum(); got != 4 {
		t.Fatalf("Sum() = %d, want 4", got)
	}
}

func TestCounterVecInc1NoAlloc(t *testing.T) {
	v := NewCounterVec("test_vec_alloc_total", "help", "qtype")
	v.Inc1("A") // create the child outside the measured loop
	allocs := testing.AllocsPerRun(1000, func() { v.Inc1("A") })
	if allocs != 0 {
		t.Fatalf("Inc1 allocates %.1f per call, want 0", allocs)
	}
}
