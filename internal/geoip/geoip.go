// Package geoip is a CIDR-to-location database with deliberately
// imperfect accuracy, modelling the GeoIP lookups CDN routers use to
// localize clients. The paper's §1 notes that CDN servers see the
// public gateway's IP rather than the end client's, and that GeoIP
// placement of those gateways has limited accuracy — both effects are
// reproducible here: register the gateway prefix at the gateway's
// location (not the client's) and set Accuracy below 1.
package geoip

import (
	"fmt"
	"math"
	"math/rand"
	"net/netip"
	"sort"
	"sync"
)

// Location is a point on a simple 2-D plane (units are arbitrary
// "map kilometres"); good enough for nearest-site comparisons.
type Location struct {
	X, Y float64
	// Name labels the location in output (e.g. "atlanta-campus").
	Name string
}

// DistanceTo returns the Euclidean distance between two locations.
func (l Location) DistanceTo(o Location) float64 {
	dx, dy := l.X-o.X, l.Y-o.Y
	return math.Sqrt(dx*dx + dy*dy)
}

// String returns the location's label or coordinates.
func (l Location) String() string {
	if l.Name != "" {
		return l.Name
	}
	return fmt.Sprintf("(%.1f,%.1f)", l.X, l.Y)
}

// DB maps address prefixes to locations.
type DB struct {
	// Accuracy in [0,1] is the probability a lookup returns the true
	// registered location; misses return a location perturbed by up
	// to MaxError. 1 (or an unset rng) means always exact.
	Accuracy float64
	// MaxError is the perturbation radius for inaccurate lookups.
	// Zero means 500 map-km.
	MaxError float64

	mu      sync.RWMutex
	entries []entry // sorted by prefix bits, most specific first
	rng     *rand.Rand
}

type entry struct {
	prefix netip.Prefix
	loc    Location
}

// New returns an empty, fully accurate database.
func New() *DB { return &DB{Accuracy: 1} }

// SetRand installs the RNG used for inaccuracy simulation.
func (db *DB) SetRand(rng *rand.Rand) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.rng = rng
}

// Register maps a prefix to a location. More-specific prefixes win on
// lookup, matching real GeoIP feed behaviour.
func (db *DB) Register(prefix netip.Prefix, loc Location) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.entries = append(db.entries, entry{prefix: prefix.Masked(), loc: loc})
	sort.SliceStable(db.entries, func(i, j int) bool {
		return db.entries[i].prefix.Bits() > db.entries[j].prefix.Bits()
	})
}

// Lookup returns the location registered for the longest prefix
// containing addr. The second result reports whether any prefix
// matched. With Accuracy < 1, the returned location may be perturbed.
func (db *DB) Lookup(addr netip.Addr) (Location, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	for _, e := range db.entries {
		if e.prefix.Contains(addr) {
			return db.maybePerturb(e.loc), true
		}
	}
	return Location{}, false
}

func (db *DB) maybePerturb(loc Location) Location {
	if db.Accuracy >= 1 || db.rng == nil || db.rng.Float64() < db.Accuracy {
		return loc
	}
	maxErr := db.MaxError
	if maxErr == 0 {
		maxErr = 500
	}
	angle := db.rng.Float64() * 2 * math.Pi
	dist := db.rng.Float64() * maxErr
	return Location{
		X:    loc.X + dist*math.Cos(angle),
		Y:    loc.Y + dist*math.Sin(angle),
		Name: loc.Name + "~",
	}
}

// Len returns the number of registered prefixes.
func (db *DB) Len() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return len(db.entries)
}
