package geoip

import (
	"math/rand"
	"net/netip"
	"testing"
)

func TestLookupLongestPrefix(t *testing.T) {
	db := New()
	db.Register(netip.MustParsePrefix("10.0.0.0/8"), Location{X: 1, Name: "broad"})
	db.Register(netip.MustParsePrefix("10.1.0.0/16"), Location{X: 2, Name: "narrow"})
	loc, ok := db.Lookup(netip.MustParseAddr("10.1.2.3"))
	if !ok || loc.Name != "narrow" {
		t.Errorf("lookup = %v %v", loc, ok)
	}
	loc, ok = db.Lookup(netip.MustParseAddr("10.200.0.1"))
	if !ok || loc.Name != "broad" {
		t.Errorf("lookup = %v %v", loc, ok)
	}
	if _, ok := db.Lookup(netip.MustParseAddr("192.0.2.1")); ok {
		t.Error("unregistered address located")
	}
	if db.Len() != 2 {
		t.Errorf("len = %d", db.Len())
	}
}

func TestAccuracyPerturbation(t *testing.T) {
	db := New()
	db.Accuracy = 0 // never exact
	db.MaxError = 100
	db.SetRand(rand.New(rand.NewSource(1)))
	true_ := Location{X: 50, Y: 50, Name: "gw"}
	db.Register(netip.MustParsePrefix("203.0.113.0/24"), true_)
	perturbed := 0
	for i := 0; i < 100; i++ {
		loc, ok := db.Lookup(netip.MustParseAddr("203.0.113.9"))
		if !ok {
			t.Fatal("lookup failed")
		}
		if d := loc.DistanceTo(true_); d > 0 {
			perturbed++
			if d > 100.0001 {
				t.Fatalf("perturbation %v exceeds MaxError", d)
			}
		}
	}
	if perturbed < 90 {
		t.Errorf("only %d/100 lookups perturbed with Accuracy=0", perturbed)
	}
}

func TestFullAccuracyExact(t *testing.T) {
	db := New()
	db.SetRand(rand.New(rand.NewSource(2)))
	want := Location{X: 10, Y: 20, Name: "exact"}
	db.Register(netip.MustParsePrefix("198.51.100.0/24"), want)
	for i := 0; i < 50; i++ {
		loc, _ := db.Lookup(netip.MustParseAddr("198.51.100.77"))
		if loc != want {
			t.Fatalf("accurate lookup perturbed: %v", loc)
		}
	}
}

func TestDistanceAndString(t *testing.T) {
	a := Location{X: 0, Y: 0}
	b := Location{X: 3, Y: 4}
	if d := a.DistanceTo(b); d != 5 {
		t.Errorf("distance = %v", d)
	}
	if (Location{Name: "atl"}).String() != "atl" {
		t.Error("named location string")
	}
	if (Location{X: 1.5, Y: 2.5}).String() != "(1.5,2.5)" {
		t.Errorf("coordinate string = %s", Location{X: 1.5, Y: 2.5}.String())
	}
}
