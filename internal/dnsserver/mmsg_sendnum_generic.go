//go:build linux && (arm64 || riscv64 || loong64)

package dnsserver

// sendmmsg on the asm-generic syscall table (arm64, riscv64, loong64).
const sendmmsgTrap uintptr = 269
