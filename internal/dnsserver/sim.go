package dnsserver

import (
	"context"
	"net/netip"
	"time"

	"github.com/meccdn/meccdn/internal/dnswire"
	"github.com/meccdn/meccdn/internal/simnet"
)

// Attach installs handler h as the DNS service of a simnet node.
// Every delivered datagram is parsed as a DNS message, resolved
// through the plugin chain (which may itself issue nested upstream
// exchanges in virtual time), and answered after a processing delay
// drawn from proc (nil means zero processing time).
//
// The server is modelled as a single-server queue: each query
// occupies the processor for its drawn processing time, and arrivals
// during that window wait their turn. Under light load the queueing
// delay is zero; under an ingress flood (the X5 experiment) response
// latency inflates, which is exactly why the paper's orchestrator
// monitors ingress and sheds to the provider L-DNS.
func Attach(node *simnet.Node, h Handler, proc simnet.Sampler) {
	var busyUntil time.Duration
	node.SetHandler(simnet.HandlerFunc(func(ctx *simnet.Ctx, dg simnet.Datagram) {
		msg := new(dnswire.Message)
		if err := msg.Unpack(dg.Payload); err != nil {
			return // not DNS; drop
		}
		req := &Request{
			Msg:       msg,
			Client:    netip.AddrPortFrom(dg.Client(), 0),
			Transport: "sim",
		}
		resp := Resolve(context.Background(), h, req)
		wire, err := resp.Pack()
		if err != nil {
			return
		}
		var procTime time.Duration
		if proc != nil {
			procTime = proc.Sample(ctx.Network().Rand())
		}
		now := ctx.Now()
		start := now
		if busyUntil > start {
			start = busyUntil // wait behind queued work
		}
		busyUntil = start + procTime
		ctx.Reply(wire, busyUntil-now)
	}))
}
