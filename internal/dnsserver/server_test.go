package dnsserver

import (
	"context"
	"math/rand"
	"net/netip"
	"testing"
	"time"

	"github.com/meccdn/meccdn/internal/dnsclient"
	"github.com/meccdn/meccdn/internal/dnswire"
	"github.com/meccdn/meccdn/internal/simnet"
)

// startTestServer runs a real UDP/TCP server on a loopback ephemeral
// port for integration tests.
func startTestServer(t *testing.T, h Handler) netip.AddrPort {
	t.Helper()
	srv := &Server{Addr: "127.0.0.1:0", Handler: h}
	if err := srv.Start(); err != nil {
		t.Fatalf("starting server: %v", err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv.LocalAddr()
}

func realClient() *dnsclient.Client {
	c := &dnsclient.Client{Transport: &dnsclient.NetTransport{}, Timeout: 2 * time.Second}
	c.SetRand(rand.New(rand.NewSource(99)))
	return c
}

func TestServerOverRealUDP(t *testing.T) {
	z := NewZone("live.test.")
	if err := z.AddA("www.live.test.", 60, netip.MustParseAddr("192.0.2.44")); err != nil {
		t.Fatal(err)
	}
	addr := startTestServer(t, Chain(NewZonePlugin(z)))

	resp, err := realClient().Query(context.Background(), addr, "www.live.test.", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Answers) != 1 || resp.Answers[0].(*dnswire.A).Addr.String() != "192.0.2.44" {
		t.Errorf("answers = %v", resp.Answers)
	}
	if !resp.Authoritative {
		t.Error("AA not set")
	}
}

func TestServerTruncatesLargeUDPAndTCPRecovers(t *testing.T) {
	z := NewZone("big.test.")
	for i := 0; i < 120; i++ {
		if err := z.AddA("many.big.test.", 60,
			netip.AddrFrom4([4]byte{10, 1, byte(i >> 8), byte(i)})); err != nil {
			t.Fatal(err)
		}
	}
	addr := startTestServer(t, Chain(NewZonePlugin(z)))

	// Client without EDNS: UDP response must be ≤512 and truncated;
	// automatic TCP fallback must then return the full set.
	resp, err := realClient().Query(context.Background(), addr, "many.big.test.", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Answers) != 120 {
		t.Errorf("TCP fallback returned %d answers, want 120", len(resp.Answers))
	}

	// With fallback disabled we must see the truncated UDP response.
	c := realClient()
	c.DisableTCPFallback = true
	resp, err = c.Query(context.Background(), addr, "many.big.test.", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Truncated {
		t.Error("UDP response not truncated")
	}
	if len(resp.Answers) >= 120 {
		t.Error("UDP response was not actually reduced")
	}
}

func TestServerHonoursEDNSSize(t *testing.T) {
	z := NewZone("edns.test.")
	for i := 0; i < 60; i++ {
		if err := z.AddA("many.edns.test.", 60,
			netip.AddrFrom4([4]byte{10, 2, byte(i >> 8), byte(i)})); err != nil {
			t.Fatal(err)
		}
	}
	addr := startTestServer(t, Chain(NewZonePlugin(z)))
	c := realClient()
	c.UDPSize = 4096
	c.DisableTCPFallback = true
	resp, err := c.Query(context.Background(), addr, "many.edns.test.", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Truncated {
		t.Error("response truncated despite 4096-byte EDNS advertisement")
	}
	if len(resp.Answers) != 60 {
		t.Errorf("answers = %d", len(resp.Answers))
	}
}

func TestServerDoubleStartAndClose(t *testing.T) {
	srv := &Server{Addr: "127.0.0.1:0", Handler: Chain()}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err == nil {
		t.Error("second Start succeeded")
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
}

func TestServerNilHandler(t *testing.T) {
	srv := &Server{Addr: "127.0.0.1:0"}
	if err := srv.Start(); err == nil {
		srv.Close()
		t.Fatal("Start accepted nil handler")
	}
}

func TestAttachServesOverSimnet(t *testing.T) {
	z := NewZone("sim.test.")
	if err := z.AddA("host.sim.test.", 60, netip.MustParseAddr("10.0.0.5")); err != nil {
		t.Fatal(err)
	}
	n := simnet.New(50)
	n.AddNode("client")
	n.AddNode("server")
	n.AddLink("client", "server", simnet.Constant(4*time.Millisecond), 0)
	Attach(n.Node("server"), Chain(NewZonePlugin(z)), simnet.Constant(2*time.Millisecond))

	c := &dnsclient.Client{Transport: &dnsclient.SimTransport{Endpoint: n.Node("client").Endpoint()}}
	c.SetRand(rand.New(rand.NewSource(51)))
	start := n.Now()
	resp, err := c.Query(context.Background(),
		netip.AddrPortFrom(n.Node("server").Addr, 53), "host.sim.test.", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Answers) != 1 {
		t.Fatalf("answers = %d", len(resp.Answers))
	}
	if rtt := n.Now() - start; rtt != 10*time.Millisecond {
		t.Errorf("virtual rtt = %v, want 10ms (4+2+4)", rtt)
	}
}

func TestAttachIgnoresGarbage(t *testing.T) {
	n := simnet.New(52)
	n.AddNode("a")
	n.AddNode("b")
	n.AddLink("a", "b", simnet.Constant(time.Millisecond), 0)
	Attach(n.Node("b"), Chain(), nil)
	_, _, err := n.Node("a").Endpoint().Exchange(n.Node("b").Addr, []byte("not dns"), 10*time.Millisecond)
	if err == nil {
		t.Error("garbage got a reply")
	}
}

// TestAttachQueuesConcurrentQueries models a server flood: two
// queries arriving back to back are serialized by the single-server
// queue, so the second one's response is delayed by the first's
// processing time.
func TestAttachQueuesConcurrentQueries(t *testing.T) {
	n := simnet.New(60)
	n.AddNode("a")
	n.AddNode("b")
	n.AddNode("server")
	n.AddLink("a", "server", simnet.Constant(time.Millisecond), 0)
	n.AddLink("b", "server", simnet.Constant(time.Millisecond), 0)
	z := NewZone("q.test.")
	if err := z.AddA("www.q.test.", 60, netip.MustParseAddr("192.0.2.1")); err != nil {
		t.Fatal(err)
	}
	Attach(n.Node("server"), Chain(NewZonePlugin(z)), simnet.Constant(10*time.Millisecond))

	q := new(dnswire.Message)
	q.SetQuestion("www.q.test.", dnswire.TypeA)
	wire, err := q.Pack()
	if err != nil {
		t.Fatal(err)
	}
	// Fire both datagrams at t=0, then drain the event queue and
	// observe the reply arrival times at each sender.
	var tA, tB time.Duration
	n.Node("a").Tap(func(ev simnet.HopEvent) {
		if ev.Kind == simnet.HopDeliver {
			tA = ev.Time
		}
	})
	n.Node("b").Tap(func(ev simnet.HopEvent) {
		if ev.Kind == simnet.HopDeliver {
			tB = ev.Time
		}
	})
	if err := n.Node("a").Endpoint().SendAsync(n.Node("server").Addr, wire); err != nil {
		t.Fatal(err)
	}
	if err := n.Node("b").Endpoint().SendAsync(n.Node("server").Addr, wire); err != nil {
		t.Fatal(err)
	}
	n.Clock.Run()
	// First reply: 1ms + 10ms + 1ms = 12ms. Second: queued behind the
	// first, so 1ms + (10+10)ms + 1ms = 22ms.
	first, second := tA, tB
	if first > second {
		first, second = second, first
	}
	if first != 12*time.Millisecond {
		t.Errorf("first reply at %v, want 12ms", first)
	}
	if second != 22*time.Millisecond {
		t.Errorf("second reply at %v, want 22ms (queued)", second)
	}
}

// TestRecursiveForwardingTopology wires ue → L-DNS (cache+forward) →
// A-DNS over simnet, the minimal version of the paper's Figure 1 flow,
// and verifies both the resolution result and the cache's latency
// effect on the second query.
func TestRecursiveForwardingTopology(t *testing.T) {
	n := simnet.New(53)
	n.AddNode("ue")
	n.AddNode("ldns")
	n.AddNode("adns")
	n.AddLink("ue", "ldns", simnet.Constant(10*time.Millisecond), 0)
	n.AddLink("ldns", "adns", simnet.Constant(40*time.Millisecond), 0)

	z := NewZone("cdn.example.")
	if err := z.AddA("img.cdn.example.", 300, netip.MustParseAddr("198.51.100.10")); err != nil {
		t.Fatal(err)
	}
	Attach(n.Node("adns"), Chain(NewZonePlugin(z)), simnet.Constant(time.Millisecond))

	upClient := &dnsclient.Client{Transport: &dnsclient.SimTransport{Endpoint: n.Node("ldns").Endpoint()}}
	upClient.SetRand(rand.New(rand.NewSource(54)))
	cache := NewCache(n.Clock)
	fwd := &Forward{Upstreams: []netip.AddrPort{netip.AddrPortFrom(n.Node("adns").Addr, 53)}, Client: upClient}
	Attach(n.Node("ldns"), Chain(cache, fwd), simnet.Constant(time.Millisecond))

	ueClient := &dnsclient.Client{Transport: &dnsclient.SimTransport{Endpoint: n.Node("ue").Endpoint()}}
	ueClient.SetRand(rand.New(rand.NewSource(55)))
	adns := netip.AddrPortFrom(n.Node("ldns").Addr, 53)

	start := n.Now()
	resp, err := ueClient.Query(context.Background(), adns, "img.cdn.example.", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	coldRTT := n.Now() - start
	if len(resp.Answers) != 1 {
		t.Fatalf("cold answers = %d", len(resp.Answers))
	}
	// 10 + (40 + 1 + 40) + 1 + 10 = 102ms.
	if coldRTT != 102*time.Millisecond {
		t.Errorf("cold rtt = %v, want 102ms", coldRTT)
	}

	start = n.Now()
	if _, err = ueClient.Query(context.Background(), adns, "img.cdn.example.", dnswire.TypeA); err != nil {
		t.Fatal(err)
	}
	warmRTT := n.Now() - start
	// 10 + 1 + 10 = 21ms: the hierarchical lookup is gone.
	if warmRTT != 21*time.Millisecond {
		t.Errorf("warm rtt = %v, want 21ms", warmRTT)
	}
	if s := cache.Stats(); s.Hits != 1 || s.Misses != 1 {
		t.Errorf("cache stats = %+v", s)
	}
}
