package dnsserver

import (
	"context"
	"errors"
	"fmt"
	"net/netip"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/meccdn/meccdn/internal/dnsclient"
	"github.com/meccdn/meccdn/internal/dnswire"
	"github.com/meccdn/meccdn/internal/health"
	"github.com/meccdn/meccdn/internal/telemetry"
	"github.com/meccdn/meccdn/internal/vclock"
)

// ForwardStats is a snapshot of the forwarding counters.
type ForwardStats struct {
	// Queries counts forwarded queries.
	Queries uint64
	// Failovers counts answers obtained from an upstream other than
	// the first one tried (after a transport error, SERVFAIL, or
	// REFUSED from an earlier upstream).
	Failovers uint64
	// Skipped counts times an upstream was demoted because it was in
	// its failure cooldown window.
	Skipped uint64
	// Hedged counts queries for which a hedged second exchange was
	// launched; HedgeWins counts those the hedge answered first.
	Hedged, HedgeWins uint64
}

// upstreamEntry tracks one upstream's consecutive failures and the
// cooldown deadline it must sit out after tripping the threshold.
// Both fields are atomics so exchanges record outcomes without a
// lock; the entry itself is carried across upstream-set rebuilds so
// health survives reconfiguration.
type upstreamEntry struct {
	addr      netip.AddrPort
	fails     atomic.Int32
	downUntil atomic.Int64 // vclock nanoseconds; 0 = not cooling
}

// upstreamSet is the immutable, atomically published view of the
// forwarder's upstream list: the configured order, the per-upstream
// health cells, and the resolved clock. Readers load it once per
// query; it is rebuilt (preserving health state) only when the
// Upstreams or Clock fields change.
type upstreamSet struct {
	addrs   []netip.AddrPort
	entries []*upstreamEntry
	index   map[netip.AddrPort]*upstreamEntry
	// clockSrc is the Forward.Clock value this set was built from
	// (possibly nil); clock is the resolved, never-nil clock.
	clockSrc vclock.Clock
	clock    vclock.Clock
}

// Forward sends queries to one or more upstream resolvers, trying
// each in order until one answers usably. It is the "forward ." of
// the provider L-DNS and the upstream leg of the MEC DNS fallback
// path.
//
// Robustness features:
//
//   - Failover treats SERVFAIL and REFUSED like transport errors: the
//     next upstream is tried rather than relaying the failure. When
//     every upstream fails, the last upstream response (if any) is
//     relayed so the client sees the real upstream verdict.
//   - Per-upstream health: FailureThreshold consecutive failures put
//     an upstream into a Cooldown window (with exponential backoff)
//     during which it is tried only as a last resort. Health state
//     lives in atomic cells inside an RCU-published upstream set, so
//     candidate ordering and outcome recording never take a lock on
//     the serve path.
//   - Hedging: when HedgeDelay > 0 and a second upstream is
//     available, a second exchange is launched after the delay and
//     the first usable answer wins — trading a duplicate upstream
//     query for tail latency, per the classic tied-request technique.
type Forward struct {
	// Upstreams are tried in order.
	Upstreams []netip.AddrPort
	// Client performs the exchanges; required.
	Client *dnsclient.Client
	// Match, when non-empty, limits forwarding to names under this
	// domain; others fall through to the next plugin.
	Match string
	// Clock supplies time for health cooldown accounting. Nil means a
	// wall clock (initialized on first use). Use the simnet clock in
	// experiments so cooldowns run in virtual time.
	Clock vclock.Clock
	// FailureThreshold is the number of consecutive failures that
	// puts an upstream into cooldown; 0 means 3.
	FailureThreshold int
	// Cooldown is the base sit-out window for a tripped upstream;
	// 0 means 5s. Repeated failures back off exponentially up to
	// 64× the base.
	Cooldown time.Duration
	// HedgeDelay, when > 0, launches a second exchange against the
	// next upstream after this delay and takes the first usable
	// answer. The delay runs on the wall clock, so hedging is only
	// meaningful on live servers; leave it zero under simnet.
	HedgeDelay time.Duration
	// Health, when set, reorders non-cooling upstreams by the probe
	// registry's verdict before each query: healthy upstreams first,
	// then unknown, degraded, probing, down — ties broken by EWMA
	// probe latency, equal keys kept in configured order. Targets are
	// looked up by their AddrPort string. This layers the active
	// control plane over the forwarder's own reactive (per-exchange)
	// cooldown tracking; neither replaces the other.
	Health *health.Registry

	ups atomic.Pointer[upstreamSet]
	// wmu serializes upstream-set rebuilds; the serve path never
	// takes it once the set matches the configured upstreams.
	wmu sync.Mutex

	ctrOnce sync.Once
	ctr     forwardCounters
}

// forwardCounters are the forwarding counters as lock-free telemetry
// instruments (replacing the old mutex-guarded stats struct, which
// contended with the health map on every query).
type forwardCounters struct {
	queries, failovers, skipped, hedged, hedgeWins *telemetry.Counter
}

// counters lazily builds the instruments, so Forward keeps working as
// a plain struct literal.
func (f *Forward) counters() *forwardCounters {
	f.ctrOnce.Do(func() {
		f.ctr = forwardCounters{
			queries:   telemetry.NewCounter("meccdn_dns_forward_queries_total", "Queries sent to upstream resolvers."),
			failovers: telemetry.NewCounter("meccdn_dns_forward_failovers_total", "Answers obtained from an upstream other than the first tried."),
			skipped:   telemetry.NewCounter("meccdn_dns_forward_skipped_total", "Upstream demotions due to an active failure cooldown."),
			hedged:    telemetry.NewCounter("meccdn_dns_forward_hedged_total", "Queries for which a hedged second exchange was launched."),
			hedgeWins: telemetry.NewCounter("meccdn_dns_forward_hedge_wins_total", "Hedged exchanges the second upstream answered first."),
		}
	})
	return &f.ctr
}

// Collectors returns the forwarder's metric families for registration
// on a telemetry.Registry.
func (f *Forward) Collectors() []telemetry.Collector {
	c := f.counters()
	return []telemetry.Collector{c.queries, c.failovers, c.skipped, c.hedged, c.hedgeWins}
}

// Name implements Plugin.
func (f *Forward) Name() string { return "forward" }

// Stats returns a snapshot of the forwarding counters.
func (f *Forward) Stats() ForwardStats {
	c := f.counters()
	return ForwardStats{
		Queries:   c.queries.Value(),
		Failovers: c.failovers.Value(),
		Skipped:   c.skipped.Value(),
		Hedged:    c.hedged.Value(),
		HedgeWins: c.hedgeWins.Value(),
	}
}

// set returns the published upstream set, rebuilding it first if the
// Upstreams or Clock fields changed since the last build. The common
// case — configuration unchanged — is one atomic load plus a short
// slice comparison, no lock.
func (f *Forward) set() *upstreamSet {
	s := f.ups.Load()
	if s != nil && s.clockSrc == f.Clock && equalAddrPorts(s.addrs, f.Upstreams) {
		return s
	}
	f.wmu.Lock()
	defer f.wmu.Unlock()
	s = f.ups.Load()
	if s != nil && s.clockSrc == f.Clock && equalAddrPorts(s.addrs, f.Upstreams) {
		return s
	}
	clock := f.Clock
	if clock == nil {
		clock = vclock.NewReal()
	}
	next := &upstreamSet{
		addrs:    append([]netip.AddrPort(nil), f.Upstreams...),
		entries:  make([]*upstreamEntry, 0, len(f.Upstreams)),
		index:    make(map[netip.AddrPort]*upstreamEntry, len(f.Upstreams)),
		clockSrc: f.Clock,
		clock:    clock,
	}
	for _, up := range next.addrs {
		var e *upstreamEntry
		if s != nil {
			e = s.index[up] // carry health across rebuilds
		}
		if e == nil {
			e = &upstreamEntry{addr: up}
		}
		next.entries = append(next.entries, e)
		next.index[up] = e
	}
	f.ups.Store(next)
	return next
}

// equalAddrPorts reports whether two upstream lists are identical in
// content and order.
func equalAddrPorts(a, b []netip.AddrPort) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// failoverRcode reports whether rcode should trigger a try of the
// next upstream rather than being relayed.
func failoverRcode(rc dnswire.Rcode) bool {
	return rc == dnswire.RcodeServerFailure || rc == dnswire.RcodeRefused
}

// candidates orders the upstreams for this query: healthy ones first
// in configured order (probe-registry-scored when Health is
// attached), cooled-down ones appended as a last resort. Lock-free:
// one snapshot load and per-entry atomic reads.
func (f *Forward) candidates() []netip.AddrPort {
	s := f.set()
	now := int64(s.clock.Now())
	healthy := make([]netip.AddrPort, 0, len(s.entries))
	var cooling []netip.AddrPort
	for _, e := range s.entries {
		if du := e.downUntil.Load(); du != 0 && now < du {
			cooling = append(cooling, e.addr)
			f.counters().skipped.Inc()
			continue
		}
		healthy = append(healthy, e.addr)
	}
	if f.Health != nil && len(healthy) > 1 {
		type score struct {
			rank int
			ewma time.Duration
		}
		scores := make(map[netip.AddrPort]score, len(healthy))
		for _, up := range healthy {
			rank, ewma := f.Health.Rank(up.String())
			scores[up] = score{rank, ewma}
		}
		sort.SliceStable(healthy, func(i, j int) bool {
			a, b := scores[healthy[i]], scores[healthy[j]]
			if a.rank != b.rank {
				return a.rank < b.rank
			}
			return a.ewma < b.ewma
		})
	}
	return append(healthy, cooling...)
}

// recordFailure notes one failed exchange and trips the cooldown once
// the threshold is reached, backing off exponentially after that.
func (f *Forward) recordFailure(up netip.AddrPort) {
	s := f.set()
	e := s.index[up]
	if e == nil {
		return
	}
	fails := int(e.fails.Add(1))
	threshold := f.FailureThreshold
	if threshold <= 0 {
		threshold = 3
	}
	if fails < threshold {
		return
	}
	cooldown := f.Cooldown
	if cooldown <= 0 {
		cooldown = 5 * time.Second
	}
	// Exponential backoff: 1×, 2×, 4×, … capped at 64× the base.
	exp := fails - threshold
	if exp > 6 {
		exp = 6
	}
	e.downUntil.Store(int64(s.clock.Now() + cooldown<<exp))
}

// recordSuccess resets an upstream's failure state.
func (f *Forward) recordSuccess(up netip.AddrPort) {
	s := f.ups.Load()
	if s == nil {
		return
	}
	if e := s.index[up]; e != nil {
		e.fails.Store(0)
		e.downUntil.Store(0)
	}
}

// ServeDNS implements Plugin.
func (f *Forward) ServeDNS(ctx context.Context, w ResponseWriter, r *Request, next Handler) (dnswire.Rcode, error) {
	if f.Match != "" && !dnswire.IsSubdomain(f.Match, r.Name()) {
		return next.ServeDNS(ctx, w, r)
	}
	if f.Client == nil {
		return dnswire.RcodeServerFailure, errors.New("dnsserver: forward has no client")
	}
	ups := f.candidates()
	if len(ups) == 0 {
		return dnswire.RcodeServerFailure, fmt.Errorf("forwarding %s: no upstreams configured", r.Name())
	}
	ctr := f.counters()
	ctr.queries.Inc()
	endHop := telemetry.StartHop(ctx, "forward")

	var lastErr error
	var lastResp *dnswire.Message
	hedgeFell := false

	if f.HedgeDelay > 0 && len(ups) > 1 {
		resp, fromHedge, ok := f.hedgedExchange(ctx, ups[0], ups[1], r)
		if ok {
			if fromHedge {
				ctr.failovers.Inc() // answered by other than the first upstream
				endHop("hedge:" + ups[1].String())
			} else {
				endHop(ups[0].String())
			}
			return writeUpstream(w, r, resp)
		}
		// Both raced upstreams failed; fall through to the rest.
		ups = ups[2:]
		hedgeFell = true
	}

	for i, up := range ups {
		resp, err := f.Client.Do(ctx, up, r.Msg)
		if err != nil {
			f.recordFailure(up)
			lastErr = err
			continue
		}
		if failoverRcode(resp.Rcode) {
			f.recordFailure(up)
			lastResp = resp
			continue
		}
		f.recordSuccess(up)
		if i > 0 || hedgeFell {
			ctr.failovers.Inc()
		}
		endHop(up.String())
		return writeUpstream(w, r, resp)
	}
	if lastResp != nil {
		// Every upstream answered with SERVFAIL/REFUSED; relay the
		// last verdict rather than synthesizing our own.
		endHop("relayed-failure")
		return writeUpstream(w, r, lastResp)
	}
	if lastErr == nil {
		lastErr = errors.New("all upstreams failed")
	}
	endHop("error")
	return dnswire.RcodeServerFailure, fmt.Errorf("forwarding %s: %w", r.Name(), lastErr)
}

// writeUpstream relays an upstream response to the client under the
// client's query ID.
func writeUpstream(w ResponseWriter, r *Request, resp *dnswire.Message) (dnswire.Rcode, error) {
	resp.ID = r.Msg.ID
	if err := w.WriteMsg(resp); err != nil {
		return dnswire.RcodeServerFailure, err
	}
	return resp.Rcode, nil
}

// hedgedExchange races primary against secondary: the secondary
// exchange starts after HedgeDelay (or immediately once the primary
// fails), and the first usable answer wins. Returns ok=false when
// both failed; fromHedge reports whether the secondary won.
func (f *Forward) hedgedExchange(ctx context.Context, primary, secondary netip.AddrPort, r *Request) (resp *dnswire.Message, fromHedge, ok bool) {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	type result struct {
		resp *dnswire.Message
		err  error
		up   netip.AddrPort
	}
	ch := make(chan result, 2)
	// The losing exchange can still be running when the winner returns
	// control to ServeDNS — and the server recycles r.Msg for the next
	// packet the moment ServeDNS is done. Clone once up front so the
	// stragglers hold their own copy instead of racing the reuse.
	q := r.Msg.Clone()
	launch := func(up netip.AddrPort) {
		go func() {
			resp, err := f.Client.Do(ctx, up, q)
			ch <- result{resp, err, up}
		}()
	}
	launch(primary)
	launched := 1
	timer := time.NewTimer(f.HedgeDelay)
	defer timer.Stop()
	hedge := func() {
		launch(secondary)
		launched = 2
		f.counters().hedged.Inc()
	}
	for received := 0; received < launched; {
		select {
		case res := <-ch:
			received++
			if res.err == nil && !failoverRcode(res.resp.Rcode) {
				f.recordSuccess(res.up)
				if res.up == secondary {
					f.counters().hedgeWins.Inc()
					return res.resp, true, true
				}
				return res.resp, false, true
			}
			f.recordFailure(res.up)
			if launched == 1 {
				// Primary failed before the hedge timer: fail over
				// immediately instead of waiting out the delay.
				hedge()
			}
		case <-timer.C:
			if launched == 1 {
				hedge()
			}
		}
	}
	return nil, false, false
}

// stubRoute is one stub domain's upstream set with its persistent
// forwarder (persistent so upstream health survives across queries).
type stubRoute struct {
	upstreams []netip.AddrPort
	fwd       *Forward
	labels    int
}

// stubTable is one immutable revision of the stub route table,
// published via atomic pointer so match() never locks.
type stubTable struct {
	routes map[string]*stubRoute
}

// Stub routes queries for specific sub-domains to dedicated upstream
// servers, the CoreDNS stub-domain mechanism the paper's prototype
// uses to hand the CDN domain from the MEC L-DNS (CoreDNS) to the
// collocated C-DNS (the ATC Traffic Router):
//
//	stub := NewStub()
//	stub.Route("mycdn.ciab.test.", cdnsAddr)
//
// Route and Unroute may be called concurrently with query serving (a
// live reconfiguration): writers copy the route table, mutate the
// copy, and publish it atomically; the per-query longest-match walk
// is a single snapshot load with no lock.
type Stub struct {
	table atomic.Pointer[stubTable]
	// wmu serializes Route/Unroute; match never takes it.
	wmu sync.Mutex
	// Client performs the exchanges; required.
	Client *dnsclient.Client
	// Clock, FailureThreshold, Cooldown, HedgeDelay, and Health
	// configure the per-route forwarders; see Forward for semantics.
	// They apply to routes added after they are set.
	Clock            vclock.Clock
	FailureThreshold int
	Cooldown         time.Duration
	HedgeDelay       time.Duration
	Health           *health.Registry
}

// NewStub returns an empty stub-domain router.
func NewStub(client *dnsclient.Client) *Stub {
	s := &Stub{Client: client}
	s.table.Store(&stubTable{routes: map[string]*stubRoute{}})
	return s
}

// updateTable copies the current route table, applies fn, publishes.
func (s *Stub) updateTable(fn func(map[string]*stubRoute)) {
	s.wmu.Lock()
	defer s.wmu.Unlock()
	old := s.table.Load()
	next := make(map[string]*stubRoute, len(old.routes)+1)
	for d, rt := range old.routes {
		next[d] = rt
	}
	fn(next)
	s.table.Store(&stubTable{routes: next})
}

// Route directs queries under domain to the given upstreams.
func (s *Stub) Route(domain string, upstreams ...netip.AddrPort) {
	domain = dnswire.CanonicalName(domain)
	rt := &stubRoute{
		upstreams: upstreams,
		labels:    dnswire.CountLabels(domain),
		fwd: &Forward{
			Upstreams:        upstreams,
			Client:           s.Client,
			Clock:            s.Clock,
			FailureThreshold: s.FailureThreshold,
			Cooldown:         s.Cooldown,
			HedgeDelay:       s.HedgeDelay,
			Health:           s.Health,
		},
	}
	s.updateTable(func(routes map[string]*stubRoute) { routes[domain] = rt })
}

// Unroute removes a stub domain.
func (s *Stub) Unroute(domain string) {
	domain = dnswire.CanonicalName(domain)
	s.updateTable(func(routes map[string]*stubRoute) { delete(routes, domain) })
}

// Name implements Plugin.
func (s *Stub) Name() string { return "stub" }

// match returns the forwarder and domain of the longest matching stub
// route. Lock-free: one atomic table load per query.
func (s *Stub) match(qname string) (*Forward, string) {
	t := s.table.Load()
	var best *stubRoute
	bestDomain := ""
	for domain, rt := range t.routes {
		if dnswire.IsSubdomain(domain, qname) {
			if best == nil || rt.labels > best.labels {
				best, bestDomain = rt, domain
			}
		}
	}
	if best == nil {
		return nil, ""
	}
	return best.fwd, bestDomain
}

// ServeDNS implements Plugin.
func (s *Stub) ServeDNS(ctx context.Context, w ResponseWriter, r *Request, next Handler) (dnswire.Rcode, error) {
	fwd, domain := s.match(r.Name())
	if fwd == nil {
		return next.ServeDNS(ctx, w, r)
	}
	telemetry.Annotate(ctx, "stub", domain)
	return fwd.ServeDNS(ctx, w, r, next)
}
