package dnsserver

import (
	"context"
	"errors"
	"fmt"
	"net/netip"

	"github.com/meccdn/meccdn/internal/dnsclient"
	"github.com/meccdn/meccdn/internal/dnswire"
)

// Forward sends queries to one or more upstream resolvers, trying
// each in order until one answers. It is the "forward ." of the
// provider L-DNS and the upstream leg of the MEC DNS fallback path.
type Forward struct {
	// Upstreams are tried in order.
	Upstreams []netip.AddrPort
	// Client performs the exchanges; required.
	Client *dnsclient.Client
	// Match, when non-empty, limits forwarding to names under this
	// domain; others fall through to the next plugin.
	Match string
}

// Name implements Plugin.
func (f *Forward) Name() string { return "forward" }

// ServeDNS implements Plugin.
func (f *Forward) ServeDNS(ctx context.Context, w ResponseWriter, r *Request, next Handler) (dnswire.Rcode, error) {
	if f.Match != "" && !dnswire.IsSubdomain(f.Match, r.Name()) {
		return next.ServeDNS(ctx, w, r)
	}
	if f.Client == nil {
		return dnswire.RcodeServerFailure, errors.New("dnsserver: forward has no client")
	}
	var lastErr error
	for _, up := range f.Upstreams {
		resp, err := f.Client.Do(ctx, up, r.Msg.Clone())
		if err != nil {
			lastErr = err
			continue
		}
		resp.ID = r.Msg.ID
		if err := w.WriteMsg(resp); err != nil {
			return dnswire.RcodeServerFailure, err
		}
		return resp.Rcode, nil
	}
	if lastErr == nil {
		lastErr = errors.New("no upstreams configured")
	}
	return dnswire.RcodeServerFailure, fmt.Errorf("forwarding %s: %w", r.Name(), lastErr)
}

// Stub routes queries for specific sub-domains to dedicated upstream
// servers, the CoreDNS stub-domain mechanism the paper's prototype
// uses to hand the CDN domain from the MEC L-DNS (CoreDNS) to the
// collocated C-DNS (the ATC Traffic Router):
//
//	stub := NewStub()
//	stub.Route("mycdn.ciab.test.", cdnsAddr)
type Stub struct {
	routes map[string][]netip.AddrPort
	// Client performs the exchanges; required.
	Client *dnsclient.Client
}

// NewStub returns an empty stub-domain router.
func NewStub(client *dnsclient.Client) *Stub {
	return &Stub{routes: make(map[string][]netip.AddrPort), Client: client}
}

// Route directs queries under domain to the given upstreams.
func (s *Stub) Route(domain string, upstreams ...netip.AddrPort) {
	s.routes[dnswire.CanonicalName(domain)] = upstreams
}

// Unroute removes a stub domain.
func (s *Stub) Unroute(domain string) {
	delete(s.routes, dnswire.CanonicalName(domain))
}

// Name implements Plugin.
func (s *Stub) Name() string { return "stub" }

// match returns the upstreams for the longest matching stub domain.
func (s *Stub) match(qname string) []netip.AddrPort {
	var bestDomain string
	var best []netip.AddrPort
	for domain, ups := range s.routes {
		if dnswire.IsSubdomain(domain, qname) {
			if best == nil || dnswire.CountLabels(domain) > dnswire.CountLabels(bestDomain) {
				bestDomain, best = domain, ups
			}
		}
	}
	return best
}

// ServeDNS implements Plugin.
func (s *Stub) ServeDNS(ctx context.Context, w ResponseWriter, r *Request, next Handler) (dnswire.Rcode, error) {
	ups := s.match(r.Name())
	if ups == nil {
		return next.ServeDNS(ctx, w, r)
	}
	fwd := &Forward{Upstreams: ups, Client: s.Client}
	return fwd.ServeDNS(ctx, w, r, next)
}
