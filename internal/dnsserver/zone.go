package dnsserver

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"net/netip"
	"sort"
	"strconv"
	"strings"

	"github.com/meccdn/meccdn/internal/dnswire"
	"github.com/meccdn/meccdn/internal/telemetry"
)

// Zone is an in-memory authoritative zone. It supports exact matches,
// CNAME indirection, wildcard owners ("*.<name>"), delegations via NS
// records below the apex (with glue), and RFC 2308 negative answers
// carrying the SOA.
type Zone struct {
	// Origin is the canonical apex name.
	Origin string
	soa    *dnswire.SOA
	// rrs maps canonical owner name → type → records.
	rrs map[string]map[dnswire.Type][]dnswire.RR
}

// NewZone creates an empty zone rooted at origin with a generated SOA.
func NewZone(origin string) *Zone {
	origin = dnswire.CanonicalName(origin)
	z := &Zone{
		Origin: origin,
		rrs:    make(map[string]map[dnswire.Type][]dnswire.RR),
	}
	z.SetSOA(&dnswire.SOA{
		Hdr:    dnswire.RRHeader{Name: origin, Type: dnswire.TypeSOA, Class: dnswire.ClassINET, TTL: 3600},
		NS:     "ns." + strings.TrimPrefix(origin, "."),
		Mbox:   "hostmaster." + strings.TrimPrefix(origin, "."),
		Serial: 1, Refresh: 7200, Retry: 3600, Expire: 1209600, MinTTL: 60,
	})
	return z
}

// SetSOA replaces the zone's SOA record.
func (z *Zone) SetSOA(soa *dnswire.SOA) {
	soa.Hdr.Name = z.Origin
	z.soa = soa
	z.add(soa)
}

// SOA returns the zone's SOA record.
func (z *Zone) SOA() *dnswire.SOA { return z.soa }

// Add inserts a record. The owner must be within the zone.
func (z *Zone) Add(rr dnswire.RR) error {
	owner := dnswire.CanonicalName(rr.Header().Name)
	if !dnswire.IsSubdomain(z.Origin, owner) {
		return fmt.Errorf("dnsserver: record %q outside zone %q", owner, z.Origin)
	}
	rr.Header().Name = owner
	z.add(rr)
	return nil
}

func (z *Zone) add(rr dnswire.RR) {
	owner := dnswire.CanonicalName(rr.Header().Name)
	byType := z.rrs[owner]
	if byType == nil {
		byType = make(map[dnswire.Type][]dnswire.RR)
		z.rrs[owner] = byType
	}
	t := rr.Header().Type
	if t == dnswire.TypeSOA {
		byType[t] = []dnswire.RR{rr} // singleton
		return
	}
	byType[t] = append(byType[t], rr)
}

// AddA is a convenience for the most common record in this repository.
func (z *Zone) AddA(name string, ttl uint32, addr netip.Addr) error {
	return z.Add(&dnswire.A{
		Hdr:  dnswire.RRHeader{Name: name, Type: dnswire.TypeA, Class: dnswire.ClassINET, TTL: ttl},
		Addr: addr,
	})
}

// AddCNAME is a convenience for alias records.
func (z *Zone) AddCNAME(name string, ttl uint32, target string) error {
	return z.Add(&dnswire.CNAME{
		Hdr:    dnswire.RRHeader{Name: name, Type: dnswire.TypeCNAME, Class: dnswire.ClassINET, TTL: ttl},
		Target: dnswire.CanonicalName(target),
	})
}

// Remove deletes all records of type t at name; it reports whether
// anything was removed. Used by the orchestrator when a service or
// endpoint disappears.
func (z *Zone) Remove(name string, t dnswire.Type) bool {
	owner := dnswire.CanonicalName(name)
	byType, ok := z.rrs[owner]
	if !ok {
		return false
	}
	if _, ok := byType[t]; !ok {
		return false
	}
	delete(byType, t)
	if len(byType) == 0 {
		delete(z.rrs, owner)
	}
	return true
}

// Names returns every owner name in the zone, sorted.
func (z *Zone) Names() []string {
	names := make([]string, 0, len(z.rrs))
	for n := range z.rrs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// LookupResult classifies a zone lookup.
type LookupResult int

// Lookup outcomes.
const (
	LookupSuccess    LookupResult = iota // answers populated
	LookupNoData                         // name exists, type does not
	LookupNXDomain                       // name does not exist
	LookupDelegation                     // referral to child zone
)

// Lookup resolves (qname, qtype) within the zone, following in-zone
// CNAME chains. It returns the result class, the answer records, and
// the authority records (SOA for negative answers, NS for referrals).
func (z *Zone) Lookup(qname string, qtype dnswire.Type) (LookupResult, []dnswire.RR, []dnswire.RR) {
	qname = dnswire.CanonicalName(qname)
	var answers []dnswire.RR
	seen := map[string]bool{}
	for {
		if seen[qname] {
			break // CNAME loop inside the zone; return what we have
		}
		seen[qname] = true

		// Delegation check: an NS set at a name strictly between the
		// apex and qname (or at qname itself when qtype != NS at apex)
		// produces a referral.
		if deleg := z.findDelegation(qname); deleg != "" {
			nsSet := cloneRRs(z.rrs[deleg][dnswire.TypeNS])
			var glue []dnswire.RR
			for _, ns := range nsSet {
				target := dnswire.CanonicalName(ns.(*dnswire.NS).NS)
				if byType, ok := z.rrs[target]; ok {
					glue = append(glue, cloneRRs(byType[dnswire.TypeA])...)
					glue = append(glue, cloneRRs(byType[dnswire.TypeAAAA])...)
				}
			}
			return LookupDelegation, answers, append(nsSet, glue...)
		}

		byType, ok := z.rrs[qname]
		if !ok {
			// Wildcard synthesis.
			if wc := z.findWildcard(qname); wc != nil {
				byType = wc
			} else {
				if len(answers) > 0 {
					// CNAME chain left the populated namespace.
					return LookupSuccess, answers, nil
				}
				return LookupNXDomain, nil, z.negativeAuthority()
			}
		}
		if rrs, ok := byType[qtype]; ok && len(rrs) > 0 {
			answers = append(answers, synthesize(cloneRRs(rrs), qname)...)
			return LookupSuccess, answers, nil
		}
		if cn, ok := byType[dnswire.TypeCNAME]; ok && len(cn) > 0 && qtype != dnswire.TypeCNAME {
			rec := synthesize(cloneRRs(cn[:1]), qname)[0].(*dnswire.CNAME)
			answers = append(answers, rec)
			target := dnswire.CanonicalName(rec.Target)
			if !dnswire.IsSubdomain(z.Origin, target) {
				// Chain leaves the zone: the resolver continues it.
				return LookupSuccess, answers, nil
			}
			qname = target
			continue
		}
		if len(answers) > 0 {
			return LookupSuccess, answers, nil
		}
		return LookupNoData, nil, z.negativeAuthority()
	}
	return LookupSuccess, answers, nil
}

// findDelegation returns the closest enclosing owner of qname that
// holds an NS set below the apex, or "".
func (z *Zone) findDelegation(qname string) string {
	for name := qname; name != "." && dnswire.IsSubdomain(z.Origin, name); name = dnswire.Parent(name) {
		if name == z.Origin {
			break
		}
		if byType, ok := z.rrs[name]; ok {
			if _, hasNS := byType[dnswire.TypeNS]; hasNS {
				return name
			}
		}
	}
	return ""
}

// findWildcard looks for "*.<parent>" owners covering qname.
func (z *Zone) findWildcard(qname string) map[dnswire.Type][]dnswire.RR {
	for name := dnswire.Parent(qname); dnswire.IsSubdomain(z.Origin, name); name = dnswire.Parent(name) {
		if byType, ok := z.rrs["*."+strings.TrimPrefix(name, ".")]; ok {
			return byType
		}
		if name == z.Origin || name == "." {
			break
		}
	}
	return nil
}

// synthesize rewrites wildcard-owned records to the query name.
func synthesize(rrs []dnswire.RR, qname string) []dnswire.RR {
	for _, rr := range rrs {
		if strings.HasPrefix(rr.Header().Name, "*.") {
			rr.Header().Name = qname
		}
	}
	return rrs
}

func (z *Zone) negativeAuthority() []dnswire.RR {
	if z.soa == nil {
		return nil
	}
	return []dnswire.RR{z.soa.Clone()}
}

func cloneRRs(rrs []dnswire.RR) []dnswire.RR {
	out := make([]dnswire.RR, len(rrs))
	for i, rr := range rrs {
		out[i] = rr.Clone()
	}
	return out
}

// ZonePlugin serves authoritative answers from a set of zones,
// matching the longest enclosing origin. Queries outside every zone
// fall through to the next plugin.
type ZonePlugin struct {
	zones map[string]*Zone
}

// NewZonePlugin builds the plugin from zones.
func NewZonePlugin(zones ...*Zone) *ZonePlugin {
	p := &ZonePlugin{zones: make(map[string]*Zone, len(zones))}
	for _, z := range zones {
		p.zones[z.Origin] = z
	}
	return p
}

// AddZone registers another zone.
func (p *ZonePlugin) AddZone(z *Zone) { p.zones[z.Origin] = z }

// Zone returns the registered zone with the given origin, or nil.
func (p *ZonePlugin) Zone(origin string) *Zone {
	return p.zones[dnswire.CanonicalName(origin)]
}

// Name implements Plugin.
func (p *ZonePlugin) Name() string { return "zone" }

// match finds the longest registered origin enclosing qname.
func (p *ZonePlugin) match(qname string) *Zone {
	var best *Zone
	for origin, z := range p.zones {
		if dnswire.IsSubdomain(origin, qname) {
			if best == nil || dnswire.CountLabels(origin) > dnswire.CountLabels(best.Origin) {
				best = z
			}
		}
	}
	return best
}

// ServeDNS implements Plugin.
func (p *ZonePlugin) ServeDNS(ctx context.Context, w ResponseWriter, r *Request, next Handler) (dnswire.Rcode, error) {
	z := p.match(r.Name())
	if z == nil {
		return next.ServeDNS(ctx, w, r)
	}
	endHop := telemetry.StartHop(ctx, "zone")
	result, answers, authority := z.Lookup(r.Name(), r.Type())
	endHop(z.Origin)
	m := new(dnswire.Message)
	m.SetReply(r.Msg)
	m.Authoritative = true
	switch result {
	case LookupSuccess:
		m.Answers = answers
	case LookupNoData:
		m.Authorities = authority
	case LookupNXDomain:
		m.Rcode = dnswire.RcodeNameError
		m.Authorities = authority
	case LookupDelegation:
		m.Authoritative = false
		m.Answers = answers
		// Referral: NS in authority, glue in additional.
		for _, rr := range authority {
			if rr.Header().Type == dnswire.TypeNS {
				m.Authorities = append(m.Authorities, rr)
			} else {
				m.Additionals = append(m.Additionals, rr)
			}
		}
	}
	// Echo the client's ECS option per RFC 7871 §7.2.1. Zone data is
	// static — the same answer goes to every subnet — so the honest
	// scope is 0: resolvers may serve this answer to all their clients
	// from one cache entry. Subnet-tailored answers (and their nonzero
	// scopes) are the CDN router's job, not the zone's.
	if ecs, ok := r.Msg.ECS(); ok {
		opt := m.SetEDNS(dnswire.DefaultEDNSSize)
		scoped := *ecs
		scoped.ScopePrefix = 0
		opt.Options = append(opt.Options, &scoped)
	}
	if err := w.WriteMsg(m); err != nil {
		return dnswire.RcodeServerFailure, err
	}
	return m.Rcode, nil
}

// ParseZone reads a minimal zone-file dialect: one record per line,
// "owner [ttl] [IN] type rdata...", with "@" denoting the origin,
// unqualified owners made relative to it, and ";" comments. It exists
// so cmd/dnsd can serve operator-authored zones; programmatic callers
// use the Zone builder methods.
func ParseZone(origin string, r io.Reader) (*Zone, error) {
	z := NewZone(origin)
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, ';'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		rr, err := parseRecordLine(z.Origin, fields)
		if err != nil {
			return nil, fmt.Errorf("zone %s line %d: %w", origin, lineNo, err)
		}
		if rr.Header().Type == dnswire.TypeSOA {
			z.SetSOA(rr.(*dnswire.SOA))
			continue
		}
		if err := z.Add(rr); err != nil {
			return nil, fmt.Errorf("zone %s line %d: %w", origin, lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return z, nil
}

func qualify(name, origin string) string {
	if name == "@" {
		return origin
	}
	if strings.HasSuffix(name, ".") {
		return dnswire.CanonicalName(name)
	}
	return dnswire.CanonicalName(name + "." + origin)
}

func parseRecordLine(origin string, fields []string) (dnswire.RR, error) {
	if len(fields) < 3 {
		return nil, fmt.Errorf("too few fields")
	}
	owner := qualify(fields[0], origin)
	rest := fields[1:]
	ttl := uint32(300)
	if n, err := strconv.ParseUint(rest[0], 10, 32); err == nil {
		ttl = uint32(n)
		rest = rest[1:]
	}
	if len(rest) > 0 && strings.EqualFold(rest[0], "IN") {
		rest = rest[1:]
	}
	if len(rest) < 2 {
		return nil, fmt.Errorf("missing type or rdata")
	}
	typ, rdata := strings.ToUpper(rest[0]), rest[1:]
	hdr := dnswire.RRHeader{Name: owner, Class: dnswire.ClassINET, TTL: ttl}
	switch typ {
	case "A":
		addr, err := netip.ParseAddr(rdata[0])
		if err != nil || !addr.Is4() {
			return nil, fmt.Errorf("bad A rdata %q", rdata[0])
		}
		hdr.Type = dnswire.TypeA
		return &dnswire.A{Hdr: hdr, Addr: addr}, nil
	case "AAAA":
		addr, err := netip.ParseAddr(rdata[0])
		if err != nil || !addr.Is6() {
			return nil, fmt.Errorf("bad AAAA rdata %q", rdata[0])
		}
		hdr.Type = dnswire.TypeAAAA
		return &dnswire.AAAA{Hdr: hdr, Addr: addr}, nil
	case "CNAME":
		hdr.Type = dnswire.TypeCNAME
		return &dnswire.CNAME{Hdr: hdr, Target: qualify(rdata[0], origin)}, nil
	case "NS":
		hdr.Type = dnswire.TypeNS
		return &dnswire.NS{Hdr: hdr, NS: qualify(rdata[0], origin)}, nil
	case "PTR":
		hdr.Type = dnswire.TypePTR
		return &dnswire.PTR{Hdr: hdr, PTR: qualify(rdata[0], origin)}, nil
	case "TXT":
		hdr.Type = dnswire.TypeTXT
		var txt []string
		for _, f := range rdata {
			txt = append(txt, strings.Trim(f, `"`))
		}
		return &dnswire.TXT{Hdr: hdr, Txt: txt}, nil
	case "MX":
		if len(rdata) < 2 {
			return nil, fmt.Errorf("MX needs preference and host")
		}
		pref, err := strconv.ParseUint(rdata[0], 10, 16)
		if err != nil {
			return nil, fmt.Errorf("bad MX preference %q", rdata[0])
		}
		hdr.Type = dnswire.TypeMX
		return &dnswire.MX{Hdr: hdr, Preference: uint16(pref), MX: qualify(rdata[1], origin)}, nil
	case "SRV":
		if len(rdata) < 4 {
			return nil, fmt.Errorf("SRV needs priority weight port target")
		}
		var nums [3]uint16
		for i := 0; i < 3; i++ {
			v, err := strconv.ParseUint(rdata[i], 10, 16)
			if err != nil {
				return nil, fmt.Errorf("bad SRV field %q", rdata[i])
			}
			nums[i] = uint16(v)
		}
		hdr.Type = dnswire.TypeSRV
		return &dnswire.SRV{Hdr: hdr, Priority: nums[0], Weight: nums[1], Port: nums[2], Target: qualify(rdata[3], origin)}, nil
	case "SOA":
		if len(rdata) < 7 {
			return nil, fmt.Errorf("SOA needs ns mbox serial refresh retry expire minttl")
		}
		var nums [5]uint32
		for i := 0; i < 5; i++ {
			v, err := strconv.ParseUint(rdata[2+i], 10, 32)
			if err != nil {
				return nil, fmt.Errorf("bad SOA field %q", rdata[2+i])
			}
			nums[i] = uint32(v)
		}
		hdr.Type = dnswire.TypeSOA
		return &dnswire.SOA{Hdr: hdr, NS: qualify(rdata[0], origin), Mbox: qualify(rdata[1], origin),
			Serial: nums[0], Refresh: nums[1], Retry: nums[2], Expire: nums[3], MinTTL: nums[4]}, nil
	}
	return nil, fmt.Errorf("unsupported type %q", typ)
}
