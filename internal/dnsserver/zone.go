package dnsserver

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"net/netip"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"github.com/meccdn/meccdn/internal/dnswire"
	"github.com/meccdn/meccdn/internal/telemetry"
)

// maxZoneDeltas bounds the per-zone IXFR journal. A secondary whose
// serial has fallen further behind than the journal reaches gets a
// full transfer instead (RFC 1995 §4 allows the fallback), so the
// bound trades incremental coverage for memory, never correctness.
const maxZoneDeltas = 256

// ZoneDelta is one published zone revision: the change set that took
// the zone from FromSOA.Serial to ToSOA.Serial. Del and Add hold the
// non-SOA records removed and added by the revision (the SOA change
// itself is carried by the two SOA records, exactly the framing the
// IXFR wire format wants).
type ZoneDelta struct {
	FromSOA, ToSOA *dnswire.SOA
	Del, Add       []dnswire.RR
}

// ZoneView is one immutable snapshot of a zone's record set. Readers
// obtain a view with Zone.View and use it without locking: nothing
// reachable from a published view is ever mutated. Writers build the
// next view copy-on-write and publish it atomically — the RCU pattern
// the whole query-time read plane follows.
type ZoneView struct {
	// Origin is the canonical apex name.
	Origin string
	soa    *dnswire.SOA
	// rrs maps canonical owner name → type → records.
	rrs map[string]map[dnswire.Type][]dnswire.RR
	// deltas is the bounded journal of revisions ending at this view,
	// oldest first and serial-contiguous; the IXFR responder walks it.
	deltas []ZoneDelta
}

// SOA returns the view's SOA record. Callers must not mutate it.
func (v *ZoneView) SOA() *dnswire.SOA { return v.soa }

// Serial returns the view's SOA serial.
func (v *ZoneView) Serial() uint32 {
	if v.soa == nil {
		return 0
	}
	return v.soa.Serial
}

// Names returns every owner name in the view, sorted.
func (v *ZoneView) Names() []string {
	names := make([]string, 0, len(v.rrs))
	for n := range v.rrs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Zone is an in-memory authoritative zone. It supports exact matches,
// CNAME indirection, wildcard owners ("*.<name>"), delegations via NS
// records below the apex (with glue), and RFC 2308 negative answers
// carrying the SOA.
//
// The record set lives in an immutable ZoneView published through an
// atomic pointer: Lookup and the transfer paths never take a lock, and
// mutations (Add/Remove/Update/Replace) copy-on-write off the current
// view, bump the SOA serial, and publish the next view — so a zone can
// be rebuilt while serving with zero blocked or dropped queries. Each
// publish records a ZoneDelta for IXFR propagation.
type Zone struct {
	// Origin is the canonical apex name.
	Origin string

	view atomic.Pointer[ZoneView]
	// wmu serializes writers; readers never touch it.
	wmu sync.Mutex
}

// NewZone creates an empty zone rooted at origin with a generated SOA.
func NewZone(origin string) *Zone {
	origin = dnswire.CanonicalName(origin)
	z := &Zone{Origin: origin}
	soa := &dnswire.SOA{
		Hdr:    dnswire.RRHeader{Name: origin, Type: dnswire.TypeSOA, Class: dnswire.ClassINET, TTL: 3600},
		NS:     "ns." + strings.TrimPrefix(origin, "."),
		Mbox:   "hostmaster." + strings.TrimPrefix(origin, "."),
		Serial: 1, Refresh: 7200, Retry: 3600, Expire: 1209600, MinTTL: 60,
	}
	v := &ZoneView{
		Origin: origin,
		soa:    soa,
		rrs: map[string]map[dnswire.Type][]dnswire.RR{
			origin: {dnswire.TypeSOA: {soa}},
		},
	}
	z.view.Store(v)
	return z
}

// View returns the current immutable snapshot. The returned view is
// safe for concurrent use and stays coherent (records, SOA serial, and
// IXFR journal all from one publish) for as long as the caller holds
// it.
func (z *Zone) View() *ZoneView { return z.view.Load() }

// SOA returns the zone's current SOA record.
func (z *Zone) SOA() *dnswire.SOA { return z.View().soa }

// Serial returns the zone's current SOA serial.
func (z *Zone) Serial() uint32 { return z.View().Serial() }

// Names returns every owner name in the zone, sorted.
func (z *Zone) Names() []string { return z.View().Names() }

// SetSOA replaces the zone's SOA record, adopting its serial verbatim.
func (z *Zone) SetSOA(soa *dnswire.SOA) {
	z.Update(func(b *ZoneBuilder) error { b.SetSOA(soa); return nil })
}

// Add inserts a record and publishes a new revision (serial bumped by
// one). The owner must be within the zone.
func (z *Zone) Add(rr dnswire.RR) error {
	return z.Update(func(b *ZoneBuilder) error { return b.Add(rr) })
}

// AddA is a convenience for the most common record in this repository.
func (z *Zone) AddA(name string, ttl uint32, addr netip.Addr) error {
	return z.Add(&dnswire.A{
		Hdr:  dnswire.RRHeader{Name: name, Type: dnswire.TypeA, Class: dnswire.ClassINET, TTL: ttl},
		Addr: addr,
	})
}

// AddCNAME is a convenience for alias records.
func (z *Zone) AddCNAME(name string, ttl uint32, target string) error {
	return z.Add(&dnswire.CNAME{
		Hdr:    dnswire.RRHeader{Name: name, Type: dnswire.TypeCNAME, Class: dnswire.ClassINET, TTL: ttl},
		Target: dnswire.CanonicalName(target),
	})
}

// Remove deletes all records of type t at name; it reports whether
// anything was removed. Used by the orchestrator when a service or
// endpoint disappears.
func (z *Zone) Remove(name string, t dnswire.Type) bool {
	removed := false
	z.Update(func(b *ZoneBuilder) error {
		removed = b.Remove(name, t)
		return nil
	})
	return removed
}

// Update applies a batch of mutations atomically: fn works on a
// ZoneBuilder seeded with the current view, and if it returns nil and
// changed anything, the result is published as one new revision — one
// serial bump, one IXFR delta — visible to readers all at once.
// Concurrent Updates serialize; readers are never blocked.
func (z *Zone) Update(fn func(*ZoneBuilder) error) error {
	z.wmu.Lock()
	defer z.wmu.Unlock()
	old := z.view.Load()
	b := newZoneBuilder(old)
	if err := fn(b); err != nil {
		return err
	}
	if v, changed := b.build(old); changed {
		z.view.Store(v)
	}
	return nil
}

// Replace swaps the zone's entire record set for the contents of from
// (typically a freshly parsed zone file), publishing the difference as
// one revision. The new serial is from's when it is ahead of the
// current one, and current+1 otherwise — so a reload with an unchanged
// file serial still advances, and secondaries notice. Queries in
// flight keep the old view; new queries see the new one.
func (z *Zone) Replace(from *Zone) {
	z.ReplaceView(from.View())
}

// ReplaceView is Replace for an already-extracted view.
func (z *Zone) ReplaceView(nv *ZoneView) {
	z.wmu.Lock()
	defer z.wmu.Unlock()
	old := z.view.Load()
	del, add := diffRecords(old, nv)
	soa := nv.soa.Clone().(*dnswire.SOA)
	soa.Hdr.Name = z.Origin
	if !serialAdvanced(old.Serial(), soa.Serial) {
		soa.Serial = old.Serial() + 1
	}
	if len(del) == 0 && len(add) == 0 && soa.String() == old.soa.String() {
		return // byte-identical reload: nothing to publish
	}
	rrs := cloneRRMap(nv.rrs)
	rrs[z.Origin] = cloneByType(rrs[z.Origin])
	rrs[z.Origin][dnswire.TypeSOA] = []dnswire.RR{soa}
	v := &ZoneView{
		Origin: z.Origin,
		soa:    soa,
		rrs:    rrs,
		deltas: appendDelta(old, ZoneDelta{
			FromSOA: old.soa, ToSOA: soa, Del: del, Add: add,
		}),
	}
	z.view.Store(v)
}

// serialAdvanced reports whether b is ahead of a in RFC 1982 serial
// arithmetic (wrapping uint32 comparison).
func serialAdvanced(a, b uint32) bool {
	return b != a && (b-a) < 1<<31
}

// appendDelta extends old's journal with d, keeping it bounded.
func appendDelta(old *ZoneView, d ZoneDelta) []ZoneDelta {
	deltas := old.deltas
	if len(deltas) >= maxZoneDeltas {
		deltas = deltas[len(deltas)-maxZoneDeltas+1:]
	}
	out := make([]ZoneDelta, 0, len(deltas)+1)
	out = append(out, deltas...)
	return append(out, d)
}

// diffRecords computes the non-SOA record difference between two
// views, keyed by full presentation form (owner, TTL, class, type,
// rdata).
func diffRecords(old, nv *ZoneView) (del, add []dnswire.RR) {
	type slot struct {
		rr    dnswire.RR
		count int
	}
	index := make(map[string]*slot)
	eachRR(old, func(rr dnswire.RR) {
		k := rr.String()
		if s := index[k]; s != nil {
			s.count++
		} else {
			index[k] = &slot{rr: rr, count: 1}
		}
	})
	eachRR(nv, func(rr dnswire.RR) {
		k := rr.String()
		if s := index[k]; s != nil && s.count > 0 {
			s.count--
			return
		}
		add = append(add, rr.Clone())
	})
	// Deterministic order: walk old again so deletions come out in the
	// old view's iteration-independent (sorted) order.
	seen := make(map[string]int)
	eachRRSorted(old, func(rr dnswire.RR) {
		k := rr.String()
		if s := index[k]; s != nil && seen[k] < s.count {
			seen[k]++
			del = append(del, rr.Clone())
		}
	})
	return del, add
}

// eachRR visits every non-SOA record of a view.
func eachRR(v *ZoneView, fn func(dnswire.RR)) {
	for _, byType := range v.rrs {
		for t, rrs := range byType {
			if t == dnswire.TypeSOA {
				continue
			}
			for _, rr := range rrs {
				fn(rr)
			}
		}
	}
}

// eachRRSorted is eachRR in sorted owner/type order.
func eachRRSorted(v *ZoneView, fn func(dnswire.RR)) {
	for _, name := range v.Names() {
		byType := v.rrs[name]
		types := make([]int, 0, len(byType))
		for t := range byType {
			types = append(types, int(t))
		}
		sort.Ints(types)
		for _, t := range types {
			if dnswire.Type(t) == dnswire.TypeSOA {
				continue
			}
			for _, rr := range byType[dnswire.Type(t)] {
				fn(rr)
			}
		}
	}
}

// cloneRRMap shallow-copies the owner map; the inner maps and slices
// are shared with the source and must be copied before mutation.
func cloneRRMap(rrs map[string]map[dnswire.Type][]dnswire.RR) map[string]map[dnswire.Type][]dnswire.RR {
	out := make(map[string]map[dnswire.Type][]dnswire.RR, len(rrs))
	for k, v := range rrs {
		out[k] = v
	}
	return out
}

// cloneByType shallow-copies one owner's type map.
func cloneByType(byType map[dnswire.Type][]dnswire.RR) map[dnswire.Type][]dnswire.RR {
	out := make(map[dnswire.Type][]dnswire.RR, len(byType)+1)
	for k, v := range byType {
		out[k] = v
	}
	return out
}

// ZoneBuilder accumulates one revision's mutations against a base
// view. It copies only what it touches: untouched owners keep sharing
// the base view's maps and slices. Builders are not safe for
// concurrent use; Zone.Update hands each caller its own.
type ZoneBuilder struct {
	origin string
	rrs    map[string]map[dnswire.Type][]dnswire.RR
	// touched marks owners whose type map is already a private copy.
	touched  map[string]bool
	soa      *dnswire.SOA
	soaSet   bool
	del, add []dnswire.RR
	dirty    bool
}

func newZoneBuilder(base *ZoneView) *ZoneBuilder {
	return &ZoneBuilder{
		origin:  base.Origin,
		rrs:     cloneRRMap(base.rrs),
		touched: make(map[string]bool),
		soa:     base.soa,
	}
}

// owner returns a mutable type map for name.
func (b *ZoneBuilder) owner(name string) map[dnswire.Type][]dnswire.RR {
	byType := b.rrs[name]
	// A prior Remove may have deleted a touched owner's entry outright;
	// byType is nil then, and a fresh private map must be made.
	if byType != nil && b.touched[name] {
		return byType
	}
	byType = cloneByType(byType)
	b.rrs[name] = byType
	b.touched[name] = true
	return byType
}

// SetSOA replaces the revision's SOA, adopting its serial verbatim on
// publish instead of auto-bumping.
func (b *ZoneBuilder) SetSOA(soa *dnswire.SOA) {
	soa.Hdr.Name = b.origin
	b.soa = soa
	b.soaSet = true
	b.dirty = true
}

// Add inserts a record. The owner must be within the zone.
func (b *ZoneBuilder) Add(rr dnswire.RR) error {
	owner := dnswire.CanonicalName(rr.Header().Name)
	if !dnswire.IsSubdomain(b.origin, owner) {
		return fmt.Errorf("dnsserver: record %q outside zone %q", owner, b.origin)
	}
	rr.Header().Name = owner
	if rr.Header().Type == dnswire.TypeSOA {
		b.SetSOA(rr.(*dnswire.SOA))
		return nil
	}
	byType := b.owner(owner)
	t := rr.Header().Type
	// Copy-on-append: the base view may share the backing array.
	rrs := byType[t]
	next := make([]dnswire.RR, len(rrs), len(rrs)+1)
	copy(next, rrs)
	byType[t] = append(next, rr)
	b.add = append(b.add, rr.Clone())
	b.dirty = true
	return nil
}

// AddA is the builder form of Zone.AddA.
func (b *ZoneBuilder) AddA(name string, ttl uint32, addr netip.Addr) error {
	return b.Add(&dnswire.A{
		Hdr:  dnswire.RRHeader{Name: name, Type: dnswire.TypeA, Class: dnswire.ClassINET, TTL: ttl},
		Addr: addr,
	})
}

// Remove deletes all records of type t at name; it reports whether
// anything was removed.
func (b *ZoneBuilder) Remove(name string, t dnswire.Type) bool {
	owner := dnswire.CanonicalName(name)
	byType, ok := b.rrs[owner]
	if !ok {
		return false
	}
	rrs, ok := byType[t]
	if !ok {
		return false
	}
	for _, rr := range rrs {
		b.del = append(b.del, rr.Clone())
	}
	byType = b.owner(owner)
	delete(byType, t)
	if len(byType) == 0 {
		delete(b.rrs, owner)
	}
	b.dirty = true
	return true
}

// RemoveRR deletes the single record equal to rr (full presentation
// form match); it reports whether anything was removed. This is the
// record-granular removal IXFR application needs.
func (b *ZoneBuilder) RemoveRR(rr dnswire.RR) bool {
	owner := dnswire.CanonicalName(rr.Header().Name)
	byType, ok := b.rrs[owner]
	if !ok {
		return false
	}
	t := rr.Header().Type
	rrs := byType[t]
	want := rr.String()
	for i, have := range rrs {
		if have.String() != want {
			continue
		}
		byType = b.owner(owner)
		next := make([]dnswire.RR, 0, len(rrs)-1)
		next = append(next, rrs[:i]...)
		next = append(next, rrs[i+1:]...)
		if len(next) == 0 {
			delete(byType, t)
		} else {
			byType[t] = next
		}
		if len(byType) == 0 {
			delete(b.rrs, owner)
		}
		b.del = append(b.del, have.Clone())
		b.dirty = true
		return true
	}
	return false
}

// build publishes the accumulated mutations as the next view. The
// serial is the explicit SOA's when SetSOA was called, and base+1
// otherwise.
func (b *ZoneBuilder) build(base *ZoneView) (*ZoneView, bool) {
	if !b.dirty {
		return base, false
	}
	soa := b.soa
	if !b.soaSet {
		soa = base.soa.Clone().(*dnswire.SOA)
		soa.Serial = base.Serial() + 1
	}
	byType := cloneByType(b.rrs[b.origin])
	byType[dnswire.TypeSOA] = []dnswire.RR{soa}
	b.rrs[b.origin] = byType
	return &ZoneView{
		Origin: b.origin,
		soa:    soa,
		rrs:    b.rrs,
		deltas: appendDelta(base, ZoneDelta{
			FromSOA: base.soa, ToSOA: soa, Del: b.del, Add: b.add,
		}),
	}, true
}

// LookupResult classifies a zone lookup.
type LookupResult int

// Lookup outcomes.
const (
	LookupSuccess    LookupResult = iota // answers populated
	LookupNoData                         // name exists, type does not
	LookupNXDomain                       // name does not exist
	LookupDelegation                     // referral to child zone
)

// Lookup resolves (qname, qtype) against the zone's current view; see
// ZoneView.Lookup. Lock-free.
func (z *Zone) Lookup(qname string, qtype dnswire.Type) (LookupResult, []dnswire.RR, []dnswire.RR) {
	return z.View().Lookup(qname, qtype)
}

// Lookup resolves (qname, qtype) within the view, following in-zone
// CNAME chains. It returns the result class, the answer records, and
// the authority records (SOA for negative answers, NS for referrals).
func (v *ZoneView) Lookup(qname string, qtype dnswire.Type) (LookupResult, []dnswire.RR, []dnswire.RR) {
	qname = dnswire.CanonicalName(qname)
	var answers []dnswire.RR
	seen := map[string]bool{}
	for {
		if seen[qname] {
			break // CNAME loop inside the zone; return what we have
		}
		seen[qname] = true

		// Delegation check: an NS set at a name strictly between the
		// apex and qname (or at qname itself when qtype != NS at apex)
		// produces a referral.
		if deleg := v.findDelegation(qname); deleg != "" {
			nsSet := cloneRRs(v.rrs[deleg][dnswire.TypeNS])
			var glue []dnswire.RR
			for _, ns := range nsSet {
				target := dnswire.CanonicalName(ns.(*dnswire.NS).NS)
				if byType, ok := v.rrs[target]; ok {
					glue = append(glue, cloneRRs(byType[dnswire.TypeA])...)
					glue = append(glue, cloneRRs(byType[dnswire.TypeAAAA])...)
				}
			}
			return LookupDelegation, answers, append(nsSet, glue...)
		}

		byType, ok := v.rrs[qname]
		if !ok {
			// Wildcard synthesis.
			if wc := v.findWildcard(qname); wc != nil {
				byType = wc
			} else {
				if len(answers) > 0 {
					// CNAME chain left the populated namespace.
					return LookupSuccess, answers, nil
				}
				return LookupNXDomain, nil, v.negativeAuthority()
			}
		}
		if rrs, ok := byType[qtype]; ok && len(rrs) > 0 {
			answers = append(answers, synthesize(cloneRRs(rrs), qname)...)
			return LookupSuccess, answers, nil
		}
		if cn, ok := byType[dnswire.TypeCNAME]; ok && len(cn) > 0 && qtype != dnswire.TypeCNAME {
			rec := synthesize(cloneRRs(cn[:1]), qname)[0].(*dnswire.CNAME)
			answers = append(answers, rec)
			target := dnswire.CanonicalName(rec.Target)
			if !dnswire.IsSubdomain(v.Origin, target) {
				// Chain leaves the zone: the resolver continues it.
				return LookupSuccess, answers, nil
			}
			qname = target
			continue
		}
		if len(answers) > 0 {
			return LookupSuccess, answers, nil
		}
		return LookupNoData, nil, v.negativeAuthority()
	}
	return LookupSuccess, answers, nil
}

// findDelegation returns the closest enclosing owner of qname that
// holds an NS set below the apex, or "".
func (v *ZoneView) findDelegation(qname string) string {
	for name := qname; name != "." && dnswire.IsSubdomain(v.Origin, name); name = dnswire.Parent(name) {
		if name == v.Origin {
			break
		}
		if byType, ok := v.rrs[name]; ok {
			if _, hasNS := byType[dnswire.TypeNS]; hasNS {
				return name
			}
		}
	}
	return ""
}

// findWildcard looks for "*.<parent>" owners covering qname.
func (v *ZoneView) findWildcard(qname string) map[dnswire.Type][]dnswire.RR {
	for name := dnswire.Parent(qname); dnswire.IsSubdomain(v.Origin, name); name = dnswire.Parent(name) {
		if byType, ok := v.rrs["*."+strings.TrimPrefix(name, ".")]; ok {
			return byType
		}
		if name == v.Origin || name == "." {
			break
		}
	}
	return nil
}

// synthesize rewrites wildcard-owned records to the query name.
func synthesize(rrs []dnswire.RR, qname string) []dnswire.RR {
	for _, rr := range rrs {
		if strings.HasPrefix(rr.Header().Name, "*.") {
			rr.Header().Name = qname
		}
	}
	return rrs
}

func (v *ZoneView) negativeAuthority() []dnswire.RR {
	if v.soa == nil {
		return nil
	}
	return []dnswire.RR{v.soa.Clone()}
}

func cloneRRs(rrs []dnswire.RR) []dnswire.RR {
	out := make([]dnswire.RR, len(rrs))
	for i, rr := range rrs {
		out[i] = rr.Clone()
	}
	return out
}

// ZonePlugin serves authoritative answers from a set of zones,
// matching the longest enclosing origin. Queries outside every zone
// fall through to the next plugin. The zone set itself is an immutable
// snapshot swapped atomically, so zones can be added or replaced while
// serving without a lock on the query path.
type ZonePlugin struct {
	zones atomic.Pointer[map[string]*Zone]
	wmu   sync.Mutex
}

// NewZonePlugin builds the plugin from zones.
func NewZonePlugin(zones ...*Zone) *ZonePlugin {
	p := &ZonePlugin{}
	m := make(map[string]*Zone, len(zones))
	for _, z := range zones {
		m[z.Origin] = z
	}
	p.zones.Store(&m)
	return p
}

// AddZone registers (or replaces) a zone.
func (p *ZonePlugin) AddZone(z *Zone) {
	p.wmu.Lock()
	defer p.wmu.Unlock()
	old := *p.zones.Load()
	m := make(map[string]*Zone, len(old)+1)
	for k, v := range old {
		m[k] = v
	}
	m[z.Origin] = z
	p.zones.Store(&m)
}

// Zone returns the registered zone with the given origin, or nil.
func (p *ZonePlugin) Zone(origin string) *Zone {
	return (*p.zones.Load())[dnswire.CanonicalName(origin)]
}

// Zones returns the registered zones, sorted by origin.
func (p *ZonePlugin) Zones() []*Zone {
	m := *p.zones.Load()
	origins := make([]string, 0, len(m))
	for o := range m {
		origins = append(origins, o)
	}
	sort.Strings(origins)
	out := make([]*Zone, len(origins))
	for i, o := range origins {
		out[i] = m[o]
	}
	return out
}

// Name implements Plugin.
func (p *ZonePlugin) Name() string { return "zone" }

// match finds the longest registered origin enclosing qname.
func (p *ZonePlugin) match(qname string) *Zone {
	var best *Zone
	for origin, z := range *p.zones.Load() {
		if dnswire.IsSubdomain(origin, qname) {
			if best == nil || dnswire.CountLabels(origin) > dnswire.CountLabels(best.Origin) {
				best = z
			}
		}
	}
	return best
}

// ServeDNS implements Plugin.
func (p *ZonePlugin) ServeDNS(ctx context.Context, w ResponseWriter, r *Request, next Handler) (dnswire.Rcode, error) {
	z := p.match(r.Name())
	if z == nil {
		return next.ServeDNS(ctx, w, r)
	}
	endHop := telemetry.StartHop(ctx, "zone")
	// One view load per query: the answer, authority, and serial all
	// come from the same snapshot even if a writer publishes mid-query.
	view := z.View()
	result, answers, authority := view.Lookup(r.Name(), r.Type())
	endHop(z.Origin)
	m := new(dnswire.Message)
	m.SetReply(r.Msg)
	m.Authoritative = true
	switch result {
	case LookupSuccess:
		m.Answers = answers
	case LookupNoData:
		m.Authorities = authority
	case LookupNXDomain:
		m.Rcode = dnswire.RcodeNameError
		m.Authorities = authority
	case LookupDelegation:
		m.Authoritative = false
		m.Answers = answers
		// Referral: NS in authority, glue in additional.
		for _, rr := range authority {
			if rr.Header().Type == dnswire.TypeNS {
				m.Authorities = append(m.Authorities, rr)
			} else {
				m.Additionals = append(m.Additionals, rr)
			}
		}
	}
	// Echo the client's ECS option per RFC 7871 §7.2.1. Zone data is
	// static — the same answer goes to every subnet — so the honest
	// scope is 0: resolvers may serve this answer to all their clients
	// from one cache entry. Subnet-tailored answers (and their nonzero
	// scopes) are the CDN router's job, not the zone's.
	if ecs, ok := r.Msg.ECS(); ok {
		opt := m.SetEDNS(dnswire.DefaultEDNSSize)
		scoped := *ecs
		scoped.ScopePrefix = 0
		opt.Options = append(opt.Options, &scoped)
	}
	if err := w.WriteMsg(m); err != nil {
		return dnswire.RcodeServerFailure, err
	}
	return m.Rcode, nil
}

// ParseZone reads a minimal zone-file dialect: one record per line,
// "owner [ttl] [IN] type rdata...", with "@" denoting the origin,
// unqualified owners made relative to it, and ";" comments. It exists
// so cmd/dnsd can serve operator-authored zones; programmatic callers
// use the Zone builder methods. The whole file becomes one revision:
// an explicit SOA line's serial is adopted verbatim.
func ParseZone(origin string, r io.Reader) (*Zone, error) {
	z := NewZone(origin)
	err := z.Update(func(b *ZoneBuilder) error {
		sc := bufio.NewScanner(r)
		lineNo := 0
		for sc.Scan() {
			lineNo++
			line := sc.Text()
			if i := strings.IndexByte(line, ';'); i >= 0 {
				line = line[:i]
			}
			fields := strings.Fields(line)
			if len(fields) == 0 {
				continue
			}
			rr, err := parseRecordLine(b.origin, fields)
			if err != nil {
				return fmt.Errorf("zone %s line %d: %w", origin, lineNo, err)
			}
			if err := b.Add(rr); err != nil {
				return fmt.Errorf("zone %s line %d: %w", origin, lineNo, err)
			}
		}
		return sc.Err()
	})
	if err != nil {
		return nil, err
	}
	return z, nil
}

func qualify(name, origin string) string {
	if name == "@" {
		return origin
	}
	if strings.HasSuffix(name, ".") {
		return dnswire.CanonicalName(name)
	}
	return dnswire.CanonicalName(name + "." + origin)
}

func parseRecordLine(origin string, fields []string) (dnswire.RR, error) {
	if len(fields) < 3 {
		return nil, fmt.Errorf("too few fields")
	}
	owner := qualify(fields[0], origin)
	rest := fields[1:]
	ttl := uint32(300)
	if n, err := strconv.ParseUint(rest[0], 10, 32); err == nil {
		ttl = uint32(n)
		rest = rest[1:]
	}
	if len(rest) > 0 && strings.EqualFold(rest[0], "IN") {
		rest = rest[1:]
	}
	if len(rest) < 2 {
		return nil, fmt.Errorf("missing type or rdata")
	}
	typ, rdata := strings.ToUpper(rest[0]), rest[1:]
	hdr := dnswire.RRHeader{Name: owner, Class: dnswire.ClassINET, TTL: ttl}
	switch typ {
	case "A":
		addr, err := netip.ParseAddr(rdata[0])
		if err != nil || !addr.Is4() {
			return nil, fmt.Errorf("bad A rdata %q", rdata[0])
		}
		hdr.Type = dnswire.TypeA
		return &dnswire.A{Hdr: hdr, Addr: addr}, nil
	case "AAAA":
		addr, err := netip.ParseAddr(rdata[0])
		if err != nil || !addr.Is6() {
			return nil, fmt.Errorf("bad AAAA rdata %q", rdata[0])
		}
		hdr.Type = dnswire.TypeAAAA
		return &dnswire.AAAA{Hdr: hdr, Addr: addr}, nil
	case "CNAME":
		hdr.Type = dnswire.TypeCNAME
		return &dnswire.CNAME{Hdr: hdr, Target: qualify(rdata[0], origin)}, nil
	case "NS":
		hdr.Type = dnswire.TypeNS
		return &dnswire.NS{Hdr: hdr, NS: qualify(rdata[0], origin)}, nil
	case "PTR":
		hdr.Type = dnswire.TypePTR
		return &dnswire.PTR{Hdr: hdr, PTR: qualify(rdata[0], origin)}, nil
	case "TXT":
		hdr.Type = dnswire.TypeTXT
		var txt []string
		for _, f := range rdata {
			txt = append(txt, strings.Trim(f, `"`))
		}
		return &dnswire.TXT{Hdr: hdr, Txt: txt}, nil
	case "MX":
		if len(rdata) < 2 {
			return nil, fmt.Errorf("MX needs preference and host")
		}
		pref, err := strconv.ParseUint(rdata[0], 10, 16)
		if err != nil {
			return nil, fmt.Errorf("bad MX preference %q", rdata[0])
		}
		hdr.Type = dnswire.TypeMX
		return &dnswire.MX{Hdr: hdr, Preference: uint16(pref), MX: qualify(rdata[1], origin)}, nil
	case "SRV":
		if len(rdata) < 4 {
			return nil, fmt.Errorf("SRV needs priority weight port target")
		}
		var nums [3]uint16
		for i := 0; i < 3; i++ {
			v, err := strconv.ParseUint(rdata[i], 10, 16)
			if err != nil {
				return nil, fmt.Errorf("bad SRV field %q", rdata[i])
			}
			nums[i] = uint16(v)
		}
		hdr.Type = dnswire.TypeSRV
		return &dnswire.SRV{Hdr: hdr, Priority: nums[0], Weight: nums[1], Port: nums[2], Target: qualify(rdata[3], origin)}, nil
	case "SOA":
		if len(rdata) < 7 {
			return nil, fmt.Errorf("SOA needs ns mbox serial refresh retry expire minttl")
		}
		var nums [5]uint32
		for i := 0; i < 5; i++ {
			v, err := strconv.ParseUint(rdata[2+i], 10, 32)
			if err != nil {
				return nil, fmt.Errorf("bad SOA field %q", rdata[2+i])
			}
			nums[i] = uint32(v)
		}
		hdr.Type = dnswire.TypeSOA
		return &dnswire.SOA{Hdr: hdr, NS: qualify(rdata[0], origin), Mbox: qualify(rdata[1], origin),
			Serial: nums[0], Refresh: nums[1], Retry: nums[2], Expire: nums[3], MinTTL: nums[4]}, nil
	}
	return nil, fmt.Errorf("unsupported type %q", typ)
}
