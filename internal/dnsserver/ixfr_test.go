package dnsserver

import (
	"context"
	"fmt"
	"net/netip"
	"testing"
	"time"

	"github.com/meccdn/meccdn/internal/dnsclient"
	"github.com/meccdn/meccdn/internal/dnswire"
)

// ixfrAsk sends an IXFR query (with the client's serial in the
// authority section, per RFC 1995 §3) through the chain over a fake
// TCP transport and returns the answer records.
func ixfrAsk(t *testing.T, h Handler, zone string, serial uint32) []dnswire.RR {
	t.Helper()
	q := new(dnswire.Message)
	q.SetQuestion(zone, dnswire.TypeIXFR)
	q.Authorities = []dnswire.RR{&dnswire.SOA{
		Hdr:    dnswire.RRHeader{Name: zone, Type: dnswire.TypeSOA, Class: dnswire.ClassINET},
		Serial: serial,
	}}
	resp := Resolve(context.Background(), h, &Request{
		Msg: q, Transport: "tcp", Client: netip.MustParseAddrPort("10.0.0.1:5000")})
	if resp.Rcode != dnswire.RcodeSuccess {
		t.Fatalf("IXFR rcode = %v", resp.Rcode)
	}
	return resp.Answers
}

// recordSet flattens a zone view into a comparable multiset keyed by
// the records' presentation form (SOA excluded: serials differ by
// construction path).
func recordSet(z *Zone) map[string]int {
	set := make(map[string]int)
	for _, rr := range TransferRecords(z) {
		if rr.Header().Type == dnswire.TypeSOA {
			continue
		}
		set[rr.String()]++
	}
	return set
}

func sameRecords(a, b map[string]int) bool {
	if len(a) != len(b) {
		return false
	}
	for k, n := range a {
		if b[k] != n {
			return false
		}
	}
	return true
}

// TestIXFRRoundTrip is the RFC 1995 round-trip: a secondary seeded by
// full AXFR catches up through incremental transfers alone, and the
// result is record-for-record identical to a fresh full transfer —
// full AXFR ≡ base + applied diffs.
func TestIXFRRoundTrip(t *testing.T) {
	zone := testZone(t)
	// Bulk the zone up so "delta ≪ full zone" is observable.
	for i := 0; i < 50; i++ {
		if err := zone.AddA(fmt.Sprintf("bulk%d.mycdn.ciab.test.", i), 60, netip.MustParseAddr("10.96.2.1")); err != nil {
			t.Fatal(err)
		}
	}
	zp := NewZonePlugin(zone)
	h := Chain(NewAXFR(zp), zp)

	// Seed the secondary with a full transfer at the base serial.
	base := TransferRecords(zone)
	secondary, err := ZoneFromTransfer(base)
	if err != nil {
		t.Fatal(err)
	}
	baseSerial := secondary.Serial()

	// Three revisions on the primary: add, replace, remove.
	if err := zone.AddA("new1.mycdn.ciab.test.", 60, netip.MustParseAddr("10.96.0.50")); err != nil {
		t.Fatal(err)
	}
	if err := zone.Update(func(b *ZoneBuilder) error {
		b.Remove("edge1.mycdn.ciab.test.", dnswire.TypeTXT)
		return b.AddA("edge1.mycdn.ciab.test.", 60, netip.MustParseAddr("10.96.0.13"))
	}); err != nil {
		t.Fatal(err)
	}
	if !zone.Remove("external.mycdn.ciab.test.", dnswire.TypeCNAME) {
		t.Fatal("Remove external CNAME failed")
	}

	// The incremental answer must be a delta, not a full zone: bounded
	// by the journal walk, opening and closing with the current SOA.
	rrs := ixfrAsk(t, h, "mycdn.ciab.test.", baseSerial)
	if len(rrs) >= len(TransferRecords(zone)) {
		t.Errorf("IXFR shipped %d records, full transfer is %d — not incremental",
			len(rrs), len(TransferRecords(zone)))
	}
	if _, second := rrs[1].(*dnswire.SOA); !second {
		t.Fatal("IXFR response is not in incremental format (second record not SOA)")
	}

	incremental, err := ApplyTransfer(secondary, rrs)
	if err != nil {
		t.Fatal(err)
	}
	if !incremental {
		t.Error("ApplyTransfer did not classify the response as incremental")
	}
	if secondary.Serial() != zone.Serial() {
		t.Errorf("secondary serial %d, primary %d", secondary.Serial(), zone.Serial())
	}
	if !sameRecords(recordSet(secondary), recordSet(zone)) {
		t.Errorf("base + diffs != full zone:\nsecondary %v\nprimary  %v",
			recordSet(secondary), recordSet(zone))
	}

	// Already current: a single SOA, applied as a no-op.
	rrs = ixfrAsk(t, h, "mycdn.ciab.test.", zone.Serial())
	if len(rrs) != 1 {
		t.Fatalf("up-to-date IXFR returned %d records, want 1", len(rrs))
	}
	if inc, err := ApplyTransfer(secondary, rrs); err != nil || !inc {
		t.Errorf("up-to-date apply: incremental=%v err=%v", inc, err)
	}
}

// TestIXFRFallsBackToFullTransfer covers the journal-exhausted path:
// a serial older than the journal reaches gets a full AXFR-style
// response, which ApplyTransfer applies as a replacement.
func TestIXFRFallsBackToFullTransfer(t *testing.T) {
	zone := testZone(t)
	zp := NewZonePlugin(zone)
	h := Chain(NewAXFR(zp), zp)

	// A serial the journal has never seen (zones are born at serial 1,
	// so 0 predates every journal entry) → full transfer.
	rrs := ixfrAsk(t, h, "mycdn.ciab.test.", 0)
	if _, second := rrs[1].(*dnswire.SOA); second {
		t.Fatal("unknown-serial IXFR answered incrementally")
	}
	secondary := NewZone("mycdn.ciab.test.")
	incremental, err := ApplyTransfer(secondary, rrs)
	if err != nil {
		t.Fatal(err)
	}
	if incremental {
		t.Error("full response classified as incremental")
	}
	if secondary.Serial() != zone.Serial() || !sameRecords(recordSet(secondary), recordSet(zone)) {
		t.Error("full fallback did not reproduce the zone")
	}

	// Push more revisions than the journal holds: the base serial must
	// age out and the server must fall back to full rather than
	// serving a truncated diff chain.
	old := zone.Serial()
	for i := 0; i < maxZoneDeltas+10; i++ {
		if err := zone.AddA(fmt.Sprintf("churn%d.mycdn.ciab.test.", i), 60, netip.MustParseAddr("10.96.1.1")); err != nil {
			t.Fatal(err)
		}
	}
	rrs = ixfrAsk(t, h, "mycdn.ciab.test.", old)
	if _, second := rrs[1].(*dnswire.SOA); second {
		t.Error("journal-exhausted IXFR answered incrementally")
	}
}

// TestIXFROverRealTCP drives the requester side end to end: the
// secondary pulls an incremental delta over a real TCP socket via
// Client.TransferFrom.
func TestIXFROverRealTCP(t *testing.T) {
	zone := testZone(t)
	zp := NewZonePlugin(zone)
	addr := startTestServer(t, Chain(NewAXFR(zp), zp))

	c := &dnsclient.Client{Transport: &dnsclient.NetTransport{}, Timeout: 2 * time.Second}
	full, err := c.Transfer(context.Background(), addr, "mycdn.ciab.test.")
	if err != nil {
		t.Fatal(err)
	}
	secondary, err := ZoneFromTransfer(full)
	if err != nil {
		t.Fatal(err)
	}

	if err := zone.AddA("pulled.mycdn.ciab.test.", 60, netip.MustParseAddr("10.96.0.77")); err != nil {
		t.Fatal(err)
	}
	rrs, err := c.TransferFrom(context.Background(), addr, "mycdn.ciab.test.", secondary.Serial())
	if err != nil {
		t.Fatal(err)
	}
	incremental, err := ApplyTransfer(secondary, rrs)
	if err != nil {
		t.Fatal(err)
	}
	if !incremental {
		t.Error("wire IXFR was not incremental")
	}
	res, ans, _ := secondary.Lookup("pulled.mycdn.ciab.test.", dnswire.TypeA)
	if res != LookupSuccess || len(ans) != 1 {
		t.Errorf("secondary missing pulled record: %v %d answers", res, len(ans))
	}
	if secondary.Serial() != zone.Serial() {
		t.Errorf("secondary serial %d, primary %d", secondary.Serial(), zone.Serial())
	}
}

// TestIXFRRefusedOverUDP: transfers stay TCP-only.
func TestIXFRRefusedOverUDP(t *testing.T) {
	zp := NewZonePlugin(testZone(t))
	h := Chain(NewAXFR(zp), zp)
	q := new(dnswire.Message)
	q.SetQuestion("mycdn.ciab.test.", dnswire.TypeIXFR)
	resp := Resolve(context.Background(), h, &Request{
		Msg: q, Transport: "udp", Client: netip.MustParseAddrPort("10.0.0.1:5000")})
	if resp.Rcode != dnswire.RcodeRefused {
		t.Errorf("UDP IXFR rcode = %v", resp.Rcode)
	}
}
