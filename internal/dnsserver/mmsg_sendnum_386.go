//go:build linux && 386

package dnsserver

// sendmmsg's dedicated i386 syscall number (Linux 3.0+).
const sendmmsgTrap uintptr = 345
