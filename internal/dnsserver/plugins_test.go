package dnsserver

import (
	"context"
	"math/rand"
	"net/netip"
	"testing"
	"time"

	"github.com/meccdn/meccdn/internal/dnsclient"
	"github.com/meccdn/meccdn/internal/dnswire"
	"github.com/meccdn/meccdn/internal/simnet"
	"github.com/meccdn/meccdn/internal/vclock"
)

// countingPlugin counts how often the chain reaches it.
type countingPlugin struct {
	hits int
	h    Handler
}

func (c *countingPlugin) Name() string { return "counting" }
func (c *countingPlugin) ServeDNS(ctx context.Context, w ResponseWriter, r *Request, next Handler) (dnswire.Rcode, error) {
	c.hits++
	if c.h != nil {
		return c.h.ServeDNS(ctx, w, r)
	}
	return next.ServeDNS(ctx, w, r)
}

func answerHandler(addr string) Handler {
	return HandlerFunc(func(ctx context.Context, w ResponseWriter, r *Request) (dnswire.Rcode, error) {
		m := new(dnswire.Message)
		m.SetReply(r.Msg)
		m.Answers = []dnswire.RR{&dnswire.A{
			Hdr:  dnswire.RRHeader{Name: r.Name(), Type: dnswire.TypeA, Class: dnswire.ClassINET, TTL: 30},
			Addr: netip.MustParseAddr(addr),
		}}
		return m.Rcode, w.WriteMsg(m)
	})
}

func queryFor(name string) *Request {
	q := new(dnswire.Message)
	q.SetQuestion(name, dnswire.TypeA)
	return &Request{Msg: q, Client: netip.MustParseAddrPort("198.51.100.7:4242"), Transport: "test"}
}

func TestChainOrderAndFallthrough(t *testing.T) {
	p1 := &countingPlugin{}
	p2 := &countingPlugin{h: answerHandler("192.0.2.1")}
	resp := Resolve(context.Background(), Chain(p1, p2), queryFor("x.test."))
	if p1.hits != 1 || p2.hits != 1 {
		t.Errorf("hits = %d, %d", p1.hits, p2.hits)
	}
	if len(resp.Answers) != 1 {
		t.Errorf("answers = %d", len(resp.Answers))
	}
	// Empty chain refuses.
	resp = Resolve(context.Background(), Chain(), queryFor("x.test."))
	if resp.Rcode != dnswire.RcodeRefused {
		t.Errorf("empty chain rcode = %v", resp.Rcode)
	}
}

func TestResolveSynthesizesServfail(t *testing.T) {
	h := HandlerFunc(func(ctx context.Context, w ResponseWriter, r *Request) (dnswire.Rcode, error) {
		return dnswire.RcodeSuccess, context.DeadlineExceeded
	})
	resp := Resolve(context.Background(), h, queryFor("x.test."))
	if resp.Rcode != dnswire.RcodeServerFailure {
		t.Errorf("rcode = %v", resp.Rcode)
	}
}

func TestCacheHitAndTTLAging(t *testing.T) {
	clock := &vclock.Fixed{}
	cache := NewCache(clock)
	backend := &countingPlugin{h: answerHandler("192.0.2.9")}
	h := Chain(cache, backend)

	r1 := Resolve(context.Background(), h, queryFor("cached.test."))
	if len(r1.Answers) != 1 || backend.hits != 1 {
		t.Fatalf("first: answers=%d hits=%d", len(r1.Answers), backend.hits)
	}
	clock.Advance(10 * time.Second)
	r2 := Resolve(context.Background(), h, queryFor("cached.test."))
	if backend.hits != 1 {
		t.Fatalf("cache miss on second query")
	}
	if got := r2.Answers[0].Header().TTL; got != 20 {
		t.Errorf("aged TTL = %d, want 20", got)
	}
	s := cache.Stats()
	if s.Hits != 1 || s.Misses != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestCacheExpiry(t *testing.T) {
	clock := &vclock.Fixed{}
	cache := NewCache(clock)
	backend := &countingPlugin{h: answerHandler("192.0.2.9")}
	h := Chain(cache, backend)
	Resolve(context.Background(), h, queryFor("exp.test."))
	clock.Advance(31 * time.Second) // TTL is 30s
	Resolve(context.Background(), h, queryFor("exp.test."))
	if backend.hits != 2 {
		t.Errorf("expired entry served from cache")
	}
}

func TestCacheNegative(t *testing.T) {
	clock := &vclock.Fixed{}
	cache := NewCache(clock)
	z := NewZone("neg.test.")
	backend := &countingPlugin{}
	h := Chain(cache, backend, NewZonePlugin(z))
	Resolve(context.Background(), h, queryFor("missing.neg.test."))
	Resolve(context.Background(), h, queryFor("missing.neg.test."))
	if backend.hits != 1 {
		t.Errorf("negative response not cached: backend hits = %d", backend.hits)
	}
	if s := cache.Stats(); s.NegativeHits != 1 {
		t.Errorf("negative hits = %d", s.NegativeHits)
	}
}

func TestCacheECSFragmentation(t *testing.T) {
	clock := &vclock.Fixed{}
	cache := NewCache(clock)
	// The backend tailors its answers to the full disclosed prefix
	// (scope = source), so every distinct subnet costs its own entry —
	// the fragmentation worst case. A backend that answers without ECS
	// (or scope 0) would share one entry across all subnets; see
	// ecscache_test.go for those semantics.
	backend := &countingPlugin{h: ecsAnswerHandler("192.0.2.9", echoSourceScope)}
	h := Chain(cache, backend)
	Resolve(context.Background(), h, ecsQueryFor("frag.test.", "10.1.0.0/24"))
	Resolve(context.Background(), h, ecsQueryFor("frag.test.", "10.2.0.0/24"))
	Resolve(context.Background(), h, ecsQueryFor("frag.test.", "10.1.0.0/24"))
	if backend.hits != 2 {
		t.Errorf("ECS fragmentation: backend hits = %d, want 2", backend.hits)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	clock := &vclock.Fixed{}
	cache := NewCache(clock)
	cache.MaxEntries = 4
	backend := &countingPlugin{h: answerHandler("192.0.2.9")}
	h := Chain(cache, backend)
	names := []string{"a.t.", "b.t.", "c.t.", "d.t.", "e.t."}
	for _, n := range names {
		Resolve(context.Background(), h, queryFor(n))
	}
	// "a.t." should have been evicted.
	Resolve(context.Background(), h, queryFor("a.t."))
	if backend.hits != 6 {
		t.Errorf("backend hits = %d, want 6 (a.t. evicted)", backend.hits)
	}
	// One eviction for e.t. displacing a.t., one more when a.t. is
	// re-stored at capacity.
	if s := cache.Stats(); s.Evictions != 2 {
		t.Errorf("evictions = %d", s.Evictions)
	}
}

func TestCacheFlush(t *testing.T) {
	clock := &vclock.Fixed{}
	cache := NewCache(clock)
	backend := &countingPlugin{h: answerHandler("192.0.2.9")}
	h := Chain(cache, backend)
	Resolve(context.Background(), h, queryFor("f.test."))
	cache.Flush()
	Resolve(context.Background(), h, queryFor("f.test."))
	if backend.hits != 2 {
		t.Error("flush did not clear cache")
	}
}

// simPair builds a two-node simnet with a DNS server on "up" and
// returns the network and the upstream's address.
func simPair(t *testing.T, seed int64, h Handler) (*simnet.Network, netip.AddrPort) {
	t.Helper()
	n := simnet.New(seed)
	n.AddNode("down")
	n.AddNode("up")
	n.AddLink("down", "up", simnet.Constant(5*time.Millisecond), 0)
	Attach(n.Node("up"), h, simnet.Constant(time.Millisecond))
	return n, netip.AddrPortFrom(n.Node("up").Addr, 53)
}

func simClient(n *simnet.Network, node string) *dnsclient.Client {
	c := &dnsclient.Client{Transport: &dnsclient.SimTransport{Endpoint: n.Node(node).Endpoint()}}
	c.SetRand(rand.New(rand.NewSource(1)))
	return c
}

func TestForwardPlugin(t *testing.T) {
	z := NewZone("fwd.test.")
	_ = z.AddA("host.fwd.test.", 60, netip.MustParseAddr("192.0.2.77"))
	n, upAddr := simPair(t, 30, Chain(NewZonePlugin(z)))

	fwd := &Forward{Upstreams: []netip.AddrPort{upAddr}, Client: simClient(n, "down")}
	resp := Resolve(context.Background(), Chain(fwd), queryFor("host.fwd.test."))
	if len(resp.Answers) != 1 {
		t.Fatalf("answers = %v (rcode %v)", resp.Answers, resp.Rcode)
	}
}

func TestForwardFailover(t *testing.T) {
	z := NewZone("fo.test.")
	_ = z.AddA("x.fo.test.", 60, netip.MustParseAddr("192.0.2.1"))
	n := simnet.New(31)
	n.AddNode("down")
	n.AddNode("dead")
	n.AddNode("live")
	n.AddLink("down", "dead", simnet.Constant(time.Millisecond), 1.0)
	n.AddLink("down", "live", simnet.Constant(time.Millisecond), 0)
	Attach(n.Node("live"), Chain(NewZonePlugin(z)), nil)

	client := &dnsclient.Client{Transport: &dnsclient.SimTransport{
		Endpoint: n.Node("down").Endpoint(), Timeout: 10 * time.Millisecond}}
	client.SetRand(rand.New(rand.NewSource(2)))
	fwd := &Forward{
		Upstreams: []netip.AddrPort{
			netip.AddrPortFrom(n.Node("dead").Addr, 53),
			netip.AddrPortFrom(n.Node("live").Addr, 53),
		},
		Client: client,
	}
	resp := Resolve(context.Background(), Chain(fwd), queryFor("x.fo.test."))
	if len(resp.Answers) != 1 {
		t.Fatalf("failover failed: %v", resp.Rcode)
	}
}

func TestForwardMatchScoping(t *testing.T) {
	fwd := &Forward{Match: "scoped.test.", Client: &dnsclient.Client{}}
	fallthroughHit := &countingPlugin{h: answerHandler("192.0.2.5")}
	resp := Resolve(context.Background(), Chain(fwd, fallthroughHit), queryFor("other.example."))
	if fallthroughHit.hits != 1 || len(resp.Answers) != 1 {
		t.Error("out-of-scope query did not fall through")
	}
}

func TestStubRoutesSubdomain(t *testing.T) {
	cdnsZone := NewZone("mycdn.ciab.test.")
	_ = cdnsZone.AddA("video.mycdn.ciab.test.", 30, netip.MustParseAddr("10.96.0.50"))
	n, cdnsAddr := simPair(t, 32, Chain(NewZonePlugin(cdnsZone)))

	stub := NewStub(simClient(n, "down"))
	stub.Route("mycdn.ciab.test.", cdnsAddr)
	other := &countingPlugin{h: answerHandler("192.0.2.1")}
	h := Chain(stub, other)

	resp := Resolve(context.Background(), h, queryFor("video.mycdn.ciab.test."))
	if len(resp.Answers) != 1 || resp.Answers[0].(*dnswire.A).Addr.String() != "10.96.0.50" {
		t.Fatalf("stub answer = %v", resp.Answers)
	}
	if other.hits != 0 {
		t.Error("stub query leaked to next plugin")
	}
	resp = Resolve(context.Background(), h, queryFor("elsewhere.example."))
	if other.hits != 1 {
		t.Error("non-stub query did not fall through")
	}
	stub.Unroute("mycdn.ciab.test.")
	Resolve(context.Background(), h, queryFor("video.mycdn.ciab.test."))
	if other.hits != 2 {
		t.Error("unrouted stub domain still intercepted")
	}
}

func TestSplitHorizon(t *testing.T) {
	internalNet := netip.MustParsePrefix("10.96.0.0/16")
	split := &Split{
		IsInternal: func(a netip.Addr) bool { return internalNet.Contains(a) },
		Internal:   answerHandler("10.96.0.1"),
		Public:     answerHandler("203.0.113.1"),
	}
	h := Chain(split)

	rInt := queryFor("svc.cluster.local.")
	rInt.Client = netip.MustParseAddrPort("10.96.3.4:53000")
	resp := Resolve(context.Background(), h, rInt)
	if resp.Answers[0].(*dnswire.A).Addr.String() != "10.96.0.1" {
		t.Error("internal client got public view")
	}

	rPub := queryFor("svc.cluster.local.")
	rPub.Client = netip.MustParseAddrPort("198.51.100.9:53000")
	resp = Resolve(context.Background(), h, rPub)
	if resp.Answers[0].(*dnswire.A).Addr.String() != "203.0.113.1" {
		t.Error("public client got internal view")
	}
}

func TestSplitWithNilHandlersRefuses(t *testing.T) {
	split := &Split{}
	resp := Resolve(context.Background(), Chain(split), queryFor("x.test."))
	if resp.Rcode != dnswire.RcodeRefused {
		t.Errorf("rcode = %v", resp.Rcode)
	}
}

func TestECSPluginAddsClientSubnet(t *testing.T) {
	var seen *dnswire.ECSOption
	inspect := HandlerFunc(func(ctx context.Context, w ResponseWriter, r *Request) (dnswire.Rcode, error) {
		seen, _ = r.Msg.ECS()
		return answerHandler("192.0.2.1").ServeDNS(ctx, w, r)
	})
	ecs := &ECS{}
	h := Chain(ecs, pluginize(inspect))
	Resolve(context.Background(), h, queryFor("ecs.test."))
	if seen == nil {
		t.Fatal("no ECS attached")
	}
	if seen.SourcePrefix != 24 {
		t.Errorf("source prefix = %d", seen.SourcePrefix)
	}
	if seen.Prefix().Masked() != netip.MustParsePrefix("198.51.100.0/24") {
		t.Errorf("prefix = %v", seen.Prefix())
	}
}

func TestECSPluginRespectsExisting(t *testing.T) {
	var seen *dnswire.ECSOption
	inspect := HandlerFunc(func(ctx context.Context, w ResponseWriter, r *Request) (dnswire.Rcode, error) {
		seen, _ = r.Msg.ECS()
		return dnswire.RcodeSuccess, nil
	})
	h := Chain(&ECS{}, pluginize(inspect))
	r := queryFor("ecs.test.")
	opt := r.Msg.SetEDNS(1232)
	opt.Options = append(opt.Options, dnswire.NewECSOption(netip.MustParsePrefix("10.0.0.0/8")))
	Resolve(context.Background(), h, r)
	if seen == nil || seen.SourcePrefix != 8 {
		t.Errorf("existing ECS replaced: %+v", seen)
	}
}

func TestECSPluginOverride(t *testing.T) {
	var seen *dnswire.ECSOption
	inspect := HandlerFunc(func(ctx context.Context, w ResponseWriter, r *Request) (dnswire.Rcode, error) {
		seen, _ = r.Msg.ECS()
		return dnswire.RcodeSuccess, nil
	})
	ecs := &ECS{Override: netip.MustParsePrefix("100.64.0.0/10")}
	Resolve(context.Background(), Chain(ecs, pluginize(inspect)), queryFor("x.test."))
	if seen == nil || seen.Prefix() != netip.MustParsePrefix("100.64.0.0/10") {
		t.Errorf("override not applied: %+v", seen)
	}
}

// pluginize wraps a terminal Handler as a Plugin for tests.
func pluginize(h Handler) Plugin {
	return &countingPlugin{h: h}
}

func TestLoadShedThreshold(t *testing.T) {
	clock := &vclock.Fixed{}
	ls := &LoadShed{Clock: clock, Window: time.Second, MaxQueries: 5}
	backend := &countingPlugin{h: answerHandler("192.0.2.1")}
	h := Chain(ls, backend)
	var refused int
	for i := 0; i < 8; i++ {
		resp := Resolve(context.Background(), h, queryFor("burst.test."))
		if resp.Rcode == dnswire.RcodeRefused {
			refused++
		}
	}
	if backend.hits != 5 || refused != 3 {
		t.Errorf("hits=%d refused=%d", backend.hits, refused)
	}
	// Window rolls over: budget resets.
	clock.Advance(time.Second)
	resp := Resolve(context.Background(), h, queryFor("burst.test."))
	if resp.Rcode == dnswire.RcodeRefused {
		t.Error("query refused after window reset")
	}
	shed, served := ls.Shed()
	if shed != 3 || served != 6 {
		t.Errorf("shed=%d served=%d", shed, served)
	}
}

func TestLoadShedFallback(t *testing.T) {
	clock := &vclock.Fixed{}
	fallback := &countingPlugin{h: answerHandler("203.0.113.99")}
	ls := &LoadShed{Clock: clock, MaxQueries: 1, Fallback: Chain(fallback)}
	backend := &countingPlugin{h: answerHandler("192.0.2.1")}
	h := Chain(ls, backend)
	Resolve(context.Background(), h, queryFor("a.test."))
	resp := Resolve(context.Background(), h, queryFor("b.test."))
	if fallback.hits != 1 {
		t.Error("fallback not used")
	}
	if resp.Answers[0].(*dnswire.A).Addr.String() != "203.0.113.99" {
		t.Error("fallback answer not returned")
	}
}

func TestLoadShedDisabled(t *testing.T) {
	ls := &LoadShed{Clock: &vclock.Fixed{}}
	backend := &countingPlugin{h: answerHandler("192.0.2.1")}
	h := Chain(ls, backend)
	for i := 0; i < 100; i++ {
		Resolve(context.Background(), h, queryFor("x.test."))
	}
	if backend.hits != 100 {
		t.Error("disabled loadshed dropped queries")
	}
}

func TestMetricsPlugin(t *testing.T) {
	m := NewMetrics()
	h := Chain(m, pluginize(answerHandler("192.0.2.1")))
	Resolve(context.Background(), h, queryFor("a.test."))
	Resolve(context.Background(), h, queryFor("b.test."))
	if m.Total() != 2 {
		t.Errorf("total = %d", m.Total())
	}
	if m.CountByType(dnswire.TypeA) != 2 {
		t.Errorf("A count = %d", m.CountByType(dnswire.TypeA))
	}
	if m.CountByRcode(dnswire.RcodeSuccess) != 2 {
		t.Errorf("NOERROR count = %d", m.CountByRcode(dnswire.RcodeSuccess))
	}
}
