// Package dnsserver is a composable DNS server engine modeled on the
// CoreDNS plugin architecture the paper's prototype builds on.
//
// A server is a chain of plugins; each plugin either answers the
// query, rewrites it, or passes it to the next plugin. The same chain
// runs over real UDP/TCP sockets (Server) and inside a simnet virtual
// network (Attach), so the code path that answers a query in an
// experiment is byte-for-byte the one a real deployment would run.
//
// Plugins provided here mirror the pieces of the paper's MEC DNS:
//
//   - Zone: authoritative answers from in-memory zones (the
//     orchestrator's service registry, A-DNS emulation, C-DNS glue)
//   - Cache: sharded TTL-honouring response cache with negative
//     caching and singleflight miss coalescing
//   - Forward: upstream forwarding with rcode-aware failover,
//     per-upstream health cooldowns, and optional hedged queries
//     (provider L-DNS)
//   - Stub: sub-domain delegation to an upstream (CoreDNS
//     stub-domain, used to hand the CDN domain to the C-DNS);
//     safe for live reconfiguration
//   - Split: split-horizon namespaces (internal VNF vs public MEC-CDN)
//   - ECS: EDNS Client Subnet attachment and scrubbing (RFC 7871)
//   - LoadShed: token-bucket ingress admission (DoS mitigation)
//   - Metrics: query/rcode counters and a ServeDNS duration histogram
package dnsserver

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/netip"
	"sync"
	"time"

	"github.com/meccdn/meccdn/internal/dnswire"
	"github.com/meccdn/meccdn/internal/telemetry"
)

// Request carries one inbound query and its connection metadata.
type Request struct {
	Msg *dnswire.Message
	// Client is the query's source address as seen by this server.
	// Behind a cellular gateway this is the P-GW's public address,
	// not the UE's — exactly the obfuscation the paper discusses.
	Client netip.AddrPort
	// Transport is "udp", "tcp", or "sim".
	Transport string
}

// Name returns the canonicalized first question name.
func (r *Request) Name() string { return dnswire.CanonicalName(r.Msg.Question().Name) }

// Type returns the first question type.
func (r *Request) Type() dnswire.Type { return r.Msg.Question().Type }

// ResponseWriter sends the response for one request.
type ResponseWriter interface {
	WriteMsg(*dnswire.Message) error
}

// Handler answers DNS requests. If no response was written, the
// returned rcode is synthesized into one by the server; a non-nil
// error produces SERVFAIL.
type Handler interface {
	ServeDNS(ctx context.Context, w ResponseWriter, r *Request) (dnswire.Rcode, error)
}

// HandlerFunc adapts a function to Handler.
type HandlerFunc func(ctx context.Context, w ResponseWriter, r *Request) (dnswire.Rcode, error)

// ServeDNS implements Handler.
func (f HandlerFunc) ServeDNS(ctx context.Context, w ResponseWriter, r *Request) (dnswire.Rcode, error) {
	return f(ctx, w, r)
}

// Plugin is one link of a server chain.
type Plugin interface {
	// Name identifies the plugin in metrics and errors.
	Name() string
	// ServeDNS handles the request or delegates to next.
	ServeDNS(ctx context.Context, w ResponseWriter, r *Request, next Handler) (dnswire.Rcode, error)
}

// Chain composes plugins into a Handler. The final fallthrough
// REFUSES the query, the behaviour of a server with no matching zone.
func Chain(plugins ...Plugin) Handler {
	h := Handler(HandlerFunc(func(ctx context.Context, w ResponseWriter, r *Request) (dnswire.Rcode, error) {
		return dnswire.RcodeRefused, nil
	}))
	for i := len(plugins) - 1; i >= 0; i-- {
		p, next := plugins[i], h
		h = HandlerFunc(func(ctx context.Context, w ResponseWriter, r *Request) (dnswire.Rcode, error) {
			return p.ServeDNS(ctx, w, r, next)
		})
	}
	return h
}

// recorder wraps a ResponseWriter and notes whether a response was
// written, so the engine can synthesize one if not.
type recorder struct {
	w       ResponseWriter
	written bool
	msg     *dnswire.Message
}

// WriteMsg implements ResponseWriter. Only the first write is passed
// through; later writes from confused plugins are dropped.
func (rec *recorder) WriteMsg(m *dnswire.Message) error {
	if rec.written {
		return nil
	}
	rec.written = true
	rec.msg = m
	if rec.w == nil {
		return nil
	}
	return rec.w.WriteMsg(m)
}

// Resolve runs handler h to completion for req and returns the
// response message, synthesizing an empty response with the handler's
// rcode (or SERVFAIL on error) when no plugin answered. It is the
// engine shared by the socket server, the simnet adapter, and tests.
func Resolve(ctx context.Context, h Handler, req *Request) *dnswire.Message {
	rec := &recorder{}
	rcode, err := h.ServeDNS(ctx, rec, req)
	if rec.written {
		return rec.msg
	}
	m := new(dnswire.Message)
	if err != nil {
		m.SetRcode(req.Msg, dnswire.RcodeServerFailure)
		return m
	}
	m.SetRcode(req.Msg, rcode)
	return m
}

// Server serves a Handler over real UDP and TCP sockets.
type Server struct {
	// Addr is the listen address, e.g. "127.0.0.1:5353".
	Addr string
	// Handler answers the queries.
	Handler Handler
	// ReadTimeout bounds TCP reads. Zero means 10s.
	ReadTimeout time.Duration
	// Telemetry, when non-nil, opens a span for every query (carried
	// through the plugin chain via the request context), observes the
	// client-visible serve duration, and feeds the sampled query log.
	Telemetry *telemetry.Hub

	mu       sync.Mutex
	udp      *net.UDPConn
	tcp      net.Listener
	conns    map[net.Conn]struct{}
	started  bool
	draining bool
	wg       sync.WaitGroup
	inflight sync.WaitGroup
}

// Start begins serving on UDP and TCP. It returns once the sockets
// are bound; serving continues in background goroutines until Close.
func (s *Server) Start() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.started {
		return errors.New("dnsserver: already started")
	}
	if s.Handler == nil {
		return errors.New("dnsserver: nil handler")
	}
	uaddr, err := net.ResolveUDPAddr("udp", s.Addr)
	if err != nil {
		return fmt.Errorf("resolving %q: %w", s.Addr, err)
	}
	s.udp, err = net.ListenUDP("udp", uaddr)
	if err != nil {
		return fmt.Errorf("listening udp %q: %w", s.Addr, err)
	}
	// Bind TCP to whatever port UDP got (supports ":0").
	s.tcp, err = net.Listen("tcp", s.udp.LocalAddr().String())
	if err != nil {
		s.udp.Close()
		return fmt.Errorf("listening tcp: %w", err)
	}
	s.conns = make(map[net.Conn]struct{})
	s.started = true
	s.wg.Add(2)
	go s.serveUDP()
	go s.serveTCP()
	return nil
}

// Draining reports whether a graceful Shutdown is in progress (or
// finished); the admin /healthz probe keys off this.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Shutdown gracefully drains the server: it stops accepting new
// queries immediately, waits — bounded by ctx — for in-flight queries
// to finish and their responses to be written, then closes the
// sockets. It returns ctx.Err() when the deadline cut the drain
// short, nil when every in-flight query completed.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if !s.started || s.draining {
		s.mu.Unlock()
		return s.Close()
	}
	s.draining = true
	udp, tcp := s.udp, s.tcp
	s.mu.Unlock()

	// Stop the intake: no new TCP connections, and unblock the UDP
	// read loop via an immediate deadline. The UDP socket itself must
	// stay open so in-flight handlers can still write responses.
	tcp.Close()
	_ = udp.SetReadDeadline(time.Now())

	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
	}

	// Tear down what remains: the UDP socket and any TCP connections
	// still mid-stream (idle keepalives, or queries the deadline cut).
	udp.Close()
	s.mu.Lock()
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return err
}

// LocalAddr returns the bound UDP address; valid after Start.
func (s *Server) LocalAddr() netip.AddrPort {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.udp == nil {
		return netip.AddrPort{}
	}
	return s.udp.LocalAddr().(*net.UDPAddr).AddrPort()
}

// Close stops serving and waits for the serve loops to exit.
func (s *Server) Close() error {
	s.mu.Lock()
	if !s.started {
		s.mu.Unlock()
		return nil
	}
	s.udp.Close()
	s.tcp.Close()
	s.mu.Unlock()
	s.wg.Wait()
	return nil
}

// track registers one in-flight query. It returns false once a drain
// has begun, in which case the query must be dropped; the mutex
// ordering guarantees no tracked query starts after Shutdown begins
// waiting.
func (s *Server) track() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return false
	}
	s.inflight.Add(1)
	return true
}

// begin opens a telemetry span for req and attaches it to ctx;
// without a Telemetry hub it returns ctx unchanged and a nil span
// (every span method is nil-safe).
func (s *Server) begin(ctx context.Context, req *Request) (context.Context, *telemetry.Span) {
	if s.Telemetry == nil {
		return ctx, nil
	}
	sp := s.Telemetry.Begin(req.Name(), req.Type().String(), req.Transport, req.Client.String())
	return telemetry.ContextWith(ctx, sp), sp
}

func (s *Server) serveUDP() {
	defer s.wg.Done()
	buf := make([]byte, dnswire.MaxMessageSize)
	for {
		n, raddr, err := s.udp.ReadFromUDPAddrPort(buf)
		if err != nil {
			return // closed or draining
		}
		if !s.track() {
			return // draining: stop accepting
		}
		pkt := make([]byte, n)
		copy(pkt, buf[:n])
		go func() {
			defer s.inflight.Done()
			s.handlePacket(pkt, raddr)
		}()
	}
}

func (s *Server) handlePacket(pkt []byte, raddr netip.AddrPort) {
	msg := new(dnswire.Message)
	if err := msg.Unpack(pkt); err != nil {
		return // not DNS; drop like a real server
	}
	req := &Request{Msg: msg, Client: raddr, Transport: "udp"}
	ctx, sp := s.begin(context.Background(), req)
	resp := Resolve(ctx, s.Handler, req)

	// Honour the client's advertised payload size.
	size := dnswire.MaxUDPSize
	if opt, ok := msg.OPT(); ok {
		if adv := int(opt.UDPSize()); adv > size {
			size = adv
		}
	}
	resp.TruncateTo(size)
	wire, err := resp.Pack()
	if err != nil {
		s.Telemetry.Finish(sp, dnswire.RcodeServerFailure.String())
		return
	}
	_, _ = s.udp.WriteToUDPAddrPort(wire, raddr)
	s.Telemetry.Finish(sp, resp.Rcode.String())
}

func (s *Server) serveTCP() {
	defer s.wg.Done()
	for {
		conn, err := s.tcp.Accept()
		if err != nil {
			return // closed
		}
		s.mu.Lock()
		if s.draining {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		go s.handleConn(conn)
	}
}

func (s *Server) handleConn(conn net.Conn) {
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	timeout := s.ReadTimeout
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	raddr, _ := netip.ParseAddrPort(conn.RemoteAddr().String())
	for {
		_ = conn.SetReadDeadline(time.Now().Add(timeout))
		pkt, err := dnswire.ReadTCP(conn)
		if err != nil {
			return
		}
		if !s.track() {
			return // draining: stop accepting
		}
		err = s.serveTCPQuery(conn, pkt, raddr)
		s.inflight.Done()
		if err != nil {
			return
		}
	}
}

// serveTCPQuery resolves one message from a TCP stream and writes the
// response back on the same connection.
func (s *Server) serveTCPQuery(conn net.Conn, pkt []byte, raddr netip.AddrPort) error {
	msg := new(dnswire.Message)
	if err := msg.Unpack(pkt); err != nil {
		return err
	}
	req := &Request{Msg: msg, Client: raddr, Transport: "tcp"}
	ctx, sp := s.begin(context.Background(), req)
	resp := Resolve(ctx, s.Handler, req)
	wire, err := resp.Pack()
	if err != nil {
		s.Telemetry.Finish(sp, dnswire.RcodeServerFailure.String())
		return err
	}
	err = dnswire.WriteTCP(conn, wire)
	s.Telemetry.Finish(sp, resp.Rcode.String())
	return err
}
