// Package dnsserver is a composable DNS server engine modeled on the
// CoreDNS plugin architecture the paper's prototype builds on.
//
// A server is a chain of plugins; each plugin either answers the
// query, rewrites it, or passes it to the next plugin. The same chain
// runs over real UDP/TCP sockets (Server) and inside a simnet virtual
// network (Attach), so the code path that answers a query in an
// experiment is byte-for-byte the one a real deployment would run.
//
// Plugins provided here mirror the pieces of the paper's MEC DNS:
//
//   - Zone: authoritative answers from in-memory zones (the
//     orchestrator's service registry, A-DNS emulation, C-DNS glue)
//   - Cache: sharded TTL-honouring response cache with negative
//     caching and singleflight miss coalescing
//   - Forward: upstream forwarding with rcode-aware failover,
//     per-upstream health cooldowns, and optional hedged queries
//     (provider L-DNS)
//   - Stub: sub-domain delegation to an upstream (CoreDNS
//     stub-domain, used to hand the CDN domain to the C-DNS);
//     safe for live reconfiguration
//   - Split: split-horizon namespaces (internal VNF vs public MEC-CDN)
//   - ECS: EDNS Client Subnet attachment and scrubbing (RFC 7871)
//   - LoadShed: token-bucket ingress admission (DoS mitigation)
//   - Metrics: query/rcode counters and a ServeDNS duration histogram
package dnsserver

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/netip"
	"runtime"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"github.com/meccdn/meccdn/internal/dnswire"
	"github.com/meccdn/meccdn/internal/telemetry"
)

// Request carries one inbound query and its connection metadata.
type Request struct {
	Msg *dnswire.Message
	// Client is the query's source address as seen by this server.
	// Behind a cellular gateway this is the P-GW's public address,
	// not the UE's — exactly the obfuscation the paper discusses.
	Client netip.AddrPort
	// Transport is "udp", "tcp", or "sim".
	Transport string
}

// Name returns the canonicalized first question name.
func (r *Request) Name() string { return dnswire.CanonicalName(r.Msg.Question().Name) }

// Type returns the first question type.
func (r *Request) Type() dnswire.Type { return r.Msg.Question().Type }

// ResponseWriter sends the response for one request.
type ResponseWriter interface {
	WriteMsg(*dnswire.Message) error
}

// WireWriter is an optional ResponseWriter extension for writers that
// can transmit a pre-packed response without decoding it. The cache
// uses it to serve hits straight from the stored wire form — patching
// only the transaction ID, the request-mirrored flag bits, and the
// aged TTLs — instead of paying a Clone+Pack per hit.
type WireWriter interface {
	ResponseWriter
	// WireSize returns the largest packed response the transport can
	// carry as-is: the client's advertised EDNS payload size on UDP,
	// MaxMessageSize on TCP. Larger responses must go through WriteMsg
	// so truncation applies.
	WireSize() int
	// WriteWire transmits a packed response verbatim. The writer must
	// not retain wire after returning; callers typically recycle it.
	WriteWire(wire []byte) error
}

// OwnedWireWriter is an optional WireWriter extension for writers that
// can take ownership of a dnswire pooled buffer instead of copying out
// of it. The cache's hit path patches the stored wire image inside a
// pooled buffer anyway; handing that buffer over saves the last copy
// between the cache and the socket. The writer becomes responsible for
// returning buf to the pool.
type OwnedWireWriter interface {
	WireWriter
	// WriteWireOwned transmits buf[:n], a pooled buffer from
	// dnswire.GetBuffer whose ownership transfers to the writer —
	// even on error.
	WriteWireOwned(buf []byte, n int) error
}

// Handler answers DNS requests. If no response was written, the
// returned rcode is synthesized into one by the server; a non-nil
// error produces SERVFAIL.
type Handler interface {
	ServeDNS(ctx context.Context, w ResponseWriter, r *Request) (dnswire.Rcode, error)
}

// HandlerFunc adapts a function to Handler.
type HandlerFunc func(ctx context.Context, w ResponseWriter, r *Request) (dnswire.Rcode, error)

// ServeDNS implements Handler.
func (f HandlerFunc) ServeDNS(ctx context.Context, w ResponseWriter, r *Request) (dnswire.Rcode, error) {
	return f(ctx, w, r)
}

// Plugin is one link of a server chain.
type Plugin interface {
	// Name identifies the plugin in metrics and errors.
	Name() string
	// ServeDNS handles the request or delegates to next.
	ServeDNS(ctx context.Context, w ResponseWriter, r *Request, next Handler) (dnswire.Rcode, error)
}

// Chain composes plugins into a Handler. The final fallthrough
// REFUSES the query, the behaviour of a server with no matching zone.
func Chain(plugins ...Plugin) Handler {
	h := Handler(HandlerFunc(func(ctx context.Context, w ResponseWriter, r *Request) (dnswire.Rcode, error) {
		return dnswire.RcodeRefused, nil
	}))
	for i := len(plugins) - 1; i >= 0; i-- {
		p, next := plugins[i], h
		h = HandlerFunc(func(ctx context.Context, w ResponseWriter, r *Request) (dnswire.Rcode, error) {
			return p.ServeDNS(ctx, w, r, next)
		})
	}
	return h
}

// recorder wraps a ResponseWriter and notes whether a response was
// written, so the engine can synthesize one if not.
type recorder struct {
	w       ResponseWriter
	written bool
	msg     *dnswire.Message
}

// WriteMsg implements ResponseWriter. Only the first write is passed
// through; later writes from confused plugins are dropped.
func (rec *recorder) WriteMsg(m *dnswire.Message) error {
	if rec.written {
		return nil
	}
	rec.written = true
	rec.msg = m
	if rec.w == nil {
		return nil
	}
	return rec.w.WriteMsg(m)
}

// Resolve runs handler h to completion for req and returns the
// response message, synthesizing an empty response with the handler's
// rcode (or SERVFAIL on error) when no plugin answered. It is the
// engine shared by the socket server, the simnet adapter, and tests.
func Resolve(ctx context.Context, h Handler, req *Request) *dnswire.Message {
	normalizeQueryECS(req)
	rec := &recorder{}
	rcode, err := h.ServeDNS(ctx, rec, req)
	if rec.written {
		return rec.msg
	}
	m := new(dnswire.Message)
	if err != nil {
		m.SetRcode(req.Msg, dnswire.RcodeServerFailure)
		return m
	}
	m.SetRcode(req.Msg, rcode)
	return m
}

// normalizeQueryECS enforces the RFC 7871 §6 query-side invariants on
// an inbound request's ECS option — scope zeroed, undisclosed address
// bits masked — before any plugin sees it. Running in the shared
// Resolve/ResolveTo engines covers every ingress: UDP, TCP, the simnet
// adapter, and tests.
func normalizeQueryECS(req *Request) {
	if opt, ok := req.Msg.OPT(); ok {
		if ecs, ok := opt.ECS(); ok {
			ecs.NormalizeQuery()
		}
	}
}

// responseTracker is a ResponseWriter that knows whether it has been
// written to. The server's pooled socket writers implement it so
// ResolveTo can skip the per-query recorder allocation Resolve pays.
type responseTracker interface {
	ResponseWriter
	Written() bool
}

// ResolveTo runs handler h to completion for req, writing the response
// through w as the chain produces it, and synthesizing an empty
// response with the handler's rcode (SERVFAIL on error) when no plugin
// answered. It returns the rcode of the response that was written.
//
// Unlike Resolve it never materializes the response: a writer that
// implements both responseTracker and WireWriter (the server's own
// socket writers do) receives cached answers as patched wire bytes,
// which is the allocation-free fast path of the serve loop.
func ResolveTo(ctx context.Context, h Handler, w ResponseWriter, req *Request) dnswire.Rcode {
	normalizeQueryECS(req)
	if t, ok := w.(responseTracker); ok {
		rcode, err := h.ServeDNS(ctx, w, req)
		if t.Written() {
			return rcode
		}
		m := new(dnswire.Message)
		if err != nil {
			rcode = dnswire.RcodeServerFailure
		}
		m.SetRcode(req.Msg, rcode)
		_ = w.WriteMsg(m)
		return m.Rcode
	}
	rec := &recorder{w: w}
	rcode, err := h.ServeDNS(ctx, rec, req)
	if rec.written {
		return rec.msg.Rcode
	}
	m := new(dnswire.Message)
	if err != nil {
		rcode = dnswire.RcodeServerFailure
	}
	m.SetRcode(req.Msg, rcode)
	_ = w.WriteMsg(m)
	return m.Rcode
}

// Server serves a Handler over real UDP and TCP sockets.
type Server struct {
	// Addr is the listen address, e.g. "127.0.0.1:5353".
	Addr string
	// Handler answers the queries.
	Handler Handler
	// ReadTimeout bounds TCP reads. Zero means 10s.
	ReadTimeout time.Duration
	// Telemetry, when non-nil, opens a span for every query (carried
	// through the plugin chain via the request context), observes the
	// client-visible serve duration, and feeds the sampled query log.
	Telemetry *telemetry.Hub
	// Workers is the number of UDP worker goroutines pulling packets
	// off the ingress queue. Zero means GOMAXPROCS. Bounding the
	// workers (instead of a goroutine per packet) keeps concurrency —
	// and therefore memory and scheduler load — flat under the paper's
	// DoS-threshold scenario.
	Workers int
	// Sockets is the number of UDP ingress sockets bound to Addr via
	// SO_REUSEPORT, each with its own read loop feeding the shared
	// worker pool; the kernel shards inbound datagrams across them by
	// flow hash, removing the single-read-loop bottleneck on
	// multi-core hosts. Values <= 1 — and any value on platforms
	// without SO_REUSEPORT (see reuseport_other.go) — mean the classic
	// single-socket ingress.
	Sockets int
	// MaxConns caps concurrently served TCP connections; accepted
	// connections beyond the cap are closed immediately and counted in
	// meccdn_dns_tcp_rejected_total (and on Shed when set). Zero means
	// 512. A goroutine per connection is fine; an unbounded number of
	// them under a SYN-rate attack is not.
	MaxConns int
	// QueueDepth is the capacity of the UDP ingress queue between the
	// read loops and the workers, measured in batches (a batch holds
	// 1..Batch datagrams). Zero means 4× the worker count. Batches
	// arriving with the queue full are dropped whole and counted, per
	// datagram, in meccdn_dns_udp_dropped_total rather than queued
	// without bound.
	QueueDepth int
	// Batch is the maximum number of datagrams moved per syscall on
	// the UDP ingress and egress paths. On Linux each read loop fills
	// up to Batch pooled buffers per recvmmsg and workers flush their
	// responses with one sendmmsg per batch, back out the socket the
	// queries arrived on. 0 means 32 on Linux; 1 disables batching
	// (one recvfrom/sendto per datagram); values above 64 are capped.
	// Platforms without the batched syscalls always behave as 1.
	Batch int
	// Shed, when non-nil, has queue-overflow drops recorded on its
	// shed counter too, so admission-control drops and ingress drops
	// surface in one meccdn_dns_loadshed_shed_total family.
	Shed *LoadShed

	mu       sync.Mutex
	udps     []*net.UDPConn
	shards   []*socketShard
	tcp      net.Listener
	conns    map[net.Conn]struct{}
	started  bool
	draining bool
	wg       sync.WaitGroup
	readers  sync.WaitGroup
	inflight sync.WaitGroup

	queue       chan *udpBatch
	ctr         serveCounters
	tcpRejected atomic.Uint64
}

// serveCounters are the serve loop's per-packet counters. Every one
// of them is touched for every datagram (or batch), so none may be a
// single atomic word all cores bounce between their caches: each is
// sharded into cache-line-padded cells, one per reader socket or per
// worker, and summed only at scrape time.
type serveCounters struct {
	// Per reader-socket cells.
	packets *telemetry.ShardedCounter // datagrams accepted off the sockets
	batches *telemetry.ShardedCounter // read wakeups that yielded >= 1 datagram
	dropped *telemetry.ShardedCounter // datagrams shed on queue overflow
	// Per worker cells.
	served   *telemetry.ShardedCounter // datagrams fully served
	sendErrs *telemetry.ShardedCounter // response transmissions that failed
	busy     *telemetry.ShardedGauge   // workers currently serving a batch
}

func newServeCounters(sockets, workers int) serveCounters {
	return serveCounters{
		packets:  telemetry.NewShardedCounter("meccdn_dns_udp_packets_total", "", sockets),
		batches:  telemetry.NewShardedCounter("meccdn_dns_udp_batches_total", "", sockets),
		dropped:  telemetry.NewShardedCounter("meccdn_dns_udp_dropped_total", "", sockets),
		served:   telemetry.NewShardedCounter("meccdn_dns_udp_served_total", "", workers),
		sendErrs: telemetry.NewShardedCounter("meccdn_dns_udp_send_errors_total", "", workers),
		busy:     telemetry.NewShardedGauge("meccdn_dns_udp_workers_busy", "", workers),
	}
}

// socketShard is one UDP ingress socket plus its reader-owned state:
// the raw descriptor access for batched syscalls and this reader's
// counter cells, cached so the loop never indexes a shard table per
// packet.
type socketShard struct {
	conn    *net.UDPConn
	rc      syscall.RawConn
	packets *telemetry.CounterCell
	batches *telemetry.CounterCell
	dropped *telemetry.CounterCell
}

// maxBatch caps Server.Batch. 64 datagrams per syscall is past the
// point of diminishing returns for DNS-sized packets, and the cap
// keeps the per-batch slot arrays small enough to pool.
const maxBatch = 64

// udpBatch is one group of datagrams handed from a read loop to a
// worker: up to Batch pooled buffers, each sliced to its datagram,
// with their source addresses. All packets of a batch arrived on the
// same socket, so the worker's response flush can go back out that
// socket in one sendmmsg. Containers are pooled; a batch of one is
// how the unbatched (non-Linux or Batch=1) ingress rides the same
// worker code.
type udpBatch struct {
	shard *socketShard
	n     int
	bufs  [maxBatch][]byte
	addrs [maxBatch]netip.AddrPort
}

var batchPool = sync.Pool{New: func() any { return new(udpBatch) }}

func getBatch(sh *socketShard) *udpBatch {
	b := batchPool.Get().(*udpBatch)
	b.shard, b.n = sh, 0
	return b
}

// releaseBatch returns every buffer the batch still owns, then the
// container itself, to their pools. Consumers that have already
// recycled a buffer nil its slot first, so each buffer goes back
// exactly once no matter which path releases the batch.
func releaseBatch(b *udpBatch) {
	for i := 0; i < b.n; i++ {
		if b.bufs[i] != nil {
			dnswire.PutBuffer(b.bufs[i])
			b.bufs[i] = nil
		}
	}
	b.n, b.shard = 0, nil
	batchPool.Put(b)
}

// workerCount resolves the configured worker-pool size.
func (s *Server) workerCount() int {
	if s.Workers > 0 {
		return s.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// socketCount resolves the configured UDP ingress socket count,
// collapsing to one socket wherever SO_REUSEPORT can't shard.
func (s *Server) socketCount() int {
	if s.Sockets <= 1 || !reusePortSupported {
		return 1
	}
	return s.Sockets
}

// maxConns resolves the TCP concurrency cap.
func (s *Server) maxConns() int {
	if s.MaxConns > 0 {
		return s.MaxConns
	}
	return 512
}

// Collectors returns the server's serve-loop metric families for
// registration on a telemetry.Registry: worker occupancy, ingress
// queue depth, batching tallies, and the drop counters. The sharded
// serve counters behind them are built at Start, so every family reads
// 0 before then — callers may register the collectors first (cmd/dnsd
// does) and Start later.
func (s *Server) Collectors() []telemetry.Collector {
	sum := func(pick func(serveCounters) *telemetry.ShardedCounter) func() float64 {
		return func() float64 {
			s.mu.Lock()
			c := pick(s.ctr)
			s.mu.Unlock()
			if c == nil {
				return 0
			}
			return float64(c.Value())
		}
	}
	return []telemetry.Collector{
		telemetry.NewGaugeFunc("meccdn_dns_udp_workers_busy",
			"UDP worker goroutines currently serving a batch.",
			func() float64 {
				s.mu.Lock()
				g := s.ctr.busy
				s.mu.Unlock()
				if g == nil {
					return 0
				}
				return float64(g.Value())
			}),
		telemetry.NewGaugeFunc("meccdn_dns_udp_queue_depth",
			"Batches waiting in the UDP ingress queue.",
			func() float64 {
				s.mu.Lock()
				q := s.queue
				s.mu.Unlock()
				return float64(len(q))
			}),
		telemetry.NewCounterFunc("meccdn_dns_udp_packets_total",
			"Datagrams accepted off the UDP ingress sockets.",
			sum(func(c serveCounters) *telemetry.ShardedCounter { return c.packets })),
		telemetry.NewCounterFunc("meccdn_dns_udp_batches_total",
			"Read-loop wakeups that yielded at least one datagram; packets_total over batches_total is the achieved batching factor.",
			sum(func(c serveCounters) *telemetry.ShardedCounter { return c.batches })),
		telemetry.NewCounterFunc("meccdn_dns_udp_dropped_total",
			"Datagrams dropped because the UDP ingress queue was full.",
			sum(func(c serveCounters) *telemetry.ShardedCounter { return c.dropped })),
		telemetry.NewCounterFunc("meccdn_dns_udp_send_errors_total",
			"UDP response transmissions that failed at the socket.",
			sum(func(c serveCounters) *telemetry.ShardedCounter { return c.sendErrs })),
		telemetry.NewGaugeFunc("meccdn_dns_udp_sockets",
			"UDP ingress sockets sharing the listen address via SO_REUSEPORT.",
			func() float64 { return float64(s.NumSockets()) }),
		telemetry.NewCounterFunc("meccdn_dns_tcp_rejected_total",
			"TCP connections closed at accept because MaxConns was reached.",
			func() float64 { return float64(s.tcpRejected.Load()) }),
	}
}

// IngressLoad returns the UDP ingress queue occupancy as a fraction
// in [0, 1]: 0 when idle (or before Start), 1 when the queue is full
// and arrivals are being shed. This is the load signal fed to the
// health registry's ingress watermark switch.
func (s *Server) IngressLoad() float64 {
	s.mu.Lock()
	q := s.queue
	s.mu.Unlock()
	if q == nil || cap(q) == 0 {
		return 0
	}
	return float64(len(q)) / float64(cap(q))
}

// DroppedPackets returns the number of datagrams shed on queue
// overflow since Start.
func (s *Server) DroppedPackets() uint64 {
	s.mu.Lock()
	c := s.ctr.dropped
	s.mu.Unlock()
	if c == nil {
		return 0
	}
	return c.Value()
}

// BatchStats returns the ingress batching tallies since Start: packets
// is the number of datagrams accepted off the sockets, batches the
// number of read wakeups that produced them. packets over batches is
// the achieved batching factor — 1.0 on the unbatched path, up to
// Batch under load on Linux.
func (s *Server) BatchStats() (packets, batches uint64) {
	s.mu.Lock()
	p, b := s.ctr.packets, s.ctr.batches
	s.mu.Unlock()
	if p == nil || b == nil {
		return 0, 0
	}
	return p.Value(), b.Value()
}

// ServedPackets returns the number of datagrams fully served (response
// flushed) by the worker pool since Start, summed over the per-worker
// counter cells.
func (s *Server) ServedPackets() uint64 {
	s.mu.Lock()
	c := s.ctr.served
	s.mu.Unlock()
	if c == nil {
		return 0
	}
	return c.Value()
}

// batchSize resolves the configured Batch against platform support.
func (s *Server) batchSize() int {
	if !batchingSupported {
		return 1
	}
	b := s.Batch
	if b == 0 {
		b = defaultBatch
	}
	if b < 1 {
		b = 1
	}
	if b > maxBatch {
		b = maxBatch
	}
	return b
}

// RejectedConns returns the number of TCP connections refused at the
// MaxConns cap since Start.
func (s *Server) RejectedConns() uint64 { return s.tcpRejected.Load() }

// NumSockets returns the number of UDP ingress sockets actually bound;
// valid after Start. It is socketCount() unless the platform collapsed
// the shard set to one.
func (s *Server) NumSockets() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.udps)
}

// Start begins serving on UDP and TCP. It returns once the sockets
// are bound; serving continues in background goroutines until Close.
func (s *Server) Start() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.started {
		return errors.New("dnsserver: already started")
	}
	if s.Handler == nil {
		return errors.New("dnsserver: nil handler")
	}
	udps, err := s.listenUDP()
	if err != nil {
		return err
	}
	s.udps = udps
	// Bind TCP to whatever port UDP got (supports ":0").
	s.tcp, err = net.Listen("tcp", udps[0].LocalAddr().String())
	if err != nil {
		for _, u := range udps {
			u.Close()
		}
		return fmt.Errorf("listening tcp: %w", err)
	}
	s.conns = make(map[net.Conn]struct{})
	workers := s.workerCount()
	depth := s.QueueDepth
	if depth <= 0 {
		depth = 4 * workers
	}
	s.queue = make(chan *udpBatch, depth)
	s.ctr = newServeCounters(len(udps), workers)
	batch := s.batchSize()
	s.shards = make([]*socketShard, len(udps))
	for i, conn := range udps {
		sh := &socketShard{
			conn:    conn,
			packets: s.ctr.packets.Shard(i),
			batches: s.ctr.batches.Shard(i),
			dropped: s.ctr.dropped.Shard(i),
		}
		if batch > 1 {
			rc, err := conn.SyscallConn()
			if err != nil {
				batch = 1 // no raw descriptor access; serve unbatched
			} else {
				sh.rc = rc
			}
		}
		s.shards[i] = sh
	}
	s.started = true
	s.readers.Add(len(udps))
	s.wg.Add(2 + len(udps) + workers)
	for i := 0; i < workers; i++ {
		go s.udpWorker(i)
	}
	for _, sh := range s.shards {
		if batch > 1 {
			go s.serveUDPBatched(sh, batch)
		} else {
			go s.serveUDPSingle(sh)
		}
	}
	// The queue closes once every sharded read loop has exited, so the
	// workers drain whatever any socket accepted, then stop.
	go func() {
		defer s.wg.Done()
		s.readers.Wait()
		close(s.queue)
	}()
	go s.serveTCP()
	return nil
}

// listenUDP binds the UDP ingress socket set: a single plain socket
// for socketCount() == 1, or N SO_REUSEPORT-sharing sockets bound to
// the same address. With a ":0" listen address the first socket picks
// the port and the rest join it.
func (s *Server) listenUDP() ([]*net.UDPConn, error) {
	n := s.socketCount()
	if n == 1 {
		uaddr, err := net.ResolveUDPAddr("udp", s.Addr)
		if err != nil {
			return nil, fmt.Errorf("resolving %q: %w", s.Addr, err)
		}
		conn, err := net.ListenUDP("udp", uaddr)
		if err != nil {
			return nil, fmt.Errorf("listening udp %q: %w", s.Addr, err)
		}
		return []*net.UDPConn{conn}, nil
	}
	lc := net.ListenConfig{Control: controlReusePort}
	conns := make([]*net.UDPConn, 0, n)
	addr := s.Addr
	for i := 0; i < n; i++ {
		pc, err := lc.ListenPacket(context.Background(), "udp", addr)
		if err != nil {
			for _, c := range conns {
				c.Close()
			}
			return nil, fmt.Errorf("listening udp shard %d/%d on %q: %w", i+1, n, addr, err)
		}
		conn := pc.(*net.UDPConn)
		conns = append(conns, conn)
		if i == 0 {
			addr = conn.LocalAddr().String()
		}
	}
	return conns, nil
}

// Draining reports whether a graceful Shutdown is in progress (or
// finished); the admin /healthz probe keys off this.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Shutdown gracefully drains the server: it stops accepting new
// queries immediately, waits — bounded by ctx — for in-flight queries
// to finish and their responses to be written, then closes the
// sockets. It returns ctx.Err() when the deadline cut the drain
// short, nil when every in-flight query completed.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if !s.started || s.draining {
		s.mu.Unlock()
		return s.Close()
	}
	s.draining = true
	udps, tcp := s.udps, s.tcp
	s.mu.Unlock()

	// Stop the intake: no new TCP connections, and unblock every UDP
	// read loop via an immediate deadline. The UDP sockets themselves
	// must stay open so in-flight handlers can still write responses.
	tcp.Close()
	for _, u := range udps {
		_ = u.SetReadDeadline(time.Now())
	}

	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
	}

	// Tear down what remains: the UDP sockets and any TCP connections
	// still mid-stream (idle keepalives, or queries the deadline cut).
	for _, u := range udps {
		u.Close()
	}
	s.mu.Lock()
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return err
}

// LocalAddr returns the bound UDP address; valid after Start. All
// sharded sockets share it.
func (s *Server) LocalAddr() netip.AddrPort {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.udps) == 0 {
		return netip.AddrPort{}
	}
	return s.udps[0].LocalAddr().(*net.UDPAddr).AddrPort()
}

// Close stops serving and waits for the serve loops to exit.
func (s *Server) Close() error {
	s.mu.Lock()
	if !s.started {
		s.mu.Unlock()
		return nil
	}
	for _, u := range s.udps {
		u.Close()
	}
	s.tcp.Close()
	s.mu.Unlock()
	s.wg.Wait()
	return nil
}

// track registers one in-flight query. It returns false once a drain
// has begun, in which case the query must be dropped; the mutex
// ordering guarantees no tracked query starts after Shutdown begins
// waiting.
func (s *Server) track() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return false
	}
	s.inflight.Add(1)
	return true
}

// BackgroundTracker registers background work with a graceful-drain
// scope. A started Server implements it; the cache's refresh-ahead
// prefetcher uses it so Shutdown waits for in-flight background
// resolves instead of leaking them past the drain.
type BackgroundTracker interface {
	// TrackBackground registers one unit of background work. ok=false
	// means a drain has begun and the work must not start; otherwise
	// the caller must invoke done exactly once when the work finishes.
	TrackBackground() (done func(), ok bool)
}

// TrackBackground implements BackgroundTracker on the server's
// in-flight WaitGroup, under the same mutex ordering as track(): no
// tracked work can begin after Shutdown starts waiting.
func (s *Server) TrackBackground() (done func(), ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return nil, false
	}
	s.inflight.Add(1)
	return s.inflight.Done, true
}

// begin opens a telemetry span for req and attaches it to ctx;
// without a Telemetry hub it returns ctx unchanged and a nil span
// (every span method is nil-safe).
func (s *Server) begin(ctx context.Context, req *Request) (context.Context, *telemetry.Span) {
	if s.Telemetry == nil {
		return ctx, nil
	}
	sp := s.Telemetry.BeginAddr(req.Name(), req.Type().String(), req.Transport, req.Client)
	return telemetry.ContextWith(ctx, sp), sp
}

// trackN registers n in-flight queries at once, refusing once a drain
// has begun — the same mutex-ordering contract as track(), paid once
// per batch instead of once per packet.
func (s *Server) trackN(n int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return false
	}
	s.inflight.Add(n)
	return true
}

// dispatch hands a filled batch to the worker pool, consuming it
// either way. It returns false when the server is draining and the
// read loop should exit. Dispatch happens after trackN so a graceful
// Shutdown waits for packets already accepted into the queue, not just
// those a worker has picked up. On queue overflow the whole batch is
// shed immediately — bounded delay beats unbounded backlog for a
// protocol whose clients retry.
func (s *Server) dispatch(b *udpBatch) bool {
	n := b.n
	if !s.trackN(n) {
		releaseBatch(b)
		return false
	}
	select {
	case s.queue <- b:
	default:
		b.shard.dropped.Add(uint64(n))
		if s.Shed != nil {
			s.Shed.RecordShedN(uint64(n))
		}
		s.inflight.Add(-n)
		releaseBatch(b)
	}
	return true
}

// serveUDPSingle is the unbatched ingress loop for one sharded socket:
// one recvfrom per datagram, each wrapped in a batch of one so the
// worker path is identical to the batched ingress. It serves
// Batch <= 1 and every platform without recvmmsg. With Sockets > 1
// several of these run concurrently, one per SO_REUSEPORT socket, so
// ingress scales with cores instead of serializing on a single reader.
func (s *Server) serveUDPSingle(sh *socketShard) {
	defer s.wg.Done()
	defer s.readers.Done() // last reader out closes the queue
	for {
		buf := dnswire.GetBuffer()
		n, raddr, err := sh.conn.ReadFromUDPAddrPort(buf)
		if err != nil {
			dnswire.PutBuffer(buf)
			return // closed or draining
		}
		sh.packets.Inc()
		sh.batches.Inc()
		b := getBatch(sh)
		b.bufs[0], b.addrs[0], b.n = buf[:n], raddr, 1
		if !s.dispatch(b) {
			return
		}
	}
}

// udpServeState is one worker's reusable serve machinery: the batched
// response writer, the scratch request message, and the qname intern
// table. All of it is reused across packets, so the steady-state serve
// path allocates nothing for plumbing or parsing.
type udpServeState struct {
	w      udpWriter
	msg    dnswire.Message
	req    Request
	intern *dnswire.NameIntern
}

// udpWorker serves batches from the ingress queue until it is closed
// and drained. id selects this worker's cache-line-padded counter
// cells, so nothing on the per-packet path contends with another
// worker's counters. Each packet's pooled buffer goes back to the pool
// as soon as it is parsed and served; the batch container (and any
// buffers an early exit leaves behind) is released after the flush.
func (s *Server) udpWorker(id int) {
	defer s.wg.Done()
	st := &udpServeState{intern: dnswire.NewNameIntern(0)}
	busy := s.ctr.busy.Shard(id)
	served := s.ctr.served.Shard(id)
	st.w.sendErrs = s.ctr.sendErrs.Shard(id)
	for b := range s.queue {
		busy.Set(1)
		st.w.begin(b.shard)
		for i := 0; i < b.n; i++ {
			s.handlePacket(st, b.bufs[i], b.addrs[i])
			dnswire.PutBuffer(b.bufs[i])
			b.bufs[i] = nil
		}
		st.w.flush()
		served.Add(uint64(b.n))
		busy.Set(0)
		s.inflight.Add(-b.n)
		releaseBatch(b)
	}
}

// handlePacket parses and serves one datagram through the worker's
// reused state. The scratch message is overwritten by the next packet,
// so handlers must not retain it past ServeDNS — the same contract the
// wire buffers already carry.
func (s *Server) handlePacket(st *udpServeState, pkt []byte, raddr netip.AddrPort) {
	msg := &st.msg
	if err := msg.UnpackQuery(pkt, st.intern); err != nil {
		return // not DNS; drop like a real server
	}
	// Honour the client's advertised payload size.
	size := dnswire.MaxUDPSize
	if opt, ok := msg.OPT(); ok {
		if adv := int(opt.UDPSize()); adv > size {
			size = adv
		}
	}
	st.w.beginPacket(raddr, size)
	st.req = Request{Msg: msg, Client: raddr, Transport: "udp"}
	ctx, sp := s.begin(context.Background(), &st.req)
	rcode := ResolveTo(ctx, s.Handler, &st.w, &st.req)
	s.Telemetry.Finish(sp, rcode.String())
}

// egressPkt is one packed response waiting in a worker's egress batch:
// a pooled buffer the writer owns, the packed length, and where it
// goes.
type egressPkt struct {
	buf   []byte
	n     int
	raddr netip.AddrPort
}

// udpWriter writes responses for one batch of UDP queries; each worker
// owns one. Instead of one sendto per response, completed responses
// accumulate in out (each in a pooled buffer the writer owns) and
// leave in one sendmmsg per batch when the worker flushes — back out
// the sharded socket the queries arrived on. It implements WireWriter
// so cache hits reach the socket as patched wire bytes, OwnedWireWriter
// so the cache's patch buffer is handed over instead of copied, and
// responseTracker so the engine needs no recorder around it.
type udpWriter struct {
	shard    *socketShard
	raddr    netip.AddrPort
	size     int
	wrote    bool
	out      []egressPkt
	sendErrs *telemetry.CounterCell
	eio      egressIO
}

// begin starts a new batch: responses will leave on sh's socket.
func (w *udpWriter) begin(sh *socketShard) {
	w.shard = sh
	w.out = w.out[:0]
}

// beginPacket starts the next query of the batch.
func (w *udpWriter) beginPacket(raddr netip.AddrPort, size int) {
	w.raddr, w.size, w.wrote = raddr, size, false
}

// stash queues one packed response, taking ownership of its buffer.
func (w *udpWriter) stash(buf []byte, n int) {
	w.out = append(w.out, egressPkt{buf: buf, n: n, raddr: w.raddr})
	w.wrote = true
}

// Written implements responseTracker.
func (w *udpWriter) Written() bool { return w.wrote }

// WireSize implements WireWriter.
func (w *udpWriter) WireSize() int { return w.size }

// WriteWire implements WireWriter: the response is copied into a
// pooled buffer the writer owns and queued for the batch flush.
func (w *udpWriter) WriteWire(wire []byte) error {
	if w.wrote {
		return nil
	}
	if len(wire) > w.size {
		return fmt.Errorf("dnsserver: %d-byte wire response exceeds %d-byte payload limit", len(wire), w.size)
	}
	buf := dnswire.GetBuffer()
	n := copy(buf, wire)
	w.stash(buf, n)
	return nil
}

// WriteWireOwned implements OwnedWireWriter: like WriteWire, but buf
// is a pooled buffer whose ownership transfers to the writer, so the
// cache's patched hit needs no extra copy on its way to the socket.
func (w *udpWriter) WriteWireOwned(buf []byte, n int) error {
	if w.wrote || n > w.size {
		dnswire.PutBuffer(buf)
		if w.wrote {
			return nil
		}
		return fmt.Errorf("dnsserver: %d-byte wire response exceeds %d-byte payload limit", n, w.size)
	}
	w.stash(buf, n)
	return nil
}

// WriteMsg implements ResponseWriter: pack into a pooled buffer and
// queue for the batch flush. A response larger than the client's
// advertised payload size is truncated with TC set — on a clone, so
// a message a handler may share (the cache's coalesced fills) is
// never mutated here. Only the first write per query is passed
// through, matching recorder semantics.
func (w *udpWriter) WriteMsg(m *dnswire.Message) error {
	if w.wrote {
		return nil
	}
	buf := dnswire.GetBuffer()
	wire, err := m.AppendPack(buf[:0])
	if err != nil || len(wire) > w.size {
		if err == nil {
			t := m.Clone()
			t.TruncateTo(w.size)
			wire, err = t.AppendPack(buf[:0])
		}
		if err != nil {
			dnswire.PutBuffer(buf)
			return err
		}
	}
	w.stash(buf, len(wire))
	return nil
}

// flush transmits every queued response of the batch and recycles the
// buffers. A batch of one goes out as a plain sendto; failures count
// on the worker's send-error cell (UDP gives the client its retry
// either way).
func (w *udpWriter) flush() {
	switch len(w.out) {
	case 0:
		return
	case 1:
		p := &w.out[0]
		if _, err := w.shard.conn.WriteToUDPAddrPort(p.buf[:p.n], p.raddr); err != nil {
			w.sendErrs.Inc()
		}
		dnswire.PutBuffer(p.buf)
	default:
		w.sendBatch()
	}
	w.out = w.out[:0]
}

// sendLoop is the portable egress fallback: one sendto per queued
// response. It backs flush on platforms without sendmmsg and on Linux
// architectures whose sendmmsg syscall number isn't wired up.
func (w *udpWriter) sendLoop() {
	for i := range w.out {
		p := &w.out[i]
		if _, err := w.shard.conn.WriteToUDPAddrPort(p.buf[:p.n], p.raddr); err != nil {
			w.sendErrs.Inc()
		}
		dnswire.PutBuffer(p.buf)
	}
}

func (s *Server) serveTCP() {
	defer s.wg.Done()
	for {
		conn, err := s.tcp.Accept()
		if err != nil {
			return // closed
		}
		s.mu.Lock()
		if s.draining {
			s.mu.Unlock()
			conn.Close()
			return
		}
		if len(s.conns) >= s.maxConns() {
			s.mu.Unlock()
			// At the cap: refuse outright rather than queueing the
			// accept — a connection held open while others starve is
			// worse than a fast close the client can retry over UDP.
			s.tcpRejected.Add(1)
			if s.Shed != nil {
				s.Shed.RecordShed()
			}
			conn.Close()
			continue
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		go s.handleConn(conn)
	}
}

func (s *Server) handleConn(conn net.Conn) {
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	timeout := s.ReadTimeout
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	raddr, _ := netip.ParseAddrPort(conn.RemoteAddr().String())
	w := &tcpWriter{conn: conn}
	for {
		_ = conn.SetReadDeadline(time.Now().Add(timeout))
		pkt, err := dnswire.ReadTCP(conn)
		if err != nil {
			return
		}
		if !s.track() {
			dnswire.PutBuffer(pkt)
			return // draining: stop accepting
		}
		err = s.serveTCPQuery(w, pkt, raddr)
		dnswire.PutBuffer(pkt)
		s.inflight.Done()
		if err != nil {
			return
		}
	}
}

// serveTCPQuery resolves one message from a TCP stream and writes the
// response back on the same connection.
func (s *Server) serveTCPQuery(w *tcpWriter, pkt []byte, raddr netip.AddrPort) error {
	msg := new(dnswire.Message)
	if err := msg.Unpack(pkt); err != nil {
		return err
	}
	w.reset()
	req := &Request{Msg: msg, Client: raddr, Transport: "tcp"}
	ctx, sp := s.begin(context.Background(), req)
	rcode := ResolveTo(ctx, s.Handler, w, req)
	s.Telemetry.Finish(sp, rcode.String())
	return w.err
}

// tcpWriter writes length-prefixed responses for one TCP connection;
// handleConn owns one and resets it per query. Like udpWriter it
// implements WireWriter and responseTracker so cached hits skip the
// decode-repack round trip on TCP too.
type tcpWriter struct {
	conn  net.Conn
	wrote bool
	err   error
}

func (w *tcpWriter) reset() { w.wrote, w.err = false, nil }

// Written implements responseTracker.
func (w *tcpWriter) Written() bool { return w.wrote }

// WireSize implements WireWriter; TCP carries any packable message.
func (w *tcpWriter) WireSize() int { return dnswire.MaxMessageSize }

// WriteWire implements WireWriter.
func (w *tcpWriter) WriteWire(wire []byte) error {
	if w.wrote {
		return nil
	}
	if err := dnswire.WriteTCP(w.conn, wire); err != nil {
		w.err = err
		return err
	}
	w.wrote = true
	return nil
}

// WriteMsg implements ResponseWriter.
func (w *tcpWriter) WriteMsg(m *dnswire.Message) error {
	if w.wrote {
		return nil
	}
	buf := dnswire.GetBuffer()
	wire, err := m.AppendPack(buf[:0])
	if err == nil {
		err = dnswire.WriteTCP(w.conn, wire)
	}
	dnswire.PutBuffer(buf)
	if err != nil {
		w.err = err
		return err
	}
	w.wrote = true
	return nil
}
