package dnsserver

import (
	"context"
	"sync"
	"time"

	"github.com/meccdn/meccdn/internal/dnswire"
	"github.com/meccdn/meccdn/internal/stats"
	"github.com/meccdn/meccdn/internal/vclock"
)

// LoadShed implements the paper's DoS-mitigation policy: the MEC
// orchestrator monitors ingress load at the MEC DNS and, above a
// threshold, switches answering to the provider's L-DNS path (or
// refuses outright), so best-effort MEC resolution never becomes an
// attack amplifier on the vRAN.
//
// Admission is a token bucket holding MaxQueries tokens refilled at
// MaxQueries per Window, so a burst straddling a window boundary can
// never admit more than one bucket's worth — the failure mode of a
// hard fixed-window reset.
type LoadShed struct {
	// Clock supplies time. Nil means a wall clock, initialized on
	// first use.
	Clock vclock.Clock
	// Window is the refill period for a full bucket. Zero means 1s.
	Window time.Duration
	// MaxQueries is the bucket capacity (and the refill amount per
	// Window). Zero disables shedding.
	MaxQueries int
	// Fallback, when non-nil, handles shed queries (e.g. a Forward to
	// the provider L-DNS). When nil, shed queries are REFUSED.
	Fallback Handler

	mu     sync.Mutex
	tokens float64
	last   time.Duration
	primed bool
	shed   uint64
	served uint64
}

// Name implements Plugin.
func (l *LoadShed) Name() string { return "loadshed" }

// Shed returns how many queries were diverted or refused, and how many
// passed through.
func (l *LoadShed) Shed() (shed, served uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.shed, l.served
}

// overloaded records one arrival and reports whether it exceeds the
// token-bucket budget.
func (l *LoadShed) overloaded() bool {
	if l.MaxQueries <= 0 {
		return false
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.Clock == nil {
		l.Clock = vclock.NewReal()
	}
	window := l.Window
	if window <= 0 {
		window = time.Second
	}
	now := l.Clock.Now()
	max := float64(l.MaxQueries)
	if !l.primed {
		l.tokens = max
		l.primed = true
	} else {
		l.tokens += float64(now-l.last) / float64(window) * max
		if l.tokens > max {
			l.tokens = max
		}
	}
	l.last = now
	if l.tokens >= 1 {
		l.tokens--
		l.served++
		return false
	}
	l.shed++
	return true
}

// ServeDNS implements Plugin.
func (l *LoadShed) ServeDNS(ctx context.Context, w ResponseWriter, r *Request, next Handler) (dnswire.Rcode, error) {
	if l.overloaded() {
		if l.Fallback != nil {
			return l.Fallback.ServeDNS(ctx, w, r)
		}
		m := new(dnswire.Message)
		m.SetRcode(r.Msg, dnswire.RcodeRefused)
		if err := w.WriteMsg(m); err != nil {
			return dnswire.RcodeServerFailure, err
		}
		return dnswire.RcodeRefused, nil
	}
	return next.ServeDNS(ctx, w, r)
}

// Metrics counts queries by type and response code and records a
// per-query ServeDNS duration histogram, so the Fig-5 latency
// decomposition is observable on a live server, not only in simnet
// traces.
type Metrics struct {
	// Clock supplies the duration measurements. Nil means a wall
	// clock, initialized on first use; set the simnet clock so the
	// histogram reflects virtual time in experiments.
	Clock vclock.Clock
	// MaxLatencySamples bounds the retained duration observations
	// (a ring keeping the most recent ones). Zero means 4096.
	MaxLatencySamples int

	mu      sync.Mutex
	total   uint64
	byType  map[dnswire.Type]uint64
	byRcode map[dnswire.Rcode]uint64
	durs    []time.Duration
	durNext int
}

// NewMetrics returns an empty counter set.
func NewMetrics() *Metrics {
	return &Metrics{
		byType:  make(map[dnswire.Type]uint64),
		byRcode: make(map[dnswire.Rcode]uint64),
	}
}

// Name implements Plugin.
func (m *Metrics) Name() string { return "metrics" }

// ServeDNS implements Plugin.
func (m *Metrics) ServeDNS(ctx context.Context, w ResponseWriter, r *Request, next Handler) (dnswire.Rcode, error) {
	m.mu.Lock()
	if m.Clock == nil {
		m.Clock = vclock.NewReal()
	}
	clock := m.Clock
	m.mu.Unlock()

	start := clock.Now()
	rcode, err := next.ServeDNS(ctx, w, r)
	elapsed := clock.Now() - start

	m.mu.Lock()
	m.total++
	m.byType[r.Type()]++
	m.byRcode[rcode]++
	limit := m.MaxLatencySamples
	if limit <= 0 {
		limit = 4096
	}
	if len(m.durs) < limit {
		m.durs = append(m.durs, elapsed)
	} else {
		m.durs[m.durNext] = elapsed
	}
	m.durNext = (m.durNext + 1) % limit
	m.mu.Unlock()
	return rcode, err
}

// Total returns the number of queries observed.
func (m *Metrics) Total() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.total
}

// CountByRcode returns the count for one response code.
func (m *Metrics) CountByRcode(rc dnswire.Rcode) uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.byRcode[rc]
}

// CountByType returns the count for one query type.
func (m *Metrics) CountByType(t dnswire.Type) uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.byType[t]
}

// Latency returns a stats.Sample of the retained per-query ServeDNS
// durations (the most recent MaxLatencySamples observations).
func (m *Metrics) Latency() *stats.Sample {
	m.mu.Lock()
	defer m.mu.Unlock()
	return stats.FromDurations(m.durs)
}

// LatencyBar summarizes the retained durations with the paper's
// trimmed-mean/min/max bar methodology.
func (m *Metrics) LatencyBar() stats.Bar {
	return m.Latency().PaperBar()
}
