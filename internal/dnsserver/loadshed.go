package dnsserver

import (
	"context"
	"sync"
	"time"

	"github.com/meccdn/meccdn/internal/dnswire"
	"github.com/meccdn/meccdn/internal/vclock"
)

// LoadShed implements the paper's DoS-mitigation policy: the MEC
// orchestrator monitors ingress load at the MEC DNS and, above a
// threshold, switches answering to the provider's L-DNS path (or
// refuses outright), so best-effort MEC resolution never becomes an
// attack amplifier on the vRAN.
type LoadShed struct {
	// Clock supplies time; required.
	Clock vclock.Clock
	// Window is the measurement window. Zero means 1s.
	Window time.Duration
	// MaxQueries is the number of queries tolerated per window before
	// shedding starts. Zero disables shedding.
	MaxQueries int
	// Fallback, when non-nil, handles shed queries (e.g. a Forward to
	// the provider L-DNS). When nil, shed queries are REFUSED.
	Fallback Handler

	mu     sync.Mutex
	start  time.Duration
	count  int
	shed   uint64
	served uint64
}

// Name implements Plugin.
func (l *LoadShed) Name() string { return "loadshed" }

// Shed returns how many queries were diverted or refused, and how many
// passed through.
func (l *LoadShed) Shed() (shed, served uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.shed, l.served
}

// overloaded records one arrival and reports whether it exceeds the
// window budget.
func (l *LoadShed) overloaded() bool {
	if l.MaxQueries <= 0 {
		return false
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	window := l.Window
	if window <= 0 {
		window = time.Second
	}
	now := l.Clock.Now()
	if now-l.start >= window {
		l.start = now
		l.count = 0
	}
	l.count++
	if l.count > l.MaxQueries {
		l.shed++
		return true
	}
	l.served++
	return false
}

// ServeDNS implements Plugin.
func (l *LoadShed) ServeDNS(ctx context.Context, w ResponseWriter, r *Request, next Handler) (dnswire.Rcode, error) {
	if l.overloaded() {
		if l.Fallback != nil {
			return l.Fallback.ServeDNS(ctx, w, r)
		}
		m := new(dnswire.Message)
		m.SetRcode(r.Msg, dnswire.RcodeRefused)
		if err := w.WriteMsg(m); err != nil {
			return dnswire.RcodeServerFailure, err
		}
		return dnswire.RcodeRefused, nil
	}
	return next.ServeDNS(ctx, w, r)
}

// Metrics counts queries by type and response code.
type Metrics struct {
	mu      sync.Mutex
	total   uint64
	byType  map[dnswire.Type]uint64
	byRcode map[dnswire.Rcode]uint64
}

// NewMetrics returns an empty counter set.
func NewMetrics() *Metrics {
	return &Metrics{
		byType:  make(map[dnswire.Type]uint64),
		byRcode: make(map[dnswire.Rcode]uint64),
	}
}

// Name implements Plugin.
func (m *Metrics) Name() string { return "metrics" }

// ServeDNS implements Plugin.
func (m *Metrics) ServeDNS(ctx context.Context, w ResponseWriter, r *Request, next Handler) (dnswire.Rcode, error) {
	rcode, err := next.ServeDNS(ctx, w, r)
	m.mu.Lock()
	m.total++
	m.byType[r.Type()]++
	m.byRcode[rcode]++
	m.mu.Unlock()
	return rcode, err
}

// Total returns the number of queries observed.
func (m *Metrics) Total() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.total
}

// CountByRcode returns the count for one response code.
func (m *Metrics) CountByRcode(rc dnswire.Rcode) uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.byRcode[rc]
}

// CountByType returns the count for one query type.
func (m *Metrics) CountByType(t dnswire.Type) uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.byType[t]
}
