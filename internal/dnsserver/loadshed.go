package dnsserver

import (
	"context"
	"sync"
	"time"

	"github.com/meccdn/meccdn/internal/dnswire"
	"github.com/meccdn/meccdn/internal/stats"
	"github.com/meccdn/meccdn/internal/telemetry"
	"github.com/meccdn/meccdn/internal/vclock"
)

// LoadShed implements the paper's DoS-mitigation policy: the MEC
// orchestrator monitors ingress load at the MEC DNS and, above a
// threshold, switches answering to the provider's L-DNS path (or
// refuses outright), so best-effort MEC resolution never becomes an
// attack amplifier on the vRAN.
//
// Admission is a token bucket holding MaxQueries tokens refilled at
// MaxQueries per Window, so a burst straddling a window boundary can
// never admit more than one bucket's worth — the failure mode of a
// hard fixed-window reset.
type LoadShed struct {
	// Clock supplies time. Nil means a wall clock, initialized on
	// first use.
	Clock vclock.Clock
	// Window is the refill period for a full bucket. Zero means 1s.
	Window time.Duration
	// MaxQueries is the bucket capacity (and the refill amount per
	// Window). Zero disables shedding.
	MaxQueries int
	// Fallback, when non-nil, handles shed queries (e.g. a Forward to
	// the provider L-DNS). When nil, shed queries are REFUSED.
	Fallback Handler

	mu     sync.Mutex
	tokens float64
	last   time.Duration
	primed bool

	ctrOnce      sync.Once
	shed, served *telemetry.Counter
}

// Name implements Plugin.
func (l *LoadShed) Name() string { return "loadshed" }

// counters lazily builds the admission counters as telemetry
// instruments, so LoadShed keeps working as a plain struct literal.
func (l *LoadShed) counters() (shed, served *telemetry.Counter) {
	l.ctrOnce.Do(func() {
		l.shed = telemetry.NewCounter("meccdn_dns_loadshed_shed_total", "Queries diverted to the fallback or refused by admission control.")
		l.served = telemetry.NewCounter("meccdn_dns_loadshed_served_total", "Queries admitted past the token bucket.")
	})
	return l.shed, l.served
}

// Collectors returns the admission metric families for registration
// on a telemetry.Registry.
func (l *LoadShed) Collectors() []telemetry.Collector {
	shed, served := l.counters()
	return []telemetry.Collector{shed, served}
}

// Shed returns how many queries were diverted or refused, and how many
// passed through.
func (l *LoadShed) Shed() (shed, served uint64) {
	sc, vc := l.counters()
	return sc.Value(), vc.Value()
}

// RecordShed counts one query shed outside the plugin chain — the
// server's UDP queue-overflow path — so ingress drops and admission
// drops share one shed family.
func (l *LoadShed) RecordShed() {
	sc, _ := l.counters()
	sc.Inc()
}

// RecordShedN is RecordShed for a whole shed batch: the batched
// ingress drops a full recvmmsg batch at a time on queue overflow.
func (l *LoadShed) RecordShedN(n uint64) {
	sc, _ := l.counters()
	sc.Add(n)
}

// overloaded records one arrival and reports whether it exceeds the
// token-bucket budget.
func (l *LoadShed) overloaded() bool {
	if l.MaxQueries <= 0 {
		return false
	}
	shedCtr, servedCtr := l.counters()
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.Clock == nil {
		l.Clock = vclock.NewReal()
	}
	window := l.Window
	if window <= 0 {
		window = time.Second
	}
	now := l.Clock.Now()
	max := float64(l.MaxQueries)
	if !l.primed {
		l.tokens = max
		l.primed = true
	} else {
		l.tokens += float64(now-l.last) / float64(window) * max
		if l.tokens > max {
			l.tokens = max
		}
	}
	l.last = now
	if l.tokens >= 1 {
		l.tokens--
		servedCtr.Inc()
		return false
	}
	shedCtr.Inc()
	return true
}

// ServeDNS implements Plugin.
func (l *LoadShed) ServeDNS(ctx context.Context, w ResponseWriter, r *Request, next Handler) (dnswire.Rcode, error) {
	if l.overloaded() {
		telemetry.Annotate(ctx, "loadshed", "shed")
		if l.Fallback != nil {
			return l.Fallback.ServeDNS(ctx, w, r)
		}
		m := new(dnswire.Message)
		m.SetRcode(r.Msg, dnswire.RcodeRefused)
		if err := w.WriteMsg(m); err != nil {
			return dnswire.RcodeServerFailure, err
		}
		return dnswire.RcodeRefused, nil
	}
	return next.ServeDNS(ctx, w, r)
}

// Metrics counts queries by type and response code and records the
// per-query ServeDNS duration twice over: a fixed-bucket telemetry
// histogram for live Prometheus exposition, and a bounded ring of
// recent observations for exact percentiles — so the Fig-5 latency
// decomposition is observable on a live server, not only in simnet
// traces.
type Metrics struct {
	// Clock supplies the duration measurements. Nil means a wall
	// clock, initialized on first use; set the simnet clock so the
	// histogram reflects virtual time in experiments.
	Clock vclock.Clock
	// MaxLatencySamples bounds the retained duration observations
	// (a ring keeping the most recent ones). Zero means 4096.
	MaxLatencySamples int

	ctrOnce  sync.Once
	queries  *telemetry.CounterVec
	rcodes   *telemetry.CounterVec
	duration *telemetry.Histogram

	mu      sync.Mutex
	durs    []time.Duration
	durNext int
}

// NewMetrics returns an empty counter set.
func NewMetrics() *Metrics {
	m := &Metrics{}
	m.instruments()
	return m
}

// instruments lazily builds the telemetry families, so Metrics also
// works as a plain struct literal.
func (m *Metrics) instruments() (queries, rcodes *telemetry.CounterVec, duration *telemetry.Histogram) {
	m.ctrOnce.Do(func() {
		m.queries = telemetry.NewCounterVec("meccdn_dns_queries_total", "Queries served, by question type.", "type")
		m.rcodes = telemetry.NewCounterVec("meccdn_dns_responses_total", "Responses produced, by response code.", "rcode")
		m.duration = telemetry.NewHistogram("meccdn_dns_handler_duration_seconds", "Plugin-chain ServeDNS duration per query.")
	})
	return m.queries, m.rcodes, m.duration
}

// Collectors returns the metric families for registration on a
// telemetry.Registry.
func (m *Metrics) Collectors() []telemetry.Collector {
	queries, rcodes, duration := m.instruments()
	return []telemetry.Collector{queries, rcodes, duration}
}

// Name implements Plugin.
func (m *Metrics) Name() string { return "metrics" }

// ServeDNS implements Plugin.
func (m *Metrics) ServeDNS(ctx context.Context, w ResponseWriter, r *Request, next Handler) (dnswire.Rcode, error) {
	queries, rcodes, duration := m.instruments()
	m.mu.Lock()
	if m.Clock == nil {
		m.Clock = vclock.NewReal()
	}
	clock := m.Clock
	m.mu.Unlock()

	start := clock.Now()
	rcode, err := next.ServeDNS(ctx, w, r)
	elapsed := clock.Now() - start

	// Inc1 avoids the variadic []string allocation Inc pays per call;
	// Type/Rcode String() return static strings for known values, so
	// this pair is allocation-free on the hot path.
	queries.Inc1(r.Type().String())
	rcodes.Inc1(rcode.String())
	duration.Observe(elapsed)

	m.mu.Lock()
	limit := m.MaxLatencySamples
	if limit <= 0 {
		limit = 4096
	}
	if len(m.durs) < limit {
		m.durs = append(m.durs, elapsed)
	} else {
		m.durs[m.durNext] = elapsed
	}
	m.durNext = (m.durNext + 1) % limit
	m.mu.Unlock()
	return rcode, err
}

// Total returns the number of queries observed.
func (m *Metrics) Total() uint64 {
	_, rcodes, _ := m.instruments()
	return rcodes.Sum()
}

// CountByRcode returns the count for one response code.
func (m *Metrics) CountByRcode(rc dnswire.Rcode) uint64 {
	_, rcodes, _ := m.instruments()
	return rcodes.Value(rc.String())
}

// CountByType returns the count for one query type.
func (m *Metrics) CountByType(t dnswire.Type) uint64 {
	queries, _, _ := m.instruments()
	return queries.Value(t.String())
}

// Latency returns a stats.Sample of the retained per-query ServeDNS
// durations (the most recent MaxLatencySamples observations).
func (m *Metrics) Latency() *stats.Sample {
	m.mu.Lock()
	defer m.mu.Unlock()
	return stats.FromDurations(m.durs)
}

// LatencyBar summarizes the retained durations with the paper's
// trimmed-mean/min/max bar methodology.
func (m *Metrics) LatencyBar() stats.Bar {
	return m.Latency().PaperBar()
}
