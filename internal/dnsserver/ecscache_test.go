package dnsserver

import (
	"bytes"
	"context"
	"net/netip"
	"testing"
	"time"

	"github.com/meccdn/meccdn/internal/dnswire"
	"github.com/meccdn/meccdn/internal/vclock"
)

// echoSourceScope makes ecsAnswerHandler echo scope = the query's
// source prefix (an authority tailoring as finely as clients disclose).
const echoSourceScope = 255

// ecsAnswerHandler answers with an A record and echoes the query's ECS
// option at the given scope (or the source prefix for echoSourceScope),
// per RFC 7871 §7.2.1.
func ecsAnswerHandler(addr string, scope uint8) Handler {
	return HandlerFunc(func(ctx context.Context, w ResponseWriter, r *Request) (dnswire.Rcode, error) {
		m := new(dnswire.Message)
		m.SetReply(r.Msg)
		m.Answers = []dnswire.RR{&dnswire.A{
			Hdr:  dnswire.RRHeader{Name: r.Name(), Type: dnswire.TypeA, Class: dnswire.ClassINET, TTL: 30},
			Addr: netip.MustParseAddr(addr),
		}}
		if ecs, ok := r.Msg.ECS(); ok {
			echo := *ecs
			if scope == echoSourceScope {
				echo.ScopePrefix = ecs.SourcePrefix
			} else {
				echo.ScopePrefix = scope
			}
			opt := m.SetEDNS(dnswire.DefaultEDNSSize)
			opt.Options = append(opt.Options, &echo)
		}
		return m.Rcode, w.WriteMsg(m)
	})
}

// ecsQueryFor builds an A query for name disclosing the given subnet.
func ecsQueryFor(name, prefix string) *Request {
	r := queryFor(name)
	opt := r.Msg.SetEDNS(1232)
	opt.Options = append(opt.Options, dnswire.NewECSOption(netip.MustParsePrefix(prefix)))
	return r
}

// A /16-scoped answer must serve every sibling /24 from one cache
// entry — the acceptance-criteria behavior — while a different /16
// still resolves its own.
func TestCacheScopedAnswerSharedAcrossSiblings(t *testing.T) {
	clock := &vclock.Fixed{}
	cache := NewCache(clock)
	backend := &countingPlugin{h: ecsAnswerHandler("192.0.2.9", 16)}
	h := Chain(cache, backend)

	resp := Resolve(context.Background(), h, ecsQueryFor("scoped.test.", "10.1.1.0/24"))
	if backend.hits != 1 {
		t.Fatalf("first query: backend hits = %d", backend.hits)
	}
	ecs, ok := resp.ECS()
	if !ok || ecs.ScopePrefix != 16 {
		t.Fatalf("first response ECS = %v %v, want scope 16", ecs, ok)
	}

	// Sibling /24 inside the same /16: served from the same entry.
	resp = Resolve(context.Background(), h, ecsQueryFor("scoped.test.", "10.1.2.0/24"))
	if backend.hits != 1 {
		t.Errorf("sibling /24 went upstream: backend hits = %d, want 1", backend.hits)
	}
	ecs, ok = resp.ECS()
	if !ok {
		t.Fatal("cached response lost its ECS option")
	}
	// RFC 7871 §7.2.1: the echo mirrors *this* query's address and
	// source, keeping the stored answer's scope.
	if want := netip.MustParseAddr("10.1.2.0"); ecs.Address != want || ecs.SourcePrefix != 24 || ecs.ScopePrefix != 16 {
		t.Errorf("sibling echo = %s/%d/%d, want %s/24/16",
			ecs.Address, ecs.SourcePrefix, ecs.ScopePrefix, want)
	}

	// A /24 in a different /16 is outside the stored scope: resolves.
	Resolve(context.Background(), h, ecsQueryFor("scoped.test.", "10.2.1.0/24"))
	if backend.hits != 2 {
		t.Errorf("different /16: backend hits = %d, want 2", backend.hits)
	}

	s := cache.Stats()
	if s.Hits != 1 || s.Misses != 2 {
		t.Errorf("stats hits=%d misses=%d, want 1/2", s.Hits, s.Misses)
	}
	if s.Entries != 2 {
		t.Errorf("entries = %d, want 2 (one per /16 scope key)", s.Entries)
	}
}

// An answer without ECS (or scoped /0) is valid for every address
// (RFC 7871 §7.2.2): one entry serves all disclosed subnets.
func TestCacheScopeZeroSharedGlobally(t *testing.T) {
	clock := &vclock.Fixed{}
	cache := NewCache(clock)
	backend := &countingPlugin{h: answerHandler("192.0.2.9")} // no ECS echo
	h := Chain(cache, backend)
	Resolve(context.Background(), h, ecsQueryFor("zero.test.", "10.1.0.0/24"))
	Resolve(context.Background(), h, ecsQueryFor("zero.test.", "172.16.0.0/24"))
	Resolve(context.Background(), h, ecsQueryFor("zero.test.", "192.0.2.0/24"))
	if backend.hits != 1 {
		t.Errorf("scope-0 answer fragmented: backend hits = %d, want 1", backend.hits)
	}
	// A non-ECS query for the same name keys separately from scope-0
	// ECS entries (the ECS suffix is part of the key).
	Resolve(context.Background(), h, queryFor("zero.test."))
	if backend.hits != 2 {
		t.Errorf("plain query: backend hits = %d, want 2", backend.hits)
	}
}

// The same scope semantics must hold for IPv6 disclosures, whose
// scope-hint bits live beyond the first mask word.
func TestCacheScopedV6(t *testing.T) {
	clock := &vclock.Fixed{}
	cache := NewCache(clock)
	backend := &countingPlugin{h: ecsAnswerHandler("192.0.2.9", 48)}
	h := Chain(cache, backend)
	Resolve(context.Background(), h, ecsQueryFor("six.test.", "2001:db8:7:1::/64"))
	Resolve(context.Background(), h, ecsQueryFor("six.test.", "2001:db8:7:2::/64"))
	if backend.hits != 1 {
		t.Errorf("sibling /64 inside the /48 scope went upstream: hits = %d", backend.hits)
	}
	Resolve(context.Background(), h, ecsQueryFor("six.test.", "2001:db8:8:1::/64"))
	if backend.hits != 2 {
		t.Errorf("different /48: hits = %d, want 2", backend.hits)
	}
}

// A narrower-scoped entry must not answer a query that disclosed less
// than the scope: a /24-scoped entry is invisible to a /16 disclosure.
func TestCacheScopeNeverExceedsDisclosure(t *testing.T) {
	clock := &vclock.Fixed{}
	cache := NewCache(clock)
	backend := &countingPlugin{h: ecsAnswerHandler("192.0.2.9", echoSourceScope)}
	h := Chain(cache, backend)
	Resolve(context.Background(), h, ecsQueryFor("narrow.test.", "10.1.1.0/24"))
	Resolve(context.Background(), h, ecsQueryFor("narrow.test.", "10.1.0.0/16"))
	if backend.hits != 2 {
		t.Errorf("/16 disclosure used a /24-scoped entry: hits = %d, want 2", backend.hits)
	}
}

// ECS responses must be byte-identical whether served through a
// wire-capable writer or the plain decode path — and must never take
// the raw wire-patch fast path, which cannot rewrite the scope echo.
func TestECSWireAndDecodePathsAgree(t *testing.T) {
	clock := &vclock.Fixed{}
	cache := NewCache(clock)
	backend := &countingPlugin{h: ecsAnswerHandler("192.0.2.9", 16)}
	h := Chain(cache, backend)

	warm := ecsQueryFor("wireecs.test.", "10.1.1.0/24")
	if resp := Resolve(context.Background(), h, warm); resp.Rcode != dnswire.RcodeSuccess {
		t.Fatalf("warm rcode = %v", resp.Rcode)
	}
	clock.Advance(10 * time.Second)

	q := func() *Request {
		r := ecsQueryFor("wireecs.test.", "10.1.2.0/24") // sibling: scoped hit
		r.Msg.ID = 0x7A7A
		return r
	}

	fast := &wireSink{}
	if rcode := ResolveTo(context.Background(), h, fast, q()); rcode != dnswire.RcodeSuccess {
		t.Fatalf("wire-writer hit rcode = %v", rcode)
	}
	if fast.wire != nil {
		t.Fatal("ECS hit took the wire patch path; must decode to rewrite the echo")
	}
	if fast.msg == nil {
		t.Fatal("wire-writer hit wrote nothing")
	}
	fromWireWriter, err := fast.msg.Pack()
	if err != nil {
		t.Fatal(err)
	}

	slow := &recorder{}
	if _, err := h.ServeDNS(context.Background(), slow, q()); err != nil {
		t.Fatal(err)
	}
	if !slow.written {
		t.Fatal("decode hit wrote nothing")
	}
	fromDecode, err := slow.msg.Pack()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fromWireWriter, fromDecode) {
		t.Fatalf("ECS response differs between writers:\n% x\n% x", fromWireWriter, fromDecode)
	}

	var got dnswire.Message
	if err := got.Unpack(fromDecode); err != nil {
		t.Fatal(err)
	}
	ecs, ok := got.ECS()
	if !ok {
		t.Fatal("served response lost ECS")
	}
	if want := netip.MustParseAddr("10.1.2.0"); ecs.Address != want || ecs.ScopePrefix != 16 {
		t.Errorf("echo = %s/%d/%d, want %s/24/16", ecs.Address, ecs.SourcePrefix, ecs.ScopePrefix, want)
	}
	if len(got.Answers) != 1 || got.Answers[0].Header().TTL != 20 {
		t.Errorf("answers = %v, want one A aged to TTL 20", got.Answers)
	}
	if backend.hits != 1 {
		t.Errorf("backend hits = %d, want 1", backend.hits)
	}
}

// Ingress normalization: a query arriving with a nonzero scope or
// stray host bits is scrubbed before the cache keys on it, so hostile
// variants of the same disclosure cannot fragment the cache.
func TestQueryECSNormalizedAtIngress(t *testing.T) {
	clock := &vclock.Fixed{}
	cache := NewCache(clock)
	backend := &countingPlugin{h: ecsAnswerHandler("192.0.2.9", echoSourceScope)}
	h := Chain(cache, backend)

	dirty := queryFor("norm.test.")
	opt := dirty.Msg.SetEDNS(1232)
	opt.Options = append(opt.Options, &dnswire.ECSOption{
		Family:       1,
		SourcePrefix: 24,
		ScopePrefix:  13,                               // must be zero in queries
		Address:      netip.MustParseAddr("10.1.1.77"), // stray host bits
	})
	resp := Resolve(context.Background(), h, dirty)
	ecs, ok := resp.ECS()
	if !ok {
		t.Fatal("response lacks ECS")
	}
	if want := netip.MustParseAddr("10.1.1.0"); ecs.Address != want {
		t.Errorf("echoed address = %v, want masked %v", ecs.Address, want)
	}

	// The clean form of the same disclosure hits the same entry.
	Resolve(context.Background(), h, ecsQueryFor("norm.test.", "10.1.1.0/24"))
	if backend.hits != 1 {
		t.Errorf("normalized duplicate went upstream: hits = %d, want 1", backend.hits)
	}
}
