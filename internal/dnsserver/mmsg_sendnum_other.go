//go:build linux && !amd64 && !arm64 && !riscv64 && !loong64 && !386 && !arm

package dnsserver

// Architectures whose sendmmsg number isn't pinned: 0 means "not
// wired up", and egress degrades to the per-packet sendto loop.
// recvmmsg batching still applies — its number is in package syscall
// everywhere.
const sendmmsgTrap uintptr = 0
