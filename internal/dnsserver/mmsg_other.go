//go:build !linux

package dnsserver

// Non-Linux fallbacks: without recvmmsg/sendmmsg the server always
// runs the single-datagram ingress loop and the per-packet egress
// loop. The worker path is identical — batches just hold one packet.

const (
	batchingSupported = false
	defaultBatch      = 1
)

// egressIO carries no state on the unbatched path.
type egressIO struct{}

// sendBatch degrades to one sendto per queued response.
func (w *udpWriter) sendBatch() { w.sendLoop() }

// serveUDPBatched never runs here (batchSize collapses to 1), but the
// symbol must exist for Start; degrade to the single-datagram loop.
func (s *Server) serveUDPBatched(sh *socketShard, batch int) { s.serveUDPSingle(sh) }
