//go:build linux

package dnsserver

import (
	"net/netip"
	"strconv"
	"syscall"
	"unsafe"

	"github.com/meccdn/meccdn/internal/dnswire"
)

// Batched UDP syscalls. Under the paper's DoS-threshold load the
// per-packet kernel crossing dominates the serve cost: recvmmsg and
// sendmmsg move up to a whole batch of datagrams per crossing, so the
// syscall cost amortizes across the batch instead of repeating per
// query. The read loop arms a batch of pooled buffers, receives into
// all of them with one recvmmsg, and hands the filled prefix to the
// worker pool; workers queue their packed responses and flush them
// back out the arrival socket with one sendmmsg.
//
// Everything here sticks to package syscall — no x/sys dependency.
// SYS_RECVMMSG exists in the stdlib tables on every linux arch;
// sendmmsg's number is supplied per-arch by the mmsg_sendnum_*.go
// files (0 means "not wired up", degrading egress to a sendto loop).

const (
	batchingSupported = true
	defaultBatch      = 32
)

// mmsghdr mirrors the kernel's struct mmsghdr. Go's natural trailing
// padding after the uint32 matches the C layout on both 64-bit
// (4 padding bytes) and 32-bit (none) architectures.
type mmsghdr struct {
	hdr syscall.Msghdr
	n   uint32 // bytes received/sent for this message (kernel out-param)
}

func recvmmsg(fd uintptr, hdrs []mmsghdr) (int, syscall.Errno) {
	n, _, errno := syscall.Syscall6(syscall.SYS_RECVMMSG, fd,
		uintptr(unsafe.Pointer(&hdrs[0])), uintptr(len(hdrs)), 0, 0, 0)
	return int(n), errno
}

func sendmmsg(fd uintptr, hdrs []mmsghdr) (int, syscall.Errno) {
	n, _, errno := syscall.Syscall6(sendmmsgTrap, fd,
		uintptr(unsafe.Pointer(&hdrs[0])), uintptr(len(hdrs)), 0, 0, 0)
	return int(n), errno
}

// putSockaddr encodes addr into rsa for sending, preserving the
// address family the kernel reported it with — a v4-mapped client on a
// dual-stack socket keeps its 4-in-6 form — and returns the sockaddr
// length for Msghdr.Namelen.
func putSockaddr(rsa *syscall.RawSockaddrInet6, addr netip.AddrPort) uint32 {
	a := addr.Addr()
	port := addr.Port()
	if a.Is4() {
		rsa4 := (*syscall.RawSockaddrInet4)(unsafe.Pointer(rsa))
		rsa4.Family = syscall.AF_INET
		p := (*[2]byte)(unsafe.Pointer(&rsa4.Port))
		p[0], p[1] = byte(port>>8), byte(port) // sin_port is big-endian
		rsa4.Addr = a.As4()
		return syscall.SizeofSockaddrInet4
	}
	rsa.Family = syscall.AF_INET6
	p := (*[2]byte)(unsafe.Pointer(&rsa.Port))
	p[0], p[1] = byte(port>>8), byte(port)
	rsa.Flowinfo = 0
	rsa.Addr = a.As16()
	rsa.Scope_id = 0
	if z := a.Zone(); z != "" {
		// The ingress path stores the kernel's numeric scope id as the
		// zone (see sockaddrToAddrPort), so it round-trips without an
		// interface-name lookup.
		if id, err := strconv.ParseUint(z, 10, 32); err == nil {
			rsa.Scope_id = uint32(id)
		}
	}
	return syscall.SizeofSockaddrInet6
}

// sockaddrToAddrPort decodes a kernel-filled sockaddr. Numeric scope
// ids become the netip zone verbatim; only putSockaddr ever reads them
// back.
func sockaddrToAddrPort(rsa *syscall.RawSockaddrInet6) netip.AddrPort {
	switch rsa.Family {
	case syscall.AF_INET:
		rsa4 := (*syscall.RawSockaddrInet4)(unsafe.Pointer(rsa))
		p := (*[2]byte)(unsafe.Pointer(&rsa4.Port))
		return netip.AddrPortFrom(netip.AddrFrom4(rsa4.Addr), uint16(p[0])<<8|uint16(p[1]))
	case syscall.AF_INET6:
		p := (*[2]byte)(unsafe.Pointer(&rsa.Port))
		addr := netip.AddrFrom16(rsa.Addr)
		if rsa.Scope_id != 0 {
			addr = addr.WithZone(strconv.FormatUint(uint64(rsa.Scope_id), 10))
		}
		return netip.AddrPortFrom(addr, uint16(p[0])<<8|uint16(p[1]))
	}
	return netip.AddrPort{}
}

// ingressIO is one read loop's recvmmsg state: parallel slot arrays
// sized to the batch, allocated once per reader. bufs holds the pooled
// buffer armed in each slot; a slot whose buffer moved into a batch is
// nil until re-armed.
type ingressIO struct {
	bufs  [][]byte
	hdrs  []mmsghdr
	iovs  []syscall.Iovec
	names []syscall.RawSockaddrInet6
	n     int
	err   syscall.Errno
}

func newIngressIO(batch int) *ingressIO {
	ing := &ingressIO{
		bufs:  make([][]byte, batch),
		hdrs:  make([]mmsghdr, batch),
		iovs:  make([]syscall.Iovec, batch),
		names: make([]syscall.RawSockaddrInet6, batch),
	}
	for i := range ing.hdrs {
		h := &ing.hdrs[i].hdr
		h.Name = (*byte)(unsafe.Pointer(&ing.names[i]))
		h.Iov = &ing.iovs[i]
		h.Iovlen = 1
	}
	return ing
}

// arm points slot i at buf for the next receive.
func (ing *ingressIO) arm(i int, buf []byte) {
	ing.bufs[i] = buf
	ing.iovs[i].Base = unsafe.SliceData(buf)
	ing.iovs[i].SetLen(len(buf))
}

// read is the syscall.RawConn.Read callback: one recvmmsg attempt.
// Returning false parks the goroutine on the runtime poller until the
// socket is readable again (or the read deadline fires).
func (ing *ingressIO) read(fd uintptr) bool {
	for {
		n, errno := recvmmsg(fd, ing.hdrs)
		switch errno {
		case 0:
			ing.n, ing.err = n, 0
			return true
		case syscall.EINTR:
			// retry immediately; the socket may already hold packets
		case syscall.EAGAIN:
			return false
		default:
			ing.n, ing.err = 0, errno
			return true
		}
	}
}

// serveUDPBatched is the batched ingress loop for one sharded socket:
// up to batch datagrams per recvmmsg, each landing directly in a
// pooled buffer, the filled prefix handed to the worker pool as one
// udpBatch. Kernel out-params (Namelen, Flags) are re-armed on every
// iteration because recvmmsg overwrites them per message.
func (s *Server) serveUDPBatched(sh *socketShard, batch int) {
	defer s.wg.Done()
	defer s.readers.Done() // last reader out closes the queue
	ing := newIngressIO(batch)
	readFn := ing.read // bound once: a per-iteration method value allocates
	release := func() {
		for i := range ing.bufs {
			if ing.bufs[i] != nil {
				dnswire.PutBuffer(ing.bufs[i])
				ing.bufs[i] = nil
			}
		}
	}
	for {
		for i := 0; i < batch; i++ {
			if ing.bufs[i] == nil {
				ing.arm(i, dnswire.GetBuffer())
			}
			ing.hdrs[i].hdr.Namelen = syscall.SizeofSockaddrInet6
			ing.hdrs[i].hdr.Flags = 0
		}
		if err := sh.rc.Read(readFn); err != nil || ing.err != 0 {
			release()
			return // closed, draining (deadline), or socket error
		}
		n := ing.n
		if n == 0 {
			continue
		}
		sh.packets.Add(uint64(n))
		sh.batches.Inc()
		b := getBatch(sh)
		for i := 0; i < n; i++ {
			b.bufs[i] = ing.bufs[i][:int(ing.hdrs[i].n)]
			b.addrs[i] = sockaddrToAddrPort(&ing.names[i])
			ing.bufs[i] = nil
		}
		b.n = n
		if !s.dispatch(b) {
			release()
			return // draining
		}
	}
}

// egressIO is one worker's sendmmsg state: slot arrays grown to the
// largest flush seen, rebuilt from w.out on every flush.
type egressIO struct {
	hdrs  []mmsghdr
	iovs  []syscall.Iovec
	names []syscall.RawSockaddrInet6
	off   int // first unsent slot
	end   int
	errs  int
	fn    func(uintptr) bool
}

func (e *egressIO) ensure(n int) {
	if cap(e.hdrs) >= n {
		e.hdrs = e.hdrs[:n]
		e.iovs = e.iovs[:n]
		e.names = e.names[:n]
		return
	}
	e.hdrs = make([]mmsghdr, n)
	e.iovs = make([]syscall.Iovec, n)
	e.names = make([]syscall.RawSockaddrInet6, n)
}

// setSlot points slot i at queued response p. Every pointer is rebound
// per flush since ensure may have reallocated the arrays.
func (e *egressIO) setSlot(i int, p *egressPkt) {
	e.iovs[i].Base = unsafe.SliceData(p.buf)
	e.iovs[i].SetLen(p.n)
	h := &e.hdrs[i].hdr
	h.Name = (*byte)(unsafe.Pointer(&e.names[i]))
	h.Namelen = putSockaddr(&e.names[i], p.raddr)
	h.Iov = &e.iovs[i]
	h.Iovlen = 1
	h.Flags = 0
	e.hdrs[i].n = 0
}

// send is the syscall.RawConn.Write callback: sendmmsg until the whole
// [off, end) window is out. A datagram the kernel refuses outright is
// skipped and counted so one bad destination can't wedge the batch;
// UDP clients retry.
func (e *egressIO) send(fd uintptr) bool {
	for e.off < e.end {
		n, errno := sendmmsg(fd, e.hdrs[e.off:e.end])
		switch errno {
		case 0:
			e.off += n
		case syscall.EINTR:
			// retry
		case syscall.EAGAIN:
			return false
		default:
			e.errs++
			e.off++
		}
	}
	return true
}

// sendBatch flushes the worker's queued responses with sendmmsg,
// falling back to the per-packet loop on architectures without a wired
// syscall number.
func (w *udpWriter) sendBatch() {
	if sendmmsgTrap == 0 {
		w.sendLoop()
		return
	}
	e := &w.eio
	n := len(w.out)
	e.ensure(n)
	for i := range w.out {
		e.setSlot(i, &w.out[i])
	}
	e.off, e.end, e.errs = 0, n, 0
	if e.fn == nil {
		e.fn = e.send // bound once per worker
	}
	if err := w.shard.rc.Write(e.fn); err != nil {
		e.errs += e.end - e.off // deadline/close mid-flush: remainder unsent
	}
	if e.errs > 0 {
		w.sendErrs.Add(uint64(e.errs))
	}
	for i := range w.out {
		dnswire.PutBuffer(w.out[i].buf)
	}
}
