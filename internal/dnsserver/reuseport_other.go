//go:build !linux && !darwin

package dnsserver

import (
	"errors"
	"syscall"
)

// reusePortSupported: no portable SO_REUSEPORT semantics here, so the
// server always falls back to a single UDP ingress socket.
const reusePortSupported = false

// controlReusePort is never called on platforms without SO_REUSEPORT
// support (listenUDP collapses Sockets to 1 first); it exists so both
// build variants expose the same symbols.
func controlReusePort(network, address string, c syscall.RawConn) error {
	return errors.New("dnsserver: SO_REUSEPORT not supported on this platform")
}
