package dnsserver

import (
	"context"
	"fmt"
	"math/rand"
	"net/netip"
	"testing"
	"testing/quick"

	"github.com/meccdn/meccdn/internal/dnswire"
)

// randomLabel builds a plausible DNS label from a seed byte.
func randomLabel(rng *rand.Rand) string {
	const alphabet = "abcdefghijklmnopqrstuvwxyz0123456789-"
	n := 1 + rng.Intn(12)
	b := make([]byte, n)
	for i := range b {
		b[i] = alphabet[rng.Intn(len(alphabet)-1)]
	}
	// Avoid leading '-' which some parsers dislike; keep it simple.
	if b[0] == '-' {
		b[0] = 'a'
	}
	return string(b)
}

func randomName(rng *rand.Rand, origin string) string {
	depth := 1 + rng.Intn(3)
	name := ""
	for i := 0; i < depth; i++ {
		name += randomLabel(rng) + "."
	}
	return name + origin
}

// TestZoneAddedRecordsAlwaysFound is the core zone invariant: any
// record added is returned by a lookup for its exact name and type.
func TestZoneAddedRecordsAlwaysFound(t *testing.T) {
	f := func(seed int64, count uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		z := NewZone("prop.test.")
		type key struct{ name string }
		added := map[key]netip.Addr{}
		for i := 0; i < int(count%40)+1; i++ {
			name := randomName(rng, "prop.test.")
			addr := netip.AddrFrom4([4]byte{10, byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(254)) + 1})
			if err := z.AddA(name, 60, addr); err != nil {
				return false
			}
			added[key{dnswire.CanonicalName(name)}] = addr
		}
		for k, addr := range added {
			res, answers, _ := z.Lookup(k.name, dnswire.TypeA)
			if res != LookupSuccess {
				t.Logf("lookup %q: %v", k.name, res)
				return false
			}
			found := false
			for _, rr := range answers {
				if a, ok := rr.(*dnswire.A); ok && a.Addr == addr {
					found = true
				}
			}
			if !found {
				t.Logf("added %v for %q not in answers", addr, k.name)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestZoneLookupNeverPanics throws structured garbage at Lookup.
func TestZoneLookupNeverPanics(t *testing.T) {
	z := testZone(t)
	f := func(raw []byte, typ uint16) bool {
		name := string(raw)
		_, _, _ = z.Lookup(name, dnswire.Type(typ))
		_, _, _ = z.Lookup(name+".mycdn.ciab.test.", dnswire.Type(typ))
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

// TestZoneLookupClassifiesConsistently: a name either exists (Success
// or NoData for some type) or does not (NXDomain for every type) —
// never both.
func TestZoneLookupClassifiesConsistently(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		z := NewZone("c.test.")
		names := make([]string, 0, 10)
		for i := 0; i < 10; i++ {
			name := randomName(rng, "c.test.")
			if err := z.AddA(name, 60, netip.MustParseAddr("192.0.2.1")); err != nil {
				return false
			}
			names = append(names, dnswire.CanonicalName(name))
		}
		for _, name := range names {
			resA, _, _ := z.Lookup(name, dnswire.TypeA)
			resTXT, _, _ := z.Lookup(name, dnswire.TypeTXT)
			if resA != LookupSuccess {
				return false
			}
			// The same name must not be NXDOMAIN for another type.
			if resTXT == LookupNXDomain {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestServerResolveGarbageQueries feeds random (but unpackable)
// queries through a full chain; the server must answer, never panic.
func TestServerResolveGarbageQueries(t *testing.T) {
	h := Chain(NewZonePlugin(testZone(t)))
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		q := new(dnswire.Message)
		q.SetQuestion(randomName(rng, fmt.Sprintf("%s.", randomLabel(rng))), dnswire.Type(rng.Intn(300)))
		q.ID = uint16(rng.Intn(1 << 16))
		resp := Resolve(context.Background(), h, &Request{Msg: q, Transport: "test"})
		return resp != nil && resp.ID == q.ID
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
