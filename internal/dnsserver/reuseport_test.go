package dnsserver

// Tests for the SO_REUSEPORT-sharded UDP ingress and the TCP
// connection cap. The sharding tests are written to pass on every
// platform: where SO_REUSEPORT is unsupported the server collapses to
// one socket, and the assertions key off reusePortSupported.

import (
	"context"
	"net"
	"net/netip"
	"testing"
	"time"

	"github.com/meccdn/meccdn/internal/dnswire"
)

// startShardedServer starts a server with the given socket count on an
// ephemeral port and returns it (callers own shutdown).
func startShardedServer(t *testing.T, sockets int) *Server {
	t.Helper()
	z := NewZone("shard.test.")
	if err := z.AddA("www.shard.test.", 60, netip.MustParseAddr("192.0.2.61")); err != nil {
		t.Fatal(err)
	}
	srv := &Server{Addr: "127.0.0.1:0", Handler: Chain(NewZonePlugin(z)), Sockets: sockets}
	if err := srv.Start(); err != nil {
		t.Fatalf("starting %d-socket server: %v", sockets, err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv
}

// TestShardedIngressServes binds several SO_REUSEPORT sockets to one
// port and drives queries from many distinct client sockets, so the
// kernel's flow hash spreads them across the shards; every query must
// be answered regardless of which socket it lands on, and the server
// must drain cleanly with all read loops running.
func TestShardedIngressServes(t *testing.T) {
	srv := startShardedServer(t, 4)
	want := 1
	if reusePortSupported {
		want = 4
	}
	if got := srv.NumSockets(); got != want {
		t.Fatalf("NumSockets() = %d, want %d", got, want)
	}
	addr := srv.LocalAddr()
	for i := 0; i < 16; i++ {
		// A fresh client per query means a fresh source port, i.e. a
		// fresh flow hash.
		resp, err := realClient().Query(context.Background(), addr, "www.shard.test.", dnswire.TypeA)
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		if len(resp.Answers) != 1 {
			t.Fatalf("query %d: answers = %v", i, resp.Answers)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Errorf("Shutdown = %v, want a clean drain", err)
	}
}

// TestSingleSocketFallback pins the collapse rule: Sockets of zero or
// one — and any value on platforms without SO_REUSEPORT — serve
// through the classic single socket.
func TestSingleSocketFallback(t *testing.T) {
	for _, sockets := range []int{0, 1} {
		srv := startShardedServer(t, sockets)
		if got := srv.NumSockets(); got != 1 {
			t.Errorf("Sockets=%d: NumSockets() = %d, want 1", sockets, got)
		}
		resp, err := realClient().Query(context.Background(), srv.LocalAddr(), "www.shard.test.", dnswire.TypeA)
		if err != nil {
			t.Fatalf("Sockets=%d: %v", sockets, err)
		}
		if len(resp.Answers) != 1 {
			t.Errorf("Sockets=%d: answers = %v", sockets, resp.Answers)
		}
	}
}

// dialTCPQuery opens a raw TCP connection to addr; the returned query
// function sends one question and waits for the length-prefixed reply.
func dialTCPQuery(t *testing.T, addr netip.AddrPort) (net.Conn, func() error) {
	t.Helper()
	conn, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return conn, func() error {
		q := new(dnswire.Message)
		q.SetQuestion("www.shard.test.", dnswire.TypeA)
		q.ID = 7
		wire, err := q.Pack()
		if err != nil {
			return err
		}
		_ = conn.SetDeadline(time.Now().Add(2 * time.Second))
		if err := dnswire.WriteTCP(conn, wire); err != nil {
			return err
		}
		resp, err := dnswire.ReadTCP(conn)
		if err != nil {
			return err
		}
		dnswire.PutBuffer(resp)
		return nil
	}
}

// TestTCPMaxConns pins the connection cap: with MaxConns held open by
// idle connections, the next accept is closed immediately (counted on
// the reject and shed counters), and closing one of the idle
// connections frees a slot for a new client.
func TestTCPMaxConns(t *testing.T) {
	z := NewZone("shard.test.")
	if err := z.AddA("www.shard.test.", 60, netip.MustParseAddr("192.0.2.61")); err != nil {
		t.Fatal(err)
	}
	shed := &LoadShed{}
	srv := &Server{Addr: "127.0.0.1:0", Handler: Chain(NewZonePlugin(z)), MaxConns: 2, Shed: shed}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	addr := srv.LocalAddr()

	// Two connections fill the cap; a query on each proves they are
	// registered and being served, then they sit idle holding slots.
	conn1, query1 := dialTCPQuery(t, addr)
	if err := query1(); err != nil {
		t.Fatal(err)
	}
	_, query2 := dialTCPQuery(t, addr)
	if err := query2(); err != nil {
		t.Fatal(err)
	}

	// The third connection must be closed at accept: the read sees EOF
	// without a response ever arriving.
	conn3, query3 := dialTCPQuery(t, addr)
	if err := query3(); err == nil {
		t.Fatal("query succeeded on a connection beyond MaxConns")
	}
	conn3.Close()
	if got := srv.RejectedConns(); got != 1 {
		t.Errorf("RejectedConns() = %d, want 1", got)
	}
	if got, _ := shed.Shed(); got != 1 {
		t.Errorf("shed counter = %d, want the rejected conn recorded", got)
	}

	// Closing an idle connection frees its slot (asynchronously, as
	// its handler observes the close).
	conn1.Close()
	waitFor(t, 2*time.Second, func() bool {
		_, query := dialTCPQuery(t, addr)
		return query() == nil
	})
}
