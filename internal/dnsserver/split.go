package dnsserver

import (
	"context"
	"net/netip"

	"github.com/meccdn/meccdn/internal/dnswire"
)

// Split implements the paper's split-namespace DNS: one namespace
// instance dedicated to internal VNFs and another for publicly visible
// MEC-CDN names. Exposing the orchestrator's internal DNS directly
// would expose the vRAN IP namespace; Split keeps the two views
// separate while serving both from one listener.
type Split struct {
	// IsInternal classifies the querying address. Typically it
	// reports membership in the cluster/VNF address range.
	IsInternal func(netip.Addr) bool
	// Internal answers queries from internal clients (VNF service
	// discovery: full cluster view).
	Internal Handler
	// Public answers everyone else (MEC-CDN names only).
	Public Handler
}

// Name implements Plugin.
func (s *Split) Name() string { return "split" }

// ServeDNS implements Plugin. Split is terminal: one of the two
// sub-chains always handles the request; next is never called.
func (s *Split) ServeDNS(ctx context.Context, w ResponseWriter, r *Request, _ Handler) (dnswire.Rcode, error) {
	internal := s.IsInternal != nil && s.IsInternal(r.Client.Addr())
	h := s.Public
	if internal {
		h = s.Internal
	}
	if h == nil {
		return dnswire.RcodeRefused, nil
	}
	return h.ServeDNS(ctx, w, r)
}

// ECS attaches an EDNS Client Subnet option derived from the querying
// address to requests that lack one (the resolver-side behaviour of
// RFC 7871 §6), so downstream authoritative servers — the C-DNS — can
// select a cache near the client. PrefixV4/PrefixV6 control how much
// of the address is disclosed.
type ECS struct {
	// PrefixV4 is the IPv4 source prefix length; 0 means 24.
	PrefixV4 int
	// PrefixV6 is the IPv6 source prefix length; 0 means 56.
	PrefixV6 int
	// Override, when valid, is used instead of the client address.
	// A cellular L-DNS behind a P-GW would set this to the gateway's
	// public prefix — the very localization error the paper measures.
	Override netip.Prefix
}

// Name implements Plugin.
func (e *ECS) Name() string { return "ecs" }

// ServeDNS implements Plugin.
func (e *ECS) ServeDNS(ctx context.Context, w ResponseWriter, r *Request, next Handler) (dnswire.Rcode, error) {
	if _, has := r.Msg.ECS(); !has {
		prefix, ok := e.clientPrefix(r.Client.Addr())
		if ok {
			opt := r.Msg.SetEDNS(dnswire.DefaultEDNSSize)
			opt.Options = append(opt.Options, dnswire.NewECSOption(prefix))
		}
	}
	return next.ServeDNS(ctx, w, r)
}

func (e *ECS) clientPrefix(addr netip.Addr) (netip.Prefix, bool) {
	if e.Override.IsValid() {
		return e.Override, true
	}
	if !addr.IsValid() {
		return netip.Prefix{}, false
	}
	bits := e.PrefixV4
	if bits == 0 {
		bits = 24
	}
	if addr.Is6() && !addr.Is4In6() {
		bits = e.PrefixV6
		if bits == 0 {
			bits = 56
		}
	}
	p, err := addr.Prefix(bits)
	if err != nil {
		return netip.Prefix{}, false
	}
	return p, true
}
