package dnsserver

import (
	"context"
	"fmt"
	"net"
	"net/netip"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/meccdn/meccdn/internal/dnswire"
	"github.com/meccdn/meccdn/internal/telemetry"
	"github.com/meccdn/meccdn/internal/vclock"
)

// TestWorkerCounterAggregationExact pins the sharded-counter contract:
// with per-socket and per-worker cells instead of shared atomics, the
// aggregated totals must still be exact — the sum over reader shards
// equals the number of packets sent, and the sum over worker cells
// equals the number of responses the clients actually received. Run
// under -race this also exercises the cells from every goroutine that
// touches them.
func TestWorkerCounterAggregationExact(t *testing.T) {
	zone := NewZone("agg.test.")
	const names = 8
	for i := 0; i < names; i++ {
		if err := zone.AddA(fmt.Sprintf("n%d.agg.test.", i), 60, netip.AddrFrom4([4]byte{192, 0, 2, byte(i)})); err != nil {
			t.Fatal(err)
		}
	}
	srv := &Server{
		Addr:       "127.0.0.1:0",
		Handler:    Chain(NewZonePlugin(zone)),
		Workers:    4,
		Sockets:    2,
		QueueDepth: 256, // roomy: this test is about counting, not shedding
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })

	const clients, iters = 4, 48
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cl := realClient()
			cl.Retries = 0 // retries would skew the exact packet count
			cl.Timeout = 5 * time.Second
			for i := 0; i < iters; i++ {
				name := fmt.Sprintf("n%d.agg.test.", (c*iters+i)%names)
				if _, err := cl.Query(context.Background(), srv.LocalAddr(), name, dnswire.TypeA); err != nil {
					errs <- err
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// served is bumped after the response flush, so the last client can
	// observe its answer a beat before the counter lands.
	const total = clients * iters
	waitFor(t, 2*time.Second, func() bool { return srv.ServedPackets() == total })

	packets, batches := srv.BatchStats()
	if packets != total {
		t.Errorf("shard packet counters sum to %d, want %d", packets, total)
	}
	if served := srv.ServedPackets(); served != total {
		t.Errorf("worker served counters sum to %d, want %d", served, total)
	}
	if dropped := srv.DroppedPackets(); dropped != 0 {
		t.Errorf("%d packets shed with a roomy queue", dropped)
	}
	if batches == 0 || batches > packets {
		t.Errorf("batches = %d, want in [1, %d]", batches, packets)
	}

	// The new serve-loop families aggregate those cells at scrape time.
	reg := telemetry.NewRegistry()
	reg.MustRegister(srv.Collectors()...)
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	for _, family := range []string{
		"meccdn_dns_udp_packets_total", "meccdn_dns_udp_batches_total", "meccdn_dns_udp_send_errors_total",
	} {
		if !strings.Contains(b.String(), family) {
			t.Errorf("exposition missing %s", family)
		}
	}
	if !strings.Contains(b.String(), fmt.Sprintf("meccdn_dns_udp_packets_total %d", total)) {
		t.Errorf("packets_total family does not expose the aggregated value %d:\n%s", total, b.String())
	}
}

// TestBatchDrainOnShutdown pins the drain contract on the batched
// ingress path: a burst accepted as one or more multi-packet batches
// before Shutdown begins is still fully served and flushed, and the
// counters stay consistent (every counted packet is either served or
// deliberately dropped; nothing is lost in a half-processed batch).
func TestBatchDrainOnShutdown(t *testing.T) {
	z := NewZone("bdrain.test.")
	if err := z.AddA("www.bdrain.test.", 60, netip.MustParseAddr("192.0.2.88")); err != nil {
		t.Fatal(err)
	}
	srv := &Server{
		Addr:       "127.0.0.1:0",
		Handler:    Chain(&slowPlugin{delay: 3 * time.Millisecond}, NewZonePlugin(z)),
		Workers:    1, // serialize so the burst is still queued when Shutdown starts
		QueueDepth: 64,
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}

	q := new(dnswire.Message)
	q.SetQuestion("www.bdrain.test.", dnswire.TypeA)
	q.ID = 7
	wire, err := q.Pack()
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("udp", srv.LocalAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	const burst = 20
	for i := 0; i < burst; i++ {
		if _, err := conn.Write(wire); err != nil {
			t.Fatal(err)
		}
	}

	// Let the reader pull the burst into batches, then drain.
	waitFor(t, 2*time.Second, func() bool { p, _ := srv.BatchStats(); return p > 0 })
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("drain failed: %v", err)
	}

	// Every response a worker flushed must be readable even though the
	// server is gone; count them.
	responses := 0
	buf := make([]byte, 2048)
	for {
		conn.SetReadDeadline(time.Now().Add(250 * time.Millisecond))
		if _, err := conn.Read(buf); err != nil {
			break
		}
		responses++
	}

	packets, _ := srv.BatchStats()
	served := srv.ServedPackets()
	dropped := srv.DroppedPackets()
	if served == 0 {
		t.Fatal("no packets served before drain")
	}
	if uint64(responses) != served {
		t.Errorf("client read %d responses, server counted %d served; drain lost flushed batches", responses, served)
	}
	if served+dropped > packets {
		t.Errorf("served (%d) + dropped (%d) exceeds packets read (%d)", served, dropped, packets)
	}
}

// TestUDPTruncatesOversizedResponse pins the truncation contract on
// both serve paths: a response that cannot fit the client's advertised
// UDP payload (512 bytes without EDNS) must be cut down with TC=1 and
// sent small — never sent oversized, and never mutated in place in a
// message another goroutine may share. The second query repeats the
// check through the cache, whose stored wire image is larger than the
// limit and must take the decode-and-truncate fallback rather than
// patching oversized bytes onto the wire.
func TestUDPTruncatesOversizedResponse(t *testing.T) {
	zone := NewZone("big.test.")
	const rrs = 40 // ~650 bytes packed: comfortably past the 512-byte plain-UDP limit
	for i := 0; i < rrs; i++ {
		if err := zone.AddA("www.big.test.", 300, netip.AddrFrom4([4]byte{10, 9, byte(i >> 8), byte(i)})); err != nil {
			t.Fatal(err)
		}
	}
	cache := NewCache(vclock.NewReal())
	srv := &Server{
		Addr:    "127.0.0.1:0",
		Handler: Chain(cache, NewZonePlugin(zone)),
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })

	conn, err := net.Dial("udp", srv.LocalAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	ask := func(id uint16, label string) {
		t.Helper()
		q := new(dnswire.Message)
		q.SetQuestion("www.big.test.", dnswire.TypeA)
		q.ID = id // deliberately no EDNS: the server may send at most 512 bytes
		wire, err := q.Pack()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := conn.Write(wire); err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, 4096)
		conn.SetReadDeadline(time.Now().Add(2 * time.Second))
		n, err := conn.Read(buf)
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		if n > dnswire.MaxUDPSize {
			t.Fatalf("%s: response is %d bytes, exceeds the %d-byte plain-UDP limit", label, n, dnswire.MaxUDPSize)
		}
		var resp dnswire.Message
		if err := resp.Unpack(buf[:n]); err != nil {
			t.Fatalf("%s: truncated response does not parse: %v", label, err)
		}
		if resp.ID != id {
			t.Fatalf("%s: response ID = %d, want %d", label, resp.ID, id)
		}
		if !resp.Truncated {
			t.Errorf("%s: oversized response sent without TC=1", label)
		}
		if len(resp.Answers) >= rrs {
			t.Errorf("%s: response still carries all %d answers", label, len(resp.Answers))
		}
	}

	ask(0x1111, "authoritative path")
	waitFor(t, time.Second, func() bool { return cache.Stats().Entries > 0 })
	ask(0x2222, "cached path")
	if st := cache.Stats(); st.Hits == 0 {
		t.Errorf("second query did not hit the cache (hits=%d misses=%d)", st.Hits, st.Misses)
	}
}
