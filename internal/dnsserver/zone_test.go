package dnsserver

import (
	"context"
	"net/netip"
	"strings"
	"testing"

	"github.com/meccdn/meccdn/internal/dnswire"
)

func testZone(t *testing.T) *Zone {
	t.Helper()
	z := NewZone("mycdn.ciab.test.")
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(z.AddA("edge1.mycdn.ciab.test.", 60, netip.MustParseAddr("10.96.0.11")))
	must(z.AddA("edge1.mycdn.ciab.test.", 60, netip.MustParseAddr("10.96.0.12")))
	must(z.AddCNAME("video.demo1.mycdn.ciab.test.", 300, "edge1.mycdn.ciab.test."))
	must(z.AddCNAME("chain1.mycdn.ciab.test.", 300, "chain2.mycdn.ciab.test."))
	must(z.AddCNAME("chain2.mycdn.ciab.test.", 300, "edge1.mycdn.ciab.test."))
	must(z.AddCNAME("external.mycdn.ciab.test.", 300, "cdn.elsewhere.example."))
	must(z.Add(&dnswire.TXT{
		Hdr: dnswire.RRHeader{Name: "edge1.mycdn.ciab.test.", Type: dnswire.TypeTXT, Class: dnswire.ClassINET, TTL: 60},
		Txt: []string{"site=edge1"},
	}))
	must(z.AddA("*.wild.mycdn.ciab.test.", 60, netip.MustParseAddr("10.96.0.99")))
	// Delegation: child.mycdn.ciab.test → ns.child with glue.
	must(z.Add(&dnswire.NS{
		Hdr: dnswire.RRHeader{Name: "child.mycdn.ciab.test.", Type: dnswire.TypeNS, Class: dnswire.ClassINET, TTL: 3600},
		NS:  "ns.child.mycdn.ciab.test.",
	}))
	must(z.AddA("ns.child.mycdn.ciab.test.", 3600, netip.MustParseAddr("10.96.0.200")))
	return z
}

func TestZoneLookupExact(t *testing.T) {
	z := testZone(t)
	res, ans, _ := z.Lookup("edge1.mycdn.ciab.test.", dnswire.TypeA)
	if res != LookupSuccess || len(ans) != 2 {
		t.Fatalf("res=%v answers=%d", res, len(ans))
	}
}

func TestZoneLookupCNAMEChase(t *testing.T) {
	z := testZone(t)
	res, ans, _ := z.Lookup("video.demo1.mycdn.ciab.test.", dnswire.TypeA)
	if res != LookupSuccess {
		t.Fatalf("res = %v", res)
	}
	// CNAME + 2 A records.
	if len(ans) != 3 {
		t.Fatalf("answers = %d: %v", len(ans), ans)
	}
	if ans[0].Header().Type != dnswire.TypeCNAME {
		t.Errorf("first answer type = %v", ans[0].Header().Type)
	}
}

func TestZoneLookupMultiLinkChain(t *testing.T) {
	z := testZone(t)
	res, ans, _ := z.Lookup("chain1.mycdn.ciab.test.", dnswire.TypeA)
	if res != LookupSuccess || len(ans) != 4 {
		t.Fatalf("res=%v answers=%d", res, len(ans))
	}
}

func TestZoneLookupExternalCNAME(t *testing.T) {
	z := testZone(t)
	res, ans, _ := z.Lookup("external.mycdn.ciab.test.", dnswire.TypeA)
	if res != LookupSuccess || len(ans) != 1 {
		t.Fatalf("res=%v answers=%d", res, len(ans))
	}
	cn, ok := ans[0].(*dnswire.CNAME)
	if !ok || cn.Target != "cdn.elsewhere.example." {
		t.Errorf("answer = %v", ans[0])
	}
}

func TestZoneLookupNXDomain(t *testing.T) {
	z := testZone(t)
	res, _, auth := z.Lookup("missing.mycdn.ciab.test.", dnswire.TypeA)
	if res != LookupNXDomain {
		t.Fatalf("res = %v", res)
	}
	if len(auth) != 1 || auth[0].Header().Type != dnswire.TypeSOA {
		t.Errorf("authority = %v", auth)
	}
}

func TestZoneLookupNoData(t *testing.T) {
	z := testZone(t)
	res, _, auth := z.Lookup("edge1.mycdn.ciab.test.", dnswire.TypeAAAA)
	if res != LookupNoData {
		t.Fatalf("res = %v", res)
	}
	if len(auth) != 1 || auth[0].Header().Type != dnswire.TypeSOA {
		t.Errorf("authority = %v", auth)
	}
}

func TestZoneLookupWildcard(t *testing.T) {
	z := testZone(t)
	res, ans, _ := z.Lookup("anything.wild.mycdn.ciab.test.", dnswire.TypeA)
	if res != LookupSuccess || len(ans) != 1 {
		t.Fatalf("res=%v answers=%v", res, ans)
	}
	if ans[0].Header().Name != "anything.wild.mycdn.ciab.test." {
		t.Errorf("wildcard owner not synthesized: %q", ans[0].Header().Name)
	}
	// The stored wildcard record must not be mutated by synthesis.
	res2, ans2, _ := z.Lookup("other.wild.mycdn.ciab.test.", dnswire.TypeA)
	if res2 != LookupSuccess || ans2[0].Header().Name != "other.wild.mycdn.ciab.test." {
		t.Errorf("second wildcard lookup = %v %v", res2, ans2)
	}
}

func TestZoneLookupDelegation(t *testing.T) {
	z := testZone(t)
	res, _, auth := z.Lookup("deep.child.mycdn.ciab.test.", dnswire.TypeA)
	if res != LookupDelegation {
		t.Fatalf("res = %v", res)
	}
	var ns, glue int
	for _, rr := range auth {
		switch rr.Header().Type {
		case dnswire.TypeNS:
			ns++
		case dnswire.TypeA:
			glue++
		}
	}
	if ns != 1 || glue != 1 {
		t.Errorf("referral ns=%d glue=%d", ns, glue)
	}
}

func TestZoneRejectsOutOfZoneRecord(t *testing.T) {
	z := testZone(t)
	if err := z.AddA("elsewhere.example.", 60, netip.MustParseAddr("192.0.2.1")); err == nil {
		t.Error("out-of-zone record accepted")
	}
}

func TestZoneRemove(t *testing.T) {
	z := testZone(t)
	if !z.Remove("edge1.mycdn.ciab.test.", dnswire.TypeA) {
		t.Fatal("Remove returned false")
	}
	res, _, _ := z.Lookup("edge1.mycdn.ciab.test.", dnswire.TypeA)
	if res != LookupNoData {
		t.Errorf("after remove res = %v", res)
	}
	if z.Remove("edge1.mycdn.ciab.test.", dnswire.TypeA) {
		t.Error("second Remove returned true")
	}
	if z.Remove("ghost.mycdn.ciab.test.", dnswire.TypeA) {
		t.Error("Remove of missing name returned true")
	}
}

func TestZoneCNAMELoopTerminates(t *testing.T) {
	z := NewZone("loop.test.")
	_ = z.AddCNAME("a.loop.test.", 60, "b.loop.test.")
	_ = z.AddCNAME("b.loop.test.", 60, "a.loop.test.")
	res, ans, _ := z.Lookup("a.loop.test.", dnswire.TypeA)
	if res != LookupSuccess {
		t.Fatalf("res = %v", res)
	}
	if len(ans) > 4 {
		t.Errorf("loop produced %d answers", len(ans))
	}
}

func TestZonePluginServesAuthoritative(t *testing.T) {
	p := NewZonePlugin(testZone(t))
	h := Chain(p)
	q := new(dnswire.Message)
	q.SetQuestion("video.demo1.mycdn.ciab.test.", dnswire.TypeA)
	resp := Resolve(context.Background(), h, &Request{Msg: q, Transport: "test"})
	if resp.Rcode != dnswire.RcodeSuccess || !resp.Authoritative {
		t.Fatalf("rcode=%v aa=%v", resp.Rcode, resp.Authoritative)
	}
	if len(resp.Answers) != 3 {
		t.Errorf("answers = %d", len(resp.Answers))
	}
}

func TestZonePluginFallsThrough(t *testing.T) {
	p := NewZonePlugin(testZone(t))
	h := Chain(p)
	q := new(dnswire.Message)
	q.SetQuestion("www.unrelated.example.", dnswire.TypeA)
	resp := Resolve(context.Background(), h, &Request{Msg: q, Transport: "test"})
	if resp.Rcode != dnswire.RcodeRefused {
		t.Errorf("rcode = %v, want REFUSED fallthrough", resp.Rcode)
	}
}

func TestZonePluginLongestMatch(t *testing.T) {
	parent := NewZone("test.")
	_ = parent.AddA("x.test.", 60, netip.MustParseAddr("192.0.2.1"))
	child := NewZone("sub.test.")
	_ = child.AddA("x.sub.test.", 60, netip.MustParseAddr("192.0.2.2"))
	p := NewZonePlugin(parent, child)
	q := new(dnswire.Message)
	q.SetQuestion("x.sub.test.", dnswire.TypeA)
	resp := Resolve(context.Background(), Chain(p), &Request{Msg: q})
	if len(resp.Answers) != 1 {
		t.Fatalf("answers = %v", resp.Answers)
	}
	if got := resp.Answers[0].(*dnswire.A).Addr.String(); got != "192.0.2.2" {
		t.Errorf("answer from wrong zone: %s", got)
	}
}

func TestZonePluginEchoesECSScope(t *testing.T) {
	p := NewZonePlugin(testZone(t))
	q := new(dnswire.Message)
	q.SetQuestion("edge1.mycdn.ciab.test.", dnswire.TypeA)
	opt := q.SetEDNS(1232)
	opt.Options = append(opt.Options, dnswire.NewECSOption(netip.MustParsePrefix("203.0.113.0/24")))
	resp := Resolve(context.Background(), Chain(p), &Request{Msg: q})
	ecs, ok := resp.ECS()
	if !ok {
		t.Fatal("response lacks ECS")
	}
	// Static zone data is identical for every subnet, so the echoed
	// scope must be 0 (RFC 7871 §7.2.2 semantics: cacheable for all).
	if ecs.ScopePrefix != 0 {
		t.Errorf("scope = %d, want 0", ecs.ScopePrefix)
	}
	if ecs.SourcePrefix != 24 {
		t.Errorf("source = %d, want 24", ecs.SourcePrefix)
	}
}

func TestParseZone(t *testing.T) {
	const text = `
; the MEC-CDN demo zone
@ 3600 IN SOA ns hostmaster 2020110401 7200 3600 1209600 300
@ 3600 IN NS ns
ns 3600 IN A 10.96.0.2
edge1 60 IN A 10.96.0.11
edge1 60 IN TXT "site=edge1"
video.demo1 300 IN CNAME edge1
alias 300 IN CNAME cdn.elsewhere.example.
mail 300 IN MX 10 mx1
_dns._udp 300 IN SRV 0 5 53 ns
six 60 IN AAAA fd00::1
rev 60 IN PTR edge1
`
	z, err := ParseZone("mycdn.ciab.test.", strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if z.SOA().Serial != 2020110401 {
		t.Errorf("SOA serial = %d", z.SOA().Serial)
	}
	res, ans, _ := z.Lookup("video.demo1.mycdn.ciab.test.", dnswire.TypeA)
	if res != LookupSuccess || len(ans) != 2 {
		t.Fatalf("parsed zone lookup: res=%v ans=%v", res, ans)
	}
	res, ans, _ = z.Lookup("mail.mycdn.ciab.test.", dnswire.TypeMX)
	if res != LookupSuccess || ans[0].(*dnswire.MX).MX != "mx1.mycdn.ciab.test." {
		t.Errorf("MX = %v", ans)
	}
	res, ans, _ = z.Lookup("_dns._udp.mycdn.ciab.test.", dnswire.TypeSRV)
	if res != LookupSuccess || ans[0].(*dnswire.SRV).Port != 53 {
		t.Errorf("SRV = %v", ans)
	}
}

func TestParseZoneErrors(t *testing.T) {
	bad := []string{
		"edge1 60 IN A not-an-ip",
		"edge1 60 IN AAAA 10.0.0.1",
		"edge1 60 IN WEIRD foo",
		"edge1 60 IN MX ten mx1",
		"edge1",
		"edge1 60 IN SRV 1 2 3",
	}
	for _, line := range bad {
		if _, err := ParseZone("z.test.", strings.NewReader(line)); err == nil {
			t.Errorf("ParseZone accepted %q", line)
		}
	}
}

func TestZoneNames(t *testing.T) {
	z := testZone(t)
	names := z.Names()
	if len(names) == 0 {
		t.Fatal("no names")
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] > names[i] {
			t.Fatal("names not sorted")
		}
	}
}
