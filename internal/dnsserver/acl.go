package dnsserver

import (
	"context"
	"net/netip"
	"sync"

	"github.com/meccdn/meccdn/internal/dnswire"
)

// ACL gates queries by source prefix and query domain. The paper
// notes that exposing the orchestrator's internal DNS "increases the
// attack surface for the vRAN itself"; Split hides the internal
// namespace, and ACL closes the remaining gap by refusing queries
// that should never reach a view at all (e.g. internal-zone names
// arriving from outside the cluster, or abusive prefixes identified
// by the ingress monitor).
type ACL struct {
	mu sync.RWMutex
	// allowed prefixes; empty means allow any source.
	allow []netip.Prefix
	// denied prefixes; checked before allow.
	deny []netip.Prefix
	// blockedDomains refuses matching names regardless of source.
	blockedDomains []string

	refused uint64
}

// NewACL returns an ACL that allows everything.
func NewACL() *ACL { return &ACL{} }

// Allow restricts accepted sources to the given prefixes (cumulative).
func (a *ACL) Allow(prefix netip.Prefix) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.allow = append(a.allow, prefix)
}

// Deny refuses queries from the prefix even if an Allow matches.
func (a *ACL) Deny(prefix netip.Prefix) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.deny = append(a.deny, prefix)
}

// BlockDomain refuses queries for names at or under domain.
func (a *ACL) BlockDomain(domain string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.blockedDomains = append(a.blockedDomains, dnswire.CanonicalName(domain))
}

// Refused reports how many queries the ACL rejected.
func (a *ACL) Refused() uint64 {
	a.mu.RLock()
	defer a.mu.RUnlock()
	return a.refused
}

// permitted applies deny → allow → domain rules.
func (a *ACL) permitted(src netip.Addr, qname string) bool {
	a.mu.RLock()
	defer a.mu.RUnlock()
	for _, p := range a.deny {
		if p.Contains(src) {
			return false
		}
	}
	if len(a.allow) > 0 {
		ok := false
		for _, p := range a.allow {
			if p.Contains(src) {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	for _, d := range a.blockedDomains {
		if dnswire.IsSubdomain(d, qname) {
			return false
		}
	}
	return true
}

// Name implements Plugin.
func (a *ACL) Name() string { return "acl" }

// ServeDNS implements Plugin.
func (a *ACL) ServeDNS(ctx context.Context, w ResponseWriter, r *Request, next Handler) (dnswire.Rcode, error) {
	if !a.permitted(r.Client.Addr(), r.Name()) {
		a.mu.Lock()
		a.refused++
		a.mu.Unlock()
		m := new(dnswire.Message)
		m.SetRcode(r.Msg, dnswire.RcodeRefused)
		if err := w.WriteMsg(m); err != nil {
			return dnswire.RcodeServerFailure, err
		}
		return dnswire.RcodeRefused, nil
	}
	return next.ServeDNS(ctx, w, r)
}
