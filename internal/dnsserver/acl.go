package dnsserver

import (
	"context"
	"net/netip"
	"sync"
	"sync/atomic"

	"github.com/meccdn/meccdn/internal/dnswire"
)

// aclRules is one immutable revision of the ACL's rule set. Readers
// load it through an atomic pointer and never lock; writers copy the
// current revision, extend it, and publish the copy.
type aclRules struct {
	// allow lists accepted prefixes; empty means allow any source.
	allow []netip.Prefix
	// deny lists refused prefixes; checked before allow.
	deny []netip.Prefix
	// blockedDomains refuses matching names regardless of source.
	blockedDomains []string
}

// ACL gates queries by source prefix and query domain. The paper
// notes that exposing the orchestrator's internal DNS "increases the
// attack surface for the vRAN itself"; Split hides the internal
// namespace, and ACL closes the remaining gap by refusing queries
// that should never reach a view at all (e.g. internal-zone names
// arriving from outside the cluster, or abusive prefixes identified
// by the ingress monitor).
//
// The rule set is an RCU snapshot: the per-packet permitted check is
// a single atomic pointer load with no lock, so rule updates never
// stall the serve path and the check never contends across sockets.
type ACL struct {
	rules atomic.Pointer[aclRules]
	// wmu serializes writers; readers never take it.
	wmu sync.Mutex

	refused atomic.Uint64
}

// NewACL returns an ACL that allows everything.
func NewACL() *ACL {
	a := &ACL{}
	a.rules.Store(&aclRules{})
	return a
}

// snapshot returns the current rule revision, tolerating an ACL built
// as a zero-value struct literal.
func (a *ACL) snapshot() *aclRules {
	if r := a.rules.Load(); r != nil {
		return r
	}
	a.wmu.Lock()
	defer a.wmu.Unlock()
	if r := a.rules.Load(); r != nil {
		return r
	}
	r := &aclRules{}
	a.rules.Store(r)
	return r
}

// update copies the current revision, applies fn, and publishes it.
func (a *ACL) update(fn func(*aclRules)) {
	a.wmu.Lock()
	defer a.wmu.Unlock()
	old := a.rules.Load()
	if old == nil {
		old = &aclRules{}
	}
	// Full-slice copies: the old revision stays live in concurrent
	// readers, so appends must never share its backing arrays.
	next := &aclRules{
		allow:          append([]netip.Prefix(nil), old.allow...),
		deny:           append([]netip.Prefix(nil), old.deny...),
		blockedDomains: append([]string(nil), old.blockedDomains...),
	}
	fn(next)
	a.rules.Store(next)
}

// Allow restricts accepted sources to the given prefixes (cumulative).
func (a *ACL) Allow(prefix netip.Prefix) {
	a.update(func(r *aclRules) { r.allow = append(r.allow, prefix) })
}

// Deny refuses queries from the prefix even if an Allow matches.
func (a *ACL) Deny(prefix netip.Prefix) {
	a.update(func(r *aclRules) { r.deny = append(r.deny, prefix) })
}

// BlockDomain refuses queries for names at or under domain.
func (a *ACL) BlockDomain(domain string) {
	a.update(func(r *aclRules) {
		r.blockedDomains = append(r.blockedDomains, dnswire.CanonicalName(domain))
	})
}

// Refused reports how many queries the ACL rejected.
func (a *ACL) Refused() uint64 { return a.refused.Load() }

// permitted applies deny → allow → domain rules against the current
// snapshot, lock-free.
func (a *ACL) permitted(src netip.Addr, qname string) bool {
	r := a.snapshot()
	for _, p := range r.deny {
		if p.Contains(src) {
			return false
		}
	}
	if len(r.allow) > 0 {
		ok := false
		for _, p := range r.allow {
			if p.Contains(src) {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	for _, d := range r.blockedDomains {
		if dnswire.IsSubdomain(d, qname) {
			return false
		}
	}
	return true
}

// Name implements Plugin.
func (a *ACL) Name() string { return "acl" }

// ServeDNS implements Plugin.
func (a *ACL) ServeDNS(ctx context.Context, w ResponseWriter, r *Request, next Handler) (dnswire.Rcode, error) {
	if !a.permitted(r.Client.Addr(), r.Name()) {
		a.refused.Add(1)
		m := new(dnswire.Message)
		m.SetRcode(r.Msg, dnswire.RcodeRefused)
		if err := w.WriteMsg(m); err != nil {
			return dnswire.RcodeServerFailure, err
		}
		return dnswire.RcodeRefused, nil
	}
	return next.ServeDNS(ctx, w, r)
}
