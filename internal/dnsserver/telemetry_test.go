package dnsserver

import (
	"context"
	"fmt"
	"net/netip"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/meccdn/meccdn/internal/dnswire"
	"github.com/meccdn/meccdn/internal/telemetry"
	"github.com/meccdn/meccdn/internal/vclock"
)

// TestSpanMatchesClientLatency is the acceptance test for the tracing
// subsystem: a query resolved through a real UDP server must produce a
// span whose duration is contained in — and close to — the
// client-observed latency, with its hop decomposition consistent.
func TestSpanMatchesClientLatency(t *testing.T) {
	// Upstream the forwarder escapes to.
	upZone := NewZone("up.test.")
	if err := upZone.AddA("www.up.test.", 60, netip.MustParseAddr("192.0.2.10")); err != nil {
		t.Fatal(err)
	}
	upstream := startTestServer(t, Chain(NewZonePlugin(upZone)))

	hub := telemetry.NewHub(nil)
	hub.SampleEvery = 1 // keep every query in the log

	cache := NewCache(vclock.NewReal())
	srv := &Server{
		Addr: "127.0.0.1:0",
		Handler: Chain(
			NewMetrics(),
			cache,
			&Forward{Upstreams: []netip.AddrPort{upstream}, Client: realClient()},
		),
		Telemetry: hub,
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })

	client := realClient()
	start := time.Now()
	resp, err := client.Query(context.Background(), srv.LocalAddr(), "www.up.test.", dnswire.TypeA)
	elapsed := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Answers) != 1 {
		t.Fatalf("answers = %v", resp.Answers)
	}
	// Second query: cache hit.
	if _, err := client.Query(context.Background(), srv.LocalAddr(), "www.up.test.", dnswire.TypeA); err != nil {
		t.Fatal(err)
	}

	waitFor(t, time.Second, func() bool { return hub.Log.Len() >= 2 })
	recs := hub.Log.Drain()
	if len(recs) != 2 {
		t.Fatalf("query log has %d records, want 2", len(recs))
	}

	first, second := recs[0], recs[1]
	if first.Path != telemetry.PathUpstream {
		t.Errorf("first query path = %q, want upstream (hops %+v)", first.Path, first.Hops)
	}
	if second.Path != telemetry.PathCacheHit {
		t.Errorf("second query path = %q, want cache-hit (hops %+v)", second.Path, second.Hops)
	}

	// The span is opened after the packet is read and finished after
	// the response is written, so its duration must fit inside what
	// the client measured — and, minus scheduling noise and loopback
	// I/O, account for most of it.
	elapsedUS := elapsed.Microseconds()
	if first.DurUS <= 0 {
		t.Fatalf("span duration = %dus", first.DurUS)
	}
	if first.DurUS > elapsedUS+1000 {
		t.Errorf("span (%dus) exceeds client-observed latency (%dus)", first.DurUS, elapsedUS)
	}
	if gap := elapsedUS - first.DurUS; gap > 250_000 {
		t.Errorf("span (%dus) unaccountably far from client latency (%dus)", first.DurUS, elapsedUS)
	}

	// Hop consistency: the forwarded query crossed cache (miss),
	// forward, and upstream; every hop fits inside the span, and the
	// top-level hops sum to no more than the span.
	layers := map[string]bool{}
	for _, h := range first.Hops {
		layers[h.Layer] = true
		if h.StartUS+h.DurUS > first.DurUS+1000 {
			t.Errorf("hop %s [%d+%dus] extends past span end %dus", h.Layer, h.StartUS, h.DurUS, first.DurUS)
		}
	}
	for _, want := range []string{"cache", "forward", "upstream"} {
		if !layers[want] {
			t.Errorf("no %q hop recorded: %+v", want, first.Hops)
		}
	}
	if sum := topLevelHopSum(first.Hops); sum > first.DurUS+1000 {
		t.Errorf("top-level hops sum to %dus, more than the span %dus", sum, first.DurUS)
	}

	// The hub's client-facing histogram and path counters saw both.
	if hub.ServeDuration.Count() != 2 {
		t.Errorf("serve histogram count = %d", hub.ServeDuration.Count())
	}
	if hub.Path.Value(telemetry.PathUpstream) != 1 || hub.Path.Value(telemetry.PathCacheHit) != 1 {
		t.Errorf("path counts = %v", hub.Path.Snapshot())
	}
}

// topLevelHopSum sums the durations of hops not contained in any other
// hop (1000us slack absorbs microsecond truncation in the records).
func topLevelHopSum(hops []telemetry.HopRecord) int64 {
	var sum int64
	for i, h := range hops {
		contained := false
		for j, p := range hops {
			if i == j {
				continue
			}
			if p.StartUS <= h.StartUS && p.StartUS+p.DurUS+1 >= h.StartUS+h.DurUS &&
				!(p.StartUS == h.StartUS && p.DurUS == h.DurUS && j > i) {
				contained = true
				break
			}
		}
		if !contained {
			sum += h.DurUS
		}
	}
	return sum
}

func waitFor(t *testing.T, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("condition not met in time")
}

// TestTelemetryParallelResolves drives the full plugin chain (metrics,
// loadshed, cache with coalescing, stub, forward) from many goroutines
// with spans attached; run with -race. It pins the registry invariants
// afterwards: every query classified into exactly one path, and the
// exposition renders while counters are still moving.
func TestTelemetryParallelResolves(t *testing.T) {
	upZone := NewZone("up.test.")
	cdnZone := NewZone("cdn.test.")
	for i := 0; i < 8; i++ {
		if err := upZone.AddA(fmt.Sprintf("h%d.up.test.", i), 300, netip.MustParseAddr("192.0.2.10")); err != nil {
			t.Fatal(err)
		}
		if err := cdnZone.AddA(fmt.Sprintf("v%d.cdn.test.", i), 300, netip.MustParseAddr("192.0.2.20")); err != nil {
			t.Fatal(err)
		}
	}
	upstream := startTestServer(t, Chain(NewZonePlugin(upZone, cdnZone)))

	hub := telemetry.NewHub(nil)
	hub.SampleEvery = 3

	metrics := NewMetrics()
	shed := &LoadShed{} // MaxQueries 0: admission disabled, layer still crossed
	cache := NewCache(vclock.NewReal())
	stub := NewStub(realClient())
	stub.Route("cdn.test.", upstream)
	fwd := &Forward{Upstreams: []netip.AddrPort{upstream}, Client: realClient()}
	chain := Chain(metrics, shed, cache, stub, fwd)

	reg := telemetry.NewRegistry()
	if err := reg.Register(metrics.Collectors()...); err != nil {
		t.Fatal(err)
	}
	if err := reg.Register(cache.Collectors()...); err != nil {
		t.Fatal(err)
	}
	if err := reg.Register(fwd.Collectors()...); err != nil {
		t.Fatal(err)
	}
	if err := reg.Register(shed.Collectors()...); err != nil {
		t.Fatal(err)
	}

	const workers, iters = 8, 40
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				var name string
				switch i % 3 {
				case 0:
					name = fmt.Sprintf("h%d.up.test.", i%8)
				case 1:
					name = fmt.Sprintf("v%d.cdn.test.", i%8)
				default:
					name = "unmatched.example." // forwarded, NXDOMAIN-ish REFUSED from upstream
				}
				q := new(dnswire.Message)
				q.SetQuestion(name, dnswire.TypeA)
				req := &Request{Msg: q, Client: netip.MustParseAddrPort("192.0.2.99:5353"), Transport: "udp"}
				sp := hub.Begin(req.Name(), req.Type().String(), req.Transport, req.Client.String())
				ctx := telemetry.ContextWith(context.Background(), sp)
				resp := Resolve(ctx, chain, req)
				hub.Finish(sp, resp.Rcode.String())
				if i%16 == 0 {
					var b strings.Builder
					if err := reg.WritePrometheus(&b); err != nil {
						t.Error(err)
					}
				}
			}
		}(w)
	}
	wg.Wait()

	total := uint64(workers * iters)
	if got := hub.Path.Sum(); got != total {
		t.Errorf("path counters saw %d queries, want %d", got, total)
	}
	if got := metrics.Total(); got != total {
		t.Errorf("metrics total = %d, want %d", got, total)
	}
	if got := hub.ServeDuration.Count(); got != total {
		t.Errorf("serve histogram count = %d, want %d", got, total)
	}
	added, _ := hub.Log.Stats()
	if added == 0 {
		t.Error("head sampling kept nothing")
	}
	cs := cache.Stats()
	if cs.Hits == 0 || cs.Misses == 0 {
		t.Errorf("cache saw hits=%d misses=%d; expected both under repetition", cs.Hits, cs.Misses)
	}
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	for _, family := range []string{
		"meccdn_dns_queries_total", "meccdn_dns_responses_total",
		"meccdn_dns_handler_duration_seconds_bucket", "meccdn_dns_cache_hits_total",
		"meccdn_dns_forward_queries_total", "meccdn_dns_loadshed_served_total",
	} {
		if !strings.Contains(b.String(), family) {
			t.Errorf("exposition missing %s", family)
		}
	}
}

// slowPlugin delays every query, simulating a resolution in flight
// while the server drains.
type slowPlugin struct{ delay time.Duration }

func (p *slowPlugin) Name() string { return "slow" }
func (p *slowPlugin) ServeDNS(ctx context.Context, w ResponseWriter, r *Request, next Handler) (dnswire.Rcode, error) {
	time.Sleep(p.delay)
	return next.ServeDNS(ctx, w, r)
}

func TestGracefulDrainWaitsForInflight(t *testing.T) {
	z := NewZone("drain.test.")
	if err := z.AddA("www.drain.test.", 60, netip.MustParseAddr("192.0.2.77")); err != nil {
		t.Fatal(err)
	}
	srv := &Server{
		Addr:      "127.0.0.1:0",
		Handler:   Chain(&slowPlugin{delay: 150 * time.Millisecond}, NewZonePlugin(z)),
		Telemetry: telemetry.NewHub(nil),
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}

	type result struct {
		resp *dnswire.Message
		err  error
	}
	got := make(chan result, 1)
	go func() {
		resp, err := realClient().Query(context.Background(), srv.LocalAddr(), "www.drain.test.", dnswire.TypeA)
		got <- result{resp, err}
	}()

	// Let the query land in the handler, then drain.
	time.Sleep(50 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("drain failed: %v", err)
	}
	if !srv.Draining() {
		t.Error("Draining() false after Shutdown")
	}

	// The in-flight query still got its answer.
	r := <-got
	if r.err != nil {
		t.Fatalf("in-flight query lost during drain: %v", r.err)
	}
	if len(r.resp.Answers) != 1 {
		t.Errorf("in-flight answers = %v", r.resp.Answers)
	}

	// New queries are refused service now.
	c := realClient()
	c.Timeout = 200 * time.Millisecond
	if _, err := c.Query(context.Background(), srv.LocalAddr(), "www.drain.test.", dnswire.TypeA); err == nil {
		t.Error("query answered after drain completed")
	}
}

func TestGracefulDrainDeadline(t *testing.T) {
	z := NewZone("drain.test.")
	if err := z.AddA("www.drain.test.", 60, netip.MustParseAddr("192.0.2.77")); err != nil {
		t.Fatal(err)
	}
	srv := &Server{
		Addr:    "127.0.0.1:0",
		Handler: Chain(&slowPlugin{delay: 2 * time.Second}, NewZonePlugin(z)),
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		c := realClient()
		c.Timeout = 3 * time.Second
		_, err := c.Query(context.Background(), srv.LocalAddr(), "www.drain.test.", dnswire.TypeA)
		done <- err
	}()
	time.Sleep(50 * time.Millisecond)

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	if err := srv.Shutdown(ctx); err != context.DeadlineExceeded {
		t.Errorf("Shutdown = %v, want DeadlineExceeded", err)
	}
	<-done // unblock the client goroutine before the test exits
}
