//go:build linux || darwin

package dnsserver

import "syscall"

// reusePortSupported reports whether this platform can bind several
// UDP sockets to one address with SO_REUSEPORT so the kernel shards
// inbound datagrams across them by flow hash. Linux (≥3.9) and Darwin
// both can; elsewhere the server falls back to a single socket.
const reusePortSupported = true

// controlReusePort is the net.ListenConfig.Control hook that sets
// SO_REUSEPORT on the socket between creation and bind — the only
// window in which the option can take effect.
func controlReusePort(network, address string, c syscall.RawConn) error {
	var serr error
	err := c.Control(func(fd uintptr) {
		serr = syscall.SetsockoptInt(int(fd), syscall.SOL_SOCKET, soReusePort, 1)
	})
	if err != nil {
		return err
	}
	return serr
}
