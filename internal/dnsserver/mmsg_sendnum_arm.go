//go:build linux && arm

package dnsserver

// sendmmsg on the arm EABI syscall table.
const sendmmsgTrap uintptr = 374
