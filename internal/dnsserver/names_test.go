package dnsserver

import (
	"strings"
	"testing"

	"github.com/meccdn/meccdn/internal/dnsclient"
	"github.com/meccdn/meccdn/internal/vclock"
)

// TestPluginNames pins every plugin's registry name; metrics and
// error messages key off these.
func TestPluginNames(t *testing.T) {
	plugins := map[string]Plugin{
		"zone":     NewZonePlugin(),
		"cache":    NewCache(&vclock.Fixed{}),
		"forward":  &Forward{},
		"stub":     NewStub(&dnsclient.Client{}),
		"split":    &Split{},
		"ecs":      &ECS{},
		"loadshed": &LoadShed{},
		"metrics":  NewMetrics(),
		"acl":      NewACL(),
	}
	for want, p := range plugins {
		if p.Name() != want {
			t.Errorf("%T.Name() = %q, want %q", p, p.Name(), want)
		}
	}
}

func TestCacheString(t *testing.T) {
	c := NewCache(&vclock.Fixed{})
	if s := c.String(); !strings.Contains(s, "cache{") {
		t.Errorf("String() = %q", s)
	}
}

func TestZonePluginAccessors(t *testing.T) {
	p := NewZonePlugin()
	z := NewZone("acc.test.")
	p.AddZone(z)
	if p.Zone("acc.test.") != z {
		t.Error("Zone accessor")
	}
	if p.Zone("ACC.Test") != z {
		t.Error("Zone accessor not canonicalizing")
	}
	if p.Zone("other.test.") != nil {
		t.Error("unknown zone returned")
	}
}
