package dnsserver

import (
	"context"
	"net/netip"
	"testing"

	"github.com/meccdn/meccdn/internal/dnswire"
)

func aclQuery(h Handler, name, client string) dnswire.Rcode {
	q := new(dnswire.Message)
	q.SetQuestion(name, dnswire.TypeA)
	req := &Request{Msg: q, Client: netip.MustParseAddrPort(client), Transport: "test"}
	return Resolve(context.Background(), h, req).Rcode
}

func TestACLAllowsEverythingByDefault(t *testing.T) {
	h := Chain(NewACL(), pluginize(answerHandler("192.0.2.1")))
	if rc := aclQuery(h, "x.test.", "203.0.113.5:1000"); rc != dnswire.RcodeSuccess {
		t.Errorf("rcode = %v", rc)
	}
}

func TestACLAllowList(t *testing.T) {
	acl := NewACL()
	acl.Allow(netip.MustParsePrefix("10.0.0.0/8"))
	h := Chain(acl, pluginize(answerHandler("192.0.2.1")))
	if rc := aclQuery(h, "x.test.", "10.1.2.3:1000"); rc != dnswire.RcodeSuccess {
		t.Errorf("allowed source refused: %v", rc)
	}
	if rc := aclQuery(h, "x.test.", "203.0.113.5:1000"); rc != dnswire.RcodeRefused {
		t.Errorf("outside source got %v", rc)
	}
	if acl.Refused() != 1 {
		t.Errorf("refused = %d", acl.Refused())
	}
}

func TestACLDenyOverridesAllow(t *testing.T) {
	acl := NewACL()
	acl.Allow(netip.MustParsePrefix("10.0.0.0/8"))
	acl.Deny(netip.MustParsePrefix("10.66.0.0/16"))
	h := Chain(acl, pluginize(answerHandler("192.0.2.1")))
	if rc := aclQuery(h, "x.test.", "10.66.3.4:1000"); rc != dnswire.RcodeRefused {
		t.Errorf("denied source got %v", rc)
	}
	if rc := aclQuery(h, "x.test.", "10.1.3.4:1000"); rc != dnswire.RcodeSuccess {
		t.Errorf("allowed source got %v", rc)
	}
}

func TestACLBlockedDomain(t *testing.T) {
	acl := NewACL()
	acl.BlockDomain("cluster.local.")
	h := Chain(acl, pluginize(answerHandler("192.0.2.1")))
	if rc := aclQuery(h, "coredns.kube-system.svc.cluster.local.", "203.0.113.5:1"); rc != dnswire.RcodeRefused {
		t.Errorf("blocked domain got %v", rc)
	}
	if rc := aclQuery(h, "public.example.", "203.0.113.5:1"); rc != dnswire.RcodeSuccess {
		t.Errorf("unblocked domain got %v", rc)
	}
}
