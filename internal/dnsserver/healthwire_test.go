package dnsserver

import (
	"net/netip"
	"testing"
	"time"

	"github.com/meccdn/meccdn/internal/health"
	"github.com/meccdn/meccdn/internal/vclock"
)

// TestForwardHealthOrdering: with a registry attached, non-cooling
// upstreams are reordered by probe verdict — healthy first, then
// unknown, degraded, probing, down — instead of blind configured
// order.
func TestForwardHealthOrdering(t *testing.T) {
	up := []netip.AddrPort{
		netip.MustParseAddrPort("10.0.0.1:53"), // will be down
		netip.MustParseAddrPort("10.0.0.2:53"), // degraded
		netip.MustParseAddrPort("10.0.0.3:53"), // unknown to the registry
		netip.MustParseAddrPort("10.0.0.4:53"), // healthy
		netip.MustParseAddrPort("10.0.0.5:53"), // probing
	}
	clk := &vclock.Fixed{}
	reg := health.New(health.Config{DownAfter: 3, UpAfter: 2, MinDwell: -1, Clock: clk})
	for _, u := range []int{0, 1, 3, 4} {
		reg.Add(up[u].String(), up[u].String())
	}
	for i := 0; i < 3; i++ {
		reg.ReportFailure(up[0].String())
	}
	reg.ReportSuccess(up[1].String(), time.Millisecond)
	reg.ReportFailure(up[1].String())
	reg.ReportSuccess(up[3].String(), time.Millisecond)

	f := &Forward{Upstreams: up, Clock: clk, Health: reg}
	got := f.candidates()
	want := []netip.AddrPort{up[3], up[2], up[1], up[4], up[0]}
	if len(got) != len(want) {
		t.Fatalf("candidates = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("candidates[%d] = %v, want %v (full: %v)", i, got[i], want[i], got)
		}
	}
}

// TestForwardHealthEWMATieBreak: equal-rank upstreams order by
// smoothed probe latency, fastest first.
func TestForwardHealthEWMATieBreak(t *testing.T) {
	slow := netip.MustParseAddrPort("10.0.0.1:53")
	fast := netip.MustParseAddrPort("10.0.0.2:53")
	clk := &vclock.Fixed{}
	reg := health.New(health.Config{MinDwell: -1, Clock: clk})
	reg.Add(slow.String(), slow.String())
	reg.Add(fast.String(), fast.String())
	reg.ReportSuccess(slow.String(), 40*time.Millisecond)
	reg.ReportSuccess(fast.String(), 2*time.Millisecond)

	f := &Forward{Upstreams: []netip.AddrPort{slow, fast}, Clock: clk, Health: reg}
	got := f.candidates()
	if got[0] != fast || got[1] != slow {
		t.Fatalf("candidates = %v, want fastest healthy upstream first", got)
	}
}

// TestForwardHealthKeepsCooldownLast: registry scoring reorders only
// the non-cooling set; an upstream in its failure cooldown stays a
// last resort even if the registry thinks it is healthy.
func TestForwardHealthKeepsCooldownLast(t *testing.T) {
	a := netip.MustParseAddrPort("10.0.0.1:53")
	b := netip.MustParseAddrPort("10.0.0.2:53")
	clk := &vclock.Fixed{}
	reg := health.New(health.Config{MinDwell: -1, Clock: clk})
	reg.Add(a.String(), a.String())
	reg.ReportSuccess(a.String(), time.Millisecond)

	f := &Forward{Upstreams: []netip.AddrPort{a, b}, Clock: clk, FailureThreshold: 1, Health: reg}
	f.recordFailure(a) // trips the cooldown immediately
	got := f.candidates()
	if got[0] != b || got[1] != a {
		t.Fatalf("candidates = %v, want cooling upstream demoted to last", got)
	}
}

func TestIngressLoad(t *testing.T) {
	s := &Server{}
	if got := s.IngressLoad(); got != 0 {
		t.Fatalf("IngressLoad before Start = %v, want 0", got)
	}
	s.queue = make(chan *udpBatch, 4)
	if got := s.IngressLoad(); got != 0 {
		t.Fatalf("IngressLoad with empty queue = %v, want 0", got)
	}
	s.queue <- &udpBatch{}
	s.queue <- &udpBatch{}
	if got := s.IngressLoad(); got != 0.5 {
		t.Fatalf("IngressLoad at 2/4 = %v, want 0.5", got)
	}
	s.queue <- &udpBatch{}
	s.queue <- &udpBatch{}
	if got := s.IngressLoad(); got != 1 {
		t.Fatalf("IngressLoad at capacity = %v, want 1", got)
	}
}
