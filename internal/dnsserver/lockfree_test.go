package dnsserver

import (
	"context"
	"fmt"
	"net/netip"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/meccdn/meccdn/internal/dnswire"
)

// TestZoneReloadUnderLoad hammers the serve path with parallel
// resolves while the writer performs 1000 consecutive zone snapshot
// swaps. Every query must be answered (nothing dropped or blocked on
// a lock), and no reader may observe a zone view older than the last
// snapshot published before it started — the freshness contract of
// the RCU publish.
func TestZoneReloadUnderLoad(t *testing.T) {
	zone := NewZone("live.test.")
	if err := zone.AddA("www.live.test.", 60, netip.MustParseAddr("192.0.2.1")); err != nil {
		t.Fatal(err)
	}
	acl := NewACL()
	acl.Deny(netip.MustParsePrefix("203.0.113.0/24"))
	acl.BlockDomain("blocked.example.")
	h := Chain(acl, NewZonePlugin(zone))

	// published is the serial of the most recently swapped-in snapshot;
	// stored only after Update returns, so any reader that loads it is
	// guaranteed the corresponding view is already visible.
	var published atomic.Uint32
	published.Store(zone.Serial())

	const swaps = 1000
	readers := runtime.GOMAXPROCS(0) * 2
	if readers < 4 {
		readers = 4
	}
	var (
		stop     atomic.Bool
		dropped  atomic.Uint64
		stale    atomic.Uint64
		resolved atomic.Uint64
		wg       sync.WaitGroup
	)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(seat int) {
			defer wg.Done()
			client := netip.MustParseAddrPort(fmt.Sprintf("10.0.0.%d:5000", seat+1))
			for !stop.Load() {
				expect := published.Load()
				q := new(dnswire.Message)
				q.SetQuestion("www.live.test.", dnswire.TypeA)
				resp := Resolve(context.Background(), h, &Request{Msg: q, Transport: "udp", Client: client})
				if resp.Rcode != dnswire.RcodeSuccess || len(resp.Answers) != 1 {
					dropped.Add(1)
					continue
				}
				// Freshness: the view serving right now must be at least
				// the snapshot published before this query started.
				if got := zone.Serial(); got != expect && !serialAdvanced(expect, got) {
					stale.Add(1)
				}
				resolved.Add(1)
			}
		}(r)
	}

	for i := 0; i < swaps; i++ {
		addr := netip.AddrFrom4([4]byte{192, 0, 2, byte(1 + i%250)})
		if err := zone.Update(func(b *ZoneBuilder) error {
			b.Remove("www.live.test.", dnswire.TypeA)
			return b.AddA("www.live.test.", 60, addr)
		}); err != nil {
			t.Fatal(err)
		}
		published.Store(zone.Serial())
	}
	// On a single-CPU runner the writer can finish its storm before
	// any reader is scheduled; let the readers overlap the published
	// state before stopping them.
	for resolved.Load() == 0 {
		runtime.Gosched()
	}
	stop.Store(true)
	wg.Wait()

	if n := dropped.Load(); n != 0 {
		t.Errorf("%d queries dropped or unanswered during %d snapshot swaps", n, swaps)
	}
	if n := stale.Load(); n != 0 {
		t.Errorf("%d stale-serial answers during %d snapshot swaps", n, swaps)
	}
	if resolved.Load() == 0 {
		t.Error("no queries resolved during the swap storm")
	}
	if got := zone.Serial(); got < uint32(swaps) {
		t.Errorf("serial %d after %d swaps", got, swaps)
	}
}

// TestStubACLChurnUnderLoad swaps stub routes and ACL rules while
// queries run; the race detector is the assertion, plus nothing may
// block or fail.
func TestStubACLChurnUnderLoad(t *testing.T) {
	zone := NewZone("live.test.")
	if err := zone.AddA("www.live.test.", 60, netip.MustParseAddr("192.0.2.1")); err != nil {
		t.Fatal(err)
	}
	acl := NewACL()
	stub := NewStub(nil)
	h := Chain(acl, stub, NewZonePlugin(zone))

	var stop atomic.Bool
	var dropped atomic.Uint64
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			client := netip.MustParseAddrPort("10.0.0.1:5000")
			for !stop.Load() {
				q := new(dnswire.Message)
				q.SetQuestion("www.live.test.", dnswire.TypeA)
				resp := Resolve(context.Background(), h, &Request{Msg: q, Transport: "udp", Client: client})
				if resp.Rcode != dnswire.RcodeSuccess {
					dropped.Add(1)
				}
			}
		}()
	}
	up := netip.MustParseAddrPort("192.0.2.53:53")
	for i := 0; i < 500; i++ {
		stub.Route(fmt.Sprintf("r%d.example.", i%16), up)
		stub.Unroute(fmt.Sprintf("r%d.example.", (i+8)%16))
		acl.Deny(netip.MustParsePrefix(fmt.Sprintf("203.0.%d.0/24", i%250)))
	}
	stop.Store(true)
	wg.Wait()
	if n := dropped.Load(); n != 0 {
		t.Errorf("%d queries failed during stub/ACL churn", n)
	}
}

// forbiddenMutexFrames are the query-time read-path functions that
// must never appear in a mutex-contention profile: each is the
// lock-free fast path of its subsystem after the RCU refactor.
var forbiddenMutexFrames = []string{
	"(*ZoneView).Lookup",
	"(*ZonePlugin).ServeDNS",
	"(*Stub).match",
	"(*ACL).permitted",
	"(*Forward).candidates",
	"(*Forward).recordFailure",
	"(*Forward).recordSuccess",
}

// TestServePathMutexFree is the mutex-profile smoke test behind
// `make mutexprofile`: with mutex profiling at fraction 1 and writers
// churning every snapshot as hard as they can, running the serve path
// concurrently must record zero contention events in any zone, stub,
// ACL, or forward read-path frame. If a lock creeps back into one of
// those functions, the writer churn makes it contend and the frame
// shows up here.
func TestServePathMutexFree(t *testing.T) {
	old := runtime.SetMutexProfileFraction(1)
	defer runtime.SetMutexProfileFraction(old)

	zone := NewZone("live.test.")
	if err := zone.AddA("www.live.test.", 60, netip.MustParseAddr("192.0.2.1")); err != nil {
		t.Fatal(err)
	}
	acl := NewACL()
	acl.Deny(netip.MustParsePrefix("203.0.113.0/24"))
	stub := NewStub(nil)
	stub.Route("elsewhere.example.", netip.MustParseAddrPort("192.0.2.53:53"))
	fwd := &Forward{Upstreams: []netip.AddrPort{
		netip.MustParseAddrPort("192.0.2.53:53"),
		netip.MustParseAddrPort("192.0.2.54:53"),
	}}
	h := Chain(acl, stub, NewZonePlugin(zone))

	var stop atomic.Bool
	var wg sync.WaitGroup
	for r := 0; r < runtime.GOMAXPROCS(0)+2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			client := netip.MustParseAddrPort("10.0.0.1:5000")
			for !stop.Load() {
				q := new(dnswire.Message)
				q.SetQuestion("www.live.test.", dnswire.TypeA)
				Resolve(context.Background(), h, &Request{Msg: q, Transport: "udp", Client: client})
				fwd.candidates()
				fwd.recordFailure(fwd.Upstreams[0])
				fwd.recordSuccess(fwd.Upstreams[0])
			}
		}()
	}
	// Writer churn: snapshot swaps on every subsystem, as fast as the
	// copy-on-write allows, to surface any reader/writer shared lock.
	for i := 0; i < 300; i++ {
		_ = zone.Update(func(b *ZoneBuilder) error {
			b.Remove("www.live.test.", dnswire.TypeA)
			return b.AddA("www.live.test.", 60, netip.AddrFrom4([4]byte{192, 0, 2, byte(1 + i%250)}))
		})
		stub.Route(fmt.Sprintf("churn%d.example.", i%8), netip.MustParseAddrPort("192.0.2.53:53"))
		acl.Deny(netip.MustParsePrefix(fmt.Sprintf("198.51.%d.0/24", i%250)))
	}
	stop.Store(true)
	wg.Wait()

	var sb strings.Builder
	if err := pprof.Lookup("mutex").WriteTo(&sb, 1); err != nil {
		t.Fatal(err)
	}
	profile := sb.String()
	for _, frame := range forbiddenMutexFrames {
		if strings.Contains(profile, frame) {
			t.Errorf("serve path acquired a lock: %s appears in the mutex profile", frame)
		}
	}
	if t.Failed() {
		t.Logf("mutex profile:\n%s", profile)
	}
}

// benchZone builds a ~100-name zone for the lookup benchmarks.
func benchZone(b *testing.B) *Zone {
	b.Helper()
	zone := NewZone("bench.test.")
	err := zone.Update(func(zb *ZoneBuilder) error {
		for i := 0; i < 100; i++ {
			if err := zb.AddA(fmt.Sprintf("host%d.bench.test.", i), 60,
				netip.AddrFrom4([4]byte{10, 0, byte(i / 250), byte(1 + i%250)})); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
	return zone
}

// BenchmarkZoneLookupParallel measures the post-refactor lock-free
// zone lookup: one atomic view load per query, shared-nothing across
// CPUs. Compare with BenchmarkZoneLookupParallelMutex (the
// pre-refactor RWMutex read path) at -cpu 1,4.
func BenchmarkZoneLookupParallel(b *testing.B) {
	zone := benchZone(b)
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			name := fmt.Sprintf("host%d.bench.test.", i%100)
			i++
			if res, _, _ := zone.Lookup(name, dnswire.TypeA); res != LookupSuccess {
				b.Fatalf("lookup %s: %v", name, res)
			}
		}
	})
}

// mutexZone reproduces the pre-refactor read path: the same record
// data behind a sync.RWMutex taken for every lookup.
type mutexZone struct {
	mu   sync.RWMutex
	view *ZoneView
}

func (m *mutexZone) Lookup(qname string, qtype dnswire.Type) (LookupResult, []dnswire.RR, []dnswire.RR) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.view.Lookup(qname, qtype)
}

// BenchmarkZoneLookupParallelMutex is the pre-refactor baseline:
// identical lookup work, but through the RWMutex every query used to
// take. The -cpu 4 gap against BenchmarkZoneLookupParallel is the
// reader cache-line contention the snapshot refactor removes.
func BenchmarkZoneLookupParallelMutex(b *testing.B) {
	mz := &mutexZone{view: benchZone(b).View()}
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			name := fmt.Sprintf("host%d.bench.test.", i%100)
			i++
			if res, _, _ := mz.Lookup(name, dnswire.TypeA); res != LookupSuccess {
				b.Fatalf("lookup %s: %v", name, res)
			}
		}
	})
}

// benchStubDomains routes 8 stub domains; queries alternate hit/miss.
var benchStubDomains = []string{
	"cdn-a.example.", "cdn-b.example.", "cdn-c.example.", "cdn-d.example.",
	"video.cdn-a.example.", "img.cdn-b.example.", "api.cdn-c.example.", "edge.cdn-d.example.",
}

// BenchmarkStubMatchParallel measures the post-refactor lock-free
// stub longest-match walk (one atomic table load per query). Compare
// with BenchmarkStubMatchParallelMutex at -cpu 1,4.
func BenchmarkStubMatchParallel(b *testing.B) {
	stub := NewStub(nil)
	up := netip.MustParseAddrPort("192.0.2.53:53")
	for _, d := range benchStubDomains {
		stub.Route(d, up)
	}
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			var qname string
			if i%2 == 0 {
				qname = "www." + benchStubDomains[i%len(benchStubDomains)]
			} else {
				qname = "www.unrouted.example."
			}
			i++
			stub.match(qname)
		}
	})
}

// mutexStub reproduces the pre-refactor stub read path: the same
// route map behind the RWMutex match() used to take per query.
type mutexStub struct {
	mu     sync.RWMutex
	routes map[string]*stubRoute
}

func (s *mutexStub) match(qname string) (*Forward, string) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var best *stubRoute
	bestDomain := ""
	for domain, rt := range s.routes {
		if dnswire.IsSubdomain(domain, qname) {
			if best == nil || rt.labels > best.labels {
				best, bestDomain = rt, domain
			}
		}
	}
	if best == nil {
		return nil, ""
	}
	return best.fwd, bestDomain
}

// BenchmarkStubMatchParallelMutex is the pre-refactor baseline for
// the stub route walk.
func BenchmarkStubMatchParallelMutex(b *testing.B) {
	ms := &mutexStub{routes: make(map[string]*stubRoute)}
	for _, d := range benchStubDomains {
		ms.routes[d] = &stubRoute{labels: dnswire.CountLabels(d), fwd: &Forward{}}
	}
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			var qname string
			if i%2 == 0 {
				qname = "www." + benchStubDomains[i%len(benchStubDomains)]
			} else {
				qname = "www.unrouted.example."
			}
			i++
			ms.match(qname)
		}
	})
}
