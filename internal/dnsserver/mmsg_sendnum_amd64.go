//go:build linux && amd64

package dnsserver

// sendmmsg's syscall number; package syscall predates the call and
// never got the constant, so it is pinned per-arch here.
const sendmmsgTrap uintptr = 307
