//go:build linux

package dnsserver

// soReusePort is SO_REUSEPORT (15 on every Linux architecture). The
// frozen syscall package predates the option (Linux 3.9), so the
// constant is spelled out here; x/sys/unix would provide it, but the
// server is stdlib-only.
const soReusePort = 0xf
