package dnsserver

// Tests for the resolution hot path hardening: sharded singleflight
// cache, rcode-aware upstream failover with health cooldowns, hedged
// queries, the token-bucket load shedder, and the Stub route-table
// race regression. Run with -race.

import (
	"context"
	"errors"
	"fmt"
	"net/netip"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/meccdn/meccdn/internal/dnsclient"
	"github.com/meccdn/meccdn/internal/dnswire"
	"github.com/meccdn/meccdn/internal/vclock"
)

// scriptTransport is a dnsclient.Transport whose behaviour is scripted
// per upstream address: an answer address, a failure rcode, a
// transport error, or a delay (honouring context cancellation).
type scriptTransport struct {
	mu     sync.Mutex
	calls  map[netip.AddrPort]int
	answer map[netip.AddrPort]netip.Addr
	rcode  map[netip.AddrPort]dnswire.Rcode
	fail   map[netip.AddrPort]error
	delay  map[netip.AddrPort]time.Duration
}

func newScriptTransport() *scriptTransport {
	return &scriptTransport{
		calls:  make(map[netip.AddrPort]int),
		answer: make(map[netip.AddrPort]netip.Addr),
		rcode:  make(map[netip.AddrPort]dnswire.Rcode),
		fail:   make(map[netip.AddrPort]error),
		delay:  make(map[netip.AddrPort]time.Duration),
	}
}

func (t *scriptTransport) callCount(server netip.AddrPort) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.calls[server]
}

func (t *scriptTransport) Exchange(ctx context.Context, server netip.AddrPort, query []byte, tcp bool) ([]byte, error) {
	t.mu.Lock()
	t.calls[server]++
	delay := t.delay[server]
	failErr := t.fail[server]
	rcode := t.rcode[server]
	addr, hasAnswer := t.answer[server]
	t.mu.Unlock()

	if delay > 0 {
		select {
		case <-time.After(delay):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	if failErr != nil {
		return nil, failErr
	}
	q := new(dnswire.Message)
	if err := q.Unpack(query); err != nil {
		return nil, err
	}
	m := new(dnswire.Message)
	if rcode != dnswire.RcodeSuccess {
		m.SetRcode(q, rcode)
	} else {
		m.SetReply(q)
		if hasAnswer {
			m.Answers = []dnswire.RR{&dnswire.A{
				Hdr:  dnswire.RRHeader{Name: q.Question().Name, Type: dnswire.TypeA, Class: dnswire.ClassINET, TTL: 30},
				Addr: addr,
			}}
		}
	}
	return m.Pack()
}

func scriptClient(t *scriptTransport) *dnsclient.Client {
	return &dnsclient.Client{Transport: t, Timeout: 2 * time.Second}
}

var (
	upA = netip.MustParseAddrPort("192.0.2.10:53")
	upB = netip.MustParseAddrPort("192.0.2.20:53")
)

// TestForwardServfailFailover is the two-upstream SERVFAIL→NOERROR
// case: the first upstream's SERVFAIL must not be relayed while a
// second upstream can still answer.
func TestForwardServfailFailover(t *testing.T) {
	tr := newScriptTransport()
	tr.rcode[upA] = dnswire.RcodeServerFailure
	tr.answer[upB] = netip.MustParseAddr("203.0.113.2")

	fwd := &Forward{Upstreams: []netip.AddrPort{upA, upB}, Client: scriptClient(tr), Clock: &vclock.Fixed{}}
	resp := Resolve(context.Background(), Chain(fwd), queryFor("fo.test."))
	if resp.Rcode != dnswire.RcodeSuccess || len(resp.Answers) != 1 {
		t.Fatalf("rcode=%v answers=%d, want NOERROR from second upstream", resp.Rcode, len(resp.Answers))
	}
	if got := resp.Answers[0].(*dnswire.A).Addr.String(); got != "203.0.113.2" {
		t.Errorf("answer from %s, want 203.0.113.2", got)
	}
	if tr.callCount(upA) != 1 || tr.callCount(upB) != 1 {
		t.Errorf("calls = %d/%d, want 1/1", tr.callCount(upA), tr.callCount(upB))
	}
	if s := fwd.Stats(); s.Failovers != 1 {
		t.Errorf("failovers = %d, want 1", s.Failovers)
	}
}

// TestForwardRefusedFailover: REFUSED triggers failover too.
func TestForwardRefusedFailover(t *testing.T) {
	tr := newScriptTransport()
	tr.rcode[upA] = dnswire.RcodeRefused
	tr.answer[upB] = netip.MustParseAddr("203.0.113.3")

	fwd := &Forward{Upstreams: []netip.AddrPort{upA, upB}, Client: scriptClient(tr), Clock: &vclock.Fixed{}}
	resp := Resolve(context.Background(), Chain(fwd), queryFor("ref.test."))
	if resp.Rcode != dnswire.RcodeSuccess {
		t.Fatalf("rcode = %v", resp.Rcode)
	}
}

// TestForwardAllFailRelaysLastVerdict: when every upstream answers
// SERVFAIL, the client sees the upstream's SERVFAIL (not a synthesized
// one from a forwarding error).
func TestForwardAllFailRelaysLastVerdict(t *testing.T) {
	tr := newScriptTransport()
	tr.rcode[upA] = dnswire.RcodeServerFailure
	tr.rcode[upB] = dnswire.RcodeServerFailure

	fwd := &Forward{Upstreams: []netip.AddrPort{upA, upB}, Client: scriptClient(tr), Clock: &vclock.Fixed{}}
	resp := Resolve(context.Background(), Chain(fwd), queryFor("down.test."))
	if resp.Rcode != dnswire.RcodeServerFailure {
		t.Fatalf("rcode = %v", resp.Rcode)
	}
	if tr.callCount(upA) != 1 || tr.callCount(upB) != 1 {
		t.Errorf("calls = %d/%d, want both tried", tr.callCount(upA), tr.callCount(upB))
	}
}

// TestForwardCooldownSkipsDeadUpstream: after FailureThreshold
// consecutive failures the dead upstream sits out its cooldown window
// and is retried afterwards.
func TestForwardCooldownSkipsDeadUpstream(t *testing.T) {
	tr := newScriptTransport()
	tr.fail[upA] = errors.New("connection refused")
	tr.answer[upB] = netip.MustParseAddr("203.0.113.4")

	clock := &vclock.Fixed{}
	fwd := &Forward{
		Upstreams:        []netip.AddrPort{upA, upB},
		Client:           scriptClient(tr),
		Clock:            clock,
		FailureThreshold: 2,
		Cooldown:         10 * time.Second,
	}
	h := Chain(fwd)
	// Two queries fail over from A, tripping its cooldown.
	for i := 0; i < 2; i++ {
		if resp := Resolve(context.Background(), h, queryFor("cd.test.")); resp.Rcode != dnswire.RcodeSuccess {
			t.Fatalf("query %d rcode = %v", i, resp.Rcode)
		}
	}
	if tr.callCount(upA) != 2 {
		t.Fatalf("upstream A calls = %d, want 2", tr.callCount(upA))
	}
	// In cooldown: A must be skipped entirely.
	Resolve(context.Background(), h, queryFor("cd.test."))
	if tr.callCount(upA) != 2 {
		t.Errorf("dead upstream queried during cooldown (calls=%d)", tr.callCount(upA))
	}
	if s := fwd.Stats(); s.Skipped == 0 {
		t.Error("no skip recorded")
	}
	// Past the cooldown: A is retried again.
	clock.Advance(11 * time.Second)
	Resolve(context.Background(), h, queryFor("cd.test."))
	if tr.callCount(upA) != 3 {
		t.Errorf("upstream A not retried after cooldown (calls=%d)", tr.callCount(upA))
	}
}

// TestForwardHedgeWins: a slow primary is overtaken by the hedged
// second query after HedgeDelay.
func TestForwardHedgeWins(t *testing.T) {
	tr := newScriptTransport()
	tr.answer[upA] = netip.MustParseAddr("203.0.113.1")
	tr.delay[upA] = 500 * time.Millisecond
	tr.answer[upB] = netip.MustParseAddr("203.0.113.2")

	fwd := &Forward{
		Upstreams:  []netip.AddrPort{upA, upB},
		Client:     scriptClient(tr),
		Clock:      &vclock.Fixed{},
		HedgeDelay: 5 * time.Millisecond,
	}
	start := time.Now()
	resp := Resolve(context.Background(), Chain(fwd), queryFor("hedge.test."))
	if got := resp.Answers[0].(*dnswire.A).Addr.String(); got != "203.0.113.2" {
		t.Errorf("answer from %s, want the hedge's 203.0.113.2", got)
	}
	if elapsed := time.Since(start); elapsed > 400*time.Millisecond {
		t.Errorf("hedged query took %v, not faster than the slow primary", elapsed)
	}
	s := fwd.Stats()
	if s.Hedged != 1 || s.HedgeWins != 1 {
		t.Errorf("hedged=%d hedgeWins=%d, want 1/1", s.Hedged, s.HedgeWins)
	}
}

// TestForwardHedgePrimaryWins: a fast primary answers before the
// hedge timer, so no second query is sent.
func TestForwardHedgePrimaryWins(t *testing.T) {
	tr := newScriptTransport()
	tr.answer[upA] = netip.MustParseAddr("203.0.113.1")
	tr.answer[upB] = netip.MustParseAddr("203.0.113.2")

	fwd := &Forward{
		Upstreams:  []netip.AddrPort{upA, upB},
		Client:     scriptClient(tr),
		Clock:      &vclock.Fixed{},
		HedgeDelay: time.Second,
	}
	resp := Resolve(context.Background(), Chain(fwd), queryFor("fast.test."))
	if got := resp.Answers[0].(*dnswire.A).Addr.String(); got != "203.0.113.1" {
		t.Errorf("answer from %s, want the primary's 203.0.113.1", got)
	}
	s := fwd.Stats()
	if s.Hedged != 0 {
		t.Errorf("hedge launched despite fast primary (hedged=%d)", s.Hedged)
	}
	if tr.callCount(upB) != 0 {
		t.Errorf("secondary queried %d times, want 0", tr.callCount(upB))
	}
}

// TestForwardHedgeFailedPrimaryFailsOverEarly: when the primary fails
// before the hedge delay elapses, the hedge is launched immediately.
func TestForwardHedgeFailedPrimaryFailsOverEarly(t *testing.T) {
	tr := newScriptTransport()
	tr.fail[upA] = errors.New("unreachable")
	tr.answer[upB] = netip.MustParseAddr("203.0.113.2")

	fwd := &Forward{
		Upstreams:  []netip.AddrPort{upA, upB},
		Client:     scriptClient(tr),
		Clock:      &vclock.Fixed{},
		HedgeDelay: 10 * time.Second, // must not wait this long
	}
	start := time.Now()
	resp := Resolve(context.Background(), Chain(fwd), queryFor("early.test."))
	if resp.Rcode != dnswire.RcodeSuccess {
		t.Fatalf("rcode = %v", resp.Rcode)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("early failover took %v, appears to have waited out the hedge delay", elapsed)
	}
}

// TestStubRouteRace is the regression test for the unguarded
// Stub.routes map: live Route/Unroute must not race query serving.
// Run with -race; the pre-fix Stub crashes with a concurrent map
// read/write fault here.
func TestStubRouteRace(t *testing.T) {
	tr := newScriptTransport()
	tr.answer[upA] = netip.MustParseAddr("203.0.113.9")
	stub := NewStub(scriptClient(tr))
	stub.Clock = &vclock.Fixed{}
	stub.Route("race.test.", upA)
	other := &countingPlugin{h: answerHandler("192.0.2.1")}
	h := Chain(stub, other)

	done := make(chan struct{})
	var mutator sync.WaitGroup
	mutator.Add(1)
	go func() {
		defer mutator.Done()
		for i := 0; ; i++ {
			select {
			case <-done:
				return
			default:
			}
			if i%2 == 0 {
				stub.Route("race.test.", upA)
				stub.Route(fmt.Sprintf("tenant-%d.race.test.", i%8), upA)
			} else {
				stub.Unroute(fmt.Sprintf("tenant-%d.race.test.", (i-1)%8))
			}
		}
	}()
	var resolvers sync.WaitGroup
	for w := 0; w < 4; w++ {
		resolvers.Add(1)
		go func() {
			defer resolvers.Done()
			for i := 0; i < 500; i++ {
				Resolve(context.Background(), h, queryFor(fmt.Sprintf("q%d.race.test.", i%16)))
			}
		}()
	}
	resolvers.Wait()
	close(done)
	mutator.Wait()
}

// TestSingleflightCoalescing: N concurrent misses for one key perform
// exactly one upstream exchange; the rest share the leader's answer.
func TestSingleflightCoalescing(t *testing.T) {
	const waiters = 15 // plus 1 leader

	var backendCalls atomic.Int64
	entered := make(chan struct{}) // closed when the leader is in the backend
	release := make(chan struct{}) // closed to let the backend answer
	backend := HandlerFunc(func(ctx context.Context, w ResponseWriter, r *Request) (dnswire.Rcode, error) {
		if backendCalls.Add(1) == 1 {
			close(entered)
		}
		<-release
		return answerHandler("192.0.2.99").ServeDNS(ctx, w, r)
	})

	cache := NewCache(&vclock.Fixed{})
	h := Chain(cache, pluginize(backend))

	results := make(chan *dnswire.Message, waiters+1)
	var wg sync.WaitGroup
	resolve := func() {
		defer wg.Done()
		results <- Resolve(context.Background(), h, queryFor("flight.test."))
	}
	wg.Add(1)
	go resolve()
	<-entered // leader is blocked inside the backend

	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go resolve()
	}
	// Wait until every waiter has attached to the leader's flight.
	deadline := time.Now().Add(5 * time.Second)
	for cache.Stats().Coalesced < waiters {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d waiters coalesced", cache.Stats().Coalesced, waiters)
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()
	close(results)

	if n := backendCalls.Load(); n != 1 {
		t.Fatalf("backend exchanges = %d, want exactly 1 for %d concurrent misses", n, waiters+1)
	}
	got := 0
	for resp := range results {
		got++
		if len(resp.Answers) != 1 || resp.Answers[0].(*dnswire.A).Addr.String() != "192.0.2.99" {
			t.Fatalf("bad shared answer: %v (rcode %v)", resp.Answers, resp.Rcode)
		}
	}
	if got != waiters+1 {
		t.Fatalf("responses = %d, want %d", got, waiters+1)
	}
	if s := cache.Stats(); s.Coalesced != waiters {
		t.Errorf("coalesced = %d, want %d", s.Coalesced, waiters)
	}
}

// TestSingleflightLeaderFailurePropagates: waiters see the leader's
// error outcome rather than hanging or retrying upstream.
func TestSingleflightLeaderFailurePropagates(t *testing.T) {
	var backendCalls atomic.Int64
	entered := make(chan struct{})
	release := make(chan struct{})
	backend := HandlerFunc(func(ctx context.Context, w ResponseWriter, r *Request) (dnswire.Rcode, error) {
		if backendCalls.Add(1) == 1 {
			close(entered)
		}
		<-release
		return dnswire.RcodeServerFailure, errors.New("upstream exploded")
	})
	cache := NewCache(&vclock.Fixed{})
	h := Chain(cache, pluginize(backend))

	var wg sync.WaitGroup
	results := make(chan *dnswire.Message, 2)
	wg.Add(1)
	go func() { defer wg.Done(); results <- Resolve(context.Background(), h, queryFor("boom.test.")) }()
	<-entered
	wg.Add(1)
	go func() { defer wg.Done(); results <- Resolve(context.Background(), h, queryFor("boom.test.")) }()
	deadline := time.Now().Add(5 * time.Second)
	for cache.Stats().Coalesced < 1 {
		if time.Now().After(deadline) {
			t.Fatal("waiter never coalesced")
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()
	close(results)
	for resp := range results {
		if resp.Rcode != dnswire.RcodeServerFailure {
			t.Errorf("rcode = %v, want SERVFAIL", resp.Rcode)
		}
	}
	if n := backendCalls.Load(); n != 1 {
		t.Errorf("backend calls = %d, want 1", n)
	}
}

// TestCacheConcurrentLoad hammers the sharded cache with parallel
// hits, misses, and stores under -race and checks counter coherence.
func TestCacheConcurrentLoad(t *testing.T) {
	cache := NewCache(&vclock.Fixed{})
	cache.MaxEntries = 8192
	var backendCalls atomic.Int64
	backend := HandlerFunc(func(ctx context.Context, w ResponseWriter, r *Request) (dnswire.Rcode, error) {
		backendCalls.Add(1)
		return answerHandler("192.0.2.50").ServeDNS(ctx, w, r)
	})
	h := Chain(cache, pluginize(backend))

	workers := runtime.GOMAXPROCS(0) * 2
	if workers < 4 {
		workers = 4
	}
	const perWorker = 400
	var wg sync.WaitGroup
	for wkr := 0; wkr < workers; wkr++ {
		wg.Add(1)
		go func(wkr int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				// 64 hot names shared across workers: mostly hits with
				// racing misses at the start.
				name := fmt.Sprintf("host-%d.load.test.", (wkr*perWorker+i)%64)
				resp := Resolve(context.Background(), h, queryFor(name))
				if resp.Rcode != dnswire.RcodeSuccess {
					t.Errorf("rcode = %v", resp.Rcode)
					return
				}
			}
		}(wkr)
	}
	wg.Wait()

	total := uint64(workers * perWorker)
	s := cache.Stats()
	if s.Hits+s.Misses+s.Expired != total {
		t.Errorf("hits(%d)+misses(%d)+expired(%d) != lookups(%d)", s.Hits, s.Misses, s.Expired, total)
	}
	if uint64(backendCalls.Load())+s.Coalesced != s.Misses {
		t.Errorf("backend(%d)+coalesced(%d) != misses(%d)", backendCalls.Load(), s.Coalesced, s.Misses)
	}
	if s.Entries != 64 {
		t.Errorf("entries = %d, want 64", s.Entries)
	}
}

// TestCacheExpiredNotDoubleCounted: an expired entry is one Expired
// observation, not an extra Miss on top.
func TestCacheExpiredNotDoubleCounted(t *testing.T) {
	clock := &vclock.Fixed{}
	cache := NewCache(clock)
	backend := &countingPlugin{h: answerHandler("192.0.2.9")}
	h := Chain(cache, backend)

	Resolve(context.Background(), h, queryFor("ttl.test.")) // miss, stored (TTL 30s)
	clock.Advance(31 * time.Second)
	Resolve(context.Background(), h, queryFor("ttl.test.")) // expired
	s := cache.Stats()
	if s.Misses != 1 || s.Expired != 1 {
		t.Errorf("misses=%d expired=%d, want 1/1", s.Misses, s.Expired)
	}
	if s.Hits != 0 {
		t.Errorf("hits = %d", s.Hits)
	}
	if backend.hits != 2 {
		t.Errorf("backend hits = %d, want 2", backend.hits)
	}
}

// TestCacheShardAutoSizing: tiny caches collapse to one shard so LRU
// stays exact; big caches keep the configured shard count.
func TestCacheShardAutoSizing(t *testing.T) {
	small := NewCache(&vclock.Fixed{})
	small.MaxEntries = 4
	if got := small.Stats().Shards; got != 1 {
		t.Errorf("small cache shards = %d, want 1", got)
	}
	big := NewCache(&vclock.Fixed{})
	if got := big.Stats().Shards; got != 16 {
		t.Errorf("default cache shards = %d, want 16", got)
	}
	custom := NewCache(&vclock.Fixed{})
	custom.MaxEntries = 1 << 16
	custom.Shards = 64
	if got := custom.Stats().Shards; got != 64 {
		t.Errorf("custom shards = %d, want 64", got)
	}
}

// TestClientDoLeavesQueryUntouched: Do must operate on its own copy —
// no ID assignment, no EDNS attachment visible to the caller.
func TestClientDoLeavesQueryUntouched(t *testing.T) {
	tr := newScriptTransport()
	tr.answer[upA] = netip.MustParseAddr("203.0.113.7")
	c := &dnsclient.Client{Transport: tr, UDPSize: 1232, Timeout: time.Second}

	q := new(dnswire.Message)
	q.SetQuestion("immutable.test.", dnswire.TypeA)
	if _, err := c.Do(context.Background(), upA, q); err != nil {
		t.Fatal(err)
	}
	if q.ID != 0 {
		t.Errorf("caller's query ID mutated to %d", q.ID)
	}
	if _, ok := q.OPT(); ok {
		t.Error("caller's query grew an OPT record")
	}
	if len(q.Answers) != 0 {
		t.Error("caller's query grew answers")
	}
}

// TestLoadShedBurstStraddlingWindow: the token bucket must not admit
// a double burst straddling a window boundary the way the old
// fixed-window reset did.
func TestLoadShedBurstStraddlingWindow(t *testing.T) {
	clock := &vclock.Fixed{}
	ls := &LoadShed{Clock: clock, Window: time.Second, MaxQueries: 10}
	backend := &countingPlugin{h: answerHandler("192.0.2.1")}
	h := Chain(ls, backend)

	// Burst just before the old window boundary...
	clock.Advance(990 * time.Millisecond)
	for i := 0; i < 10; i++ {
		Resolve(context.Background(), h, queryFor("b1.test."))
	}
	// ...and again just after it. A fixed window admits all 20;
	// the bucket has only refilled ~0.2 tokens.
	clock.Advance(20 * time.Millisecond)
	admitted := 0
	for i := 0; i < 10; i++ {
		if resp := Resolve(context.Background(), h, queryFor("b2.test.")); resp.Rcode != dnswire.RcodeRefused {
			admitted++
		}
	}
	if admitted > 1 {
		t.Errorf("second burst admitted %d queries across the boundary, want ≤1", admitted)
	}
	if backend.hits > 11 {
		t.Errorf("backend saw %d queries from a 2x straddled burst", backend.hits)
	}
}

// TestLoadShedNilClockDefaults: a zero-value clock field must not
// panic (live servers default to the wall clock).
func TestLoadShedNilClockDefaults(t *testing.T) {
	ls := &LoadShed{MaxQueries: 5}
	backend := &countingPlugin{h: answerHandler("192.0.2.1")}
	h := Chain(ls, backend)
	for i := 0; i < 3; i++ {
		if resp := Resolve(context.Background(), h, queryFor("nc.test.")); resp.Rcode != dnswire.RcodeSuccess {
			t.Fatalf("rcode = %v", resp.Rcode)
		}
	}
}

// TestMetricsLatencyHistogram: the ServeDNS duration histogram tracks
// the handler's virtual-time cost.
func TestMetricsLatencyHistogram(t *testing.T) {
	clock := &vclock.Fixed{}
	m := NewMetrics()
	m.Clock = clock
	backend := HandlerFunc(func(ctx context.Context, w ResponseWriter, r *Request) (dnswire.Rcode, error) {
		clock.Advance(5 * time.Millisecond) // simulated resolution work
		return answerHandler("192.0.2.1").ServeDNS(ctx, w, r)
	})
	h := Chain(m, pluginize(backend))
	for i := 0; i < 20; i++ {
		Resolve(context.Background(), h, queryFor("lat.test."))
	}
	lat := m.Latency()
	if lat.Len() != 20 {
		t.Fatalf("samples = %d, want 20", lat.Len())
	}
	if p99 := lat.Percentile(99); p99 != 5*time.Millisecond {
		t.Errorf("p99 = %v, want 5ms", p99)
	}
	if bar := m.LatencyBar(); bar.Mean != 5*time.Millisecond {
		t.Errorf("trimmed mean = %v, want 5ms", bar.Mean)
	}
}

// TestMetricsLatencyRingBounded: the ring keeps only the most recent
// MaxLatencySamples observations.
func TestMetricsLatencyRingBounded(t *testing.T) {
	clock := &vclock.Fixed{}
	m := NewMetrics()
	m.Clock = clock
	m.MaxLatencySamples = 8
	backend := HandlerFunc(func(ctx context.Context, w ResponseWriter, r *Request) (dnswire.Rcode, error) {
		clock.Advance(time.Millisecond)
		return dnswire.RcodeSuccess, nil
	})
	h := Chain(m, pluginize(backend))
	for i := 0; i < 100; i++ {
		Resolve(context.Background(), h, queryFor("ring.test."))
	}
	if got := m.Latency().Len(); got != 8 {
		t.Errorf("retained samples = %d, want 8", got)
	}
	if m.Total() != 100 {
		t.Errorf("total = %d, want 100", m.Total())
	}
}
