package dnsserver

import (
	"context"
	"fmt"
	"net/netip"
	"sort"

	"github.com/meccdn/meccdn/internal/dnswire"
)

// AXFR serves zone transfers (RFC 5936) for its registered zones, the
// replication primitive a multi-site MEC deployment uses to slave the
// public MEC-CDN namespace between edge sites or to the provider's
// L-DNS. Transfers are restricted to TCP (per the RFC) and to the
// allowed source prefixes.
//
// Small-zone simplification: the full record set is returned in one
// DNS message (the RFC permits single-message transfers; the MEC
// public namespace is small by construction). Oversized zones fail
// packing rather than silently truncating.
type AXFR struct {
	zones *ZonePlugin
	allow []netip.Prefix
}

// NewAXFR serves transfers of the zones registered with zp.
func NewAXFR(zp *ZonePlugin, allowFrom ...netip.Prefix) *AXFR {
	return &AXFR{zones: zp, allow: allowFrom}
}

// Name implements Plugin.
func (a *AXFR) Name() string { return "axfr" }

// ServeDNS implements Plugin. Non-AXFR queries fall through.
func (a *AXFR) ServeDNS(ctx context.Context, w ResponseWriter, r *Request, next Handler) (dnswire.Rcode, error) {
	if r.Type() != dnswire.TypeAXFR {
		return next.ServeDNS(ctx, w, r)
	}
	refuse := func() (dnswire.Rcode, error) {
		m := new(dnswire.Message)
		m.SetRcode(r.Msg, dnswire.RcodeRefused)
		if err := w.WriteMsg(m); err != nil {
			return dnswire.RcodeServerFailure, err
		}
		return dnswire.RcodeRefused, nil
	}
	if r.Transport == "udp" {
		return refuse() // transfers require a stream transport
	}
	if len(a.allow) > 0 {
		ok := false
		for _, p := range a.allow {
			if p.Contains(r.Client.Addr()) {
				ok = true
				break
			}
		}
		if !ok {
			return refuse()
		}
	}
	zone := a.zones.Zone(r.Name())
	if zone == nil {
		return refuse()
	}
	m := new(dnswire.Message)
	m.SetReply(r.Msg)
	m.Authoritative = true
	m.Answers = TransferRecords(zone)
	if err := w.WriteMsg(m); err != nil {
		return dnswire.RcodeServerFailure, err
	}
	return dnswire.RcodeSuccess, nil
}

// TransferRecords returns the zone's full record set in AXFR order:
// the SOA first and repeated last, all other records between.
func TransferRecords(z *Zone) []dnswire.RR {
	soa := z.SOA()
	out := []dnswire.RR{soa.Clone()}
	for _, name := range z.Names() {
		byType := z.rrs[name]
		types := make([]int, 0, len(byType))
		for t := range byType {
			types = append(types, int(t))
		}
		sort.Ints(types)
		for _, t := range types {
			if dnswire.Type(t) == dnswire.TypeSOA {
				continue
			}
			for _, rr := range byType[dnswire.Type(t)] {
				out = append(out, rr.Clone())
			}
		}
	}
	return append(out, soa.Clone())
}

// ZoneFromTransfer reconstructs a zone from AXFR answer records. The
// first record must be the SOA; the trailing SOA is dropped.
func ZoneFromTransfer(rrs []dnswire.RR) (*Zone, error) {
	if len(rrs) < 2 {
		return nil, fmt.Errorf("dnsserver: transfer has %d records, need at least 2", len(rrs))
	}
	soa, ok := rrs[0].(*dnswire.SOA)
	if !ok {
		return nil, fmt.Errorf("dnsserver: transfer does not start with SOA (got %s)", rrs[0].Header().Type)
	}
	last, ok := rrs[len(rrs)-1].(*dnswire.SOA)
	if !ok || last.Serial != soa.Serial {
		return nil, fmt.Errorf("dnsserver: transfer does not end with the starting SOA")
	}
	z := NewZone(soa.Hdr.Name)
	z.SetSOA(soa.Clone().(*dnswire.SOA))
	for _, rr := range rrs[1 : len(rrs)-1] {
		if err := z.Add(rr.Clone()); err != nil {
			return nil, fmt.Errorf("dnsserver: transfer record %s: %w", rr.Header().Name, err)
		}
	}
	return z, nil
}
