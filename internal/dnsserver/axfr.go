package dnsserver

import (
	"context"
	"fmt"
	"net/netip"
	"sync"

	"github.com/meccdn/meccdn/internal/dnswire"
	"github.com/meccdn/meccdn/internal/telemetry"
)

// AXFR serves zone transfers for its registered zones, the replication
// primitive a multi-site MEC deployment uses to slave the public
// MEC-CDN namespace between edge sites or to the provider's L-DNS. It
// answers both full transfers (AXFR, RFC 5936) and incremental ones
// (IXFR, RFC 1995): a secondary presents the serial it has, and when
// the zone's delta journal still covers that serial, only the
// revisions between the two serials go over the wire instead of the
// whole record set. Transfers are restricted to TCP and to the allowed
// source prefixes.
//
// Small-zone simplification: the response is returned in one DNS
// message (the RFCs permit single-message transfers; the MEC public
// namespace is small by construction). Oversized zones fail packing
// rather than silently truncating.
type AXFR struct {
	zones *ZonePlugin
	allow []netip.Prefix

	ctrOnce sync.Once
	reqs    *telemetry.CounterVec
	deltaRR *telemetry.Counter
}

// NewAXFR serves transfers of the zones registered with zp.
func NewAXFR(zp *ZonePlugin, allowFrom ...netip.Prefix) *AXFR {
	return &AXFR{zones: zp, allow: allowFrom}
}

// counters lazily builds the transfer instruments.
func (a *AXFR) counters() *telemetry.CounterVec {
	a.ctrOnce.Do(func() {
		a.reqs = telemetry.NewCounterVec("meccdn_ixfr_requests_total",
			"Zone-transfer requests by outcome: incremental (IXFR served from the delta journal), full (AXFR, or IXFR outside journal coverage), uptodate (secondary already current), refused.", "result")
		a.deltaRR = telemetry.NewCounter("meccdn_ixfr_delta_records_total",
			"Records shipped inside incremental (IXFR) transfer responses, SOA markers included.")
	})
	return a.reqs
}

// Collectors returns the transfer plugin's metric families for
// registration on a telemetry.Registry.
func (a *AXFR) Collectors() []telemetry.Collector {
	a.counters()
	return []telemetry.Collector{a.reqs, a.deltaRR}
}

// Name implements Plugin.
func (a *AXFR) Name() string { return "axfr" }

// ServeDNS implements Plugin. Non-transfer queries fall through.
func (a *AXFR) ServeDNS(ctx context.Context, w ResponseWriter, r *Request, next Handler) (dnswire.Rcode, error) {
	qtype := r.Type()
	if qtype != dnswire.TypeAXFR && qtype != dnswire.TypeIXFR {
		return next.ServeDNS(ctx, w, r)
	}
	reqs := a.counters()
	refuse := func() (dnswire.Rcode, error) {
		reqs.Inc("refused")
		m := new(dnswire.Message)
		m.SetRcode(r.Msg, dnswire.RcodeRefused)
		if err := w.WriteMsg(m); err != nil {
			return dnswire.RcodeServerFailure, err
		}
		return dnswire.RcodeRefused, nil
	}
	if r.Transport == "udp" {
		return refuse() // transfers require a stream transport
	}
	if len(a.allow) > 0 {
		ok := false
		for _, p := range a.allow {
			if p.Contains(r.Client.Addr()) {
				ok = true
				break
			}
		}
		if !ok {
			return refuse()
		}
	}
	zone := a.zones.Zone(r.Name())
	if zone == nil {
		return refuse()
	}
	view := zone.View()

	var answers []dnswire.RR
	switch {
	case qtype == dnswire.TypeIXFR:
		serial, haveSerial := ixfrRequestSerial(r.Msg)
		switch {
		case haveSerial && serial == view.Serial():
			// Already current: a lone SOA tells the secondary so.
			answers = []dnswire.RR{view.SOA().Clone()}
			reqs.Inc("uptodate")
		case haveSerial:
			if deltas, ok := view.DeltasSince(serial); ok {
				answers = ixfrRecords(view, deltas)
				a.deltaRR.Add(uint64(len(answers)))
				reqs.Inc("incremental")
				break
			}
			fallthrough
		default:
			// No usable serial, or the journal no longer reaches it:
			// RFC 1995 §4 says answer with a full transfer.
			answers = transferRecords(view)
			reqs.Inc("full")
		}
	default:
		answers = transferRecords(view)
		reqs.Inc("full")
	}

	m := new(dnswire.Message)
	m.SetReply(r.Msg)
	m.Authoritative = true
	m.Answers = answers
	if err := w.WriteMsg(m); err != nil {
		return dnswire.RcodeServerFailure, err
	}
	return dnswire.RcodeSuccess, nil
}

// ixfrRequestSerial extracts the secondary's current serial from the
// SOA record an IXFR query carries in its authority section.
func ixfrRequestSerial(q *dnswire.Message) (uint32, bool) {
	for _, rr := range q.Authorities {
		if soa, ok := rr.(*dnswire.SOA); ok {
			return soa.Serial, true
		}
	}
	return 0, false
}

// DeltasSince returns the journal suffix taking serial to the view's
// current serial, or ok=false when the journal no longer reaches that
// far back (the secondary must fall back to a full transfer). An empty
// suffix with ok=true means serial is already current.
func (v *ZoneView) DeltasSince(serial uint32) ([]ZoneDelta, bool) {
	if serial == v.Serial() {
		return nil, true
	}
	for i := range v.deltas {
		if v.deltas[i].FromSOA.Serial == serial {
			return v.deltas[i:], true
		}
	}
	return nil, false
}

// ixfrRecords builds the RFC 1995 incremental response body: the
// current SOA, then for each revision the old SOA followed by the
// deleted records and the new SOA followed by the added records, and
// the current SOA again to close.
func ixfrRecords(v *ZoneView, deltas []ZoneDelta) []dnswire.RR {
	out := []dnswire.RR{v.SOA().Clone()}
	for _, d := range deltas {
		out = append(out, d.FromSOA.Clone())
		for _, rr := range d.Del {
			out = append(out, rr.Clone())
		}
		out = append(out, d.ToSOA.Clone())
		for _, rr := range d.Add {
			out = append(out, rr.Clone())
		}
	}
	return append(out, v.SOA().Clone())
}

// TransferRecords returns the zone's full record set in AXFR order:
// the SOA first and repeated last, all other records between.
func TransferRecords(z *Zone) []dnswire.RR {
	return transferRecords(z.View())
}

func transferRecords(v *ZoneView) []dnswire.RR {
	soa := v.SOA()
	out := []dnswire.RR{soa.Clone()}
	eachRRSorted(v, func(rr dnswire.RR) {
		out = append(out, rr.Clone())
	})
	return append(out, soa.Clone())
}

// ZoneFromTransfer reconstructs a zone from AXFR answer records. The
// first record must be the SOA; the trailing SOA is dropped.
func ZoneFromTransfer(rrs []dnswire.RR) (*Zone, error) {
	if len(rrs) < 2 {
		return nil, fmt.Errorf("dnsserver: transfer has %d records, need at least 2", len(rrs))
	}
	soa, ok := rrs[0].(*dnswire.SOA)
	if !ok {
		return nil, fmt.Errorf("dnsserver: transfer does not start with SOA (got %s)", rrs[0].Header().Type)
	}
	last, ok := rrs[len(rrs)-1].(*dnswire.SOA)
	if !ok || last.Serial != soa.Serial {
		return nil, fmt.Errorf("dnsserver: transfer does not end with the starting SOA")
	}
	z := NewZone(soa.Hdr.Name)
	err := z.Update(func(b *ZoneBuilder) error {
		// SOA first and explicit, so the transferred serial is adopted
		// verbatim instead of being auto-bumped per record.
		b.SetSOA(soa.Clone().(*dnswire.SOA))
		for _, rr := range rrs[1 : len(rrs)-1] {
			if err := b.Add(rr.Clone()); err != nil {
				return fmt.Errorf("dnsserver: transfer record %s: %w", rr.Header().Name, err)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return z, nil
}

// ApplyTransfer applies a transfer response (the answer records of an
// AXFR or IXFR exchange) to the secondary zone z. It classifies the
// response the way RFC 1995 prescribes:
//
//   - a single SOA means the secondary is already current (no-op);
//   - a leading SOA immediately followed by another SOA is an
//     incremental response: each (old-SOA, deletions, new-SOA,
//     additions) sequence is applied in order, verifying serial
//     continuity;
//   - anything else is a full transfer and replaces the zone wholesale.
//
// It returns whether the response was incremental.
func ApplyTransfer(z *Zone, rrs []dnswire.RR) (incremental bool, err error) {
	if len(rrs) == 0 {
		return false, fmt.Errorf("dnsserver: empty transfer")
	}
	first, ok := rrs[0].(*dnswire.SOA)
	if !ok {
		return false, fmt.Errorf("dnsserver: transfer does not start with SOA (got %s)", rrs[0].Header().Type)
	}
	if len(rrs) == 1 {
		if first.Serial != z.Serial() {
			return false, fmt.Errorf("dnsserver: single-SOA transfer with serial %d, have %d", first.Serial, z.Serial())
		}
		return true, nil // up to date
	}
	if _, second := rrs[1].(*dnswire.SOA); !second {
		// Full transfer.
		full, err := ZoneFromTransfer(rrs)
		if err != nil {
			return false, err
		}
		z.ReplaceView(full.View())
		return false, nil
	}
	// Incremental: walk the (from-SOA, del..., to-SOA, add...) chains.
	body := rrs[1 : len(rrs)-1]
	last, ok := rrs[len(rrs)-1].(*dnswire.SOA)
	if !ok || last.Serial != first.Serial {
		return false, fmt.Errorf("dnsserver: incremental transfer does not close with the current SOA")
	}
	err = z.Update(func(b *ZoneBuilder) error {
		i := 0
		expect := z.Serial()
		for i < len(body) {
			from, ok := body[i].(*dnswire.SOA)
			if !ok {
				return fmt.Errorf("dnsserver: incremental transfer: expected SOA at record %d", i+1)
			}
			if from.Serial != expect {
				return fmt.Errorf("dnsserver: incremental transfer: revision starts at serial %d, have %d", from.Serial, expect)
			}
			i++
			for i < len(body) {
				if _, isSOA := body[i].(*dnswire.SOA); isSOA {
					break
				}
				if !b.RemoveRR(body[i]) {
					return fmt.Errorf("dnsserver: incremental transfer: cannot delete absent record %s", body[i].Header().Name)
				}
				i++
			}
			if i >= len(body) {
				return fmt.Errorf("dnsserver: incremental transfer: revision missing its new SOA")
			}
			to := body[i].(*dnswire.SOA)
			i++
			for i < len(body) {
				if _, isSOA := body[i].(*dnswire.SOA); isSOA {
					break
				}
				if err := b.Add(body[i].Clone()); err != nil {
					return err
				}
				i++
			}
			b.SetSOA(to.Clone().(*dnswire.SOA))
			expect = to.Serial
		}
		if expect != first.Serial {
			return fmt.Errorf("dnsserver: incremental transfer ends at serial %d, want %d", expect, first.Serial)
		}
		return nil
	})
	if err != nil {
		return true, err
	}
	return true, nil
}
