package dnsserver

import (
	"context"
	"net/netip"
	"testing"
	"time"

	"github.com/meccdn/meccdn/internal/dnsclient"
	"github.com/meccdn/meccdn/internal/dnswire"
)

func TestAXFROverRealTCP(t *testing.T) {
	zone := testZone(t)
	zp := NewZonePlugin(zone)
	addr := startTestServer(t, Chain(NewAXFR(zp), zp))

	c := &dnsclient.Client{Transport: &dnsclient.NetTransport{}, Timeout: 2 * time.Second}
	rrs, err := c.Transfer(context.Background(), addr, "mycdn.ciab.test.")
	if err != nil {
		t.Fatal(err)
	}
	if len(rrs) < 4 {
		t.Fatalf("transferred %d records", len(rrs))
	}
	if rrs[0].Header().Type != dnswire.TypeSOA || rrs[len(rrs)-1].Header().Type != dnswire.TypeSOA {
		t.Error("transfer not SOA-delimited")
	}

	// Rebuild a secondary zone from the transfer and verify it
	// answers identically.
	secondary, err := ZoneFromTransfer(rrs)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"edge1.mycdn.ciab.test.", "video.demo1.mycdn.ciab.test."} {
		wantRes, wantAns, _ := zone.Lookup(name, dnswire.TypeA)
		gotRes, gotAns, _ := secondary.Lookup(name, dnswire.TypeA)
		if wantRes != gotRes || len(wantAns) != len(gotAns) {
			t.Errorf("%s: primary (%v, %d) vs secondary (%v, %d)",
				name, wantRes, len(wantAns), gotRes, len(gotAns))
		}
	}
	if secondary.SOA().Serial != zone.SOA().Serial {
		t.Error("SOA serial not preserved")
	}
}

func TestAXFRRefusedOverUDP(t *testing.T) {
	zp := NewZonePlugin(testZone(t))
	h := Chain(NewAXFR(zp), zp)
	q := new(dnswire.Message)
	q.SetQuestion("mycdn.ciab.test.", dnswire.TypeAXFR)
	resp := Resolve(context.Background(), h, &Request{
		Msg: q, Transport: "udp", Client: netip.MustParseAddrPort("10.0.0.1:5000")})
	if resp.Rcode != dnswire.RcodeRefused {
		t.Errorf("UDP AXFR rcode = %v", resp.Rcode)
	}
}

func TestAXFRACL(t *testing.T) {
	zp := NewZonePlugin(testZone(t))
	axfr := NewAXFR(zp, netip.MustParsePrefix("10.0.0.0/8"))
	h := Chain(axfr, zp)
	ask := func(client string) dnswire.Rcode {
		q := new(dnswire.Message)
		q.SetQuestion("mycdn.ciab.test.", dnswire.TypeAXFR)
		return Resolve(context.Background(), h, &Request{
			Msg: q, Transport: "tcp", Client: netip.MustParseAddrPort(client)}).Rcode
	}
	if rc := ask("10.2.3.4:5000"); rc != dnswire.RcodeSuccess {
		t.Errorf("allowed secondary refused: %v", rc)
	}
	if rc := ask("203.0.113.5:5000"); rc != dnswire.RcodeRefused {
		t.Errorf("outsider got %v", rc)
	}
}

func TestAXFRUnknownZoneRefused(t *testing.T) {
	zp := NewZonePlugin(testZone(t))
	h := Chain(NewAXFR(zp), zp)
	q := new(dnswire.Message)
	q.SetQuestion("unknown.example.", dnswire.TypeAXFR)
	resp := Resolve(context.Background(), h, &Request{
		Msg: q, Transport: "tcp", Client: netip.MustParseAddrPort("10.0.0.1:5000")})
	if resp.Rcode != dnswire.RcodeRefused {
		t.Errorf("rcode = %v", resp.Rcode)
	}
}

func TestZoneFromTransferValidation(t *testing.T) {
	zone := testZone(t)
	rrs := TransferRecords(zone)
	if _, err := ZoneFromTransfer(rrs[:1]); err == nil {
		t.Error("single-record transfer accepted")
	}
	if _, err := ZoneFromTransfer(rrs[1:]); err == nil {
		t.Error("transfer without leading SOA accepted")
	}
	if _, err := ZoneFromTransfer(rrs[:len(rrs)-1]); err == nil {
		t.Error("transfer without trailing SOA accepted")
	}
}
