//go:build pooldebug

package dnsserver

import (
	"context"
	"net"
	"net/netip"
	"testing"
	"time"

	"github.com/meccdn/meccdn/internal/dnswire"
	"github.com/meccdn/meccdn/internal/vclock"
)

// TestServePathPoolBalance is the pool-leak regression test: drive
// every UDP serve path that touches pooled buffers — misses, wire
// fast-path hits (ownership transfer through WriteWireOwned),
// EDNS decode-path hits, and clone-truncated oversized responses —
// then shut the server down and require every checked-out buffer to be
// back in the pool. A positive delta is a leak on some exit path.
func TestServePathPoolBalance(t *testing.T) {
	zone := NewZone("bal.test.")
	if err := zone.AddA("www.bal.test.", 300, netip.MustParseAddr("192.0.2.5")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ { // big.bal.test. packs past 512 bytes → truncation path
		if err := zone.AddA("big.bal.test.", 300, netip.AddrFrom4([4]byte{10, 0, byte(i >> 8), byte(i)})); err != nil {
			t.Fatal(err)
		}
	}
	cache := NewCache(vclock.NewReal())
	srv := &Server{
		Addr:       "127.0.0.1:0",
		Handler:    Chain(cache, NewZonePlugin(zone)),
		Workers:    2,
		QueueDepth: 64,
	}

	base := dnswire.PoolOutstanding()
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}

	conn, err := net.Dial("udp", srv.LocalAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	buf := make([]byte, 4096)
	ask := func(name string, id uint16, edns bool) {
		t.Helper()
		q := new(dnswire.Message)
		q.SetQuestion(name, dnswire.TypeA)
		q.ID = id
		if edns {
			q.SetEDNS(1232)
		}
		wire, err := q.Pack()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := conn.Write(wire); err != nil {
			t.Fatal(err)
		}
		conn.SetReadDeadline(time.Now().Add(2 * time.Second))
		if _, err := conn.Read(buf); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}

	for i := 0; i < 8; i++ {
		ask("www.bal.test.", uint16(1+i), false)   // miss then wire fast-path hits
		ask("www.bal.test.", uint16(100+i), true)  // EDNS → decode-path hits
		ask("big.bal.test.", uint16(200+i), false) // clone-truncate path every time
	}
	if st := cache.Stats(); st.Hits == 0 {
		t.Fatalf("expected wire-path hits, got %+v", st)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}

	// Reader goroutines release their armed ingress buffers as they
	// unwind, possibly a beat after Shutdown returns.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if dnswire.PoolOutstanding() <= base {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("%d pooled buffers still checked out after shutdown (baseline %d)",
		dnswire.PoolOutstanding(), base)
}
