//go:build darwin

package dnsserver

import "syscall"

// soReusePort is SO_REUSEPORT; Darwin's syscall package exports it.
const soReusePort = syscall.SO_REUSEPORT
