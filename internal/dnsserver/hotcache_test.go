package dnsserver

// Tests for the always-hot cache: refresh-ahead prefetch keeping hot
// names answered from cache across TTL expiry, and RFC 8767
// serve-stale turning upstream outages into clamped-TTL answers
// instead of SERVFAILs. Run with -race: the prefetch machinery is all
// about background goroutines.

import (
	"context"
	"errors"
	"net/netip"
	"sync/atomic"
	"testing"
	"time"

	"github.com/meccdn/meccdn/internal/dnswire"
	"github.com/meccdn/meccdn/internal/vclock"
)

// fakeOrigin is a terminal plugin standing in for the upstream: it
// counts how often the chain reaches it (atomically — prefetches
// arrive on background goroutines), can be switched into failure
// modes, blocked on a gate, and slowed down to make upstream latency
// observable from the client side.
type fakeOrigin struct {
	entered atomic.Int64 // chain reached the origin
	served  atomic.Int64 // origin finished (answer or failure)
	failing atomic.Bool  // true: return an error instead of answering
	gate    atomic.Pointer[chan struct{}]
	ttl     uint32
	delay   time.Duration
	addr    netip.Addr
}

func newFakeOrigin(ttl uint32) *fakeOrigin {
	return &fakeOrigin{ttl: ttl, addr: netip.MustParseAddr("192.0.2.80")}
}

// block installs a gate; origin calls park on it until release.
func (o *fakeOrigin) block() (release func()) {
	ch := make(chan struct{})
	o.gate.Store(&ch)
	return func() { close(ch) }
}

func (o *fakeOrigin) Name() string { return "fake-origin" }

func (o *fakeOrigin) ServeDNS(ctx context.Context, w ResponseWriter, r *Request, next Handler) (dnswire.Rcode, error) {
	o.entered.Add(1)
	defer o.served.Add(1)
	if g := o.gate.Load(); g != nil {
		<-*g
	}
	if o.delay > 0 {
		time.Sleep(o.delay)
	}
	if o.failing.Load() {
		return dnswire.RcodeServerFailure, errors.New("origin unreachable")
	}
	m := new(dnswire.Message)
	m.SetReply(r.Msg)
	m.Answers = []dnswire.RR{&dnswire.A{
		Hdr:  dnswire.RRHeader{Name: r.Name(), Type: dnswire.TypeA, Class: dnswire.ClassINET, TTL: o.ttl},
		Addr: o.addr,
	}}
	return m.Rcode, w.WriteMsg(m)
}

// TestRefreshAheadKeepsHotNameAnswered is the always-hot invariant: a
// hit in the last PrefetchFrac of its TTL is served from cache at
// cache-hit latency (never the origin's), triggers exactly one async
// re-resolve, and the refreshed entry carries the name across the
// original expiry without a single client-visible miss.
func TestRefreshAheadKeepsHotNameAnswered(t *testing.T) {
	clock := &vclock.Fixed{}
	cache := NewCache(clock)
	cache.PrefetchFrac = 0.1
	origin := newFakeOrigin(10)
	origin.delay = 200 * time.Millisecond
	h := Chain(cache, origin)
	q := queryFor("hot.test.")

	// t=0: cold miss pays the origin latency and warms the cache.
	Resolve(context.Background(), h, q)
	if got := origin.served.Load(); got != 1 {
		t.Fatalf("warming calls = %d, want 1", got)
	}

	// t=9.5s: remaining 0.5s ≤ 0.1 × 10s lifetime — inside the
	// refresh-ahead window. The hit must return without waiting on the
	// 200ms origin, with the prefetch running behind it.
	clock.Advance(9500 * time.Millisecond)
	start := time.Now()
	resp := Resolve(context.Background(), h, queryFor("hot.test."))
	if lat := time.Since(start); lat > 150*time.Millisecond {
		t.Errorf("in-window hit took %v; upstream latency leaked to the client", lat)
	}
	if len(resp.Answers) != 1 {
		t.Fatalf("in-window hit answers = %v", resp.Answers)
	}
	if s := cache.Stats(); s.Hits != 1 || s.PrefetchIssued != 1 {
		t.Fatalf("after in-window hit: hits=%d prefetchIssued=%d, want 1/1", s.Hits, s.PrefetchIssued)
	}

	// Wait for the refreshed entry to land: a fresh store at t=9.5s
	// serves with the full TTL again, where the old entry is down to 1s.
	// (The clock must not advance while the prefetch goroutine can
	// still read it.)
	waitFor(t, 2*time.Second, func() bool {
		r := Resolve(context.Background(), h, queryFor("hot.test."))
		return len(r.Answers) == 1 && r.Answers[0].Header().TTL == 10
	})

	// t=10.5s: past the original expiry. Under a cold cache this is a
	// miss and an origin round trip; refresh-ahead makes it a hit.
	clock.Advance(time.Second)
	resp = Resolve(context.Background(), h, queryFor("hot.test."))
	if len(resp.Answers) != 1 || resp.Answers[0].Header().TTL != 9 {
		t.Errorf("post-expiry answer = %v, want the refreshed record aged to 9s", resp.Answers)
	}
	s := cache.Stats()
	if s.Misses != 1 || s.Expired != 0 {
		t.Errorf("misses=%d expired=%d after expiry; refresh-ahead did not keep the name hot", s.Misses, s.Expired)
	}
	if got := origin.served.Load(); got != 2 {
		t.Errorf("origin calls = %d, want 2 (warm + one prefetch)", got)
	}
}

// TestPrefetchDedupAndBound pins the two prefetch throttles: the
// per-entry latch collapses repeated in-window hits to one refresh,
// and the MaxPrefetch semaphore sheds refreshes beyond the bound
// (counted, entry unlatched for a later retry).
func TestPrefetchDedupAndBound(t *testing.T) {
	clock := &vclock.Fixed{}
	cache := NewCache(clock)
	cache.PrefetchFrac = 0.5
	cache.MaxPrefetch = 1
	origin := newFakeOrigin(10)
	h := Chain(cache, origin)

	Resolve(context.Background(), h, queryFor("a.dedup.test."))
	Resolve(context.Background(), h, queryFor("b.dedup.test."))
	clock.Advance(8 * time.Second) // both entries inside the 50% window

	release := origin.block()
	for i := 0; i < 3; i++ {
		Resolve(context.Background(), h, queryFor("a.dedup.test."))
	}
	s := cache.Stats()
	if s.PrefetchIssued != 1 || s.PrefetchCoalesced < 2 {
		t.Errorf("issued=%d coalesced=%d after 3 in-window hits, want 1 issue and the rest coalesced",
			s.PrefetchIssued, s.PrefetchCoalesced)
	}
	// The single semaphore slot is parked on the gate; b's refresh
	// must be shed, not queued.
	Resolve(context.Background(), h, queryFor("b.dedup.test."))
	if s := cache.Stats(); s.PrefetchDropped != 1 {
		t.Errorf("dropped=%d after hitting the MaxPrefetch bound, want 1", s.PrefetchDropped)
	}
	release()
	waitFor(t, 2*time.Second, func() bool { return origin.served.Load() == 3 })
}

// TestServeStaleOnUpstreamFailure is the RFC 8767 behaviour: with the
// upstream down, an expired entry inside the MaxStale window is served
// with its TTLs clamped to the stale lifetime — never the original
// TTL, never zero — instead of relaying SERVFAIL; past the window the
// failure comes through.
func TestServeStaleOnUpstreamFailure(t *testing.T) {
	clock := &vclock.Fixed{}
	cache := NewCache(clock)
	cache.MaxStale = time.Hour
	origin := newFakeOrigin(300)
	h := Chain(cache, origin)

	Resolve(context.Background(), h, queryFor("stale.test."))
	origin.failing.Store(true)

	// 100s past expiry, well inside the stale window.
	clock.Advance(400 * time.Second)
	resp := Resolve(context.Background(), h, queryFor("stale.test."))
	if resp.Rcode != dnswire.RcodeSuccess || len(resp.Answers) != 1 {
		t.Fatalf("stale serve: rcode=%v answers=%v, want the cached answer", resp.Rcode, resp.Answers)
	}
	if got := resp.Answers[0].Header().TTL; got != 30 {
		t.Errorf("stale TTL = %d, want the 30s clamp (not the original 300, not 0)", got)
	}
	s := cache.Stats()
	if s.StaleServes != 1 || s.Expired != 1 {
		t.Errorf("staleServes=%d expired=%d, want 1/1", s.StaleServes, s.Expired)
	}

	// The wire fast path must clamp identically.
	sink := &wireSink{}
	ResolveTo(context.Background(), h, sink, queryFor("stale.test."))
	if sink.wire == nil {
		t.Fatal("stale serve did not take the wire path for a wire-capable writer")
	}
	var m dnswire.Message
	if err := m.Unpack(sink.wire); err != nil {
		t.Fatal(err)
	}
	if got := m.Answers[0].Header().TTL; got != 30 {
		t.Errorf("wire-path stale TTL = %d, want 30", got)
	}

	// Past expiry + MaxStale the entry is gone and the failure relays.
	clock.Advance(2 * time.Hour)
	resp = Resolve(context.Background(), h, queryFor("stale.test."))
	if resp.Rcode != dnswire.RcodeServerFailure {
		t.Errorf("beyond MaxStale: rcode = %v, want SERVFAIL", resp.Rcode)
	}

	// Upstream recovery refills normally.
	origin.failing.Store(false)
	resp = Resolve(context.Background(), h, queryFor("stale.test."))
	if resp.Rcode != dnswire.RcodeSuccess || len(resp.Answers) != 1 || resp.Answers[0].Header().TTL != 300 {
		t.Errorf("post-recovery answer = %v rcode=%v, want a fresh 300s record", resp.Answers, resp.Rcode)
	}
}

// TestServeStaleNeverExtendsShortTTLs: clamping is one-directional. A
// record that was stored with a TTL below the stale clamp keeps it —
// going stale must not grant lifetime.
func TestServeStaleNeverExtendsShortTTLs(t *testing.T) {
	clock := &vclock.Fixed{}
	cache := NewCache(clock)
	cache.MaxStale = time.Hour
	origin := newFakeOrigin(5)
	h := Chain(cache, origin)

	Resolve(context.Background(), h, queryFor("short.test."))
	origin.failing.Store(true)
	clock.Advance(10 * time.Second)
	resp := Resolve(context.Background(), h, queryFor("short.test."))
	if resp.Rcode != dnswire.RcodeSuccess || len(resp.Answers) != 1 {
		t.Fatalf("stale serve: rcode=%v answers=%v", resp.Rcode, resp.Answers)
	}
	if got := resp.Answers[0].Header().TTL; got != 5 {
		t.Errorf("stale TTL = %d, want the original 5 (clamp must not extend)", got)
	}
}

// TestShutdownWaitsForPrefetch pins the drain contract across the
// cache/server boundary: a refresh-ahead prefetch in flight when
// Shutdown begins is covered by the server's in-flight WaitGroup, so
// the drain waits for it instead of leaking the goroutine — and no new
// background work can start once draining.
func TestShutdownWaitsForPrefetch(t *testing.T) {
	cache := NewCache(vclock.NewReal())
	cache.PrefetchFrac = 1.0 // every hit is in-window
	origin := newFakeOrigin(60)
	srv := &Server{Addr: "127.0.0.1:0", Handler: Chain(cache, origin)}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	cache.Background = srv
	addr := srv.LocalAddr()

	if _, err := realClient().Query(context.Background(), addr, "drain.test.", dnswire.TypeA); err != nil {
		t.Fatal(err)
	}
	release := origin.block()
	if _, err := realClient().Query(context.Background(), addr, "drain.test.", dnswire.TypeA); err != nil {
		t.Fatal(err) // hit: served from cache while the prefetch parks on the gate
	}
	waitFor(t, 2*time.Second, func() bool { return origin.entered.Load() == 2 })

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- srv.Shutdown(ctx) }()
	select {
	case err := <-done:
		t.Fatalf("Shutdown returned %v with a prefetch still in flight", err)
	case <-time.After(100 * time.Millisecond):
	}
	release()
	if err := <-done; err != nil {
		t.Fatalf("Shutdown = %v after the prefetch finished, want nil", err)
	}
	if got := origin.served.Load(); got != 2 {
		t.Errorf("origin completions = %d at shutdown return, want 2 (drain must cover the prefetch)", got)
	}
	if _, ok := srv.TrackBackground(); ok {
		t.Error("TrackBackground accepted work after drain")
	}
}
