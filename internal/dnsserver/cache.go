package dnsserver

import (
	"container/list"
	"context"
	"fmt"
	"sync"
	"time"

	"github.com/meccdn/meccdn/internal/dnswire"
	"github.com/meccdn/meccdn/internal/vclock"
)

// CacheStats is a snapshot of cache effectiveness counters.
type CacheStats struct {
	Hits, Misses  uint64
	NegativeHits  uint64
	Entries       int
	Evictions     uint64
	ExpiredServed uint64 // entries found but already expired
}

// Cache is a TTL-honouring response cache with RFC 2308 negative
// caching and LRU eviction. Responses are keyed by question and, when
// the upstream scoped its answer with ECS, by client subnet — which is
// precisely the cache-fragmentation cost of ECS the paper alludes to.
type Cache struct {
	// Clock supplies time; required. Use the simnet clock in
	// experiments and vclock.NewReal() on live servers.
	Clock vclock.Clock
	// MaxEntries bounds the cache; 0 means 4096.
	MaxEntries int
	// MinTTL/MaxTTL clamp stored lifetimes. Zero MaxTTL means 1h.
	MinTTL, MaxTTL time.Duration

	mu    sync.Mutex
	items map[string]*list.Element
	lru   *list.List
	stats CacheStats
}

type cacheEntry struct {
	key     string
	msg     *dnswire.Message
	stored  time.Duration
	expires time.Duration
}

// NewCache returns a cache using clock.
func NewCache(clock vclock.Clock) *Cache {
	return &Cache{
		Clock: clock,
		items: make(map[string]*list.Element),
		lru:   list.New(),
	}
}

// Name implements Plugin.
func (c *Cache) Name() string { return "cache" }

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Entries = c.lru.Len()
	return s
}

// Flush drops every entry.
func (c *Cache) Flush() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.items = make(map[string]*list.Element)
	c.lru.Init()
}

func cacheKey(r *Request) string {
	key := r.Name() + "|" + r.Type().String()
	if ecs, ok := r.Msg.ECS(); ok {
		key += "|" + ecs.Prefix().String()
	}
	return key
}

// ServeDNS implements Plugin.
func (c *Cache) ServeDNS(ctx context.Context, w ResponseWriter, r *Request, next Handler) (dnswire.Rcode, error) {
	key := cacheKey(r)
	if msg, ok := c.lookup(key); ok {
		msg.ID = r.Msg.ID
		if err := w.WriteMsg(msg); err != nil {
			return dnswire.RcodeServerFailure, err
		}
		return msg.Rcode, nil
	}

	rec := &recorder{w: nil}
	rcode, err := next.ServeDNS(ctx, rec, r)
	if err != nil || !rec.written {
		if rec.written {
			_ = w.WriteMsg(rec.msg)
		}
		return rcode, err
	}
	c.store(key, rec.msg)
	if err := w.WriteMsg(rec.msg); err != nil {
		return dnswire.RcodeServerFailure, err
	}
	return rec.msg.Rcode, nil
}

// lookup returns a TTL-adjusted clone on hit.
func (c *Cache) lookup(key string) (*dnswire.Message, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.stats.Misses++
		return nil, false
	}
	ent := el.Value.(*cacheEntry)
	now := c.Clock.Now()
	if now >= ent.expires {
		c.lru.Remove(el)
		delete(c.items, key)
		c.stats.Misses++
		c.stats.ExpiredServed++
		return nil, false
	}
	c.lru.MoveToFront(el)
	c.stats.Hits++
	if ent.msg.Rcode != dnswire.RcodeSuccess || len(ent.msg.Answers) == 0 {
		c.stats.NegativeHits++
	}
	msg := ent.msg.Clone()
	// Age the TTLs by the time spent in cache.
	aged := uint32((now - ent.stored) / time.Second)
	for _, section := range [][]dnswire.RR{msg.Answers, msg.Authorities, msg.Additionals} {
		for _, rr := range section {
			if rr.Header().Type == dnswire.TypeOPT {
				continue
			}
			if rr.Header().TTL > aged {
				rr.Header().TTL -= aged
			} else {
				rr.Header().TTL = 0
			}
		}
	}
	return msg, true
}

// store caches msg under key for its effective TTL.
func (c *Cache) store(key string, msg *dnswire.Message) {
	ttl := effectiveTTL(msg)
	if ttl <= 0 {
		return
	}
	if c.MinTTL > 0 && ttl < c.MinTTL {
		ttl = c.MinTTL
	}
	maxTTL := c.MaxTTL
	if maxTTL <= 0 {
		maxTTL = time.Hour
	}
	if ttl > maxTTL {
		ttl = maxTTL
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.items == nil {
		c.items = make(map[string]*list.Element)
		c.lru = list.New()
	}
	now := c.Clock.Now()
	ent := &cacheEntry{key: key, msg: msg.Clone(), stored: now, expires: now + ttl}
	if el, ok := c.items[key]; ok {
		el.Value = ent
		c.lru.MoveToFront(el)
		return
	}
	max := c.MaxEntries
	if max <= 0 {
		max = 4096
	}
	for c.lru.Len() >= max {
		oldest := c.lru.Back()
		c.lru.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
		c.stats.Evictions++
	}
	c.items[key] = c.lru.PushFront(ent)
}

// effectiveTTL derives the cacheable lifetime of a response: the
// minimum answer TTL for positive answers, or the SOA MinTTL rule of
// RFC 2308 for negative ones. Server failures are not cached.
func effectiveTTL(msg *dnswire.Message) time.Duration {
	switch msg.Rcode {
	case dnswire.RcodeSuccess, dnswire.RcodeNameError:
	default:
		return 0
	}
	if len(msg.Answers) > 0 {
		min := uint32(1<<32 - 1)
		for _, rr := range msg.Answers {
			if rr.Header().Type == dnswire.TypeOPT {
				continue
			}
			if rr.Header().TTL < min {
				min = rr.Header().TTL
			}
		}
		return time.Duration(min) * time.Second
	}
	for _, rr := range msg.Authorities {
		if soa, ok := rr.(*dnswire.SOA); ok {
			ttl := soa.Hdr.TTL
			if soa.MinTTL < ttl {
				ttl = soa.MinTTL
			}
			return time.Duration(ttl) * time.Second
		}
	}
	return 0
}

// String summarizes the cache for debugging.
func (c *Cache) String() string {
	s := c.Stats()
	return fmt.Sprintf("cache{entries=%d hits=%d misses=%d}", s.Entries, s.Hits, s.Misses)
}
