package dnsserver

import (
	"container/list"
	"context"
	"fmt"
	"sync"
	"time"

	"github.com/meccdn/meccdn/internal/dnswire"
	"github.com/meccdn/meccdn/internal/telemetry"
	"github.com/meccdn/meccdn/internal/vclock"
)

// CacheStats is a snapshot of cache effectiveness counters.
//
// Every lookup is counted exactly once: as a Hit, a Miss (key absent),
// or an Expired (key present but past its TTL), so
// Hits+Misses+Expired equals the number of lookups.
type CacheStats struct {
	Hits, Misses uint64
	NegativeHits uint64
	// Expired counts lookups that found an entry already past its
	// TTL; such lookups are answered upstream like misses but are not
	// double-counted in Misses.
	Expired   uint64
	Entries   int
	Evictions uint64
	// Coalesced counts queries that piggybacked on another query's
	// in-flight upstream exchange instead of issuing their own
	// (singleflight miss coalescing).
	Coalesced uint64
	// Shards is the number of independent cache shards in use.
	Shards int
}

// Cache is a TTL-honouring response cache with RFC 2308 negative
// caching and LRU eviction. Responses are keyed by question and, when
// the upstream scoped its answer with ECS, by client subnet — which is
// precisely the cache-fragmentation cost of ECS the paper alludes to.
//
// The cache is sharded by key hash: each shard has its own mutex and
// LRU list, so concurrent queries for different names never contend
// on one lock. Concurrent misses for the *same* key are coalesced
// with a singleflight flight per key: one query becomes the leader
// and performs the upstream exchange, the rest wait and share its
// answer, so M concurrent misses cost one upstream query.
type Cache struct {
	// Clock supplies time; required. Use the simnet clock in
	// experiments and vclock.NewReal() on live servers.
	Clock vclock.Clock
	// MaxEntries bounds the cache across all shards; 0 means 4096.
	MaxEntries int
	// MinTTL/MaxTTL clamp stored lifetimes. Zero MaxTTL means 1h.
	MinTTL, MaxTTL time.Duration
	// Shards is the number of independent shards; 0 means 16. The
	// count is reduced automatically so every shard holds at least 64
	// entries, which keeps LRU eviction near-exact for small caches.
	Shards int
	// DisableCoalescing turns off singleflight miss coalescing; each
	// miss then performs its own upstream exchange.
	DisableCoalescing bool

	once   sync.Once
	shards []*cacheShard
	ctr    cacheCounters
}

// cacheCounters are the cache's effectiveness counters as telemetry
// instruments: shared atomics across shards (replacing the old
// per-shard ad-hoc fields), registrable on a telemetry.Registry for
// live /metrics exposition.
type cacheCounters struct {
	hits, misses, negHits, expired, evictions, coalesced *telemetry.Counter
}

// cacheShard is one independently locked slice of the key space.
type cacheShard struct {
	mu      sync.Mutex
	items   map[string]*list.Element
	lru     *list.List
	max     int
	ctr     *cacheCounters
	flights map[string]*flight
}

// flight is one in-progress upstream exchange that concurrent misses
// for the same key wait on.
type flight struct {
	done  chan struct{}
	msg   *dnswire.Message // nil when the leader failed
	rcode dnswire.Rcode
	err   error
}

type cacheEntry struct {
	key     string
	msg     *dnswire.Message
	stored  time.Duration
	expires time.Duration
}

// NewCache returns a cache using clock.
func NewCache(clock vclock.Clock) *Cache {
	return &Cache{Clock: clock}
}

// init sizes and allocates the shard table. It runs on first use so
// MaxEntries/Shards can be set after NewCache.
func (c *Cache) init() {
	c.once.Do(func() {
		c.ctr = cacheCounters{
			hits:      telemetry.NewCounter("meccdn_dns_cache_hits_total", "Cache lookups answered from a live entry."),
			misses:    telemetry.NewCounter("meccdn_dns_cache_misses_total", "Cache lookups with no entry for the key."),
			negHits:   telemetry.NewCounter("meccdn_dns_cache_negative_hits_total", "Cache hits that served a negative (NXDOMAIN/NODATA) entry."),
			expired:   telemetry.NewCounter("meccdn_dns_cache_expired_total", "Cache lookups that found an entry past its TTL."),
			evictions: telemetry.NewCounter("meccdn_dns_cache_evictions_total", "Entries evicted by per-shard LRU pressure."),
			coalesced: telemetry.NewCounter("meccdn_dns_cache_coalesced_total", "Queries that shared another query's in-flight upstream exchange."),
		}
		max := c.MaxEntries
		if max <= 0 {
			max = 4096
		}
		n := c.Shards
		if n <= 0 {
			n = 16
		}
		// Keep shards big enough that per-shard LRU approximates the
		// global LRU; tiny caches collapse to a single shard.
		const minPerShard = 64
		for n > 1 && max/n < minPerShard {
			n /= 2
		}
		perShard := max / n
		if max%n != 0 {
			perShard++
		}
		c.shards = make([]*cacheShard, n)
		for i := range c.shards {
			c.shards[i] = &cacheShard{
				items:   make(map[string]*list.Element),
				lru:     list.New(),
				max:     perShard,
				ctr:     &c.ctr,
				flights: make(map[string]*flight),
			}
		}
	})
}

// Collectors returns the cache's metric families for registration on
// a telemetry.Registry: the effectiveness counters plus entry/shard
// gauges snapshotted at scrape time.
func (c *Cache) Collectors() []telemetry.Collector {
	c.init()
	return []telemetry.Collector{
		c.ctr.hits, c.ctr.misses, c.ctr.negHits, c.ctr.expired,
		c.ctr.evictions, c.ctr.coalesced,
		telemetry.NewGaugeFunc("meccdn_dns_cache_entries",
			"Live entries across all cache shards.",
			func() float64 { return float64(c.Stats().Entries) }),
		telemetry.NewGaugeFunc("meccdn_dns_cache_shards",
			"Number of independent cache shards.",
			func() float64 { return float64(len(c.shards)) }),
	}
}

// shard returns the shard owning key. The FNV-1a hash is inlined so
// the per-query path stays allocation-free.
func (c *Cache) shard(key string) *cacheShard {
	c.init()
	if len(c.shards) == 1 {
		return c.shards[0]
	}
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= prime32
	}
	return c.shards[h%uint32(len(c.shards))]
}

// Name implements Plugin.
func (c *Cache) Name() string { return "cache" }

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() CacheStats {
	c.init()
	s := CacheStats{
		Hits:         c.ctr.hits.Value(),
		Misses:       c.ctr.misses.Value(),
		NegativeHits: c.ctr.negHits.Value(),
		Expired:      c.ctr.expired.Value(),
		Evictions:    c.ctr.evictions.Value(),
		Coalesced:    c.ctr.coalesced.Value(),
		Shards:       len(c.shards),
	}
	for _, sh := range c.shards {
		sh.mu.Lock()
		s.Entries += sh.lru.Len()
		sh.mu.Unlock()
	}
	return s
}

// Flush drops every entry. In-flight exchanges are unaffected.
func (c *Cache) Flush() {
	c.init()
	for _, sh := range c.shards {
		sh.mu.Lock()
		sh.items = make(map[string]*list.Element)
		sh.lru.Init()
		sh.mu.Unlock()
	}
}

func cacheKey(r *Request) string {
	key := r.Name() + "|" + r.Type().String()
	if ecs, ok := r.Msg.ECS(); ok {
		key += "|" + ecs.Prefix().String()
	}
	return key
}

// ServeDNS implements Plugin.
func (c *Cache) ServeDNS(ctx context.Context, w ResponseWriter, r *Request, next Handler) (dnswire.Rcode, error) {
	key := cacheKey(r)
	sh := c.shard(key)
	endLookup := telemetry.StartHop(ctx, "cache")
	if msg, ok := sh.lookup(key, c.Clock.Now()); ok {
		endLookup("hit")
		msg.ID = r.Msg.ID
		if err := w.WriteMsg(msg); err != nil {
			return dnswire.RcodeServerFailure, err
		}
		return msg.Rcode, nil
	}
	endLookup("miss")
	if c.DisableCoalescing {
		return c.fill(ctx, sh, nil, key, w, r, next)
	}

	// Singleflight: join an in-flight exchange for this key, or
	// become the leader of a new one.
	sh.mu.Lock()
	if f, ok := sh.flights[key]; ok {
		c.ctr.coalesced.Inc()
		sh.mu.Unlock()
		endWait := telemetry.StartHop(ctx, "coalesce")
		select {
		case <-f.done:
			endWait("shared")
		case <-ctx.Done():
			endWait("canceled")
			return dnswire.RcodeServerFailure, ctx.Err()
		}
		if f.msg == nil {
			return f.rcode, f.err
		}
		msg := f.msg.Clone()
		msg.ID = r.Msg.ID
		if err := w.WriteMsg(msg); err != nil {
			return dnswire.RcodeServerFailure, err
		}
		return msg.Rcode, nil
	}
	f := &flight{done: make(chan struct{})}
	sh.flights[key] = f
	sh.mu.Unlock()
	return c.fill(ctx, sh, f, key, w, r, next)
}

// fill performs the upstream exchange for a miss, stores a cacheable
// answer, and (when f is non-nil) publishes the outcome to coalesced
// waiters.
func (c *Cache) fill(ctx context.Context, sh *cacheShard, f *flight, key string, w ResponseWriter, r *Request, next Handler) (dnswire.Rcode, error) {
	rec := &recorder{w: nil}
	rcode, err := next.ServeDNS(ctx, rec, r)
	if f != nil {
		if err == nil && rec.written {
			f.msg = rec.msg
		}
		f.rcode, f.err = rcode, err
		sh.mu.Lock()
		delete(sh.flights, key)
		sh.mu.Unlock()
		close(f.done)
	}
	if err != nil || !rec.written {
		if rec.written {
			_ = w.WriteMsg(rec.msg)
		}
		return rcode, err
	}
	c.store(sh, key, rec.msg)
	if err := w.WriteMsg(rec.msg); err != nil {
		return dnswire.RcodeServerFailure, err
	}
	return rec.msg.Rcode, nil
}

// lookup returns a TTL-adjusted clone on hit. Only the map/LRU
// bookkeeping runs under the shard lock; the clone and TTL aging run
// outside it, which is safe because stored messages are immutable —
// store replaces whole entries and every reader gets its own clone.
func (sh *cacheShard) lookup(key string, now time.Duration) (*dnswire.Message, bool) {
	sh.mu.Lock()
	el, ok := sh.items[key]
	if !ok {
		sh.mu.Unlock()
		sh.ctr.misses.Inc()
		return nil, false
	}
	ent := el.Value.(*cacheEntry)
	if now >= ent.expires {
		sh.lru.Remove(el)
		delete(sh.items, key)
		sh.mu.Unlock()
		sh.ctr.expired.Inc()
		return nil, false
	}
	sh.lru.MoveToFront(el)
	negative := ent.msg.Rcode != dnswire.RcodeSuccess || len(ent.msg.Answers) == 0
	sh.mu.Unlock()
	sh.ctr.hits.Inc()
	if negative {
		sh.ctr.negHits.Inc()
	}

	msg := ent.msg.Clone()
	// Age the TTLs by the time spent in cache.
	aged := uint32((now - ent.stored) / time.Second)
	for _, section := range [][]dnswire.RR{msg.Answers, msg.Authorities, msg.Additionals} {
		for _, rr := range section {
			if rr.Header().Type == dnswire.TypeOPT {
				continue
			}
			if rr.Header().TTL > aged {
				rr.Header().TTL -= aged
			} else {
				rr.Header().TTL = 0
			}
		}
	}
	return msg, true
}

// store caches msg under key for its effective TTL.
func (c *Cache) store(sh *cacheShard, key string, msg *dnswire.Message) {
	ttl := effectiveTTL(msg)
	if ttl <= 0 {
		return
	}
	if c.MinTTL > 0 && ttl < c.MinTTL {
		ttl = c.MinTTL
	}
	maxTTL := c.MaxTTL
	if maxTTL <= 0 {
		maxTTL = time.Hour
	}
	if ttl > maxTTL {
		ttl = maxTTL
	}
	now := c.Clock.Now()
	ent := &cacheEntry{key: key, msg: msg.Clone(), stored: now, expires: now + ttl}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if el, ok := sh.items[key]; ok {
		el.Value = ent
		sh.lru.MoveToFront(el)
		return
	}
	for sh.lru.Len() >= sh.max {
		oldest := sh.lru.Back()
		sh.lru.Remove(oldest)
		delete(sh.items, oldest.Value.(*cacheEntry).key)
		sh.ctr.evictions.Inc()
	}
	sh.items[key] = sh.lru.PushFront(ent)
}

// effectiveTTL derives the cacheable lifetime of a response: the
// minimum answer TTL for positive answers, or the SOA MinTTL rule of
// RFC 2308 for negative ones. Server failures are not cached.
func effectiveTTL(msg *dnswire.Message) time.Duration {
	switch msg.Rcode {
	case dnswire.RcodeSuccess, dnswire.RcodeNameError:
	default:
		return 0
	}
	if len(msg.Answers) > 0 {
		min := uint32(1<<32 - 1)
		for _, rr := range msg.Answers {
			if rr.Header().Type == dnswire.TypeOPT {
				continue
			}
			if rr.Header().TTL < min {
				min = rr.Header().TTL
			}
		}
		return time.Duration(min) * time.Second
	}
	for _, rr := range msg.Authorities {
		if soa, ok := rr.(*dnswire.SOA); ok {
			ttl := soa.Hdr.TTL
			if soa.MinTTL < ttl {
				ttl = soa.MinTTL
			}
			return time.Duration(ttl) * time.Second
		}
	}
	return 0
}

// String summarizes the cache for debugging.
func (c *Cache) String() string {
	s := c.Stats()
	return fmt.Sprintf("cache{shards=%d entries=%d hits=%d misses=%d coalesced=%d}",
		s.Shards, s.Entries, s.Hits, s.Misses, s.Coalesced)
}
