package dnsserver

import (
	"container/list"
	"context"
	"fmt"
	"sync"
	"time"

	"github.com/meccdn/meccdn/internal/dnswire"
	"github.com/meccdn/meccdn/internal/telemetry"
	"github.com/meccdn/meccdn/internal/vclock"
)

// CacheStats is a snapshot of cache effectiveness counters.
//
// Every lookup is counted exactly once: as a Hit, a Miss (key absent),
// or an Expired (key present but past its TTL), so
// Hits+Misses+Expired equals the number of lookups.
type CacheStats struct {
	Hits, Misses uint64
	NegativeHits uint64
	// Expired counts lookups that found an entry already past its
	// TTL; such lookups are answered upstream like misses but are not
	// double-counted in Misses.
	Expired   uint64
	Entries   int
	Evictions uint64
	// Coalesced counts queries that piggybacked on another query's
	// in-flight upstream exchange instead of issuing their own
	// (singleflight miss coalescing).
	Coalesced uint64
	// Shards is the number of independent cache shards in use.
	Shards int
}

// Cache is a TTL-honouring response cache with RFC 2308 negative
// caching and LRU eviction. Responses are keyed by question and, when
// the upstream scoped its answer with ECS, by client subnet — which is
// precisely the cache-fragmentation cost of ECS the paper alludes to.
//
// The cache is sharded by key hash: each shard has its own mutex and
// LRU list, so concurrent queries for different names never contend
// on one lock. Concurrent misses for the *same* key are coalesced
// with a singleflight flight per key: one query becomes the leader
// and performs the upstream exchange, the rest wait and share its
// answer, so M concurrent misses cost one upstream query.
type Cache struct {
	// Clock supplies time; required. Use the simnet clock in
	// experiments and vclock.NewReal() on live servers.
	Clock vclock.Clock
	// MaxEntries bounds the cache across all shards; 0 means 4096.
	MaxEntries int
	// MinTTL/MaxTTL clamp stored lifetimes. Zero MaxTTL means 1h.
	MinTTL, MaxTTL time.Duration
	// Shards is the number of independent shards; 0 means 16. The
	// count is reduced automatically so every shard holds at least 64
	// entries, which keeps LRU eviction near-exact for small caches.
	Shards int
	// DisableCoalescing turns off singleflight miss coalescing; each
	// miss then performs its own upstream exchange.
	DisableCoalescing bool

	once   sync.Once
	shards []*cacheShard
	ctr    cacheCounters
}

// cacheCounters are the cache's effectiveness counters as telemetry
// instruments: shared atomics across shards (replacing the old
// per-shard ad-hoc fields), registrable on a telemetry.Registry for
// live /metrics exposition.
type cacheCounters struct {
	hits, misses, negHits, expired, evictions, coalesced *telemetry.Counter
}

// cacheShard is one independently locked slice of the key space.
type cacheShard struct {
	mu      sync.Mutex
	items   map[string]*list.Element
	lru     *list.List
	max     int
	ctr     *cacheCounters
	flights map[string]*flight
}

// flight is one in-progress upstream exchange that concurrent misses
// for the same key wait on.
type flight struct {
	done  chan struct{}
	msg   *dnswire.Message // nil when the leader failed
	rcode dnswire.Rcode
	err   error
}

type cacheEntry struct {
	key string
	msg *dnswire.Message
	// wire is the packed form of msg, captured once at insert, and
	// ttlOffs the byte offsets of its non-OPT TTL fields. A hit through
	// a WireWriter copies wire into a pooled buffer and patches ID,
	// RD/CD bits, and TTLs in place — no Clone, no Pack. wire is nil
	// when packing failed at insert; such entries always take the
	// decode path.
	wire    []byte
	ttlOffs []int
	rcode   dnswire.Rcode
	stored  time.Duration
	expires time.Duration
}

// NewCache returns a cache using clock.
func NewCache(clock vclock.Clock) *Cache {
	return &Cache{Clock: clock}
}

// init sizes and allocates the shard table. It runs on first use so
// MaxEntries/Shards can be set after NewCache.
func (c *Cache) init() {
	c.once.Do(func() {
		c.ctr = cacheCounters{
			hits:      telemetry.NewCounter("meccdn_dns_cache_hits_total", "Cache lookups answered from a live entry."),
			misses:    telemetry.NewCounter("meccdn_dns_cache_misses_total", "Cache lookups with no entry for the key."),
			negHits:   telemetry.NewCounter("meccdn_dns_cache_negative_hits_total", "Cache hits that served a negative (NXDOMAIN/NODATA) entry."),
			expired:   telemetry.NewCounter("meccdn_dns_cache_expired_total", "Cache lookups that found an entry past its TTL."),
			evictions: telemetry.NewCounter("meccdn_dns_cache_evictions_total", "Entries evicted by per-shard LRU pressure."),
			coalesced: telemetry.NewCounter("meccdn_dns_cache_coalesced_total", "Queries that shared another query's in-flight upstream exchange."),
		}
		max := c.MaxEntries
		if max <= 0 {
			max = 4096
		}
		n := c.Shards
		if n <= 0 {
			n = 16
		}
		// Keep shards big enough that per-shard LRU approximates the
		// global LRU; tiny caches collapse to a single shard.
		const minPerShard = 64
		for n > 1 && max/n < minPerShard {
			n /= 2
		}
		perShard := max / n
		if max%n != 0 {
			perShard++
		}
		c.shards = make([]*cacheShard, n)
		for i := range c.shards {
			c.shards[i] = &cacheShard{
				items:   make(map[string]*list.Element),
				lru:     list.New(),
				max:     perShard,
				ctr:     &c.ctr,
				flights: make(map[string]*flight),
			}
		}
	})
}

// Collectors returns the cache's metric families for registration on
// a telemetry.Registry: the effectiveness counters plus entry/shard
// gauges snapshotted at scrape time.
func (c *Cache) Collectors() []telemetry.Collector {
	c.init()
	return []telemetry.Collector{
		c.ctr.hits, c.ctr.misses, c.ctr.negHits, c.ctr.expired,
		c.ctr.evictions, c.ctr.coalesced,
		telemetry.NewGaugeFunc("meccdn_dns_cache_entries",
			"Live entries across all cache shards.",
			func() float64 { return float64(c.Stats().Entries) }),
		telemetry.NewGaugeFunc("meccdn_dns_cache_shards",
			"Number of independent cache shards.",
			func() float64 { return float64(len(c.shards)) }),
	}
}

// shard returns the shard owning key. The FNV-1a hash is inlined so
// the per-query path stays allocation-free.
func (c *Cache) shard(key string) *cacheShard {
	c.init()
	if len(c.shards) == 1 {
		return c.shards[0]
	}
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= prime32
	}
	return c.shards[h%uint32(len(c.shards))]
}

// shardOf is shard for a key still in its stack buffer, so the hit
// path never materializes the key string.
func (c *Cache) shardOf(key []byte) *cacheShard {
	c.init()
	if len(c.shards) == 1 {
		return c.shards[0]
	}
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= prime32
	}
	return c.shards[h%uint32(len(c.shards))]
}

// Name implements Plugin.
func (c *Cache) Name() string { return "cache" }

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() CacheStats {
	c.init()
	s := CacheStats{
		Hits:         c.ctr.hits.Value(),
		Misses:       c.ctr.misses.Value(),
		NegativeHits: c.ctr.negHits.Value(),
		Expired:      c.ctr.expired.Value(),
		Evictions:    c.ctr.evictions.Value(),
		Coalesced:    c.ctr.coalesced.Value(),
		Shards:       len(c.shards),
	}
	for _, sh := range c.shards {
		sh.mu.Lock()
		s.Entries += sh.lru.Len()
		sh.mu.Unlock()
	}
	return s
}

// Flush drops every entry. In-flight exchanges are unaffected.
func (c *Cache) Flush() {
	c.init()
	for _, sh := range c.shards {
		sh.mu.Lock()
		sh.items = make(map[string]*list.Element)
		sh.lru.Init()
		sh.mu.Unlock()
	}
}

func cacheKey(r *Request) string {
	var kb [cacheKeyBuf]byte
	return string(appendCacheKey(kb[:0], r))
}

// cacheKeyBuf sizes the stack buffer lookups build their key in; a
// maximal DNS name (255 octets) plus type and ECS suffixes fits.
const cacheKeyBuf = 288

// appendCacheKey appends r's cache key to b and returns the extended
// slice. Passing a stack buffer keeps the hit path free of the
// per-query key allocation; the string is materialized only on a miss
// (when the entry has to be stored anyway).
func appendCacheKey(b []byte, r *Request) []byte {
	b = append(b, r.Name()...)
	b = append(b, '|')
	b = append(b, r.Type().String()...)
	if ecs, ok := r.Msg.ECS(); ok {
		b = append(b, '|')
		b = append(b, ecs.Prefix().String()...)
	}
	return b
}

// ServeDNS implements Plugin.
func (c *Cache) ServeDNS(ctx context.Context, w ResponseWriter, r *Request, next Handler) (dnswire.Rcode, error) {
	var kb [cacheKeyBuf]byte
	kbuf := appendCacheKey(kb[:0], r)
	sh := c.shardOf(kbuf)
	endLookup := telemetry.StartHop(ctx, "cache")
	if rcode, hit, err := sh.serveHit(kbuf, c.Clock.Now(), w, r); hit {
		endLookup("hit")
		return rcode, err
	}
	endLookup("miss")
	key := string(kbuf)
	if c.DisableCoalescing {
		return c.fill(ctx, sh, nil, key, w, r, next)
	}

	// Singleflight: join an in-flight exchange for this key, or
	// become the leader of a new one.
	sh.mu.Lock()
	if f, ok := sh.flights[key]; ok {
		c.ctr.coalesced.Inc()
		sh.mu.Unlock()
		endWait := telemetry.StartHop(ctx, "coalesce")
		select {
		case <-f.done:
			endWait("shared")
		case <-ctx.Done():
			endWait("canceled")
			return dnswire.RcodeServerFailure, ctx.Err()
		}
		if f.msg == nil {
			return f.rcode, f.err
		}
		msg := f.msg.Clone()
		msg.ID = r.Msg.ID
		msg.RecursionDesired = r.Msg.RecursionDesired
		msg.CheckingDisabled = r.Msg.CheckingDisabled
		if err := w.WriteMsg(msg); err != nil {
			return dnswire.RcodeServerFailure, err
		}
		return msg.Rcode, nil
	}
	f := &flight{done: make(chan struct{})}
	sh.flights[key] = f
	sh.mu.Unlock()
	return c.fill(ctx, sh, f, key, w, r, next)
}

// fill performs the upstream exchange for a miss, stores a cacheable
// answer, and (when f is non-nil) publishes the outcome to coalesced
// waiters.
func (c *Cache) fill(ctx context.Context, sh *cacheShard, f *flight, key string, w ResponseWriter, r *Request, next Handler) (dnswire.Rcode, error) {
	rec := &recorder{w: nil}
	rcode, err := next.ServeDNS(ctx, rec, r)
	if f != nil {
		if err == nil && rec.written {
			f.msg = rec.msg
		}
		f.rcode, f.err = rcode, err
		sh.mu.Lock()
		delete(sh.flights, key)
		sh.mu.Unlock()
		close(f.done)
	}
	if err != nil || !rec.written {
		if rec.written {
			_ = w.WriteMsg(rec.msg)
		}
		return rcode, err
	}
	c.store(sh, key, rec.msg)
	if err := w.WriteMsg(rec.msg); err != nil {
		return dnswire.RcodeServerFailure, err
	}
	return rec.msg.Rcode, nil
}

// serveHit looks key up and, on a live entry, writes the response
// through w and returns (rcode, true). Only the map/LRU bookkeeping
// runs under the shard lock; serving runs outside it, which is safe
// because stored entries are immutable — store replaces whole entries
// and every reader gets its own copy (a pooled wire buffer on the fast
// path, a clone on the fallback).
//
// The fast path fires when w is a WireWriter, the entry has a packed
// form that fits the transport, and the request carries no OPT record
// (EDNS/ECS force the decode path, per the patching rules in
// DESIGN.md): the cached bytes are copied into a pooled buffer and the
// transaction ID, the RD/CD mirror bits, and the aged TTLs are patched
// in place. The result is byte-identical to decode-age-repack (the
// FuzzTTLPatch invariant) at none of the cost.
func (sh *cacheShard) serveHit(key []byte, now time.Duration, w ResponseWriter, r *Request) (dnswire.Rcode, bool, error) {
	sh.mu.Lock()
	el, ok := sh.items[string(key)] // no alloc: map lookup by converted key
	if !ok {
		sh.mu.Unlock()
		sh.ctr.misses.Inc()
		return 0, false, nil
	}
	ent := el.Value.(*cacheEntry)
	if now >= ent.expires {
		sh.lru.Remove(el)
		delete(sh.items, string(key))
		sh.mu.Unlock()
		sh.ctr.expired.Inc()
		return 0, false, nil
	}
	sh.lru.MoveToFront(el)
	negative := ent.msg.Rcode != dnswire.RcodeSuccess || len(ent.msg.Answers) == 0
	sh.mu.Unlock()
	sh.ctr.hits.Inc()
	if negative {
		sh.ctr.negHits.Inc()
	}
	aged := uint32((now - ent.stored) / time.Second)

	if ww, ok := w.(WireWriter); ok && ent.wire != nil && len(ent.wire) <= ww.WireSize() {
		if _, hasOPT := r.Msg.OPT(); !hasOPT {
			buf := dnswire.GetBuffer()
			wire := buf[:copy(buf, ent.wire)]
			dnswire.PatchID(wire, r.Msg.ID)
			dnswire.PatchReplyBits(wire, r.Msg.RecursionDesired, r.Msg.CheckingDisabled)
			dnswire.AgeTTLs(wire, ent.ttlOffs, aged)
			err := ww.WriteWire(wire)
			dnswire.PutBuffer(buf)
			if err != nil {
				return dnswire.RcodeServerFailure, true, err
			}
			return ent.rcode, true, nil
		}
	}

	msg := ent.msg.Clone()
	msg.ID = r.Msg.ID
	msg.RecursionDesired = r.Msg.RecursionDesired
	msg.CheckingDisabled = r.Msg.CheckingDisabled
	// Age the TTLs by the time spent in cache.
	for _, section := range [][]dnswire.RR{msg.Answers, msg.Authorities, msg.Additionals} {
		for _, rr := range section {
			if rr.Header().Type == dnswire.TypeOPT {
				continue
			}
			if rr.Header().TTL > aged {
				rr.Header().TTL -= aged
			} else {
				rr.Header().TTL = 0
			}
		}
	}
	if err := w.WriteMsg(msg); err != nil {
		return dnswire.RcodeServerFailure, true, err
	}
	return msg.Rcode, true, nil
}

// store caches msg under key for its effective TTL.
func (c *Cache) store(sh *cacheShard, key string, msg *dnswire.Message) {
	ttl := effectiveTTL(msg)
	if ttl <= 0 {
		return
	}
	if c.MinTTL > 0 && ttl < c.MinTTL {
		ttl = c.MinTTL
	}
	maxTTL := c.MaxTTL
	if maxTTL <= 0 {
		maxTTL = time.Hour
	}
	if ttl > maxTTL {
		ttl = maxTTL
	}
	now := c.Clock.Now()
	ent := &cacheEntry{key: key, msg: msg.Clone(), rcode: msg.Rcode, stored: now, expires: now + ttl}
	// Capture the packed form and its TTL offsets once, so every
	// subsequent hit can be served by patching bytes instead of
	// Clone+Pack. Entries that fail to pack simply lack a fast path.
	if wire, err := ent.msg.Pack(); err == nil {
		if offs, err := dnswire.TTLOffsets(wire); err == nil {
			ent.wire, ent.ttlOffs = wire, offs
		}
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if el, ok := sh.items[key]; ok {
		el.Value = ent
		sh.lru.MoveToFront(el)
		return
	}
	for sh.lru.Len() >= sh.max {
		oldest := sh.lru.Back()
		sh.lru.Remove(oldest)
		delete(sh.items, oldest.Value.(*cacheEntry).key)
		sh.ctr.evictions.Inc()
	}
	sh.items[key] = sh.lru.PushFront(ent)
}

// effectiveTTL derives the cacheable lifetime of a response: the
// minimum answer TTL for positive answers, or the SOA MinTTL rule of
// RFC 2308 for negative ones. Server failures are not cached.
func effectiveTTL(msg *dnswire.Message) time.Duration {
	switch msg.Rcode {
	case dnswire.RcodeSuccess, dnswire.RcodeNameError:
	default:
		return 0
	}
	if len(msg.Answers) > 0 {
		min := uint32(1<<32 - 1)
		for _, rr := range msg.Answers {
			if rr.Header().Type == dnswire.TypeOPT {
				continue
			}
			if rr.Header().TTL < min {
				min = rr.Header().TTL
			}
		}
		return time.Duration(min) * time.Second
	}
	for _, rr := range msg.Authorities {
		if soa, ok := rr.(*dnswire.SOA); ok {
			ttl := soa.Hdr.TTL
			if soa.MinTTL < ttl {
				ttl = soa.MinTTL
			}
			return time.Duration(ttl) * time.Second
		}
	}
	return 0
}

// String summarizes the cache for debugging.
func (c *Cache) String() string {
	s := c.Stats()
	return fmt.Sprintf("cache{shards=%d entries=%d hits=%d misses=%d coalesced=%d}",
		s.Shards, s.Entries, s.Hits, s.Misses, s.Coalesced)
}
