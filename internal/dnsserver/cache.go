package dnsserver

import (
	"container/list"
	"context"
	"fmt"
	mathbits "math/bits"
	"sync"
	"sync/atomic"
	"time"

	"github.com/meccdn/meccdn/internal/dnswire"
	"github.com/meccdn/meccdn/internal/telemetry"
	"github.com/meccdn/meccdn/internal/vclock"
)

// CacheStats is a snapshot of cache effectiveness counters.
//
// Every lookup is counted exactly once: as a Hit, a Miss (key absent),
// or an Expired (key present but past its TTL), so
// Hits+Misses+Expired equals the number of lookups.
type CacheStats struct {
	Hits, Misses uint64
	NegativeHits uint64
	// Expired counts lookups that found an entry already past its
	// TTL; such lookups are answered upstream like misses but are not
	// double-counted in Misses.
	Expired   uint64
	Entries   int
	Evictions uint64
	// Coalesced counts queries that piggybacked on another query's
	// in-flight upstream exchange instead of issuing their own
	// (singleflight miss coalescing).
	Coalesced uint64
	// Shards is the number of independent cache shards in use.
	Shards int
	// PrefetchIssued counts refresh-ahead prefetches launched for
	// near-expiry hits; PrefetchCoalesced those skipped because a
	// refresh or resolve for the key was already in flight; and
	// PrefetchDropped those shed at the prefetch concurrency bound.
	PrefetchIssued, PrefetchCoalesced, PrefetchDropped uint64
	// StaleServes counts expired entries served with a clamped TTL
	// after an upstream failure (RFC 8767 serve-stale).
	StaleServes uint64
}

// Cache is a TTL-honouring response cache with RFC 2308 negative
// caching and LRU eviction. Responses are keyed by question and, for
// ECS queries, by the *answer's* scope-masked subnet (RFC 7871
// §7.3.1): an authority that tailors to /16 granularity costs one
// entry per /16, not one per disclosed /24 — so the
// cache-fragmentation cost of ECS the paper alludes to is bounded by
// how finely the authority actually discriminates, not by how much
// clients disclose.
//
// The cache is sharded by key hash: each shard has its own mutex and
// LRU list, so concurrent queries for different names never contend
// on one lock. Concurrent misses for the *same* key are coalesced
// with a singleflight flight per key: one query becomes the leader
// and performs the upstream exchange, the rest wait and share its
// answer, so M concurrent misses cost one upstream query.
type Cache struct {
	// Clock supplies time; required. Use the simnet clock in
	// experiments and vclock.NewReal() on live servers.
	Clock vclock.Clock
	// MaxEntries bounds the cache across all shards; 0 means 4096.
	MaxEntries int
	// MinTTL/MaxTTL clamp stored lifetimes. Zero MaxTTL means 1h.
	MinTTL, MaxTTL time.Duration
	// Shards is the number of independent shards; 0 means 16. The
	// count is reduced automatically so every shard holds at least 64
	// entries, which keeps LRU eviction near-exact for small caches.
	Shards int
	// DisableCoalescing turns off singleflight miss coalescing; each
	// miss then performs its own upstream exchange.
	DisableCoalescing bool
	// PrefetchFrac enables refresh-ahead prefetch: a hit whose
	// remaining TTL is at or below this fraction of its stored
	// lifetime is served from cache as usual and re-resolved
	// asynchronously through the chain, so the hot set never pays the
	// upstream RTT at expiry. 0 disables; 0.1 refreshes hits landing
	// in the last 10% of the TTL.
	PrefetchFrac float64
	// MaxPrefetch bounds concurrently running prefetches; 0 means 8.
	// Attempts beyond the bound are dropped — the entry keeps serving
	// until it actually expires — and counted in PrefetchDropped.
	MaxPrefetch int
	// Background, when non-nil, has every prefetch goroutine register
	// with it so a graceful drain waits for in-flight refreshes
	// instead of leaking them; a started Server implements it.
	Background BackgroundTracker
	// MaxStale enables RFC 8767 serve-stale: when a refill fails
	// (upstream error, or a SERVFAIL/REFUSED verdict) and the expired
	// entry is no older than expiry+MaxStale, the stale answer is
	// served with its TTLs clamped to StaleTTL instead of relaying
	// the failure. 0 disables.
	MaxStale time.Duration
	// StaleTTL is the clamp applied to stale answers' TTLs; 0 means
	// 30s, the RFC 8767 recommendation.
	StaleTTL time.Duration

	once        sync.Once
	shards      []*cacheShard
	ctr         cacheCounters
	prefetchSem chan struct{}

	// scope4/scope6 are per-family bitmask hints of which ECS scope
	// lengths have ever been stored (bit S set ⇔ some entry is keyed at
	// scope S). An ECS lookup probes only the set scopes, longest
	// first, so a table with two distinct scopes costs two map probes,
	// not 33. Bits are only ever set (entries expire but scopes stay
	// plausible); updated with a CAS loop, read with a single load.
	// scope4 holds bits 0..32; scope6 bits 0..128 across three words.
	scope4 atomic.Uint64
	scope6 [3]atomic.Uint64
}

// cacheCounters are the cache's off-hot-path counters as telemetry
// instruments (shared atomics are fine for events this rare),
// registrable on a telemetry.Registry for live /metrics exposition.
// The per-lookup counters — hits, misses, and friends — live on the
// shards instead: every lookup already holds its shard's lock, so a
// plain field under that lock counts for free, where a shared atomic
// would bounce a cache line between every serving core.
type cacheCounters struct {
	coalesced                                                       *telemetry.Counter
	prefetchIssued, prefetchCoalesced, prefetchDropped, staleServes *telemetry.Counter
}

// cacheShard is one independently locked slice of the key space.
type cacheShard struct {
	mu      sync.Mutex
	items   map[string]*list.Element
	lru     *list.List
	max     int
	ctr     *cacheCounters
	flights map[string]*flight
	// Per-lookup effectiveness counters, guarded by mu (see
	// cacheCounters). Summed across shards at scrape time.
	hits, misses, negHits, expired, evictions uint64
}

// flight is one in-progress upstream exchange that concurrent misses
// for the same key wait on.
type flight struct {
	done  chan struct{}
	msg   *dnswire.Message // nil when the leader failed
	rcode dnswire.Rcode
	err   error
}

type cacheEntry struct {
	key string
	msg *dnswire.Message
	// wire is the packed form of msg, captured once at insert, and
	// ttlOffs the byte offsets of its non-OPT TTL fields. A hit through
	// a WireWriter copies wire into a pooled buffer and patches ID,
	// RD/CD bits, and TTLs in place — no Clone, no Pack. wire is nil
	// when packing failed at insert; such entries always take the
	// decode path.
	wire    []byte
	ttlOffs []int
	rcode   dnswire.Rcode
	stored  time.Duration
	expires time.Duration
	// refreshing latches once a refresh-ahead prefetch has been
	// spawned for this stored generation; store() replaces the whole
	// entry, so the flag resets naturally when the refresh lands. It
	// is the only mutable field of an otherwise immutable entry.
	refreshing atomic.Bool
}

// NewCache returns a cache using clock.
func NewCache(clock vclock.Clock) *Cache {
	return &Cache{Clock: clock}
}

// init sizes and allocates the shard table. It runs on first use so
// MaxEntries/Shards can be set after NewCache.
func (c *Cache) init() {
	c.once.Do(func() {
		c.ctr = cacheCounters{
			coalesced:         telemetry.NewCounter("meccdn_dns_cache_coalesced_total", "Queries that shared another query's in-flight upstream exchange."),
			prefetchIssued:    telemetry.NewCounter("meccdn_dns_cache_prefetch_issued_total", "Refresh-ahead prefetches launched for near-expiry hits."),
			prefetchCoalesced: telemetry.NewCounter("meccdn_dns_cache_prefetch_coalesced_total", "Prefetch attempts skipped because a refresh or resolve for the key was already in flight."),
			prefetchDropped:   telemetry.NewCounter("meccdn_dns_cache_prefetch_dropped_total", "Prefetch attempts shed at the prefetch concurrency bound."),
			staleServes:       telemetry.NewCounter("meccdn_dns_cache_stale_serves_total", "Expired entries served with a clamped TTL after an upstream failure (RFC 8767)."),
		}
		maxPrefetch := c.MaxPrefetch
		if maxPrefetch <= 0 {
			maxPrefetch = 8
		}
		c.prefetchSem = make(chan struct{}, maxPrefetch)
		max := c.MaxEntries
		if max <= 0 {
			max = 4096
		}
		n := c.Shards
		if n <= 0 {
			n = 16
		}
		// Keep shards big enough that per-shard LRU approximates the
		// global LRU; tiny caches collapse to a single shard.
		const minPerShard = 64
		for n > 1 && max/n < minPerShard {
			n /= 2
		}
		perShard := max / n
		if max%n != 0 {
			perShard++
		}
		c.shards = make([]*cacheShard, n)
		for i := range c.shards {
			c.shards[i] = &cacheShard{
				items:   make(map[string]*list.Element),
				lru:     list.New(),
				max:     perShard,
				ctr:     &c.ctr,
				flights: make(map[string]*flight),
			}
		}
	})
}

// Collectors returns the cache's metric families for registration on
// a telemetry.Registry: the effectiveness counters (the per-lookup
// ones summed across shards at scrape time) plus entry/shard gauges.
func (c *Cache) Collectors() []telemetry.Collector {
	c.init()
	shardSum := func(pick func(*cacheShard) uint64) func() float64 {
		return func() float64 {
			var total uint64
			for _, sh := range c.shards {
				sh.mu.Lock()
				total += pick(sh)
				sh.mu.Unlock()
			}
			return float64(total)
		}
	}
	return []telemetry.Collector{
		telemetry.NewCounterFunc("meccdn_dns_cache_hits_total",
			"Cache lookups answered from a live entry.",
			shardSum(func(sh *cacheShard) uint64 { return sh.hits })),
		telemetry.NewCounterFunc("meccdn_dns_cache_misses_total",
			"Cache lookups with no entry for the key.",
			shardSum(func(sh *cacheShard) uint64 { return sh.misses })),
		telemetry.NewCounterFunc("meccdn_dns_cache_negative_hits_total",
			"Cache hits that served a negative (NXDOMAIN/NODATA) entry.",
			shardSum(func(sh *cacheShard) uint64 { return sh.negHits })),
		telemetry.NewCounterFunc("meccdn_dns_cache_expired_total",
			"Cache lookups that found an entry past its TTL.",
			shardSum(func(sh *cacheShard) uint64 { return sh.expired })),
		telemetry.NewCounterFunc("meccdn_dns_cache_evictions_total",
			"Entries evicted by per-shard LRU pressure.",
			shardSum(func(sh *cacheShard) uint64 { return sh.evictions })),
		c.ctr.coalesced,
		c.ctr.prefetchIssued, c.ctr.prefetchCoalesced,
		c.ctr.prefetchDropped, c.ctr.staleServes,
		telemetry.NewGaugeFunc("meccdn_dns_cache_entries",
			"Live entries across all cache shards.",
			func() float64 { return float64(c.Stats().Entries) }),
		telemetry.NewGaugeFunc("meccdn_dns_cache_shards",
			"Number of independent cache shards.",
			func() float64 { return float64(len(c.shards)) }),
	}
}

// shard returns the shard owning key. The FNV-1a hash is inlined so
// the per-query path stays allocation-free.
func (c *Cache) shard(key string) *cacheShard {
	c.init()
	if len(c.shards) == 1 {
		return c.shards[0]
	}
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= prime32
	}
	return c.shards[h%uint32(len(c.shards))]
}

// shardOf is shard for a key still in its stack buffer, so the hit
// path never materializes the key string.
func (c *Cache) shardOf(key []byte) *cacheShard {
	c.init()
	if len(c.shards) == 1 {
		return c.shards[0]
	}
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= prime32
	}
	return c.shards[h%uint32(len(c.shards))]
}

// Name implements Plugin.
func (c *Cache) Name() string { return "cache" }

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() CacheStats {
	c.init()
	s := CacheStats{
		Coalesced:         c.ctr.coalesced.Value(),
		Shards:            len(c.shards),
		PrefetchIssued:    c.ctr.prefetchIssued.Value(),
		PrefetchCoalesced: c.ctr.prefetchCoalesced.Value(),
		PrefetchDropped:   c.ctr.prefetchDropped.Value(),
		StaleServes:       c.ctr.staleServes.Value(),
	}
	for _, sh := range c.shards {
		sh.mu.Lock()
		s.Entries += sh.lru.Len()
		s.Hits += sh.hits
		s.Misses += sh.misses
		s.NegativeHits += sh.negHits
		s.Expired += sh.expired
		s.Evictions += sh.evictions
		sh.mu.Unlock()
	}
	return s
}

// Flush drops every entry. In-flight exchanges are unaffected.
func (c *Cache) Flush() {
	c.init()
	for _, sh := range c.shards {
		sh.mu.Lock()
		sh.items = make(map[string]*list.Element)
		sh.lru.Init()
		sh.mu.Unlock()
	}
}

func cacheKey(r *Request) string {
	var kb [cacheKeyBuf]byte
	return string(appendCacheKey(kb[:0], r))
}

// cacheKeyBuf sizes the stack buffer lookups build their key in; a
// maximal DNS name (255 octets) plus type and ECS suffixes fits.
const cacheKeyBuf = 288

// appendCacheKey appends r's cache key to b and returns the extended
// slice. Passing a stack buffer keeps the hit path free of the
// per-query key allocation; the string is materialized only on a miss
// (when the entry has to be stored anyway). ECS requests are keyed at
// the full disclosed source length; scoped lookups and stores build
// their own suffix with appendECSKey.
func appendCacheKey(b []byte, r *Request) []byte {
	b = appendBaseKey(b, r)
	if ecs, ok := r.Msg.ECS(); ok {
		_, famBits := ecsFamily(ecs)
		b = appendECSKey(b, ecs, int(ecs.SourcePrefix), famBits)
	}
	return b
}

// appendBaseKey appends the ECS-independent part of r's cache key.
func appendBaseKey(b []byte, r *Request) []byte {
	b = append(b, r.Name()...)
	b = append(b, '|')
	b = append(b, r.Type().String()...)
	return b
}

// ecsFamily resolves an ECS option to its key-suffix family byte and
// address width in bits.
func ecsFamily(ecs *dnswire.ECSOption) (byte, int) {
	if ecs.Family == 2 {
		return 2, 128
	}
	return 1, 32
}

// appendECSKey appends an ECS key suffix for the given prefix length:
// a separator, the family byte, the length byte, and the address bytes
// masked down to that length. Binary and allocation-free, unlike the
// Prefix().String() rendering it replaces, and parameterized on the
// length so one query can probe several scopes.
func appendECSKey(b []byte, ecs *dnswire.ECSOption, bits, famBits int) []byte {
	if bits < 0 {
		bits = 0
	}
	if bits > famBits {
		bits = famBits
	}
	fam := byte(1)
	if famBits == 128 {
		fam = 2
	}
	b = append(b, '|', fam, byte(bits))
	n := (bits + 7) / 8
	if n == 0 {
		return b
	}
	var raw [16]byte
	if famBits == 32 {
		if !ecs.Address.Is4() && !ecs.Address.Is4In6() {
			return b
		}
		a4 := ecs.Address.As4()
		copy(raw[:], a4[:])
	} else {
		if !ecs.Address.IsValid() {
			return b
		}
		raw = ecs.Address.As16()
	}
	if rem := bits % 8; rem != 0 {
		raw[n-1] &= byte(0xFF << (8 - rem))
	}
	return append(b, raw[:n]...)
}

// markScope records that an entry exists keyed at the given family and
// scope length, so lookups know to probe it.
func (c *Cache) markScope(famBits, scope int) {
	if famBits == 32 {
		orBit(&c.scope4, scope)
		return
	}
	orBit(&c.scope6[scope>>6], scope&63)
}

// orBit sets bit b of w. A CAS loop instead of atomic.Or keeps the
// module at its declared go 1.22 floor.
func orBit(w *atomic.Uint64, b int) {
	mask := uint64(1) << b
	for {
		old := w.Load()
		if old&mask != 0 || w.CompareAndSwap(old, old|mask) {
			return
		}
	}
}

// serveScoped is the ECS cache lookup. RFC 7871 §7.3.1: a cached
// entry answers a query when its scope-masked prefix covers the
// query's address at no more bits than the client disclosed, most
// specific entry first. Entries are keyed at store time by the
// *answer's* scope (see storeForRequest), so the lookup probes the
// base key extended with each plausible scope length in descending
// order — bounded by the per-family scope-hint bitmask, which in
// practice holds a handful of bits, not all 33/129. Probes reuse the
// caller's stack buffer: each one overwrites the previous suffix, so
// the ladder allocates nothing.
//
// It returns the key and shard the caller should resolve under on a
// miss (the full source-masked key — also the singleflight identity)
// or the key/shard of the hit, plus the lookup outcome. Counting: a
// hit is counted by serveHit on the hit's shard; a miss is counted
// here, once, on the resolve key's shard, keeping the
// Hits+Misses+Expired == lookups invariant even though one lookup may
// probe several shards.
func (c *Cache) serveScoped(kb *[cacheKeyBuf]byte, ecs *dnswire.ECSOption, now time.Duration, w ResponseWriter, r *Request) ([]byte, *cacheShard, lookupResult) {
	base := appendBaseKey(kb[:0], r)
	baseLen := len(base)
	_, famBits := ecsFamily(ecs)
	source := int(ecs.SourcePrefix)
	if source > famBits {
		source = famBits
	}
	var stale *cacheEntry
	probe := func(scope int) ([]byte, *cacheShard, lookupResult, bool) {
		key := appendECSKey(base[:baseLen], ecs, scope, famBits)
		psh := c.shardOf(key)
		pres := c.serveHit(psh, key, now, w, r, false)
		if pres.hit {
			return key, psh, pres, true
		}
		if pres.stale != nil && stale == nil {
			stale = pres.stale // longest-scope stale candidate wins
		}
		return nil, nil, lookupResult{}, false
	}
	if famBits == 32 {
		word := c.scope4.Load()
		if source < 63 {
			word &= (uint64(1) << (source + 1)) - 1
		}
		for word != 0 {
			s := 63 - mathbits.LeadingZeros64(word)
			if key, sh, res, ok := probe(s); ok {
				return key, sh, res
			}
			word &^= uint64(1) << s
		}
	} else {
		for wi := 2; wi >= 0; wi-- {
			word := c.scope6[wi].Load()
			lo := wi * 64
			if source < lo {
				continue
			}
			if source < lo+63 {
				word &= (uint64(1) << (source - lo + 1)) - 1
			}
			for word != 0 {
				s := 63 - mathbits.LeadingZeros64(word)
				if key, sh, res, ok := probe(lo + s); ok {
					return key, sh, res
				}
				word &^= uint64(1) << s
			}
		}
	}
	qkey := appendECSKey(base, ecs, source, famBits)
	qsh := c.shardOf(qkey)
	qsh.mu.Lock()
	if stale != nil {
		qsh.expired++
	} else {
		qsh.misses++
	}
	qsh.mu.Unlock()
	return qkey, qsh, lookupResult{stale: stale}
}

// lookupResult is the outcome of one cache lookup.
type lookupResult struct {
	hit   bool
	rcode dnswire.Rcode
	err   error
	// refresh, set on a hit, is the entry whose remaining TTL has
	// entered the refresh-ahead window; ServeDNS spawns an async
	// re-resolve for it after the hit has been served.
	refresh *cacheEntry
	// stale, set on a miss, is an expired entry still inside the
	// MaxStale window — the RFC 8767 fallback should the refill fail.
	stale *cacheEntry
}

// ServeDNS implements Plugin.
func (c *Cache) ServeDNS(ctx context.Context, w ResponseWriter, r *Request, next Handler) (dnswire.Rcode, error) {
	var kb [cacheKeyBuf]byte
	endLookup := telemetry.StartHop(ctx, "cache")
	now := c.Clock.Now()
	var kbuf []byte
	var sh *cacheShard
	var res lookupResult
	if ecs, ok := r.Msg.ECS(); ok {
		kbuf, sh, res = c.serveScoped(&kb, ecs, now, w, r)
	} else {
		kbuf = appendBaseKey(kb[:0], r)
		sh = c.shardOf(kbuf)
		res = c.serveHit(sh, kbuf, now, w, r, true)
	}
	if res.hit {
		endLookup("hit")
		if res.refresh != nil {
			c.spawnPrefetch(res.refresh, sh, string(kbuf), r, next)
		}
		return res.rcode, res.err
	}
	endLookup("miss")
	key := string(kbuf)
	if c.DisableCoalescing {
		return c.fill(ctx, sh, nil, key, w, r, next, res.stale)
	}

	// Singleflight: join an in-flight exchange for this key, or
	// become the leader of a new one.
	sh.mu.Lock()
	if f, ok := sh.flights[key]; ok {
		c.ctr.coalesced.Inc()
		sh.mu.Unlock()
		endWait := telemetry.StartHop(ctx, "coalesce")
		select {
		case <-f.done:
			endWait("shared")
		case <-ctx.Done():
			endWait("canceled")
			return dnswire.RcodeServerFailure, ctx.Err()
		}
		if f.msg == nil {
			return f.rcode, f.err
		}
		msg := f.msg.Clone()
		msg.ID = r.Msg.ID
		msg.RecursionDesired = r.Msg.RecursionDesired
		msg.CheckingDisabled = r.Msg.CheckingDisabled
		if err := w.WriteMsg(msg); err != nil {
			return dnswire.RcodeServerFailure, err
		}
		return msg.Rcode, nil
	}
	f := &flight{done: make(chan struct{})}
	sh.flights[key] = f
	sh.mu.Unlock()
	return c.fill(ctx, sh, f, key, w, r, next, res.stale)
}

// fill performs the upstream exchange for a miss, stores a cacheable
// answer, and (when f is non-nil) publishes the outcome to coalesced
// waiters. When the exchange fails and stale carries an expired entry
// still in its RFC 8767 window, the stale answer is served instead of
// the failure.
func (c *Cache) fill(ctx context.Context, sh *cacheShard, f *flight, key string, w ResponseWriter, r *Request, next Handler, stale *cacheEntry) (dnswire.Rcode, error) {
	rec := &recorder{w: nil}
	rcode, err := next.ServeDNS(ctx, rec, r)
	if stale != nil && (err != nil || !rec.written || failoverRcode(rec.msg.Rcode)) {
		return c.serveStale(sh, f, key, w, r, stale)
	}
	if f != nil {
		if err == nil && rec.written {
			f.msg = rec.msg
		}
		f.rcode, f.err = rcode, err
		sh.mu.Lock()
		delete(sh.flights, key)
		sh.mu.Unlock()
		close(f.done)
	}
	if err != nil || !rec.written {
		if rec.written {
			_ = w.WriteMsg(rec.msg)
		}
		return rcode, err
	}
	c.storeForRequest(r, sh, key, rec.msg)
	if err := w.WriteMsg(rec.msg); err != nil {
		return dnswire.RcodeServerFailure, err
	}
	return rec.msg.Rcode, nil
}

// storeForRequest caches msg under the key the *answer* dictates. For
// a non-ECS request that is simply the query key. For ECS, RFC 7871
// §7.3.1 keying: the response's scope prefix — 0 when the answer
// carried no ECS option (§7.2.2: such an answer is valid for all
// addresses), clamped to the disclosed source length — masks the query
// address into the entry key. A /16-scoped answer to a /24 query is
// therefore stored once under the /16 key, where every sibling /24
// finds it, instead of fragmenting into 256 identical entries.
func (c *Cache) storeForRequest(r *Request, qsh *cacheShard, qkey string, msg *dnswire.Message) {
	ecs, ok := r.Msg.ECS()
	if !ok {
		c.store(qsh, qkey, msg)
		return
	}
	_, famBits := ecsFamily(ecs)
	source := int(ecs.SourcePrefix)
	if source > famBits {
		source = famBits
	}
	scope := 0
	if recs, ok := msg.ECS(); ok {
		scope = int(recs.ScopePrefix)
	}
	if scope > source {
		scope = source
	}
	c.markScope(famBits, scope)
	if scope == source {
		// The scoped key equals the query key the caller already built.
		c.store(qsh, qkey, msg)
		return
	}
	var kb [cacheKeyBuf]byte
	key := appendECSKey(appendBaseKey(kb[:0], r), ecs, scope, famBits)
	c.store(c.shardOf(key), string(key), msg)
}

// discardWriter swallows a prefetch's response: the refreshed answer
// matters only through the store() side effect.
type discardWriter struct{}

// WriteMsg implements ResponseWriter.
func (discardWriter) WriteMsg(*dnswire.Message) error { return nil }

// spawnPrefetch launches the refresh-ahead re-resolve for a hit whose
// TTL has entered the prefetch window. The hit itself has already
// been served; the refresh runs on a background goroutine, bounded by
// the prefetch semaphore, deduplicated per stored generation (the
// entry's refreshing latch) and per key (the singleflight table, so a
// concurrent miss's exchange is shared rather than duplicated), and
// registered with Background so a graceful drain waits for it.
func (c *Cache) spawnPrefetch(ent *cacheEntry, sh *cacheShard, key string, r *Request, next Handler) {
	if !ent.refreshing.CompareAndSwap(false, true) {
		c.ctr.prefetchCoalesced.Inc()
		return
	}
	select {
	case c.prefetchSem <- struct{}{}:
	default:
		// Prefetch is an optimization: at the concurrency bound the
		// entry keeps serving until it actually expires, so shed the
		// refresh and let a later hit in the window retry.
		ent.refreshing.Store(false)
		c.ctr.prefetchDropped.Inc()
		return
	}
	release := func() { <-c.prefetchSem }
	var done func()
	if c.Background != nil {
		var ok bool
		if done, ok = c.Background.TrackBackground(); !ok {
			release() // draining: no new background resolves
			ent.refreshing.Store(false)
			return
		}
	}
	sh.mu.Lock()
	if _, busy := sh.flights[key]; busy {
		// A miss is already resolving this key; its store() refreshes
		// the entry without our help.
		sh.mu.Unlock()
		c.ctr.prefetchCoalesced.Inc()
		release()
		if done != nil {
			done()
		}
		return
	}
	f := &flight{done: make(chan struct{})}
	sh.flights[key] = f
	sh.mu.Unlock()
	c.ctr.prefetchIssued.Inc()
	// The request is cloned because the refresh outlives the serving
	// goroutine that owns r.
	req := &Request{Msg: r.Msg.Clone(), Client: r.Client, Transport: r.Transport}
	go func() {
		defer func() {
			release()
			if done != nil {
				done()
			}
		}()
		rcode, err := c.fill(context.Background(), sh, f, key, discardWriter{}, req, next, nil)
		if err != nil || failoverRcode(rcode) {
			// The refresh failed; unlatch so a later hit retries
			// (bounded by the semaphore if the upstream stays down).
			ent.refreshing.Store(false)
		}
	}()
}

// staleTTL resolves the serve-stale TTL clamp in seconds.
func (c *Cache) staleTTL() uint32 {
	ttl := c.StaleTTL
	if ttl <= 0 {
		ttl = 30 * time.Second
	}
	return uint32(ttl / time.Second)
}

// staleResponse builds the decoded RFC 8767 answer for ent: a clone
// restamped for r with every TTL clamped down to the stale lifetime —
// never the original TTL (long expired) and never zero (which clients
// treat as uncacheable and immediately re-ask).
func staleResponse(ent *cacheEntry, r *Request, ttl uint32) *dnswire.Message {
	msg := ent.msg.Clone()
	msg.ID = r.Msg.ID
	msg.RecursionDesired = r.Msg.RecursionDesired
	msg.CheckingDisabled = r.Msg.CheckingDisabled
	patchECSEcho(msg, r)
	for _, section := range [][]dnswire.RR{msg.Answers, msg.Authorities, msg.Additionals} {
		for _, rr := range section {
			if rr.Header().Type == dnswire.TypeOPT {
				continue
			}
			if rr.Header().TTL > ttl {
				rr.Header().TTL = ttl
			}
		}
	}
	return msg
}

// serveStale answers r from an expired entry after a failed refill,
// per RFC 8767: better a recently-true answer than a SERVFAIL, for a
// bounded window. Coalesced waiters receive the same stale answer.
// Like serveHit it has a wire fast path — copy the stored image,
// patch ID and flag bits, clamp the TTLs in place — and a decode
// fallback for EDNS requests and plain writers.
func (c *Cache) serveStale(sh *cacheShard, f *flight, key string, w ResponseWriter, r *Request, ent *cacheEntry) (dnswire.Rcode, error) {
	c.ctr.staleServes.Inc()
	ttl := c.staleTTL()
	var msg *dnswire.Message
	if f != nil {
		msg = staleResponse(ent, r, ttl)
		f.msg, f.rcode, f.err = msg, msg.Rcode, nil
		sh.mu.Lock()
		delete(sh.flights, key)
		sh.mu.Unlock()
		close(f.done)
	}
	if ww, ok := w.(WireWriter); ok && ent.wire != nil && len(ent.wire) <= ww.WireSize() {
		if _, hasOPT := r.Msg.OPT(); !hasOPT {
			buf := dnswire.GetBuffer()
			wire := buf[:copy(buf, ent.wire)]
			dnswire.PatchID(wire, r.Msg.ID)
			dnswire.PatchReplyBits(wire, r.Msg.RecursionDesired, r.Msg.CheckingDisabled)
			dnswire.ClampTTLs(wire, ent.ttlOffs, ttl)
			var err error
			if ow, ok := w.(OwnedWireWriter); ok {
				err = ow.WriteWireOwned(buf, len(wire))
			} else {
				err = ww.WriteWire(wire)
				dnswire.PutBuffer(buf)
			}
			if err != nil {
				return dnswire.RcodeServerFailure, err
			}
			return ent.rcode, nil
		}
	}
	if msg == nil {
		msg = staleResponse(ent, r, ttl)
	}
	if err := w.WriteMsg(msg); err != nil {
		return dnswire.RcodeServerFailure, err
	}
	return msg.Rcode, nil
}

// serveHit looks key up and, on a live entry, writes the response
// through w and returns a hit result. Only the map/LRU bookkeeping
// runs under the shard lock; serving runs outside it, which is safe
// because stored entries are immutable — store replaces whole entries
// and every reader gets its own copy (a pooled wire buffer on the fast
// path, a clone on the fallback).
//
// The fast path fires when w is a WireWriter, the entry has a packed
// form that fits the transport, and the request carries no OPT record
// (EDNS/ECS force the decode path, per the patching rules in
// DESIGN.md): the cached bytes are copied into a pooled buffer and the
// transaction ID, the RD/CD mirror bits, and the aged TTLs are patched
// in place. The result is byte-identical to decode-age-repack (the
// FuzzTTLPatch invariant) at none of the cost.
//
// Hits whose remaining TTL has entered the PrefetchFrac window carry
// the entry back in lookupResult.refresh; expired entries still inside
// the MaxStale window are kept in place (the refill's store replaces
// them) and returned in lookupResult.stale.
//
// count gates the miss-side counters (misses, expired): a scoped ECS
// lookup probes several keys for one logical lookup and counts its
// overall outcome in serveScoped instead. Hit counters are always
// credited here, on the shard that actually served.
func (c *Cache) serveHit(sh *cacheShard, key []byte, now time.Duration, w ResponseWriter, r *Request, count bool) lookupResult {
	sh.mu.Lock()
	el, ok := sh.items[string(key)] // no alloc: map lookup by converted key
	if !ok {
		if count {
			sh.misses++
		}
		sh.mu.Unlock()
		return lookupResult{}
	}
	ent := el.Value.(*cacheEntry)
	if now >= ent.expires {
		if c.MaxStale > 0 && now < ent.expires+c.MaxStale {
			// Keep the expired entry: it is the serve-stale fallback
			// if the refill fails, and store() replaces it if the
			// refill succeeds. Still a miss for accounting.
			if count {
				sh.expired++
			}
			sh.mu.Unlock()
			return lookupResult{stale: ent}
		}
		sh.lru.Remove(el)
		delete(sh.items, string(key))
		if count {
			sh.expired++
		}
		sh.mu.Unlock()
		return lookupResult{}
	}
	sh.lru.MoveToFront(el)
	sh.hits++
	if ent.msg.Rcode != dnswire.RcodeSuccess || len(ent.msg.Answers) == 0 {
		sh.negHits++
	}
	sh.mu.Unlock()
	res := lookupResult{hit: true}
	if frac := c.PrefetchFrac; frac > 0 {
		life := ent.expires - ent.stored
		if float64(ent.expires-now) <= frac*float64(life) {
			res.refresh = ent
		}
	}
	aged := uint32((now - ent.stored) / time.Second)

	if ww, ok := w.(WireWriter); ok && ent.wire != nil && len(ent.wire) <= ww.WireSize() {
		if _, hasOPT := r.Msg.OPT(); !hasOPT {
			buf := dnswire.GetBuffer()
			wire := buf[:copy(buf, ent.wire)]
			dnswire.PatchID(wire, r.Msg.ID)
			dnswire.PatchReplyBits(wire, r.Msg.RecursionDesired, r.Msg.CheckingDisabled)
			dnswire.AgeTTLs(wire, ent.ttlOffs, aged)
			// Hand the patched buffer itself to an owning writer (the
			// server's batched UDP writer) instead of paying one more
			// copy between the cache and the socket.
			var err error
			if ow, ok := w.(OwnedWireWriter); ok {
				err = ow.WriteWireOwned(buf, len(wire))
			} else {
				err = ww.WriteWire(wire)
				dnswire.PutBuffer(buf)
			}
			if err != nil {
				res.rcode, res.err = dnswire.RcodeServerFailure, err
				return res
			}
			res.rcode = ent.rcode
			return res
		}
	}

	msg := ent.msg.Clone()
	msg.ID = r.Msg.ID
	msg.RecursionDesired = r.Msg.RecursionDesired
	msg.CheckingDisabled = r.Msg.CheckingDisabled
	patchECSEcho(msg, r)
	// Age the TTLs by the time spent in cache.
	for _, section := range [][]dnswire.RR{msg.Answers, msg.Authorities, msg.Additionals} {
		for _, rr := range section {
			if rr.Header().Type == dnswire.TypeOPT {
				continue
			}
			if rr.Header().TTL > aged {
				rr.Header().TTL -= aged
			} else {
				rr.Header().TTL = 0
			}
		}
	}
	if err := w.WriteMsg(msg); err != nil {
		res.rcode, res.err = dnswire.RcodeServerFailure, err
		return res
	}
	res.rcode = msg.Rcode
	return res
}

// patchECSEcho rewrites the ECS echo of a cached response clone for
// the current query: Address, SourcePrefix, and Family mirror the
// query per RFC 7871 §7.2.1, while ScopePrefix keeps the stored
// answer's scope — the entry may have been stored by a sibling subnet
// whose masked address differs from this client's in the bits beyond
// the scope.
func patchECSEcho(msg *dnswire.Message, r *Request) {
	qecs, ok := r.Msg.ECS()
	if !ok {
		return
	}
	recs, ok := msg.ECS()
	if !ok {
		return
	}
	recs.Family = qecs.Family
	recs.Address = qecs.Address
	recs.SourcePrefix = qecs.SourcePrefix
}

// store caches msg under key for its effective TTL.
func (c *Cache) store(sh *cacheShard, key string, msg *dnswire.Message) {
	ttl := effectiveTTL(msg)
	if ttl <= 0 {
		return
	}
	if c.MinTTL > 0 && ttl < c.MinTTL {
		ttl = c.MinTTL
	}
	maxTTL := c.MaxTTL
	if maxTTL <= 0 {
		maxTTL = time.Hour
	}
	if ttl > maxTTL {
		ttl = maxTTL
	}
	now := c.Clock.Now()
	ent := &cacheEntry{key: key, msg: msg.Clone(), rcode: msg.Rcode, stored: now, expires: now + ttl}
	// Capture the packed form and its TTL offsets once, so every
	// subsequent hit can be served by patching bytes instead of
	// Clone+Pack. Entries that fail to pack simply lack a fast path.
	if wire, err := ent.msg.Pack(); err == nil {
		if offs, err := dnswire.TTLOffsets(wire); err == nil {
			ent.wire, ent.ttlOffs = wire, offs
		}
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if el, ok := sh.items[key]; ok {
		el.Value = ent
		sh.lru.MoveToFront(el)
		return
	}
	for sh.lru.Len() >= sh.max {
		oldest := sh.lru.Back()
		sh.lru.Remove(oldest)
		delete(sh.items, oldest.Value.(*cacheEntry).key)
		sh.evictions++
	}
	sh.items[key] = sh.lru.PushFront(ent)
}

// effectiveTTL derives the cacheable lifetime of a response: the
// minimum answer TTL for positive answers, or the SOA MinTTL rule of
// RFC 2308 for negative ones. Server failures are not cached.
func effectiveTTL(msg *dnswire.Message) time.Duration {
	switch msg.Rcode {
	case dnswire.RcodeSuccess, dnswire.RcodeNameError:
	default:
		return 0
	}
	if len(msg.Answers) > 0 {
		min := uint32(1<<32 - 1)
		for _, rr := range msg.Answers {
			if rr.Header().Type == dnswire.TypeOPT {
				continue
			}
			if rr.Header().TTL < min {
				min = rr.Header().TTL
			}
		}
		return time.Duration(min) * time.Second
	}
	for _, rr := range msg.Authorities {
		if soa, ok := rr.(*dnswire.SOA); ok {
			ttl := soa.Hdr.TTL
			if soa.MinTTL < ttl {
				ttl = soa.MinTTL
			}
			return time.Duration(ttl) * time.Second
		}
	}
	return 0
}

// String summarizes the cache for debugging.
func (c *Cache) String() string {
	s := c.Stats()
	return fmt.Sprintf("cache{shards=%d entries=%d hits=%d misses=%d coalesced=%d}",
		s.Shards, s.Entries, s.Hits, s.Misses, s.Coalesced)
}
