package dnsserver

import (
	"container/list"
	"context"
	"fmt"
	"sync"
	"time"

	"github.com/meccdn/meccdn/internal/dnswire"
	"github.com/meccdn/meccdn/internal/vclock"
)

// CacheStats is a snapshot of cache effectiveness counters.
//
// Every lookup is counted exactly once: as a Hit, a Miss (key absent),
// or an Expired (key present but past its TTL), so
// Hits+Misses+Expired equals the number of lookups.
type CacheStats struct {
	Hits, Misses uint64
	NegativeHits uint64
	// Expired counts lookups that found an entry already past its
	// TTL; such lookups are answered upstream like misses but are not
	// double-counted in Misses.
	Expired   uint64
	Entries   int
	Evictions uint64
	// Coalesced counts queries that piggybacked on another query's
	// in-flight upstream exchange instead of issuing their own
	// (singleflight miss coalescing).
	Coalesced uint64
	// Shards is the number of independent cache shards in use.
	Shards int
}

// Cache is a TTL-honouring response cache with RFC 2308 negative
// caching and LRU eviction. Responses are keyed by question and, when
// the upstream scoped its answer with ECS, by client subnet — which is
// precisely the cache-fragmentation cost of ECS the paper alludes to.
//
// The cache is sharded by key hash: each shard has its own mutex and
// LRU list, so concurrent queries for different names never contend
// on one lock. Concurrent misses for the *same* key are coalesced
// with a singleflight flight per key: one query becomes the leader
// and performs the upstream exchange, the rest wait and share its
// answer, so M concurrent misses cost one upstream query.
type Cache struct {
	// Clock supplies time; required. Use the simnet clock in
	// experiments and vclock.NewReal() on live servers.
	Clock vclock.Clock
	// MaxEntries bounds the cache across all shards; 0 means 4096.
	MaxEntries int
	// MinTTL/MaxTTL clamp stored lifetimes. Zero MaxTTL means 1h.
	MinTTL, MaxTTL time.Duration
	// Shards is the number of independent shards; 0 means 16. The
	// count is reduced automatically so every shard holds at least 64
	// entries, which keeps LRU eviction near-exact for small caches.
	Shards int
	// DisableCoalescing turns off singleflight miss coalescing; each
	// miss then performs its own upstream exchange.
	DisableCoalescing bool

	once   sync.Once
	shards []*cacheShard
}

// cacheShard is one independently locked slice of the key space.
type cacheShard struct {
	mu      sync.Mutex
	items   map[string]*list.Element
	lru     *list.List
	max     int
	stats   CacheStats
	flights map[string]*flight
}

// flight is one in-progress upstream exchange that concurrent misses
// for the same key wait on.
type flight struct {
	done  chan struct{}
	msg   *dnswire.Message // nil when the leader failed
	rcode dnswire.Rcode
	err   error
}

type cacheEntry struct {
	key     string
	msg     *dnswire.Message
	stored  time.Duration
	expires time.Duration
}

// NewCache returns a cache using clock.
func NewCache(clock vclock.Clock) *Cache {
	return &Cache{Clock: clock}
}

// init sizes and allocates the shard table. It runs on first use so
// MaxEntries/Shards can be set after NewCache.
func (c *Cache) init() {
	c.once.Do(func() {
		max := c.MaxEntries
		if max <= 0 {
			max = 4096
		}
		n := c.Shards
		if n <= 0 {
			n = 16
		}
		// Keep shards big enough that per-shard LRU approximates the
		// global LRU; tiny caches collapse to a single shard.
		const minPerShard = 64
		for n > 1 && max/n < minPerShard {
			n /= 2
		}
		perShard := max / n
		if max%n != 0 {
			perShard++
		}
		c.shards = make([]*cacheShard, n)
		for i := range c.shards {
			c.shards[i] = &cacheShard{
				items:   make(map[string]*list.Element),
				lru:     list.New(),
				max:     perShard,
				flights: make(map[string]*flight),
			}
		}
	})
}

// shard returns the shard owning key. The FNV-1a hash is inlined so
// the per-query path stays allocation-free.
func (c *Cache) shard(key string) *cacheShard {
	c.init()
	if len(c.shards) == 1 {
		return c.shards[0]
	}
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= prime32
	}
	return c.shards[h%uint32(len(c.shards))]
}

// Name implements Plugin.
func (c *Cache) Name() string { return "cache" }

// Stats returns a snapshot of the counters summed over all shards.
func (c *Cache) Stats() CacheStats {
	c.init()
	var s CacheStats
	for _, sh := range c.shards {
		sh.mu.Lock()
		s.Hits += sh.stats.Hits
		s.Misses += sh.stats.Misses
		s.NegativeHits += sh.stats.NegativeHits
		s.Expired += sh.stats.Expired
		s.Evictions += sh.stats.Evictions
		s.Coalesced += sh.stats.Coalesced
		s.Entries += sh.lru.Len()
		sh.mu.Unlock()
	}
	s.Shards = len(c.shards)
	return s
}

// Flush drops every entry. In-flight exchanges are unaffected.
func (c *Cache) Flush() {
	c.init()
	for _, sh := range c.shards {
		sh.mu.Lock()
		sh.items = make(map[string]*list.Element)
		sh.lru.Init()
		sh.mu.Unlock()
	}
}

func cacheKey(r *Request) string {
	key := r.Name() + "|" + r.Type().String()
	if ecs, ok := r.Msg.ECS(); ok {
		key += "|" + ecs.Prefix().String()
	}
	return key
}

// ServeDNS implements Plugin.
func (c *Cache) ServeDNS(ctx context.Context, w ResponseWriter, r *Request, next Handler) (dnswire.Rcode, error) {
	key := cacheKey(r)
	sh := c.shard(key)
	if msg, ok := sh.lookup(key, c.Clock.Now()); ok {
		msg.ID = r.Msg.ID
		if err := w.WriteMsg(msg); err != nil {
			return dnswire.RcodeServerFailure, err
		}
		return msg.Rcode, nil
	}
	if c.DisableCoalescing {
		return c.fill(ctx, sh, nil, key, w, r, next)
	}

	// Singleflight: join an in-flight exchange for this key, or
	// become the leader of a new one.
	sh.mu.Lock()
	if f, ok := sh.flights[key]; ok {
		sh.stats.Coalesced++
		sh.mu.Unlock()
		select {
		case <-f.done:
		case <-ctx.Done():
			return dnswire.RcodeServerFailure, ctx.Err()
		}
		if f.msg == nil {
			return f.rcode, f.err
		}
		msg := f.msg.Clone()
		msg.ID = r.Msg.ID
		if err := w.WriteMsg(msg); err != nil {
			return dnswire.RcodeServerFailure, err
		}
		return msg.Rcode, nil
	}
	f := &flight{done: make(chan struct{})}
	sh.flights[key] = f
	sh.mu.Unlock()
	return c.fill(ctx, sh, f, key, w, r, next)
}

// fill performs the upstream exchange for a miss, stores a cacheable
// answer, and (when f is non-nil) publishes the outcome to coalesced
// waiters.
func (c *Cache) fill(ctx context.Context, sh *cacheShard, f *flight, key string, w ResponseWriter, r *Request, next Handler) (dnswire.Rcode, error) {
	rec := &recorder{w: nil}
	rcode, err := next.ServeDNS(ctx, rec, r)
	if f != nil {
		if err == nil && rec.written {
			f.msg = rec.msg
		}
		f.rcode, f.err = rcode, err
		sh.mu.Lock()
		delete(sh.flights, key)
		sh.mu.Unlock()
		close(f.done)
	}
	if err != nil || !rec.written {
		if rec.written {
			_ = w.WriteMsg(rec.msg)
		}
		return rcode, err
	}
	c.store(sh, key, rec.msg)
	if err := w.WriteMsg(rec.msg); err != nil {
		return dnswire.RcodeServerFailure, err
	}
	return rec.msg.Rcode, nil
}

// lookup returns a TTL-adjusted clone on hit. Only the map/LRU
// bookkeeping runs under the shard lock; the clone and TTL aging run
// outside it, which is safe because stored messages are immutable —
// store replaces whole entries and every reader gets its own clone.
func (sh *cacheShard) lookup(key string, now time.Duration) (*dnswire.Message, bool) {
	sh.mu.Lock()
	el, ok := sh.items[key]
	if !ok {
		sh.stats.Misses++
		sh.mu.Unlock()
		return nil, false
	}
	ent := el.Value.(*cacheEntry)
	if now >= ent.expires {
		sh.lru.Remove(el)
		delete(sh.items, key)
		sh.stats.Expired++
		sh.mu.Unlock()
		return nil, false
	}
	sh.lru.MoveToFront(el)
	sh.stats.Hits++
	if ent.msg.Rcode != dnswire.RcodeSuccess || len(ent.msg.Answers) == 0 {
		sh.stats.NegativeHits++
	}
	sh.mu.Unlock()

	msg := ent.msg.Clone()
	// Age the TTLs by the time spent in cache.
	aged := uint32((now - ent.stored) / time.Second)
	for _, section := range [][]dnswire.RR{msg.Answers, msg.Authorities, msg.Additionals} {
		for _, rr := range section {
			if rr.Header().Type == dnswire.TypeOPT {
				continue
			}
			if rr.Header().TTL > aged {
				rr.Header().TTL -= aged
			} else {
				rr.Header().TTL = 0
			}
		}
	}
	return msg, true
}

// store caches msg under key for its effective TTL.
func (c *Cache) store(sh *cacheShard, key string, msg *dnswire.Message) {
	ttl := effectiveTTL(msg)
	if ttl <= 0 {
		return
	}
	if c.MinTTL > 0 && ttl < c.MinTTL {
		ttl = c.MinTTL
	}
	maxTTL := c.MaxTTL
	if maxTTL <= 0 {
		maxTTL = time.Hour
	}
	if ttl > maxTTL {
		ttl = maxTTL
	}
	now := c.Clock.Now()
	ent := &cacheEntry{key: key, msg: msg.Clone(), stored: now, expires: now + ttl}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if el, ok := sh.items[key]; ok {
		el.Value = ent
		sh.lru.MoveToFront(el)
		return
	}
	for sh.lru.Len() >= sh.max {
		oldest := sh.lru.Back()
		sh.lru.Remove(oldest)
		delete(sh.items, oldest.Value.(*cacheEntry).key)
		sh.stats.Evictions++
	}
	sh.items[key] = sh.lru.PushFront(ent)
}

// effectiveTTL derives the cacheable lifetime of a response: the
// minimum answer TTL for positive answers, or the SOA MinTTL rule of
// RFC 2308 for negative ones. Server failures are not cached.
func effectiveTTL(msg *dnswire.Message) time.Duration {
	switch msg.Rcode {
	case dnswire.RcodeSuccess, dnswire.RcodeNameError:
	default:
		return 0
	}
	if len(msg.Answers) > 0 {
		min := uint32(1<<32 - 1)
		for _, rr := range msg.Answers {
			if rr.Header().Type == dnswire.TypeOPT {
				continue
			}
			if rr.Header().TTL < min {
				min = rr.Header().TTL
			}
		}
		return time.Duration(min) * time.Second
	}
	for _, rr := range msg.Authorities {
		if soa, ok := rr.(*dnswire.SOA); ok {
			ttl := soa.Hdr.TTL
			if soa.MinTTL < ttl {
				ttl = soa.MinTTL
			}
			return time.Duration(ttl) * time.Second
		}
	}
	return 0
}

// String summarizes the cache for debugging.
func (c *Cache) String() string {
	s := c.Stats()
	return fmt.Sprintf("cache{shards=%d entries=%d hits=%d misses=%d coalesced=%d}",
		s.Shards, s.Entries, s.Hits, s.Misses, s.Coalesced)
}
