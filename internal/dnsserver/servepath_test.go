package dnsserver

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"net/netip"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/meccdn/meccdn/internal/dnswire"
	"github.com/meccdn/meccdn/internal/telemetry"
	"github.com/meccdn/meccdn/internal/vclock"
)

// wireSink is a ResponseWriter that records whichever path the cache
// chose: WriteWire captures patched wire bytes, WriteMsg the decoded
// message. It implements WireWriter and responseTracker like the
// server's socket writers.
type wireSink struct {
	size    int
	wire    []byte
	msg     *dnswire.Message
	written bool
}

func (s *wireSink) WireSize() int {
	if s.size > 0 {
		return s.size
	}
	return dnswire.MaxUDPSize
}
func (s *wireSink) Written() bool { return s.written }
func (s *wireSink) WriteWire(w []byte) error {
	s.wire = append([]byte(nil), w...)
	s.written = true
	return nil
}
func (s *wireSink) WriteMsg(m *dnswire.Message) error {
	s.msg = m
	s.written = true
	return nil
}

// TestWireHitMatchesDecodePath pins the tentpole invariant end to end
// at the plugin layer: a cache hit served by patching stored wire
// bytes must be byte-identical to the same hit served by the decode →
// age → repack fallback, including transaction ID, RD/CD mirroring,
// and TTL aging.
func TestWireHitMatchesDecodePath(t *testing.T) {
	zone := NewZone("wire.test.")
	if err := zone.AddA("www.wire.test.", 300, netip.MustParseAddr("192.0.2.31")); err != nil {
		t.Fatal(err)
	}
	clock := &vclock.Fixed{}
	cache := NewCache(clock)
	chain := Chain(cache, NewZonePlugin(zone))

	query := func(id uint16, rd bool) *Request {
		q := new(dnswire.Message)
		q.SetQuestion("www.wire.test.", dnswire.TypeA)
		q.ID = id
		q.RecursionDesired = rd
		return &Request{Msg: q, Client: netip.MustParseAddrPort("192.0.2.99:4242"), Transport: "udp"}
	}

	// Populate the cache, then age it.
	if resp := Resolve(context.Background(), chain, query(1, true)); resp.Rcode != dnswire.RcodeSuccess {
		t.Fatalf("warm query rcode = %v", resp.Rcode)
	}
	clock.Advance(10 * time.Second)

	// Hit through the wire fast path.
	fast := &wireSink{}
	rcode := ResolveTo(context.Background(), chain, fast, query(0xABCD, true))
	if rcode != dnswire.RcodeSuccess {
		t.Fatalf("wire hit rcode = %v", rcode)
	}
	if fast.wire == nil {
		t.Fatal("cache hit did not take the wire path (WriteMsg used instead)")
	}

	// Same hit through the decode fallback (a writer without WireWriter).
	slow := &recorder{}
	if _, err := chain.ServeDNS(context.Background(), slow, query(0xABCD, true)); err != nil {
		t.Fatal(err)
	}
	if !slow.written {
		t.Fatal("decode hit wrote nothing")
	}
	repacked, err := slow.msg.Pack()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fast.wire, repacked) {
		t.Fatalf("wire path differs from decode path:\n% x\n% x", fast.wire, repacked)
	}

	// The patched response carries the caller's ID and the aged TTL.
	var got dnswire.Message
	if err := got.Unpack(fast.wire); err != nil {
		t.Fatal(err)
	}
	if got.ID != 0xABCD {
		t.Errorf("wire hit ID = %#x, want 0xABCD", got.ID)
	}
	if len(got.Answers) != 1 || got.Answers[0].Header().TTL != 290 {
		t.Errorf("wire hit answers = %v, want one A with TTL 290", got.Answers)
	}
	if !got.RecursionDesired {
		t.Error("RD bit not mirrored from the request")
	}

	// An RD=false request must come back with RD clear even though the
	// stored response was built from an RD=true exchange.
	fast2 := &wireSink{}
	ResolveTo(context.Background(), chain, fast2, query(7, false))
	if fast2.wire == nil {
		t.Fatal("second hit did not take the wire path")
	}
	var got2 dnswire.Message
	if err := got2.Unpack(fast2.wire); err != nil {
		t.Fatal(err)
	}
	if got2.RecursionDesired {
		t.Error("RD=false request served with RD set")
	}

	// An EDNS-bearing request must fall back to the decode path.
	eq := query(9, true)
	eq.Msg.SetEDNS(1232)
	edns := &wireSink{size: dnswire.MaxMessageSize}
	ResolveTo(context.Background(), chain, edns, eq)
	if edns.wire != nil {
		t.Error("EDNS request served from the wire fast path; want decode fallback")
	}
	if edns.msg == nil {
		t.Error("EDNS request got no response at all")
	}

	if st := cache.Stats(); st.Hits < 3 {
		t.Errorf("cache hits = %d, want >= 3", st.Hits)
	}
}

// bufferGuard holds each request across a delay and verifies the
// message it was given has not been torn by packet-buffer reuse — the
// regression test for handing pooled read buffers to the handler.
type bufferGuard struct {
	torn atomic.Int64
}

func (g *bufferGuard) Name() string { return "bufferguard" }
func (g *bufferGuard) ServeDNS(ctx context.Context, w ResponseWriter, r *Request, next Handler) (dnswire.Rcode, error) {
	name := r.Msg.Question().Name
	id := r.Msg.ID
	time.Sleep(200 * time.Microsecond) // let other packets churn the buffer pool
	if r.Msg.Question().Name != name || r.Msg.ID != id {
		g.torn.Add(1)
	}
	return next.ServeDNS(ctx, w, r)
}

// TestHandlerNeverSeesReusedBuffer floods the server with concurrent
// distinct queries so pooled read buffers recycle constantly, and
// asserts every response still matches its own question — end to end
// (the client validates ID and question) and inside the handler (the
// bufferGuard plugin re-checks the request after a delay).
func TestHandlerNeverSeesReusedBuffer(t *testing.T) {
	zone := NewZone("pool.test.")
	const names = 32
	for i := 0; i < names; i++ {
		if err := zone.AddA(fmt.Sprintf("h%d.pool.test.", i), 60, netip.AddrFrom4([4]byte{192, 0, 2, byte(i)})); err != nil {
			t.Fatal(err)
		}
	}
	guard := &bufferGuard{}
	srv := &Server{
		Addr:       "127.0.0.1:0",
		Handler:    Chain(guard, NewZonePlugin(zone)),
		Workers:    4,
		QueueDepth: 256, // roomy: this test is about reuse, not shedding
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })

	const clients, iters = 8, 32
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cl := realClient()
			cl.Retries = 2
			for i := 0; i < iters; i++ {
				n := (c*iters + i) % names
				resp, err := cl.Query(context.Background(), srv.LocalAddr(), fmt.Sprintf("h%d.pool.test.", n), dnswire.TypeA)
				if err != nil {
					errs <- err
					return
				}
				a, ok := resp.Answers[0].(*dnswire.A)
				if !ok || a.Addr != netip.AddrFrom4([4]byte{192, 0, 2, byte(n)}) {
					errs <- fmt.Errorf("h%d got answer %v", n, resp.Answers[0])
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if n := guard.torn.Load(); n != 0 {
		t.Errorf("%d requests observed a torn/reused buffer", n)
	}
	if n := srv.DroppedPackets(); n != 0 {
		t.Errorf("%d packets shed with a roomy queue", n)
	}
}

// TestGracefulDrainWaitsForQueued pins the worker-pool drain contract:
// packets already accepted into the ingress queue when Shutdown begins
// are still served, because track() runs before enqueue.
func TestGracefulDrainWaitsForQueued(t *testing.T) {
	z := NewZone("drain.test.")
	if err := z.AddA("www.drain.test.", 60, netip.MustParseAddr("192.0.2.77")); err != nil {
		t.Fatal(err)
	}
	srv := &Server{
		Addr:       "127.0.0.1:0",
		Handler:    Chain(&slowPlugin{delay: 120 * time.Millisecond}, NewZonePlugin(z)),
		Workers:    1, // serialize: later queries sit in the queue
		QueueDepth: 8,
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}

	const queries = 3
	results := make(chan error, queries)
	for i := 0; i < queries; i++ {
		go func() {
			c := realClient()
			c.Timeout = 3 * time.Second
			resp, err := c.Query(context.Background(), srv.LocalAddr(), "www.drain.test.", dnswire.TypeA)
			if err == nil && len(resp.Answers) != 1 {
				err = fmt.Errorf("answers = %v", resp.Answers)
			}
			results <- err
		}()
		time.Sleep(10 * time.Millisecond)
	}

	// First query is in the worker, the rest are queued. Drain.
	time.Sleep(30 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("drain failed: %v", err)
	}
	for i := 0; i < queries; i++ {
		if err := <-results; err != nil {
			t.Errorf("queued query lost during drain: %v", err)
		}
	}
}

// TestUDPQueueOverflowSheds pins the overflow contract: with one busy
// worker and a one-slot queue, a burst must be shed (counted on the
// server's drop counter and the LoadShed family), never queued without
// bound.
func TestUDPQueueOverflowSheds(t *testing.T) {
	z := NewZone("flood.test.")
	if err := z.AddA("www.flood.test.", 60, netip.MustParseAddr("192.0.2.1")); err != nil {
		t.Fatal(err)
	}
	shed := &LoadShed{}
	srv := &Server{
		Addr:       "127.0.0.1:0",
		Handler:    Chain(&slowPlugin{delay: 100 * time.Millisecond}, NewZonePlugin(z)),
		Workers:    1,
		QueueDepth: 1,
		Batch:      1, // unbatched: recvmmsg would coalesce the burst into one queue slot
		Shed:       shed,
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })

	q := new(dnswire.Message)
	q.SetQuestion("www.flood.test.", dnswire.TypeA)
	q.ID = 99
	wire, err := q.Pack()
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("udp", srv.LocalAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	for i := 0; i < 30; i++ {
		if _, err := conn.Write(wire); err != nil {
			t.Fatal(err)
		}
	}

	waitFor(t, 2*time.Second, func() bool { return srv.DroppedPackets() > 0 })
	dropped := srv.DroppedPackets()
	if s, _ := shed.Shed(); s != dropped {
		t.Errorf("loadshed shed counter = %d, server dropped = %d; want equal", s, dropped)
	}

	// The serve-loop families expose the drops and the pool gauges.
	reg := telemetry.NewRegistry()
	reg.MustRegister(srv.Collectors()...)
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	for _, family := range []string{
		"meccdn_dns_udp_dropped_total", "meccdn_dns_udp_workers_busy", "meccdn_dns_udp_queue_depth",
	} {
		if !strings.Contains(b.String(), family) {
			t.Errorf("exposition missing %s", family)
		}
	}
}
