package trace

import (
	"testing"
	"time"

	"github.com/meccdn/meccdn/internal/simnet"
)

// fixture: ue—pgw—dns with constant delays so the breakdown is exact.
func fixture(t *testing.T) (*simnet.Network, *Tap) {
	t.Helper()
	n := simnet.New(1)
	n.AddNode("ue")
	n.AddNode("pgw")
	n.AddNode("dns")
	n.AddLink("ue", "pgw", simnet.Constant(10*time.Millisecond), 0)
	n.AddLink("pgw", "dns", simnet.Constant(3*time.Millisecond), 0)
	n.Node("dns").SetHandler(simnet.HandlerFunc(func(ctx *simnet.Ctx, dg simnet.Datagram) {
		ctx.Reply(dg.Payload, 2*time.Millisecond)
	}))
	return n, Install(n, "pgw")
}

func TestBreakdownExact(t *testing.T) {
	n, tap := fixture(t)
	tap.Reset()
	start := n.Now()
	_, _, err := n.Node("ue").Endpoint().Exchange(n.Node("dns").Addr, []byte("q"), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	b := tap.Measure(start, n.Now())
	if !b.Crossed {
		t.Fatal("exchange did not cross the tap")
	}
	// Total = 10+3+2+3+10 = 28ms; wireless = 20ms; resolver = 8ms.
	if b.Total != 28*time.Millisecond {
		t.Errorf("total = %v", b.Total)
	}
	if b.Wireless != 20*time.Millisecond {
		t.Errorf("wireless = %v", b.Wireless)
	}
	if b.Resolver != 8*time.Millisecond {
		t.Errorf("resolver = %v", b.Resolver)
	}
	if b.Wireless+b.Resolver != b.Total {
		t.Error("breakdown does not sum to total")
	}
}

func TestBreakdownNotCrossed(t *testing.T) {
	n := simnet.New(2)
	n.AddNode("ue")
	n.AddNode("local")
	n.AddNode("pgw") // tap node off-path
	n.AddLink("ue", "local", simnet.Constant(5*time.Millisecond), 0)
	n.AddLink("ue", "pgw", simnet.Constant(time.Millisecond), 0)
	n.Node("local").SetHandler(simnet.HandlerFunc(func(ctx *simnet.Ctx, dg simnet.Datagram) {
		ctx.Reply(dg.Payload, 0)
	}))
	tap := Install(n, "pgw")
	start := n.Now()
	if _, _, err := n.Node("ue").Endpoint().Exchange(n.Node("local").Addr, []byte("q"), time.Second); err != nil {
		t.Fatal(err)
	}
	b := tap.Measure(start, n.Now())
	if b.Crossed {
		t.Error("off-path exchange marked as crossed")
	}
	if b.Wireless != b.Total || b.Resolver != 0 {
		t.Errorf("breakdown = %+v", b)
	}
}

func TestResetBetweenExchanges(t *testing.T) {
	n, tap := fixture(t)
	ep := n.Node("ue").Endpoint()
	if _, _, err := ep.Exchange(n.Node("dns").Addr, []byte("1"), time.Second); err != nil {
		t.Fatal(err)
	}
	tap.Reset()
	start := n.Now()
	if _, _, err := ep.Exchange(n.Node("dns").Addr, []byte("2"), time.Second); err != nil {
		t.Fatal(err)
	}
	b := tap.Measure(start, n.Now())
	if !b.Crossed || b.Resolver != 8*time.Millisecond {
		t.Errorf("post-reset breakdown = %+v", b)
	}
	if got := len(tap.Events()); got != 2 {
		t.Errorf("events after reset = %d, want 2", got)
	}
}
