// Package trace is the simulated analogue of running tcpdump at the
// P-GW: it taps a simnet node, records every datagram transit, and
// decomposes a request/response exchange into the paper's Figure 5
// breakdown — (i) wireless time between the UE and the P-GW versus
// (ii) time spent beyond the P-GW in resolvers and upstream links.
package trace

import (
	"sync"
	"time"

	"github.com/meccdn/meccdn/internal/simnet"
)

// Breakdown splits one exchange's round-trip time.
type Breakdown struct {
	// Total is the client-observed round-trip time.
	Total time.Duration
	// Wireless is the UE↔tap portion (both directions).
	Wireless time.Duration
	// Resolver is the beyond-tap portion: resolver processing plus
	// upstream network time.
	Resolver time.Duration
	// Crossed reports whether the exchange transited the tap at all;
	// when false, Resolver is zero and Wireless equals Total.
	Crossed bool
}

// Tap records datagram transits at one node.
type Tap struct {
	mu     sync.Mutex
	events []simnet.HopEvent
}

// Install attaches a tap to the named node.
func Install(net *simnet.Network, node string) *Tap {
	t := &Tap{}
	net.Node(node).Tap(func(ev simnet.HopEvent) {
		t.mu.Lock()
		t.events = append(t.events, ev)
		t.mu.Unlock()
	})
	return t
}

// Reset drops recorded events; call between measured exchanges.
func (t *Tap) Reset() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.events = t.events[:0]
}

// Events returns a copy of the recorded events.
func (t *Tap) Events() []simnet.HopEvent {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]simnet.HopEvent(nil), t.events...)
}

// Measure decomposes one exchange that started at virtual time start
// and completed at end. It uses the first recorded outbound transit
// (the query crossing the tap) and the last inbound one (the reply
// crossing back). Run exactly one exchange between Reset and Measure.
func (t *Tap) Measure(start, end time.Duration) Breakdown {
	t.mu.Lock()
	defer t.mu.Unlock()
	b := Breakdown{Total: end - start}
	var tQuery, tReply time.Duration = -1, -1
	for _, ev := range t.events {
		if ev.Kind == simnet.HopDrop {
			continue
		}
		if ev.Time < start || ev.Time > end {
			continue
		}
		if tQuery < 0 {
			tQuery = ev.Time
		} else {
			tReply = ev.Time
		}
	}
	if tQuery < 0 || tReply < 0 {
		b.Wireless = b.Total
		return b
	}
	b.Crossed = true
	b.Wireless = (tQuery - start) + (end - tReply)
	b.Resolver = tReply - tQuery
	return b
}
