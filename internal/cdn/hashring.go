package cdn

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
)

// HashRing is a consistent-hash ring assigning content names to cache
// servers, the placement scheme CDNs use so that adding or removing a
// server reshuffles only ~1/N of the content (contrast with modulo
// placement, benchmarked in the ablations).
type HashRing struct {
	// Replicas is the number of virtual nodes per server; higher
	// values smooth the distribution. Zero means 256.
	Replicas int

	mu      sync.RWMutex
	ring    []ringPoint
	members map[string]bool
}

type ringPoint struct {
	hash   uint64
	member string
}

// NewHashRing returns an empty ring.
func NewHashRing() *HashRing {
	return &HashRing{members: make(map[string]bool)}
}

func hash64(s string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s))
	return h.Sum64()
}

// Add inserts a member (idempotent).
func (r *HashRing) Add(member string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.members[member] {
		return
	}
	r.members[member] = true
	replicas := r.Replicas
	if replicas <= 0 {
		replicas = 256
	}
	for i := 0; i < replicas; i++ {
		r.ring = append(r.ring, ringPoint{
			hash:   hash64(fmt.Sprintf("%s#%d", member, i)),
			member: member,
		})
	}
	sort.Slice(r.ring, func(i, j int) bool { return r.ring[i].hash < r.ring[j].hash })
}

// Remove deletes a member and all its virtual nodes.
func (r *HashRing) Remove(member string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.members[member] {
		return
	}
	delete(r.members, member)
	kept := r.ring[:0]
	for _, p := range r.ring {
		if p.member != member {
			kept = append(kept, p)
		}
	}
	r.ring = kept
}

// Owner returns the member owning key, or "" on an empty ring.
func (r *HashRing) Owner(key string) string {
	owners := r.Owners(key, 1)
	if len(owners) == 0 {
		return ""
	}
	return owners[0]
}

// Owners returns up to n distinct members responsible for key, in
// ring order: the primary first, then the replicas that take over if
// predecessors fail.
func (r *HashRing) Owners(key string, n int) []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.ring) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.members) {
		n = len(r.members)
	}
	h := hash64(key)
	i := sort.Search(len(r.ring), func(i int) bool { return r.ring[i].hash >= h })
	var out []string
	seen := make(map[string]bool, n)
	for len(out) < n {
		p := r.ring[i%len(r.ring)]
		if !seen[p.member] {
			seen[p.member] = true
			out = append(out, p.member)
		}
		i++
	}
	return out
}

// Members returns the current members, sorted.
func (r *HashRing) Members() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.members))
	for m := range r.members {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}

// ModuloPlacement is the naive alternative placement: key → member by
// hash modulo member count over a fixed sorted member list. It exists
// as the ablation baseline for BenchmarkPlacement-style comparisons.
type ModuloPlacement struct {
	mu      sync.RWMutex
	members []string
}

// Add inserts a member, keeping the list sorted.
func (m *ModuloPlacement) Add(member string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, existing := range m.members {
		if existing == member {
			return
		}
	}
	m.members = append(m.members, member)
	sort.Strings(m.members)
}

// Remove deletes a member.
func (m *ModuloPlacement) Remove(member string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	kept := m.members[:0]
	for _, existing := range m.members {
		if existing != member {
			kept = append(kept, existing)
		}
	}
	m.members = kept
}

// Owner returns the member for key, or "".
func (m *ModuloPlacement) Owner(key string) string {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if len(m.members) == 0 {
		return ""
	}
	return m.members[hash64(key)%uint64(len(m.members))]
}
