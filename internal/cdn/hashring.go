package cdn

import (
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// FNV-1a, inlined: the query path hashes every content key and must
// not allocate a hasher object per call (hash/fnv's New64a escapes).
const (
	fnvOffset64 uint64 = 14695981039346656037
	fnvPrime64  uint64 = 1099511628211
)

// fmix64 is MurmurHash3's 64-bit finalizer. Raw FNV-1a has weak
// high-bit avalanche on inputs that differ only in a short suffix —
// exactly the shape of the "<member>#<i>" virtual-node keys — which
// left each member's 256 virtual nodes clumped in long same-member
// runs on the sorted ring (runs of 150+ observed with 16 members).
// Plain lookups merely got a lumpy key split from that; bounded
// lookups were crippled, because a spill off a saturated member had
// to walk its whole clump before reaching anyone else. Finalizing
// restores uniform interleaving, so the expected spill walk is
// O(members / members-under-cap) virtual nodes.
func fmix64(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

func hash64(s string) uint64 {
	h := fnvOffset64
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime64
	}
	return fmix64(h)
}

func hash64Bytes(b []byte) uint64 {
	h := fnvOffset64
	for i := 0; i < len(b); i++ {
		h ^= uint64(b[i])
		h *= fnvPrime64
	}
	return fmix64(h)
}

// loadCell is one member's decayed load counter. Cells are allocated
// once per member and shared by every ring revision that includes the
// member, so counts survive Add/Remove rebuilds; the padding keeps
// two members' hot counters off one cache line.
type loadCell struct {
	n atomic.Int64
	_ [56]byte
}

// ringState is one immutable revision of the ring: the sorted virtual
// node points, the sorted member list, and the members' load cells.
// Published via atomic pointer so the per-query owner walk never
// locks; the slices in a published state are never written again
// (the cells' atomic counters are the one deliberately shared part).
type ringState struct {
	ring    []ringPoint
	members []string    // sorted
	cells   []*loadCell // parallel to members
}

var emptyRingState = &ringState{}

// index returns member's position in the sorted member list, or -1.
func (s *ringState) index(member string) int {
	i := sort.SearchStrings(s.members, member)
	if i < len(s.members) && s.members[i] == member {
		return i
	}
	return -1
}

// totalLoad sums the members' load cells.
func (s *ringState) totalLoad() int64 {
	var total int64
	for _, c := range s.cells {
		total += c.n.Load()
	}
	return total
}

// capacity is the bounded-load cap: ⌈c·(total+1)/members⌉, the
// "consistent hashing with bounded loads" bound. The +1 counts the
// assignment being placed, so a lookup on an idle ring always has
// capacity, and with c > 1 at least one member is always under the
// cap (all members at the cap would need total ≥ c·(total+1)).
func (s *ringState) capacity(c float64, total int64) int64 {
	return int64(math.Ceil(c * float64(total+1) / float64(len(s.members))))
}

// HashRing is a consistent-hash ring assigning content names to cache
// servers, the placement scheme CDNs use so that adding or removing a
// server reshuffles only ~1/N of the content (contrast with modulo
// placement, benchmarked in the ablations).
//
// With Bounded set the ring implements consistent hashing with
// bounded loads: each member is capped at LoadFactor× the mean load,
// and a lookup whose ring owner is saturated spills deterministically
// to the next owner with spare capacity. Load is whatever the caller
// records via RecordLoad — the C-DNS router records one unit per
// routing decision — and is decayed over time (DecayLoads), so the
// cap tracks a recent-traffic window rather than all of history.
type HashRing struct {
	// Replicas is the number of virtual nodes per server; higher
	// values smooth the distribution. Zero means 256.
	Replicas int
	// Bounded switches Owners/OwnersAppend to the bounded-load walk.
	Bounded bool
	// LoadFactor is the bounded-load factor c: no member may hold
	// more than ⌈c · mean load⌉. Values ≤ 1 (including zero) mean
	// 1.25. Read when Bounded is set.
	LoadFactor float64

	state atomic.Pointer[ringState]
	// wmu serializes Add/Remove; Owners/Members never take it.
	wmu sync.Mutex
	// cells maps every member ever seen to its load cell, so a member
	// that leaves and rejoins (health flap) keeps its decayed load.
	// Writer-owned: only Add/Remove under wmu touch the map.
	cells map[string]*loadCell

	// total mirrors the sum of the current members' load cells so the
	// bounded lookup reads one counter instead of summing every cell.
	// RecordLoad bumps it; rebuilds and decays recompute it. Slightly
	// stale under concurrency, like the cells themselves.
	total atomic.Int64

	// spills counts lookups whose hash-primary owner was saturated;
	// capRejections counts every saturated virtual node skipped during
	// spill walks (one lookup can reject several).
	spills        atomic.Uint64
	capRejections atomic.Uint64
}

type ringPoint struct {
	hash uint64
	idx  int32 // into ringState.members / cells
}

// NewHashRing returns an empty ring.
func NewHashRing() *HashRing {
	return &HashRing{}
}

// snapshot returns the current ring revision, never nil.
func (r *HashRing) snapshot() *ringState {
	if s := r.state.Load(); s != nil {
		return s
	}
	return emptyRingState
}

// loadFactor returns the effective bounded-load factor.
func (r *HashRing) loadFactor() float64 {
	if c := r.LoadFactor; c > 1 {
		return c
	}
	return 1.25
}

// rebuild publishes a new revision over members (will be sorted in
// place). Callers must hold r.wmu. Existing members keep their load
// cells across the rebuild.
func (r *HashRing) rebuild(members []string) {
	sort.Strings(members)
	if r.cells == nil {
		r.cells = make(map[string]*loadCell)
	}
	cells := make([]*loadCell, len(members))
	for i, m := range members {
		cell := r.cells[m]
		if cell == nil {
			cell = &loadCell{}
			r.cells[m] = cell
		}
		cells[i] = cell
	}
	replicas := r.Replicas
	if replicas <= 0 {
		replicas = 256
	}
	ring := make([]ringPoint, 0, len(members)*replicas)
	var scratch [64]byte // stack scratch for "<member>#<i>" virtual-node keys
	for i, m := range members {
		buf := scratch[:0]
		if len(m)+12 > len(scratch) {
			buf = make([]byte, 0, len(m)+12)
		}
		buf = append(buf, m...)
		buf = append(buf, '#')
		base := len(buf)
		for v := 0; v < replicas; v++ {
			buf = strconv.AppendInt(buf[:base], int64(v), 10)
			ring = append(ring, ringPoint{hash: hash64Bytes(buf), idx: int32(i)})
		}
	}
	sort.Slice(ring, func(i, j int) bool { return ring[i].hash < ring[j].hash })
	next := &ringState{ring: ring, members: members, cells: cells}
	r.state.Store(next)
	r.total.Store(next.totalLoad())
}

// Add inserts a member (idempotent).
func (r *HashRing) Add(member string) {
	r.wmu.Lock()
	defer r.wmu.Unlock()
	old := r.snapshot()
	if old.index(member) >= 0 {
		return
	}
	members := make([]string, 0, len(old.members)+1)
	members = append(members, old.members...)
	members = append(members, member)
	r.rebuild(members)
}

// Remove deletes a member and all its virtual nodes. Its load cell is
// retained so a flapping member re-enters with its decayed load
// rather than appearing idle; the remaining members' cap relaxes
// immediately since the mean is computed over current members only.
func (r *HashRing) Remove(member string) {
	r.wmu.Lock()
	defer r.wmu.Unlock()
	old := r.snapshot()
	if old.index(member) < 0 {
		return
	}
	members := make([]string, 0, len(old.members))
	for _, m := range old.members {
		if m != member {
			members = append(members, m)
		}
	}
	r.rebuild(members)
}

// Owner returns the member owning key, or "" on an empty ring.
func (r *HashRing) Owner(key string) string {
	var buf [1]string
	owners := r.OwnersAppend(buf[:0], key, 1)
	if len(owners) == 0 {
		return ""
	}
	return owners[0]
}

// Owners returns up to n distinct members responsible for key, in
// ring order: the primary first, then the replicas that take over if
// predecessors fail. Lock-free: one snapshot load per call. Allocates
// the result slice; the hot path uses OwnersAppend.
func (r *HashRing) Owners(key string, n int) []string {
	s := r.snapshot()
	if len(s.ring) == 0 || n <= 0 {
		return nil
	}
	if n > len(s.members) {
		n = len(s.members)
	}
	return r.ownersAppend(s, make([]string, 0, n), key, n)
}

// OwnersAppend appends up to n distinct owners for key to dst and
// returns the extended slice — the allocation-free form of Owners:
// with a caller-provided backing array (and n within smallOwners) it
// performs zero heap allocations. With Bounded set the first owner is
// the first member along the ring with spare capacity; the remaining
// candidates follow in ring-walk order.
func (r *HashRing) OwnersAppend(dst []string, key string, n int) []string {
	s := r.snapshot()
	if len(s.ring) == 0 || n <= 0 {
		return dst
	}
	if n > len(s.members) {
		n = len(s.members)
	}
	return r.ownersAppend(s, dst, key, n)
}

// smallOwners bounds the stack-array dedupe: candidate counts the
// router asks for (Replicas, default 2) stay far below it. Walks
// needing more distinct members than this fall back to a heap map.
const smallOwners = 16

// ownersAppend is the shared owner walk over one snapshot. Callers
// guarantee a non-empty ring and 1 ≤ n ≤ len(s.members).
func (r *HashRing) ownersAppend(s *ringState, dst []string, key string, n int) []string {
	h := hash64(key)
	i := sort.Search(len(s.ring), func(i int) bool { return s.ring[i].hash >= h })
	nm := len(s.members)

	// next yields distinct member indices in ring-walk order. The
	// dedupe set is a stack array scanned linearly for the usual small
	// member counts; only rings wider than smallOwners pay for a map.
	var seenArr [smallOwners]int32
	seenSmall := seenArr[:0]
	var seenBig map[int32]bool
	if nm > smallOwners {
		seenBig = make(map[int32]bool, nm)
	}
	found := 0
	next := func() int32 {
		for {
			p := s.ring[i%len(s.ring)]
			i++
			if seenBig != nil {
				if seenBig[p.idx] {
					continue
				}
				seenBig[p.idx] = true
			} else {
				dup := false
				for _, idx := range seenSmall {
					if idx == p.idx {
						dup = true
						break
					}
				}
				if dup {
					continue
				}
				seenSmall = append(seenSmall, p.idx)
			}
			found++
			return p.idx
		}
	}

	if !r.Bounded {
		for k := 0; k < n; k++ {
			dst = append(dst, s.members[next()])
		}
		return dst
	}

	// Bounded-load spill: the owner is the member of the first ring
	// point past the key's hash whose load (plus this assignment)
	// fits under the cap. The spill search walks raw virtual nodes —
	// no dedupe — because re-checking a saturated member via another
	// of its virtual nodes is one atomic load, far cheaper than
	// distinct-member tracking on every lookup; with c > 1 some
	// member is always under the cap, so the walk terminates (the
	// len(ring) bound only backstops a torn concurrent total).
	capLoad := s.capacity(r.loadFactor(), r.total.Load())
	owner := s.ring[i%len(s.ring)].idx
	spilled := false
	rejects := uint64(0)
	for steps := 0; steps < len(s.ring); steps++ {
		idx := s.ring[(i+steps)%len(s.ring)].idx
		if s.cells[idx].n.Load() < capLoad {
			owner = idx
			spilled = steps > 0
			break
		}
		rejects++
	}
	if rejects > 0 {
		r.capRejections.Add(rejects)
	}
	if spilled {
		r.spills.Add(1)
	}
	dst = append(dst, s.members[owner])
	// The failover candidates after the owner are the distinct
	// members in ring order from the key's hash point, skipping the
	// owner — the saturated members the walk spilled past come first,
	// as they remain the nearest replicas on the ring.
	for emitted := 1; emitted < n && found < nm; {
		idx := next()
		if idx == owner {
			continue
		}
		dst = append(dst, s.members[idx])
		emitted++
	}
	return dst
}

// RecordLoad adds one unit of load to member's cell. Lock-free; a
// member not in the current revision is ignored (its cell may still
// exist writer-side, but unrouted members accrue no load).
func (r *HashRing) RecordLoad(member string) {
	s := r.snapshot()
	if i := s.index(member); i >= 0 {
		s.cells[i].n.Add(1)
		r.total.Add(1)
	}
}

// DecayLoads multiplies every member's load by factor (clamped to
// [0,1]), implementing the time decay that turns the counters into a
// recent-load window. Callers pick the cadence: the health Checker's
// probe sweep in dnsd, the per-tick loop in the X8 experiment. Every
// cell ever seen decays — including members currently off the ring,
// so a flapping member's load fades while it is out. Concurrent
// RecordLoads may interleave with the decay; the counters are
// deliberately approximate.
func (r *HashRing) DecayLoads(factor float64) {
	if factor < 0 {
		factor = 0
	}
	if factor > 1 {
		factor = 1
	}
	r.wmu.Lock()
	defer r.wmu.Unlock()
	for _, c := range r.cells {
		c.n.Store(int64(float64(c.n.Load()) * factor))
	}
	r.total.Store(r.snapshot().totalLoad())
}

// Load returns member's current load count (0 for unknown members).
func (r *HashRing) Load(member string) int64 {
	s := r.snapshot()
	if i := s.index(member); i >= 0 {
		return s.cells[i].n.Load()
	}
	return 0
}

// LoadStats returns the max and mean member load of the current
// revision. Mean is 0 on an empty ring.
func (r *HashRing) LoadStats() (max int64, mean float64) {
	s := r.snapshot()
	if len(s.members) == 0 {
		return 0, 0
	}
	var total int64
	for _, c := range s.cells {
		n := c.n.Load()
		total += n
		if n > max {
			max = n
		}
	}
	return max, float64(total) / float64(len(s.members))
}

// LoadSpread returns max/mean member load — 1.0 is perfectly even; a
// bounded ring keeps this ≤ LoadFactor (plus rounding). Returns 0
// when the ring is empty or idle.
func (r *HashRing) LoadSpread() float64 {
	max, mean := r.LoadStats()
	if mean <= 0 {
		return 0
	}
	return float64(max) / mean
}

// Spills returns the number of lookups that spilled past a saturated
// hash-primary owner.
func (r *HashRing) Spills() uint64 { return r.spills.Load() }

// CapRejections returns the number of saturated members skipped
// during spill walks.
func (r *HashRing) CapRejections() uint64 { return r.capRejections.Load() }

// NumMembers returns the current member count.
func (r *HashRing) NumMembers() int { return len(r.snapshot().members) }

// Members returns the current members, sorted.
func (r *HashRing) Members() []string {
	s := r.snapshot()
	out := make([]string, len(s.members))
	copy(out, s.members)
	return out
}

// ModuloPlacement is the naive alternative placement: key → member by
// hash modulo member count over a fixed sorted member list. It exists
// as the ablation baseline for BenchmarkPlacement-style comparisons,
// and follows the same atomic-snapshot pattern as the ring so the
// ablation's read path is lock-free too.
type ModuloPlacement struct {
	// members is the immutable sorted member list, published via
	// atomic pointer; wmu serializes writers only.
	members atomic.Pointer[[]string]
	wmu     sync.Mutex
}

// list returns the current member list, never nil.
func (m *ModuloPlacement) list() []string {
	if p := m.members.Load(); p != nil {
		return *p
	}
	return nil
}

// Add inserts a member, keeping the list sorted.
func (m *ModuloPlacement) Add(member string) {
	m.wmu.Lock()
	defer m.wmu.Unlock()
	old := m.list()
	for _, existing := range old {
		if existing == member {
			return
		}
	}
	next := make([]string, 0, len(old)+1)
	next = append(next, old...)
	next = append(next, member)
	sort.Strings(next)
	m.members.Store(&next)
}

// Remove deletes a member.
func (m *ModuloPlacement) Remove(member string) {
	m.wmu.Lock()
	defer m.wmu.Unlock()
	old := m.list()
	next := make([]string, 0, len(old))
	for _, existing := range old {
		if existing != member {
			next = append(next, existing)
		}
	}
	m.members.Store(&next)
}

// Owner returns the member for key, or "". Lock-free: one snapshot
// load.
func (m *ModuloPlacement) Owner(key string) string {
	members := m.list()
	if len(members) == 0 {
		return ""
	}
	return members[hash64(key)%uint64(len(members))]
}
