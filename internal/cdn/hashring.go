package cdn

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"sync/atomic"
)

// ringState is one immutable revision of the ring: the sorted virtual
// node points and the member set. Published via atomic pointer so the
// per-query Owners walk never locks.
type ringState struct {
	ring    []ringPoint
	members map[string]bool
}

var emptyRingState = &ringState{}

// HashRing is a consistent-hash ring assigning content names to cache
// servers, the placement scheme CDNs use so that adding or removing a
// server reshuffles only ~1/N of the content (contrast with modulo
// placement, benchmarked in the ablations).
type HashRing struct {
	// Replicas is the number of virtual nodes per server; higher
	// values smooth the distribution. Zero means 256.
	Replicas int

	state atomic.Pointer[ringState]
	// wmu serializes Add/Remove; Owners/Members never take it.
	wmu sync.Mutex
}

type ringPoint struct {
	hash   uint64
	member string
}

// NewHashRing returns an empty ring.
func NewHashRing() *HashRing {
	return &HashRing{}
}

// snapshot returns the current ring revision, never nil.
func (r *HashRing) snapshot() *ringState {
	if s := r.state.Load(); s != nil {
		return s
	}
	return emptyRingState
}

func hash64(s string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s))
	return h.Sum64()
}

// Add inserts a member (idempotent).
func (r *HashRing) Add(member string) {
	r.wmu.Lock()
	defer r.wmu.Unlock()
	old := r.snapshot()
	if old.members[member] {
		return
	}
	replicas := r.Replicas
	if replicas <= 0 {
		replicas = 256
	}
	next := &ringState{
		ring:    make([]ringPoint, 0, len(old.ring)+replicas),
		members: make(map[string]bool, len(old.members)+1),
	}
	next.ring = append(next.ring, old.ring...)
	for m := range old.members {
		next.members[m] = true
	}
	next.members[member] = true
	for i := 0; i < replicas; i++ {
		next.ring = append(next.ring, ringPoint{
			hash:   hash64(fmt.Sprintf("%s#%d", member, i)),
			member: member,
		})
	}
	sort.Slice(next.ring, func(i, j int) bool { return next.ring[i].hash < next.ring[j].hash })
	r.state.Store(next)
}

// Remove deletes a member and all its virtual nodes.
func (r *HashRing) Remove(member string) {
	r.wmu.Lock()
	defer r.wmu.Unlock()
	old := r.snapshot()
	if !old.members[member] {
		return
	}
	next := &ringState{
		ring:    make([]ringPoint, 0, len(old.ring)),
		members: make(map[string]bool, len(old.members)),
	}
	for m := range old.members {
		if m != member {
			next.members[m] = true
		}
	}
	for _, p := range old.ring {
		if p.member != member {
			next.ring = append(next.ring, p)
		}
	}
	r.state.Store(next)
}

// Owner returns the member owning key, or "" on an empty ring.
func (r *HashRing) Owner(key string) string {
	owners := r.Owners(key, 1)
	if len(owners) == 0 {
		return ""
	}
	return owners[0]
}

// Owners returns up to n distinct members responsible for key, in
// ring order: the primary first, then the replicas that take over if
// predecessors fail. Lock-free: one snapshot load per call.
func (r *HashRing) Owners(key string, n int) []string {
	s := r.snapshot()
	if len(s.ring) == 0 || n <= 0 {
		return nil
	}
	if n > len(s.members) {
		n = len(s.members)
	}
	h := hash64(key)
	i := sort.Search(len(s.ring), func(i int) bool { return s.ring[i].hash >= h })
	var out []string
	seen := make(map[string]bool, n)
	for len(out) < n {
		p := s.ring[i%len(s.ring)]
		if !seen[p.member] {
			seen[p.member] = true
			out = append(out, p.member)
		}
		i++
	}
	return out
}

// Members returns the current members, sorted.
func (r *HashRing) Members() []string {
	s := r.snapshot()
	out := make([]string, 0, len(s.members))
	for m := range s.members {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}

// ModuloPlacement is the naive alternative placement: key → member by
// hash modulo member count over a fixed sorted member list. It exists
// as the ablation baseline for BenchmarkPlacement-style comparisons.
type ModuloPlacement struct {
	mu      sync.RWMutex
	members []string
}

// Add inserts a member, keeping the list sorted.
func (m *ModuloPlacement) Add(member string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, existing := range m.members {
		if existing == member {
			return
		}
	}
	m.members = append(m.members, member)
	sort.Strings(m.members)
}

// Remove deletes a member.
func (m *ModuloPlacement) Remove(member string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	kept := m.members[:0]
	for _, existing := range m.members {
		if existing != member {
			kept = append(kept, existing)
		}
	}
	m.members = kept
}

// Owner returns the member for key, or "".
func (m *ModuloPlacement) Owner(key string) string {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if len(m.members) == 0 {
		return ""
	}
	return m.members[hash64(key)%uint64(len(m.members))]
}
