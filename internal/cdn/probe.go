package cdn

import (
	"context"
	"fmt"
	"net/netip"
	"sync"
	"time"

	"github.com/meccdn/meccdn/internal/health"
	"github.com/meccdn/meccdn/internal/simnet"
)

// probeBufPool recycles the PING request buffer across probes: a
// health sweep probes every target every interval, and Exchange is
// synchronous (the datagram is consumed before it returns), so the
// buffer can go straight back into the pool.
var probeBufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 16)
		return &b
	},
}

// CacheProber probes cache servers over the simnet content protocol's
// PING verb. A PONG means the instance is up; an ERR reply (a server
// whose health flag is flipped off answers "ERR unavailable"), a
// malformed reply, or a timeout is a probe failure. It implements
// health.Prober for registries whose targets are CacheServer
// addresses.
type CacheProber struct {
	// Endpoint is the probing vantage point, typically a node
	// collocated with the C-DNS.
	Endpoint *simnet.Endpoint
	// Timeout bounds one probe in virtual time. Zero means 2s.
	Timeout time.Duration
}

// Probe implements health.Prober. The target's Addr must be the cache
// server's bare IP (as registered by Router.AddServerAdvertise).
func (p *CacheProber) Probe(_ context.Context, t health.TargetID) error {
	addr, err := netip.ParseAddr(t.Addr)
	if err != nil {
		return fmt.Errorf("cdn: probe target %s has bad addr %q: %w", t.Name, t.Addr, err)
	}
	timeout := p.Timeout
	if timeout <= 0 {
		timeout = 2 * time.Second
	}
	bufp := probeBufPool.Get().(*[]byte)
	req := append((*bufp)[:0], "PING"...)
	resp, _, err := p.Endpoint.Exchange(addr, req, timeout)
	*bufp = req
	probeBufPool.Put(bufp)
	if err != nil {
		return err
	}
	if string(resp) != "PONG" {
		return fmt.Errorf("cdn: probe of %s answered %q", t.Name, resp)
	}
	return nil
}
