package cdn

import (
	"fmt"
	"net/netip"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/meccdn/meccdn/internal/geoip"
	"github.com/meccdn/meccdn/internal/lpm"
	"github.com/meccdn/meccdn/internal/mesh"
	"github.com/meccdn/meccdn/internal/simnet"
	"github.com/meccdn/meccdn/internal/vclock"
)

// forbiddenRouterMutexFrames are the router read-path functions that
// must never appear in a mutex-contention profile: candidate
// selection is one atomic snapshot load end to end.
var forbiddenRouterMutexFrames = []string{
	"(*Router).Route",
	"(*Router).popAnswer",
	"(*Router).subnetRoute",
	"(*Router).Servers",
	"(*HashRing).Owners",
	"(*HashRing).OwnersAppend",
	"(*HashRing).Owner",
	"(*HashRing).Members",
	"(*HashRing).RecordLoad",
	"(*HashRing).Load",
	"(*HashRing).LoadStats",
	"(*ModuloPlacement).Owner",
	"(*Router).RoutePeer",
	"(*Router).PeerLookup",
	"(*Router).selectLocal",
	"(*View).Lookup",
	"(*View).Steer",
	"(*View).Nearest",
	"(*View).Load",
}

// TestRouterServePathMutexFree is the cdn half of `make mutexprofile`:
// with mutex profiling at fraction 1 and a writer churning server
// membership, PoP bindings, and the hash ring, concurrent candidate
// selection must record zero contention in any router or ring
// read-path frame.
func TestRouterServePathMutexFree(t *testing.T) {
	old := runtime.SetMutexProfileFraction(1)
	defer runtime.SetMutexProfileFraction(old)

	fx := buildRouterFixture(t, 1)
	rt := fx.router
	// Bounded mode exercises the cap check and spill walk under the
	// same zero-lock requirement as the plain lookup.
	rt.Ring.Bounded = true
	rt.MapPoP(lpm.PoP(1), netip.MustParseAddr("192.0.2.201"))

	// A mesh view on the miss path is part of the certified read plane:
	// peer lookups must stay one atomic snapshot load while announces
	// republish underneath.
	agent := mesh.NewAgent(mesh.Config{Site: "local", Clock: &vclock.Fixed{}})
	announce := func(gen uint32) {
		d := mesh.NewDigest(512, 4)
		for j := 0; j < 16; j++ {
			d.Add(fmt.Sprintf("key-%d", j))
		}
		ann, err := mesh.EncodeAnnounce("peer-1", "10.8.0.2", gen, d.Entries(), 0, d.Hashes(), d.Bitmap())
		if err != nil {
			t.Fatal(err)
		}
		agent.HandleDatagram(ann)
	}
	announce(1)
	rt.UseMesh(agent.View())

	var stop atomic.Bool
	var wg sync.WaitGroup
	for r := 0; r < runtime.GOMAXPROCS(0)+2; r++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			client := ClientInfo{Addr: netip.MustParseAddr("10.0.0.1")}
			var ownersBuf [smallOwners]string
			modulo := &ModuloPlacement{}
			modulo.Add("cache-0")
			for i := 0; !stop.Load(); i++ {
				rt.Route(fmt.Sprintf("key-%d-%d", id, i%32), client)
				rt.Ring.Owners("key", 2)
				rt.Ring.OwnersAppend(ownersBuf[:0], "key", 2)
				rt.Ring.RecordLoad("cache-0")
				rt.Ring.Load("cache-0")
				rt.Ring.LoadStats()
				modulo.Owner(fmt.Sprintf("key-%d", i%8))
				rt.Servers()
				rt.PeerLookup(fmt.Sprintf("key-%d", i%32))
				rt.RoutePeer(fmt.Sprintf("key-%d", i%32), client)
				rt.Mesh().Nearest()
				routerQuery(t, rt, "video.mycdn.ciab.test.", "10.0.0.1:5000")
			}
		}(r)
	}

	// Writer churn: membership add/remove (which also rebuilds the
	// ring), PoP remaps, and route-table swaps.
	fx.net.AddNode("churn")
	fx.net.AddLink("hub", "churn", simnet.Constant(0), 0)
	churn := NewCacheServer(fx.net.Node("churn"), CacheServerConfig{
		Name: "churn", Site: "mec-1", Tier: TierEdge, CapacityBytes: 1 << 20,
		Domains: []string{"mycdn.ciab.test."},
	})
	for i := 0; i < 300; i++ {
		rt.AddServer(churn, geoip.Location{X: 500, Name: "churn"})
		rt.RemoveServer("churn")
		rt.MapPoP(lpm.PoP(1), netip.AddrFrom4([4]byte{192, 0, 2, byte(1 + i%250)}))
		rt.BindPoP(lpm.PoP(2), fmt.Sprintf("cache-%d", i%3))
		announce(uint32(i + 2))
		agent.DecayLoads(0.5)
	}
	stop.Store(true)
	wg.Wait()

	var sb strings.Builder
	if err := pprof.Lookup("mutex").WriteTo(&sb, 1); err != nil {
		t.Fatal(err)
	}
	profile := sb.String()
	for _, holder := range mutexHolders(profile) {
		for _, frame := range forbiddenRouterMutexFrames {
			if strings.Contains(holder, frame) {
				t.Errorf("router read path acquired a lock: %s held a contended mutex", holder)
			}
		}
	}
	if t.Failed() {
		t.Logf("mutex profile:\n%s", profile)
	}
}

// mutexHolders extracts, per profile sample, the function that held
// the contended lock: the innermost frame below the sync/runtime/
// testing machinery. Read-path functions legitimately appear further
// up contended stacks (e.g. a CacheServer's own status mutex under
// Route, or testing.T's mutex under a query helper); only the holder
// frame convicts.
func mutexHolders(profile string) []string {
	var holders []string
	for _, sample := range strings.Split(profile, "\n\n") {
		for _, line := range strings.Split(sample, "\n") {
			fields := strings.Fields(line)
			if len(fields) < 3 || fields[0] != "#" {
				continue
			}
			fn := fields[2]
			if strings.HasPrefix(fn, "sync.") || strings.HasPrefix(fn, "runtime.") ||
				strings.HasPrefix(fn, "testing.") || strings.HasPrefix(fn, "internal/") {
				continue
			}
			holders = append(holders, fn)
			break
		}
	}
	return holders
}
