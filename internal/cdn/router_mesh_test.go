package cdn

import (
	"net/netip"
	"testing"

	"github.com/meccdn/meccdn/internal/dnswire"
	"github.com/meccdn/meccdn/internal/lpm"
	"github.com/meccdn/meccdn/internal/mesh"
	"github.com/meccdn/meccdn/internal/vclock"
)

// meshView builds a peer view holding one eligible peer announcing
// the given names.
func meshView(t *testing.T, site, addr string, names ...string) *mesh.View {
	t.Helper()
	a := mesh.NewAgent(mesh.Config{Site: "local", Clock: &vclock.Fixed{}})
	d := mesh.NewDigest(0, 0)
	for _, n := range names {
		d.Add(n)
	}
	ann, err := mesh.EncodeAnnounce(site, addr, 1, d.Entries(), 0, d.Hashes(), d.Bitmap())
	if err != nil {
		t.Fatal(err)
	}
	if resp := a.HandleDatagram(ann); len(resp) < 6 || string(resp[:6]) != "DIGEST" {
		t.Fatalf("announce rejected: %q", resp)
	}
	return a.View()
}

func TestRoutePeerSteersMiss(t *testing.T) {
	fx := buildRouterFixture(t, 3)
	const key = "video.flash.mycdn.ciab.test."
	fx.router.UseMesh(meshView(t, "site-b", "10.8.0.2", key))

	// Local servers exist but none holds the object: the peer that
	// announced it wins over a local fill.
	selected, peer, steered := fx.router.RoutePeer(key, ClientInfo{})
	if !steered || selected != nil {
		t.Fatalf("RoutePeer = (%v, %+v, %v), want steer", selected, peer, steered)
	}
	if peer.Name != "site-b" || peer.Addr != netip.MustParseAddr("10.8.0.2") {
		t.Fatalf("steered to %+v", peer)
	}

	// Once a local server holds the object, local wins again.
	fx.servers[0].Warm(Content{Name: key, Size: 100})
	fx.servers[1].Warm(Content{Name: key, Size: 100})
	fx.servers[2].Warm(Content{Name: key, Size: 100})
	selected, _, steered = fx.router.RoutePeer(key, ClientInfo{})
	if steered || selected == nil {
		t.Fatalf("RoutePeer after warm = (%v, steered=%v), want local", selected, steered)
	}

	// Names nobody announced fall through to local selection.
	selected, _, steered = fx.router.RoutePeer("video.cold.mycdn.ciab.test.", ClientInfo{})
	if steered || selected == nil {
		t.Fatal("unannounced key should route locally")
	}
}

func TestRoutePeerWithoutMeshMatchesRoute(t *testing.T) {
	fx := buildRouterFixture(t, 4)
	const key = "video.demo.mycdn.ciab.test."
	want := fx.router.Route(key, ClientInfo{})
	got, _, steered := fx.router.RoutePeer(key, ClientInfo{})
	if steered || got == nil || want == nil || got.Server.Name != want.Server.Name {
		t.Fatalf("RoutePeer = %v steered=%v, Route = %v", got, steered, want)
	}
}

func TestServeDNSPeerReferral(t *testing.T) {
	fx := buildRouterFixture(t, 5)
	fx.router.Parent = netip.MustParseAddr("192.0.2.50")
	const key = "video.flash.mycdn.ciab.test."
	fx.router.UseMesh(meshView(t, "site-b", "10.8.0.2", key))

	resp := routerQuery(t, fx.router, key, "198.51.100.1:5300")
	next, ok := Referral(resp)
	if !ok {
		t.Fatalf("no referral in %v", resp)
	}
	if next != netip.MustParseAddr("10.8.0.2") {
		t.Fatalf("referral to %v, want peer 10.8.0.2", next)
	}

	// Unannounced content still answers locally, not via referral.
	resp = routerQuery(t, fx.router, "video.cold.mycdn.ciab.test.", "198.51.100.1:5300")
	if len(resp.Answers) != 1 {
		t.Fatalf("local answer missing: %v", resp)
	}
}

func TestPeerLookupNoMesh(t *testing.T) {
	fx := buildRouterFixture(t, 6)
	if _, ok := fx.router.PeerLookup("anything"); ok {
		t.Fatal("PeerLookup hit with no mesh attached")
	}
}

func TestPoPPeerFallback(t *testing.T) {
	fx := buildRouterFixture(t, 7)
	b := lpm.NewBuilder()
	if err := b.Add(netip.MustParsePrefix("198.51.100.0/24"), lpm.PoP(7)); err != nil {
		t.Fatal(err)
	}
	fx.router.SetRoutes(b.Build())
	// PoP 7 is bound to a server that was never registered and has no
	// static address — a dead PoP.
	fx.router.BindPoP(lpm.PoP(7), "no-such-server")

	// Without a mesh the route is unmapped and falls to local policy.
	resp := routerQuery(t, fx.router, "video.demo.mycdn.ciab.test.", "198.51.100.9:5300")
	if len(resp.Answers) != 1 {
		t.Fatalf("unmapped PoP without mesh: %v", resp)
	}

	// With a mesh the dead PoP delegates to the nearest healthy peer.
	fx.router.UseMesh(meshView(t, "site-b", "10.8.0.2", "whatever"))
	resp = routerQuery(t, fx.router, "video.demo.mycdn.ciab.test.", "198.51.100.9:5300")
	next, ok := Referral(resp)
	if !ok || next != netip.MustParseAddr("10.8.0.2") {
		t.Fatalf("peer fallback referral = %v ok=%v", next, ok)
	}

	// A live PoP still answers directly, mesh or not.
	fx.router.MapPoP(lpm.PoP(7), netip.MustParseAddr("203.0.113.7"))
	resp = routerQuery(t, fx.router, "video.demo.mycdn.ciab.test.", "198.51.100.9:5300")
	if len(resp.Answers) != 1 {
		t.Fatalf("live PoP answer missing: %v", resp)
	}
	if got := resp.Answers[0].(*dnswire.A).Addr; got != netip.MustParseAddr("203.0.113.7") {
		t.Fatalf("live PoP answered %v", got)
	}
}
