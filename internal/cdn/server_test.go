package cdn

import (
	"strings"
	"testing"
	"time"

	"github.com/meccdn/meccdn/internal/simnet"
)

// contentTopology builds client—edge—origin with an edge cache server.
type contentTopology struct {
	net    *simnet.Network
	edge   *CacheServer
	origin *Origin
	osrv   *OriginServer
}

func buildContentTopology(t *testing.T, seed int64, capacity int64) *contentTopology {
	t.Helper()
	n := simnet.New(seed)
	n.AddNode("client")
	n.AddNode("edge")
	n.AddNode("origin")
	n.AddLink("client", "edge", simnet.Constant(5*time.Millisecond), 0)
	n.AddLink("edge", "origin", simnet.Constant(40*time.Millisecond), 0)

	origin := NewOrigin()
	cat := NewCatalog("mycdn.ciab.test.")
	cat.PublishN("video", 100, 1000)
	origin.AddCatalog(cat)
	osrv := NewOriginServer(n.Node("origin"), origin, simnet.Constant(2*time.Millisecond))

	edge := NewCacheServer(n.Node("edge"), CacheServerConfig{
		Name:          "edge-1",
		Site:          "mec-site-1",
		Tier:          TierEdge,
		CapacityBytes: capacity,
		Parent:        osrv.Addr(),
		Domains:       []string{"mycdn.ciab.test."},
		ServeDelay:    simnet.Constant(time.Millisecond),
	})
	return &contentTopology{net: n, edge: edge, origin: origin, osrv: osrv}
}

func TestCacheServerMissFillHit(t *testing.T) {
	ct := buildContentTopology(t, 1, 100_000)
	ep := ct.net.Node("client").Endpoint()

	res, err := Fetch(ep, ct.edge.Addr(), "mycdn.ciab.test.", "video-0001", time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != "FILLED" || res.Size != 1000 {
		t.Fatalf("first fetch = %+v", res)
	}
	// 5 + (40+2+40) + 1 + 5 = 93ms with the origin round trip.
	if res.RTT != 93*time.Millisecond {
		t.Errorf("cold RTT = %v, want 93ms", res.RTT)
	}

	res, err = Fetch(ep, ct.edge.Addr(), "mycdn.ciab.test.", "video-0001", time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != "HIT" {
		t.Fatalf("second fetch = %+v", res)
	}
	if res.RTT != 11*time.Millisecond {
		t.Errorf("warm RTT = %v, want 11ms", res.RTT)
	}
	if got := ct.origin.Fetches(); got != 1 {
		t.Errorf("origin fetches = %d", got)
	}
}

func TestCacheServerNotFound(t *testing.T) {
	ct := buildContentTopology(t, 2, 100_000)
	ep := ct.net.Node("client").Endpoint()
	res, err := Fetch(ep, ct.edge.Addr(), "mycdn.ciab.test.", "no-such-object", time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != "NOTFOUND" {
		t.Errorf("status = %s", res.Status)
	}
}

func TestCacheServerWrongDomainRefused(t *testing.T) {
	ct := buildContentTopology(t, 3, 100_000)
	ep := ct.net.Node("client").Endpoint()
	res, err := Fetch(ep, ct.edge.Addr(), "othercdn.example.", "video-0001", time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != "ERR" {
		t.Errorf("status = %s", res.Status)
	}
}

func TestCacheServerUnhealthyRefuses(t *testing.T) {
	ct := buildContentTopology(t, 4, 100_000)
	ct.edge.SetHealthy(false)
	if ct.edge.Healthy() {
		t.Fatal("SetHealthy(false) ignored")
	}
	ep := ct.net.Node("client").Endpoint()
	res, err := Fetch(ep, ct.edge.Addr(), "mycdn.ciab.test.", "video-0001", time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != "ERR" {
		t.Errorf("status = %s", res.Status)
	}
}

func TestCacheServerEvictionUnderSmallCapacity(t *testing.T) {
	// Capacity for only 2 of the 1000-byte objects.
	ct := buildContentTopology(t, 5, 2000)
	ep := ct.net.Node("client").Endpoint()
	for _, name := range []string{"video-0001", "video-0002", "video-0003"} {
		if _, err := Fetch(ep, ct.edge.Addr(), "mycdn.ciab.test.", name, time.Second); err != nil {
			t.Fatal(err)
		}
	}
	// video-0001 must have been evicted: fetching it refills.
	res, err := Fetch(ep, ct.edge.Addr(), "mycdn.ciab.test.", "video-0001", time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != "FILLED" {
		t.Errorf("status = %s, want FILLED after eviction", res.Status)
	}
	if s := ct.edge.Cache().Stats(); s.Evictions == 0 {
		t.Error("no evictions recorded")
	}
}

func TestCacheServerWarm(t *testing.T) {
	ct := buildContentTopology(t, 6, 100_000)
	ct.edge.Warm(Content{Name: "video-0042", Size: 1000})
	ep := ct.net.Node("client").Endpoint()
	res, err := Fetch(ep, ct.edge.Addr(), "mycdn.ciab.test.", "video-0042", time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != "HIT" {
		t.Errorf("warmed object status = %s", res.Status)
	}
}

func TestCacheServerLoadWindow(t *testing.T) {
	ct := buildContentTopology(t, 7, 100_000)
	ep := ct.net.Node("client").Endpoint()
	for i := 0; i < 5; i++ {
		if _, err := Fetch(ep, ct.edge.Addr(), "mycdn.ciab.test.", "video-0001", time.Second); err != nil {
			t.Fatal(err)
		}
	}
	if load := ct.edge.Load(); load != 5 {
		t.Errorf("load = %d, want 5", load)
	}
	// Let the window pass in virtual time.
	ct.net.Clock.RunUntil(ct.net.Now() + 2*time.Second)
	if load := ct.edge.Load(); load != 0 {
		t.Errorf("load after window = %d, want 0", load)
	}
}

func TestCacheServerBadRequest(t *testing.T) {
	ct := buildContentTopology(t, 8, 100_000)
	ep := ct.net.Node("client").Endpoint()
	resp, _, err := ep.Exchange(ct.edge.Addr(), []byte("BOGUS"), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(resp), "ERR") {
		t.Errorf("resp = %q", resp)
	}
}

func TestTieredFill(t *testing.T) {
	// client — edge — mid — origin: a miss at the edge cascades
	// through the mid tier, leaving copies at both.
	n := simnet.New(9)
	for _, name := range []string{"client", "edge", "mid", "origin"} {
		n.AddNode(name)
	}
	n.AddLink("client", "edge", simnet.Constant(5*time.Millisecond), 0)
	n.AddLink("edge", "mid", simnet.Constant(15*time.Millisecond), 0)
	n.AddLink("mid", "origin", simnet.Constant(50*time.Millisecond), 0)

	origin := NewOrigin()
	cat := NewCatalog("cdn.test.")
	cat.PublishN("obj", 10, 500)
	origin.AddCatalog(cat)
	osrv := NewOriginServer(n.Node("origin"), origin, nil)

	mid := NewCacheServer(n.Node("mid"), CacheServerConfig{
		Name: "mid-1", Tier: TierMid, CapacityBytes: 1 << 20, Parent: osrv.Addr(),
	})
	edge := NewCacheServer(n.Node("edge"), CacheServerConfig{
		Name: "edge-1", Tier: TierEdge, CapacityBytes: 1 << 20, Parent: mid.Addr(),
	})
	ep := n.Node("client").Endpoint()

	res, err := Fetch(ep, edge.Addr(), "cdn.test.", "obj-0000", time.Second)
	if err != nil || res.Status != "FILLED" {
		t.Fatalf("cold: %+v, %v", res, err)
	}
	if !mid.Cache().Contains("obj-0000") || !edge.Cache().Contains("obj-0000") {
		t.Error("fill did not populate both tiers")
	}
	// A different client hitting only the mid tier now gets a HIT.
	res, err = Fetch(ep, edge.Addr(), "cdn.test.", "obj-0000", time.Second)
	if err != nil || res.Status != "HIT" {
		t.Fatalf("warm: %+v, %v", res, err)
	}
	if origin.Fetches() != 1 {
		t.Errorf("origin fetches = %d", origin.Fetches())
	}
}

func TestTierString(t *testing.T) {
	if TierEdge.String() != "edge" || TierMid.String() != "mid" || TierFar.String() != "far" {
		t.Error("tier labels")
	}
	if Tier(9).String() != "tier(9)" {
		t.Error("unknown tier label")
	}
}

func TestCatalogAndOrigin(t *testing.T) {
	cat := NewCatalog("d.test.")
	cat.Publish(Content{Name: "x", Size: 1})
	cat.PublishN("y", 3, 2)
	if cat.Len() != 4 {
		t.Errorf("len = %d", cat.Len())
	}
	names := cat.Names()
	if len(names) != 4 || names[0] != "x" && names[0] != "y-0000" {
		t.Errorf("names = %v", names)
	}
	if _, ok := cat.Get("y-0002"); !ok {
		t.Error("missing bulk object")
	}
	o := NewOrigin()
	o.AddCatalog(cat)
	if _, ok := o.Fetch("d.test.", "x"); !ok {
		t.Error("origin fetch failed")
	}
	if _, ok := o.Fetch("nope.test.", "x"); ok {
		t.Error("origin served unknown domain")
	}
}
