// Package cdn implements the content-delivery substrate of the
// MEC-CDN reproduction: an origin, tiered cache servers with
// byte-budget LRU caches, consistent-hash content placement, and the
// request router (C-DNS) that answers DNS queries for CDN domains with
// the address of a suitable cache server — the role Apache Traffic
// Control's Traffic Router plays in the paper's prototype.
package cdn

import (
	"fmt"
	"sort"
	"sync"
)

// Content identifies one cacheable object.
type Content struct {
	// Name is the object's identity, e.g. "video.demo1/chunk-0001".
	Name string
	// Size in bytes; drives LRU capacity accounting and (optionally)
	// transfer-time modelling.
	Size int64
}

// Catalog is the set of objects a CDN customer publishes.
type Catalog struct {
	// Domain is the CDN domain the catalog is served under.
	Domain string

	mu      sync.RWMutex
	objects map[string]Content
}

// NewCatalog returns an empty catalog for domain.
func NewCatalog(domain string) *Catalog {
	return &Catalog{Domain: domain, objects: make(map[string]Content)}
}

// Publish adds or replaces an object.
func (c *Catalog) Publish(content Content) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.objects[content.Name] = content
}

// PublishN bulk-publishes n uniformly-sized objects named
// "<prefix>-<i>"; handy for workload setup.
func (c *Catalog) PublishN(prefix string, n int, size int64) {
	for i := 0; i < n; i++ {
		c.Publish(Content{Name: fmt.Sprintf("%s-%04d", prefix, i), Size: size})
	}
}

// Get returns the object and whether it exists.
func (c *Catalog) Get(name string) (Content, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	obj, ok := c.objects[name]
	return obj, ok
}

// Names returns all object names, sorted.
func (c *Catalog) Names() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	names := make([]string, 0, len(c.objects))
	for n := range c.objects {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Len returns the number of published objects.
func (c *Catalog) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.objects)
}

// Origin is the authoritative store: it has every published object of
// every catalog registered with it.
type Origin struct {
	mu       sync.RWMutex
	catalogs map[string]*Catalog
	fetches  uint64
}

// NewOrigin returns an empty origin.
func NewOrigin() *Origin {
	return &Origin{catalogs: make(map[string]*Catalog)}
}

// AddCatalog registers a customer catalog.
func (o *Origin) AddCatalog(c *Catalog) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.catalogs[c.Domain] = c
}

// Fetch returns the object from the origin store. It counts fetches so
// experiments can report origin offload.
func (o *Origin) Fetch(domain, name string) (Content, bool) {
	o.mu.Lock()
	o.fetches++
	cat := o.catalogs[domain]
	o.mu.Unlock()
	if cat == nil {
		return Content{}, false
	}
	return cat.Get(name)
}

// Fetches returns how many objects were served by the origin.
func (o *Origin) Fetches() uint64 {
	o.mu.RLock()
	defer o.mu.RUnlock()
	return o.fetches
}
