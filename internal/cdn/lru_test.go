package cdn

import (
	"fmt"
	"testing"
	"testing/quick"
)

func TestLRUBasicHitMiss(t *testing.T) {
	l := NewLRU(100)
	if _, ok := l.Get("a"); ok {
		t.Fatal("empty cache hit")
	}
	l.Put(Content{Name: "a", Size: 10})
	if obj, ok := l.Get("a"); !ok || obj.Size != 10 {
		t.Fatalf("get a = %v %v", obj, ok)
	}
	s := l.Stats()
	if s.Hits != 1 || s.Misses != 1 || s.Objects != 1 || s.UsedBytes != 10 {
		t.Errorf("stats = %+v", s)
	}
	if got := s.HitRatio(); got != 0.5 {
		t.Errorf("hit ratio = %v", got)
	}
}

func TestLRUEvictsLeastRecent(t *testing.T) {
	l := NewLRU(30)
	l.Put(Content{Name: "a", Size: 10})
	l.Put(Content{Name: "b", Size: 10})
	l.Put(Content{Name: "c", Size: 10})
	l.Get("a") // a becomes most recent
	l.Put(Content{Name: "d", Size: 10})
	if l.Contains("b") {
		t.Error("b should be evicted (least recent)")
	}
	if !l.Contains("a") || !l.Contains("c") || !l.Contains("d") {
		t.Error("wrong eviction victim")
	}
	if s := l.Stats(); s.Evictions != 1 {
		t.Errorf("evictions = %d", s.Evictions)
	}
}

func TestLRUUpdateSize(t *testing.T) {
	l := NewLRU(100)
	l.Put(Content{Name: "a", Size: 10})
	l.Put(Content{Name: "a", Size: 50})
	if s := l.Stats(); s.UsedBytes != 50 || s.Objects != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestLRUOversizedObjectRejected(t *testing.T) {
	l := NewLRU(100)
	l.Put(Content{Name: "huge", Size: 200})
	if l.Contains("huge") {
		t.Error("oversized object stored")
	}
	if s := l.Stats(); s.UsedBytes != 0 {
		t.Errorf("used = %d", s.UsedBytes)
	}
}

func TestLRUFlush(t *testing.T) {
	l := NewLRU(100)
	l.Put(Content{Name: "a", Size: 10})
	l.Flush()
	if l.Contains("a") || l.Stats().UsedBytes != 0 {
		t.Error("flush incomplete")
	}
}

func TestLRUContainsDoesNotTouchStats(t *testing.T) {
	l := NewLRU(100)
	l.Put(Content{Name: "a", Size: 1})
	l.Contains("a")
	l.Contains("b")
	if s := l.Stats(); s.Hits != 0 || s.Misses != 0 {
		t.Errorf("Contains affected stats: %+v", s)
	}
}

func TestLRUCapacityInvariantProperty(t *testing.T) {
	f := func(ops []struct {
		Name byte
		Size uint16
	}) bool {
		l := NewLRU(1000)
		for _, op := range ops {
			l.Put(Content{Name: fmt.Sprintf("obj-%d", op.Name), Size: int64(op.Size)})
			if s := l.Stats(); s.UsedBytes > 1000 {
				return false
			}
		}
		// UsedBytes must equal the sum of resident object sizes.
		s := l.Stats()
		var sum int64
		for i := 0; i < 256; i++ {
			if obj, ok := l.Get(fmt.Sprintf("obj-%d", i)); ok {
				sum += obj.Size
			}
		}
		return sum == s.UsedBytes
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestHashRingOwnership(t *testing.T) {
	r := NewHashRing()
	if r.Owner("x") != "" {
		t.Error("empty ring returned owner")
	}
	for i := 0; i < 5; i++ {
		r.Add(fmt.Sprintf("server-%d", i))
	}
	r.Add("server-0") // idempotent
	if got := len(r.Members()); got != 5 {
		t.Fatalf("members = %d", got)
	}
	owner := r.Owner("video-0001")
	if owner == "" {
		t.Fatal("no owner")
	}
	// Stable across calls.
	for i := 0; i < 10; i++ {
		if r.Owner("video-0001") != owner {
			t.Fatal("owner not stable")
		}
	}
	owners := r.Owners("video-0001", 3)
	if len(owners) != 3 || owners[0] != owner {
		t.Errorf("owners = %v", owners)
	}
	seen := map[string]bool{}
	for _, o := range owners {
		if seen[o] {
			t.Error("duplicate owner")
		}
		seen[o] = true
	}
	if got := r.Owners("video-0001", 10); len(got) != 5 {
		t.Errorf("owners capped at member count: %v", got)
	}
}

func TestHashRingBalance(t *testing.T) {
	r := NewHashRing()
	const servers = 8
	for i := 0; i < servers; i++ {
		r.Add(fmt.Sprintf("server-%d", i))
	}
	counts := make(map[string]int)
	const keys = 8000
	for i := 0; i < keys; i++ {
		counts[r.Owner(fmt.Sprintf("key-%d", i))]++
	}
	want := keys / servers
	for s, c := range counts {
		if c < want/3 || c > want*3 {
			t.Errorf("%s owns %d keys, want ≈%d", s, c, want)
		}
	}
}

func TestHashRingMinimalDisruption(t *testing.T) {
	r := NewHashRing()
	for i := 0; i < 10; i++ {
		r.Add(fmt.Sprintf("server-%d", i))
	}
	const keys = 2000
	before := make(map[string]string, keys)
	for i := 0; i < keys; i++ {
		k := fmt.Sprintf("key-%d", i)
		before[k] = r.Owner(k)
	}
	r.Remove("server-3")
	moved := 0
	for k, owner := range before {
		if owner != "server-3" && r.Owner(k) != owner {
			moved++
		}
	}
	// Consistent hashing: removing one of ten servers must not move
	// keys between surviving servers.
	if moved != 0 {
		t.Errorf("%d keys moved between surviving servers", moved)
	}
}

func TestModuloPlacementDisruption(t *testing.T) {
	m := &ModuloPlacement{}
	for i := 0; i < 10; i++ {
		m.Add(fmt.Sprintf("server-%d", i))
	}
	m.Add("server-3") // idempotent
	const keys = 2000
	before := make(map[string]string, keys)
	for i := 0; i < keys; i++ {
		k := fmt.Sprintf("key-%d", i)
		before[k] = m.Owner(k)
	}
	m.Remove("server-3")
	moved := 0
	for k, owner := range before {
		if owner != "server-3" && m.Owner(k) != owner {
			moved++
		}
	}
	// Modulo placement reshuffles nearly everything — that contrast
	// with the consistent-hash test above is the point.
	if moved < keys/2 {
		t.Errorf("modulo moved only %d keys; expected large disruption", moved)
	}
	if m.Owner("x") == "" {
		t.Error("no owner after removals")
	}
	var empty ModuloPlacement
	if empty.Owner("x") != "" {
		t.Error("empty placement returned owner")
	}
}
