package cdn

import (
	"context"
	"net/netip"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/meccdn/meccdn/internal/dnsserver"
	"github.com/meccdn/meccdn/internal/dnswire"
	"github.com/meccdn/meccdn/internal/geoip"
	"github.com/meccdn/meccdn/internal/health"
	"github.com/meccdn/meccdn/internal/lpm"
	"github.com/meccdn/meccdn/internal/mesh"
	"github.com/meccdn/meccdn/internal/telemetry"
)

// PoP aliases lpm.PoP so callers wiring subnet routes do not need a
// separate lpm import.
type PoP = lpm.PoP

// ServerInfo is the router's view of one cache server.
type ServerInfo struct {
	Server *CacheServer
	// Location places the server for geo policies.
	Location geoip.Location
	// Advertise, when valid, is the address published in DNS answers
	// instead of the server's own — a k8s Service cluster IP in the
	// paper's design, so clients never learn host IPs.
	Advertise netip.Addr
}

// Answer returns the address to publish for this server.
func (si *ServerInfo) Answer() netip.Addr {
	if si.Advertise.IsValid() {
		return si.Advertise
	}
	return si.Server.Addr()
}

// ClientInfo is what the router can learn about the requester: its
// apparent address (often a gateway, not the end client) and, when
// ECS is present, the disclosed client subnet.
type ClientInfo struct {
	Addr     netip.Addr
	ECS      netip.Prefix
	Location geoip.Location
	Located  bool
}

// SelectionPolicy picks one cache server among candidates. Candidates
// are always healthy; the slice is never empty.
type SelectionPolicy interface {
	// Name labels the policy in experiment output.
	Name() string
	Select(candidates []*ServerInfo, key string, client ClientInfo) *ServerInfo
}

// AvailabilityFirst prefers servers that already hold the content,
// breaking ties by load: the "(iii) C-DNS must pick a cache server
// which has the content and is nearest" requirement, content half.
type AvailabilityFirst struct{}

// Name implements SelectionPolicy.
func (AvailabilityFirst) Name() string { return "availability-first" }

// Select implements SelectionPolicy.
func (AvailabilityFirst) Select(candidates []*ServerInfo, key string, _ ClientInfo) *ServerInfo {
	var have, best *ServerInfo
	for _, c := range candidates {
		if c.Server.Cache().Contains(key) {
			if have == nil || c.Server.Load() < have.Server.Load() {
				have = c
			}
		}
		if best == nil || c.Server.Load() < best.Server.Load() {
			best = c
		}
	}
	if have != nil {
		return have
	}
	return best
}

// GeoNearest picks the server closest to the client's location,
// falling back to least-loaded when the client cannot be located.
type GeoNearest struct{}

// Name implements SelectionPolicy.
func (GeoNearest) Name() string { return "geo-nearest" }

// Select implements SelectionPolicy.
func (GeoNearest) Select(candidates []*ServerInfo, key string, client ClientInfo) *ServerInfo {
	if !client.Located {
		return AvailabilityFirst{}.Select(candidates, key, client)
	}
	best := candidates[0]
	bestDist := client.Location.DistanceTo(best.Location)
	for _, c := range candidates[1:] {
		if d := client.Location.DistanceTo(c.Location); d < bestDist {
			best, bestDist = c, d
		}
	}
	return best
}

// RoundRobin cycles through candidates, the classic load-balancing
// baseline whose ignorance of content placement disaggregates
// requests (the paper's Observation 2).
type RoundRobin struct {
	n atomic.Uint64
}

// Name implements SelectionPolicy.
func (*RoundRobin) Name() string { return "round-robin" }

// Select implements SelectionPolicy.
func (r *RoundRobin) Select(candidates []*ServerInfo, _ string, _ ClientInfo) *ServerInfo {
	return candidates[(r.n.Add(1)-1)%uint64(len(candidates))]
}

// LeastLoaded picks the candidate with the fewest requests in its
// load window.
type LeastLoaded struct{}

// Name implements SelectionPolicy.
func (LeastLoaded) Name() string { return "least-loaded" }

// Select implements SelectionPolicy.
func (LeastLoaded) Select(candidates []*ServerInfo, _ string, _ ClientInfo) *ServerInfo {
	best := candidates[0]
	for _, c := range candidates[1:] {
		if c.Server.Load() < best.Server.Load() {
			best = c
		}
	}
	return best
}

// Router is the CDN request router (C-DNS): a dnsserver plugin that
// answers A queries for names under its CDN domain with the address
// of a selected cache server. It is the reproduction of Apache
// Traffic Control's Traffic Router, scoped — when deployed at the MEC
// — to just the edge site's cache instances.
type Router struct {
	// Domain is the CDN domain the router is authoritative for.
	Domain string
	// Policy selects among candidate servers; nil means
	// AvailabilityFirst.
	Policy SelectionPolicy
	// Geo locates clients for geo policies; optional.
	Geo *geoip.DB
	// TTL for answers; CDN routers use short TTLs to keep routing
	// responsive. Zero means 30.
	TTL uint32
	// Ring maps content keys to servers; populated by AddServer.
	Ring *HashRing
	// Replicas is how many ring owners are candidates per key; zero
	// means 2.
	Replicas int
	// Parent, when valid, is the C-DNS one tier up: queries this
	// router cannot serve locally are answered with the parent's
	// address, the paper's cross-tier referral.
	Parent netip.Addr
	// Health, when set (via UseHealth), replaces blind trust in the
	// server's own flag: candidates must be routable per the probe-fed
	// registry, a new server joins the hash ring only after its first
	// successful probe, and the registry's ingress-load switch diverts
	// queries to the parent tier. Nil preserves the historical
	// behaviour (CacheServer.Healthy alone).
	Health *health.Registry

	// state is the immutable server/PoP registry snapshot, published
	// via atomic pointer: candidate selection and PoP resolution load
	// it once per query and never lock.
	state atomic.Pointer[routerState]
	// wmu serializes registry writers (AddServer, RemoveServer,
	// MapPoP, BindPoP, health transitions); readers never take it.
	wmu sync.Mutex

	// subnets is the ECS-driven subnet→PoP routing table, consulted
	// before the policy path. Swapped atomically so a reload never
	// blocks serving; nil means no table (legacy policy routing only).
	subnets atomic.Pointer[lpm.Table]

	// peers is the federated-mesh peer view (via UseMesh): on a local
	// content miss the router asks which eligible, non-overloaded peer
	// MEC announced the object before escalating to the parent tier,
	// and a dead LPM-mapped PoP falls back to the nearest healthy
	// peer. Nil means no mesh (vertical-only, the historical shape).
	peers atomic.Pointer[mesh.View]

	ctrOnce  sync.Once
	routed   *telemetry.CounterVec
	routeCtr *telemetry.CounterVec
}

// routerState is one immutable revision of the router's registry: the
// cache servers and the PoP→target bindings. Writers copy, mutate the
// copy, and publish; the maps in a published state are never written
// again.
type routerState struct {
	servers map[string]*ServerInfo
	pops    map[lpm.PoP]popTarget
}

// emptyRouterState backs routers built as plain struct literals.
var emptyRouterState = &routerState{}

// snapshot returns the current registry revision, never nil.
func (rt *Router) snapshot() *routerState {
	if s := rt.state.Load(); s != nil {
		return s
	}
	return emptyRouterState
}

// updateState copies the current registry, applies fn, publishes.
// Callers must hold rt.wmu.
func (rt *Router) updateState(fn func(*routerState)) {
	old := rt.snapshot()
	next := &routerState{
		servers: make(map[string]*ServerInfo, len(old.servers)+1),
		pops:    make(map[lpm.PoP]popTarget, len(old.pops)+1),
	}
	for n, s := range old.servers {
		next.servers[n] = s
	}
	for p, t := range old.pops {
		next.pops[p] = t
	}
	fn(next)
	rt.state.Store(next)
}

// popTarget is where a PoP's traffic goes: a registered cache server
// (health-gated, answering with its advertise address) and/or a static
// answer address used directly — dnsd's standalone mode — and as the
// fallback when the bound server is unregistered or unroutable.
type popTarget struct {
	addr   netip.Addr
	server string
}

// counters lazily builds the routing counters, so Router keeps working
// as a plain struct literal.
func (rt *Router) counters() *telemetry.CounterVec {
	rt.ctrOnce.Do(func() {
		rt.routed = telemetry.NewCounterVec("meccdn_cdn_routed_total",
			"C-DNS routing decisions by result (selected, peer, referral, load_fallback, peer_fallback, failed, nodata).", "result")
		rt.routeCtr = telemetry.NewCounterVec("meccdn_route_lookups_total",
			"Subnet→PoP table lookups by result: hit (route matched and answered), miss (no covering route), unmapped (route matched a PoP with no usable target and no healthy mesh peer to fall back to).", "result")
	})
	return rt.routed
}

// Collectors returns the router's metric families for registration on
// a telemetry.Registry: the routing-decision counters, a live
// server-count gauge, and the subnet-table row gauge.
func (rt *Router) Collectors() []telemetry.Collector {
	rt.counters()
	return []telemetry.Collector{
		rt.routed,
		rt.routeCtr,
		telemetry.NewGaugeFunc("meccdn_cdn_servers",
			"Cache servers currently registered with the C-DNS router.",
			func() float64 {
				return float64(len(rt.snapshot().servers))
			}),
		telemetry.NewGaugeFunc("meccdn_route_rows",
			"Rows in the installed subnet→PoP routing table (0 when none).",
			func() float64 {
				if t := rt.subnets.Load(); t != nil {
					return float64(t.Rows())
				}
				return 0
			}),
		telemetry.NewGaugeFunc("meccdn_ring_members",
			"Members currently on the consistent-hash ring.",
			func() float64 { return float64(rt.Ring.NumMembers()) }),
		telemetry.NewGaugeFunc("meccdn_ring_load_spread",
			"Max/mean member load on the hash ring (1.0 is perfectly even; a bounded ring stays ≤ its load factor).",
			rt.Ring.LoadSpread),
		telemetry.NewCounterFunc("meccdn_ring_spills_total",
			"Bounded-load lookups that spilled past a saturated hash-primary owner.",
			func() float64 { return float64(rt.Ring.Spills()) }),
		telemetry.NewCounterFunc("meccdn_ring_cap_rejections_total",
			"Saturated ring members skipped during bounded-load spill walks.",
			func() float64 { return float64(rt.Ring.CapRejections()) }),
	}
}

// SetRoutes installs (or atomically replaces) the subnet→PoP routing
// table. Safe to call while serving: in-flight lookups finish on the
// old table, new ones see the new — the immutable-snapshot-swap
// pattern, so a million-row table can be rebuilt and reloaded with
// zero dropped queries.
func (rt *Router) SetRoutes(t *lpm.Table) { rt.subnets.Store(t) }

// Routes returns the installed subnet→PoP table, or nil.
func (rt *Router) Routes() *lpm.Table { return rt.subnets.Load() }

// MapPoP publishes addr as the answer address for clients whose subnet
// routes to pop. This is the standalone deployment shape (cmd/dnsd
// -pop): the PoP's edge address is configuration, not a registered
// CacheServer.
func (rt *Router) MapPoP(pop lpm.PoP, addr netip.Addr) {
	rt.wmu.Lock()
	defer rt.wmu.Unlock()
	rt.updateState(func(s *routerState) {
		tgt := s.pops[pop]
		tgt.addr = addr
		s.pops[pop] = tgt
	})
}

// BindPoP routes pop's traffic to a registered cache server by name:
// the answer follows the server's advertise address and its health
// verdict. A PoP may carry both a binding and a MapPoP address; the
// static address serves as fallback while the server is unregistered
// or unroutable.
func (rt *Router) BindPoP(pop lpm.PoP, server string) {
	rt.wmu.Lock()
	defer rt.wmu.Unlock()
	rt.updateState(func(s *routerState) {
		tgt := s.pops[pop]
		tgt.server = server
		s.pops[pop] = tgt
	})
}

// subnetRoute consults the subnet→PoP table for the client's
// ECS-disclosed subnet (or, absent ECS, the resolver source address —
// the very conflation the paper faults plain DNS for, kept only as the
// fallback signal). It returns the answer address (invalid when the
// table missed or the PoP had no usable target), a peer-referral
// address (valid when the mapped PoP was dead but a healthy mesh peer
// can take the client instead — the geo-aware fallback), the ECS scope
// to stamp, and whether a table is installed at all.
//
// Scope semantics (RFC 7871): a route hit discriminated the client at
// exactly the matched prefix length, so that is the scope; a miss (or
// an unmapped PoP) means the table did not discriminate — scope 0, the
// answer is as good for any subnet. Without a table the router stays
// on its historical echo (scope = source), since policy routing may
// still have used the full disclosed address for geo distance.
func (rt *Router) subnetRoute(client ClientInfo) (addr, peerRef netip.Addr, scope int, tabled bool) {
	table := rt.subnets.Load()
	if table == nil {
		return netip.Addr{}, netip.Addr{}, -1, false
	}
	lookupAddr := client.Addr
	if client.ECS.IsValid() {
		lookupAddr = client.ECS.Addr()
	}
	pop, bits, ok := table.Lookup(lookupAddr)
	if !ok {
		rt.routeCtr.Inc("miss")
		return netip.Addr{}, netip.Addr{}, 0, true
	}
	addr, ok = rt.popAnswer(pop)
	if !ok {
		// Geo-aware fallback: the LPM route named a PoP but nothing
		// behind it is usable (bound server down, no static address).
		// Rather than answering a dead edge, hand the client to the
		// nearest healthy peer MEC from the mesh view.
		if v := rt.peers.Load(); v != nil {
			if hit, hitOK := v.Nearest(); hitOK && hit.Addr.IsValid() {
				rt.routeCtr.Inc("peer_fallback")
				return netip.Addr{}, hit.Addr, 0, true
			}
		}
		rt.routeCtr.Inc("unmapped")
		return netip.Addr{}, netip.Addr{}, 0, true
	}
	rt.routeCtr.Inc("hit")
	return addr, netip.Addr{}, bits, true
}

// popAnswer resolves a PoP to the address to publish. A bound server
// wins while it is registered, flagged healthy, and — with a health
// registry attached — routable per the probe verdicts; otherwise the
// static MapPoP address, if any, takes over. Lock-free: one snapshot
// load.
func (rt *Router) popAnswer(pop lpm.PoP) (netip.Addr, bool) {
	st := rt.snapshot()
	tgt, ok := st.pops[pop]
	if !ok {
		return netip.Addr{}, false
	}
	if tgt.server != "" {
		if s := st.servers[tgt.server]; s != nil && s.Server.Healthy() {
			routable := true
			if rt.Health != nil {
				routable, _ = rt.Health.Eligible(tgt.server)
			}
			if routable {
				return s.Answer(), true
			}
		}
	}
	if tgt.addr.IsValid() {
		return tgt.addr, true
	}
	return netip.Addr{}, false
}

// NewRouter returns a router for domain.
func NewRouter(domain string) *Router {
	return &Router{
		Domain: canonicalDomain(domain),
		Ring:   NewHashRing(),
	}
}

// UseHealth attaches a health registry to the router. From then on
// candidate selection consults the registry's probe-fed verdicts
// (layered with each server's own flag), newly added servers start in
// the probing state and enter the hash ring only on their first
// successful probe, a server demoted to down leaves the ring, and the
// registry's ingress-load watermark switch diverts queries to the
// parent tier. Call before AddServer.
func (rt *Router) UseHealth(reg *health.Registry) {
	rt.wmu.Lock()
	rt.Health = reg
	rt.wmu.Unlock()
	reg.OnTransition(func(name string, _, to State) {
		// The listener runs without the registry lock held, so taking
		// the writer lock here cannot invert the serve path's
		// registry-consulting order (readers never take wmu).
		rt.wmu.Lock()
		defer rt.wmu.Unlock()
		if _, tracked := rt.snapshot().servers[name]; !tracked {
			return
		}
		if to.Routable() {
			rt.Ring.Add(name)
		} else {
			rt.Ring.Remove(name)
		}
	})
}

// State aliases health.State so callers wiring UseHealth listeners do
// not need a separate health import.
type State = health.State

// PeerHit aliases mesh.PeerHit so callers consuming RoutePeer results
// do not need a separate mesh import.
type PeerHit = mesh.PeerHit

// UseMesh attaches a federated-mesh peer view to the router. From
// then on the miss path — a key no local candidate already holds —
// asks the view which eligible, non-overloaded peer MEC announced the
// object and answers with a referral to that peer's C-DNS before
// escalating to the parent tier, and a dead LPM-mapped PoP falls back
// to the nearest healthy peer. Safe to call while serving.
func (rt *Router) UseMesh(v *mesh.View) { rt.peers.Store(v) }

// Mesh returns the attached peer view, or nil.
func (rt *Router) Mesh() *mesh.View { return rt.peers.Load() }

// AddServer registers a cache server with the router.
func (rt *Router) AddServer(s *CacheServer, loc geoip.Location) {
	rt.AddServerAdvertise(s, loc, netip.Addr{})
}

// AddServerAdvertise registers a cache server that is published in
// DNS answers under advertise (a Service cluster IP) rather than its
// host address. With a health registry attached the server starts
// probing and joins the hash ring only after its first successful
// probe; without one it is instantly routable, as before.
func (rt *Router) AddServerAdvertise(s *CacheServer, loc geoip.Location, advertise netip.Addr) {
	rt.wmu.Lock()
	defer rt.wmu.Unlock()
	rt.updateState(func(st *routerState) {
		st.servers[s.Name] = &ServerInfo{Server: s, Location: loc, Advertise: advertise}
	})
	if rt.Health == nil {
		rt.Ring.Add(s.Name)
		return
	}
	rt.Health.Add(s.Name, s.Addr().String())
	if st, ok := rt.Health.State(s.Name); ok && st.Routable() {
		// Re-registration of a server the registry already vouches for.
		rt.Ring.Add(s.Name)
	}
}

// RemoveServer deregisters a server (scale-down or failure).
func (rt *Router) RemoveServer(name string) {
	rt.wmu.Lock()
	defer rt.wmu.Unlock()
	rt.updateState(func(st *routerState) {
		delete(st.servers, name)
	})
	rt.Ring.Remove(name)
	if rt.Health != nil {
		rt.Health.Remove(name)
	}
}

// Servers returns the registered server names, sorted.
func (rt *Router) Servers() []string {
	st := rt.snapshot()
	names := make([]string, 0, len(st.servers))
	for n := range st.servers {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Name implements dnsserver.Plugin.
func (rt *Router) Name() string { return "cdn-router" }

// ServeDNS implements dnsserver.Plugin.
func (rt *Router) ServeDNS(ctx context.Context, w dnsserver.ResponseWriter, r *dnsserver.Request, next dnsserver.Handler) (dnswire.Rcode, error) {
	qname := r.Name()
	if !dnswire.IsSubdomain(rt.Domain, qname) {
		return next.ServeDNS(ctx, w, r)
	}
	routed := rt.counters()
	if r.Type() != dnswire.TypeA && r.Type() != dnswire.TypeANY {
		// The CDN domain exists but we only publish A records.
		routed.Inc("nodata")
		telemetry.Annotate(ctx, "cdn-router", "nodata")
		m := new(dnswire.Message)
		m.SetReply(r.Msg)
		m.Authoritative = true
		if err := w.WriteMsg(m); err != nil {
			return dnswire.RcodeServerFailure, err
		}
		return dnswire.RcodeSuccess, nil
	}

	endHop := telemetry.StartHop(ctx, "cdn-router")
	if rt.Health != nil && rt.Parent.IsValid() && rt.Health.FallbackActive() {
		// Ingress-load switch: the MEC site is above its high
		// watermark, so answer from the fallback path (the paper's DoS
		// mechanism) until load has dwelled under the low watermark.
		routed.Inc("load_fallback")
		endHop("load-fallback")
		return rt.writeReferral(w, r)
	}
	client := rt.clientInfo(r)

	// Subnet→PoP table first: with a table installed the disclosed
	// subnet picks the edge directly, and the answer's scope is exactly
	// the matched route length. scope stays -1 when no table is set
	// (legacy echo: scope = source).
	var addr netip.Addr
	scope := -1
	if popAddr, popRef, popScope, tabled := rt.subnetRoute(client); tabled {
		if popRef.IsValid() {
			// Geo-aware fallback: the mapped PoP is dead, so delegate
			// to the nearest healthy peer MEC instead of answering it.
			routed.Inc("peer_fallback")
			endHop("peer-fallback")
			return rt.writeReferralTo(w, r, popRef)
		}
		scope = popScope
		addr = popAddr
	}

	switch {
	case addr.IsValid():
		routed.Inc("selected")
		endHop("subnet-route")
	default:
		selected, peer, steered := rt.RoutePeer(qname, client)
		switch {
		case steered:
			// Horizontal cooperation: a sibling MEC announced this
			// object, so delegate the client there — same referral
			// mechanics as the cross-tier escalation, just pointed at
			// the peer's C-DNS instead of the parent's.
			routed.Inc("peer")
			endHop("peer:" + peer.Name)
			return rt.writeReferralTo(w, r, peer.Addr)
		case selected != nil:
			addr = selected.Answer()
			routed.Inc("selected")
			endHop(selected.Server.Name)
		case rt.Parent.IsValid():
			// Cross-tier referral: "C-DNS simply returns the address of
			// another C-DNS running at a different CDN tier" (§3 P2).
			// Encoded as a proper DNS referral so clients and resolvers
			// can chase it: NS in authority, glue in additional.
			routed.Inc("referral")
			endHop("referral")
			return rt.writeReferral(w, r)
		default:
			routed.Inc("failed")
			endHop("failed")
			m := new(dnswire.Message)
			m.SetRcode(r.Msg, dnswire.RcodeServerFailure)
			_ = w.WriteMsg(m)
			return dnswire.RcodeServerFailure, nil
		}
	}

	ttl := rt.TTL
	if ttl == 0 {
		ttl = 30
	}
	m := new(dnswire.Message)
	m.SetReply(r.Msg)
	m.Authoritative = true
	m.Answers = []dnswire.RR{&dnswire.A{
		Hdr:  dnswire.RRHeader{Name: qname, Type: dnswire.TypeA, Class: dnswire.ClassINET, TTL: ttl},
		Addr: addr,
	}}
	if ecs, ok := r.Msg.ECS(); ok {
		opt := m.SetEDNS(dnswire.DefaultEDNSSize)
		scoped := *ecs
		if scope >= 0 {
			// RFC 7871 §7.2.1: scope = how much of the address the
			// answer actually depended on — the matched route length on
			// a table hit, 0 when the table did not discriminate.
			scoped.ScopePrefix = uint8(scope)
		} else {
			// No table: policy routing may have used the full disclosed
			// prefix (geo distance), so keep the historical full echo.
			scoped.ScopePrefix = ecs.SourcePrefix
		}
		opt.Options = append(opt.Options, &scoped)
	}
	if err := w.WriteMsg(m); err != nil {
		return dnswire.RcodeServerFailure, err
	}
	return dnswire.RcodeSuccess, nil
}

// ReferralNS is the owner label used for cross-tier C-DNS referrals:
// the NS target is "<ReferralNS>.<cdn domain>" with a glue A record
// carrying the parent router's address.
const ReferralNS = "cdns-next-tier"

// writeReferral answers with a delegation pointing at the parent-tier
// C-DNS.
func (rt *Router) writeReferral(w dnsserver.ResponseWriter, r *dnsserver.Request) (dnswire.Rcode, error) {
	return rt.writeReferralTo(w, r, rt.Parent)
}

// writeReferralTo answers with a delegation pointing at another C-DNS
// — the parent tier or a mesh peer site.
func (rt *Router) writeReferralTo(w dnsserver.ResponseWriter, r *dnsserver.Request, next netip.Addr) (dnswire.Rcode, error) {
	nsName := ReferralNS + "." + rt.Domain
	m := new(dnswire.Message)
	m.SetReply(r.Msg)
	m.Authorities = []dnswire.RR{&dnswire.NS{
		Hdr: dnswire.RRHeader{Name: rt.Domain, Type: dnswire.TypeNS, Class: dnswire.ClassINET, TTL: 30},
		NS:  nsName,
	}}
	m.Additionals = []dnswire.RR{&dnswire.A{
		Hdr:  dnswire.RRHeader{Name: nsName, Type: dnswire.TypeA, Class: dnswire.ClassINET, TTL: 30},
		Addr: next,
	}}
	if err := w.WriteMsg(m); err != nil {
		return dnswire.RcodeServerFailure, err
	}
	return dnswire.RcodeSuccess, nil
}

// Referral extracts the next-tier C-DNS address from a response, if
// it is a cross-tier referral produced by writeReferral.
func Referral(m *dnswire.Message) (netip.Addr, bool) {
	if len(m.Answers) > 0 {
		return netip.Addr{}, false
	}
	hasNS := false
	for _, rr := range m.Authorities {
		if ns, ok := rr.(*dnswire.NS); ok &&
			dnswire.CanonicalName(ns.NS) == dnswire.CanonicalName(ReferralNS+"."+ns.Hdr.Name) {
			hasNS = true
		}
	}
	if !hasNS {
		return netip.Addr{}, false
	}
	for _, rr := range m.Additionals {
		if a, ok := rr.(*dnswire.A); ok {
			return a.Addr, true
		}
	}
	return netip.Addr{}, false
}

// Route selects a cache server for a content key, or nil when no
// healthy server can serve it locally. With a health registry
// attached, a candidate must pass both the server's own flag and the
// registry's verdict, and healthy servers are preferred over degraded
// ones — an all-degraded set still serves best-effort rather than
// failing over. Route is mesh-blind; RoutePeer layers peer steering
// on top.
func (rt *Router) Route(key string, client ClientInfo) *ServerInfo {
	selected := rt.selectLocal(key, client)
	if selected != nil {
		// Feed the ring's load cells: one unit per routing decision,
		// charged to the server the policy actually picked (which may
		// differ from the bounded walk's first owner). The bounded
		// lookup's cap reads these counters; under a plain ring they
		// only drive the meccdn_ring_* load metrics.
		rt.Ring.RecordLoad(selected.Server.Name)
	}
	return selected
}

// RoutePeer is the mesh-aware routing decision: local candidate
// selection first, then — when the local pick would miss (no candidate
// at all, or the policy's pick does not hold the object) — the peer
// view. A steered decision returns (nil, hit, true) and charges the
// peer's bounded-load cell; otherwise the local pick (possibly nil)
// is returned and charged exactly as Route would. Lock-free on the
// serve path: the snapshot loads aside, no locks are taken.
func (rt *Router) RoutePeer(key string, client ClientInfo) (*ServerInfo, mesh.PeerHit, bool) {
	selected := rt.selectLocal(key, client)
	if v := rt.peers.Load(); v != nil {
		if selected == nil || !selected.Server.Cache().Contains(key) {
			if hit, ok := v.Steer(key); ok {
				return nil, hit, true
			}
		}
	}
	if selected != nil {
		rt.Ring.RecordLoad(selected.Server.Name)
	}
	return selected, mesh.PeerHit{}, false
}

// PeerLookup asks the attached mesh view which peer announced key,
// without charging load or counters — the pure read the lock-free
// certification and BenchmarkRoutePeerLookup exercise: one atomic
// snapshot load, zero allocations.
func (rt *Router) PeerLookup(key string) (mesh.PeerHit, bool) {
	if v := rt.peers.Load(); v != nil {
		return v.Lookup(key)
	}
	return mesh.PeerHit{}, false
}

// selectLocal runs candidate selection over the site's own servers
// without charging the ring's load cells.
func (rt *Router) selectLocal(key string, client ClientInfo) *ServerInfo {
	st := rt.snapshot()
	if len(st.servers) == 0 {
		return nil
	}
	replicas := rt.Replicas
	if replicas <= 0 {
		replicas = 2
	}
	// Candidate scratch lives on the stack: the ring walk appends into
	// a fixed backing array (append spills to the heap only past
	// smallOwners candidates), keeping the no-spill Route allocation-
	// free through candidate selection.
	var prefArr, degArr [smallOwners]*ServerInfo
	preferred, degraded := prefArr[:0], degArr[:0]
	consider := func(name string) {
		s := st.servers[name]
		if s == nil || !s.Server.Healthy() {
			return
		}
		if rt.Health == nil {
			preferred = append(preferred, s)
			return
		}
		routable, deg := rt.Health.Eligible(name)
		switch {
		case !routable:
		case deg:
			degraded = append(degraded, s)
		default:
			preferred = append(preferred, s)
		}
	}
	var ownersBuf [smallOwners]string
	for _, name := range rt.Ring.OwnersAppend(ownersBuf[:0], key, replicas) {
		consider(name)
	}
	if len(preferred) == 0 && len(degraded) == 0 {
		// All ring owners are down: fall back to any healthy server,
		// iterated in sorted order for determinism.
		names := make([]string, 0, len(st.servers))
		for n := range st.servers {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, name := range names {
			consider(name)
		}
	}
	candidates := preferred
	if len(candidates) == 0 {
		candidates = degraded
	}
	if len(candidates) == 0 {
		return nil
	}
	policy := rt.Policy
	if policy == nil {
		policy = AvailabilityFirst{}
	}
	return policy.Select(candidates, key, client)
}

// clientInfo assembles what the router knows about the requester.
func (rt *Router) clientInfo(r *dnsserver.Request) ClientInfo {
	info := ClientInfo{Addr: r.Client.Addr()}
	lookupAddr := info.Addr
	if ecs, ok := r.Msg.ECS(); ok {
		info.ECS = ecs.Prefix()
		lookupAddr = ecs.Address
	}
	if rt.Geo != nil && lookupAddr.IsValid() {
		if loc, ok := rt.Geo.Lookup(lookupAddr); ok {
			info.Location = loc
			info.Located = true
		}
	}
	return info
}
