package cdn

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"
)

// TestBoundedLoadInvariant is the property test for consistent
// hashing with bounded loads: under randomized add/remove/lookup
// churn, no member's load counter ever exceeds ⌈c·(total+1)/members⌉
// at the instant its assignment lands.
func TestBoundedLoadInvariant(t *testing.T) {
	for _, c := range []float64{1.1, 1.25, 2.0} {
		c := c
		t.Run(fmt.Sprintf("c=%v", c), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(c * 1000)))
			ring := NewHashRing()
			ring.Replicas = 64
			ring.Bounded = true
			ring.LoadFactor = c
			live := map[string]bool{}
			for i := 0; i < 4; i++ {
				m := fmt.Sprintf("m-%02d", i)
				ring.Add(m)
				live[m] = true
			}
			nextID := 4
			for step := 0; step < 20000; step++ {
				switch r := rng.Float64(); {
				case r < 0.005 && len(live) < 24:
					m := fmt.Sprintf("m-%02d", nextID)
					nextID++
					ring.Add(m)
					live[m] = true
				case r < 0.01 && len(live) > 2:
					for m := range live {
						ring.Remove(m)
						delete(live, m)
						break
					}
				case r < 0.02:
					ring.DecayLoads(rng.Float64())
				default:
					owner := ring.Owner(fmt.Sprintf("key-%d", rng.Intn(512)))
					if owner == "" {
						t.Fatal("empty owner on non-empty ring")
					}
					if !live[owner] {
						t.Fatalf("owner %s not a live member", owner)
					}
					// Cap as of before this assignment lands.
					capLoad := int64(math.Ceil(c * float64(ring.totalForTest()+1) / float64(len(live))))
					ring.RecordLoad(owner)
					if got := ring.Load(owner); got > capLoad {
						t.Fatalf("step %d: member %s load %d exceeds cap %d (c=%v, members=%d)",
							step, owner, got, capLoad, c, len(live))
					}
				}
			}
			// The aggregate invariant: max/mean ≤ c + one-assignment
			// slack (the +1 in the cap formula).
			max, mean := ring.LoadStats()
			if mean > 0 && float64(max) > c*mean+c {
				t.Errorf("final spread %0.2f/%0.2f exceeds c=%v", float64(max), mean, c)
			}
		})
	}
}

// totalForTest exposes the total-load mirror to the property test.
func (r *HashRing) totalForTest() int64 { return r.total.Load() }

// TestBoundedSpillDeterminism: with the snapshot and the load cells
// frozen, the bounded owner is a pure function of the key.
func TestBoundedSpillDeterminism(t *testing.T) {
	ring := NewHashRing()
	ring.Bounded = true
	for i := 0; i < 8; i++ {
		ring.Add(fmt.Sprintf("m-%d", i))
	}
	// Saturate a few members so lookups actually spill.
	for i := 0; i < 200; i++ {
		ring.RecordLoad(fmt.Sprintf("m-%d", i%3))
	}
	if ring.Spills() != 0 {
		t.Fatal("RecordLoad alone must not spill")
	}
	first := make(map[string]string)
	for round := 0; round < 5; round++ {
		for k := 0; k < 256; k++ {
			key := fmt.Sprintf("key-%d", k)
			owner := ring.Owner(key)
			if round == 0 {
				first[key] = owner
			} else if first[key] != owner {
				t.Fatalf("key %s: owner %s on round %d, was %s (loads unchanged)",
					key, owner, round, first[key])
			}
		}
	}
	if ring.Spills() == 0 {
		t.Error("no lookup spilled off the saturated members")
	}
}

// TestBoundedCapRelaxesOnMemberLoss: removing members raises the
// per-member cap (mean load is over current members only), so a
// previously saturated member can become an owner again without any
// decay.
func TestBoundedCapRelaxesOnMemberLoss(t *testing.T) {
	ring := NewHashRing()
	ring.Bounded = true
	members := []string{"a", "b", "c", "d"}
	for _, m := range members {
		ring.Add(m)
	}
	// Load "a" to exactly the 4-member cap so it rejects new keys.
	for i := 0; i < 100; i++ {
		for _, m := range members {
			ring.RecordLoad(m)
		}
	}
	sat := func() bool {
		s := ring.state.Load()
		return ring.Load("a") >= s.capacity(ring.loadFactor(), ring.total.Load())
	}
	// Push "a" past the 4-member cap (the cap grows with total, so
	// this converges once a's share beats c/members of the stream).
	for i := 0; i < 10000 && !sat(); i++ {
		ring.RecordLoad("a")
	}
	if !sat() {
		t.Fatalf("setup: a not saturated (load %d)", ring.Load("a"))
	}
	before := ring.Load("a")
	ring.Remove("b")
	ring.Remove("c")
	// Cap over 2 members: ceil(1.25*(total+1)/2) — far above a's load.
	if sat() {
		s := ring.state.Load()
		t.Fatalf("cap did not relax: a load %d, cap %d after member loss",
			ring.Load("a"), s.capacity(ring.loadFactor(), ring.total.Load()))
	}
	// And a's counter survived the rebuilds.
	if ring.Load("a") != before {
		t.Fatalf("a's load cell changed across rebuild: %d, want %d", ring.Load("a"), before)
	}
}

// TestBoundedChurnRace hammers the ring from concurrent lookup,
// record, decay, and membership goroutines; run with -race this is
// the data-race certification for the shared load cells.
func TestBoundedChurnRace(t *testing.T) {
	ring := NewHashRing()
	ring.Replicas = 32
	ring.Bounded = true
	for i := 0; i < 8; i++ {
		ring.Add(fmt.Sprintf("m-%d", i))
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			var buf [4]string
			for i := 0; i < 5000; i++ {
				owners := ring.OwnersAppend(buf[:0], fmt.Sprintf("key-%d-%d", id, i%64), 2)
				if len(owners) > 0 {
					ring.RecordLoad(owners[0])
				}
				ring.LoadStats()
				ring.LoadSpread()
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 400; i++ {
			ring.Remove(fmt.Sprintf("m-%d", i%4))
			ring.Add(fmt.Sprintf("m-%d", i%4))
			if i%10 == 0 {
				ring.DecayLoads(0.5)
			}
		}
	}()
	wg.Wait()
	if n := ring.NumMembers(); n != 8 {
		t.Fatalf("members after churn: %d", n)
	}
}

// TestOwnersAppendParity: OwnersAppend and Owners return identical
// candidates, and both parities hold in bounded mode.
func TestOwnersAppendParity(t *testing.T) {
	for _, bounded := range []bool{false, true} {
		ring := NewHashRing()
		ring.Bounded = bounded
		for i := 0; i < 12; i++ {
			ring.Add(fmt.Sprintf("m-%02d", i))
		}
		for i := 0; i < 50; i++ {
			ring.RecordLoad(fmt.Sprintf("m-%02d", i%3))
		}
		var buf [8]string
		for k := 0; k < 200; k++ {
			key := fmt.Sprintf("key-%d", k)
			for _, n := range []int{1, 2, 3, 12, 20} {
				a := ring.Owners(key, n)
				b := ring.OwnersAppend(buf[:0], key, n)
				if len(a) != len(b) {
					t.Fatalf("bounded=%v key=%s n=%d: len %d vs %d", bounded, key, n, len(a), len(b))
				}
				for i := range a {
					if a[i] != b[i] {
						t.Fatalf("bounded=%v key=%s n=%d: %v vs %v", bounded, key, n, a, b)
					}
				}
				seen := map[string]bool{}
				for _, m := range b {
					if seen[m] {
						t.Fatalf("bounded=%v key=%s n=%d: duplicate member %s in %v", bounded, key, n, m, b)
					}
					seen[m] = true
				}
			}
		}
	}
}

// TestModuloPlacementSnapshot covers the converted ablation baseline:
// lock-free reads agree with the sorted semantics and survive
// concurrent churn under -race.
func TestModuloPlacementSnapshot(t *testing.T) {
	m := &ModuloPlacement{}
	if m.Owner("anything") != "" {
		t.Fatal("empty placement must return empty owner")
	}
	m.Add("b")
	m.Add("a")
	m.Add("a") // idempotent
	owner := m.Owner("some-key")
	if owner != "a" && owner != "b" {
		t.Fatalf("owner %q not a member", owner)
	}
	m.Remove("a")
	if got := m.Owner("some-key"); got != "b" {
		t.Fatalf("after removal owner = %q, want b", got)
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < 3000; i++ {
				m.Owner(fmt.Sprintf("key-%d-%d", id, i))
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 300; i++ {
			m.Add(fmt.Sprintf("x-%d", i%5))
			m.Remove(fmt.Sprintf("x-%d", (i+2)%5))
		}
	}()
	wg.Wait()
}
