package cdn

import (
	"fmt"
	"net/netip"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/meccdn/meccdn/internal/simnet"
)

// Tier is a CDN hierarchy level.
type Tier int

// CDN tiers, nearest to farthest from the client.
const (
	TierEdge Tier = iota // at the MEC site
	TierMid              // alongside the mobile core
	TierFar              // in the cloud, over WAN
)

// String returns the tier label.
func (t Tier) String() string {
	switch t {
	case TierEdge:
		return "edge"
	case TierMid:
		return "mid"
	case TierFar:
		return "far"
	}
	return fmt.Sprintf("tier(%d)", int(t))
}

// The content protocol is a two-line text exchange over simnet
// datagrams:
//
//	request:  GET <domain> <name>
//	response: HIT <size> | FILLED <size> | NOTFOUND | ERR <msg>
//
// HIT means served from this server's cache; FILLED means a miss that
// was filled from the parent tier (the client still gets the object,
// later and at backhaul cost).
//
// Health probes use a separate verb so they touch neither the cache
// nor the load window:
//
//	request:  PING
//	response: PONG | ERR unavailable

// FetchResult describes how a content request was served.
type FetchResult struct {
	Status string // "HIT", "FILLED", "NOTFOUND", "ERR"
	Size   int64
	// RTT is the virtual time the fetch took end to end.
	RTT time.Duration
}

// Served reports whether the object was delivered.
func (f FetchResult) Served() bool { return f.Status == "HIT" || f.Status == "FILLED" }

// Fetch requests (domain, name) from the content server at addr using
// the given simnet endpoint.
func Fetch(ep *simnet.Endpoint, addr netip.Addr, domain, name string, timeout time.Duration) (FetchResult, error) {
	payload := []byte("GET " + domain + " " + name)
	resp, rtt, err := ep.Exchange(addr, payload, timeout)
	if err != nil {
		return FetchResult{RTT: rtt}, fmt.Errorf("fetching %s/%s from %v: %w", domain, name, addr, err)
	}
	res := FetchResult{RTT: rtt}
	fields := strings.Fields(string(resp))
	if len(fields) == 0 {
		return res, fmt.Errorf("fetching %s/%s: empty response", domain, name)
	}
	res.Status = fields[0]
	if len(fields) > 1 {
		if n, err := strconv.ParseInt(fields[1], 10, 64); err == nil {
			res.Size = n
		}
	}
	return res, nil
}

// CacheServer is one CDN cache instance bound to a simnet node.
type CacheServer struct {
	// Name identifies the server to the router and hash ring.
	Name string
	// Site labels the server's physical location (edge site id).
	Site string
	// Tier is the server's hierarchy level.
	Tier Tier

	node   *simnet.Node
	cache  *LRU
	parent netip.Addr // next tier (or origin service) for miss fill
	domain map[string]bool

	// ServeDelay is the per-request processing time; nil means zero.
	ServeDelay simnet.Sampler
	// TransferRate in bytes per second; 0 means instantaneous.
	TransferRate int64

	mu      sync.Mutex
	healthy bool
	// recent holds request timestamps inside the load window.
	recent []time.Duration
	window time.Duration
}

// CacheServerConfig configures NewCacheServer.
type CacheServerConfig struct {
	Name          string
	Site          string
	Tier          Tier
	CapacityBytes int64
	// Parent is the address misses are filled from. Unset (zero
	// Addr) makes misses NOTFOUND — a leaf with no upstream.
	Parent netip.Addr
	// Domains this server is willing to serve.
	Domains []string
	// ServeDelay samples per-request processing time.
	ServeDelay simnet.Sampler
	// TransferRate, when non-zero, models serialization delay: a
	// served object of S bytes adds S/TransferRate seconds to the
	// response (bytes per second).
	TransferRate int64
	// LoadWindow is the sliding window for load accounting; zero
	// means 1s.
	LoadWindow time.Duration
}

// NewCacheServer creates a cache server and installs its handler on
// node.
func NewCacheServer(node *simnet.Node, cfg CacheServerConfig) *CacheServer {
	s := &CacheServer{
		Name:         cfg.Name,
		Site:         cfg.Site,
		Tier:         cfg.Tier,
		node:         node,
		cache:        NewLRU(cfg.CapacityBytes),
		parent:       cfg.Parent,
		domain:       make(map[string]bool, len(cfg.Domains)),
		ServeDelay:   cfg.ServeDelay,
		TransferRate: cfg.TransferRate,
		healthy:      true,
		window:       cfg.LoadWindow,
	}
	if s.Name == "" {
		s.Name = node.Name
	}
	if s.window <= 0 {
		s.window = time.Second
	}
	for _, d := range cfg.Domains {
		s.domain[canonicalDomain(d)] = true
	}
	node.SetHandler(simnet.HandlerFunc(s.handle))
	return s
}

func canonicalDomain(d string) string {
	d = strings.ToLower(d)
	if !strings.HasSuffix(d, ".") {
		d += "."
	}
	return d
}

// Addr returns the server's network address.
func (s *CacheServer) Addr() netip.Addr { return s.node.Addr }

// Cache exposes the underlying LRU for stats and warm-up.
func (s *CacheServer) Cache() *LRU { return s.cache }

// Healthy reports the server's health flag.
func (s *CacheServer) Healthy() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.healthy
}

// SetHealthy flips the health flag (failure injection). This is the
// data-plane chaos layer: a server with the flag off refuses content
// requests and health probes alike, so an attached health.Registry
// observes the failure and demotes it. For a control-plane override
// that pins routing without touching the server, use the registry's
// SetOverride instead.
func (s *CacheServer) SetHealthy(up bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.healthy = up
}

// Load returns the number of requests inside the sliding window.
func (s *CacheServer) Load() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.prune(s.node.Network().Now())
	return len(s.recent)
}

func (s *CacheServer) prune(now time.Duration) {
	cut := 0
	for cut < len(s.recent) && now-s.recent[cut] > s.window {
		cut++
	}
	s.recent = s.recent[cut:]
}

// Warm preloads content into the server's cache (the orchestrator's
// pre-positioning step when a MEC-CDN instance deploys).
func (s *CacheServer) Warm(contents ...Content) {
	for _, c := range contents {
		s.cache.Put(c)
	}
}

// Strict bounds on the content protocol's verb parser: a request over
// maxRequestLen is dropped before field-splitting, and each GET field
// is length-checked, so a misdirected or adversarial datagram (for
// example a binary mesh ANNOUNCE aimed at a cache instead of a mesh
// agent) is counted as an error reply and can never panic the server
// or blow up its parse cost.
const (
	maxRequestLen = 512
	maxFieldLen   = 255
)

func (s *CacheServer) handle(ctx *simnet.Ctx, dg simnet.Datagram) {
	if len(dg.Payload) > maxRequestLen {
		ctx.Reply([]byte("ERR too-long"), 0)
		return
	}
	fields := strings.Fields(string(dg.Payload))
	replySized := func(msg string, size int64) {
		var delay time.Duration
		if s.ServeDelay != nil {
			delay = s.ServeDelay.Sample(ctx.Network().Rand())
		}
		if s.TransferRate > 0 && size > 0 {
			delay += time.Duration(size * int64(time.Second) / s.TransferRate)
		}
		ctx.Reply([]byte(msg), delay)
	}
	reply := func(msg string) { replySized(msg, 0) }
	if len(fields) == 1 && fields[0] == "PING" {
		// Health probe: answered before load accounting so probes never
		// skew the load window, and gated on the health flag so failure
		// injection (SetHealthy) is visible to the prober, not just to
		// content requests.
		s.mu.Lock()
		healthy := s.healthy
		s.mu.Unlock()
		if healthy {
			reply("PONG")
		} else {
			reply("ERR unavailable")
		}
		return
	}
	if len(fields) != 3 || fields[0] != "GET" ||
		len(fields[1]) == 0 || len(fields[1]) > maxFieldLen ||
		len(fields[2]) == 0 || len(fields[2]) > maxFieldLen {
		reply("ERR bad-request")
		return
	}
	domain, name := canonicalDomain(fields[1]), fields[2]

	s.mu.Lock()
	now := ctx.Now()
	s.recent = append(s.recent, now)
	s.prune(now)
	healthy := s.healthy
	serves := len(s.domain) == 0 || s.domain[domain]
	s.mu.Unlock()

	if !healthy || !serves {
		reply("ERR unavailable")
		return
	}
	if obj, ok := s.cache.Get(name); ok {
		replySized(fmt.Sprintf("HIT %d", obj.Size), obj.Size)
		return
	}
	if !s.parent.IsValid() {
		reply("NOTFOUND")
		return
	}
	// Miss: fill from the parent tier in virtual time.
	res, err := Fetch(s.node.Endpoint(), s.parent, domain, name, 5*time.Second)
	if err != nil || !res.Served() {
		reply("NOTFOUND")
		return
	}
	s.cache.Put(Content{Name: name, Size: res.Size})
	replySized(fmt.Sprintf("FILLED %d", res.Size), res.Size)
}

// OriginServer exposes an Origin store as a simnet content service.
type OriginServer struct {
	origin *Origin
	node   *simnet.Node
	// ServeDelay samples per-request origin processing time.
	ServeDelay simnet.Sampler
}

// NewOriginServer installs origin on node.
func NewOriginServer(node *simnet.Node, origin *Origin, serveDelay simnet.Sampler) *OriginServer {
	s := &OriginServer{origin: origin, node: node, ServeDelay: serveDelay}
	node.SetHandler(simnet.HandlerFunc(s.handle))
	return s
}

// Addr returns the origin service address.
func (s *OriginServer) Addr() netip.Addr { return s.node.Addr }

func (s *OriginServer) handle(ctx *simnet.Ctx, dg simnet.Datagram) {
	if len(dg.Payload) > maxRequestLen {
		ctx.Reply([]byte("ERR too-long"), 0)
		return
	}
	fields := strings.Fields(string(dg.Payload))
	reply := func(msg string) {
		var delay time.Duration
		if s.ServeDelay != nil {
			delay = s.ServeDelay.Sample(ctx.Network().Rand())
		}
		ctx.Reply([]byte(msg), delay)
	}
	if len(fields) != 3 || fields[0] != "GET" ||
		len(fields[1]) == 0 || len(fields[1]) > maxFieldLen ||
		len(fields[2]) == 0 || len(fields[2]) > maxFieldLen {
		reply("ERR bad-request")
		return
	}
	obj, ok := s.origin.Fetch(canonicalDomain(fields[1]), fields[2])
	if !ok {
		reply("NOTFOUND")
		return
	}
	reply(fmt.Sprintf("HIT %d", obj.Size))
}
