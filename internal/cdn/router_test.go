package cdn

import (
	"context"
	"fmt"
	"net/netip"
	"testing"
	"time"

	"github.com/meccdn/meccdn/internal/dnsserver"
	"github.com/meccdn/meccdn/internal/dnswire"
	"github.com/meccdn/meccdn/internal/geoip"
	"github.com/meccdn/meccdn/internal/health"
	"github.com/meccdn/meccdn/internal/simnet"
	"github.com/meccdn/meccdn/internal/vclock"
)

// routerFixture is a router over three edge cache servers. When built
// with health (buildHealthFixture), reg/checker/clock drive the probe
// control plane in virtual time.
type routerFixture struct {
	net     *simnet.Network
	router  *Router
	servers []*CacheServer
	reg     *health.Registry
	checker *health.Checker
	clock   *vclock.Fixed
}

func buildRouterFixture(t *testing.T, seed int64) *routerFixture {
	t.Helper()
	return buildFixture(t, seed, nil)
}

// buildHealthFixture builds the same topology with a probe-fed health
// registry attached; servers are registered but not yet admitted (no
// probe has run). mutate tweaks the health config before use.
func buildHealthFixture(t *testing.T, seed int64, mutate func(*health.Config)) *routerFixture {
	t.Helper()
	cfg := &health.Config{
		ProbeInterval: time.Second,
		DownAfter:     3,
		UpAfter:       2,
		MinDwell:      -1, // tests advance the clock explicitly where dwell matters
		Clock:         &vclock.Fixed{},
	}
	if mutate != nil {
		mutate(cfg)
	}
	return buildFixture(t, seed, cfg)
}

func buildFixture(t *testing.T, seed int64, hc *health.Config) *routerFixture {
	t.Helper()
	n := simnet.New(seed)
	n.AddNode("hub")
	rt := NewRouter("mycdn.ciab.test.")
	fx := &routerFixture{net: n, router: rt}
	if hc != nil {
		fx.clock, _ = hc.Clock.(*vclock.Fixed)
		fx.reg = health.New(*hc)
		rt.UseHealth(fx.reg)
		fx.checker = &health.Checker{
			Registry: fx.reg,
			Prober:   &CacheProber{Endpoint: n.Node("hub").Endpoint()},
		}
	}
	for i := 0; i < 3; i++ {
		name := fmt.Sprintf("cache-%d", i)
		n.AddNode(name)
		n.AddLink("hub", name, simnet.Constant(time.Millisecond), 0)
		s := NewCacheServer(n.Node(name), CacheServerConfig{
			Name: name, Site: "mec-1", Tier: TierEdge, CapacityBytes: 1 << 20,
			Domains: []string{"mycdn.ciab.test."},
		})
		rt.AddServer(s, geoip.Location{X: float64(i * 100), Name: name})
		fx.servers = append(fx.servers, s)
	}
	return fx
}

// probe runs one deterministic probe sweep.
func (fx *routerFixture) probe(t *testing.T) {
	t.Helper()
	fx.checker.RunOnce(context.Background())
}

func routerQuery(t *testing.T, rt *Router, qname string, client string) *dnswire.Message {
	t.Helper()
	q := new(dnswire.Message)
	q.SetQuestion(qname, dnswire.TypeA)
	req := &dnsserver.Request{Msg: q, Transport: "test"}
	if client != "" {
		req.Client = netip.MustParseAddrPort(client)
	}
	return dnsserver.Resolve(context.Background(), dnsserver.Chain(rt), req)
}

func TestRouterAnswersWithCacheServer(t *testing.T) {
	fx := buildRouterFixture(t, 1)
	resp := routerQuery(t, fx.router, "video.demo1.mycdn.ciab.test.", "198.51.100.1:5300")
	if resp.Rcode != dnswire.RcodeSuccess || len(resp.Answers) != 1 {
		t.Fatalf("rcode=%v answers=%v", resp.Rcode, resp.Answers)
	}
	got := resp.Answers[0].(*dnswire.A).Addr
	found := false
	for _, s := range fx.servers {
		if s.Addr() == got {
			found = true
		}
	}
	if !found {
		t.Errorf("answer %v is not a registered cache server", got)
	}
	if ttl := resp.Answers[0].Header().TTL; ttl != 30 {
		t.Errorf("ttl = %d", ttl)
	}
}

func TestRouterStableMapping(t *testing.T) {
	fx := buildRouterFixture(t, 2)
	first := routerQuery(t, fx.router, "video.x.mycdn.ciab.test.", "198.51.100.1:5300").Answers[0].(*dnswire.A).Addr
	for i := 0; i < 5; i++ {
		got := routerQuery(t, fx.router, "video.x.mycdn.ciab.test.", "198.51.100.1:5300").Answers[0].(*dnswire.A).Addr
		if got != first {
			t.Fatal("mapping not stable across queries")
		}
	}
}

func TestRouterFallsThroughForOtherDomains(t *testing.T) {
	fx := buildRouterFixture(t, 3)
	resp := routerQuery(t, fx.router, "www.unrelated.example.", "")
	if resp.Rcode != dnswire.RcodeRefused {
		t.Errorf("rcode = %v, want chain fallthrough REFUSED", resp.Rcode)
	}
}

func TestRouterNoDataForNonA(t *testing.T) {
	fx := buildRouterFixture(t, 4)
	q := new(dnswire.Message)
	q.SetQuestion("video.demo1.mycdn.ciab.test.", dnswire.TypeAAAA)
	resp := dnsserver.Resolve(context.Background(), dnsserver.Chain(fx.router), &dnsserver.Request{Msg: q})
	if resp.Rcode != dnswire.RcodeSuccess || len(resp.Answers) != 0 {
		t.Errorf("rcode=%v answers=%v", resp.Rcode, resp.Answers)
	}
}

func TestRouterSkipsUnhealthy(t *testing.T) {
	fx := buildHealthFixture(t, 5, nil)
	fx.probe(t)
	key := "video.y.mycdn.ciab.test."
	primary := fx.router.Route(key, ClientInfo{})
	fx.reg.SetOverride(primary.Server.Name, false)
	second := fx.router.Route(key, ClientInfo{})
	if second == nil {
		t.Fatal("no server after failure")
	}
	if second.Server.Name == primary.Server.Name {
		t.Error("unhealthy server still selected")
	}
}

func TestRouterAllDownFallsBackToParent(t *testing.T) {
	fx := buildHealthFixture(t, 6, nil)
	fx.probe(t)
	for _, s := range fx.servers {
		fx.reg.SetOverride(s.Name, false)
	}
	parent := netip.MustParseAddr("203.0.113.200")
	fx.router.Parent = parent
	resp := routerQuery(t, fx.router, "video.demo1.mycdn.ciab.test.", "")
	got, ok := Referral(resp)
	if !ok || got != parent {
		t.Errorf("referral = %v (%v), want parent %v\n%v", got, ok, parent, resp)
	}
}

func TestReferralDetection(t *testing.T) {
	// A plain positive answer is not a referral.
	fx := buildRouterFixture(t, 60)
	resp := routerQuery(t, fx.router, "video.demo1.mycdn.ciab.test.", "")
	if _, ok := Referral(resp); ok {
		t.Error("positive answer detected as referral")
	}
	// A zone delegation with a different NS name is not a tier
	// referral either.
	m := new(dnswire.Message)
	m.Authorities = []dnswire.RR{&dnswire.NS{
		Hdr: dnswire.RRHeader{Name: "x.test.", Type: dnswire.TypeNS, Class: dnswire.ClassINET, TTL: 30},
		NS:  "ns1.x.test.",
	}}
	if _, ok := Referral(m); ok {
		t.Error("ordinary delegation detected as tier referral")
	}
}

func TestRouterAllDownNoParentServfails(t *testing.T) {
	fx := buildHealthFixture(t, 7, nil)
	fx.probe(t)
	for _, s := range fx.servers {
		fx.reg.SetOverride(s.Name, false)
	}
	resp := routerQuery(t, fx.router, "video.demo1.mycdn.ciab.test.", "")
	if resp.Rcode != dnswire.RcodeServerFailure {
		t.Errorf("rcode = %v", resp.Rcode)
	}
}

func TestRouterProbingJoinsRingAfterFirstSuccess(t *testing.T) {
	fx := buildHealthFixture(t, 50, nil)
	// Registered but never probed: not routable, not in the ring.
	if got := fx.router.Ring.Members(); len(got) != 0 {
		t.Fatalf("unprobed servers already in the ring: %v", got)
	}
	if sel := fx.router.Route("video.x.mycdn.ciab.test.", ClientInfo{}); sel != nil {
		t.Fatalf("probing server selected: %s", sel.Server.Name)
	}
	fx.probe(t)
	if got := fx.router.Ring.Members(); len(got) != 3 {
		t.Fatalf("ring after first probe sweep = %v, want all 3", got)
	}
	if sel := fx.router.Route("video.x.mycdn.ciab.test.", ClientInfo{}); sel == nil {
		t.Fatal("no selection after servers were admitted")
	}
}

// TestRouterDemotesDeadCache is the acceptance scenario: a cache that
// stops answering probes is demoted to down and removed from routing
// within DownAfter probe sweeps.
func TestRouterDemotesDeadCache(t *testing.T) {
	fx := buildHealthFixture(t, 51, nil)
	fx.probe(t)
	key := "video.kill.mycdn.ciab.test."
	victim := fx.router.Route(key, ClientInfo{}).Server
	// The server dies outright: its node stops answering anything.
	fx.net.Node(victim.Name).SetHandler(nil)
	for i := 0; i < 3; i++ { // DownAfter = 3
		fx.probe(t)
	}
	if st, _ := fx.reg.State(victim.Name); st != health.StateDown {
		t.Fatalf("victim state = %v, want down", st)
	}
	for _, m := range fx.router.Ring.Members() {
		if m == victim.Name {
			t.Fatal("down server still in the hash ring")
		}
	}
	for i := 0; i < 20; i++ {
		sel := fx.router.Route(fmt.Sprintf("k%d.mycdn.ciab.test.", i), ClientInfo{})
		if sel == nil {
			t.Fatal("survivors not serving")
		}
		if sel.Server.Name == victim.Name {
			t.Fatal("down server still selected")
		}
	}
	// Recovery: the node answers again; UpAfter successes re-admit it.
	NewCacheServer(fx.net.Node(victim.Name), CacheServerConfig{
		Name: victim.Name, Site: "mec-1", Tier: TierEdge, CapacityBytes: 1 << 20,
		Domains: []string{"mycdn.ciab.test."},
	})
	fx.probe(t)
	fx.probe(t)
	if st, _ := fx.reg.State(victim.Name); st != health.StateHealthy {
		t.Fatalf("victim state after recovery = %v, want healthy", st)
	}
	found := false
	for _, m := range fx.router.Ring.Members() {
		if m == victim.Name {
			found = true
		}
	}
	if !found {
		t.Fatal("recovered server not re-admitted to the ring")
	}
}

// TestRouterAllDegradedServesBestEffort: a server set that is degraded
// but not down keeps serving rather than failing over to the parent.
func TestRouterAllDegradedServesBestEffort(t *testing.T) {
	fx := buildHealthFixture(t, 52, nil)
	fx.probe(t)
	for _, s := range fx.servers {
		fx.reg.ReportFailure(s.Name) // one failure, dwell disabled: degraded
		if st, _ := fx.reg.State(s.Name); st != health.StateDegraded {
			t.Fatalf("%s state = %v, want degraded", s.Name, st)
		}
	}
	fx.router.Parent = netip.MustParseAddr("203.0.113.200")
	resp := routerQuery(t, fx.router, "video.demo1.mycdn.ciab.test.", "")
	if _, ok := Referral(resp); ok {
		t.Fatal("all-degraded set fell back to the parent; want best-effort local serving")
	}
	if resp.Rcode != dnswire.RcodeSuccess || len(resp.Answers) != 1 {
		t.Fatalf("rcode=%v answers=%v", resp.Rcode, resp.Answers)
	}
}

// TestRouterPrefersHealthyOverDegraded: degraded ring owners lose to a
// healthy non-owner only when no healthy owner exists; here we degrade
// the primary and check the healthy replica wins.
func TestRouterPrefersHealthyOverDegraded(t *testing.T) {
	fx := buildHealthFixture(t, 53, nil)
	fx.probe(t)
	key := "video.pref.mycdn.ciab.test."
	primary := fx.router.Route(key, ClientInfo{}).Server
	fx.reg.ReportFailure(primary.Name)
	if st, _ := fx.reg.State(primary.Name); st != health.StateDegraded {
		t.Fatalf("primary state = %v, want degraded", st)
	}
	sel := fx.router.Route(key, ClientInfo{})
	if sel == nil {
		t.Fatal("no selection")
	}
	if sel.Server.Name == primary.Name {
		t.Error("degraded primary selected over a healthy replica")
	}
}

// TestRouterLoadFallback: ingress load above the high watermark
// diverts queries to the parent tier; sustained low load past the
// dwell restores MEC-local answers.
func TestRouterLoadFallback(t *testing.T) {
	fx := buildHealthFixture(t, 54, func(c *health.Config) {
		c.LoadHigh = 0.8
		c.LoadLow = 0.4
		c.LoadDwell = 2 * time.Second
	})
	fx.probe(t)
	fx.router.Parent = netip.MustParseAddr("203.0.113.200")

	resp := routerQuery(t, fx.router, "video.load.mycdn.ciab.test.", "")
	if _, ok := Referral(resp); ok {
		t.Fatal("referral under normal load")
	}
	fx.reg.ReportLoad(0.9)
	if got := fx.reg.Switches(); got != 1 {
		t.Fatalf("switches counter = %d, want 1", got)
	}
	resp = routerQuery(t, fx.router, "video.load.mycdn.ciab.test.", "")
	if got, ok := Referral(resp); !ok || got != fx.router.Parent {
		t.Fatalf("query under flood not diverted to parent: %v (%v)", got, ok)
	}
	// Load drops under the low watermark; the switch holds until the
	// dwell has elapsed.
	fx.reg.ReportLoad(0.2)
	fx.clock.Advance(time.Second)
	fx.reg.ReportLoad(0.2)
	if resp = routerQuery(t, fx.router, "video.load.mycdn.ciab.test.", ""); !fx.reg.FallbackActive() {
		t.Fatal("switch reset before the dwell elapsed")
	}
	fx.clock.Advance(2 * time.Second)
	fx.reg.ReportLoad(0.2)
	resp = routerQuery(t, fx.router, "video.load.mycdn.ciab.test.", "")
	if _, ok := Referral(resp); ok {
		t.Fatal("still diverted after load dwelled under the low watermark")
	}
	if resp.Rcode != dnswire.RcodeSuccess || len(resp.Answers) != 1 {
		t.Fatalf("local answer not restored: rcode=%v answers=%v", resp.Rcode, resp.Answers)
	}
}

// TestRouterSetHealthyStillProbeVisible: the legacy data-plane flag is
// not bypassed by the registry — a server with the flag off refuses
// probes, so the control plane demotes it too.
func TestRouterSetHealthyStillProbeVisible(t *testing.T) {
	fx := buildHealthFixture(t, 55, nil)
	fx.probe(t)
	victim := fx.servers[1]
	victim.SetHealthy(false)
	for i := 0; i < 3; i++ {
		fx.probe(t)
	}
	if st, _ := fx.reg.State(victim.Name); st != health.StateDown {
		t.Fatalf("state = %v, want down (probes must see the data-plane flag)", st)
	}
}

func TestRouterRemoveServer(t *testing.T) {
	fx := buildRouterFixture(t, 8)
	fx.router.RemoveServer("cache-1")
	if got := fx.router.Servers(); len(got) != 2 {
		t.Fatalf("servers = %v", got)
	}
	for i := 0; i < 20; i++ {
		sel := fx.router.Route(fmt.Sprintf("key-%d.mycdn.ciab.test.", i), ClientInfo{})
		if sel.Server.Name == "cache-1" {
			t.Fatal("removed server selected")
		}
	}
}

func TestAvailabilityFirstPrefersContentHolder(t *testing.T) {
	fx := buildRouterFixture(t, 9)
	fx.router.Replicas = 3 // all servers are candidates
	key := "video.demo1.mycdn.ciab.test."
	// Give the content to a specific server that is NOT necessarily
	// the ring primary.
	holder := fx.servers[2]
	holder.Warm(Content{Name: key, Size: 10})
	sel := fx.router.Route(key, ClientInfo{})
	if sel.Server.Name != holder.Name {
		t.Errorf("selected %s, want content holder %s", sel.Server.Name, holder.Name)
	}
}

func TestGeoNearestUsesECS(t *testing.T) {
	fx := buildRouterFixture(t, 10)
	fx.router.Policy = GeoNearest{}
	fx.router.Replicas = 3
	db := geoip.New()
	db.Register(netip.MustParsePrefix("198.51.100.0/24"), geoip.Location{X: 205, Name: "near-cache-2"})
	fx.router.Geo = db

	q := new(dnswire.Message)
	q.SetQuestion("geo.mycdn.ciab.test.", dnswire.TypeA)
	opt := q.SetEDNS(1232)
	opt.Options = append(opt.Options, dnswire.NewECSOption(netip.MustParsePrefix("198.51.100.0/24")))
	resp := dnsserver.Resolve(context.Background(), dnsserver.Chain(fx.router),
		&dnsserver.Request{Msg: q, Client: netip.MustParseAddrPort("10.0.0.1:53")})
	if len(resp.Answers) != 1 {
		t.Fatalf("answers = %v", resp.Answers)
	}
	// cache-2 is at X=200, nearest to the ECS-disclosed location 205.
	if got := resp.Answers[0].(*dnswire.A).Addr; got != fx.servers[2].Addr() {
		t.Errorf("geo policy picked %v, want cache-2 (%v)", got, fx.servers[2].Addr())
	}
	ecs, ok := resp.ECS()
	if !ok || ecs.ScopePrefix != 24 {
		t.Errorf("response ECS = %+v", ecs)
	}
}

func TestGeoNearestFallsBackWithoutLocation(t *testing.T) {
	fx := buildRouterFixture(t, 11)
	fx.router.Policy = GeoNearest{}
	sel := fx.router.Route("k.mycdn.ciab.test.", ClientInfo{})
	if sel == nil {
		t.Fatal("no selection without geo data")
	}
}

func TestRoundRobinCycles(t *testing.T) {
	fx := buildRouterFixture(t, 12)
	rr := &RoundRobin{}
	fx.router.Policy = rr
	fx.router.Replicas = 3
	seen := map[string]int{}
	for i := 0; i < 9; i++ {
		sel := fx.router.Route("const-key.mycdn.ciab.test.", ClientInfo{})
		seen[sel.Server.Name]++
	}
	if len(seen) != 3 {
		t.Fatalf("round robin used %d servers: %v", len(seen), seen)
	}
	for name, n := range seen {
		if n != 3 {
			t.Errorf("%s selected %d times, want 3", name, n)
		}
	}
}

func TestLeastLoadedPolicy(t *testing.T) {
	fx := buildRouterFixture(t, 13)
	fx.router.Policy = LeastLoaded{}
	fx.router.Replicas = 3
	// Load up two servers via direct fetches.
	ep := fx.net.Node("hub").Endpoint()
	for i := 0; i < 4; i++ {
		_, _ = Fetch(ep, fx.servers[0].Addr(), "mycdn.ciab.test.", "junk", 100*time.Millisecond)
		_, _ = Fetch(ep, fx.servers[1].Addr(), "mycdn.ciab.test.", "junk", 100*time.Millisecond)
	}
	sel := fx.router.Route("lb.mycdn.ciab.test.", ClientInfo{})
	if sel.Server.Name != "cache-2" {
		t.Errorf("least-loaded picked %s", sel.Server.Name)
	}
}

func TestPolicyNames(t *testing.T) {
	for _, p := range []SelectionPolicy{AvailabilityFirst{}, GeoNearest{}, &RoundRobin{}, LeastLoaded{}} {
		if p.Name() == "" {
			t.Errorf("%T has empty name", p)
		}
	}
}

func TestRouterEmpty(t *testing.T) {
	rt := NewRouter("empty.test.")
	if sel := rt.Route("x.empty.test.", ClientInfo{}); sel != nil {
		t.Error("selection from empty router")
	}
}
