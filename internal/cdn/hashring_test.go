package cdn

import (
	"fmt"
	"testing"
)

func TestHashRingOwnersExceedingMembers(t *testing.T) {
	r := NewHashRing()
	if got := r.Owners("key", 3); got != nil {
		t.Fatalf("empty ring Owners = %v, want nil", got)
	}
	r.Add("a")
	r.Add("b")
	for _, n := range []int{2, 3, 100} {
		got := r.Owners("key", n)
		if len(got) != 2 {
			t.Fatalf("Owners(key, %d) with 2 members = %v, want both members", n, got)
		}
		if got[0] == got[1] {
			t.Fatalf("Owners(key, %d) duplicated a member: %v", n, got)
		}
	}
	if got := r.Owners("key", 0); got != nil {
		t.Fatalf("Owners(key, 0) = %v, want nil", got)
	}
}

func TestHashRingRemoveAbsentMember(t *testing.T) {
	r := NewHashRing()
	for i := 0; i < 4; i++ {
		r.Add(fmt.Sprintf("server-%d", i))
	}
	before := make(map[string]string)
	for i := 0; i < 200; i++ {
		k := fmt.Sprintf("key-%d", i)
		before[k] = r.Owner(k)
	}
	r.Remove("never-added")
	r.Remove("never-added") // twice: still a no-op
	if got := len(r.Members()); got != 4 {
		t.Fatalf("members after absent Remove = %d, want 4", got)
	}
	for k, owner := range before {
		if r.Owner(k) != owner {
			t.Fatalf("removing an absent member moved key %s: %s -> %s", k, owner, r.Owner(k))
		}
	}
	// Remove on an empty ring is equally harmless.
	e := NewHashRing()
	e.Remove("ghost")
	if e.Owner("x") != "" {
		t.Fatal("empty ring returned an owner after absent Remove")
	}
}
