package cdn

import (
	"container/list"
	"sync"
)

// LRUStats snapshots cache effectiveness.
type LRUStats struct {
	Hits, Misses uint64
	Evictions    uint64
	Objects      int
	UsedBytes    int64
}

// HitRatio returns hits/(hits+misses), or 0 with no traffic.
func (s LRUStats) HitRatio() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// LRU is a byte-budget least-recently-used content cache.
type LRU struct {
	mu       sync.Mutex
	capacity int64
	used     int64
	items    map[string]*list.Element
	order    *list.List
	stats    LRUStats
}

type lruEntry struct {
	content Content
}

// NewLRU returns a cache holding at most capacity bytes.
func NewLRU(capacity int64) *LRU {
	return &LRU{
		capacity: capacity,
		items:    make(map[string]*list.Element),
		order:    list.New(),
	}
}

// Get returns the cached object and records a hit or miss.
func (l *LRU) Get(name string) (Content, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	el, ok := l.items[name]
	if !ok {
		l.stats.Misses++
		return Content{}, false
	}
	l.order.MoveToFront(el)
	l.stats.Hits++
	return el.Value.(*lruEntry).content, true
}

// Contains reports presence without touching recency or stats.
func (l *LRU) Contains(name string) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	_, ok := l.items[name]
	return ok
}

// Put inserts content, evicting least-recently-used objects as needed.
// Objects larger than the whole cache are not stored.
func (l *LRU) Put(content Content) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if content.Size > l.capacity {
		return
	}
	if el, ok := l.items[content.Name]; ok {
		old := el.Value.(*lruEntry)
		l.used += content.Size - old.content.Size
		old.content = content
		l.order.MoveToFront(el)
		l.evictOverflow()
		return
	}
	l.items[content.Name] = l.order.PushFront(&lruEntry{content: content})
	l.used += content.Size
	l.evictOverflow()
}

func (l *LRU) evictOverflow() {
	for l.used > l.capacity {
		oldest := l.order.Back()
		if oldest == nil {
			return
		}
		ent := oldest.Value.(*lruEntry)
		l.order.Remove(oldest)
		delete(l.items, ent.content.Name)
		l.used -= ent.content.Size
		l.stats.Evictions++
	}
}

// Stats returns a snapshot of the counters.
func (l *LRU) Stats() LRUStats {
	l.mu.Lock()
	defer l.mu.Unlock()
	s := l.stats
	s.Objects = len(l.items)
	s.UsedBytes = l.used
	return s
}

// Each calls fn for every cached object, most recently used first —
// the mesh announce path's content-table enumeration. fn runs under
// the cache lock and must not call back into the cache.
func (l *LRU) Each(fn func(Content)) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for e := l.order.Front(); e != nil; e = e.Next() {
		fn(e.Value.(*lruEntry).content)
	}
}

// Flush empties the cache, keeping counters.
func (l *LRU) Flush() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.items = make(map[string]*list.Element)
	l.order.Init()
	l.used = 0
}
