package cdn

import (
	"context"
	"net/netip"
	"testing"

	"github.com/meccdn/meccdn/internal/dnsserver"
	"github.com/meccdn/meccdn/internal/dnswire"
	"github.com/meccdn/meccdn/internal/lpm"
)

// routeTable builds an LPM table from (prefix, pop) pairs.
func routeTable(t *testing.T, rows map[string]lpm.PoP) *lpm.Table {
	t.Helper()
	b := lpm.NewBuilder()
	for p, pop := range rows {
		if err := b.Add(netip.MustParsePrefix(p), pop); err != nil {
			t.Fatal(err)
		}
	}
	return b.Build()
}

// subnetQuery asks the router for qname disclosing subnet via ECS.
func subnetQuery(t *testing.T, rt *Router, qname, subnet string) *dnswire.Message {
	t.Helper()
	q := new(dnswire.Message)
	q.SetQuestion(qname, dnswire.TypeA)
	opt := q.SetEDNS(1232)
	opt.Options = append(opt.Options, dnswire.NewECSOption(netip.MustParsePrefix(subnet)))
	return dnsserver.Resolve(context.Background(), dnsserver.Chain(rt),
		&dnsserver.Request{Msg: q, Client: netip.MustParseAddrPort("192.0.2.53:5300")})
}

func TestSubnetRouteAnswersMappedPoP(t *testing.T) {
	fx := buildRouterFixture(t, 21)
	fx.router.SetRoutes(routeTable(t, map[string]lpm.PoP{
		"10.1.0.0/16": 1,
		"10.2.3.0/24": 2,
	}))
	fx.router.MapPoP(1, netip.MustParseAddr("203.0.113.1"))
	fx.router.MapPoP(2, netip.MustParseAddr("203.0.113.2"))

	resp := subnetQuery(t, fx.router, "video.a.mycdn.ciab.test.", "10.1.5.0/24")
	if len(resp.Answers) != 1 {
		t.Fatalf("answers = %v", resp.Answers)
	}
	if got := resp.Answers[0].(*dnswire.A).Addr; got != netip.MustParseAddr("203.0.113.1") {
		t.Errorf("answer = %v, want PoP 1's address", got)
	}
	// Scope = the matched route length, not the disclosed /24: the
	// answer is valid for the whole /16.
	if ecs, ok := resp.ECS(); !ok || ecs.ScopePrefix != 16 || ecs.SourcePrefix != 24 {
		t.Errorf("ECS = %+v %v, want scope 16 source 24", ecs, ok)
	}

	resp = subnetQuery(t, fx.router, "video.a.mycdn.ciab.test.", "10.2.3.0/24")
	if got := resp.Answers[0].(*dnswire.A).Addr; got != netip.MustParseAddr("203.0.113.2") {
		t.Errorf("answer = %v, want PoP 2's address", got)
	}
	if ecs, _ := resp.ECS(); ecs.ScopePrefix != 24 {
		t.Errorf("scope = %d, want 24 (exact /24 route)", ecs.ScopePrefix)
	}
}

func TestSubnetRouteMissFallsToPolicy(t *testing.T) {
	fx := buildRouterFixture(t, 22)
	fx.router.SetRoutes(routeTable(t, map[string]lpm.PoP{"10.1.0.0/16": 1}))
	fx.router.MapPoP(1, netip.MustParseAddr("203.0.113.1"))

	resp := subnetQuery(t, fx.router, "video.b.mycdn.ciab.test.", "198.51.100.0/24")
	if len(resp.Answers) != 1 {
		t.Fatalf("answers = %v", resp.Answers)
	}
	got := resp.Answers[0].(*dnswire.A).Addr
	found := false
	for _, s := range fx.servers {
		if s.Addr() == got {
			found = true
		}
	}
	if !found {
		t.Errorf("miss did not fall through to policy routing: answer %v", got)
	}
	// The table looked but did not discriminate: scope 0, the answer
	// is as good for any subnet (RFC 7871 §7.2.2 semantics).
	if ecs, ok := resp.ECS(); !ok || ecs.ScopePrefix != 0 {
		t.Errorf("ECS = %+v %v, want scope 0 on table miss", ecs, ok)
	}
}

func TestSubnetRouteUnmappedPoPFallsToPolicy(t *testing.T) {
	fx := buildRouterFixture(t, 23)
	fx.router.SetRoutes(routeTable(t, map[string]lpm.PoP{"10.1.0.0/16": 9}))
	// PoP 9 deliberately never mapped or bound.
	resp := subnetQuery(t, fx.router, "video.c.mycdn.ciab.test.", "10.1.1.0/24")
	if len(resp.Answers) != 1 {
		t.Fatalf("answers = %v", resp.Answers)
	}
	if ecs, ok := resp.ECS(); !ok || ecs.ScopePrefix != 0 {
		t.Errorf("ECS = %+v %v, want scope 0 for unmapped PoP", ecs, ok)
	}
}

func TestSubnetRouteWithoutECSUsesSourceAddress(t *testing.T) {
	fx := buildRouterFixture(t, 24)
	fx.router.SetRoutes(routeTable(t, map[string]lpm.PoP{"10.0.0.0/8": 1}))
	fx.router.MapPoP(1, netip.MustParseAddr("203.0.113.1"))
	// No ECS: the resolver's source address is the only signal — the
	// conflation the paper critiques, kept as the fallback.
	resp := routerQuery(t, fx.router, "video.d.mycdn.ciab.test.", "10.44.0.9:5300")
	if len(resp.Answers) != 1 {
		t.Fatalf("answers = %v", resp.Answers)
	}
	if got := resp.Answers[0].(*dnswire.A).Addr; got != netip.MustParseAddr("203.0.113.1") {
		t.Errorf("answer = %v, want PoP 1 via source address", got)
	}
}

func TestSubnetRouteBoundServerFollowsHealth(t *testing.T) {
	fx := buildHealthFixture(t, 25, nil)
	fx.probe(t)
	fx.router.SetRoutes(routeTable(t, map[string]lpm.PoP{"10.1.0.0/16": 1}))
	fx.router.BindPoP(1, "cache-1")
	fx.router.MapPoP(1, netip.MustParseAddr("203.0.113.7")) // static fallback

	resp := subnetQuery(t, fx.router, "video.e.mycdn.ciab.test.", "10.1.1.0/24")
	if got := resp.Answers[0].(*dnswire.A).Addr; got != fx.servers[1].Addr() {
		t.Fatalf("answer = %v, want bound cache-1 (%v)", got, fx.servers[1].Addr())
	}

	// Health pulls the bound server: the static address takes over, the
	// route itself keeps answering.
	fx.reg.SetOverride("cache-1", false)
	resp = subnetQuery(t, fx.router, "video.e.mycdn.ciab.test.", "10.1.1.0/24")
	if got := resp.Answers[0].(*dnswire.A).Addr; got != netip.MustParseAddr("203.0.113.7") {
		t.Errorf("answer = %v, want static fallback while cache-1 is down", got)
	}
}

func TestSubnetRouteBoundServerDownNoFallbackGoesPolicy(t *testing.T) {
	fx := buildHealthFixture(t, 26, nil)
	fx.probe(t)
	fx.router.SetRoutes(routeTable(t, map[string]lpm.PoP{"10.1.0.0/16": 1}))
	fx.router.BindPoP(1, "cache-0") // no static fallback
	fx.reg.SetOverride("cache-0", false)

	resp := subnetQuery(t, fx.router, "video.f.mycdn.ciab.test.", "10.1.1.0/24")
	if len(resp.Answers) != 1 {
		t.Fatalf("answers = %v", resp.Answers)
	}
	got := resp.Answers[0].(*dnswire.A).Addr
	if got == fx.servers[0].Addr() {
		t.Error("answered with the down bound server")
	}
	if ecs, _ := resp.ECS(); ecs == nil || ecs.ScopePrefix != 0 {
		t.Errorf("ECS = %+v, want scope 0 when the route could not answer", ecs)
	}
}

func TestSubnetRouteReloadSwapsTable(t *testing.T) {
	fx := buildRouterFixture(t, 27)
	fx.router.MapPoP(1, netip.MustParseAddr("203.0.113.1"))
	fx.router.MapPoP(2, netip.MustParseAddr("203.0.113.2"))
	fx.router.SetRoutes(routeTable(t, map[string]lpm.PoP{"10.1.0.0/16": 1}))

	if got := subnetQuery(t, fx.router, "v.mycdn.ciab.test.", "10.1.1.0/24").Answers[0].(*dnswire.A).Addr; got != netip.MustParseAddr("203.0.113.1") {
		t.Fatalf("before reload: %v", got)
	}
	fx.router.SetRoutes(routeTable(t, map[string]lpm.PoP{"10.1.0.0/16": 2}))
	if got := subnetQuery(t, fx.router, "v.mycdn.ciab.test.", "10.1.1.0/24").Answers[0].(*dnswire.A).Addr; got != netip.MustParseAddr("203.0.113.2") {
		t.Errorf("after reload: %v, want PoP 2", got)
	}
	if rows := fx.router.Routes().Rows(); rows != 1 {
		t.Errorf("Routes().Rows() = %d, want 1", rows)
	}
}
