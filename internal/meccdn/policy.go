package meccdn

import (
	"context"
	"errors"
	"fmt"
	"net/netip"
	"time"

	"github.com/meccdn/meccdn/internal/cdn"
	"github.com/meccdn/meccdn/internal/dnsclient"
	"github.com/meccdn/meccdn/internal/dnswire"
	"github.com/meccdn/meccdn/internal/simnet"
)

// ResolutionMode is the UE-side policy for choosing between the MEC
// DNS and the provider's L-DNS (§3, P1 discussion).
type ResolutionMode int

// Resolution modes.
const (
	// MECOnly sends every query to the MEC DNS (which itself forwards
	// non-MEC names upstream when configured).
	MECOnly ResolutionMode = iota
	// ProviderOnly bypasses the MEC DNS, today's default behaviour.
	ProviderOnly
	// Multicast races the MEC DNS and the provider L-DNS, taking the
	// first answer.
	Multicast
	// FallbackOnTimeout tries the MEC DNS with a short budget, then
	// falls back to the provider L-DNS.
	FallbackOnTimeout
)

// String returns the mode label.
func (m ResolutionMode) String() string {
	switch m {
	case MECOnly:
		return "mec-only"
	case ProviderOnly:
		return "provider-only"
	case Multicast:
		return "multicast"
	case FallbackOnTimeout:
		return "fallback-on-timeout"
	}
	return fmt.Sprintf("mode(%d)", int(m))
}

// Result is one UE-side resolution outcome.
type Result struct {
	// Msg is the winning response.
	Msg *dnswire.Message
	// Addr is the first A answer, if any.
	Addr netip.Addr
	// RTT is the client-observed resolution latency in virtual time.
	RTT time.Duration
	// Source says which resolver answered: "mec" or "provider".
	Source string
}

// UEClient is the end-user resolver stub with a pluggable policy.
type UEClient struct {
	// EP is the UE's network endpoint.
	EP *simnet.Endpoint
	// MEC is the MEC DNS (the CoreDNS service cluster IP).
	MEC netip.AddrPort
	// Provider is the mobile network's L-DNS.
	Provider netip.AddrPort
	// Mode selects the policy; zero value is MECOnly.
	Mode ResolutionMode
	// MECBudget is the FallbackOnTimeout patience; 0 means 50ms.
	MECBudget time.Duration
	// Timeout is the overall per-target budget; 0 means 2s.
	Timeout time.Duration

	nextID uint16
}

// Resolve looks up an A record for name under the client's policy.
func (c *UEClient) Resolve(name string) (*Result, error) {
	switch c.Mode {
	case ProviderOnly:
		return c.unicast(name, c.Provider, "provider", c.timeout())
	case Multicast:
		return c.multicast(name)
	case FallbackOnTimeout:
		res, err := c.unicast(name, c.MEC, "mec", c.mecBudget())
		if err == nil {
			return res, nil
		}
		res2, err2 := c.unicast(name, c.Provider, "provider", c.timeout())
		if err2 != nil {
			return nil, fmt.Errorf("both resolvers failed: mec: %v; provider: %w", err, err2)
		}
		// The client paid the MEC budget before falling back.
		res2.RTT += c.mecBudget()
		return res2, nil
	default:
		return c.unicast(name, c.MEC, "mec", c.timeout())
	}
}

func (c *UEClient) timeout() time.Duration {
	if c.Timeout > 0 {
		return c.Timeout
	}
	return 2 * time.Second
}

func (c *UEClient) mecBudget() time.Duration {
	if c.MECBudget > 0 {
		return c.MECBudget
	}
	return 50 * time.Millisecond
}

// maxTierChase bounds cross-tier C-DNS referral chasing (edge → mid
// → far is the deepest hierarchy the paper sketches).
const maxTierChase = 3

func (c *UEClient) unicast(name string, server netip.AddrPort, source string, timeout time.Duration) (*Result, error) {
	if !server.IsValid() {
		return nil, fmt.Errorf("meccdn: no %s resolver configured", source)
	}
	client := &dnsclient.Client{
		Transport: &dnsclient.SimTransport{Endpoint: c.EP, Timeout: timeout},
		// Stub resolvers retransmit: a lost datagram on the air
		// interface must not fail the lookup outright.
		Retries: 2,
	}
	client.SetRand(c.EP.Network().Rand())
	net := c.EP.Network()
	start := net.Now()
	resp, err := client.Query(context.Background(), server, name, dnswire.TypeA)
	if err != nil {
		return nil, err
	}
	// Chase cross-tier C-DNS referrals: when the edge has no replica,
	// its router points at the mid- or far-tier C-DNS (§3 P2) and the
	// client queries that next, paying the extra distance.
	for hop := 0; hop < maxTierChase; hop++ {
		next, ok := cdn.Referral(resp)
		if !ok {
			break
		}
		resp, err = client.Query(context.Background(), netip.AddrPortFrom(next, 53), name, dnswire.TypeA)
		if err != nil {
			return nil, fmt.Errorf("chasing tier referral to %v: %w", next, err)
		}
		source = source + "+tier"
	}
	return c.result(resp, source, net.Now()-start)
}

// multicast models the paper's client-side DNS multicast. The two
// in-flight resolutions are independent — neither resolver's work
// affects the other's latency — so the race outcome equals taking the
// faster of the two unicast results. (simnet's Endpoint.Race performs
// a literal concurrent race, but its reentrant pump serializes deeply
// nested server-side flows, which would overstate the loser's impact;
// measuring each leg separately and taking the minimum is the exact
// model for non-interacting flows.)
func (c *UEClient) multicast(name string) (*Result, error) {
	if !c.MEC.IsValid() || !c.Provider.IsValid() {
		return nil, errors.New("meccdn: multicast needs both resolvers")
	}
	mecRes, mecErr := c.unicast(name, c.MEC, "mec", c.timeout())
	provRes, provErr := c.unicast(name, c.Provider, "provider", c.timeout())
	useful := func(r *Result, err error) bool {
		if err != nil {
			return false
		}
		return (r.Msg.Rcode == dnswire.RcodeSuccess && len(r.Msg.Answers) > 0) ||
			r.Msg.Rcode == dnswire.RcodeNameError
	}
	mecOK, provOK := useful(mecRes, mecErr), useful(provRes, provErr)
	switch {
	case mecOK && (!provOK || mecRes.RTT <= provRes.RTT):
		return mecRes, nil
	case provOK:
		return provRes, nil
	case mecErr == nil:
		return mecRes, nil
	case provErr == nil:
		return provRes, nil
	default:
		return nil, fmt.Errorf("multicast resolution of %s failed: mec: %v; provider: %w", name, mecErr, provErr)
	}
}

func (c *UEClient) result(resp *dnswire.Message, source string, rtt time.Duration) (*Result, error) {
	res := &Result{Msg: resp, RTT: rtt, Source: source}
	for _, rr := range resp.Answers {
		if a, ok := rr.(*dnswire.A); ok {
			res.Addr = a.Addr
			break
		}
	}
	return res, nil
}

// FetchResult is an end-to-end content access: resolution + transfer.
type FetchResult struct {
	Resolve *Result
	Content cdn.FetchResult
	// Total is resolution plus content RTT.
	Total time.Duration
}

// ResolveAndFetch performs the full Figure 4 flow from the UE: DNS
// resolution of name, then a content fetch from the answered address.
func (c *UEClient) ResolveAndFetch(domain, name string) (*FetchResult, error) {
	res, err := c.Resolve(name)
	if err != nil {
		return nil, err
	}
	if !res.Addr.IsValid() {
		return nil, fmt.Errorf("meccdn: resolution of %s returned no address (rcode %v)", name, res.Msg.Rcode)
	}
	content, err := cdn.Fetch(c.EP, res.Addr, domain, name, c.timeout())
	if err != nil {
		return nil, err
	}
	return &FetchResult{
		Resolve: res,
		Content: content,
		Total:   res.RTT + content.RTT,
	}, nil
}
