package meccdn

import (
	"testing"
	"time"

	"github.com/meccdn/meccdn/internal/cdn"
	"github.com/meccdn/meccdn/internal/health"
)

// TestSiteHealthProbingAdmission: with a health registry attached, a
// freshly deployed site's caches are NOT in the hash ring — they join
// only after the first successful probe sweep (orchestrator-driven
// add through the registry, not straight into routing).
func TestSiteHealthProbingAdmission(t *testing.T) {
	d := deploy(t, 40, func(c *SiteConfig) {
		c.Health = &health.Config{DownAfter: 2, UpAfter: 1, MinDwell: -1}
	})
	if got := len(d.site.Router.Ring.Members()); got != 0 {
		t.Fatalf("ring members before first probe = %d, want 0 (caches still probing)", got)
	}
	for _, c := range d.site.Caches {
		if st, ok := d.site.Health.State(c.Name); !ok || st != health.StateProbing {
			t.Fatalf("cache %s state = %v (registered=%v), want probing", c.Name, st, ok)
		}
	}

	d.site.ProbeOnce()

	if got := len(d.site.Router.Ring.Members()); got != len(d.site.Caches) {
		t.Fatalf("ring members after probe = %d, want %d", got, len(d.site.Caches))
	}
	for _, c := range d.site.Caches {
		if st, _ := d.site.Health.State(c.Name); st != health.StateHealthy {
			t.Fatalf("cache %s state after probe = %v, want healthy", c.Name, st)
		}
	}
	res, err := d.ue.ResolveAndFetch(testDomain, "video.demo1."+testDomain)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Content.Served() {
		t.Fatalf("content not served after admission: %+v", res.Content)
	}
}

// TestSiteHealthDemotesDeadCache kills a cache's data plane and lets
// the probe loop discover it: within DownAfter sweeps the instance is
// demoted to down, leaves the ring, and the site serves from the
// survivor.
func TestSiteHealthDemotesDeadCache(t *testing.T) {
	d := deploy(t, 41, func(c *SiteConfig) {
		c.Health = &health.Config{DownAfter: 2, UpAfter: 1, MinDwell: -1}
	})
	d.site.ProbeOnce()
	name := "video.demo1." + testDomain
	first, err := d.ue.ResolveAndFetch(testDomain, name)
	if err != nil {
		t.Fatal(err)
	}
	if !first.Content.Served() {
		t.Fatalf("baseline not served: %+v", first.Content)
	}

	owner := d.site.Router.Ring.Owner(name)
	var victim *cdn.CacheServer
	for _, c := range d.site.Caches {
		if c.Name == owner {
			victim = c
		}
	}
	if victim == nil {
		t.Fatal("no ring owner among caches")
	}
	// A dead data plane refuses probes too, so the registry notices
	// without anyone calling the control plane.
	victim.SetHealthy(false)
	for i := 0; i < 2; i++ { // DownAfter sweeps
		d.site.ProbeOnce()
	}
	if st, _ := d.site.Health.State(victim.Name); st != health.StateDown {
		t.Fatalf("victim state after %d failed probes = %v, want down", 2, st)
	}
	for _, m := range d.site.Router.Ring.Members() {
		if m == victim.Name {
			t.Fatalf("victim %s still in the ring after demotion", m)
		}
	}

	// Expire the cached DNS answer so the router re-selects.
	d.tb.Net.Clock.RunUntil(d.tb.Net.Now() + time.Minute)
	second, err := d.ue.ResolveAndFetch(testDomain, name)
	if err != nil {
		t.Fatal(err)
	}
	if !second.Content.Served() {
		t.Fatalf("not served after demotion: %+v", second.Content)
	}
	if second.Resolve.Addr == first.Resolve.Addr {
		t.Error("router still points at the dead instance")
	}

	// Recovery: the data plane comes back, UpAfter sweeps re-admit it.
	victim.SetHealthy(true)
	d.site.ProbeOnce()
	if st, _ := d.site.Health.State(victim.Name); st != health.StateHealthy {
		t.Fatalf("victim state after recovery probe = %v, want healthy", st)
	}
	found := false
	for _, m := range d.site.Router.Ring.Members() {
		if m == victim.Name {
			found = true
		}
	}
	if !found {
		t.Error("recovered cache not re-admitted to the ring")
	}
}

// TestSiteHealthScaleDownRemovesFromRegistry: RemoveCache deregisters
// the instance from the health registry along with the ring.
func TestSiteHealthScaleDownRemovesFromRegistry(t *testing.T) {
	d := deploy(t, 42, func(c *SiteConfig) {
		c.Health = &health.Config{DownAfter: 2, UpAfter: 1, MinDwell: -1}
	})
	d.site.ProbeOnce()
	last := d.site.Caches[len(d.site.Caches)-1]
	if err := d.site.RemoveCache(); err != nil {
		t.Fatal(err)
	}
	if _, ok := d.site.Health.State(last.Name); ok {
		t.Fatalf("removed cache %s still in the health registry", last.Name)
	}
	if got := len(d.site.Router.Ring.Members()); got != len(d.site.Caches) {
		t.Fatalf("ring members after scale-down = %d, want %d", got, len(d.site.Caches))
	}
}
