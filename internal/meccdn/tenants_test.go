package meccdn

import (
	"context"
	"net/netip"
	"testing"
	"time"

	"github.com/meccdn/meccdn/internal/cdn"
	"github.com/meccdn/meccdn/internal/dnsclient"
	"github.com/meccdn/meccdn/internal/dnsserver"
	"github.com/meccdn/meccdn/internal/dnswire"
	"github.com/meccdn/meccdn/internal/orchestrator"
)

const tenantDomain = "othercdn.example."

func TestMultiTenantSite(t *testing.T) {
	d := deploy(t, 40, nil)
	dep, err := d.site.AddDomain(tenantDomain, d.tb.Net.Node("origin").Addr, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(dep.Caches) != 2 || !dep.CDNS.IsValid() {
		t.Fatalf("deployment = %+v", dep)
	}
	// Publish tenant content at the shared origin so fills work.
	// (The test origin only carries the primary catalog; the tenant
	// lookup itself is DNS-level, so warm the cache directly.)
	obj := "img.site." + tenantDomain
	owner := dep.Router.Ring.Owner(obj)
	for _, c := range dep.Caches {
		if c.Name == owner {
			c.Warm(cdn.Content{Name: obj, Size: 64})
		}
	}

	// Both domains resolve through the SAME MEC DNS address: that is
	// the single shared public ingress.
	resPrimary, err := d.ue.Resolve("video.demo1." + testDomain)
	if err != nil {
		t.Fatal(err)
	}
	resTenant, err := d.ue.Resolve(obj)
	if err != nil {
		t.Fatal(err)
	}
	if !resPrimary.Addr.IsValid() || !resTenant.Addr.IsValid() {
		t.Fatalf("resolutions: primary=%v tenant=%v", resPrimary.Addr, resTenant.Addr)
	}
	if resPrimary.Addr == resTenant.Addr {
		t.Error("tenants share a cache service IP; scopes must be separate")
	}
	// Tenant isolation: the primary router must not know tenant
	// servers and vice versa.
	if d.site.Router.Route(obj, cdn.ClientInfo{}) != nil &&
		d.site.Router.Route(obj, cdn.ClientInfo{}).Server.Name == owner {
		t.Error("primary router routed tenant content to tenant server")
	}
	if got := d.site.Tenant(tenantDomain); got != dep {
		t.Error("Tenant lookup failed")
	}
	if _, err := d.site.AddDomain(tenantDomain, d.tb.Net.Node("origin").Addr, 1); err == nil {
		t.Error("duplicate tenant accepted")
	}
	if _, err := d.site.AddDomain(testDomain, d.tb.Net.Node("origin").Addr, 1); err == nil {
		t.Error("primary domain accepted as tenant")
	}
}

// TestPublicZoneReplication slaves the site's public namespace to the
// provider L-DNS over a real zone transfer, the replication step a
// provider needs to answer MEC names itself during MEC DNS outages.
func TestPublicZoneReplication(t *testing.T) {
	d := deploy(t, 42, nil)
	// Put something in the public zone (a non-CDN MEC app).
	if _, err := d.site.Orch.CreateService(orchestratorSpec("mec-app", "apps", "app.mec.example.")); err != nil {
		t.Fatal(err)
	}

	// Serve transfers of the public zone from a MEC node.
	zp := dnsserver.NewZonePlugin(d.site.PublicZone)
	axfrNode := d.tb.AddMEC("axfr-endpoint")
	dnsserver.Attach(axfrNode, dnsserver.Chain(dnsserver.NewAXFR(zp), zp), nil)

	// The provider pulls the zone over the virtual network.
	provClient := &dnsclient.Client{Transport: &dnsclient.SimTransport{
		Endpoint: d.tb.Net.Node("provider-ldns").Endpoint()}}
	provClient.SetRand(d.tb.Net.Rand())
	rrs, err := provClient.Transfer(context.Background(),
		netip.AddrPortFrom(axfrNode.Addr, 53), "mec.example.")
	if err != nil {
		t.Fatal(err)
	}
	secondary, err := dnsserver.ZoneFromTransfer(rrs)
	if err != nil {
		t.Fatal(err)
	}
	res, ans, _ := secondary.Lookup("app.mec.example.", dnswire.TypeA)
	if res != dnsserver.LookupSuccess || len(ans) != 1 {
		t.Errorf("replicated lookup: %v %v", res, ans)
	}
	// The replicated answer is the same cluster IP the primary serves.
	wantRes, wantAns, _ := d.site.PublicZone.Lookup("app.mec.example.", dnswire.TypeA)
	if wantRes != dnsserver.LookupSuccess ||
		ans[0].(*dnswire.A).Addr != wantAns[0].(*dnswire.A).Addr {
		t.Error("secondary diverges from primary")
	}
}

func orchestratorSpec(name, ns, public string) orchestrator.ServiceSpec {
	return orchestrator.ServiceSpec{Name: name, Namespace: ns, PublicName: public}
}

func TestRemoveDomain(t *testing.T) {
	d := deploy(t, 41, nil)
	if _, err := d.site.AddDomain(tenantDomain, d.tb.Net.Node("origin").Addr, 1); err != nil {
		t.Fatal(err)
	}
	before, err := d.ue.Resolve("x." + tenantDomain)
	if err != nil {
		t.Fatal(err)
	}
	if !before.Addr.IsValid() {
		t.Fatal("tenant did not resolve before removal")
	}
	if err := d.site.RemoveDomain(tenantDomain); err != nil {
		t.Fatal(err)
	}
	if d.site.Tenant(tenantDomain) != nil {
		t.Error("tenant still listed")
	}
	// Let the L-DNS message cache expire the old answer.
	d.tb.Net.Clock.RunUntil(d.tb.Net.Now() + time.Minute)
	// The name now falls through to the provider path, which does
	// not serve it: no address.
	after, err := d.ue.Resolve("x." + tenantDomain)
	if err == nil && after.Addr.IsValid() {
		t.Errorf("removed tenant still resolves to %v", after.Addr)
	}
	if err := d.site.RemoveDomain(tenantDomain); err == nil {
		t.Error("double removal succeeded")
	}
}
