// Package meccdn assembles the paper's MEC-CDN design: a CDN whose
// DNS resolution is fully contained at the mobile edge.
//
// DeploySite stands up, on an lte.Testbed, everything Figure 4 shows:
//
//   - a Kubernetes-style orchestrator (internal/orchestrator) whose
//     service registry feeds a split-namespace DNS;
//   - the MEC L-DNS (CoreDNS role): one plugin chain serving the
//     internal VNF namespace to cluster clients and the public
//     MEC-CDN namespace to UEs, with a stub-domain route handing the
//     CDN domain to the collocated C-DNS (P1: find a cache quickly);
//   - the C-DNS (ATC Traffic Router role): scoped to the edge site's
//     cache instances, selecting one that has the content (P2: find
//     the right cache);
//   - edge cache servers behind stable cluster IPs, so mobile clients
//     only ever see Kubernetes cluster IPs (public-IP reuse);
//   - ingress-load shedding that switches to the provider L-DNS above
//     a threshold (DoS mitigation);
//   - an optional client-side multicast/fallback policy for non-MEC
//     names (best-effort resolution).
package meccdn

import (
	"context"
	"fmt"
	"net/netip"
	"time"

	"github.com/meccdn/meccdn/internal/cdn"
	"github.com/meccdn/meccdn/internal/dnsclient"
	"github.com/meccdn/meccdn/internal/dnsserver"
	"github.com/meccdn/meccdn/internal/dnswire"
	"github.com/meccdn/meccdn/internal/geoip"
	"github.com/meccdn/meccdn/internal/health"
	"github.com/meccdn/meccdn/internal/lte"
	"github.com/meccdn/meccdn/internal/mesh"
	"github.com/meccdn/meccdn/internal/orchestrator"
	"github.com/meccdn/meccdn/internal/simnet"
)

// MeshOptions parameterizes the site's federated-mesh agent.
type MeshOptions struct {
	// AnnounceInterval is the gossip cadence; zero means 2s. In
	// virtual-time experiments drive rounds with Site.AnnounceOnce
	// instead of the wall-clock loop.
	AnnounceInterval time.Duration
	// DigestBits / DigestHashes size the content digest; zero means
	// the mesh defaults (8192 bits / 4 hashes).
	DigestBits   int
	DigestHashes int
	// LoadFactor is the bounded-load factor over peer steering; ≤1
	// means 1.25.
	LoadFactor float64
	// StaleAfter drops peers whose last announce is older; zero means
	// 3× the announce interval.
	StaleAfter time.Duration
}

// SiteConfig parameterizes DeploySite.
type SiteConfig struct {
	// Domain is the CDN domain deployed at this MEC site, e.g.
	// "mycdn.ciab.test.". Required.
	Domain string
	// PublicDomain is the MEC public namespace for non-CDN MEC apps;
	// "" means "mec.example.".
	PublicDomain string
	// CacheServers is the number of edge cache instances; 0 means 2.
	CacheServers int
	// CacheCapacity is each instance's byte budget; 0 means 64 MiB.
	CacheCapacity int64
	// OriginAddr, when valid, is where cache misses are filled from.
	OriginAddr netip.Addr
	// Policy selects cache servers at the C-DNS; nil means
	// availability-first.
	Policy cdn.SelectionPolicy
	// Geo, when non-nil, localizes clients for geo policies.
	Geo *geoip.DB
	// ProviderLDNS is the mobile network's own L-DNS; used as the
	// load-shed fallback and for non-MEC names.
	ProviderLDNS netip.AddrPort
	// MaxIngressQPS bounds MEC DNS ingress before shedding to the
	// provider L-DNS; 0 disables shedding.
	MaxIngressQPS int
	// EnableECS attaches EDNS Client Subnet at the L-DNS when
	// forwarding to the C-DNS (the paper's §4 ECS experiment).
	EnableECS bool
	// ECSProcessing is the extra per-query processing cost ECS adds
	// at each DNS hop; zero means 60µs.
	ECSProcessing time.Duration
	// LDNSProcessing is CoreDNS's per-query processing time; nil
	// means ~300µs.
	LDNSProcessing simnet.Sampler
	// CDNSProcessing is the Traffic Router's per-query processing
	// time; nil means ~700µs (ATC does content-aware selection).
	CDNSProcessing simnet.Sampler
	// NamePrefix distinguishes multiple sites on one testbed.
	NamePrefix string
	// Health, when non-nil, attaches a health registry to the site's
	// C-DNS: cache instances are admitted into the hash ring only
	// after their first successful probe, and probe failures demote
	// them out of routing. The config's Clock defaults to the
	// testbed's virtual clock. Nil keeps the legacy instantly-routable
	// behavior.
	Health *health.Config
	// Mesh, when non-nil, deploys a federated-mesh agent at the site:
	// it gossips the cache fleet's content digest to peer sites (wire
	// them with PeerWith or ConnectMesh) and the C-DNS steers local
	// misses to eligible peers before the parent tier.
	Mesh *MeshOptions
}

// Site is a deployed MEC-CDN edge site.
type Site struct {
	// Orch is the site's cluster control plane.
	Orch *orchestrator.Orchestrator
	// LDNS is the MEC DNS address UEs are switched to on attach:
	// the cluster IP of the CoreDNS service.
	LDNS netip.AddrPort
	// CDNS is the cluster IP of the collocated CDN router.
	CDNS netip.AddrPort
	// Router is the C-DNS selection engine.
	Router *cdn.Router
	// Caches are the edge cache instances.
	Caches []*cdn.CacheServer
	// CacheServices front each cache instance with a cluster IP.
	CacheServices []*orchestrator.Service
	// MsgCache is the L-DNS response cache.
	MsgCache *dnsserver.Cache
	// Metrics counts queries at the MEC L-DNS public view.
	Metrics *dnsserver.Metrics
	// Shed is the ingress load shedder (nil when disabled).
	Shed *dnsserver.LoadShed
	// PublicZone holds non-CDN public MEC names.
	PublicZone *dnsserver.Zone
	// Health is the site's cache health registry (nil unless
	// SiteConfig.Health was set).
	Health *health.Registry
	// Mesh is the site's federated-mesh agent (nil unless
	// SiteConfig.Mesh was set).
	Mesh *mesh.Agent

	cfg       SiteConfig
	tb        *lte.Testbed
	nextCache int
	checker   *health.Checker
	meshNode  *simnet.Node

	stub     *dnsserver.Stub
	tenants  map[string]*DomainDeployment
	nextTent int
}

// DomainDeployment is one CDN customer domain hosted at the site: its
// own C-DNS scope and cache instances, sharing the MEC L-DNS (and so
// the site's single public ingress IP) with every other tenant.
type DomainDeployment struct {
	Domain        string
	Router        *cdn.Router
	Caches        []*cdn.CacheServer
	CacheServices []*orchestrator.Service
	// CDNS is the tenant router's stable cluster IP.
	CDNS netip.AddrPort

	cdnsService *orchestrator.Service
}

// DeploySite builds a complete MEC-CDN edge site on tb.
func DeploySite(tb *lte.Testbed, cfg SiteConfig) (*Site, error) {
	if cfg.Domain == "" {
		return nil, fmt.Errorf("meccdn: SiteConfig.Domain is required")
	}
	cfg.Domain = dnswire.CanonicalName(cfg.Domain)
	if cfg.PublicDomain == "" {
		cfg.PublicDomain = "mec.example."
	}
	cfg.PublicDomain = dnswire.CanonicalName(cfg.PublicDomain)
	if cfg.CacheServers <= 0 {
		cfg.CacheServers = 2
	}
	if cfg.CacheCapacity <= 0 {
		cfg.CacheCapacity = 64 << 20
	}
	if cfg.LDNSProcessing == nil {
		cfg.LDNSProcessing = simnet.Shifted{Base: 250 * time.Microsecond, Jitter: simnet.Uniform{Max: 100 * time.Microsecond}}
	}
	if cfg.CDNSProcessing == nil {
		cfg.CDNSProcessing = simnet.Shifted{Base: 600 * time.Microsecond, Jitter: simnet.Uniform{Max: 200 * time.Microsecond}}
	}
	if cfg.ECSProcessing == 0 {
		cfg.ECSProcessing = 60 * time.Microsecond
	}

	prefix := cfg.NamePrefix
	net := tb.Net
	orch, err := orchestrator.New(orchestrator.Config{
		Net:        net,
		FabricNode: lte.NodePGW,
		PodDelay:   tb.Cfg.MECDelay,
	})
	if err != nil {
		return nil, err
	}
	site := &Site{Orch: orch, cfg: cfg, tb: tb}

	// Public namespace zone, fed by the orchestrator.
	site.PublicZone = dnsserver.NewZone(cfg.PublicDomain)
	orch.SetPublicZone(site.PublicZone)

	// Edge cache instances, each on its own MEC node, each fronted by
	// a Service so DNS answers carry cluster IPs only.
	site.Router = cdn.NewRouter(cfg.Domain)
	site.Router.Policy = cfg.Policy
	site.Router.Geo = cfg.Geo
	if cfg.Health != nil {
		hc := *cfg.Health
		if hc.Clock == nil {
			hc.Clock = net.Clock
		}
		site.Health = health.New(hc)
		// Attached before any AddCache so new instances enter the ring
		// through the probing → healthy admission path.
		site.Router.UseHealth(site.Health)
	}
	for i := 0; i < cfg.CacheServers; i++ {
		if _, err := site.AddCache(); err != nil {
			return nil, err
		}
	}

	// C-DNS: the Traffic Router, collocated at MEC, scoped to this
	// site's caches, fronted by a fixed cluster IP.
	cdnsNode := tb.AddMEC(prefix + "mec-cdns")
	cdnsProc := cfg.CDNSProcessing
	if cfg.EnableECS {
		cdnsProc = simnet.Shifted{Base: cfg.ECSProcessing, Jitter: cdnsProc}
	}
	dnsserver.Attach(cdnsNode, dnsserver.Chain(site.Router), cdnsProc)
	if site.Health != nil {
		// The Traffic Router doubles as the probe vantage: it PINGs its
		// own cache fleet, the same path ATC's health protocol takes.
		site.checker = &health.Checker{
			Registry: site.Health,
			Prober:   &cdn.CacheProber{Endpoint: cdnsNode.Endpoint(), Timeout: site.Health.Config().ProbeTimeout},
		}
	}
	cdnsSvc, err := orch.CreateService(orchestrator.ServiceSpec{
		Name:      prefix + "cdn-traffic-router",
		Namespace: "cdn",
		Endpoints: []netip.Addr{cdnsNode.Addr},
	})
	if err != nil {
		return nil, fmt.Errorf("creating C-DNS service: %w", err)
	}
	site.CDNS = netip.AddrPortFrom(cdnsSvc.ClusterIP, 53)

	// Federated-mesh agent: its own MEC node on the shared datagram
	// plane, announcing the cache fleet's content digest and steering
	// the C-DNS miss path to peers. The announce answer address is the
	// site's C-DNS cluster IP, so a steered client lands on the peer
	// site's Traffic Router and gets that site's own cache selection.
	if cfg.Mesh != nil {
		site.meshNode = tb.AddMEC(prefix + "mec-mesh")
		site.Mesh = mesh.NewAgent(mesh.Config{
			Site:             prefix + "mec",
			AnswerAddr:       site.CDNS.Addr().String(),
			AnnounceInterval: cfg.Mesh.AnnounceInterval,
			DigestBits:       cfg.Mesh.DigestBits,
			DigestHashes:     cfg.Mesh.DigestHashes,
			LoadFactor:       cfg.Mesh.LoadFactor,
			StaleAfter:       cfg.Mesh.StaleAfter,
			Clock:            net.Clock,
			Health:           site.Health,
			Source: func(add func(string)) {
				for _, c := range site.Caches {
					c.Cache().Each(func(content cdn.Content) { add(content.Name) })
				}
			},
			Load: func() float64 {
				if site.Health != nil {
					return site.Health.Snapshot().Load
				}
				return 0
			},
		})
		site.Mesh.BindSimnet(site.meshNode)
		site.Router.UseMesh(site.Mesh.View())
	}

	// MEC L-DNS (CoreDNS): split namespaces, stub-domain to C-DNS.
	ldnsNode := tb.AddMEC(prefix + "mec-ldns")
	upClient := &dnsclient.Client{Transport: &dnsclient.SimTransport{Endpoint: ldnsNode.Endpoint()}}
	upClient.SetRand(net.Rand())

	site.stub = dnsserver.NewStub(upClient)
	site.stub.Clock = net.Clock
	site.stub.Route(cfg.Domain, site.CDNS)

	site.MsgCache = dnsserver.NewCache(net.Clock)
	site.Metrics = dnsserver.NewMetrics()
	site.Metrics.Clock = net.Clock

	publicPlugins := []dnsserver.Plugin{site.Metrics}
	if cfg.MaxIngressQPS > 0 {
		site.Shed = &dnsserver.LoadShed{
			Clock:      net.Clock,
			MaxQueries: cfg.MaxIngressQPS,
			Window:     time.Second,
		}
		if cfg.ProviderLDNS.IsValid() {
			site.Shed.Fallback = dnsserver.Chain(&dnsserver.Forward{
				Upstreams: []netip.AddrPort{cfg.ProviderLDNS},
				Client:    upClient,
				Clock:     net.Clock,
			})
		}
		publicPlugins = append(publicPlugins, site.Shed)
	}
	if cfg.EnableECS {
		publicPlugins = append(publicPlugins, &dnsserver.ECS{})
	}
	publicPlugins = append(publicPlugins,
		site.MsgCache,
		site.stub,
		dnsserver.NewZonePlugin(site.PublicZone),
	)
	if cfg.ProviderLDNS.IsValid() {
		// Non-MEC names are forwarded upstream so the MEC DNS can be
		// the UE's only resolver (the server-side workaround of §3).
		publicPlugins = append(publicPlugins, &dnsserver.Forward{
			Upstreams: []netip.AddrPort{cfg.ProviderLDNS},
			Client:    upClient,
			Clock:     net.Clock,
		})
	}

	clusterCIDR := netip.MustParsePrefix("10.96.0.0/16")
	split := &dnsserver.Split{
		IsInternal: func(a netip.Addr) bool { return clusterCIDR.Contains(a) },
		Internal:   dnsserver.Chain(dnsserver.NewZonePlugin(orch.InternalZone())),
		Public:     dnsserver.Chain(publicPlugins...),
	}
	ldnsProc := cfg.LDNSProcessing
	if cfg.EnableECS {
		ldnsProc = simnet.Shifted{Base: cfg.ECSProcessing, Jitter: ldnsProc}
	}
	dnsserver.Attach(ldnsNode, dnsserver.Chain(split), ldnsProc)
	ldnsSvc, err := orch.CreateService(orchestrator.ServiceSpec{
		Name:      prefix + "coredns",
		Namespace: "kube-system",
		Endpoints: []netip.Addr{ldnsNode.Addr},
	})
	if err != nil {
		return nil, fmt.Errorf("creating CoreDNS service: %w", err)
	}
	site.LDNS = netip.AddrPortFrom(ldnsSvc.ClusterIP, 53)
	return site, nil
}

// ProbeOnce runs one synchronous health-probe sweep over the site's
// cache instances. Virtual-time experiments call it between events in
// place of the wall-clock Checker loop; a site deployed without
// SiteConfig.Health no-ops. A cache in the probing state joins the
// hash ring on its first successful sweep.
func (s *Site) ProbeOnce() {
	if s.checker == nil {
		return
	}
	s.checker.RunOnce(context.Background())
}

// MeshAddr returns the site's mesh endpoint address (zero when the
// site was deployed without a mesh).
func (s *Site) MeshAddr() netip.Addr {
	if s.meshNode == nil {
		return netip.Addr{}
	}
	return s.meshNode.Addr
}

// PeerWith configures this site to announce to other (one direction;
// call both ways — or ConnectMesh — for mutual steering). Both sites
// must have been deployed with SiteConfig.Mesh.
func (s *Site) PeerWith(other *Site) error {
	if s.Mesh == nil || other.Mesh == nil {
		return fmt.Errorf("meccdn: both sites need SiteConfig.Mesh to peer")
	}
	s.Mesh.AddPeer(mesh.Peer{Name: other.Mesh.Site(), Addr: other.MeshAddr().String()})
	return nil
}

// ConnectMesh peers every site with every other, both directions —
// the full-mesh federation the experiments use.
func ConnectMesh(sites ...*Site) error {
	for i, a := range sites {
		for _, b := range sites[i+1:] {
			if err := a.PeerWith(b); err != nil {
				return err
			}
			if err := b.PeerWith(a); err != nil {
				return err
			}
		}
	}
	return nil
}

// AnnounceOnce runs one synchronous mesh announce round, the
// virtual-time analogue of the agent's wall-clock loop (pair with
// ProbeOnce between experiment ticks). No-op without a mesh.
func (s *Site) AnnounceOnce() {
	if s.Mesh == nil {
		return
	}
	s.Mesh.AnnounceOnce()
}

// AddCache scales the site up by one cache instance: a new MEC node,
// a fronting Service with a fresh stable cluster IP, and registration
// with the C-DNS. Routing via the consistent-hash ring means only
// ~1/N of the content mapping moves. With health enabled the instance
// starts in the probing state and is not routed to until its first
// successful probe (see ProbeOnce).
func (s *Site) AddCache() (*cdn.CacheServer, error) {
	i := s.nextCache
	s.nextCache++
	nodeName := fmt.Sprintf("%smec-cache-%d", s.cfg.NamePrefix, i)
	node := s.tb.AddMEC(nodeName)
	server := cdn.NewCacheServer(node, cdn.CacheServerConfig{
		Name:          nodeName,
		Site:          s.cfg.NamePrefix + "mec",
		Tier:          cdn.TierEdge,
		CapacityBytes: s.cfg.CacheCapacity,
		Parent:        s.cfg.OriginAddr,
		Domains:       []string{s.cfg.Domain},
		ServeDelay:    simnet.Shifted{Base: 200 * time.Microsecond, Jitter: simnet.Uniform{Max: 100 * time.Microsecond}},
	})
	svc, err := s.Orch.CreateService(orchestrator.ServiceSpec{
		Name:      fmt.Sprintf("%scache-%d", s.cfg.NamePrefix, i),
		Namespace: "cdn",
		Endpoints: []netip.Addr{node.Addr},
	})
	if err != nil {
		return nil, fmt.Errorf("creating cache service %d: %w", i, err)
	}
	s.Router.AddServerAdvertise(server, geoip.Location{Name: s.cfg.NamePrefix + "mec"}, svc.ClusterIP)
	s.Caches = append(s.Caches, server)
	s.CacheServices = append(s.CacheServices, svc)
	return server, nil
}

// RemoveCache scales the site down by one instance (the most recently
// added): it is deregistered from the C-DNS (which also drops it from
// the health registry when one is attached), its Service deleted, and
// the server marked unhealthy so in-flight routing skips it.
func (s *Site) RemoveCache() error {
	if len(s.Caches) == 0 {
		return fmt.Errorf("meccdn: no cache instances to remove")
	}
	i := len(s.Caches) - 1
	server, svc := s.Caches[i], s.CacheServices[i]
	s.Caches, s.CacheServices = s.Caches[:i], s.CacheServices[:i]
	s.Router.RemoveServer(server.Name)
	server.SetHealthy(false)
	if err := s.Orch.DeleteService(svc.Namespace, svc.Name); err != nil {
		return fmt.Errorf("deleting cache service: %w", err)
	}
	return nil
}

// AddDomain deploys another CDN customer's domain at the site: a
// tenant-scoped C-DNS behind its own cluster IP, cache instances, and
// a stub-domain route at the shared MEC L-DNS. Every tenant shares
// the site's single public ingress — the §3/§5 IP-reuse property at
// work ("assigning the same public IP for CDN domains of the many CDN
// customers").
func (s *Site) AddDomain(domain string, originAddr netip.Addr, cacheServers int) (*DomainDeployment, error) {
	domain = dnswire.CanonicalName(domain)
	if s.tenants == nil {
		s.tenants = make(map[string]*DomainDeployment)
	}
	if domain == s.cfg.Domain {
		return nil, fmt.Errorf("meccdn: %s is the site's primary domain", domain)
	}
	if _, exists := s.tenants[domain]; exists {
		return nil, fmt.Errorf("meccdn: domain %s already deployed", domain)
	}
	if cacheServers <= 0 {
		cacheServers = 1
	}
	s.nextTent++
	tag := fmt.Sprintf("%stenant%d-", s.cfg.NamePrefix, s.nextTent)

	dep := &DomainDeployment{Domain: domain, Router: cdn.NewRouter(domain)}
	dep.Router.Policy = s.cfg.Policy
	dep.Router.Geo = s.cfg.Geo
	for i := 0; i < cacheServers; i++ {
		nodeName := fmt.Sprintf("%scache-%d", tag, i)
		node := s.tb.AddMEC(nodeName)
		server := cdn.NewCacheServer(node, cdn.CacheServerConfig{
			Name:          nodeName,
			Site:          s.cfg.NamePrefix + "mec",
			Tier:          cdn.TierEdge,
			CapacityBytes: s.cfg.CacheCapacity,
			Parent:        originAddr,
			Domains:       []string{domain},
			ServeDelay:    simnet.Shifted{Base: 200 * time.Microsecond, Jitter: simnet.Uniform{Max: 100 * time.Microsecond}},
		})
		svc, err := s.Orch.CreateService(orchestrator.ServiceSpec{
			Name:      nodeName,
			Namespace: "cdn",
			Endpoints: []netip.Addr{node.Addr},
		})
		if err != nil {
			return nil, fmt.Errorf("creating tenant cache service: %w", err)
		}
		dep.Router.AddServerAdvertise(server, geoip.Location{Name: s.cfg.NamePrefix + "mec"}, svc.ClusterIP)
		dep.Caches = append(dep.Caches, server)
		dep.CacheServices = append(dep.CacheServices, svc)
	}

	cdnsNode := s.tb.AddMEC(tag + "cdns")
	dnsserver.Attach(cdnsNode, dnsserver.Chain(dep.Router), s.cfg.CDNSProcessing)
	svc, err := s.Orch.CreateService(orchestrator.ServiceSpec{
		Name:      tag + "traffic-router",
		Namespace: "cdn",
		Endpoints: []netip.Addr{cdnsNode.Addr},
	})
	if err != nil {
		return nil, fmt.Errorf("creating tenant C-DNS service: %w", err)
	}
	dep.CDNS = netip.AddrPortFrom(svc.ClusterIP, 53)
	dep.cdnsService = svc
	s.stub.Route(domain, dep.CDNS)
	s.tenants[domain] = dep
	return dep, nil
}

// RemoveDomain tears a tenant down: its stub route, services, and
// C-DNS registration disappear; queries for the domain fall through
// to the provider path (or REFUSED).
func (s *Site) RemoveDomain(domain string) error {
	domain = dnswire.CanonicalName(domain)
	dep, ok := s.tenants[domain]
	if !ok {
		return fmt.Errorf("meccdn: domain %s not deployed", domain)
	}
	delete(s.tenants, domain)
	s.stub.Unroute(domain)
	for _, server := range dep.Caches {
		dep.Router.RemoveServer(server.Name)
		server.SetHealthy(false)
	}
	for _, svc := range dep.CacheServices {
		if err := s.Orch.DeleteService(svc.Namespace, svc.Name); err != nil {
			return err
		}
	}
	if dep.cdnsService != nil {
		if err := s.Orch.DeleteService(dep.cdnsService.Namespace, dep.cdnsService.Name); err != nil {
			return err
		}
	}
	return nil
}

// Tenant returns the deployment for a hosted customer domain, or nil.
func (s *Site) Tenant(domain string) *DomainDeployment {
	return s.tenants[dnswire.CanonicalName(domain)]
}

// Warm preloads content onto the cache instance the router's hash
// ring assigns it to, emulating orchestrated pre-positioning.
func (s *Site) Warm(contents ...cdn.Content) {
	byName := make(map[string]*cdn.CacheServer, len(s.Caches))
	for _, c := range s.Caches {
		byName[c.Name] = c
	}
	for _, content := range contents {
		owner := s.Router.Ring.Owner(content.Name)
		if server := byName[owner]; server != nil {
			server.Warm(content)
		}
	}
}

// Domain returns the site's CDN domain.
func (s *Site) Domain() string { return s.cfg.Domain }

// HitRatio aggregates the cache instances' hit ratios.
func (s *Site) HitRatio() float64 {
	var hits, total uint64
	for _, c := range s.Caches {
		st := c.Cache().Stats()
		hits += st.Hits
		total += st.Hits + st.Misses
	}
	if total == 0 {
		return 0
	}
	return float64(hits) / float64(total)
}
