package meccdn

import "fmt"

// Role is one of the MEC-CDN ecosystem roles of the paper's Table 2.
type Role int

// Ecosystem roles.
const (
	RoleCellularProvider Role = iota
	RoleCDNProvider
	RoleDNSProvider
	RoleWebProvider
	RoleCloudProvider
	RoleCDNBroker
	RoleMECProvider
)

// roleInfo carries the Table 2 row for each role.
var roleInfo = map[Role]struct{ name, duty string }{
	RoleCellularProvider: {"Cellular Provider", "Operating RAN and cellular core network"},
	RoleCDNProvider:      {"CDN Provider", "Providing content caches on CDN domains hosted on some server nodes"},
	RoleDNSProvider:      {"DNS Provider", "Routing requests to closest CDN domain servers"},
	RoleWebProvider:      {"Web Provider", "Delivering web services that use CDNs to provide better services to end users"},
	RoleCloudProvider:    {"Cloud Provider", "Providing server infrastructure to one or more of the above"},
	RoleCDNBroker:        {"CDN Broker", "Providing a consolidated service spanning multiple CDNs to CDN customers"},
	RoleMECProvider:      {"MEC Provider", "Providing MEC servers that host CDN domains"},
}

// AllRoles lists every role in Table 2 order.
func AllRoles() []Role {
	return []Role{
		RoleCellularProvider, RoleCDNProvider, RoleDNSProvider,
		RoleWebProvider, RoleCloudProvider, RoleCDNBroker, RoleMECProvider,
	}
}

// String returns the role's display name.
func (r Role) String() string {
	if info, ok := roleInfo[r]; ok {
		return info.name
	}
	return fmt.Sprintf("role(%d)", int(r))
}

// Duty returns the role's responsibility as described in Table 2.
func (r Role) Duty() string {
	if info, ok := roleInfo[r]; ok {
		return info.duty
	}
	return ""
}

// Entity is one participant in the ecosystem. As the paper notes, a
// single entity can subsume several roles — Verizon acts as cellular,
// DNS, and CDN provider at once — which is exactly what obscures "who
// owns performance".
type Entity struct {
	Name  string
	Roles []Role
}

// HasRole reports whether the entity plays r.
func (e Entity) HasRole(r Role) bool {
	for _, have := range e.Roles {
		if have == r {
			return true
		}
	}
	return false
}

// PerformanceOwners returns the entities that influence the DNS → CDN
// resolution path: every entity holding a DNS, CDN, broker, or MEC
// role. When more than one entity shares those roles, accountability
// is fragmented — the paper's "invisible performance owners".
func PerformanceOwners(entities []Entity) []Entity {
	var owners []Entity
	for _, e := range entities {
		if e.HasRole(RoleDNSProvider) || e.HasRole(RoleCDNProvider) ||
			e.HasRole(RoleCDNBroker) || e.HasRole(RoleMECProvider) {
			owners = append(owners, e)
		}
	}
	return owners
}
