package meccdn

import (
	"strings"
	"testing"
	"time"

	"github.com/meccdn/meccdn/internal/cdn"
	"github.com/meccdn/meccdn/internal/lte"
	"github.com/meccdn/meccdn/internal/simnet"
)

// twoSiteMesh deploys two meshed MEC sites on one testbed. Only site B
// fills from the origin; site A's caches are leaves, so a request at A
// for content it does not hold is served only if the mesh steers it.
func twoSiteMesh(t *testing.T, seed int64) (*lte.Testbed, *Site, *Site) {
	t.Helper()
	tb := lte.New(lte.Config{Seed: seed})
	originNode := tb.AddWAN("origin", 1)
	origin := cdn.NewOrigin()
	cat := cdn.NewCatalog(testDomain)
	cat.Publish(cdn.Content{Name: "video.flash." + testDomain, Size: 2048})
	origin.AddCatalog(cat)
	cdn.NewOriginServer(originNode, origin, simnet.Constant(2*time.Millisecond))

	siteA, err := DeploySite(tb, SiteConfig{
		Domain:     testDomain,
		NamePrefix: "a-",
		Mesh:       &MeshOptions{},
	})
	if err != nil {
		t.Fatal(err)
	}
	siteB, err := DeploySite(tb, SiteConfig{
		Domain:     testDomain,
		NamePrefix: "b-",
		OriginAddr: originNode.Addr,
		Mesh:       &MeshOptions{},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := ConnectMesh(siteA, siteB); err != nil {
		t.Fatal(err)
	}
	return tb, siteA, siteB
}

func TestMeshSteersAcrossSites(t *testing.T) {
	tb, siteA, siteB := twoSiteMesh(t, 60)
	name := "video.flash." + testDomain
	siteB.Warm(cdn.Content{Name: name, Size: 2048})

	// One announce round each way publishes B's content table at A.
	siteA.AnnounceOnce()
	siteB.AnnounceOnce()
	if got := siteA.Mesh.View().EligiblePeers(); got != 1 {
		t.Fatalf("site A eligible peers = %d", got)
	}

	ue := &UEClient{EP: tb.Net.Node(lte.NodeUE).Endpoint(), MEC: siteA.LDNS}
	fr, err := ue.ResolveAndFetch(testDomain, name)
	if err != nil {
		t.Fatal(err)
	}
	// The referral chase must land on one of site B's cache cluster
	// IPs and the object must be served from B's warm cache.
	if !strings.HasSuffix(fr.Resolve.Source, "+tier") {
		t.Errorf("source = %q, want a chased referral", fr.Resolve.Source)
	}
	foundB := false
	for _, svc := range siteB.CacheServices {
		if fr.Resolve.Addr == svc.ClusterIP {
			foundB = true
		}
	}
	if !foundB {
		t.Fatalf("answer %v is not a site-B cache cluster IP", fr.Resolve.Addr)
	}
	if fr.Content.Status != "HIT" {
		t.Fatalf("content status = %q, want HIT from the sibling MEC", fr.Content.Status)
	}
	if hits := siteA.Mesh.View().PeerHits(); hits != 1 {
		t.Errorf("peer hits = %d, want 1", hits)
	}

	// Content nobody announced stays local: A picks its own (empty,
	// parentless) cache and the fetch is NOTFOUND, proving the steer
	// above was mesh-driven, not topological.
	fr2, err := ue.ResolveAndFetch(testDomain, "video.cold."+testDomain)
	if err != nil {
		t.Fatal(err)
	}
	if fr2.Content.Status == "HIT" {
		t.Fatalf("unannounced content served HIT from %v", fr2.Resolve.Addr)
	}
}

func TestMeshColdViewStaysVertical(t *testing.T) {
	tb, siteA, siteB := twoSiteMesh(t, 61)
	name := "video.flash." + testDomain
	siteB.Warm(cdn.Content{Name: name, Size: 2048})
	// No announce round: A's view is empty, so resolution must stay on
	// the site-local path even though B holds the object.
	ue := &UEClient{EP: tb.Net.Node(lte.NodeUE).Endpoint(), MEC: siteA.LDNS}
	fr, err := ue.ResolveAndFetch(testDomain, name)
	if err != nil {
		t.Fatal(err)
	}
	foundA := false
	for _, svc := range siteA.CacheServices {
		if fr.Resolve.Addr == svc.ClusterIP {
			foundA = true
		}
	}
	if !foundA {
		t.Fatalf("cold-view answer %v is not a site-A cache", fr.Resolve.Addr)
	}
	if hits := siteA.Mesh.View().PeerHits(); hits != 0 {
		t.Errorf("peer hits = %d with a cold view", hits)
	}
}

func TestMeshSnapshotPublishesStatus(t *testing.T) {
	_, siteA, siteB := twoSiteMesh(t, 62)
	siteB.Warm(cdn.Content{Name: "video.flash." + testDomain, Size: 2048})
	siteA.AnnounceOnce()
	siteB.AnnounceOnce()
	st := siteA.Mesh.Snapshot()
	if st.Site != "a-mec" || len(st.Peers) != 1 || st.Peers[0].Name != "b-mec" {
		t.Fatalf("snapshot = %+v", st)
	}
	if st.Peers[0].Entries != 1 || !st.Peers[0].Eligible {
		t.Fatalf("peer row = %+v", st.Peers[0])
	}
	if siteA.MeshAddr() == siteB.MeshAddr() || !siteA.MeshAddr().IsValid() {
		t.Fatalf("mesh addrs: %v vs %v", siteA.MeshAddr(), siteB.MeshAddr())
	}
}
