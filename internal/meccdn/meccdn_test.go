package meccdn

import (
	"net/netip"
	"strings"
	"testing"
	"time"

	"github.com/meccdn/meccdn/internal/cdn"
	"github.com/meccdn/meccdn/internal/dnsserver"
	"github.com/meccdn/meccdn/internal/lte"
	"github.com/meccdn/meccdn/internal/simnet"
)

const testDomain = "mycdn.ciab.test."

// deployment is a full testbed: MEC site + origin + provider L-DNS.
type deployment struct {
	tb   *lte.Testbed
	site *Site
	ue   *UEClient
}

func deploy(t *testing.T, seed int64, mutate func(*SiteConfig)) *deployment {
	t.Helper()
	tb := lte.New(lte.Config{Seed: seed})

	// Origin in the cloud, over WAN.
	originNode := tb.AddWAN("origin", 1)
	origin := cdn.NewOrigin()
	cat := cdn.NewCatalog(testDomain)
	cat.Publish(cdn.Content{Name: "video.demo1." + testDomain, Size: 4096})
	cat.Publish(cdn.Content{Name: "img.demo1." + testDomain, Size: 1024})
	origin.AddCatalog(cat)
	cdn.NewOriginServer(originNode, origin, simnet.Constant(2*time.Millisecond))

	// Provider L-DNS on the LAN behind the core: a plain zone server
	// that can answer non-MEC names.
	provNode := tb.AddLAN("provider-ldns")
	provZone := dnsserver.NewZone("web.example.")
	if err := provZone.AddA("www.web.example.", 300, tb.Net.Node("origin").Addr); err != nil {
		t.Fatal(err)
	}
	dnsserver.Attach(provNode, dnsserver.Chain(dnsserver.NewZonePlugin(provZone)), simnet.Constant(500*time.Microsecond))

	cfg := SiteConfig{
		Domain:       testDomain,
		CacheServers: 2,
		OriginAddr:   originNode.Addr,
		ProviderLDNS: addrPort(tb, "provider-ldns"),
	}
	if mutate != nil {
		mutate(&cfg)
	}
	site, err := DeploySite(tb, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ue := &UEClient{
		EP:       tb.Net.Node(lte.NodeUE).Endpoint(),
		MEC:      site.LDNS,
		Provider: addrPort(tb, "provider-ldns"),
	}
	return &deployment{tb: tb, site: site, ue: ue}
}

func addrPort(tb *lte.Testbed, node string) netip.AddrPort {
	return netip.AddrPortFrom(tb.Net.Node(node).Addr, 53)
}

func addrPortOf(a netip.Addr) netip.AddrPort { return netip.AddrPortFrom(a, 53) }

func TestSingleHopEdgeResolution(t *testing.T) {
	d := deploy(t, 1, nil)
	res, err := d.ue.Resolve("video.demo1." + testDomain)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Addr.IsValid() {
		t.Fatalf("no address in %v", res.Msg)
	}
	// The answer must be a cluster IP, not a cache host IP: the
	// public-IP-reuse property.
	if !strings.HasPrefix(res.Addr.String(), "10.96.") {
		t.Errorf("answer %v is not a cluster IP", res.Addr)
	}
	// Resolution must be edge-contained: ~20ms of air plus sub-ms MEC
	// hops, nowhere near LAN/WAN budgets.
	if res.RTT > 30*time.Millisecond {
		t.Errorf("MEC resolution took %v", res.RTT)
	}
	if res.Source != "mec" {
		t.Errorf("source = %s", res.Source)
	}
}

func TestEndToEndContentFetch(t *testing.T) {
	d := deploy(t, 2, nil)
	name := "video.demo1." + testDomain
	d.site.Warm(cdn.Content{Name: name, Size: 4096})

	fr, err := d.ue.ResolveAndFetch(testDomain, name)
	if err != nil {
		t.Fatal(err)
	}
	if fr.Content.Status != "HIT" {
		t.Errorf("content status = %s, want HIT after warm", fr.Content.Status)
	}
	if fr.Total > 60*time.Millisecond {
		t.Errorf("end-to-end latency %v", fr.Total)
	}
}

func TestColdFetchFillsFromOrigin(t *testing.T) {
	d := deploy(t, 3, nil)
	name := "img.demo1." + testDomain
	fr, err := d.ue.ResolveAndFetch(testDomain, name)
	if err != nil {
		t.Fatal(err)
	}
	if fr.Content.Status != "FILLED" {
		t.Fatalf("cold status = %s", fr.Content.Status)
	}
	fr2, err := d.ue.ResolveAndFetch(testDomain, name)
	if err != nil {
		t.Fatal(err)
	}
	if fr2.Content.Status != "HIT" {
		t.Errorf("warm status = %s", fr2.Content.Status)
	}
	if fr2.Total >= fr.Total {
		t.Errorf("warm fetch (%v) not faster than cold (%v)", fr2.Total, fr.Total)
	}
}

func TestNonMECNameForwardedUpstream(t *testing.T) {
	d := deploy(t, 4, nil)
	res, err := d.ue.Resolve("www.web.example.")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Addr.IsValid() {
		t.Error("non-MEC name did not resolve through MEC DNS forward")
	}
}

func TestInternalNamespaceHiddenFromUE(t *testing.T) {
	d := deploy(t, 5, nil)
	// Cluster-internal service names must not resolve for UEs: the
	// split-namespace protection.
	res, err := d.ue.Resolve("coredns.kube-system.svc.cluster.local.")
	if err != nil {
		t.Fatal(err)
	}
	if res.Addr.IsValid() {
		t.Error("UE resolved an internal VNF name — namespace leak")
	}
}

func TestMulticastTakesFasterResolver(t *testing.T) {
	d := deploy(t, 6, nil)
	d.ue.Mode = Multicast
	res, err := d.ue.Resolve("video.demo1." + testDomain)
	if err != nil {
		t.Fatal(err)
	}
	if res.Source != "mec" {
		t.Errorf("winner = %s; MEC should beat the LAN provider", res.Source)
	}
	if !res.Addr.IsValid() {
		t.Error("no answer")
	}
}

func TestFallbackOnTimeout(t *testing.T) {
	d := deploy(t, 7, nil)
	d.ue.Mode = FallbackOnTimeout
	d.ue.MECBudget = 30 * time.Millisecond
	// A name only the provider knows: the MEC DNS forwards it too,
	// so make the MEC unreachable instead to force the fallback.
	d.ue.MEC = netip.AddrPortFrom(d.tb.Net.Node("origin").Addr, 53) // origin is not a DNS server
	res, err := d.ue.Resolve("www.web.example.")
	if err != nil {
		t.Fatal(err)
	}
	if res.Source != "provider" {
		t.Errorf("source = %s", res.Source)
	}
	// The paid MEC budget must be reflected in the reported RTT.
	if res.RTT < d.ue.MECBudget {
		t.Errorf("RTT %v does not include the wasted MEC budget", res.RTT)
	}
}

func TestLoadShedSwitchesToProvider(t *testing.T) {
	d := deploy(t, 8, func(cfg *SiteConfig) { cfg.MaxIngressQPS = 3 })
	name := "video.demo1." + testDomain
	for i := 0; i < 10; i++ {
		if _, err := d.ue.Resolve(name); err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
	}
	shed, served := d.site.Shed.Shed()
	if shed == 0 {
		t.Error("no queries shed above threshold")
	}
	if served == 0 {
		t.Error("no queries served")
	}
}

func TestRoutingStickinessAndHitRatio(t *testing.T) {
	d := deploy(t, 9, nil)
	name := "video.demo1." + testDomain
	var addrs []string
	for i := 0; i < 10; i++ {
		fr, err := d.ue.ResolveAndFetch(testDomain, name)
		if err != nil {
			t.Fatal(err)
		}
		addrs = append(addrs, fr.Resolve.Addr.String())
		_ = fr
	}
	for _, a := range addrs[1:] {
		if a != addrs[0] {
			t.Fatalf("routing not sticky: %v", addrs)
		}
	}
	// First access fills, the rest hit.
	if hr := d.site.HitRatio(); hr < 0.85 {
		t.Errorf("hit ratio = %.2f", hr)
	}
}

func TestDeploySiteValidation(t *testing.T) {
	tb := lte.New(lte.Config{Seed: 10})
	if _, err := DeploySite(tb, SiteConfig{}); err == nil {
		t.Error("empty config accepted")
	}
}

func TestEntitiesTable2(t *testing.T) {
	if len(AllRoles()) != 7 {
		t.Fatalf("roles = %d, want 7", len(AllRoles()))
	}
	for _, r := range AllRoles() {
		if r.String() == "" || r.Duty() == "" {
			t.Errorf("role %d missing table row", r)
		}
	}
	verizon := Entity{Name: "Verizon", Roles: []Role{RoleCellularProvider, RoleDNSProvider, RoleCDNProvider}}
	if !verizon.HasRole(RoleDNSProvider) || verizon.HasRole(RoleCDNBroker) {
		t.Error("HasRole")
	}
	owners := PerformanceOwners([]Entity{
		verizon,
		{Name: "PureWeb", Roles: []Role{RoleWebProvider}},
		{Name: "EdgeCo", Roles: []Role{RoleMECProvider}},
	})
	if len(owners) != 2 {
		t.Errorf("owners = %v", owners)
	}
	if Role(99).String() != "role(99)" || Role(99).Duty() != "" {
		t.Error("unknown role")
	}
}

func TestResolutionModeStrings(t *testing.T) {
	modes := map[ResolutionMode]string{
		MECOnly: "mec-only", ProviderOnly: "provider-only",
		Multicast: "multicast", FallbackOnTimeout: "fallback-on-timeout",
	}
	for m, want := range modes {
		if m.String() != want {
			t.Errorf("%d = %s", m, m.String())
		}
	}
	if ResolutionMode(9).String() != "mode(9)" {
		t.Error("unknown mode")
	}
}
