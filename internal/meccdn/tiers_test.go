package meccdn

import (
	"strings"
	"testing"
	"time"

	"github.com/meccdn/meccdn/internal/cdn"
	"github.com/meccdn/meccdn/internal/dnsserver"
	"github.com/meccdn/meccdn/internal/geoip"
	"github.com/meccdn/meccdn/internal/health"
	"github.com/meccdn/meccdn/internal/lte"
	"github.com/meccdn/meccdn/internal/simnet"
)

// TestCrossTierReferralChase builds the paper's tier story: the edge
// C-DNS has no cache for the domain, so it refers the client to a
// mid-tier C-DNS running alongside the core, which answers with a
// mid-tier cache.
func TestCrossTierReferralChase(t *testing.T) {
	tb := lte.New(lte.Config{Seed: 30})

	// Mid-tier C-DNS + cache on the LAN alongside the core.
	midCacheNode := tb.AddLAN("mid-cache")
	midCache := cdn.NewCacheServer(midCacheNode, cdn.CacheServerConfig{
		Name: "mid-cache", Tier: cdn.TierMid, CapacityBytes: 1 << 20,
		Domains: []string{testDomain},
	})
	midCache.Warm(cdn.Content{Name: "video.demo1." + testDomain, Size: 100})
	midRouter := cdn.NewRouter(testDomain)
	midRouter.AddServer(midCache, geoip.Location{Name: "mid"})
	midCDNSNode := tb.AddLAN("mid-cdns")
	dnsserver.Attach(midCDNSNode, dnsserver.Chain(midRouter), simnet.Constant(time.Millisecond))

	// Edge C-DNS with NO local cache servers, parented to the mid.
	edgeRouter := cdn.NewRouter(testDomain)
	edgeRouter.Parent = midCDNSNode.Addr
	edgeCDNSNode := tb.AddMEC("edge-cdns")
	dnsserver.Attach(edgeCDNSNode, dnsserver.Chain(edgeRouter), simnet.Constant(time.Millisecond))

	ue := &UEClient{
		EP:  tb.Net.Node(lte.NodeUE).Endpoint(),
		MEC: addrPortOf(edgeCDNSNode.Addr),
	}
	res, err := ue.Resolve("video.demo1." + testDomain)
	if err != nil {
		t.Fatal(err)
	}
	if res.Addr != midCache.Addr() {
		t.Errorf("answer = %v, want mid-tier cache %v", res.Addr, midCache.Addr())
	}
	if !strings.HasSuffix(res.Source, "+tier") {
		t.Errorf("source = %q, want tier-chase marker", res.Source)
	}
	// The chase pays the edge RTT plus the mid-tier RTT.
	if res.RTT < 40*time.Millisecond {
		t.Errorf("tier chase suspiciously fast: %v", res.RTT)
	}
}

// TestReferralChaseBounded ensures a referral loop cannot run away.
func TestReferralChaseBounded(t *testing.T) {
	tb := lte.New(lte.Config{Seed: 31})
	// Two empty routers pointing at each other.
	aNode := tb.AddMEC("cdns-a")
	bNode := tb.AddMEC("cdns-b")
	a := cdn.NewRouter(testDomain)
	a.Parent = bNode.Addr
	b := cdn.NewRouter(testDomain)
	b.Parent = aNode.Addr
	dnsserver.Attach(aNode, dnsserver.Chain(a), nil)
	dnsserver.Attach(bNode, dnsserver.Chain(b), nil)

	ue := &UEClient{EP: tb.Net.Node(lte.NodeUE).Endpoint(), MEC: addrPortOf(aNode.Addr)}
	res, err := ue.Resolve("video.demo1." + testDomain)
	if err != nil {
		t.Fatal(err)
	}
	// Bounded chase terminates with no address rather than hanging.
	if res.Addr.IsValid() {
		t.Errorf("loop produced an address: %v", res.Addr)
	}
}

func TestSiteScaling(t *testing.T) {
	d := deploy(t, 32, nil)
	name := "video.demo1." + testDomain
	before, err := d.ue.Resolve(name)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.site.Caches) != 2 {
		t.Fatalf("initial caches = %d", len(d.site.Caches))
	}

	// Scale up: the new instance gets its own cluster IP; the C-DNS
	// stays reachable at its fixed cluster IP throughout.
	added, err := d.site.AddCache()
	if err != nil {
		t.Fatal(err)
	}
	if len(d.site.Caches) != 3 || added.Name == "" {
		t.Fatalf("after scale-up caches = %d", len(d.site.Caches))
	}
	after, err := d.ue.Resolve(name)
	if err != nil {
		t.Fatal(err)
	}
	if !after.Addr.IsValid() {
		t.Fatal("resolution broken after scale-up")
	}

	// Scale down twice: still serving from the remaining instance.
	if err := d.site.RemoveCache(); err != nil {
		t.Fatal(err)
	}
	if err := d.site.RemoveCache(); err != nil {
		t.Fatal(err)
	}
	if len(d.site.Caches) != 1 {
		t.Fatalf("after scale-down caches = %d", len(d.site.Caches))
	}
	final, err := d.ue.ResolveAndFetch(testDomain, name)
	if err != nil {
		t.Fatal(err)
	}
	if !final.Content.Served() {
		t.Errorf("content not served after scale-down: %+v", final.Content)
	}
	_ = before
	// Draining everything fails cleanly.
	if err := d.site.RemoveCache(); err != nil {
		t.Fatal(err)
	}
	if err := d.site.RemoveCache(); err == nil {
		t.Error("removing from empty site succeeded")
	}
}

// TestCacheFailureResilience drains the cache instance the router is
// steering a name to and verifies the site keeps serving from the
// survivor — the availability property the health checks buy. The
// drain goes through the registry's explicit override API, the
// control-plane analogue of the data-plane SetHealthy kill switch.
func TestCacheFailureResilience(t *testing.T) {
	d := deploy(t, 34, func(c *SiteConfig) {
		c.Health = &health.Config{DownAfter: 2, UpAfter: 1, MinDwell: -1}
	})
	d.site.ProbeOnce() // admit the probing caches into the ring
	name := "video.demo1." + testDomain
	first, err := d.ue.ResolveAndFetch(testDomain, name)
	if err != nil {
		t.Fatal(err)
	}
	if !first.Content.Served() {
		t.Fatalf("baseline not served: %+v", first.Content)
	}
	// Find and drain the instance that served it.
	owner := d.site.Router.Ring.Owner(name)
	var victim *cdn.CacheServer
	for _, c := range d.site.Caches {
		if c.Name == owner {
			victim = c
		}
	}
	if victim == nil {
		t.Fatal("no ring owner among caches")
	}
	if !d.site.Health.SetOverride(victim.Name, false) {
		t.Fatalf("victim %s not registered with the health registry", victim.Name)
	}
	// Expire the cached DNS answer so the router re-selects.
	d.tb.Net.Clock.RunUntil(d.tb.Net.Now() + time.Minute)

	second, err := d.ue.ResolveAndFetch(testDomain, name)
	if err != nil {
		t.Fatal(err)
	}
	if !second.Content.Served() {
		t.Fatalf("not served after failure: %+v", second.Content)
	}
	if second.Resolve.Addr == first.Resolve.Addr {
		t.Error("router still points at the dead instance")
	}
}

func TestTransferRateModel(t *testing.T) {
	n := simnet.New(33)
	n.AddNode("client")
	n.AddNode("cache")
	n.AddLink("client", "cache", simnet.Constant(time.Millisecond), 0)
	server := cdn.NewCacheServer(n.Node("cache"), cdn.CacheServerConfig{
		Name: "cache", CapacityBytes: 1 << 30,
		TransferRate: 10 << 20, // 10 MiB/s
	})
	server.Warm(cdn.Content{Name: "big", Size: 5 << 20}) // 5 MiB → 500ms
	res, err := cdn.Fetch(n.Node("client").Endpoint(), server.Addr(), "any.", "big", 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	// 1ms + 500ms serialization + 1ms.
	if res.RTT < 500*time.Millisecond || res.RTT > 510*time.Millisecond {
		t.Errorf("rtt = %v, want ≈502ms", res.RTT)
	}
}
