package meccdn

import (
	"testing"
	"time"

	"github.com/meccdn/meccdn/internal/lte"
)

func TestUEClientMissingResolvers(t *testing.T) {
	tb := lte.New(lte.Config{Seed: 90})
	ep := tb.Net.Node(lte.NodeUE).Endpoint()

	noMEC := &UEClient{EP: ep}
	if _, err := noMEC.Resolve("x.test."); err == nil {
		t.Error("MECOnly without MEC succeeded")
	}
	noProv := &UEClient{EP: ep, Mode: ProviderOnly}
	if _, err := noProv.Resolve("x.test."); err == nil {
		t.Error("ProviderOnly without provider succeeded")
	}
	noBoth := &UEClient{EP: ep, Mode: Multicast}
	if _, err := noBoth.Resolve("x.test."); err == nil {
		t.Error("Multicast without resolvers succeeded")
	}
}

func TestUEClientMulticastBothDead(t *testing.T) {
	d := deploy(t, 91, nil)
	d.ue.Mode = Multicast
	d.ue.Timeout = 30 * time.Millisecond
	// Point both at a node that is not a DNS server.
	dead := addrPortOf(d.tb.Net.Node("origin").Addr)
	d.ue.MEC, d.ue.Provider = dead, dead
	if _, err := d.ue.Resolve("x.test."); err == nil {
		t.Error("multicast with two dead resolvers succeeded")
	}
}

func TestUEClientFallbackBothDead(t *testing.T) {
	d := deploy(t, 92, nil)
	d.ue.Mode = FallbackOnTimeout
	d.ue.MECBudget = 10 * time.Millisecond
	d.ue.Timeout = 30 * time.Millisecond
	dead := addrPortOf(d.tb.Net.Node("origin").Addr)
	d.ue.MEC, d.ue.Provider = dead, dead
	if _, err := d.ue.Resolve("x.test."); err == nil {
		t.Error("fallback with two dead resolvers succeeded")
	}
}

func TestResolveAndFetchNoAddress(t *testing.T) {
	d := deploy(t, 93, nil)
	// A name the public view refuses: resolution yields no address
	// and ResolveAndFetch must error rather than fetch from a zero
	// address.
	if _, err := d.ue.ResolveAndFetch(testDomain, "coredns.kube-system.svc.cluster.local."); err == nil {
		t.Error("fetch of unresolvable name succeeded")
	}
}

func TestUEClientSurvivesAirLoss(t *testing.T) {
	// With the default LTE loss and stub retransmission, a long run
	// of queries completes without a hard failure.
	d := deploy(t, 94, nil)
	name := "video.demo1." + testDomain
	for i := 0; i < 300; i++ {
		if _, err := d.ue.Resolve(name); err != nil {
			t.Fatalf("query %d failed despite retransmission: %v", i, err)
		}
	}
}
