package mesh

import (
	"fmt"
	"net"
	"net/netip"
	"time"

	"github.com/meccdn/meccdn/internal/simnet"
)

// simTransport announces over a simnet endpoint; peer addresses are
// textual netip.Addr forms of simnet node addresses.
type simTransport struct {
	ep *simnet.Endpoint
}

func (t simTransport) Exchange(addr string, payload []byte, timeout time.Duration) ([]byte, error) {
	dst, err := netip.ParseAddr(addr)
	if err != nil {
		ap, err2 := netip.ParseAddrPort(addr)
		if err2 != nil {
			return nil, fmt.Errorf("mesh: bad peer addr %q: %w", addr, err)
		}
		dst = ap.Addr()
	}
	resp, _, err := t.ep.Exchange(dst, payload, timeout)
	return resp, err
}

// BindSimnet attaches the agent to a simnet node: incoming datagrams
// are answered by HandleDatagram and announces go out over the node's
// endpoint. The node's address is the site's mesh address peers
// should be configured with.
func (a *Agent) BindSimnet(node *simnet.Node) {
	a.cfg.Transport = simTransport{ep: node.Endpoint()}
	node.SetHandler(simnet.HandlerFunc(func(ctx *simnet.Ctx, dg simnet.Datagram) {
		ctx.Reply(a.HandleDatagram(dg.Payload), 0)
	}))
}

// maxDatagram bounds one mesh datagram: prefix + fixed header + two
// max-length names + the largest digest bitmap.
const maxDatagram = len(AnnouncePrefix) + announceFixed + 2*MaxNameLen + MaxDigestBits/8

// UDPTransport announces over real UDP sockets; peer addresses are
// host:port strings. Each exchange uses an ephemeral socket so no
// reply demultiplexing is needed — announce QPS is peers/interval,
// far below any socket-churn concern.
type UDPTransport struct{}

func (UDPTransport) Exchange(addr string, payload []byte, timeout time.Duration) ([]byte, error) {
	conn, err := net.Dial("udp", addr)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	if err := conn.SetDeadline(time.Now().Add(timeout)); err != nil {
		return nil, err
	}
	if _, err := conn.Write(payload); err != nil {
		return nil, err
	}
	buf := make([]byte, 256)
	n, err := conn.Read(buf)
	if err != nil {
		return nil, err
	}
	return buf[:n], nil
}

// ServeUDP answers mesh datagrams on conn until the connection is
// closed. It is the dnsd-side receive loop, run on its own goroutine.
func (a *Agent) ServeUDP(conn net.PacketConn) error {
	buf := make([]byte, maxDatagram+1)
	for {
		n, from, err := conn.ReadFrom(buf)
		if err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				continue
			}
			return err
		}
		if n > maxDatagram {
			a.announces.Inc("malformed")
			continue
		}
		resp := a.HandleDatagram(buf[:n])
		if _, err := conn.WriteTo(resp, from); err != nil {
			return err
		}
	}
}
