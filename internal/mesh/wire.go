package mesh

import (
	"encoding/binary"
	"fmt"
	"strconv"
	"strings"
)

// The ANNOUNCE wire format: a text verb prefix (so the datagram plane
// stays verb-dispatchable next to PING and GET) followed by a compact
// binary body. All integers are big-endian.
//
//	"ANNOUNCE " (9 bytes)
//	ver      u8   — wireVersion
//	gen      u32  — sender's announce generation
//	siteLen  u8   — sender site name length (1..MaxNameLen)
//	site     …    — site name bytes
//	addrLen  u8   — answer-address length (0..MaxNameLen); the address
//	               peers should steer clients to (the site's C-DNS),
//	               empty when the sender cannot take steered traffic
//	addr     …    — answer address, textual netip.Addr form
//	entries  u32  — names in the content table (info only; ≤ MaxEntries)
//	load     u16  — self-reported ingress load, permille (0..1000)
//	k        u8   — digest probe count (1..MaxDigestHashes)
//	bits     u32  — digest bitmap size (MinDigestBits..MaxDigestBits,
//	               multiple of 64)
//	bitmap   …    — bits/8 bytes, exactly to the end of the datagram
//
// The reply is textual: "DIGEST <generation>" acknowledges with the
// generation of the sender's table the receiver now holds (which may
// be newer than the announce if it arrived out of order), or
// "ERR <reason>" for malformed payloads.

// AnnouncePrefix is the verb prefix of an announce datagram.
const AnnouncePrefix = "ANNOUNCE "

// DigestPrefix is the verb prefix of an announce acknowledgement.
const DigestPrefix = "DIGEST "

const (
	wireVersion = 1
	// MaxNameLen bounds the site-name and answer-address fields.
	MaxNameLen = 128
	// MaxEntries bounds the advertised content-table size.
	MaxEntries = 1 << 30
	// announceFixed is the body size before the variable fields:
	// ver(1) + gen(4) + siteLen(1) + addrLen(1) + entries(4) +
	// load(2) + k(1) + bits(4).
	announceFixed = 18
)

// Announce is one decoded announcement.
type Announce struct {
	// Site is the sender's site name.
	Site string
	// Addr is where the sender wants steered clients sent (textual
	// netip.Addr of its C-DNS); empty means announce-only.
	Addr string
	// Gen is the sender's announce generation.
	Gen uint32
	// Entries is the sender's content-table size.
	Entries int
	// Load is the sender's self-reported ingress load in [0,1].
	Load float64
	// Filter is the decoded content digest.
	Filter Filter
}

// EncodeAnnounce serializes an announcement. k and bits are taken from
// the digest bitmap's provenance: bitmap must be bits/8 bytes with
// bits a valid digest size and k a valid probe count; load is clamped
// to [0,1].
func EncodeAnnounce(site, addr string, gen uint32, entries int, load float64, k int, bitmap []byte) ([]byte, error) {
	if site == "" || len(site) > MaxNameLen {
		return nil, fmt.Errorf("mesh: site name %q out of range", site)
	}
	if len(addr) > MaxNameLen {
		return nil, fmt.Errorf("mesh: answer addr %q too long", addr)
	}
	if entries < 0 || entries > MaxEntries {
		return nil, fmt.Errorf("mesh: entries %d out of range", entries)
	}
	bits := len(bitmap) * 8
	if bits < MinDigestBits || bits > MaxDigestBits || len(bitmap)%8 != 0 {
		return nil, fmt.Errorf("mesh: digest bitmap of %d bits invalid", bits)
	}
	if k < 1 || k > MaxDigestHashes {
		return nil, fmt.Errorf("mesh: digest probe count %d out of range", k)
	}
	if load < 0 {
		load = 0
	}
	if load > 1 {
		load = 1
	}
	buf := make([]byte, 0, len(AnnouncePrefix)+announceFixed+len(site)+len(addr)+len(bitmap))
	buf = append(buf, AnnouncePrefix...)
	buf = append(buf, wireVersion)
	buf = binary.BigEndian.AppendUint32(buf, gen)
	buf = append(buf, byte(len(site)))
	buf = append(buf, site...)
	buf = append(buf, byte(len(addr)))
	buf = append(buf, addr...)
	buf = binary.BigEndian.AppendUint32(buf, uint32(entries))
	buf = binary.BigEndian.AppendUint16(buf, uint16(load*1000))
	buf = append(buf, byte(k))
	buf = binary.BigEndian.AppendUint32(buf, uint32(bits))
	buf = append(buf, bitmap...)
	return buf, nil
}

// DecodeAnnounce parses an announce datagram. Every field is
// bounds-checked against the datagram length before it is read and
// the payload must end exactly with the bitmap, so no input — however
// truncated, oversized, or adversarial — panics or over-reads;
// malformed payloads return an error for the caller to count and
// drop.
func DecodeAnnounce(payload []byte) (Announce, error) {
	var a Announce
	body, ok := cutPrefix(payload, AnnouncePrefix)
	if !ok {
		return a, fmt.Errorf("mesh: not an ANNOUNCE datagram")
	}
	if len(body) < announceFixed {
		return a, fmt.Errorf("mesh: announce truncated at %d bytes", len(body))
	}
	if body[0] != wireVersion {
		return a, fmt.Errorf("mesh: unsupported announce version %d", body[0])
	}
	a.Gen = binary.BigEndian.Uint32(body[1:5])
	p := 5
	siteLen := int(body[p])
	p++
	if siteLen == 0 || siteLen > MaxNameLen || p+siteLen > len(body) {
		return a, fmt.Errorf("mesh: announce site length %d invalid", siteLen)
	}
	a.Site = string(body[p : p+siteLen])
	p += siteLen
	if p >= len(body) {
		return a, fmt.Errorf("mesh: announce truncated before addr")
	}
	addrLen := int(body[p])
	p++
	if addrLen > MaxNameLen || p+addrLen > len(body) {
		return a, fmt.Errorf("mesh: announce addr length %d invalid", addrLen)
	}
	a.Addr = string(body[p : p+addrLen])
	p += addrLen
	if p+11 > len(body) {
		return a, fmt.Errorf("mesh: announce truncated before digest header")
	}
	entries := binary.BigEndian.Uint32(body[p : p+4])
	if entries > MaxEntries {
		return a, fmt.Errorf("mesh: announce entries %d out of range", entries)
	}
	a.Entries = int(entries)
	loadPermille := binary.BigEndian.Uint16(body[p+4 : p+6])
	if loadPermille > 1000 {
		return a, fmt.Errorf("mesh: announce load %d‰ out of range", loadPermille)
	}
	a.Load = float64(loadPermille) / 1000
	k := int(body[p+6])
	bits := binary.BigEndian.Uint32(body[p+7 : p+11])
	p += 11
	if k < 1 || k > MaxDigestHashes {
		return a, fmt.Errorf("mesh: announce probe count %d out of range", k)
	}
	if bits < MinDigestBits || bits > MaxDigestBits || bits%64 != 0 {
		return a, fmt.Errorf("mesh: announce digest size %d bits invalid", bits)
	}
	if len(body)-p != int(bits)/8 {
		return a, fmt.Errorf("mesh: announce digest length %d != declared %d bytes", len(body)-p, bits/8)
	}
	f, ok := FilterFromBitmap(body[p:], k)
	if !ok {
		return a, fmt.Errorf("mesh: announce digest rejected")
	}
	a.Filter = f
	return a, nil
}

func cutPrefix(b []byte, prefix string) ([]byte, bool) {
	if len(b) < len(prefix) || string(b[:len(prefix)]) != prefix {
		return nil, false
	}
	return b[len(prefix):], true
}

// EncodeDigestAck builds the "DIGEST <gen>" acknowledgement.
func EncodeDigestAck(gen uint32) []byte {
	return strconv.AppendUint([]byte(DigestPrefix), uint64(gen), 10)
}

// DecodeDigestAck parses an acknowledgement, returning the held
// generation.
func DecodeDigestAck(payload []byte) (uint32, bool) {
	s, ok := strings.CutPrefix(string(payload), DigestPrefix)
	if !ok {
		return 0, false
	}
	gen, err := strconv.ParseUint(s, 10, 32)
	if err != nil {
		return 0, false
	}
	return uint32(gen), true
}

// genNewer reports whether a advances past b in serial-number
// arithmetic (RFC 1982 style over u32), so generation counters may
// wrap without wedging anti-entropy.
func genNewer(a, b uint32) bool {
	return int32(a-b) > 0
}
