// Package mesh is the federated multi-MEC cooperation layer: each
// site periodically gossips a bounded digest of its content table and
// a health summary to configured peer sites, and publishes what it
// hears back as an RCU snapshot (View) the C-DNS consults on the miss
// path — "which eligible, non-overloaded peer MEC announced this
// object?" — before escalating to the parent tier.
//
// The announce protocol rides the same datagram plane as the cdn
// content protocol's PING/PONG verbs:
//
//	request:  ANNOUNCE <binary body>   (see wire.go)
//	response: DIGEST <generation> | ERR <reason>
//	request:  PING
//	response: PONG
//
// Announcements are full-state and generation-numbered: every round
// carries the site's complete digest under a monotonically increasing
// generation, and a receiver applies an announce iff its generation
// advances past the last one applied (serial-number arithmetic, so
// u32 wrap is harmless). That is the whole anti-entropy story — a
// missed round converges on the next one, with no per-delta repair
// protocol to get wedged.
//
// Per-peer failure detection folds into internal/health: each peer is
// registered as a registry target and every announce exchange doubles
// as a probe (success promotes, failure demotes through the same
// hysteresis state machine caches use), so a dead peer leaves the
// steering view within DownAfter announce intervals.
package mesh

// Content digests are counting-Bloom filters: m counters, k probe
// positions per name via double hashing. The counting form (Digest)
// supports incremental Add/Remove so a caller may maintain one
// alongside its cache; the wire form is the flattened bitmap
// (counter > 0 → bit set), decoded on the receive side into the
// read-only Filter whose Contains is a handful of word reads — the
// shape the lock-free miss path needs. Size is bounded regardless of
// catalog scale; false positives are tolerated by construction, since
// steering to a peer that turns out not to hold the object just falls
// through to that peer's parent tier.

const (
	// MinDigestBits and MaxDigestBits bound the digest bitmap; sizes
	// must be a multiple of 64 so the bitmap packs into whole words.
	MinDigestBits = 64
	MaxDigestBits = 1 << 20

	// DefaultDigestBits is 8192 bits = 1 KiB on the wire. With k=4
	// hashes and n tracked names the false-positive rate is
	// (1-e^(-kn/m))^k: ~2.4% at n=1000, ~0.24‰ at n=250.
	DefaultDigestBits = 8192
	// DefaultDigestHashes is the default probe count k.
	DefaultDigestHashes = 4
	// MaxDigestHashes bounds k on the wire.
	MaxDigestHashes = 8
)

// FNV-1a with a MurmurHash3 finalizer, the same construction the cdn
// hash ring uses: raw FNV-1a has weak avalanche on short-suffix
// variations (exactly the "seg-0042-3" shape of content names), and
// the finalizer restores uniform bit mixing.
const (
	fnvOffset64 uint64 = 14695981039346656037
	fnvPrime64  uint64 = 1099511628211
)

func fmix64(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// digestHash derives the double-hashing pair for name: probe i tests
// bit (h1 + i·h2) mod m (Kirsch–Mitzenmacher). h2 is forced odd so it
// is never zero and cycles through power-of-two moduli.
func digestHash(name string) (h1, h2 uint64) {
	h := fnvOffset64
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= fnvPrime64
	}
	h1 = fmix64(h)
	h2 = fmix64(h1^0x9e3779b97f4a7c15) | 1
	return h1, h2
}

// Digest is a counting Bloom filter over content names. It is the
// builder side: not safe for concurrent use, and never consulted on
// the serve path (receivers consult the flattened Filter).
type Digest struct {
	k        int
	counters []uint8
	entries  int
}

// NewDigest returns a counting digest with the given bitmap size and
// probe count, clamped to the supported ranges (bits is rounded up to
// a multiple of 64). Zero values select the defaults.
func NewDigest(bits, k int) *Digest {
	bits, k = clampDigestParams(bits, k)
	return &Digest{k: k, counters: make([]uint8, bits)}
}

func clampDigestParams(bits, k int) (int, int) {
	if bits <= 0 {
		bits = DefaultDigestBits
	}
	if bits < MinDigestBits {
		bits = MinDigestBits
	}
	if bits > MaxDigestBits {
		bits = MaxDigestBits
	}
	bits = (bits + 63) &^ 63
	if k <= 0 {
		k = DefaultDigestHashes
	}
	if k > MaxDigestHashes {
		k = MaxDigestHashes
	}
	return bits, k
}

// Bits returns the bitmap size m.
func (d *Digest) Bits() int { return len(d.counters) }

// Hashes returns the probe count k.
func (d *Digest) Hashes() int { return d.k }

// Entries returns the number of Add calls net of Removes.
func (d *Digest) Entries() int { return d.entries }

// Add records name. Counters saturate at 255 and, once saturated,
// never decrement (the standard counting-Bloom overflow rule: a stuck
// bit is a false positive, which the protocol tolerates; a wrongly
// cleared bit would be a false negative, which it does not).
func (d *Digest) Add(name string) {
	h1, h2 := digestHash(name)
	m := uint64(len(d.counters))
	for i := 0; i < d.k; i++ {
		c := &d.counters[(h1+uint64(i)*h2)%m]
		if *c < 255 {
			*c++
		}
	}
	d.entries++
}

// Remove erases one prior Add of name. Removing a name that was never
// added corrupts the filter (as with any counting Bloom); callers own
// that invariant.
func (d *Digest) Remove(name string) {
	h1, h2 := digestHash(name)
	m := uint64(len(d.counters))
	for i := 0; i < d.k; i++ {
		c := &d.counters[(h1+uint64(i)*h2)%m]
		if *c > 0 && *c < 255 {
			*c--
		}
	}
	if d.entries > 0 {
		d.entries--
	}
}

// Contains reports whether name may have been added (false positives
// possible, false negatives not).
func (d *Digest) Contains(name string) bool {
	h1, h2 := digestHash(name)
	m := uint64(len(d.counters))
	for i := 0; i < d.k; i++ {
		if d.counters[(h1+uint64(i)*h2)%m] == 0 {
			return false
		}
	}
	return true
}

// Reset clears every counter, keeping the configured size.
func (d *Digest) Reset() {
	for i := range d.counters {
		d.counters[i] = 0
	}
	d.entries = 0
}

// Bitmap flattens the counters into the wire bitmap: bit j set iff
// counter j > 0, packed little-endian into len/8 bytes.
func (d *Digest) Bitmap() []byte {
	out := make([]byte, len(d.counters)/8)
	for i, c := range d.counters {
		if c > 0 {
			out[i/8] |= 1 << (i % 8)
		}
	}
	return out
}

// Filter is the read-only receive-side form of a digest: a packed
// bitset whose Contains does k masked word reads and nothing else.
// A published Filter is immutable, so it is safe to share across the
// lock-free View snapshots without synchronization.
type Filter struct {
	k     int
	words []uint64
}

// FilterFromBitmap builds a Filter from a wire bitmap (len must be a
// non-zero multiple of 8 bytes; k in [1, MaxDigestHashes]). The bitmap
// is copied, so the caller may reuse its buffer.
func FilterFromBitmap(bitmap []byte, k int) (Filter, bool) {
	if len(bitmap) == 0 || len(bitmap)%8 != 0 || len(bitmap)*8 > MaxDigestBits {
		return Filter{}, false
	}
	if k < 1 || k > MaxDigestHashes {
		return Filter{}, false
	}
	words := make([]uint64, len(bitmap)/8)
	for i := range words {
		off := i * 8
		words[i] = uint64(bitmap[off]) | uint64(bitmap[off+1])<<8 |
			uint64(bitmap[off+2])<<16 | uint64(bitmap[off+3])<<24 |
			uint64(bitmap[off+4])<<32 | uint64(bitmap[off+5])<<40 |
			uint64(bitmap[off+6])<<48 | uint64(bitmap[off+7])<<56
	}
	return Filter{k: k, words: words}, true
}

// Bits returns the bitmap size m, or 0 for a zero Filter.
func (f Filter) Bits() int { return len(f.words) * 64 }

// Contains reports whether name may be in the announced set.
func (f Filter) Contains(name string) bool {
	h1, h2 := digestHash(name)
	return f.containsHash(h1, h2)
}

// containsHash is the pre-hashed probe loop, shared so a View lookup
// hashes the key once across all peers.
func (f Filter) containsHash(h1, h2 uint64) bool {
	m := uint64(len(f.words)) * 64
	if m == 0 {
		return false
	}
	for i := 0; i < f.k; i++ {
		bit := (h1 + uint64(i)*h2) % m
		if f.words[bit/64]&(1<<(bit%64)) == 0 {
			return false
		}
	}
	return true
}
