package mesh

import (
	"math"
	"net/netip"
	"sync/atomic"
	"time"
)

// peerCell is one peer's decayed steering-load counter, cache-line
// padded like the hash ring's load cells. Cells are allocated once
// per peer and shared by every view revision that includes the peer,
// so counts survive republishes.
type peerCell struct {
	n atomic.Int64
	_ [56]byte
}

// peerEntry is one peer's slot in an immutable view revision. The
// filter and all scalar fields are never written after publish; the
// cell's atomic counter is the one deliberately shared part.
type peerEntry struct {
	name    string
	addr    netip.Addr // steering target (peer C-DNS); may be invalid
	filter  Filter
	gen     uint32
	entries int
	load    float64       // peer's self-reported ingress load
	updated time.Duration // agent clock at last applied announce
	ok      bool          // eligible at publish time (health + freshness + load + addr)
	ewma    time.Duration // health EWMA latency at publish, for ordering
	cell    *peerCell
}

// viewState is one immutable revision of the peer table, ordered best
// first: eligible peers before ineligible, then by health rank, then
// EWMA latency, then name for determinism.
type viewState struct {
	peers []peerEntry
}

var emptyViewState = &viewState{}

// PeerHit identifies the peer a miss was steered to.
type PeerHit struct {
	// Name is the peer site's name.
	Name string
	// Addr is the peer's announced steering address (its C-DNS); the
	// router answers with a referral to it.
	Addr netip.Addr
}

// View is the published peer table: an RCU snapshot behind an atomic
// pointer, exactly the PR-8 read-plane shape. The serve path loads
// the snapshot once and walks a handful of peers; the owning Agent is
// the only writer. All read methods are lock-free and allocation-free.
type View struct {
	state atomic.Pointer[viewState]

	// loadFactor is the bounded-load factor c over the peers' steering
	// cells: no peer absorbs more than ⌈c·(total+1)/peers⌉ steered
	// misses per decay window, so a flash crowd cannot stampede one
	// sibling. Set once by the Agent before publishing.
	loadFactor float64

	// total mirrors the sum of the current peers' cells, so the cap
	// check reads one counter.
	total atomic.Int64

	hits       atomic.Uint64 // miss-path lookups answered by a peer
	misses     atomic.Uint64 // miss-path lookups no peer could take
	capRejects atomic.Uint64 // peers skipped because their cell was at cap
}

// snapshot returns the current revision, never nil.
func (v *View) snapshot() *viewState {
	if s := v.state.Load(); s != nil {
		return s
	}
	return emptyViewState
}

// capacity is the bounded-load cap over peers, the same
// ⌈c·(total+1)/n⌉ bound the hash ring uses.
func capacity(c float64, total int64, n int) int64 {
	if n == 0 {
		return 0
	}
	return int64(math.Ceil(c * float64(total+1) / float64(n)))
}

// Lookup returns the best eligible, non-overloaded peer that
// announced key: peers are walked in health order (rank, then EWMA),
// the key is hashed once, and each candidate costs k word reads on
// its filter plus one atomic load on its bounded-load cell. Lock-free:
// one atomic snapshot load, zero allocations.
func (v *View) Lookup(key string) (PeerHit, bool) {
	s := v.snapshot()
	if len(s.peers) == 0 {
		return PeerHit{}, false
	}
	h1, h2 := digestHash(key)
	capLoad := capacity(v.loadFactor, v.total.Load(), len(s.peers))
	for i := range s.peers {
		p := &s.peers[i]
		if !p.ok {
			// Entries are ordered eligible-first, so the first
			// ineligible peer ends the walk.
			break
		}
		if !p.filter.containsHash(h1, h2) {
			continue
		}
		if p.cell.n.Load() >= capLoad {
			v.capRejects.Add(1)
			continue
		}
		return PeerHit{Name: p.name, Addr: p.addr}, true
	}
	return PeerHit{}, false
}

// Steer is the miss-path entry point: Lookup plus accounting — a hit
// charges the chosen peer's bounded-load cell and the peer-hit
// counter, a miss the peer-miss counter. Same lock-free guarantees as
// Lookup.
func (v *View) Steer(key string) (PeerHit, bool) {
	hit, ok := v.Lookup(key)
	if !ok {
		v.misses.Add(1)
		return PeerHit{}, false
	}
	v.hits.Add(1)
	v.recordLoad(hit.Name)
	return hit, true
}

// Nearest returns the healthiest eligible peer regardless of content
// — the geo-aware PoP fallback target when the LPM-mapped PoP is
// down. Lock-free.
func (v *View) Nearest() (PeerHit, bool) {
	s := v.snapshot()
	if len(s.peers) == 0 || !s.peers[0].ok {
		return PeerHit{}, false
	}
	return PeerHit{Name: s.peers[0].name, Addr: s.peers[0].addr}, true
}

// recordLoad charges one steered miss to the named peer's cell.
func (v *View) recordLoad(name string) {
	s := v.snapshot()
	for i := range s.peers {
		if s.peers[i].name == name {
			s.peers[i].cell.n.Add(1)
			v.total.Add(1)
			return
		}
	}
}

// Load returns name's current steering-load count (0 when unknown).
func (v *View) Load(name string) int64 {
	s := v.snapshot()
	for i := range s.peers {
		if s.peers[i].name == name {
			return s.peers[i].cell.n.Load()
		}
	}
	return 0
}

// Peers returns how many peers the current revision holds, eligible
// or not.
func (v *View) Peers() int { return len(v.snapshot().peers) }

// EligiblePeers returns how many peers are currently steerable.
func (v *View) EligiblePeers() int {
	s := v.snapshot()
	n := 0
	for i := range s.peers {
		if s.peers[i].ok {
			n++
		}
	}
	return n
}

// PeerHits returns the number of miss-path lookups a peer absorbed.
func (v *View) PeerHits() uint64 { return v.hits.Load() }

// PeerMisses returns the number of miss-path lookups no peer could
// take (nothing announced the key, or every announcer was capped).
func (v *View) PeerMisses() uint64 { return v.misses.Load() }

// CapRejections returns how many announcing peers were skipped at cap.
func (v *View) CapRejections() uint64 { return v.capRejects.Load() }
