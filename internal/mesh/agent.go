package mesh

import (
	"net/netip"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/meccdn/meccdn/internal/health"
	"github.com/meccdn/meccdn/internal/telemetry"
	"github.com/meccdn/meccdn/internal/vclock"
)

// Peer is one configured announce target.
type Peer struct {
	// Name is the peer site's name (must match what it announces as).
	Name string
	// Addr is the peer's mesh endpoint in the transport's address
	// syntax: a bare netip.Addr string under simnet, host:port over
	// UDP.
	Addr string
}

// Transport delivers one announce datagram and returns the reply.
type Transport interface {
	Exchange(addr string, payload []byte, timeout time.Duration) ([]byte, error)
}

// Config parameterizes NewAgent.
type Config struct {
	// Site is this site's name, carried in every announce. Required.
	Site string
	// AnswerAddr is where peers should steer clients who miss locally
	// — the textual address of this site's C-DNS. Empty means
	// announce-only (peers learn the digest but never steer here).
	AnswerAddr string
	// Peers seeds the announce targets; AddPeer extends them later.
	Peers []Peer
	// AnnounceInterval is the gossip cadence for Start; zero means 2s.
	AnnounceInterval time.Duration
	// AnnounceTimeout bounds one announce exchange; zero means 2s.
	AnnounceTimeout time.Duration
	// DigestBits and DigestHashes size the content digest; zero means
	// DefaultDigestBits / DefaultDigestHashes.
	DigestBits   int
	DigestHashes int
	// StaleAfter is how long a peer's last applied announce keeps it
	// steerable; zero means 3× the announce interval.
	StaleAfter time.Duration
	// LoadFactor is the bounded-load factor c over peer steering
	// cells; values ≤ 1 mean 1.25.
	LoadFactor float64
	// PeerLoadMax drops peers whose self-reported ingress load meets
	// or exceeds it from steering; zero means 0.9.
	PeerLoadMax float64
	// Health, when non-nil, folds per-peer failure detection into the
	// registry: configured peers are registered as "peer:<name>"
	// targets, every announce exchange reports as a probe, and a peer
	// must be routable per the registry to stay in the steering view.
	Health *health.Registry
	// Clock drives freshness; nil means wall clock.
	Clock vclock.Clock
	// Transport sends announces; nil until BindSimnet (simnet) or a
	// UDPTransport (dnsd) is supplied. With no transport the agent is
	// receive-only.
	Transport Transport
	// Source enumerates the site's content table for each announce
	// round (typically iterating the cache fleet's LRUs); nil
	// announces an empty digest — the dnsd shape, where the C-DNS
	// routes but holds no content.
	Source func(add func(name string))
	// Load self-reports ingress load in [0,1] for the announce health
	// summary; nil reports 0.
	Load func() float64
}

// peerRecord is the writer-side state for one announcing site.
type peerRecord struct {
	addr     netip.Addr
	filter   Filter
	gen      uint32
	genValid bool
	entries  int
	load     float64
	updated  time.Duration
}

// Agent runs one site's half of the mesh: it announces the local
// content digest to configured peers, applies announces it receives,
// and publishes the resulting peer table as a lock-free View.
type Agent struct {
	cfg Config

	gen         atomic.Uint32
	view        View
	digestBytes atomic.Int64

	// wmu serializes all writers: announce application, peer
	// add/remove, view republish, load decay. The serve path reads
	// the View and never takes it.
	wmu        sync.Mutex
	peers      []Peer
	recv       map[string]*peerRecord
	cells      map[string]*peerCell
	registered map[string]bool // peer names in the health registry

	announces *telemetry.CounterVec

	runMu sync.Mutex
	stop  chan struct{}
	done  chan struct{}
}

// peerTarget namespaces peer names in a (possibly shared) health
// registry so they cannot collide with cache-instance targets.
func peerTarget(name string) string { return "peer:" + name }

// NewAgent builds an agent; call BindSimnet or set Config.Transport
// before announcing.
func NewAgent(cfg Config) *Agent {
	if cfg.Site == "" {
		cfg.Site = "mec"
	}
	if cfg.AnnounceInterval <= 0 {
		cfg.AnnounceInterval = 2 * time.Second
	}
	if cfg.AnnounceTimeout <= 0 {
		cfg.AnnounceTimeout = 2 * time.Second
	}
	cfg.DigestBits, cfg.DigestHashes = clampDigestParams(cfg.DigestBits, cfg.DigestHashes)
	if cfg.StaleAfter <= 0 {
		cfg.StaleAfter = 3 * cfg.AnnounceInterval
	}
	if cfg.LoadFactor <= 1 {
		cfg.LoadFactor = 1.25
	}
	if cfg.PeerLoadMax <= 0 || cfg.PeerLoadMax > 1 {
		cfg.PeerLoadMax = 0.9
	}
	if cfg.Clock == nil {
		cfg.Clock = vclock.NewReal()
	}
	a := &Agent{
		cfg:        cfg,
		recv:       make(map[string]*peerRecord),
		cells:      make(map[string]*peerCell),
		registered: make(map[string]bool),
		announces: telemetry.NewCounterVec("meccdn_mesh_announces_total",
			"Mesh announce events by result: ok/send_error/bad_ack (outgoing), applied/stale/malformed/bad_verb (incoming).", "result"),
	}
	a.view.loadFactor = cfg.LoadFactor
	if cfg.Health != nil {
		cfg.Health.OnTransition(func(name string, _, _ health.State) {
			// A peer's health verdict changed: republish so the serve
			// path's eligibility flags catch up immediately rather than
			// on the next announce round. The listener runs without the
			// registry lock, so publish may consult the registry freely.
			if !strings.HasPrefix(name, "peer:") {
				return
			}
			a.wmu.Lock()
			if a.registered[strings.TrimPrefix(name, "peer:")] {
				a.publishLocked()
			}
			a.wmu.Unlock()
		})
	}
	for _, p := range cfg.Peers {
		a.AddPeer(p)
	}
	return a
}

// Site returns the agent's site name.
func (a *Agent) Site() string { return a.cfg.Site }

// View returns the published peer table for the router's miss path.
func (a *Agent) View() *View { return &a.view }

// Generation returns the last announced generation.
func (a *Agent) Generation() uint32 { return a.gen.Load() }

// AddPeer registers an announce target (idempotent by name; a new
// address replaces the old).
func (a *Agent) AddPeer(p Peer) {
	if p.Name == "" || p.Name == a.cfg.Site {
		return
	}
	a.wmu.Lock()
	defer a.wmu.Unlock()
	replaced := false
	for i := range a.peers {
		if a.peers[i].Name == p.Name {
			a.peers[i] = p
			replaced = true
			break
		}
	}
	if !replaced {
		a.peers = append(a.peers, p)
	}
	if a.cfg.Health != nil && !a.registered[p.Name] {
		a.cfg.Health.Add(peerTarget(p.Name), p.Addr)
		a.registered[p.Name] = true
	}
	a.publishLocked()
}

// RemovePeer drops a configured peer: it is no longer announced to,
// leaves the health registry, and any received state stops steering.
func (a *Agent) RemovePeer(name string) {
	a.wmu.Lock()
	defer a.wmu.Unlock()
	kept := a.peers[:0]
	for _, p := range a.peers {
		if p.Name != name {
			kept = append(kept, p)
		}
	}
	a.peers = kept
	delete(a.recv, name)
	if a.registered[name] {
		a.cfg.Health.Remove(peerTarget(name))
		delete(a.registered, name)
	}
	a.publishLocked()
}

// PeerNames returns the configured announce targets, sorted.
func (a *Agent) PeerNames() []string {
	a.wmu.Lock()
	defer a.wmu.Unlock()
	names := make([]string, len(a.peers))
	for i, p := range a.peers {
		names[i] = p.Name
	}
	sort.Strings(names)
	return names
}

// AnnounceOnce runs one announce round synchronously: build the
// digest from Source, send it to every configured peer (each exchange
// reporting into the health registry), then republish the view so
// freshness and health verdicts are re-evaluated. Virtual-time
// callers drive this directly; Start wraps it in a wall-clock loop.
func (a *Agent) AnnounceOnce() {
	d := NewDigest(a.cfg.DigestBits, a.cfg.DigestHashes)
	if a.cfg.Source != nil {
		a.cfg.Source(d.Add)
	}
	bitmap := d.Bitmap()
	a.digestBytes.Store(int64(len(bitmap)))
	var load float64
	if a.cfg.Load != nil {
		load = a.cfg.Load()
	}
	gen := a.gen.Add(1)
	payload, err := EncodeAnnounce(a.cfg.Site, a.cfg.AnswerAddr, gen, d.Entries(), load, d.Hashes(), bitmap)
	if err != nil {
		a.announces.Inc("encode_error")
		return
	}

	a.wmu.Lock()
	targets := make([]Peer, len(a.peers))
	copy(targets, a.peers)
	a.wmu.Unlock()

	tr := a.cfg.Transport
	for _, p := range targets {
		if tr == nil {
			break
		}
		start := a.cfg.Clock.Now()
		resp, err := tr.Exchange(p.Addr, payload, a.cfg.AnnounceTimeout)
		switch {
		case err != nil:
			a.announces.Inc("send_error")
			a.reportPeer(p.Name, false, 0)
		default:
			if _, ok := DecodeDigestAck(resp); !ok {
				a.announces.Inc("bad_ack")
				a.reportPeer(p.Name, false, 0)
				continue
			}
			a.announces.Inc("ok")
			a.reportPeer(p.Name, true, a.cfg.Clock.Now()-start)
		}
	}

	a.wmu.Lock()
	a.publishLocked()
	a.wmu.Unlock()
}

// reportPeer feeds one announce outcome into the health registry.
func (a *Agent) reportPeer(name string, ok bool, rtt time.Duration) {
	if a.cfg.Health == nil {
		return
	}
	if ok {
		a.cfg.Health.ReportSuccess(peerTarget(name), rtt)
	} else {
		a.cfg.Health.ReportFailure(peerTarget(name))
	}
}

// HandleDatagram answers one mesh datagram (PING or ANNOUNCE) and
// returns the reply payload. Malformed announces are counted and
// dropped with an ERR reply; nothing panics on adversarial input.
func (a *Agent) HandleDatagram(payload []byte) []byte {
	if string(payload) == "PING" {
		return []byte("PONG")
	}
	if len(payload) >= len(AnnouncePrefix) && string(payload[:len(AnnouncePrefix)]) == AnnouncePrefix {
		ann, err := DecodeAnnounce(payload)
		if err != nil {
			a.announces.Inc("malformed")
			return []byte("ERR malformed-announce")
		}
		return a.applyAnnounce(ann)
	}
	a.announces.Inc("bad_verb")
	return []byte("ERR bad-request")
}

// applyAnnounce folds one decoded announce into the peer table. The
// generation must advance past the last applied one (serial-number
// comparison); a stale or replayed announce is dropped, acknowledged
// with the generation already held so the sender can observe the
// skew. Full-state announcements make this the entire anti-entropy
// protocol: a missed round converges on the next.
func (a *Agent) applyAnnounce(ann Announce) []byte {
	if ann.Site == a.cfg.Site {
		a.announces.Inc("bad_verb")
		return []byte("ERR self-announce")
	}
	a.wmu.Lock()
	defer a.wmu.Unlock()
	rec := a.recv[ann.Site]
	if rec != nil && rec.genValid && !genNewer(ann.Gen, rec.gen) {
		a.announces.Inc("stale")
		return EncodeDigestAck(rec.gen)
	}
	if rec == nil {
		rec = &peerRecord{}
		a.recv[ann.Site] = rec
	}
	var addr netip.Addr
	if ann.Addr != "" {
		if parsed, err := netip.ParseAddr(ann.Addr); err == nil {
			addr = parsed
		} else if parsed, err := netip.ParseAddrPort(ann.Addr); err == nil {
			addr = parsed.Addr()
		}
	}
	rec.addr = addr
	rec.filter = ann.Filter
	rec.gen = ann.Gen
	rec.genValid = true
	rec.entries = ann.Entries
	rec.load = ann.Load
	rec.updated = a.cfg.Clock.Now()
	a.announces.Inc("applied")
	a.publishLocked()
	return EncodeDigestAck(ann.Gen)
}

// publishLocked rebuilds and publishes the view snapshot from the
// received peer records. Callers hold a.wmu. Eligibility is baked in
// at publish time — health verdict, announce freshness, reported
// load, steerable address — so the serve path's walk is pure reads.
func (a *Agent) publishLocked() {
	now := a.cfg.Clock.Now()
	peers := make([]peerEntry, 0, len(a.recv))
	ranks := make(map[string]int, len(a.recv))
	for name, rec := range a.recv {
		cell := a.cells[name]
		if cell == nil {
			cell = &peerCell{}
			a.cells[name] = cell
		}
		e := peerEntry{
			name:    name,
			addr:    rec.addr,
			filter:  rec.filter,
			gen:     rec.gen,
			entries: rec.entries,
			load:    rec.load,
			updated: rec.updated,
			cell:    cell,
		}
		e.ok = rec.addr.IsValid() && now-rec.updated <= a.cfg.StaleAfter && rec.load < a.cfg.PeerLoadMax
		if a.cfg.Health != nil && a.registered[name] {
			rank, ewma := a.cfg.Health.Rank(peerTarget(name))
			ranks[name] = rank
			e.ewma = ewma
			if routable, _ := a.cfg.Health.Eligible(peerTarget(name)); !routable {
				e.ok = false
			}
		}
		peers = append(peers, e)
	}
	sort.Slice(peers, func(i, j int) bool {
		pi, pj := &peers[i], &peers[j]
		if pi.ok != pj.ok {
			return pi.ok
		}
		if ri, rj := ranks[pi.name], ranks[pj.name]; ri != rj {
			return ri < rj
		}
		if pi.ewma != pj.ewma {
			return pi.ewma < pj.ewma
		}
		return pi.name < pj.name
	})
	a.view.state.Store(&viewState{peers: peers})
	var total int64
	for i := range peers {
		total += peers[i].cell.n.Load()
	}
	a.view.total.Store(total)
}

// DecayLoads multiplies every peer steering cell by factor (clamped
// to [0,1]) — the same recent-window decay the hash ring's cells get,
// run at whatever cadence the caller picks (the announce loop under
// Start, the health sweep in dnsd, the tick loop in experiments).
func (a *Agent) DecayLoads(factor float64) {
	if factor < 0 {
		factor = 0
	}
	if factor > 1 {
		factor = 1
	}
	a.wmu.Lock()
	defer a.wmu.Unlock()
	for _, c := range a.cells {
		c.n.Store(int64(float64(c.n.Load()) * factor))
	}
	var total int64
	s := a.view.snapshot()
	for i := range s.peers {
		total += s.peers[i].cell.n.Load()
	}
	a.view.total.Store(total)
}

// Start runs the wall-clock announce loop: one round immediately,
// then one per AnnounceInterval with a load decay between rounds.
// Virtual-time callers use AnnounceOnce instead.
func (a *Agent) Start() {
	a.runMu.Lock()
	defer a.runMu.Unlock()
	if a.stop != nil {
		return
	}
	a.stop = make(chan struct{})
	a.done = make(chan struct{})
	go func(stop <-chan struct{}, done chan<- struct{}) {
		defer close(done)
		a.AnnounceOnce()
		t := time.NewTicker(a.cfg.AnnounceInterval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				a.DecayLoads(0.5)
				a.AnnounceOnce()
			}
		}
	}(a.stop, a.done)
}

// Stop halts the announce loop started by Start.
func (a *Agent) Stop() {
	a.runMu.Lock()
	defer a.runMu.Unlock()
	if a.stop == nil {
		return
	}
	close(a.stop)
	<-a.done
	a.stop, a.done = nil, nil
}

// Collectors returns the mesh metric families for registration.
func (a *Agent) Collectors() []telemetry.Collector {
	return []telemetry.Collector{
		a.announces,
		telemetry.NewCounterFunc("meccdn_mesh_peer_hits_total",
			"Miss-path lookups steered to a peer MEC that announced the object.",
			func() float64 { return float64(a.view.PeerHits()) }),
		telemetry.NewCounterFunc("meccdn_mesh_peer_misses_total",
			"Miss-path lookups no eligible peer could absorb.",
			func() float64 { return float64(a.view.PeerMisses()) }),
		telemetry.NewGaugeFunc("meccdn_mesh_digest_bytes",
			"Size of the last announced content digest bitmap in bytes.",
			func() float64 { return float64(a.digestBytes.Load()) }),
		telemetry.NewGaugeFunc("meccdn_mesh_peers",
			"Peer sites currently in the steering view (eligible or not).",
			func() float64 { return float64(a.view.Peers()) }),
	}
}

// PeerStatus is one peer's row in the admin /mesh snapshot.
type PeerStatus struct {
	Name       string  `json:"name"`
	Addr       string  `json:"addr,omitempty"`
	Generation uint32  `json:"generation"`
	Entries    int     `json:"entries"`
	Load       float64 `json:"load"`
	Eligible   bool    `json:"eligible"`
	AgeMS      int64   `json:"age_ms"`
	Steered    int64   `json:"steered"`
}

// Status is the admin /mesh snapshot.
type Status struct {
	Site         string       `json:"site"`
	Generation   uint32       `json:"generation"`
	DigestBits   int          `json:"digest_bits"`
	DigestHashes int          `json:"digest_hashes"`
	Configured   []string     `json:"configured_peers"`
	PeerHits     uint64       `json:"peer_hits"`
	PeerMisses   uint64       `json:"peer_misses"`
	Peers        []PeerStatus `json:"peers"`
}

// Snapshot returns the agent's current state for the admin plane.
func (a *Agent) Snapshot() Status {
	st := Status{
		Site:         a.cfg.Site,
		Generation:   a.gen.Load(),
		DigestBits:   a.cfg.DigestBits,
		DigestHashes: a.cfg.DigestHashes,
		Configured:   a.PeerNames(),
		PeerHits:     a.view.PeerHits(),
		PeerMisses:   a.view.PeerMisses(),
	}
	now := a.cfg.Clock.Now()
	s := a.view.snapshot()
	st.Peers = make([]PeerStatus, 0, len(s.peers))
	for i := range s.peers {
		p := &s.peers[i]
		ps := PeerStatus{
			Name:       p.name,
			Generation: p.gen,
			Entries:    p.entries,
			Load:       p.load,
			Eligible:   p.ok,
			AgeMS:      int64((now - p.updated) / time.Millisecond),
			Steered:    p.cell.n.Load(),
		}
		if p.addr.IsValid() {
			ps.Addr = p.addr.String()
		}
		st.Peers = append(st.Peers, ps)
	}
	return st
}
