package mesh

import (
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"github.com/meccdn/meccdn/internal/health"
	"github.com/meccdn/meccdn/internal/simnet"
	"github.com/meccdn/meccdn/internal/vclock"
)

// buildPair wires two agents over a simnet link, peered both ways.
func buildPair(t *testing.T) (*simnet.Network, *Agent, *Agent) {
	t.Helper()
	n := simnet.New(1)
	na := n.AddNode("a")
	nb := n.AddNode("b")
	n.AddLink("a", "b", simnet.Constant(2*time.Millisecond), 0)

	contentB := []string{"seg-0001", "seg-0002", "seg-0003"}
	a := NewAgent(Config{
		Site:       "site-a",
		AnswerAddr: "10.0.0.1",
		Clock:      n.Clock,
		Health:     health.New(health.Config{DownAfter: 2, UpAfter: 1, MinDwell: -1}),
	})
	b := NewAgent(Config{
		Site:       "site-b",
		AnswerAddr: "10.0.0.2",
		Clock:      n.Clock,
		Health:     health.New(health.Config{DownAfter: 2, UpAfter: 1, MinDwell: -1}),
		Source: func(add func(string)) {
			for _, name := range contentB {
				add(name)
			}
		},
	})
	a.BindSimnet(na)
	b.BindSimnet(nb)
	a.AddPeer(Peer{Name: "site-b", Addr: nb.Addr.String()})
	b.AddPeer(Peer{Name: "site-a", Addr: na.Addr.String()})
	return n, a, b
}

func TestAnnounceSteersContent(t *testing.T) {
	_, a, b := buildPair(t)
	a.AnnounceOnce()
	b.AnnounceOnce()
	// Now A has applied B's announce (and vice versa); B's announce
	// exchange to A also promoted "peer:a" in B's registry, so both
	// views should be live.
	v := a.View()
	if v.Peers() != 1 || v.EligiblePeers() != 1 {
		t.Fatalf("a's view: %d peers, %d eligible", v.Peers(), v.EligiblePeers())
	}
	hit, ok := v.Steer("seg-0002")
	if !ok {
		t.Fatal("steer missed content B announced")
	}
	if hit.Name != "site-b" || hit.Addr.String() != "10.0.0.2" {
		t.Fatalf("steered to %+v", hit)
	}
	if _, ok := v.Steer("not-announced-anywhere-xyz"); ok {
		t.Fatal("steered a name nobody announced")
	}
	if v.PeerHits() != 1 || v.PeerMisses() != 1 {
		t.Fatalf("hits=%d misses=%d", v.PeerHits(), v.PeerMisses())
	}
	if got := v.Load("site-b"); got != 1 {
		t.Fatalf("steering load = %d, want 1", got)
	}
	// B announced no answer targets from A's content (A has no
	// Source), so B's view holds an empty digest for site-a.
	if hit, ok := b.View().Steer("seg-0001"); ok {
		t.Fatalf("b steered %+v for content only b holds", hit)
	}
}

func TestStaleGenerationDropped(t *testing.T) {
	a := NewAgent(Config{Site: "site-a", Clock: &vclock.Fixed{}})
	bitmap, k := testBitmap("seg-0001")
	fresh, _ := EncodeAnnounce("site-b", "10.0.0.2", 5, 1, 0, k, bitmap)
	resp := a.HandleDatagram(fresh)
	if gen, ok := DecodeDigestAck(resp); !ok || gen != 5 {
		t.Fatalf("ack = %q", resp)
	}
	// A replayed older generation must not regress the table, and the
	// ack must advertise the generation actually held so the sender
	// can observe the skew.
	empty, _ := EncodeAnnounce("site-b", "10.0.0.2", 3, 0, 0, k, make([]byte, 64))
	resp = a.HandleDatagram(empty)
	if gen, ok := DecodeDigestAck(resp); !ok || gen != 5 {
		t.Fatalf("stale ack = %q, want DIGEST 5", resp)
	}
	if _, ok := a.View().Lookup("seg-0001"); !ok {
		t.Fatal("stale announce wiped the newer table")
	}
	// The next round (gen 6) converges — full-state anti-entropy.
	next, _ := EncodeAnnounce("site-b", "10.0.0.2", 6, 0, 0, k, make([]byte, 64))
	a.HandleDatagram(next)
	if _, ok := a.View().Lookup("seg-0001"); ok {
		t.Fatal("gen-6 announce did not replace the table")
	}
}

func TestMalformedAnnounceCountedAndDropped(t *testing.T) {
	a := NewAgent(Config{Site: "site-a", Clock: &vclock.Fixed{}})
	for _, payload := range [][]byte{
		[]byte("ANNOUNCE "),
		[]byte("ANNOUNCE \x01garbage"),
		[]byte("EXPLODE now"),
		{},
	} {
		resp := a.HandleDatagram(payload)
		if len(resp) < 3 || string(resp[:3]) != "ERR" {
			t.Fatalf("HandleDatagram(%q) = %q, want ERR", payload, resp)
		}
	}
	if a.View().Peers() != 0 {
		t.Fatal("malformed announce created a peer")
	}
	if string(a.HandleDatagram([]byte("PING"))) != "PONG" {
		t.Fatal("PING broken")
	}
}

func TestFreshnessExpiry(t *testing.T) {
	clk := &vclock.Fixed{}
	a := NewAgent(Config{Site: "site-a", Clock: clk, AnnounceInterval: time.Second})
	bitmap, k := testBitmap("seg-0001")
	ann, _ := EncodeAnnounce("site-b", "10.0.0.2", 1, 1, 0, k, bitmap)
	a.HandleDatagram(ann)
	if _, ok := a.View().Lookup("seg-0001"); !ok {
		t.Fatal("fresh announce not steerable")
	}
	// Past StaleAfter (3× interval) the peer must leave the steering
	// set at the next republish, even with no further datagrams.
	clk.Advance(4 * time.Second)
	a.AnnounceOnce() // no transport: republish only
	if _, ok := a.View().Lookup("seg-0001"); ok {
		t.Fatal("stale peer still steerable")
	}
	if a.View().EligiblePeers() != 0 || a.View().Peers() != 1 {
		t.Fatalf("peers=%d eligible=%d", a.View().Peers(), a.View().EligiblePeers())
	}
}

func TestOverloadedPeerSkipped(t *testing.T) {
	a := NewAgent(Config{Site: "site-a", Clock: &vclock.Fixed{}})
	bitmap, k := testBitmap("seg-0001")
	hot, _ := EncodeAnnounce("site-b", "10.0.0.2", 1, 1, 0.95, k, bitmap)
	a.HandleDatagram(hot)
	if _, ok := a.View().Lookup("seg-0001"); ok {
		t.Fatal("steered to a peer self-reporting 95% load")
	}
	cooled, _ := EncodeAnnounce("site-b", "10.0.0.2", 2, 1, 0.2, k, bitmap)
	a.HandleDatagram(cooled)
	if _, ok := a.View().Lookup("seg-0001"); !ok {
		t.Fatal("cooled peer not steerable")
	}
}

func TestPeerFailureDetection(t *testing.T) {
	n, a, b := buildPair(t)
	a.AnnounceOnce()
	b.AnnounceOnce()
	if _, ok := a.View().Nearest(); !ok {
		t.Fatal("no nearest peer after announce round")
	}
	// Repoint the peer at an address with no node behind it: the
	// announce exchanges fail, and after DownAfter failures the
	// registry demotes "peer:site-b", which must eject it from the
	// steering view even though its digest is still fresh.
	a.AddPeer(Peer{Name: "site-b", Addr: "203.0.113.99"})
	a.AnnounceOnce()
	a.AnnounceOnce()
	_ = n // network still referenced for clarity; exchanges fail by address
	if _, ok := a.View().Nearest(); ok {
		t.Fatal("down peer still in steering view")
	}
	if _, ok := a.View().Steer("seg-0001"); ok {
		t.Fatal("steered to a down peer")
	}
}

func TestBoundedLoadCapsSteering(t *testing.T) {
	a := NewAgent(Config{Site: "site-a", Clock: &vclock.Fixed{}, LoadFactor: 1.25})
	bitmap, k := testBitmap("seg-hot")
	ann1, _ := EncodeAnnounce("site-b", "10.0.0.2", 1, 1, 0, k, bitmap)
	ann2, _ := EncodeAnnounce("site-c", "10.0.0.3", 1, 0, 0, k, make([]byte, len(bitmap)))
	a.HandleDatagram(ann1)
	a.HandleDatagram(ann2)
	v := a.View()
	steered := 0
	for i := 0; i < 100; i++ {
		if _, ok := v.Steer("seg-hot"); ok {
			steered++
		}
	}
	// Only site-b announced seg-hot; with c=1.25 over two peers its
	// cell hits the ⌈c·(total+1)/n⌉ cap after a couple of steers.
	if steered == 0 || steered > 10 {
		t.Fatalf("steered %d of 100, want a small bounded number", steered)
	}
	if v.CapRejections() == 0 {
		t.Fatal("no cap rejections recorded")
	}
	// Decay opens the window again.
	a.DecayLoads(0)
	if _, ok := v.Steer("seg-hot"); !ok {
		t.Fatal("steering still capped after full decay")
	}
}

func TestEligibleOrderedFirst(t *testing.T) {
	clk := &vclock.Fixed{}
	a := NewAgent(Config{Site: "site-a", Clock: clk, AnnounceInterval: time.Second})
	bitmap, k := testBitmap("seg-0001")
	stale, _ := EncodeAnnounce("site-old", "10.0.0.8", 1, 1, 0, k, bitmap)
	a.HandleDatagram(stale)
	clk.Advance(10 * time.Second)
	fresh, _ := EncodeAnnounce("site-new", "10.0.0.9", 1, 1, 0, k, bitmap)
	a.HandleDatagram(fresh)
	hit, ok := a.View().Lookup("seg-0001")
	if !ok || hit.Name != "site-new" {
		t.Fatalf("lookup = %+v ok=%v, want site-new", hit, ok)
	}
	if hit, ok := a.View().Nearest(); !ok || hit.Name != "site-new" {
		t.Fatalf("nearest = %+v ok=%v, want site-new", hit, ok)
	}
}

func TestRemovePeerStopsSteering(t *testing.T) {
	_, a, b := buildPair(t)
	a.AnnounceOnce()
	b.AnnounceOnce()
	if _, ok := a.View().Steer("seg-0001"); !ok {
		t.Fatal("no steer before removal")
	}
	a.RemovePeer("site-b")
	if _, ok := a.View().Steer("seg-0001"); ok {
		t.Fatal("steered to a removed peer")
	}
	if len(a.PeerNames()) != 0 {
		t.Fatalf("peer names = %v", a.PeerNames())
	}
}

// TestMeshChurnRace hammers the lock-free view from reader goroutines
// while peers join, leave, flap, and re-announce — the test exists to
// run under -race and to prove readers never see a torn snapshot.
func TestMeshChurnRace(t *testing.T) {
	clk := &vclock.Fixed{Time: time.Second}
	a := NewAgent(Config{
		Site:   "site-a",
		Clock:  clk,
		Health: health.New(health.Config{DownAfter: 2, UpAfter: 1, MinDwell: -1}),
	})
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			i := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				key := fmt.Sprintf("seg-%04d", i%64)
				a.View().Lookup(key)
				a.View().Steer(key)
				a.View().Nearest()
				a.View().Peers()
				a.View().EligiblePeers()
				a.View().Load("peer-1")
				i++
			}
		}(r)
	}
	for i := 0; i < 400; i++ {
		peer := fmt.Sprintf("peer-%d", i%5)
		d := NewDigest(512, 4)
		for j := 0; j < 16; j++ {
			d.Add(fmt.Sprintf("seg-%04d", (i+j)%64))
		}
		load := float64(i%10) / 10
		ann, err := EncodeAnnounce(peer, fmt.Sprintf("10.9.0.%d", i%5+1), uint32(i+1), d.Entries(), load, d.Hashes(), d.Bitmap())
		if err != nil {
			t.Fatal(err)
		}
		a.HandleDatagram(ann)
		switch i % 7 {
		case 2:
			a.AddPeer(Peer{Name: peer, Addr: "10.9.0.50"})
		case 4:
			a.RemovePeer(peer)
		case 5:
			a.DecayLoads(0.5)
		}
		if i%11 == 0 {
			clk.Advance(time.Millisecond)
		}
	}
	close(stop)
	wg.Wait()
	if a.View().Peers() == 0 {
		t.Fatal("churn left an empty view")
	}
}

func TestStartStopAnnounceLoop(t *testing.T) {
	recvd := make(chan struct{}, 16)
	conn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	b := NewAgent(Config{Site: "site-b", AnswerAddr: "10.0.0.2"})
	go func() {
		buf := make([]byte, maxDatagram+1)
		for {
			n, from, err := conn.ReadFrom(buf)
			if err != nil {
				return
			}
			resp := b.HandleDatagram(buf[:n])
			conn.WriteTo(resp, from)
			select {
			case recvd <- struct{}{}:
			default:
			}
		}
	}()
	a := NewAgent(Config{
		Site:             "site-a",
		AnswerAddr:       "10.0.0.1",
		AnnounceInterval: 20 * time.Millisecond,
		Transport:        UDPTransport{},
		Peers:            []Peer{{Name: "site-b", Addr: conn.LocalAddr().String()}},
	})
	a.Start()
	defer a.Stop()
	select {
	case <-recvd:
	case <-time.After(5 * time.Second):
		t.Fatal("no announce arrived over UDP")
	}
	if b.View().Peers() != 1 {
		t.Fatalf("b's view peers = %d", b.View().Peers())
	}
	a.Stop()
	a.Start() // restartable
	a.Stop()
}

func TestServeUDP(t *testing.T) {
	conn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	b := NewAgent(Config{Site: "site-b"})
	done := make(chan struct{})
	go func() {
		defer close(done)
		b.ServeUDP(conn)
	}()
	bitmap, k := testBitmap("seg-0001")
	ann, _ := EncodeAnnounce("site-a", "10.0.0.1", 1, 1, 0, k, bitmap)
	resp, err := UDPTransport{}.Exchange(conn.LocalAddr().String(), ann, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if gen, ok := DecodeDigestAck(resp); !ok || gen != 1 {
		t.Fatalf("ack = %q", resp)
	}
	if _, ok := b.View().Lookup("seg-0001"); !ok {
		t.Fatal("announce over UDP not applied")
	}
	conn.Close()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("ServeUDP did not exit on close")
	}
}

func TestSnapshotAndCollectors(t *testing.T) {
	_, a, b := buildPair(t)
	a.AnnounceOnce()
	b.AnnounceOnce()
	a.View().Steer("seg-0001")
	st := a.Snapshot()
	if st.Site != "site-a" || st.Generation != 1 {
		t.Fatalf("snapshot %+v", st)
	}
	if len(st.Peers) != 1 || st.Peers[0].Name != "site-b" || !st.Peers[0].Eligible {
		t.Fatalf("snapshot peers %+v", st.Peers)
	}
	if st.Peers[0].Steered != 1 {
		t.Fatalf("steered = %d", st.Peers[0].Steered)
	}
	if len(st.Configured) != 1 || st.Configured[0] != "site-b" {
		t.Fatalf("configured = %v", st.Configured)
	}
	if got := len(a.Collectors()); got != 5 {
		t.Fatalf("collectors = %d, want 5", got)
	}
}
