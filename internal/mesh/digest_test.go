package mesh

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

func TestDigestNoFalseNegatives(t *testing.T) {
	d := NewDigest(DefaultDigestBits, DefaultDigestHashes)
	names := make([]string, 500)
	for i := range names {
		names[i] = fmt.Sprintf("seg-%04d-%d", i, i%7)
		d.Add(names[i])
	}
	f, ok := FilterFromBitmap(d.Bitmap(), d.Hashes())
	if !ok {
		t.Fatal("bitmap rejected")
	}
	for _, n := range names {
		if !d.Contains(n) {
			t.Fatalf("digest false negative for %q", n)
		}
		if !f.Contains(n) {
			t.Fatalf("filter false negative for %q", n)
		}
	}
}

// TestDigestFalsePositiveRate is the property test against a
// brute-force reference: add n random names to both the digest and a
// plain set, then probe names known absent from the set and check the
// observed FPR tracks the analytic (1-e^(-kn/m))^k within slack.
func TestDigestFalsePositiveRate(t *testing.T) {
	const (
		m      = DefaultDigestBits
		k      = DefaultDigestHashes
		n      = 1000
		probes = 20000
	)
	rng := rand.New(rand.NewSource(42))
	d := NewDigest(m, k)
	inSet := make(map[string]bool, n)
	for len(inSet) < n {
		name := fmt.Sprintf("obj-%08x", rng.Uint32())
		if inSet[name] {
			continue
		}
		inSet[name] = true
		d.Add(name)
	}
	f, ok := FilterFromBitmap(d.Bitmap(), k)
	if !ok {
		t.Fatal("bitmap rejected")
	}
	fp := 0
	for i := 0; i < probes; i++ {
		name := fmt.Sprintf("absent-%08x-%d", rng.Uint32(), i)
		if inSet[name] {
			continue
		}
		got := f.Contains(name)
		if got != d.Contains(name) {
			t.Fatalf("filter and digest disagree on %q", name)
		}
		if got {
			fp++
		}
	}
	observed := float64(fp) / probes
	expected := math.Pow(1-math.Exp(-float64(k*n)/float64(m)), k)
	if observed > 3*expected+0.01 {
		t.Fatalf("false-positive rate %.4f far above analytic %.4f", observed, expected)
	}
	t.Logf("fpr observed=%.4f analytic=%.4f", observed, expected)
}

func TestDigestRemove(t *testing.T) {
	d := NewDigest(1024, 4)
	d.Add("a")
	d.Add("b")
	d.Remove("a")
	if d.Contains("a") && !d.Contains("b") {
		t.Fatal("remove cleared the wrong name")
	}
	if !d.Contains("b") {
		t.Fatal("remove of a erased b")
	}
	if d.Entries() != 1 {
		t.Fatalf("entries = %d, want 1", d.Entries())
	}
}

func TestDigestSaturation(t *testing.T) {
	d := NewDigest(MinDigestBits, 1)
	// Drive one counter past saturation; removes must then never
	// clear it (stuck-bit rule: false positive allowed, false
	// negative not).
	for i := 0; i < 300; i++ {
		d.Add("hot")
	}
	for i := 0; i < 300; i++ {
		d.Remove("hot")
	}
	if !d.Contains("hot") {
		t.Fatal("saturated counter was cleared by Remove")
	}
}

func TestClampDigestParams(t *testing.T) {
	cases := []struct {
		bits, k         int
		wantBits, wantK int
	}{
		{0, 0, DefaultDigestBits, DefaultDigestHashes},
		{1, 1, MinDigestBits, 1},
		{100, 3, 128, 3},
		{MaxDigestBits + 1, MaxDigestHashes + 5, MaxDigestBits, MaxDigestHashes},
	}
	for _, c := range cases {
		gb, gk := clampDigestParams(c.bits, c.k)
		if gb != c.wantBits || gk != c.wantK {
			t.Errorf("clamp(%d,%d) = (%d,%d), want (%d,%d)", c.bits, c.k, gb, gk, c.wantBits, c.wantK)
		}
	}
}

func TestFilterFromBitmapRejects(t *testing.T) {
	if _, ok := FilterFromBitmap(nil, 4); ok {
		t.Fatal("accepted empty bitmap")
	}
	if _, ok := FilterFromBitmap(make([]byte, 7), 4); ok {
		t.Fatal("accepted non-word bitmap")
	}
	if _, ok := FilterFromBitmap(make([]byte, 8), 0); ok {
		t.Fatal("accepted k=0")
	}
	if _, ok := FilterFromBitmap(make([]byte, 8), MaxDigestHashes+1); ok {
		t.Fatal("accepted oversized k")
	}
	if _, ok := FilterFromBitmap(make([]byte, MaxDigestBits/8+8), 4); ok {
		t.Fatal("accepted oversized bitmap")
	}
}
