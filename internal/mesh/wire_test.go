package mesh

import (
	"bytes"
	"testing"
)

func testBitmap(names ...string) ([]byte, int) {
	d := NewDigest(512, 4)
	for _, n := range names {
		d.Add(n)
	}
	return d.Bitmap(), d.Hashes()
}

func TestAnnounceRoundTrip(t *testing.T) {
	bitmap, k := testBitmap("seg-0001", "seg-0002")
	payload, err := EncodeAnnounce("mec-east", "10.1.0.5", 7, 2, 0.42, k, bitmap)
	if err != nil {
		t.Fatal(err)
	}
	ann, err := DecodeAnnounce(payload)
	if err != nil {
		t.Fatal(err)
	}
	if ann.Site != "mec-east" || ann.Addr != "10.1.0.5" || ann.Gen != 7 || ann.Entries != 2 {
		t.Fatalf("decoded %+v", ann)
	}
	if ann.Load < 0.41 || ann.Load > 0.43 {
		t.Fatalf("load %v, want ~0.42", ann.Load)
	}
	if !ann.Filter.Contains("seg-0001") || !ann.Filter.Contains("seg-0002") {
		t.Fatal("decoded filter lost entries")
	}
	if ann.Filter.Bits() != 512 {
		t.Fatalf("filter bits %d, want 512", ann.Filter.Bits())
	}
}

func TestEncodeAnnounceRejects(t *testing.T) {
	bitmap, k := testBitmap()
	long := string(bytes.Repeat([]byte("x"), MaxNameLen+1))
	cases := []struct {
		name string
		err  func() error
	}{
		{"empty site", func() error { _, e := EncodeAnnounce("", "", 1, 0, 0, k, bitmap); return e }},
		{"long site", func() error { _, e := EncodeAnnounce(long, "", 1, 0, 0, k, bitmap); return e }},
		{"long addr", func() error { _, e := EncodeAnnounce("s", long, 1, 0, 0, k, bitmap); return e }},
		{"neg entries", func() error { _, e := EncodeAnnounce("s", "", 1, -1, 0, k, bitmap); return e }},
		{"huge entries", func() error { _, e := EncodeAnnounce("s", "", 1, MaxEntries+1, 0, k, bitmap); return e }},
		{"tiny bitmap", func() error { _, e := EncodeAnnounce("s", "", 1, 0, 0, k, make([]byte, 4)); return e }},
		{"bad k", func() error { _, e := EncodeAnnounce("s", "", 1, 0, 0, 0, bitmap); return e }},
	}
	for _, c := range cases {
		if c.err() == nil {
			t.Errorf("%s: encode accepted", c.name)
		}
	}
}

// TestDecodeAnnounceMalformed drives the decoder with truncations at
// every length plus targeted field corruptions; none may panic and all
// must error.
func TestDecodeAnnounceMalformed(t *testing.T) {
	bitmap, k := testBitmap("seg-0001")
	good, err := EncodeAnnounce("mec-east", "10.1.0.5", 3, 1, 0.5, k, bitmap)
	if err != nil {
		t.Fatal(err)
	}
	// Every strict prefix of a valid datagram must be rejected.
	for i := 0; i < len(good); i++ {
		if _, err := DecodeAnnounce(good[:i]); err == nil {
			t.Fatalf("decoder accepted %d-byte truncation", i)
		}
	}
	// Trailing garbage breaks the exact-length bitmap contract.
	if _, err := DecodeAnnounce(append(append([]byte{}, good...), 0xff)); err == nil {
		t.Fatal("decoder accepted trailing garbage")
	}
	corrupt := func(mut func(b []byte)) []byte {
		b := append([]byte{}, good...)
		mut(b)
		return b
	}
	base := len(AnnouncePrefix)
	cases := []struct {
		name string
		b    []byte
	}{
		{"bad verb", []byte("BOGUS " + string(good))},
		{"bad version", corrupt(func(b []byte) { b[base] = 99 })},
		{"zero site len", corrupt(func(b []byte) { b[base+5] = 0 })},
		{"site len overruns", corrupt(func(b []byte) { b[base+5] = 255 })},
		{"addr len overruns", corrupt(func(b []byte) { b[base+5+1+8] = 255 })},
	}
	for _, c := range cases {
		if _, err := DecodeAnnounce(c.b); err == nil {
			t.Errorf("%s: decoder accepted", c.name)
		}
	}
	// Random flips must never panic (errors are fine; some flips land
	// in the bitmap and still decode).
	for i := range good {
		for _, bit := range []byte{0x01, 0x80} {
			b := append([]byte{}, good...)
			b[i] ^= bit
			DecodeAnnounce(b)
		}
	}
}

func TestDigestAckRoundTrip(t *testing.T) {
	gen, ok := DecodeDigestAck(EncodeDigestAck(4294967295))
	if !ok || gen != 4294967295 {
		t.Fatalf("ack round trip: gen=%d ok=%v", gen, ok)
	}
	if _, ok := DecodeDigestAck([]byte("PONG")); ok {
		t.Fatal("accepted non-ack")
	}
	if _, ok := DecodeDigestAck([]byte("DIGEST banana")); ok {
		t.Fatal("accepted non-numeric ack")
	}
}

func TestGenNewer(t *testing.T) {
	cases := []struct {
		a, b uint32
		want bool
	}{
		{2, 1, true},
		{1, 2, false},
		{1, 1, false},
		{0, 4294967295, true}, // wrap
		{4294967295, 0, false},
	}
	for _, c := range cases {
		if got := genNewer(c.a, c.b); got != c.want {
			t.Errorf("genNewer(%d,%d) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}
