package orchestrator

import (
	"fmt"
	"net/netip"
	"testing"
	"time"

	"github.com/meccdn/meccdn/internal/dnsserver"
	"github.com/meccdn/meccdn/internal/dnswire"
	"github.com/meccdn/meccdn/internal/simnet"
)

func newCluster(t *testing.T, seed int64) (*simnet.Network, *Orchestrator) {
	t.Helper()
	n := simnet.New(seed)
	n.AddNode("fabric")
	o, err := New(Config{Net: n, FabricNode: "fabric"})
	if err != nil {
		t.Fatal(err)
	}
	return n, o
}

func addBackend(t *testing.T, n *simnet.Network, name, payload string) netip.Addr {
	t.Helper()
	node := n.AddNode(name)
	n.AddLink("fabric", name, simnet.Constant(100*time.Microsecond), 0)
	node.SetHandler(simnet.HandlerFunc(func(ctx *simnet.Ctx, dg simnet.Datagram) {
		ctx.Reply([]byte(payload), 0)
	}))
	return node.Addr
}

func TestCreateServiceAllocatesStableClusterIP(t *testing.T) {
	_, o := newCluster(t, 1)
	svc, err := o.CreateService(ServiceSpec{Name: "cdns", Namespace: "cdn"})
	if err != nil {
		t.Fatal(err)
	}
	if !netip.MustParsePrefix("10.96.0.0/16").Contains(svc.ClusterIP) {
		t.Errorf("cluster IP %v outside CIDR", svc.ClusterIP)
	}
	svc2, err := o.CreateService(ServiceSpec{Name: "other"})
	if err != nil {
		t.Fatal(err)
	}
	if svc2.ClusterIP == svc.ClusterIP {
		t.Error("duplicate cluster IP")
	}
	if _, err := o.CreateService(ServiceSpec{Name: "cdns", Namespace: "cdn"}); err == nil {
		t.Error("duplicate service accepted")
	}
	if _, err := o.CreateService(ServiceSpec{}); err == nil {
		t.Error("unnamed service accepted")
	}
}

func TestServiceDNSRegistration(t *testing.T) {
	_, o := newCluster(t, 2)
	pub := dnsserver.NewZone("mec.example.")
	o.SetPublicZone(pub)
	if _, err := o.CreateService(ServiceSpec{
		Name: "traffic-router", Namespace: "cdn",
		PublicName: "video.demo1.mycdn.mec.example.",
	}); err != nil {
		t.Fatal(err)
	}
	res, ans, _ := o.InternalZone().Lookup("traffic-router.cdn.svc.cluster.local.", dnswire.TypeA)
	if res != dnsserver.LookupSuccess || len(ans) != 1 {
		t.Errorf("internal lookup: %v %v", res, ans)
	}
	res, ans, _ = pub.Lookup("video.demo1.mycdn.mec.example.", dnswire.TypeA)
	if res != dnsserver.LookupSuccess || len(ans) != 1 {
		t.Errorf("public lookup: %v %v", res, ans)
	}
	// Both views resolve to the same cluster IP: the IP-reuse trick.
	internalIP := mustA(t, o.InternalZone(), "traffic-router.cdn.svc.cluster.local.")
	publicIP := mustA(t, pub, "video.demo1.mycdn.mec.example.")
	if internalIP != publicIP {
		t.Error("internal and public views disagree")
	}
}

func mustA(t *testing.T, z *dnsserver.Zone, name string) netip.Addr {
	t.Helper()
	_, ans, _ := z.Lookup(name, dnswire.TypeA)
	if len(ans) == 0 {
		t.Fatalf("no A for %s", name)
	}
	return ans[0].(*dnswire.A).Addr
}

func TestServiceProxyRoundRobin(t *testing.T) {
	n, o := newCluster(t, 3)
	a := addBackend(t, n, "backend-a", "from-a")
	b := addBackend(t, n, "backend-b", "from-b")
	svc, err := o.CreateService(ServiceSpec{Name: "lb", Endpoints: []netip.Addr{a, b}})
	if err != nil {
		t.Fatal(err)
	}
	client := n.AddNode("client")
	n.AddLink("fabric", "client", simnet.Constant(time.Millisecond), 0)
	seen := map[string]int{}
	for i := 0; i < 6; i++ {
		resp, _, err := client.Endpoint().Exchange(svc.ClusterIP, []byte("hi"), time.Second)
		if err != nil {
			t.Fatal(err)
		}
		seen[string(resp)]++
	}
	if seen["from-a"] != 3 || seen["from-b"] != 3 {
		t.Errorf("round robin distribution = %v", seen)
	}
	fwd, failed := svc.Stats()
	if fwd != 6 || failed != 0 {
		t.Errorf("stats fwd=%d failed=%d", fwd, failed)
	}
}

func TestServiceSurvivesEndpointChange(t *testing.T) {
	n, o := newCluster(t, 4)
	a := addBackend(t, n, "backend-a", "from-a")
	svc, err := o.CreateService(ServiceSpec{Name: "stable", Endpoints: []netip.Addr{a}})
	if err != nil {
		t.Fatal(err)
	}
	ipBefore := svc.ClusterIP
	client := n.AddNode("client")
	n.AddLink("fabric", "client", simnet.Constant(time.Millisecond), 0)

	b := addBackend(t, n, "backend-b", "from-b")
	svc.AddEndpoint(b)
	svc.AddEndpoint(b) // idempotent
	svc.RemoveEndpoint(a)
	if got := svc.Endpoints(); len(got) != 1 || got[0] != b {
		t.Fatalf("endpoints = %v", got)
	}
	// The cluster IP is unchanged — "ensures the C-DNS availability
	// regardless of any scaling event".
	if svc.ClusterIP != ipBefore {
		t.Error("cluster IP changed on scaling")
	}
	resp, _, err := client.Endpoint().Exchange(svc.ClusterIP, []byte("hi"), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if string(resp) != "from-b" {
		t.Errorf("resp = %q", resp)
	}
}

func TestServiceNoEndpointsDropsTraffic(t *testing.T) {
	n, o := newCluster(t, 5)
	svc, err := o.CreateService(ServiceSpec{Name: "empty"})
	if err != nil {
		t.Fatal(err)
	}
	client := n.AddNode("client")
	n.AddLink("fabric", "client", simnet.Constant(time.Millisecond), 0)
	if _, _, err := client.Endpoint().Exchange(svc.ClusterIP, []byte("hi"), 20*time.Millisecond); err == nil {
		t.Error("empty service answered")
	}
	if _, failed := svc.Stats(); failed != 1 {
		t.Errorf("failed = %d", failed)
	}
}

func TestDeleteService(t *testing.T) {
	n, o := newCluster(t, 6)
	pub := dnsserver.NewZone("mec.example.")
	o.SetPublicZone(pub)
	a := addBackend(t, n, "backend-a", "x")
	svc, err := o.CreateService(ServiceSpec{
		Name: "gone", PublicName: "gone.mec.example.", Endpoints: []netip.Addr{a}})
	if err != nil {
		t.Fatal(err)
	}
	if err := o.DeleteService("default", "gone"); err != nil {
		t.Fatal(err)
	}
	if o.Service("default", "gone") != nil {
		t.Error("service still listed")
	}
	if res, _, _ := o.InternalZone().Lookup("gone.default.svc.cluster.local.", dnswire.TypeA); res == dnsserver.LookupSuccess {
		t.Error("internal record not removed")
	}
	if res, _, _ := pub.Lookup("gone.mec.example.", dnswire.TypeA); res == dnsserver.LookupSuccess {
		t.Error("public record not removed")
	}
	client := n.AddNode("client")
	n.AddLink("fabric", "client", simnet.Constant(time.Millisecond), 0)
	if _, _, err := client.Endpoint().Exchange(svc.ClusterIP, []byte("hi"), 20*time.Millisecond); err == nil {
		t.Error("deleted service still answers")
	}
	if err := o.DeleteService("default", "gone"); err == nil {
		t.Error("double delete succeeded")
	}
}

func TestDeploymentScaling(t *testing.T) {
	n, o := newCluster(t, 7)
	svc, err := o.CreateService(ServiceSpec{Name: "caches"})
	if err != nil {
		t.Fatal(err)
	}
	created, destroyed := 0, 0
	dep := &Deployment{
		Name: "edge-caches",
		Create: func(i int) (netip.Addr, error) {
			created++
			return addBackend(t, n, fmt.Sprintf("cache-%d", i), fmt.Sprintf("cache-%d", i)), nil
		},
		Destroy: func(i int, addr netip.Addr) { destroyed++ },
		Service: svc,
	}
	if err := dep.Scale(3); err != nil {
		t.Fatal(err)
	}
	if dep.Replicas() != 3 || created != 3 || len(svc.Endpoints()) != 3 {
		t.Fatalf("after scale-up: replicas=%d created=%d eps=%d", dep.Replicas(), created, len(svc.Endpoints()))
	}
	if err := dep.Scale(1); err != nil {
		t.Fatal(err)
	}
	if dep.Replicas() != 1 || destroyed != 2 || len(svc.Endpoints()) != 1 {
		t.Fatalf("after scale-down: replicas=%d destroyed=%d eps=%d", dep.Replicas(), destroyed, len(svc.Endpoints()))
	}
	if err := dep.Scale(-1); err == nil {
		t.Error("negative scale accepted")
	}
	if got := len(dep.Instances()); got != 1 {
		t.Errorf("instances = %d", got)
	}
}

func TestPublicIPReport(t *testing.T) {
	_, o := newCluster(t, 8)
	with, without := o.PublicIPReport()
	if with != 0 || without != 0 {
		t.Errorf("empty report = %d/%d", with, without)
	}
	for i := 0; i < 5; i++ {
		if _, err := o.CreateService(ServiceSpec{
			Name:       fmt.Sprintf("cdn-%d", i),
			PublicName: fmt.Sprintf("cdn%d.customer.example.", i),
		}); err != nil {
			t.Fatal(err)
		}
	}
	with, without = o.PublicIPReport()
	if with != 1 || without != 5 {
		t.Errorf("report = %d/%d, want 1/5", with, without)
	}
}

func TestServicesSorted(t *testing.T) {
	_, o := newCluster(t, 9)
	for _, name := range []string{"zeta", "alpha"} {
		if _, err := o.CreateService(ServiceSpec{Name: name}); err != nil {
			t.Fatal(err)
		}
	}
	keys := o.Services()
	if len(keys) != 2 || keys[0] != "default/alpha" {
		t.Errorf("services = %v", keys)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("nil network accepted")
	}
	n := simnet.New(10)
	if _, err := New(Config{Net: n, FabricNode: "ghost"}); err == nil {
		t.Error("missing fabric node accepted")
	}
}
