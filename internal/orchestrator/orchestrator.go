// Package orchestrator reimplements the slice of Kubernetes the
// paper's prototype relies on: Services with stable cluster IPs and
// round-robin endpoint proxying (kube-proxy), Deployments that scale
// instances up and down, and a service registry that feeds the
// split-namespace DNS zones — the orchestrator's "dedicated, internal
// DNS" that the MEC-CDN design re-purposes for public CDN resolution.
//
// The cluster-IP indirection is also the paper's public-IP reuse
// mechanism (§3/§5): every MEC-CDN customer domain resolves to a
// cluster IP, so the MEC site needs no per-customer public addresses.
package orchestrator

import (
	"fmt"
	"net/netip"
	"sort"
	"sync"
	"time"

	"github.com/meccdn/meccdn/internal/dnsserver"
	"github.com/meccdn/meccdn/internal/dnswire"
	"github.com/meccdn/meccdn/internal/simnet"
)

// Config parameterizes a cluster.
type Config struct {
	// Net is the simulator the cluster lives in; required.
	Net *simnet.Network
	// FabricNode is the node the pod network hangs off (typically the
	// P-GW or a dedicated switch node); required.
	FabricNode string
	// ClusterCIDR is the service IP range; zero value means
	// 10.96.0.0/16 like a stock kubeadm cluster.
	ClusterCIDR netip.Prefix
	// ClusterDomain is the internal DNS suffix; "" means
	// "cluster.local.".
	ClusterDomain string
	// PodDelay is the pod-network per-hop latency; nil means 100µs.
	PodDelay simnet.Sampler
}

// Orchestrator is the cluster control plane.
type Orchestrator struct {
	cfg Config

	mu       sync.Mutex
	services map[string]*Service
	nextIP   uint32

	internalZone *dnsserver.Zone
	publicZone   *dnsserver.Zone
	publicNames  map[string]string // public FQDN → service key
}

// New creates an empty cluster.
func New(cfg Config) (*Orchestrator, error) {
	if cfg.Net == nil {
		return nil, fmt.Errorf("orchestrator: nil network")
	}
	if cfg.Net.Node(cfg.FabricNode) == nil {
		return nil, fmt.Errorf("orchestrator: fabric node %q does not exist", cfg.FabricNode)
	}
	if !cfg.ClusterCIDR.IsValid() {
		cfg.ClusterCIDR = netip.MustParsePrefix("10.96.0.0/16")
	}
	if cfg.ClusterDomain == "" {
		cfg.ClusterDomain = "cluster.local."
	}
	cfg.ClusterDomain = dnswire.CanonicalName(cfg.ClusterDomain)
	if cfg.PodDelay == nil {
		cfg.PodDelay = simnet.Constant(100 * time.Microsecond)
	}
	return &Orchestrator{
		cfg:          cfg,
		services:     make(map[string]*Service),
		internalZone: dnsserver.NewZone(cfg.ClusterDomain),
		publicNames:  make(map[string]string),
		nextIP:       1, // skip network address
	}, nil
}

// InternalZone is the VNF service-discovery namespace: every service
// is visible here as <name>.<namespace>.svc.<cluster-domain>.
func (o *Orchestrator) InternalZone() *dnsserver.Zone { return o.internalZone }

// SetPublicZone installs the publicly visible namespace zone; public
// services are registered into it under their public FQDNs. The zone
// is typically served by the MEC L-DNS public view.
func (o *Orchestrator) SetPublicZone(z *dnsserver.Zone) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.publicZone = z
}

// Service is a stable virtual IP fronting a set of endpoints.
type Service struct {
	Name      string
	Namespace string
	ClusterIP netip.Addr

	o    *Orchestrator
	node *simnet.Node

	mu        sync.Mutex
	endpoints []netip.Addr
	rr        uint64
	forwarded uint64
	failed    uint64
}

// ServiceSpec configures CreateService.
type ServiceSpec struct {
	Name      string
	Namespace string // "" means "default"
	// PublicName, when set, also registers the service in the public
	// zone under this FQDN (the MEC-CDN exposure path).
	PublicName string
	// Endpoints are the initial backend addresses.
	Endpoints []netip.Addr
}

func serviceKey(ns, name string) string { return ns + "/" + name }

// CreateService allocates a cluster IP, starts the kube-proxy-style
// forwarder on its own node, and registers DNS records.
func (o *Orchestrator) CreateService(spec ServiceSpec) (*Service, error) {
	if spec.Name == "" {
		return nil, fmt.Errorf("orchestrator: service needs a name")
	}
	if spec.Namespace == "" {
		spec.Namespace = "default"
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	key := serviceKey(spec.Namespace, spec.Name)
	if _, exists := o.services[key]; exists {
		return nil, fmt.Errorf("orchestrator: service %s already exists", key)
	}
	ip, err := o.allocateIPLocked()
	if err != nil {
		return nil, err
	}
	nodeName := "svc-" + spec.Namespace + "-" + spec.Name
	node := o.cfg.Net.AddNodeAddr(nodeName, ip)
	o.cfg.Net.AddLink(o.cfg.FabricNode, nodeName, o.cfg.PodDelay, 0)

	svc := &Service{
		Name:      spec.Name,
		Namespace: spec.Namespace,
		ClusterIP: ip,
		o:         o,
		node:      node,
		endpoints: append([]netip.Addr(nil), spec.Endpoints...),
	}
	node.SetHandler(simnet.HandlerFunc(svc.proxy))
	o.services[key] = svc

	fqdn := spec.Name + "." + spec.Namespace + ".svc." + o.cfg.ClusterDomain
	if err := o.internalZone.AddA(fqdn, 30, ip); err != nil {
		return nil, fmt.Errorf("registering %s: %w", fqdn, err)
	}
	if spec.PublicName != "" {
		pub := dnswire.CanonicalName(spec.PublicName)
		o.publicNames[pub] = key
		if o.publicZone != nil {
			if err := o.publicZone.AddA(pub, 30, ip); err != nil {
				return nil, fmt.Errorf("registering public name %s: %w", pub, err)
			}
		}
	}
	return svc, nil
}

// DeleteService removes the service and its DNS records. The proxy
// node stays in the topology (simnet nodes are permanent) but stops
// answering, like a torn-down Service whose IP is not yet reused.
func (o *Orchestrator) DeleteService(namespace, name string) error {
	o.mu.Lock()
	defer o.mu.Unlock()
	key := serviceKey(namespace, name)
	svc, ok := o.services[key]
	if !ok {
		return fmt.Errorf("orchestrator: no service %s", key)
	}
	delete(o.services, key)
	svc.node.SetHandler(nil)
	fqdn := name + "." + namespace + ".svc." + o.cfg.ClusterDomain
	o.internalZone.Remove(fqdn, dnswire.TypeA)
	for pub, k := range o.publicNames {
		if k == key {
			delete(o.publicNames, pub)
			if o.publicZone != nil {
				o.publicZone.Remove(pub, dnswire.TypeA)
			}
		}
	}
	return nil
}

// Service returns the named service, or nil.
func (o *Orchestrator) Service(namespace, name string) *Service {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.services[serviceKey(namespace, name)]
}

// Services lists service keys, sorted.
func (o *Orchestrator) Services() []string {
	o.mu.Lock()
	defer o.mu.Unlock()
	keys := make([]string, 0, len(o.services))
	for k := range o.services {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// PublicIPReport quantifies the paper's IP-reuse benefit: with the
// MEC-CDN design every public name shares the MEC DNS ingress (1
// address); without it, each exposed service would need its own
// public IP.
func (o *Orchestrator) PublicIPReport() (withReuse, withoutReuse int) {
	o.mu.Lock()
	defer o.mu.Unlock()
	exposed := len(o.publicNames)
	if exposed == 0 {
		return 0, 0
	}
	return 1, exposed
}

func (o *Orchestrator) allocateIPLocked() (netip.Addr, error) {
	base := o.cfg.ClusterCIDR.Masked().Addr().As4()
	for ; o.nextIP < 1<<16; o.nextIP++ {
		candidate := netip.AddrFrom4([4]byte{base[0], base[1], byte(o.nextIP >> 8), byte(o.nextIP)})
		if !o.cfg.ClusterCIDR.Contains(candidate) {
			break
		}
		if o.cfg.Net.NodeByAddr(candidate) == nil {
			o.nextIP++
			return candidate, nil
		}
	}
	return netip.Addr{}, fmt.Errorf("orchestrator: cluster CIDR %v exhausted", o.cfg.ClusterCIDR)
}

// proxy forwards a datagram to one endpoint (round-robin) and relays
// the reply, like kube-proxy NATing a Service hit.
func (s *Service) proxy(ctx *simnet.Ctx, dg simnet.Datagram) {
	s.mu.Lock()
	if len(s.endpoints) == 0 {
		s.failed++
		s.mu.Unlock()
		return
	}
	target := s.endpoints[s.rr%uint64(len(s.endpoints))]
	s.rr++
	s.mu.Unlock()

	// Forward with the client's address preserved, like kube-proxy
	// DNAT: the backend (e.g. a split-horizon DNS) must see the real
	// client, not the service IP.
	resp, _, err := ctx.Node().Endpoint().ExchangeFrom(target, dg.Payload, 2*time.Second, dg.Client())
	s.mu.Lock()
	if err != nil {
		s.failed++
		s.mu.Unlock()
		return
	}
	s.forwarded++
	s.mu.Unlock()
	ctx.Reply(resp, 0)
}

// AddEndpoint registers a backend address.
func (s *Service) AddEndpoint(addr netip.Addr) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, e := range s.endpoints {
		if e == addr {
			return
		}
	}
	s.endpoints = append(s.endpoints, addr)
}

// RemoveEndpoint deregisters a backend address.
func (s *Service) RemoveEndpoint(addr netip.Addr) {
	s.mu.Lock()
	defer s.mu.Unlock()
	kept := s.endpoints[:0]
	for _, e := range s.endpoints {
		if e != addr {
			kept = append(kept, e)
		}
	}
	s.endpoints = kept
}

// Endpoints returns a copy of the backend list.
func (s *Service) Endpoints() []netip.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]netip.Addr(nil), s.endpoints...)
}

// Stats returns forwarded and failed proxy counts.
func (s *Service) Stats() (forwarded, failed uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.forwarded, s.failed
}

// Deployment manages N instances of a workload behind a Service,
// scaling by calling the Create/Destroy hooks — in this repository the
// hooks spin CDN cache servers up and down on fresh simnet nodes.
type Deployment struct {
	Name string
	// Create builds instance i and returns its address.
	Create func(i int) (netip.Addr, error)
	// Destroy tears instance i down (optional).
	Destroy func(i int, addr netip.Addr)
	// Service receives endpoint updates (optional).
	Service *Service

	mu        sync.Mutex
	instances []netip.Addr
}

// Scale adjusts the replica count, creating or destroying instances.
func (d *Deployment) Scale(replicas int) error {
	if replicas < 0 {
		return fmt.Errorf("orchestrator: negative replicas")
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	for len(d.instances) < replicas {
		i := len(d.instances)
		addr, err := d.Create(i)
		if err != nil {
			return fmt.Errorf("scaling %s up to %d: %w", d.Name, replicas, err)
		}
		d.instances = append(d.instances, addr)
		if d.Service != nil {
			d.Service.AddEndpoint(addr)
		}
	}
	for len(d.instances) > replicas {
		i := len(d.instances) - 1
		addr := d.instances[i]
		d.instances = d.instances[:i]
		if d.Service != nil {
			d.Service.RemoveEndpoint(addr)
		}
		if d.Destroy != nil {
			d.Destroy(i, addr)
		}
	}
	return nil
}

// Replicas returns the current instance count.
func (d *Deployment) Replicas() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.instances)
}

// Instances returns a copy of the instance addresses.
func (d *Deployment) Instances() []netip.Addr {
	d.mu.Lock()
	defer d.mu.Unlock()
	return append([]netip.Addr(nil), d.instances...)
}
