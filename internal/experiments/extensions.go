package experiments

import (
	"fmt"
	"net/netip"
	"strings"
	"time"

	"github.com/meccdn/meccdn/internal/cdn"
	"github.com/meccdn/meccdn/internal/dnsserver"
	"github.com/meccdn/meccdn/internal/geoip"
	"github.com/meccdn/meccdn/internal/lte"
	"github.com/meccdn/meccdn/internal/meccdn"
	"github.com/meccdn/meccdn/internal/orchestrator"
	"github.com/meccdn/meccdn/internal/simnet"
	"github.com/meccdn/meccdn/internal/stats"
	"github.com/meccdn/meccdn/internal/workload"
)

// FallbackRow is one UE resolution policy's cost for one name class.
type FallbackRow struct {
	Policy  string
	MECName time.Duration // mean latency for MEC-hosted names
	WebName time.Duration // mean latency for ordinary internet names
}

// FallbackResult is experiment X1: the §3 discussion of how UEs reach
// non-MEC names once their target DNS is the MEC DNS.
type FallbackResult struct {
	Rows []FallbackRow
	// MECAdvantage is provider-only MEC-name latency over MEC-only
	// MEC-name latency (the "MEC DNS resolution can be achieved up to
	// 3× faster" §3 comparison).
	MECAdvantage float64
}

// Fallback measures the three §3 policies — MEC-only (server-side
// forward), client multicast, and timeout fallback — against the
// provider-only baseline, for both MEC content and ordinary names.
func Fallback(seed int64, runs int) (*FallbackResult, error) {
	if runs <= 0 {
		runs = 15
	}
	tb := fig5Testbed(seed, lte.LTE4G())

	// Provider L-DNS on the LAN: recursive for web names, and it can
	// resolve the CDN domain only via the far infrastructure.
	provNode := tb.AddLAN("provider-ldns")
	roots, err := buildCDNInfra(tb.Net, provNode.Name, simnet.Constant(20*time.Millisecond))
	if err != nil {
		return nil, err
	}
	webZone := dnsserver.NewZone("web.example.")
	if err := webZone.AddA("www.web.example.", 30, netip.MustParseAddr("203.0.113.200")); err != nil {
		return nil, err
	}
	upProv := newSimClient(tb.Net, provNode.Name)
	provChain := dnsserver.Chain(
		dnsserver.NewZonePlugin(webZone),
		mustResolver(upProv, tb.Net, roots...),
	)
	dnsserver.Attach(provNode, provChain, fig5LDNSProc)
	provider := netip.AddrPortFrom(provNode.Addr, 53)

	// The MEC site forwards non-MEC names to the provider L-DNS.
	site, err := meccdn.DeploySite(tb, meccdn.SiteConfig{
		Domain:         Fig5Domain,
		ProviderLDNS:   provider,
		LDNSProcessing: fig5LDNSProc,
		CDNSProcessing: fig5CDNSProc,
	})
	if err != nil {
		return nil, err
	}

	measure := func(mode meccdn.ResolutionMode, name string) (time.Duration, error) {
		ue := &meccdn.UEClient{
			EP:       tb.Net.Node(lte.NodeUE).Endpoint(),
			MEC:      site.LDNS,
			Provider: provider,
			Mode:     mode,
		}
		sample := stats.New()
		for i := 0; i < runs; i++ {
			tb.Net.Clock.RunUntil(tb.Net.Now() + time.Minute)
			res, err := ue.Resolve(name)
			if err != nil {
				return 0, fmt.Errorf("%s %s run %d: %w", mode, name, i, err)
			}
			sample.Add(res.RTT)
		}
		return sample.Mean(), nil
	}

	policies := []struct {
		label string
		mode  meccdn.ResolutionMode
	}{
		{"provider-only (today)", meccdn.ProviderOnly},
		{"mec-only (server forward)", meccdn.MECOnly},
		{"client multicast", meccdn.Multicast},
		{"fallback-on-timeout", meccdn.FallbackOnTimeout},
	}
	res := &FallbackResult{}
	var provMEC, mecMEC time.Duration
	for _, p := range policies {
		mecLat, err := measure(p.mode, Fig5Query)
		if err != nil {
			return nil, err
		}
		webLat, err := measure(p.mode, "www.web.example.")
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, FallbackRow{Policy: p.label, MECName: mecLat, WebName: webLat})
		switch p.mode {
		case meccdn.ProviderOnly:
			provMEC = mecLat
		case meccdn.MECOnly:
			mecMEC = mecLat
		}
	}
	if mecMEC > 0 {
		res.MECAdvantage = float64(provMEC) / float64(mecMEC)
	}
	return res, nil
}

// Render prints the policy comparison.
func (r *FallbackResult) Render() string {
	var b strings.Builder
	b.WriteString("X1 §3: resolution policies for MEC vs non-MEC names (mean latency)\n")
	fmt.Fprintf(&b, "%-28s %14s %14s\n", "policy", "MEC content", "web content")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-28s %12.1fms %12.1fms\n", row.Policy, stats.Ms(row.MECName), stats.Ms(row.WebName))
	}
	fmt.Fprintf(&b, "MEC DNS advantage for MEC content: %.1fx faster than provider L-DNS\n", r.MECAdvantage)
	return b.String()
}

// DisaggregationResult is experiment X2: the §2 Observation 2 effect —
// spreading one client population's requests across multiple cache
// pools raises the miss rate versus consolidated routing.
type DisaggregationResult struct {
	Objects      int
	Requests     int
	Consolidated float64 // hit ratio with content-aware routing
	Spread       float64 // hit ratio with round-robin disaggregation
}

// Disaggregation runs a Zipf workload through an edge cache pool
// twice: once with the consistent-hash/availability-first router and
// once with a round-robin router that ignores placement.
func Disaggregation(seed int64, objects, requests int) (*DisaggregationResult, error) {
	if objects <= 0 {
		objects = 500
	}
	if requests <= 0 {
		requests = 4000
	}
	run := func(policy cdn.SelectionPolicy) (float64, error) {
		net := simnet.New(seed)
		net.AddNode("client")
		net.AddNode("origin")
		origin := cdn.NewOrigin()
		cat := cdn.NewCatalog("pool.test.")
		cat.PublishN("obj", objects, 10_000)
		origin.AddCatalog(cat)
		osrv := cdn.NewOriginServer(net.Node("origin"), origin, nil)

		router := cdn.NewRouter("pool.test.")
		router.Policy = policy
		router.Replicas = 4
		servers := make([]*cdn.CacheServer, 4)
		for i := range servers {
			name := fmt.Sprintf("cache-%d", i)
			net.AddNode(name)
			net.AddLink("client", name, simnet.Constant(time.Millisecond), 0)
			net.AddLink(name, "origin", simnet.Constant(20*time.Millisecond), 0)
			servers[i] = cdn.NewCacheServer(net.Node(name), cdn.CacheServerConfig{
				Name: name, Tier: cdn.TierEdge,
				// Each cache holds only ~15% of the catalog: routing
				// decides whether the pool behaves like one big cache
				// or four small ones.
				CapacityBytes: int64(objects) * 10_000 * 15 / 100,
				Parent:        osrv.Addr(),
			})
			router.AddServer(servers[i], geoip.Location{X: float64(i)})
		}
		zipf, err := workload.NewZipfCatalog(net.Rand(), 1.2, objects)
		if err != nil {
			return 0, err
		}
		ep := net.Node("client").Endpoint()
		for i := 0; i < requests; i++ {
			name := workload.Name("obj", zipf.Next())
			sel := router.Route(name, cdn.ClientInfo{})
			if sel == nil {
				return 0, fmt.Errorf("no server for %s", name)
			}
			if _, err := cdn.Fetch(ep, sel.Server.Addr(), "pool.test.", name, time.Second); err != nil {
				return 0, err
			}
		}
		var hits, total uint64
		for _, s := range servers {
			st := s.Cache().Stats()
			hits += st.Hits
			total += st.Hits + st.Misses
		}
		return float64(hits) / float64(total), nil
	}
	consolidated, err := run(cdn.AvailabilityFirst{})
	if err != nil {
		return nil, fmt.Errorf("consolidated run: %w", err)
	}
	spread, err := run(&cdn.RoundRobin{})
	if err != nil {
		return nil, fmt.Errorf("spread run: %w", err)
	}
	return &DisaggregationResult{
		Objects: objects, Requests: requests,
		Consolidated: consolidated, Spread: spread,
	}, nil
}

// Render prints the disaggregation comparison.
func (r *DisaggregationResult) Render() string {
	var b strings.Builder
	b.WriteString("X2 §2 Obs.2: request disaggregation vs cache hit ratio\n")
	fmt.Fprintf(&b, "catalog %d objects, %d Zipf(1.2) requests, 4 caches × 15%% capacity\n", r.Objects, r.Requests)
	fmt.Fprintf(&b, "%-36s hit ratio %.1f%%\n", "content-aware routing (MEC-CDN C-DNS)", 100*r.Consolidated)
	fmt.Fprintf(&b, "%-36s hit ratio %.1f%%\n", "round-robin across pools (status quo)", 100*r.Spread)
	fmt.Fprintf(&b, "miss-rate increase from disaggregation: %.1f%% → %.1f%%\n",
		100*(1-r.Consolidated), 100*(1-r.Spread))
	return b.String()
}

// IPReuseResult is experiment X4.
type IPReuseResult struct {
	Customers    int
	WithReuse    int
	WithoutReuse int
}

// IPReuse deploys N CDN customer domains on one MEC site and reports
// the public-IP demand with and without the cluster-IP indirection.
func IPReuse(seed int64, customers int) (*IPReuseResult, error) {
	if customers <= 0 {
		customers = 8
	}
	net := simnet.New(seed)
	net.AddNode("pgw")
	orch, err := orchestrator.New(orchestrator.Config{Net: net, FabricNode: "pgw"})
	if err != nil {
		return nil, err
	}
	pub := dnsserver.NewZone("mec.example.")
	orch.SetPublicZone(pub)
	for i := 0; i < customers; i++ {
		if _, err := orch.CreateService(orchestrator.ServiceSpec{
			Name:       fmt.Sprintf("cdn-customer-%d", i),
			Namespace:  "cdn",
			PublicName: fmt.Sprintf("cdn%d.customer%d.mec.example.", i, i),
		}); err != nil {
			return nil, err
		}
	}
	with, without := orch.PublicIPReport()
	return &IPReuseResult{Customers: customers, WithReuse: with, WithoutReuse: without}, nil
}

// Render prints the IP-reuse accounting.
func (r *IPReuseResult) Render() string {
	var b strings.Builder
	b.WriteString("X4 §3/§5: public IPv4 addresses needed at the MEC site\n")
	fmt.Fprintf(&b, "CDN customer domains deployed:        %d\n", r.Customers)
	fmt.Fprintf(&b, "with MEC-CDN cluster-IP indirection:  %d public IP(s)\n", r.WithReuse)
	fmt.Fprintf(&b, "with per-domain public addressing:    %d public IP(s)\n", r.WithoutReuse)
	return b.String()
}

// LoadShedResult is experiment X5.
type LoadShedResult struct {
	Threshold int
	Offered   []int     // offered load per step (queries/s)
	MECServed []uint64  // queries the MEC DNS answered itself
	Diverted  []uint64  // queries diverted to the provider L-DNS
	Latency   []float64 // mean latency (ms) per step
}

// LoadShed ramps the query rate at the MEC DNS past its configured
// ingress threshold and shows the orchestrator's policy switching
// excess load to the provider L-DNS, keeping resolution available.
// The driver is closed-loop (one outstanding query), so the effective
// offered rate saturates near 1/RTT regardless of the requested step;
// choose thresholds below that ceiling to observe shedding.
func LoadShed(seed int64, threshold int, steps []int) (*LoadShedResult, error) {
	if threshold <= 0 {
		threshold = 100
	}
	if len(steps) == 0 {
		steps = []int{50, 100, 200, 400}
	}
	tb := fig5Testbed(seed, lte.LTE4G())
	provNode := tb.AddLAN("provider-ldns")
	roots, err := buildCDNInfra(tb.Net, provNode.Name, simnet.Constant(20*time.Millisecond))
	if err != nil {
		return nil, err
	}
	upProv := newSimClient(tb.Net, provNode.Name)
	dnsserver.Attach(provNode, dnsserver.Chain(mustResolver(upProv, tb.Net, roots...)), fig5LDNSProc)

	site, err := meccdn.DeploySite(tb, meccdn.SiteConfig{
		Domain:         Fig5Domain,
		ProviderLDNS:   netip.AddrPortFrom(provNode.Addr, 53),
		MaxIngressQPS:  threshold,
		LDNSProcessing: fig5LDNSProc,
		CDNSProcessing: fig5CDNSProc,
	})
	if err != nil {
		return nil, err
	}
	ue := &meccdn.UEClient{EP: tb.Net.Node(lte.NodeUE).Endpoint(), MEC: site.LDNS}

	res := &LoadShedResult{Threshold: threshold}
	var prevShed, prevServed uint64
	for _, qps := range steps {
		sample := stats.New()
		// One second of offered load at this rate, spaced evenly in
		// virtual time.
		gap := time.Second / time.Duration(qps)
		for i := 0; i < qps; i++ {
			tb.Net.Clock.RunUntil(tb.Net.Now() + gap)
			r, err := ue.Resolve(Fig5Query)
			if err != nil {
				return nil, fmt.Errorf("qps %d query %d: %w", qps, i, err)
			}
			sample.Add(r.RTT)
		}
		shed, served := site.Shed.Shed()
		res.Offered = append(res.Offered, qps)
		res.MECServed = append(res.MECServed, served-prevServed)
		res.Diverted = append(res.Diverted, shed-prevShed)
		res.Latency = append(res.Latency, stats.Ms(sample.Mean()))
		prevShed, prevServed = shed, served
		// Let the window roll over between steps.
		tb.Net.Clock.RunUntil(tb.Net.Now() + 2*time.Second)
	}
	return res, nil
}

// Render prints the load ramp.
func (r *LoadShedResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "X5 §3: ingress-threshold DoS mitigation (threshold %d q/s)\n", r.Threshold)
	fmt.Fprintf(&b, "%10s %12s %12s %12s\n", "offered", "MEC-served", "diverted", "mean lat")
	for i := range r.Offered {
		fmt.Fprintf(&b, "%8d/s %12d %12d %10.1fms\n",
			r.Offered[i], r.MECServed[i], r.Diverted[i], r.Latency[i])
	}
	return b.String()
}
