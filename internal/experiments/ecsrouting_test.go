package experiments

import "testing"

func TestECSRoutingAccuracy(t *testing.T) {
	res, err := ECSRouting(42, 12, 4)
	if err != nil {
		t.Fatal(err)
	}
	// With ECS every client's /24 matches its table row: perfect
	// selection, scoped /24.
	if res.WithECS != 1.0 {
		t.Errorf("with ECS accuracy = %.2f, want 1.0", res.WithECS)
	}
	if res.ScopeWithECS != 24 {
		t.Errorf("mean scope = %.1f, want 24", res.ScopeWithECS)
	}
	// Without ECS the C-DNS sees only the resolver's subnet and sends
	// everyone to the resolver's PoP (PoP 0): only the clients that
	// happen to map there are served correctly.
	if want := 3.0 / 12.0; res.WithoutECS != want {
		t.Errorf("without ECS accuracy = %.2f, want %.2f", res.WithoutECS, want)
	}
	if res.RouteRows != 13 {
		t.Errorf("route rows = %d, want 13", res.RouteRows)
	}
}
